// Package busenc's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (see DESIGN.md for the experiment index) and
// run the ablations of the design choices. Each benchmark reports the
// headline metric of its experiment via b.ReportMetric, so a
// `go test -bench=. -benchmem` run records the full reproduction.
package busenc

import (
	"bytes"
	"fmt"
	"testing"

	"busenc/internal/analytic"
	"busenc/internal/arch"
	"busenc/internal/cache"
	"busenc/internal/codec"
	"busenc/internal/core"
	"busenc/internal/hw"
	"busenc/internal/mips"
	"busenc/internal/mips/progs"
	"busenc/internal/netlist"
	"busenc/internal/system"
	"busenc/internal/trace"
	"busenc/internal/workload"
)

// --- Paper tables -----------------------------------------------------

// BenchmarkTable1 regenerates the analytical comparison (Table 1).
func BenchmarkTable1(b *testing.B) {
	var biRandom float64
	for i := 0; i < b.N; i++ {
		rows, err := core.Table1(core.Width, 50000)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Stream == "random" && r.Code == "businvert" {
				biRandom = r.PerClk
			}
		}
	}
	b.ReportMetric(biRandom, "businvert-eta")
	b.ReportMetric(analytic.BinarySequential(core.Width), "binary-seq-perclk")
}

func benchStreamTable(b *testing.B, f func(core.Source) (*core.Table, error), metrics []string) {
	b.Helper()
	var tab *core.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = f(core.Synthetic)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tab.AvgInSeqPct, "inseq%")
	for _, m := range metrics {
		s, err := tab.AvgSavingsFor(m)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(s, m+"-savings%")
	}
}

// BenchmarkTable2 regenerates the instruction-stream comparison of the
// existing codes (paper averages: in-seq 63.04%, T0 35.52%, BI 0.03%).
func BenchmarkTable2(b *testing.B) { benchStreamTable(b, core.Table2, core.ExistingCodes) }

// BenchmarkTable3 regenerates the data-stream comparison of the existing
// codes (paper: in-seq 11.39%, T0 3.37%, BI 10.78%).
func BenchmarkTable3(b *testing.B) { benchStreamTable(b, core.Table3, core.ExistingCodes) }

// BenchmarkTable4 regenerates the multiplexed-stream comparison of the
// existing codes (paper: in-seq 57.62%, T0 10.25%, BI 9.79%).
func BenchmarkTable4(b *testing.B) { benchStreamTable(b, core.Table4, core.ExistingCodes) }

// BenchmarkTable5 regenerates the instruction-stream comparison of the
// mixed codes (paper: 34.92% / 35.52% / 35.52%).
func BenchmarkTable5(b *testing.B) { benchStreamTable(b, core.Table5, core.MixedCodes) }

// BenchmarkTable6 regenerates the data-stream comparison of the mixed
// codes (paper: 12.82% / 0.00% / 10.66%).
func BenchmarkTable6(b *testing.B) { benchStreamTable(b, core.Table6, core.MixedCodes) }

// BenchmarkTable7 regenerates the multiplexed-stream comparison of the
// mixed codes — the headline result (paper: 19.56% / 12.15% / 22.25%,
// dual T0_BI best).
func BenchmarkTable7(b *testing.B) { benchStreamTable(b, core.Table7, core.MixedCodes) }

// BenchmarkTable2MIPS regenerates Table 2 from the MIPS simulator instead
// of the calibrated synthetic streams.
func BenchmarkTable2MIPS(b *testing.B) {
	var tab *core.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = core.Table2(core.MIPS)
		if err != nil {
			b.Fatal(err)
		}
	}
	s, _ := tab.AvgSavingsFor("t0")
	b.ReportMetric(s, "t0-savings%")
}

// BenchmarkTable8 regenerates the on-chip codec power sweep (paper: dual
// T0_BI encoder dominates T0 encoder at small loads; decoders comparable).
func BenchmarkTable8(b *testing.B) {
	s := core.ReferenceMuxedStream(3000)
	var rows []core.Table8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = core.Table8(s, core.OnChipLoads)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].DbiEnc/rows[0].T0Enc, "enc-ratio@0.1pF")
	b.ReportMetric(rows[0].DbiDec/rows[0].T0Dec, "dec-ratio")
	b.ReportMetric(rows[0].T0Enc*1e3, "t0-enc-mW@0.1pF")
}

// BenchmarkTable9 regenerates the off-chip global power sweep (paper: T0
// preferable for 20-100 pF, dual T0_BI above).
func BenchmarkTable9(b *testing.B) {
	s := core.ReferenceMuxedStream(3000)
	var rows []core.Table9Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = core.Table9(s, core.OffChipLoads)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric((1-last.DbiGlobal/last.BinaryGlobal)*100, "dbi-global-savings%@1nF")
	if load, ok := core.Crossover(rows); ok {
		b.ReportMetric(load*1e12, "crossover-pF")
	}
}

// BenchmarkCrossover regenerates the load-vs-power series underlying
// Table 9's recommendation as a dense sweep (the "crossover curve").
func BenchmarkCrossover(b *testing.B) {
	s := core.ReferenceMuxedStream(3000)
	loads := make([]float64, 0, 50)
	for l := 10e-12; l <= 500e-12; l += 10e-12 {
		loads = append(loads, l)
	}
	var cross float64
	for i := 0; i < b.N; i++ {
		rows, err := core.Table9(s, loads)
		if err != nil {
			b.Fatal(err)
		}
		if load, ok := core.Crossover(rows); ok {
			cross = load * 1e12
		}
	}
	b.ReportMetric(cross, "crossover-pF")
}

// --- Ablations (DESIGN.md section 5) ----------------------------------

// BenchmarkAblationStride sweeps the T0 stride parameter against a
// stride-4 instruction stream: only the matching stride freezes the bus.
func BenchmarkAblationStride(b *testing.B) {
	s := workload.Suite()[0].Instr()
	bin := codec.MustRun(codec.MustNew("binary", core.Width, codec.Options{}), s)
	for i := 0; i < b.N; i++ {
		for _, stride := range []uint64{1, 2, 4, 8} {
			c := codec.MustNew("t0", core.Width, codec.Options{Stride: stride})
			res := codec.MustRun(c, s)
			if i == b.N-1 {
				b.ReportMetric(res.SavingsVs(bin)*100, "t0-savings%"+metricSuffix(stride))
			}
		}
	}
}

func metricSuffix(stride uint64) string {
	return "-stride" + string(rune('0'+stride))
}

// BenchmarkAblationPartition sweeps the bus-invert partition count on a
// random data stream: more INV lines capture more of the theoretical gain.
func BenchmarkAblationPartition(b *testing.B) {
	s := workload.Random(core.Width, 50000, 3)
	bin := codec.MustRun(codec.MustNew("binary", core.Width, codec.Options{}), s)
	for i := 0; i < b.N; i++ {
		for _, parts := range []int{1, 2, 4, 8} {
			c := codec.MustNew("businvert", core.Width, codec.Options{Partitions: parts})
			res := codec.MustRun(c, s)
			if i == b.N-1 {
				b.ReportMetric(res.SavingsVs(bin)*100, "bi-savings%-p"+string(rune('0'+parts)))
			}
		}
	}
}

// BenchmarkAblationRedundant compares savings with and without counting
// the redundant lines' own toggles — the accounting choice of the paper.
func BenchmarkAblationRedundant(b *testing.B) {
	s := workload.Suite()[0].Muxed()
	bin := codec.MustRun(codec.MustNew("binary", core.Width, codec.Options{}), s)
	var withAll, payloadOnly float64
	for i := 0; i < b.N; i++ {
		c := codec.MustNew("dualt0bi", core.Width, core.DefaultOptions)
		res := codec.MustRun(c, s)
		withAll = res.SavingsVs(bin) * 100
		var payload int64
		for line := 0; line < core.Width; line++ {
			payload += res.PerLine[line]
		}
		payloadOnly = (1 - float64(payload)/float64(bin.Transitions)) * 100
	}
	b.ReportMetric(withAll, "savings%-all-lines")
	b.ReportMetric(payloadOnly, "savings%-payload-only")
}

// BenchmarkAblationPowerModel compares the simulation-based and
// probabilistic power estimates of the T0 encoder.
func BenchmarkAblationPowerModel(b *testing.B) {
	c := hw.T0(core.Width, 2)
	s := core.ReferenceMuxedStream(3000)
	lib := netlist.DefaultLibrary()
	var simP, probP float64
	for i := 0; i < b.N; i++ {
		sim, err := netlist.NewSimulator(c.Enc)
		if err != nil {
			b.Fatal(err)
		}
		nIn := len(c.Enc.Inputs())
		ones := make([]int64, nIn)
		toggles := make([]int64, nIn)
		var prev []bool
		for _, e := range s.Entries {
			in := c.EncInputs(e)
			for k, v := range in {
				if v {
					ones[k]++
				}
				if prev != nil && v != prev[k] {
					toggles[k]++
				}
			}
			prev = in
			sim.Step(in)
		}
		simP = lib.Power(c.Enc, sim.Activity(), 100e6, 0.1e-12)
		stats := make([]netlist.ProbIn, nIn)
		for k := range stats {
			stats[k] = netlist.ProbIn{
				P: float64(ones[k]) / float64(s.Len()),
				D: float64(toggles[k]) / float64(s.Len()-1),
			}
		}
		inMap, err := netlist.MeasuredInputs(c.Enc, stats)
		if err != nil {
			b.Fatal(err)
		}
		est, err := netlist.Propagate(c.Enc, inMap)
		if err != nil {
			b.Fatal(err)
		}
		probP = lib.Power(c.Enc, est, 100e6, 0.1e-12)
	}
	b.ReportMetric(simP*1e3, "simulated-mW")
	b.ReportMetric(probP*1e3, "probabilistic-mW")
}

// BenchmarkAblationHierarchy measures how an L1 cache changes the stream's
// in-sequence fraction and the best code's savings.
func BenchmarkAblationHierarchy(b *testing.B) {
	s := workload.Suite()[0].Muxed()
	var cpuSeq, missSeq, cpuSave, missSave float64
	for i := 0; i < b.N; i++ {
		l1, err := cache.New(cache.Config{Size: 8 << 10, LineSize: 16, Ways: 2, WriteBack: true})
		if err != nil {
			b.Fatal(err)
		}
		miss := l1.Filter(s)
		cpuSeq = s.InSeqFraction(4) * 100
		missSeq = miss.InSeqFraction(16) * 100
		binCPU := codec.MustRun(codec.MustNew("binary", core.Width, codec.Options{}), s)
		binMiss := codec.MustRun(codec.MustNew("binary", core.Width, codec.Options{}), miss)
		cpuSave = codec.MustRun(codec.MustNew("dualt0bi", core.Width, codec.Options{Stride: 4}), s).SavingsVs(binCPU) * 100
		missSave = codec.MustRun(codec.MustNew("dualt0bi", core.Width, codec.Options{Stride: 16}), miss).SavingsVs(binMiss) * 100
	}
	b.ReportMetric(cpuSeq, "cpu-inseq%")
	b.ReportMetric(missSeq, "l2bus-inseq%")
	b.ReportMetric(cpuSave, "cpu-dbi-savings%")
	b.ReportMetric(missSave, "l2bus-dbi-savings%")
}

// --- Codec micro-benchmarks -------------------------------------------

func benchCodecThroughput(b *testing.B, name string) {
	s := workload.Suite()[0].Muxed()
	train := s.Slice(0, 1000)
	c := codec.MustNew(name, core.Width, codec.Options{Stride: 4, Train: train})
	enc := c.NewEncoder()
	syms := make([]codec.Symbol, s.Len())
	for i, e := range s.Entries {
		syms[i] = codec.SymbolOf(e)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= enc.Encode(syms[i%len(syms)])
	}
	_ = sink
}

func BenchmarkEncodeBinary(b *testing.B)    { benchCodecThroughput(b, "binary") }
func BenchmarkEncodeGray(b *testing.B)      { benchCodecThroughput(b, "gray") }
func BenchmarkEncodeBusInvert(b *testing.B) { benchCodecThroughput(b, "businvert") }
func BenchmarkEncodeT0(b *testing.B)        { benchCodecThroughput(b, "t0") }
func BenchmarkEncodeT0BI(b *testing.B)      { benchCodecThroughput(b, "t0bi") }
func BenchmarkEncodeDualT0(b *testing.B)    { benchCodecThroughput(b, "dualt0") }
func BenchmarkEncodeDualT0BI(b *testing.B)  { benchCodecThroughput(b, "dualt0bi") }
func BenchmarkEncodeOffset(b *testing.B)    { benchCodecThroughput(b, "offset") }
func BenchmarkEncodeWorkZone(b *testing.B)  { benchCodecThroughput(b, "workzone") }
func BenchmarkEncodeBeach(b *testing.B)     { benchCodecThroughput(b, "beach") }

// BenchmarkRunFast measures the batched evaluation path per codec: encode
// in chunks via the codec's batch kernel, count transitions in bulk,
// verify a sampled prefix. Compare against BenchmarkRunSlowReference for
// the per-entry dispatch cost the engine removes.
func BenchmarkRunFast(b *testing.B) {
	s := workload.Suite()[0].Muxed()
	for _, name := range []string{"binary", "gray", "t0", "businvert", "t0bi", "dualt0", "dualt0bi"} {
		b.Run(name, func(b *testing.B) {
			c := codec.MustNew(name, core.Width, codec.Options{Stride: 4})
			b.ResetTimer()
			var res codec.Result
			for i := 0; i < b.N; i++ {
				res = codec.MustRunFast(c, s, codec.RunOpts{Verify: codec.VerifySampled})
			}
			b.ReportMetric(float64(s.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Msym/s")
			_ = res
		})
	}
}

// BenchmarkRunSlowReference is the seed evaluation path (codec.Run) over
// the same stream, for tracking the fast/slow ratio.
func BenchmarkRunSlowReference(b *testing.B) {
	s := workload.Suite()[0].Muxed()
	c := codec.MustNew("dualt0bi", core.Width, codec.Options{Stride: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		codec.MustRun(c, s)
	}
	b.ReportMetric(float64(s.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Msym/s")
}

// BenchmarkEncodeBatch measures the raw batch encode kernels: symbols in,
// words out, no counting or verification.
func BenchmarkEncodeBatch(b *testing.B) {
	s := workload.Suite()[0].Muxed()
	syms := make([]codec.Symbol, s.Len())
	for i, e := range s.Entries {
		syms[i] = codec.SymbolOf(e)
	}
	out := make([]uint64, len(syms))
	for _, name := range []string{"binary", "gray", "t0", "businvert", "t0bi", "dualt0", "dualt0bi"} {
		b.Run(name, func(b *testing.B) {
			enc := codec.AsBatch(codec.MustNew(name, core.Width, codec.Options{Stride: 4}).NewEncoder())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				enc.EncodeBatch(syms, out)
			}
			b.ReportMetric(float64(len(syms))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Msym/s")
		})
	}
}

// BenchmarkStreamPipeline measures the single-pass streaming fan-out:
// each iteration re-parses a serialized binary trace and prices all
// seven paper codecs concurrently under the bounded-memory pipeline.
// The serialization happens once, outside the timer; with -benchmem,
// allocs/op should stay flat as the trace grows (pooled chunks, bounded
// channels), unlike the materialize-then-run path.
func BenchmarkStreamPipeline(b *testing.B) {
	s := core.ReferenceMuxedStream(1 << 16)
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, s); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	codes := []string{"binary", "gray", "t0", "businvert", "t0bi", "dualt0", "dualt0bi"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := trace.OpenBinary(bytes.NewReader(data), "bench.bin", nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.EvaluateStreaming(r, r.Width(), codes, core.DefaultOptions,
			core.FanoutConfig{Verify: codec.VerifySampled}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.Len())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Msym/s")
}

// BenchmarkMIPSSimulator measures the trace-generation substrate: one full
// run of the espresso kernel per iteration, reporting simulated cycles/op.
func BenchmarkMIPSSimulator(b *testing.B) {
	bench, err := progs.Get("espresso")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := bench.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	var s *trace.Stream
	var stats mips.RunStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, stats, err = mips.Run(prog, "espresso", bench.MaxCycles)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stats.Cycles), "cycles/op")
	b.ReportMetric(float64(s.Len()), "busrefs/op")
}

// BenchmarkArchCharacterization runs the future-work study: best code per
// bus per architecture profile (see internal/arch).
func BenchmarkArchCharacterization(b *testing.B) {
	var muxedBest string
	var muxedSave float64
	for i := 0; i < b.N; i++ {
		for _, p := range arch.Profiles() {
			recs, err := arch.Characterize(p, 20000, 1)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range recs {
				if p.Name == "mips" && r.Bus == "muxed" {
					muxedBest = r.Best
					muxedSave = r.SavingsPct
				}
			}
		}
	}
	if muxedBest == "dualt0bi" {
		b.ReportMetric(1, "mips-muxed-is-dualt0bi")
	}
	b.ReportMetric(muxedSave, "mips-muxed-savings%")
}

// BenchmarkAblationGlitch sweeps the glitch-factor correction of the
// power model: the dual T0_BI / T0 encoder power ratio at a small load
// grows with the modeled glitching of the deep Hamming-distance tree.
func BenchmarkAblationGlitch(b *testing.B) {
	s := core.ReferenceMuxedStream(2000)
	t0, err := core.MeasureHW(hw.T0(core.Width, 2), s)
	if err != nil {
		b.Fatal(err)
	}
	dbi, err := core.MeasureHW(hw.DualT0BI(core.Width, 2), s)
	if err != nil {
		b.Fatal(err)
	}
	var ratios [3]float64
	for i := 0; i < b.N; i++ {
		for gi, gf := range []float64{0, 0.4, 0.8} {
			lib := netlist.DefaultLibrary()
			lib.GlitchFactor = gf
			pT0 := lib.Power(t0.Codec.Enc, t0.EncAct, 100e6, 0.1e-12)
			pDbi := lib.Power(dbi.Codec.Enc, dbi.EncAct, 100e6, 0.1e-12)
			ratios[gi] = pDbi / pT0
		}
	}
	b.ReportMetric(ratios[0], "enc-ratio-gf0")
	b.ReportMetric(ratios[1], "enc-ratio-gf0.4")
	b.ReportMetric(ratios[2], "enc-ratio-gf0.8")
}

// BenchmarkHWComparison measures the extended all-codec hardware table.
func BenchmarkHWComparison(b *testing.B) {
	s := core.ReferenceMuxedStream(1500)
	var rows []core.HWRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = core.HWComparison(s, 2, 0.1e-12)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Name == "dualt0bi" {
			b.ReportMetric(r.BusSavingsPct, "dualt0bi-bus-savings%")
		}
	}
}

// BenchmarkAblationCoupling evaluates the code family under the
// deep-submicron coupling energy model (lambda = coupling/ground cap
// ratio): rankings from the paper's lambda=0 metric shift as lambda grows.
func BenchmarkAblationCoupling(b *testing.B) {
	s := workload.Suite()[0].Muxed()
	names := []string{"binary", "gray", "t0", "dualt0bi"}
	energies := map[string][2]float64{}
	for i := 0; i < b.N; i++ {
		for _, name := range names {
			c := codec.MustNew(name, core.Width, codec.Options{Stride: 4})
			st := codec.Coupling(c, s)
			energies[name] = [2]float64{st.AvgEnergyPerCycle(0), st.AvgEnergyPerCycle(2)}
		}
	}
	bin := energies["binary"]
	for _, name := range names[1:] {
		e := energies[name]
		b.ReportMetric((1-e[0]/bin[0])*100, name+"-savings%-l0")
		b.ReportMetric((1-e[1]/bin[1])*100, name+"-savings%-l2")
	}
}

// BenchmarkSystemEvaluation runs the whole-system power evaluation (MIPS
// program -> encoded off-chip bus) and reports the net saving.
func BenchmarkSystemEvaluation(b *testing.B) {
	bench, err := progs.Get("gzip")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := bench.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	var net float64
	for i := 0; i < b.N; i++ {
		rep, err := system.Evaluate(system.Config{
			Program:   prog,
			MaxCycles: bench.MaxCycles,
			CPUBus: system.BusConfig{
				Code:     "dualt0bi",
				Options:  codec.Options{Stride: 4},
				LineCapF: 50e-12,
				OffChip:  true,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		net = rep.CPUBus.NetSavingsPct
	}
	b.ReportMetric(net, "net-system-savings%")
}

// BenchmarkAblationResilience runs the fault-injection campaign across
// the family: mean error burst per single-event upset. Redundant codes
// pay for power savings with state-dependent error propagation.
func BenchmarkAblationResilience(b *testing.B) {
	s := workload.Suite()[0].Muxed().Slice(0, 5000)
	names := []string{"binary", "businvert", "t0", "dualt0bi", "offset"}
	bursts := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, name := range names {
			c := codec.MustNew(name, core.Width, codec.Options{Stride: 4})
			rep := codec.Resilience(c, s, 20, 9)
			bursts[name] = rep.MeanBurst
		}
	}
	for _, name := range names {
		b.ReportMetric(bursts[name], name+"-mean-burst")
	}
}

// BenchmarkSavingsCurve emits the design-aid curve: predicted vs measured
// T0 savings as a function of the stream's in-sequence probability on the
// single-state Markov model (internal/analytic closed forms).
func BenchmarkSavingsCurve(b *testing.B) {
	const m = 16
	points := []float64{0.2, 0.5, 0.8}
	var preds [3]float64
	for i := 0; i < b.N; i++ {
		for k, p := range points {
			preds[k] = analytic.T0MarkovSavings(p, m) * 100
		}
	}
	for k, p := range points {
		b.ReportMetric(preds[k], fmt.Sprintf("t0-savings%%-p%.1f", p))
	}
	if be, ok := analytic.T0MarkovBreakEven(0.25, m); ok {
		b.ReportMetric(be, "breakeven-p-for-25%")
	}
}
