module busenc

go 1.22
