package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"busenc/internal/core"
	"busenc/internal/serve"
)

// startService brings up an in-process serve.Server behind httptest.
func startService(t *testing.T, cfg serve.Config, start bool) (*serve.Server, string) {
	t.Helper()
	cfg.StoreDir = t.TempDir()
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	if start {
		srv.Start()
	}
	mux := http.NewServeMux()
	srv.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		if start {
			srv.Drain(10 * time.Second)
		}
		ts.Close()
	})
	return srv, ts.URL
}

// TestDriveInProcess runs the whole mixed-traffic scenario against an
// in-process service and checks the collected summary invariants:
// parity on every result, at least one cache hit, and zero lost jobs.
func TestDriveInProcess(t *testing.T) {
	_, url := startService(t, serve.Config{QueueCap: 64, Workers: 2}, true)
	cfg := config{
		tenants:  4,
		duration: 1200 * time.Millisecond,
		entries:  800,
		burst:    4000, // small ballast: the 503 leg is not asserted here
		codes:    "t0,gray",
		queueCap: 64,
		workers:  2,
		sigterm:  false,
	}
	sum, err := drive(url, cfg, nil, io.Discard)
	if err != nil {
		t.Fatalf("drive: %v", err)
	}
	if sum.SyncEvals == 0 {
		t.Error("no sync evals completed")
	}
	if sum.JobsDone == 0 {
		t.Error("no async jobs completed")
	}
	if sum.Uploads == 0 {
		t.Error("no uploads accepted")
	}
	if sum.CacheHits == 0 {
		t.Error("no cache hits: tenants share a digest and codec set, so repeats must hit")
	}
	if sum.ParityErrs != 0 {
		t.Errorf("parity errors = %d, want 0", sum.ParityErrs)
	}
	if sum.LostJobs != 0 {
		t.Errorf("lost jobs = %d, want 0", sum.LostJobs)
	}
	if len(sum.Latencies) == 0 {
		t.Error("no latencies collected")
	}
	rec := sum.record(cfg)
	if err := rec.Validate(); err != nil {
		t.Errorf("summary record invalid: %v", err)
	}
	if rec.Parity != true || rec.LostJobs != 0 {
		t.Errorf("record invariants: parity=%v lost=%d", rec.Parity, rec.LostJobs)
	}
}

// TestEvalAsyncQueueFull checks the harness's 503 accounting against a
// server whose workers never start: the queue wedges deterministically
// and the overflow request must be recorded as a queue-full rejection
// with its Retry-After header observed.
func TestEvalAsyncQueueFull(t *testing.T) {
	_, url := startService(t, serve.Config{QueueCap: 1, Workers: 1}, false)
	client := &http.Client{Timeout: 10 * time.Second}
	st := &loadState{outstanding: map[string]time.Time{}, expected: map[string][]int64{}}

	digest, err := uploadStream(client, url, 200, st)
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	if _, ok := evalAsync(client, url, "t0", digest, "gray", "", st); !ok {
		t.Fatal("first async eval should be accepted")
	}
	if _, ok := evalAsync(client, url, "t0", digest, "gray", "", st); ok {
		t.Fatal("second async eval should hit the full queue")
	}
	if st.sum.QueueFull503 != 1 {
		t.Errorf("QueueFull503 = %d, want 1", st.sum.QueueFull503)
	}
	if !st.sum.RetryAfter {
		t.Error("Retry-After header was not recorded from the 503")
	}
	if st.sum.Accepted != 1 || len(st.outstanding) != 1 {
		t.Errorf("accepted = %d outstanding = %d, want 1/1", st.sum.Accepted, len(st.outstanding))
	}
}

// uploadStream uploads a fresh reference stream and returns its digest.
func uploadStream(client *http.Client, url string, entries int, st *loadState) (string, error) {
	return upload(client, url, "t0", core.ReferenceMuxedStream(entries), st)
}

func TestPercentiles(t *testing.T) {
	if p50, p95, p99 := percentiles(nil); p50 != 0 || p95 != 0 || p99 != 0 {
		t.Errorf("empty percentiles = %v %v %v, want zeros", p50, p95, p99)
	}
	lat := make([]time.Duration, 100)
	for i := range lat {
		lat[i] = time.Duration(i+1) * time.Millisecond
	}
	p50, p95, p99 := percentiles(lat)
	if p50 != 50*time.Millisecond || p95 != 95*time.Millisecond || p99 != 99*time.Millisecond {
		t.Errorf("percentiles = %v %v %v", p50, p95, p99)
	}
}

func TestContractMisses(t *testing.T) {
	good := summary{
		JobsDone: 5, SyncEvals: 9, CacheHits: 3, QueueFull503: 1,
		RetryAfter: true, Sigtermed: true, DrainedClean: true,
	}
	if msgs := good.contractMisses(config{spawn: "x", sigterm: true}); len(msgs) != 0 {
		t.Errorf("clean summary flagged: %v", msgs)
	}
	bad := summary{JobsDone: 5, SyncEvals: 9}
	msgs := bad.contractMisses(config{spawn: "x", sigterm: true})
	joined := strings.Join(msgs, "; ")
	for _, want := range []string{"cache", "503", "Retry-After", "SIGTERM", "cleanly"} {
		if !strings.Contains(joined, want) {
			t.Errorf("contract misses %q lack %q", joined, want)
		}
	}
	lost := summary{
		JobsDone: 5, SyncEvals: 9, CacheHits: 3, QueueFull503: 1,
		RetryAfter: true, LostJobs: 2,
	}
	if msgs := lost.contractMisses(config{}); len(msgs) != 1 || !strings.Contains(msgs[0], "terminal") {
		t.Errorf("lost-jobs summary misses = %v", msgs)
	}
}
