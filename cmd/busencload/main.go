// Command busencload is the load harness for the busencd evaluation
// service: it drives mixed upload / eval / poll traffic from N
// concurrent tenants against a live daemon, checks every returned
// result against an in-process reference evaluation of the same
// generated stream (parity), and reports a latency table plus a
// BENCH_serve.json record for the regression guard.
//
//	busencload -addr 127.0.0.1:8377 -tenants 8 -duration 3s
//	busencload -spawn ./busencd -tenants 32 -duration 5s -smoke
//
// With -spawn the harness launches its own busencd on an ephemeral
// port (parsing the bound address from the child's stdout), forces a
// queue-full burst against a deliberately small -queue-cap, and sends
// the child SIGTERM mid-run with jobs still in flight. -smoke then
// asserts the service contract: at least one queue-full 503 carrying
// Retry-After, at least one result served from the cache, parity on
// every collected result, zero accepted jobs lost across the drain,
// and a clean child exit.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"busenc/internal/bench"
	"busenc/internal/codec"
	"busenc/internal/core"
	"busenc/internal/serve"
	"busenc/internal/trace"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

type config struct {
	addr     string
	spawn    string
	tenants  int
	duration time.Duration
	entries  int
	burst    int
	codes    string
	queueCap int
	workers  int
	smoke    bool
	sigterm  bool
	benchOut string
	spansOut string
	jsonOut  bool
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("busencload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", "", "address of a running busencd (mutually exclusive with -spawn)")
	fs.StringVar(&cfg.spawn, "spawn", "", "path to a busencd binary to launch on an ephemeral port")
	fs.IntVar(&cfg.tenants, "tenants", 8, "concurrent tenants")
	fs.DurationVar(&cfg.duration, "duration", 3*time.Second, "steady-state traffic duration")
	fs.IntVar(&cfg.entries, "entries", 2000, "entries in the small (synchronously evaluated) trace")
	fs.IntVar(&cfg.burst, "burst", 1<<21, "entries in the large trace used to force queue-full backpressure")
	fs.StringVar(&cfg.codes, "codes", "t0,gray", "codec list under test")
	fs.IntVar(&cfg.queueCap, "queue-cap", 4, "queue capacity for a spawned daemon")
	fs.IntVar(&cfg.workers, "workers", 2, "worker pool size for a spawned daemon")
	fs.BoolVar(&cfg.smoke, "smoke", false, "enforce the service-contract assertions (exit 1 on any miss)")
	fs.BoolVar(&cfg.sigterm, "sigterm", true, "with -spawn: SIGTERM the daemon mid-run and verify the drain")
	fs.StringVar(&cfg.benchOut, "benchjson", "", "write a BENCH_serve.json record here")
	fs.StringVar(&cfg.spansOut, "spansout", "", "dump the daemon's span flight recorder here before shutdown")
	fs.BoolVar(&cfg.jsonOut, "json", false, "print the summary as JSON instead of the table")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (cfg.addr == "") == (cfg.spawn == "") {
		fmt.Fprintln(stderr, "busencload: exactly one of -addr or -spawn is required")
		return 2
	}
	if cfg.tenants < 1 {
		cfg.tenants = 1
	}

	var child *daemon
	if cfg.spawn != "" {
		var err error
		child, err = spawnDaemon(cfg, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "busencload: %v\n", err)
			return 1
		}
		cfg.addr = child.addr
		defer child.kill()
	}

	sum, err := drive("http://"+cfg.addr, cfg, child, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "busencload: %v\n", err)
		return 1
	}
	report(stdout, cfg, sum)

	if cfg.benchOut != "" {
		if err := bench.WriteRecord(cfg.benchOut, sum.record(cfg)); err != nil {
			fmt.Fprintf(stderr, "busencload: %v\n", err)
			return 1
		}
	}
	if cfg.smoke {
		if msgs := sum.contractMisses(cfg); len(msgs) > 0 {
			for _, m := range msgs {
				fmt.Fprintf(stderr, "busencload: SMOKE FAIL: %s\n", m)
			}
			return 1
		}
		fmt.Fprintln(stdout, "busencload: smoke ok")
	}
	return 0
}

// daemon is a spawned busencd child.
type daemon struct {
	cmd      *exec.Cmd
	addr     string
	storeDir string
	exitCh   chan error
	exitOnce sync.Once
	exitErr  error
}

// spawnDaemon launches busencd on an ephemeral port and parses the
// bound address from its stdout banner.
func spawnDaemon(cfg config, stderr io.Writer) (*daemon, error) {
	storeDir, err := os.MkdirTemp("", "busencload-store-")
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(cfg.spawn,
		"-listen", "127.0.0.1:0",
		"-store", storeDir,
		"-queue-cap", fmt.Sprint(cfg.queueCap),
		"-workers", fmt.Sprint(cfg.workers),
		"-drain-linger", "750ms",
	)
	cmd.Stderr = stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	d := &daemon{cmd: cmd, storeDir: storeDir, exitCh: make(chan error, 1)}
	go func() { d.exitCh <- cmd.Wait() }()

	// First stdout line: "busencd: listening on HOST:PORT (...)".
	sc := bufio.NewScanner(out)
	deadline := time.After(10 * time.Second)
	got := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if f := strings.Fields(line); len(f) >= 4 && strings.Contains(line, "listening on") {
				got <- f[3]
				break
			}
		}
		close(got)
	}()
	select {
	case addr, ok := <-got:
		if !ok || addr == "" {
			d.kill()
			return nil, fmt.Errorf("spawned daemon exited before announcing its address")
		}
		d.addr = addr
		go io.Copy(io.Discard, out) // keep the pipe drained
		return d, nil
	case <-deadline:
		d.kill()
		return nil, fmt.Errorf("spawned daemon never announced its address")
	}
}

// sigterm delivers the drain signal.
func (d *daemon) sigterm() error { return d.cmd.Process.Signal(syscall.SIGTERM) }

// waitExit blocks for process exit and returns its error (nil = clean).
func (d *daemon) waitExit(timeout time.Duration) error {
	d.exitOnce.Do(func() {
		select {
		case d.exitErr = <-d.exitCh:
		case <-time.After(timeout):
			d.exitErr = fmt.Errorf("daemon did not exit within %s", timeout)
			d.cmd.Process.Kill()
		}
	})
	return d.exitErr
}

func (d *daemon) kill() {
	if d.cmd.Process != nil {
		d.cmd.Process.Kill()
	}
	if d.storeDir != "" {
		os.RemoveAll(d.storeDir)
	}
}

// summary aggregates one load run.
type summary struct {
	JobsDone     int64           `json:"jobs_done"`
	SyncEvals    int64           `json:"sync_evals"`
	Uploads      int64           `json:"uploads"`
	CacheHits    int64           `json:"cache_hits"`
	QueueFull503 int64           `json:"queue_full_503"`
	RateLimited  int64           `json:"rate_limited_429"`
	Accepted     int64           `json:"accepted_jobs"`
	LostJobs     int64           `json:"lost_jobs"`
	ParityErrs   int64           `json:"parity_errors"`
	RetryAfter   bool            `json:"retry_after_seen"`
	DrainedClean bool            `json:"drained_clean"`
	Sigtermed    bool            `json:"sigtermed"`
	Elapsed      time.Duration   `json:"elapsed_ns"`
	Latencies    []time.Duration `json:"-"`
}

func (s *summary) record(cfg config) bench.ServeRecord {
	p50, p95, p99 := percentiles(s.Latencies)
	return bench.ServeRecord{
		Bench:         bench.ServeBenchName,
		NumCPU:        runtime.NumCPU(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Tenants:       cfg.tenants,
		Workers:       cfg.workers,
		QueueCap:      cfg.queueCap,
		DurationNs:    s.Elapsed.Nanoseconds(),
		JobsDone:      s.JobsDone,
		SyncEvals:     s.SyncEvals,
		Uploads:       s.Uploads,
		CacheHits:     s.CacheHits,
		QueueFull503:  s.QueueFull503,
		LostJobs:      s.LostJobs,
		P50Ns:         p50.Nanoseconds(),
		P95Ns:         p95.Nanoseconds(),
		P99Ns:         p99.Nanoseconds(),
		ThroughputJPS: float64(s.JobsDone+s.SyncEvals) / s.Elapsed.Seconds(),
		Parity:        s.ParityErrs == 0,
	}
}

// contractMisses lists every smoke assertion the run failed to satisfy.
func (s *summary) contractMisses(cfg config) []string {
	var out []string
	if s.JobsDone == 0 {
		out = append(out, "no async jobs completed")
	}
	if s.SyncEvals == 0 {
		out = append(out, "no synchronous evals completed")
	}
	if s.ParityErrs > 0 {
		out = append(out, fmt.Sprintf("%d results diverged from the reference evaluation", s.ParityErrs))
	}
	if s.CacheHits == 0 {
		out = append(out, "no response was served from the result cache")
	}
	if s.QueueFull503 == 0 {
		out = append(out, "no queue-full 503 was provoked")
	}
	if !s.RetryAfter {
		out = append(out, "no 503 carried a Retry-After header")
	}
	if s.LostJobs > 0 {
		out = append(out, fmt.Sprintf("%d accepted jobs never reached a terminal state", s.LostJobs))
	}
	if cfg.spawn != "" && cfg.sigterm {
		if !s.Sigtermed {
			out = append(out, "the mid-run SIGTERM was never delivered")
		}
		if !s.DrainedClean {
			out = append(out, "the daemon did not exit cleanly after the drain")
		}
	}
	return out
}

// loadState is the shared mutable state of one run.
type loadState struct {
	mu           sync.Mutex
	sum          summary
	outstanding  map[string]time.Time // job ID → enqueue time
	expected     map[string][]int64   // stream key → per-codec reference transitions
	smallEntries int64                // cycle count identifying the small stream's jobs
}

func (st *loadState) note(f func(*summary)) {
	st.mu.Lock()
	f(&st.sum)
	st.mu.Unlock()
}

// drive runs the whole scenario against baseURL and aggregates the
// summary. child may be nil (an external -addr daemon: no SIGTERM leg).
func drive(baseURL string, cfg config, child *daemon, stderr io.Writer) (*summary, error) {
	client := &http.Client{Timeout: 60 * time.Second}
	st := &loadState{
		outstanding: make(map[string]time.Time),
		expected:    make(map[string][]int64),
	}
	codes := serve.NormalizeCodes(cfg.codes)

	// Two shared streams: a small one (sync-routed, cache-friendly — all
	// tenants share its digest) and a large one whose evaluations are
	// slow enough to wedge the queue during the backpressure burst.
	small := core.ReferenceMuxedStream(cfg.entries)
	big := core.ReferenceMuxedStream(cfg.burst)
	if err := st.reference("small", small, codes); err != nil {
		return nil, err
	}
	st.smallEntries = int64(len(small.Entries))

	smallDigest, err := upload(client, baseURL, "seed", small, st)
	if err != nil {
		return nil, fmt.Errorf("seed upload: %v", err)
	}
	bigDigest, err := upload(client, baseURL, "seed", big, st)
	if err != nil {
		return nil, fmt.Errorf("seed upload (burst trace): %v", err)
	}

	start := time.Now()
	deadline := start.Add(cfg.duration)

	// Steady-state traffic: every tenant mixes re-uploads (dedup), sync
	// evals, async evals and polls over the shared digest.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < cfg.tenants; i++ {
		wg.Add(1)
		go func(tenant string, seq int) {
			defer wg.Done()
			for n := 0; time.Now().Before(deadline); n++ {
				select {
				case <-stop:
					return
				default:
				}
				switch (n + seq) % 4 {
				case 0:
					// Re-upload: content-addressed dedup, same digest back.
					if d, err := upload(client, baseURL, tenant, small, st); err == nil && d != smallDigest {
						st.note(func(s *summary) { s.ParityErrs++ })
						fmt.Fprintf(stderr, "busencload: dedup digest mismatch: %s vs %s\n", d, smallDigest)
					}
				case 1, 2:
					evalSync(client, baseURL, tenant, smallDigest, cfg.codes, codes, st, stderr)
				case 3:
					if id, ok := evalAsync(client, baseURL, tenant, smallDigest, cfg.codes, "", st); ok {
						pollJob(client, baseURL, tenant, id, codes, st, stderr)
					}
				}
			}
		}(fmt.Sprintf("tenant%02d", i), i)
	}

	// Backpressure burst, partway in: flood the queue with slow async
	// jobs on the big trace until at least one 503 lands. The worker
	// pool and queue of a spawned daemon are sized so one round is
	// normally enough; retry a few rounds against an external daemon.
	time.Sleep(cfg.duration / 2)
	for attempt := 0; attempt < 5; attempt++ {
		burstOnce(client, baseURL, bigDigest, cfg, attempt, st)
		st.mu.Lock()
		got := st.sum.QueueFull503 > 0
		st.mu.Unlock()
		if got {
			break
		}
	}

	// Optional mid-drain SIGTERM: let the steady-state traffic run out
	// its full duration, refill the queue with slow jobs so the signal
	// lands with work genuinely in flight, then collect every
	// outstanding job through the drain.
	if child != nil && cfg.sigterm {
		if rem := time.Until(deadline); rem > 0 {
			time.Sleep(rem)
		}
		if cfg.spansOut != "" {
			dumpSpans(client, baseURL, cfg.spansOut, stderr)
		}
		burstOnce(client, baseURL, bigDigest, cfg, 5, st)
		close(stop)
		wg.Wait()
		if err := child.sigterm(); err != nil {
			return nil, fmt.Errorf("SIGTERM: %v", err)
		}
		st.note(func(s *summary) { s.Sigtermed = true })
		collectOutstanding(client, baseURL, codes, st, stderr)
		if err := child.waitExit(2 * time.Minute); err != nil {
			fmt.Fprintf(stderr, "busencload: daemon exit: %v\n", err)
		} else {
			st.note(func(s *summary) { s.DrainedClean = true })
		}
	} else {
		wg.Wait()
		close(stop)
		if cfg.spansOut != "" {
			dumpSpans(client, baseURL, cfg.spansOut, stderr)
		}
		collectOutstanding(client, baseURL, codes, st, stderr)
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	st.sum.LostJobs = int64(len(st.outstanding))
	st.sum.Elapsed = time.Since(start)
	out := st.sum
	return &out, nil
}

// reference computes the in-process expected transitions for a stream.
func (st *loadState) reference(key string, s *trace.Stream, codes []string) error {
	res, err := core.EvaluateParallel(s, s.Width, codes, core.DefaultOptions, core.ParallelConfig{Shards: 1})
	if err != nil {
		return err
	}
	exp := make([]int64, len(res))
	for i, r := range res {
		exp[i] = r.Transitions
	}
	st.expected[key] = exp
	return nil
}

// checkParity compares served results against the reference for key.
// Streams without a precomputed reference (the burst ballast) skip.
func (st *loadState) checkParity(key string, results []codec.Result, stderr io.Writer) {
	exp, have := st.expected[key]
	if !have {
		return
	}
	ok := len(results) == len(exp)
	if ok {
		for i := range exp {
			if results[i].Transitions != exp[i] {
				ok = false
				break
			}
		}
	}
	if !ok {
		st.note(func(s *summary) { s.ParityErrs++ })
		fmt.Fprintf(stderr, "busencload: parity mismatch for %s: got %v want %v\n", key, results, exp)
	}
}

func upload(client *http.Client, baseURL, tenant string, s *trace.Stream, st *loadState) (string, error) {
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, s); err != nil {
		return "", err
	}
	req, err := http.NewRequest(http.MethodPost, baseURL+"/traces", &buf)
	if err != nil {
		return "", err
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("upload: %d %s", resp.StatusCode, body)
	}
	var meta serve.TraceMeta
	if err := json.Unmarshal(body, &meta); err != nil {
		return "", err
	}
	st.note(func(s *summary) { s.Uploads++ })
	return meta.Digest, nil
}

func get(client *http.Client, url, tenant string) (*http.Response, []byte, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body, err
}

// evalSync runs one synchronous /eval and records latency + parity.
func evalSync(client *http.Client, baseURL, tenant, digest, codesParam string, codes []string, st *loadState, stderr io.Writer) {
	t0 := time.Now()
	resp, body, err := get(client, baseURL+"/eval?trace="+digest+"&codes="+codesParam, tenant)
	if err != nil {
		return // transport error during shutdown windows is not a contract miss
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		st.note(func(s *summary) { s.RateLimited++ })
		return
	case http.StatusServiceUnavailable:
		st.note(func(s *summary) {
			s.QueueFull503++
			if resp.Header.Get("Retry-After") != "" {
				s.RetryAfter = true
			}
		})
		return
	default:
		fmt.Fprintf(stderr, "busencload: sync eval: %d %s\n", resp.StatusCode, body)
		st.note(func(s *summary) { s.ParityErrs++ })
		return
	}
	var er serve.EvalResponse
	if err := json.Unmarshal(body, &er); err != nil {
		st.note(func(s *summary) { s.ParityErrs++ })
		return
	}
	lat := time.Since(t0)
	st.checkParity("small", er.Results, stderr)
	st.note(func(s *summary) {
		s.SyncEvals++
		s.Latencies = append(s.Latencies, lat)
		if er.Cached {
			s.CacheHits++
		}
	})
}

// evalAsync enqueues one async job; extra is appended to the query
// string verbatim. Returns the job ID when accepted.
func evalAsync(client *http.Client, baseURL, tenant, digest, codesParam, extra string, st *loadState) (string, bool) {
	resp, body, err := get(client, baseURL+"/eval?trace="+digest+"&codes="+codesParam+"&mode=async"+extra, tenant)
	if err != nil {
		return "", false
	}
	switch resp.StatusCode {
	case http.StatusAccepted:
	case http.StatusServiceUnavailable:
		st.note(func(s *summary) {
			s.QueueFull503++
			if resp.Header.Get("Retry-After") != "" {
				s.RetryAfter = true
			}
		})
		return "", false
	case http.StatusTooManyRequests:
		st.note(func(s *summary) { s.RateLimited++ })
		return "", false
	default:
		return "", false
	}
	var enq struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &enq); err != nil || enq.ID == "" {
		return "", false
	}
	st.mu.Lock()
	st.sum.Accepted++
	st.outstanding[enq.ID] = time.Now()
	st.mu.Unlock()
	return enq.ID, true
}

// pollJob long-polls one accepted job to a terminal state, recording
// latency, cache hits and parity. Jobs that cannot be confirmed stay in
// the outstanding set and count as lost at the end of the run.
func pollJob(client *http.Client, baseURL, tenant, id string, codes []string, st *loadState, stderr io.Writer) bool {
	st.mu.Lock()
	enq, tracked := st.outstanding[id]
	st.mu.Unlock()
	if !tracked {
		return true
	}
	for deadline := time.Now().Add(90 * time.Second); time.Now().Before(deadline); {
		resp, body, err := get(client, baseURL+"/jobs/"+id+"?wait=5s", tenant)
		if err != nil {
			// The socket can die between drain completion and our poll;
			// brief retry separates that race from a genuinely lost job.
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(stderr, "busencload: poll %s: %d %s\n", id, resp.StatusCode, body)
			return false
		}
		var snap serve.Snapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			return false
		}
		switch snap.State {
		case serve.JobDone:
			lat := time.Since(enq)
			st.checkParity(st.parityKey(snap.Entries), snap.Results, stderr)
			st.mu.Lock()
			// Two pollers can race on the same job (a burst drainer and
			// the final collector); only the one that removes it from
			// the outstanding set gets to count it.
			if _, mine := st.outstanding[id]; mine {
				delete(st.outstanding, id)
				st.sum.JobsDone++
				st.sum.Latencies = append(st.sum.Latencies, lat)
				if snap.Cached {
					st.sum.CacheHits++
				}
			}
			st.mu.Unlock()
			return true
		case serve.JobFailed:
			fmt.Fprintf(stderr, "busencload: job %s failed: %s\n", id, snap.Error)
			st.mu.Lock()
			if _, mine := st.outstanding[id]; mine {
				delete(st.outstanding, id)
				st.sum.ParityErrs++
			}
			st.mu.Unlock()
			return false
		}
	}
	return false
}

// parityKey maps a job's cycle count to the reference stream it ran
// over ("small" has a reference; the burst trace is latency ballast and
// skips the check).
func (st *loadState) parityKey(entries int64) string {
	if entries == st.smallEntries {
		return "small"
	}
	return ""
}

// burstOnce floods the queue with slow jobs to provoke ErrQueueFull.
// Each attempt uses a distinct stride (powers of two — the codecs
// reject anything else) so its cache key differs from every earlier
// round — a cached burst job completes instantly and would never wedge
// the queue. The workers are seeded with slow jobs first, then the
// queue is flooded while they are busy.
func burstOnce(client *http.Client, baseURL, bigDigest string, cfg config, attempt int, st *loadState) {
	extra := fmt.Sprintf("&stride=%d", 1<<attempt)
	submit := func(n, base int) []string {
		var wg sync.WaitGroup
		ids := make(chan string, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				tenant := fmt.Sprintf("burst%02d", base+i)
				// codes=all deliberately includes the slow scalar-only
				// codecs (adaptive, workzone) so each burst job holds a
				// worker long enough for the flood to pile up behind it.
				if id, ok := evalAsync(client, baseURL, tenant, bigDigest, "all", extra, st); ok {
					ids <- id
				}
			}(i)
		}
		wg.Wait()
		close(ids)
		var out []string
		for id := range ids {
			out = append(out, id)
		}
		return out
	}
	seeded := submit(cfg.workers, 0)
	time.Sleep(100 * time.Millisecond) // let the seeds occupy the workers
	flood := submit(cfg.queueCap+24, cfg.workers)
	// Drain the accepted burst jobs in the background; their terminal
	// states are collected (or counted lost) by collectOutstanding.
	for _, id := range append(seeded, flood...) {
		go pollJob(client, baseURL, "burst", id, nil, st, io.Discard)
	}
}

// collectOutstanding polls every still-untracked job to terminal state;
// anything left afterwards is a lost job.
func collectOutstanding(client *http.Client, baseURL string, codes []string, st *loadState, stderr io.Writer) {
	st.mu.Lock()
	ids := make([]string, 0, len(st.outstanding))
	for id := range st.outstanding {
		ids = append(ids, id)
	}
	st.mu.Unlock()
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			pollJob(client, baseURL, "collect", id, codes, st, stderr)
		}(id)
	}
	wg.Wait()
}

// dumpSpans saves the daemon's span flight recorder to a file.
func dumpSpans(client *http.Client, baseURL, path string, stderr io.Writer) {
	resp, body, err := get(client, baseURL+"/spans", "loadgen")
	if err != nil || resp.StatusCode != http.StatusOK {
		fmt.Fprintf(stderr, "busencload: span dump failed: %v\n", err)
		return
	}
	if err := os.WriteFile(path, body, 0o644); err != nil {
		fmt.Fprintf(stderr, "busencload: span dump: %v\n", err)
	}
}

// percentiles returns p50/p95/p99 of the collected latencies.
func percentiles(lat []time.Duration) (p50, p95, p99 time.Duration) {
	if len(lat) == 0 {
		return 0, 0, 0
	}
	s := make([]time.Duration, len(lat))
	copy(s, lat)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return at(0.50), at(0.95), at(0.99)
}

// report prints the human latency table (or the JSON summary).
func report(w io.Writer, cfg config, sum *summary) {
	if cfg.jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(sum)
		return
	}
	p50, p95, p99 := percentiles(sum.Latencies)
	fmt.Fprintf(w, "busencload: %d tenants for %s against queue-cap %d / %d workers\n",
		cfg.tenants, sum.Elapsed.Round(time.Millisecond), cfg.queueCap, cfg.workers)
	fmt.Fprintf(w, "  %-22s %d\n", "sync evals", sum.SyncEvals)
	fmt.Fprintf(w, "  %-22s %d (of %d accepted)\n", "async jobs done", sum.JobsDone, sum.Accepted)
	fmt.Fprintf(w, "  %-22s %d\n", "uploads accepted", sum.Uploads)
	fmt.Fprintf(w, "  %-22s %d\n", "cache hits", sum.CacheHits)
	fmt.Fprintf(w, "  %-22s %d (retry-after seen: %v)\n", "queue-full 503s", sum.QueueFull503, sum.RetryAfter)
	fmt.Fprintf(w, "  %-22s %d\n", "rate-limited 429s", sum.RateLimited)
	fmt.Fprintf(w, "  %-22s %d\n", "lost jobs", sum.LostJobs)
	fmt.Fprintf(w, "  %-22s %d\n", "parity errors", sum.ParityErrs)
	fmt.Fprintf(w, "  %-22s p50 %s  p95 %s  p99 %s\n", "eval latency",
		p50.Round(time.Microsecond), p95.Round(time.Microsecond), p99.Round(time.Microsecond))
	if sum.Elapsed > 0 {
		fmt.Fprintf(w, "  %-22s %.1f evals/s\n", "throughput",
			float64(sum.JobsDone+sum.SyncEvals)/sum.Elapsed.Seconds())
	}
	if sum.Sigtermed {
		fmt.Fprintf(w, "  %-22s drained clean: %v\n", "SIGTERM", sum.DrainedClean)
	}
}
