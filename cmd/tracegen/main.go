// Command tracegen generates address trace files, either by running one of
// the bundled benchmark programs on the MIPS simulator or from the
// calibrated synthetic workload models.
//
// Usage:
//
//	tracegen -bench gzip -o gzip.trace            # MIPS simulation
//	tracegen -bench gzip -synthetic -o g.trace    # synthetic model
//	tracegen -bench gzip -class instr -o i.trace  # instruction sub-stream
//	tracegen -list                                # list benchmarks
//	tracegen -bench gzip -format text -o -        # text format to stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"busenc/internal/mips"
	"busenc/internal/mips/progs"
	"busenc/internal/trace"
	"busenc/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (see -list)")
	list := flag.Bool("list", false, "list available benchmarks")
	synthetic := flag.Bool("synthetic", false, "use the synthetic workload model instead of the MIPS simulator")
	class := flag.String("class", "muxed", "stream class: instr | data | muxed")
	format := flag.String("format", "binary", "trace file format: binary | text")
	out := flag.String("o", "-", "output file (- for stdout)")
	flag.Parse()

	if *list {
		for _, n := range progs.PaperOrder() {
			b, _ := progs.Get(n)
			fmt.Printf("%-10s %s\n", b.Name, b.About)
		}
		return
	}
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -bench is required (or -list)")
		os.Exit(2)
	}
	s, err := generate(*bench, *synthetic, *class)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "binary":
		err = trace.WriteBinary(w, s)
	case "text":
		err = trace.WriteText(w, s)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func generate(bench string, synthetic bool, class string) (*trace.Stream, error) {
	var muxed *trace.Stream
	if synthetic {
		for _, b := range workload.Suite() {
			if b.Name == bench {
				switch class {
				case "instr":
					return b.Instr(), nil
				case "data":
					return b.Data(), nil
				case "muxed":
					return b.Muxed(), nil
				}
				return nil, fmt.Errorf("unknown class %q", class)
			}
		}
		return nil, fmt.Errorf("unknown synthetic benchmark %q", bench)
	}
	b, err := progs.Get(bench)
	if err != nil {
		return nil, err
	}
	p, err := b.Assemble()
	if err != nil {
		return nil, err
	}
	muxed, _, err = mips.Run(p, bench, b.MaxCycles)
	if err != nil {
		return nil, err
	}
	switch class {
	case "instr":
		return muxed.InstrOnly(), nil
	case "data":
		return muxed.DataOnly(), nil
	case "muxed":
		return muxed, nil
	}
	return nil, fmt.Errorf("unknown class %q", class)
}
