package main

import (
	"testing"
)

func TestGenerateMIPSClasses(t *testing.T) {
	for _, class := range []string{"instr", "data", "muxed"} {
		s, err := generate("ghostview", false, class)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if s.Len() == 0 {
			t.Errorf("%s: empty stream", class)
		}
	}
	instr, _ := generate("ghostview", false, "instr")
	muxed, _ := generate("ghostview", false, "muxed")
	if instr.Len() >= muxed.Len() {
		t.Error("instruction sub-stream should be shorter than the muxed stream")
	}
}

func TestGenerateSyntheticClasses(t *testing.T) {
	for _, class := range []string{"instr", "data", "muxed"} {
		s, err := generate("gzip", true, class)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if s.Len() == 0 {
			t.Errorf("%s: empty stream", class)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := generate("nope", false, "muxed"); err == nil {
		t.Error("unknown MIPS benchmark accepted")
	}
	if _, err := generate("nope", true, "muxed"); err == nil {
		t.Error("unknown synthetic benchmark accepted")
	}
	if _, err := generate("gzip", true, "zipped"); err == nil {
		t.Error("unknown class accepted (synthetic)")
	}
	if _, err := generate("gzip", false, "zipped"); err == nil {
		t.Error("unknown class accepted (mips)")
	}
}
