package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"busenc/internal/trace"
	"busenc/internal/workload"
)

// captureStdout runs f with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput: %s", ferr, out)
	}
	return out
}

// writeTempTrace persists a synthetic benchmark trace for the CLI to read.
func writeTempTrace(t *testing.T, format string) string {
	t.Helper()
	s := workload.Suite()[0].Muxed().Slice(0, 3000)
	path := filepath.Join(t.TempDir(), "trace."+format)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if format == "text" {
		err = trace.WriteText(f, s)
	} else {
		err = trace.WriteBinary(f, s)
	}
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAnalyzesTrace(t *testing.T) {
	path := writeTempTrace(t, "binary")
	out := captureStdout(t, func() error {
		return run(path, "t0,businvert,dualt0bi", 4, "binary", 0, 1, false)
	})
	for _, want := range []string{"in-sequence", "t0", "businvert", "dualt0bi", "savings"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllCodesAndStatsOnly(t *testing.T) {
	path := writeTempTrace(t, "text")
	out := captureStdout(t, func() error {
		return run(path, "all", 4, "text", 0, 2, false)
	})
	if !strings.Contains(out, "adaptive") || !strings.Contains(out, "beach") {
		t.Errorf("\"all\" should cover every registered code:\n%s", out)
	}
	stats := captureStdout(t, func() error {
		return run(path, "all", 4, "text", 0, 1, true)
	})
	if strings.Contains(stats, "adaptive") {
		t.Error("-stats must not run the codecs")
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTempTrace(t, "binary")
	// Suppress the stats lines run() prints before hitting each error.
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	old := os.Stdout
	os.Stdout = null
	defer func() { os.Stdout = old }()
	if err := run(path, "nope", 4, "binary", 0, 1, false); err == nil {
		t.Error("unknown code accepted")
	}
	if err := run(path, "all", 4, "yaml", 0, 1, false); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "missing"), "all", 4, "binary", 0, 1, false); err == nil {
		t.Error("missing file accepted")
	}
}

func TestEmitWordsRoundTrip(t *testing.T) {
	path := writeTempTrace(t, "binary")
	out := filepath.Join(t.TempDir(), "words.txt")
	if err := emitWords(path, "t0", 4, "binary", 0, 1, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// Header plus one word per reference.
	if len(lines) != 3001 {
		t.Fatalf("emitted %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "# busenc encoded stream: code t0") {
		t.Errorf("header: %q", lines[0])
	}
	if len(lines[1]) != 9 { // 33 bus lines -> 9 hex digits
		t.Errorf("word width: %q", lines[1])
	}
}

func TestFitTwinOutput(t *testing.T) {
	path := writeTempTrace(t, "binary")
	out := captureStdout(t, func() error {
		return fitTwin(path, 4, "binary", 0)
	})
	if !strings.Contains(out, "workload.Benchmark{") || !strings.Contains(out, "InstrSeq") {
		t.Errorf("fit output:\n%s", out)
	}
}

func TestProfileWindowsOutput(t *testing.T) {
	path := writeTempTrace(t, "binary")
	out := captureStdout(t, func() error {
		return profileWindows(path, 500, 4, "binary", 0)
	})
	if !strings.Contains(out, "phase profile") || !strings.Contains(out, "window") {
		t.Errorf("profile output:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got < 6 {
		t.Errorf("expected 6 windows, output:\n%s", out)
	}
}

func TestLoadWidthOverride(t *testing.T) {
	path := writeTempTrace(t, "binary")
	s, err := load(path, "binary", 24)
	if err != nil {
		t.Fatal(err)
	}
	if s.Width != 24 {
		t.Errorf("width override ignored: %d", s.Width)
	}
}
