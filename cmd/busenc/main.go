// Command busenc analyzes a trace file under one or more bus encodings:
// it reports stream statistics, transition counts, and savings versus the
// binary reference.
//
// Usage:
//
//	busenc -codes t0,businvert,dualt0bi trace.bin
//	busenc -codes all -stride 4 -format text trace.txt
//	busenc -stats trace.bin          # stream statistics only
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"busenc/internal/codec"
	"busenc/internal/trace"
	"busenc/internal/workload"
)

func main() {
	codes := flag.String("codes", "all", "comma-separated codec list, or \"all\"")
	stride := flag.Uint64("stride", 4, "in-sequence stride S (power of two)")
	format := flag.String("format", "binary", "trace file format: binary | text")
	width := flag.Int("width", 0, "override bus width (0 = use the trace header)")
	statsOnly := flag.Bool("stats", false, "print stream statistics only")
	partitions := flag.Int("partitions", 1, "bus-invert partitions")
	emit := flag.String("emit", "", "encode the trace with this code and write the bus words (hex, one per line) to -o")
	out := flag.String("o", "-", "output file for -emit (- for stdout)")
	fit := flag.Bool("fit", false, "fit a synthetic-twin workload model to the trace and print its parameters")
	profile := flag.Int("profile", 0, "windowed phase profile with this window size (0 = off)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: busenc [flags] <trace-file>")
		os.Exit(2)
	}
	var err error
	switch {
	case *profile > 0:
		err = profileWindows(flag.Arg(0), *profile, *stride, *format, *width)
	case *fit:
		err = fitTwin(flag.Arg(0), *stride, *format, *width)
	case *emit != "":
		err = emitWords(flag.Arg(0), *emit, *stride, *format, *width, *partitions, *out)
	default:
		err = run(flag.Arg(0), *codes, *stride, *format, *width, *partitions, *statsOnly)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "busenc:", err)
		os.Exit(1)
	}
}

// profileWindows prints the windowed phase profile of the trace: per
// window, the in-sequence fraction, data fraction and binary activity —
// with detected phase boundaries marked.
func profileWindows(path string, size int, stride uint64, format string, width int) error {
	s, err := load(path, format, width)
	if err != nil {
		return err
	}
	ws := s.Windows(size, stride)
	changes := map[int]bool{}
	for _, i := range trace.PhaseChanges(ws, 0.25) {
		changes[i] = true
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "phase profile of %q: %d windows of %d refs\n", s.Name, len(ws), size)
	fmt.Fprintln(tw, "window\tstart\tin-seq\tdata\ttrans/cycle\tphase")
	for i, w := range ws {
		mark := ""
		if changes[i] {
			mark = "<- phase change"
		}
		fmt.Fprintf(tw, "%d\t%d\t%.1f%%\t%.1f%%\t%.2f\t%s\n",
			i, w.Start, w.InSeqFrac*100, w.DataFrac*100, w.AvgTransitions, mark)
	}
	return tw.Flush()
}

// fitTwin prints the parameters of a synthetic workload model matched to
// the trace, for reproducible sharing of unshippable traces.
func fitTwin(path string, stride uint64, format string, width int) error {
	s, err := load(path, format, width)
	if err != nil {
		return err
	}
	b := workload.Fit(s.Name+"-twin", s, stride)
	fmt.Printf("synthetic twin of %q (%d refs):\n", s.Name, s.Len())
	fmt.Printf("  workload.Benchmark{Name: %q, InstrSeq: %.4f, DataSeq: %.4f, DataFrac: %.4f, Length: %d, Seed: %d}\n",
		b.Name, b.InstrSeq, b.DataSeq, b.DataFrac, b.Length, b.Seed)
	twin := b.Muxed()
	fmt.Printf("  twin muxed in-seq %.2f%% vs original %.2f%%\n",
		twin.InSeqFraction(stride)*100, s.InSeqFraction(stride)*100)
	return nil
}

// emitWords writes the encoded bus-word sequence, for feeding external
// tools (waveform generators, RTL testbenches for cmd/hwgen output).
func emitWords(path, code string, stride uint64, format string, width, partitions int, out string) error {
	s, err := load(path, format, width)
	if err != nil {
		return err
	}
	c, err := codec.New(code, s.Width, codec.Options{Stride: stride, Partitions: partitions, Train: s})
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# busenc encoded stream: code %s, %d bus lines (payload %d)\n", code, c.BusWidth(), c.PayloadWidth())
	for _, word := range codec.EncodeAll(c, s) {
		fmt.Fprintf(bw, "%0*x\n", (c.BusWidth()+3)/4, word)
	}
	return bw.Flush()
}

// load reads a trace file in the given format.
func load(path, format string, width int) (*trace.Stream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var s *trace.Stream
	switch format {
	case "binary":
		s, err = trace.ReadBinaryNamed(f, path)
	case "text":
		s, err = trace.ReadTextNamed(f, path)
	default:
		err = fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return nil, err
	}
	if width > 0 {
		s.Width = width
	}
	return s, nil
}

func run(path, codes string, stride uint64, format string, width, partitions int, statsOnly bool) error {
	s, err := load(path, format, width)
	if err != nil {
		return err
	}

	st := s.Analyze(stride)
	fmt.Printf("stream %q: %d references, width %d\n", s.Name, st.Length, s.Width)
	fmt.Printf("  in-sequence (stride %d): %.2f%%  (max run %d, mean run %.1f)\n",
		stride, st.InSeqFrac*100, st.MaxRunLen, st.MeanRunLen)
	fmt.Printf("  unique addresses: %d   binary transitions: %d (%.3f/cycle)\n",
		st.UniqueAddrs, st.BinaryTransitions, float64(st.BinaryTransitions)/float64(max64(1, int64(st.Length-1))))
	if statsOnly {
		return nil
	}

	var names []string
	if codes == "all" {
		names = codec.Names()
	} else {
		names = strings.Split(codes, ",")
	}
	opts := codec.Options{Stride: stride, Partitions: partitions, Train: s}
	binRes, err := codec.Run(codec.MustNew("binary", s.Width, codec.Options{}), s)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "code\tbus lines\ttransitions\tper cycle\tsavings")
	for _, name := range names {
		name = strings.TrimSpace(name)
		c, err := codec.New(name, s.Width, opts)
		if err != nil {
			return err
		}
		res, err := codec.Run(c, s)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%.2f%%\n",
			name, res.BusWidth, res.Transitions, res.AvgPerCycle(), res.SavingsVs(binRes)*100)
	}
	return tw.Flush()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
