// Command busencsweep prices bus-encoding codecs over huge traces by
// distributing contiguous shards to a pool of worker processes and/or
// networked busencd peers.
//
// Usage:
//
//	busencsweep -trace huge.betr                       # all codecs, one worker
//	busencsweep -trace huge.betr -workers 8 -shards 64 # real fan-out
//	busencsweep -trace huge.betr -checkpoint sweep.json  # resumable: rerun the
//	                                                     # same command after a
//	                                                     # kill to pick up where
//	                                                     # the journal left off
//	busencsweep -trace huge.betr -peers h1:8377,h2:8377  # price on remote
//	                                                     # busencd daemons (mixes
//	                                                     # with -workers > 0)
//	busencsweep -worker                                # internal: protocol
//	                                                   # worker on stdin/stdout
//
// The trace is planned into byte-range shards over one mmap view (text
// traces are converted to a temporary BETR file once); local workers
// share the file through the page cache, so nothing is copied. Remote
// peers receive the trace once, content-addressed by SHA-256 digest —
// a re-sweep against a peer that already holds the trace ships zero
// bytes. Results are bit-identical to a sequential run for every
// codec, over any mix of local workers and peers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"busenc/internal/codec"
	"busenc/internal/dist"
	"busenc/internal/obs"
	"busenc/internal/trace"
)

func main() {
	worker := flag.Bool("worker", false, "run as a protocol worker on stdin/stdout (internal; spawned by the coordinator)")
	failAfter := flag.Int("failafter", 0, "with -worker: die without replying after pricing this many jobs (fault injection)")
	tracePath := flag.String("trace", "", "trace file to price (text or BETR, auto-detected)")
	workers := flag.Int("workers", 1, "worker processes to spawn (with -peers, 0 means peers only)")
	peers := flag.String("peers", "", "comma-separated busencd peer addresses (host:port) to price on over TCP")
	window := flag.Int("window", 0, "max jobs in flight per worker/peer (0 = default, 1 = lock-step)")
	shards := flag.Int("shards", 0, "contiguous shards to plan (0 = 4 per worker)")
	checkpoint := flag.String("checkpoint", "", "journal path for checkpoint/resume; rerunning the same sweep against an existing journal resumes it")
	codes := flag.String("codes", "all", "comma-separated codec list, \"paper\" (the seven paper codes) or \"all\"")
	stride := flag.Uint64("stride", 4, "in-sequence stride S for the stride-aware codes (t0*, dualt0*, gray, incxor); 4 matches the paper's word-addressed MIPS and the other CLIs")
	verify := flag.String("verify", "sampled", "decode verification: \"full\", \"sampled\" or \"none\"")
	perLine := flag.Bool("perline", false, "collect per-line transition counts")
	kernel := flag.String("kernel", "auto", "pricing kernel: \"auto\", \"scalar\" or \"plane\"")
	killWorker := flag.String("killworker", "", "fault injection: \"id:jobs\" kills worker id's first life after that many jobs (it respawns; the orphaned shard is retried)")
	stopAfter := flag.Int("stopafter", 0, "fault injection: stop the coordinator after this many shard results are journaled (requires -checkpoint to be resumable)")
	asJSON := flag.Bool("json", false, "emit JSON instead of an aligned table")
	metrics := flag.Bool("metrics", false, "enable observability counters and dump them to stderr on exit")
	spantrace := flag.String("spantrace", "", "write the sweep's merged distributed trace (coordinator + every worker/peer lane, clock-aligned) to this file as Chrome trace-event JSON")
	flag.Parse()

	if *worker {
		if err := dist.ServeWorker(os.Stdin, os.Stdout, dist.WorkerOpts{FailAfter: *failAfter}); err != nil {
			fmt.Fprintln(os.Stderr, "busencsweep worker:", err)
			os.Exit(1)
		}
		return
	}
	if *metrics {
		obs.Enable()
		defer func() { obs.Default().Snapshot().WriteTable(os.Stderr) }()
	}
	cfg := sweepConfig{
		trace:      *tracePath,
		workers:    *workers,
		peers:      splitPeers(*peers),
		window:     *window,
		shards:     *shards,
		checkpoint: *checkpoint,
		codes:      *codes,
		verify:     *verify,
		kernel:     *kernel,
		killWorker: *killWorker,
		stride:     *stride,
		perLine:    *perLine,
		stopAfter:  *stopAfter,
		asJSON:     *asJSON,
		spantrace:  *spantrace,
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "busencsweep:", err)
		os.Exit(1)
	}
}

// splitPeers expands the -peers comma list, dropping blanks.
func splitPeers(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// paperCodes mirrors cmd/paper's default set.
var paperCodes = []string{"binary", "gray", "t0", "businvert", "t0bi", "dualt0", "dualt0bi"}

// sweepConfig is the parsed flag set of one coordinator run.
type sweepConfig struct {
	trace      string
	workers    int
	peers      []string
	window     int
	shards     int
	checkpoint string
	codes      string
	verify     string
	kernel     string
	killWorker string
	stride     uint64
	perLine    bool
	stopAfter  int
	asJSON     bool
	spantrace  string
}

// run is the coordinator: plan, sweep, print. Factored from main for
// main_test.go.
func run(cfg sweepConfig, out *os.File) error {
	if cfg.trace == "" {
		return fmt.Errorf("-trace is required (or -worker for worker mode)")
	}
	width, err := traceWidth(cfg.trace)
	if err != nil {
		return err
	}
	specs, err := parseSpecs(cfg.codes, width, cfg.stride)
	if err != nil {
		return err
	}
	vm, err := parseVerify(cfg.verify)
	if err != nil {
		return err
	}
	kern, err := codec.ParseKernel(cfg.kernel)
	if err != nil {
		return err
	}
	spawn, err := selfSpawner(cfg.killWorker)
	if err != nil {
		return err
	}
	// -spantrace turns the sweep into a distributed trace: the
	// coordinator records its own spans, jobs carry the minted trace
	// context to every worker and peer, and their span dumps are
	// harvested and clock-aligned into one merged timeline at the end.
	// Harvesting only observes — the results are bit-identical either
	// way.
	var harvest *dist.SpanHarvest
	var tracer *obs.Tracer
	if cfg.spantrace != "" {
		tracer = obs.EnableTracing(obs.TracerConfig{})
		harvest = &dist.SpanHarvest{}
	}
	results, err := dist.Sweep(cfg.trace, dist.Opts{
		Workers:    cfg.workers,
		Peers:      cfg.peers,
		Window:     cfg.window,
		Shards:     cfg.shards,
		Codecs:     specs,
		Verify:     vm,
		PerLine:    cfg.perLine,
		Kernel:     kern,
		Checkpoint: cfg.checkpoint,
		Spawn:      spawn,
		StopAfter:  cfg.stopAfter,
		Harvest:    harvest,
	})
	if err != nil {
		return err
	}
	if harvest != nil {
		if err := writeSpanTrace(cfg.spantrace, harvest, tracer); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "busencsweep: merged trace %s written to %s\n",
			harvest.TraceID(), cfg.spantrace)
	}
	if cfg.asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	return printTable(out, results)
}

// writeSpanTrace merges the coordinator's recorded spans with every
// harvested worker/peer dump into one clock-aligned trace-event file.
func writeSpanTrace(path string, h *dist.SpanHarvest, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := obs.WriteMergedTraceEvents(f, h.Merged(tr.Spans(), tr.Epoch()))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// traceWidth reads just the trace header for the bus width.
func traceWidth(path string) (int, error) {
	r, closer, err := trace.OpenFile(path, nil)
	if err != nil {
		return 0, err
	}
	defer closer.Close()
	return r.Width(), nil
}

// parseSpecs expands the -codes flag into wire specs at the given
// width and stride.
func parseSpecs(codes string, width int, stride uint64) ([]dist.CodecSpec, error) {
	var names []string
	switch codes {
	case "", "all":
		specs := dist.AllSpecs(width)
		for i := range specs {
			specs[i].Stride = stride
		}
		return specs, nil
	case "paper":
		names = paperCodes
	default:
		for _, c := range strings.Split(codes, ",") {
			if c = strings.TrimSpace(c); c != "" {
				names = append(names, c)
			}
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("empty codec list %q", codes)
	}
	specs := make([]dist.CodecSpec, len(names))
	for i, n := range names {
		specs[i] = dist.CodecSpec{Name: n, Width: width, Stride: stride}
	}
	return specs, nil
}

func parseVerify(s string) (codec.VerifyMode, error) {
	switch s {
	case "full":
		return codec.VerifyFull, nil
	case "", "sampled":
		return codec.VerifySampled, nil
	case "none":
		return codec.VerifyNone, nil
	}
	return 0, fmt.Errorf("-verify must be \"full\", \"sampled\" or \"none\", got %q", s)
}

// selfSpawner re-executes this binary with -worker. The -killworker
// fault knob ("id:jobs") adds -failafter to the first life of the
// chosen worker; its respawn is healthy.
func selfSpawner(killWorker string) (dist.Spawner, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, err
	}
	killID, killJobs := -1, 0
	if killWorker != "" {
		id, jobs, ok := strings.Cut(killWorker, ":")
		if ok {
			killID, err = strconv.Atoi(id)
			if err == nil {
				killJobs, err = strconv.Atoi(jobs)
			}
		}
		if !ok || err != nil || killJobs <= 0 {
			return nil, fmt.Errorf("-killworker must be \"id:jobs\", got %q", killWorker)
		}
	}
	return dist.SpawnerFunc(func(id, gen int) (dist.Transport, error) {
		argv := []string{self, "-worker"}
		if id == killID && gen == 0 {
			argv = append(argv, "-failafter", strconv.Itoa(killJobs))
		}
		return dist.ExecSpawner(argv, nil).Spawn(id, gen)
	}), nil
}

// printTable renders the results like cmd/paper's trace mode: absolute
// transition counts plus savings relative to the first codec.
func printTable(out *os.File, results []codec.Result) error {
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "codec\ttransitions\tavg/cycle\tsaved%")
	var base float64
	for i, r := range results {
		avg := 0.0
		if r.Cycles > 0 {
			avg = float64(r.Transitions) / float64(r.Cycles)
		}
		if i == 0 {
			base = float64(r.Transitions)
		}
		saved := 0.0
		if base > 0 {
			saved = 100 * (1 - float64(r.Transitions)/base)
		}
		fmt.Fprintf(w, "%s\t%d\t%.3f\t%.1f\n", r.Codec, r.Transitions, avg, saved)
	}
	return w.Flush()
}
