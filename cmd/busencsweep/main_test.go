package main

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"busenc/internal/codec"
	"busenc/internal/dist"
	"busenc/internal/obs"
	"busenc/internal/trace"
)

// The coordinator spawns os.Executable() with -worker — under `go
// test` that is this test binary, so TestMain recognizes the worker
// argv shape and becomes a protocol worker instead of running tests.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "-worker" {
		fa := 0
		for i, a := range os.Args {
			if a == "-failafter" && i+1 < len(os.Args) {
				fa, _ = strconv.Atoi(os.Args[i+1])
			}
		}
		if err := dist.ServeWorker(os.Stdin, os.Stdout, dist.WorkerOpts{FailAfter: fa}); err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func testTrace(t *testing.T, n int) (string, *trace.Stream) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	s := trace.New("cli", 32)
	addr := rng.Uint64() >> 32
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			addr = rng.Uint64() >> 32
		} else {
			addr += 4
		}
		s.Append(addr, trace.Instr)
	}
	path := filepath.Join(t.TempDir(), "cli.betr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinary(f, s); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, s
}

func runToFile(t *testing.T, fn func(out *os.File) error) string {
	t.Helper()
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if err := fn(out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestRunTable: the coordinator path end to end with real subprocess
// workers, table output.
func TestRunTable(t *testing.T) {
	path, _ := testTrace(t, 8000)
	got := runToFile(t, func(out *os.File) error {
		return run(sweepConfig{trace: path, workers: 2, shards: 4, codes: "paper", verify: "sampled", kernel: "auto", stride: 4}, out)
	})
	for _, name := range []string{"binary", "gray", "t0bi", "saved%"} {
		if !strings.Contains(got, name) {
			t.Errorf("table output missing %q:\n%s", name, got)
		}
	}
}

// TestRunKillAndResume: the CLI fault knobs compose — kill one
// worker's first life, stop the coordinator at the checkpoint, rerun
// the same sweep, and end with results bit-identical to RunFast.
func TestRunKillAndResume(t *testing.T) {
	path, s := testTrace(t, 12000)
	ckpt := filepath.Join(t.TempDir(), "sweep.json")
	base := sweepConfig{trace: path, workers: 3, shards: 9, checkpoint: ckpt, codes: "all", verify: "none", kernel: "auto", stride: 4, asJSON: true}
	first := base
	first.killWorker = "0:1"
	first.stopAfter = 4
	err := run(first, nil)
	if err == nil || !strings.Contains(err.Error(), "stopped") {
		t.Fatalf("first run: err = %v, want checkpoint stop", err)
	}
	got := runToFile(t, func(out *os.File) error {
		return run(base, out)
	})
	var results []codec.Result
	if err := json.Unmarshal([]byte(got), &results); err != nil {
		t.Fatalf("bad JSON output: %v\n%s", err, got)
	}
	for _, r := range results {
		c, err := codec.New(r.Codec, s.Width, codec.Options{Stride: 4})
		if err != nil {
			t.Fatal(err)
		}
		want, err := codec.RunFast(c, s, codec.RunOpts{Verify: codec.VerifyNone})
		if err != nil {
			t.Fatal(err)
		}
		if r.Transitions != want.Transitions || r.Cycles != want.Cycles || r.MaxPerCycle != want.MaxPerCycle {
			t.Errorf("codec %s: CLI %+v != RunFast %+v", r.Codec, r, want)
		}
	}
}

// TestRunSpanTrace: -spantrace writes a merged multi-process timeline
// (coordinator + one lane per subprocess worker) and leaves the sweep
// results identical to an untraced run.
func TestRunSpanTrace(t *testing.T) {
	defer obs.DisableTracing()
	path, _ := testTrace(t, 8000)
	traceOut := filepath.Join(t.TempDir(), "merged.json")
	base := sweepConfig{trace: path, workers: 2, shards: 4, codes: "paper", verify: "none", kernel: "auto", stride: 4, asJSON: true}
	traced := base
	traced.spantrace = traceOut
	got := runToFile(t, func(out *os.File) error { return run(traced, out) })
	plain := runToFile(t, func(out *os.File) error { return run(base, out) })
	if got != plain {
		t.Errorf("traced results differ from untraced:\n%s\nvs\n%s", got, plain)
	}

	raw, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("merged trace is not JSON: %v", err)
	}
	pids := map[int]bool{}
	names := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" {
			pids[ev.Pid] = true
			names[ev.Name] = true
		}
	}
	if len(pids) != 3 {
		t.Errorf("merged trace has %d pid lanes, want coordinator + 2 workers", len(pids))
	}
	for _, want := range []string{"dist.sweep", "dist.shard_price", "dist.worker_conn"} {
		if !names[want] {
			t.Errorf("merged trace missing %q spans (got %v)", want, names)
		}
	}
}

func TestParseSpecs(t *testing.T) {
	specs, err := parseSpecs("binary, gray", 16, 4)
	if err != nil || len(specs) != 2 || specs[0].Name != "binary" || specs[1].Width != 16 || specs[1].Stride != 4 {
		t.Fatalf("parseSpecs: %v %v", specs, err)
	}
	all, err := parseSpecs("all", 16, 8)
	if err != nil || len(all) != len(codec.Names()) {
		t.Fatalf("all: %d specs, err %v", len(all), err)
	}
	for _, spec := range all {
		if spec.Stride != 8 {
			t.Fatalf("spec %s stride = %d, want 8", spec.Name, spec.Stride)
		}
	}
	if _, err := parseSpecs(" , ", 16, 4); err == nil {
		t.Error("blank list accepted")
	}
}

func TestParseVerify(t *testing.T) {
	for s, want := range map[string]codec.VerifyMode{
		"full": codec.VerifyFull, "sampled": codec.VerifySampled, "none": codec.VerifyNone, "": codec.VerifySampled,
	} {
		got, err := parseVerify(s)
		if err != nil || got != want {
			t.Errorf("parseVerify(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseVerify("maybe"); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestSelfSpawnerBadKillSpec(t *testing.T) {
	for _, bad := range []string{"x", "0:", "0:0", "a:b"} {
		if _, err := selfSpawner(bad); err == nil {
			t.Errorf("killworker %q accepted", bad)
		}
	}
}
