// Command characterize runs the paper's future-work study: for each
// processor architecture profile (MIPS, SPARC, PowerPC, Alpha, PA-RISC,
// x86) it measures the characteristic address streams and recommends the
// bus encoding per bus.
//
// Usage:
//
//	characterize            # all profiles
//	characterize -arch mips # one profile
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"busenc/internal/arch"
)

func main() {
	only := flag.String("arch", "", "characterize one architecture (default: all)")
	n := flag.Int("n", 50000, "stream length per bus")
	flag.Parse()

	if err := run(os.Stdout, *only, *n); err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, only string, n int) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "arch\taddr bits\tbus org\tbus\tin-seq\tbest code\tsavings")
	found := false
	for _, p := range arch.Profiles() {
		if only != "" && p.Name != only {
			continue
		}
		found = true
		recs, err := arch.Characterize(p, n, 1)
		if err != nil {
			return err
		}
		for _, r := range recs {
			fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%.1f%%\t%s\t%.2f%%\n",
				p.Name, p.AddrBits, p.Bus, r.Bus, r.InSeqPct, r.Best, r.SavingsPct)
		}
	}
	if !found {
		return fmt.Errorf("unknown architecture %q", only)
	}
	return tw.Flush()
}
