package main

import (
	"strings"
	"testing"
)

func TestRunSingleArch(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "mips", 10000); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"mips", "muxed", "instruction", "data"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "sparc") {
		t.Error("-arch mips printed other profiles")
	}
}

func TestRunAllArchs(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "", 8000); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mips", "sparc", "powerpc", "alpha", "parisc", "x86"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("profile %q missing", want)
		}
	}
}

func TestRunUnknownArch(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "z80", 1000); err == nil {
		t.Error("unknown architecture accepted")
	}
}
