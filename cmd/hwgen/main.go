// Command hwgen synthesizes a bus codec's encoder or decoder at gate level
// and emits it as structural Verilog, along with a cell/area/power report.
//
// Usage:
//
//	hwgen -code dualt0bi -width 32 -stride 4 -part encoder -o enc.v
//	hwgen -code t0 -report            # report only, no Verilog
//	hwgen -list
package main

import (
	"flag"
	"fmt"
	"io"
	"math/bits"
	"os"

	"busenc/internal/core"
	"busenc/internal/hw"
	"busenc/internal/netlist"
)

var generators = map[string]func(width, strideLog int) hw.Codec{
	"binary":    func(w, _ int) hw.Codec { return hw.Binary(w) },
	"gray":      hw.Gray,
	"businvert": func(w, _ int) hw.Codec { return hw.BusInvert(w) },
	"t0":        hw.T0,
	"t0bi":      hw.T0BI,
	"dualt0":    hw.DualT0,
	"dualt0bi":  hw.DualT0BI,
	"incxor":    hw.IncXor,
}

func main() {
	code := flag.String("code", "", "codec to synthesize (see -list)")
	width := flag.Int("width", 32, "payload width")
	stride := flag.Uint64("stride", 4, "in-sequence stride (power of two)")
	part := flag.String("part", "encoder", "which side: encoder | decoder")
	out := flag.String("o", "-", "Verilog output file (- for stdout)")
	report := flag.Bool("report", false, "print the cell/area/power report instead of Verilog")
	compare := flag.Bool("compare", false, "print the extended all-codec hardware comparison")
	list := flag.Bool("list", false, "list synthesizable codecs")
	flag.Parse()

	if *list {
		for name := range generators {
			fmt.Println(name)
		}
		return
	}
	if *compare {
		if *stride == 0 || *stride&(*stride-1) != 0 {
			fmt.Fprintln(os.Stderr, "hwgen: stride must be a power of two")
			os.Exit(1)
		}
		rows, err := core.HWComparison(core.ReferenceMuxedStream(3000), bits.TrailingZeros64(*stride), 0.1e-12)
		if err == nil {
			err = core.RenderHWComparison(os.Stdout, rows)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "hwgen:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*code, *width, *stride, *part, *out, *report); err != nil {
		fmt.Fprintln(os.Stderr, "hwgen:", err)
		os.Exit(1)
	}
}

func run(code string, width int, stride uint64, part, out string, report bool) error {
	gen, ok := generators[code]
	if !ok {
		return fmt.Errorf("unknown codec %q (try -list)", code)
	}
	if stride == 0 || stride&(stride-1) != 0 {
		return fmt.Errorf("stride %d is not a power of two", stride)
	}
	c := gen(width, bits.TrailingZeros64(stride))
	var n *netlist.Netlist
	switch part {
	case "encoder":
		n = c.Enc
	case "decoder":
		n = c.Dec
	default:
		return fmt.Errorf("unknown part %q", part)
	}

	if report {
		lib := netlist.DefaultLibrary()
		fmt.Printf("codec %s %s: %d-bit payload, %d bus lines\n", code, part, c.Width, c.BusWidth())
		fmt.Printf("  cells: %d (DFF %d, XOR %d, MUX %d)\n",
			n.NumCells(), n.CountCells(netlist.KindDFF), n.CountCells(netlist.KindXor2), n.CountCells(netlist.KindMux2))
		fmt.Printf("  area (NAND2-equivalent): %.1f\n", lib.Area(n))
		if delay, path, err := lib.CriticalPath(n); err == nil && delay > 0 {
			fmt.Printf("  critical path: %.2f ns (%d stages, max clock %.0f MHz)\n",
				delay*1e9, len(path), 1e-6/delay)
		}
		m, err := core.MeasureHW(c, core.ReferenceMuxedStream(3000))
		if err != nil {
			return err
		}
		act := m.EncAct
		if part == "decoder" {
			act = m.DecAct
		}
		fmt.Printf("  power on the reference stream @100MHz, 0.1pF: %.4f mW\n",
			lib.Power(n, act, 100e6, 0.1e-12)*1e3)
		return nil
	}

	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return netlist.WriteVerilog(w, n)
}
