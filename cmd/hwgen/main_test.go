package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunEmitsVerilogFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "enc.v")
	if err := run("t0", 16, 4, "encoder", out, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	v := string(data)
	for _, want := range []string{"module t0_enc", "busenc_dff", "endmodule", "output wire INC"} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q", want)
		}
	}
}

func TestRunDecoderPart(t *testing.T) {
	out := filepath.Join(t.TempDir(), "dec.v")
	if err := run("dualt0bi", 16, 4, "decoder", out, false); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	if !strings.Contains(string(data), "module dualt0bi_dec") {
		t.Error("decoder module missing")
	}
}

func TestRunErrors(t *testing.T) {
	tmp := filepath.Join(t.TempDir(), "x.v")
	if err := run("nope", 16, 4, "encoder", tmp, false); err == nil {
		t.Error("unknown codec accepted")
	}
	if err := run("t0", 16, 3, "encoder", tmp, false); err == nil {
		t.Error("non-power-of-two stride accepted")
	}
	if err := run("t0", 16, 4, "sideways", tmp, false); err == nil {
		t.Error("unknown part accepted")
	}
}

func TestGeneratorsCoverHWFamily(t *testing.T) {
	for _, name := range []string{"binary", "gray", "businvert", "t0", "t0bi", "dualt0", "dualt0bi", "incxor"} {
		if _, ok := generators[name]; !ok {
			t.Errorf("generator %q missing", name)
		}
	}
}
