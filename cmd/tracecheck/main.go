// Command tracecheck validates a Chrome trace-event file, such as the
// ones cmd/paper -spantrace and cmd/busencsweep -spantrace write. It
// checks the structural invariants Perfetto / chrome://tracing rely on
// (a non-empty traceEvents array, known phase codes, named events,
// non-negative timestamps and durations) and computes span coverage:
// the fraction of the traced wall-clock window [first span start, last
// span end] covered by the union of all complete ("X") events.
// Coverage is computed overall and per process lane (pid) — a merged
// distributed trace has one lane per participating process, and a peer
// whose spans were lost shows up as a hole in exactly one lane, which a
// whole-file union would paper over. -mincover gates every lane;
// -minprocs asserts the trace actually merged that many processes.
// Both gates are how the CI smoke tests assert the instrumentation
// brackets the pipeline on every peer instead of leaving holes.
//
//	tracecheck spans.json                        # validate, report coverage
//	tracecheck -mincover 0.95 spans.json         # fail if any lane is below 95%
//	tracecheck -mincover 0.95 -minprocs 3 m.json # also require >= 3 pid lanes
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// traceEvent is the subset of the trace-event schema the checker cares
// about. Unknown fields (args, cat, ...) are ignored by design.
type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// laneReport summarizes one process lane (pid) of the trace.
type laneReport struct {
	Pid      int
	Complete int     // ph "X" events in this lane
	WallUs   float64 // lane window in microseconds
	Coverage float64 // union of the lane's X events / lane window
}

// report summarizes a validated file.
type report struct {
	Events   int          // total events
	Complete int          // ph "X" events
	WallUs   float64      // traced window in microseconds (all lanes)
	Coverage float64      // union of X events / wall window, in [0, 1]
	Lanes    []laneReport // per-pid coverage, ascending pid
}

// ival is one [lo, hi] occupancy interval on the timeline.
type ival struct{ lo, hi float64 }

// union computes the total window and the covered fraction of a
// non-empty interval set.
func union(spans []ival) (wallUs, coverage float64) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	lo, hi := spans[0].lo, spans[0].hi
	var covered float64
	curLo, curHi := spans[0].lo, spans[0].hi
	for _, s := range spans[1:] {
		if s.hi > hi {
			hi = s.hi
		}
		if s.lo > curHi {
			covered += curHi - curLo
			curLo, curHi = s.lo, s.hi
			continue
		}
		if s.hi > curHi {
			curHi = s.hi
		}
	}
	covered += curHi - curLo
	wallUs = hi - lo
	if wallUs > 0 {
		return wallUs, covered / wallUs
	}
	// Degenerate zero-length window (instantaneous spans): covered.
	return wallUs, 1
}

// check validates raw trace-event JSON and computes the coverage
// report. It returns the first structural violation as an error.
func check(raw []byte) (report, error) {
	var tf traceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		return report{}, fmt.Errorf("not trace-event JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		return report{}, fmt.Errorf("traceEvents is empty")
	}
	var all []ival
	byPid := map[int][]ival{}
	rep := report{Events: len(tf.TraceEvents)}
	for i, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M": // metadata: names processes/threads, carries no time
			continue
		case "X":
		default:
			return report{}, fmt.Errorf("event %d (%q): unsupported phase %q", i, ev.Name, ev.Ph)
		}
		if ev.Name == "" {
			return report{}, fmt.Errorf("event %d: empty name", i)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			return report{}, fmt.Errorf("event %d (%q): negative ts/dur (%g/%g)", i, ev.Name, ev.Ts, ev.Dur)
		}
		if ev.Pid <= 0 || ev.Tid <= 0 {
			return report{}, fmt.Errorf("event %d (%q): missing pid/tid (%d/%d)", i, ev.Name, ev.Pid, ev.Tid)
		}
		rep.Complete++
		all = append(all, ival{ev.Ts, ev.Ts + ev.Dur})
		byPid[ev.Pid] = append(byPid[ev.Pid], ival{ev.Ts, ev.Ts + ev.Dur})
	}
	if rep.Complete == 0 {
		return report{}, fmt.Errorf("no complete (\"X\") events")
	}
	rep.WallUs, rep.Coverage = union(all)
	pids := make([]int, 0, len(byPid))
	for pid := range byPid {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		lane := laneReport{Pid: pid, Complete: len(byPid[pid])}
		lane.WallUs, lane.Coverage = union(byPid[pid])
		rep.Lanes = append(rep.Lanes, lane)
	}
	return rep, nil
}

func main() {
	minCover := flag.Float64("mincover", 0, "fail unless every process lane's span coverage of its own window is at least this fraction (0 disables the gate)")
	minProcs := flag.Int("minprocs", 0, "fail unless the trace has at least this many process (pid) lanes (0 disables the gate)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-mincover FRAC] [-minprocs N] <spans.json>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	rep, err := check(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("tracecheck: %s: %d events (%d spans), %d process lanes, %.1f ms wall, %.1f%% covered\n",
		path, rep.Events, rep.Complete, len(rep.Lanes), rep.WallUs/1e3, rep.Coverage*100)
	for _, lane := range rep.Lanes {
		fmt.Printf("tracecheck:   pid %d: %d spans, %.1f ms wall, %.1f%% covered\n",
			lane.Pid, lane.Complete, lane.WallUs/1e3, lane.Coverage*100)
	}
	fail := false
	if *minProcs > 0 && len(rep.Lanes) < *minProcs {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %d process lanes, need %d\n", path, len(rep.Lanes), *minProcs)
		fail = true
	}
	if *minCover > 0 {
		for _, lane := range rep.Lanes {
			if lane.Coverage < *minCover {
				fmt.Fprintf(os.Stderr, "tracecheck: %s: pid %d coverage %.3f below required %.3f\n",
					path, lane.Pid, lane.Coverage, *minCover)
				fail = true
			}
		}
	}
	if fail {
		os.Exit(1)
	}
}
