// Command tracecheck validates a Chrome trace-event file, such as the
// one cmd/paper -spantrace writes. It checks the structural invariants
// Perfetto / chrome://tracing rely on (a non-empty traceEvents array,
// known phase codes, named events, non-negative timestamps and
// durations) and computes span coverage: the fraction of the traced
// wall-clock window [first span start, last span end] covered by the
// union of all complete ("X") events. -mincover turns the coverage into
// a pass/fail gate, which is how the CI smoke test asserts the span
// instrumentation actually brackets the pipeline instead of leaving
// holes.
//
//	tracecheck spans.json                  # validate, report coverage
//	tracecheck -mincover 0.95 spans.json   # also fail below 95% coverage
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// traceEvent is the subset of the trace-event schema the checker cares
// about. Unknown fields (args, cat, ...) are ignored by design.
type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// report summarizes a validated file.
type report struct {
	Events   int     // total events
	Complete int     // ph "X" events
	WallUs   float64 // traced window in microseconds
	Coverage float64 // union of X events / wall window, in [0, 1]
}

// check validates raw trace-event JSON and computes the coverage
// report. It returns the first structural violation as an error.
func check(raw []byte) (report, error) {
	var tf traceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		return report{}, fmt.Errorf("not trace-event JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		return report{}, fmt.Errorf("traceEvents is empty")
	}
	type ival struct{ lo, hi float64 }
	var spans []ival
	rep := report{Events: len(tf.TraceEvents)}
	for i, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M": // metadata: names processes/threads, carries no time
			continue
		case "X":
		default:
			return report{}, fmt.Errorf("event %d (%q): unsupported phase %q", i, ev.Name, ev.Ph)
		}
		if ev.Name == "" {
			return report{}, fmt.Errorf("event %d: empty name", i)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			return report{}, fmt.Errorf("event %d (%q): negative ts/dur (%g/%g)", i, ev.Name, ev.Ts, ev.Dur)
		}
		if ev.Pid <= 0 || ev.Tid <= 0 {
			return report{}, fmt.Errorf("event %d (%q): missing pid/tid (%d/%d)", i, ev.Name, ev.Pid, ev.Tid)
		}
		rep.Complete++
		spans = append(spans, ival{ev.Ts, ev.Ts + ev.Dur})
	}
	if rep.Complete == 0 {
		return report{}, fmt.Errorf("no complete (\"X\") events")
	}
	// Union of intervals over the traced window.
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	lo, hi := spans[0].lo, spans[0].hi
	var covered float64
	curLo, curHi := spans[0].lo, spans[0].hi
	for _, s := range spans[1:] {
		if s.hi > hi {
			hi = s.hi
		}
		if s.lo > curHi {
			covered += curHi - curLo
			curLo, curHi = s.lo, s.hi
			continue
		}
		if s.hi > curHi {
			curHi = s.hi
		}
	}
	covered += curHi - curLo
	rep.WallUs = hi - lo
	if rep.WallUs > 0 {
		rep.Coverage = covered / rep.WallUs
	} else {
		// Degenerate zero-length window (instantaneous spans): covered.
		rep.Coverage = 1
	}
	return rep, nil
}

func main() {
	minCover := flag.Float64("mincover", 0, "fail unless span coverage of the traced window is at least this fraction (0 disables the gate)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-mincover FRAC] <spans.json>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	rep, err := check(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("tracecheck: %s: %d events (%d spans), %.1f ms wall, %.1f%% covered\n",
		path, rep.Events, rep.Complete, rep.WallUs/1e3, rep.Coverage*100)
	if *minCover > 0 && rep.Coverage < *minCover {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: coverage %.3f below required %.3f\n", path, rep.Coverage, *minCover)
		os.Exit(1)
	}
}
