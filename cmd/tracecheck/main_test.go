package main

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"busenc/internal/obs"
)

func TestCheckValidFile(t *testing.T) {
	// Real exporter output: record a tiny span tree and write it out.
	tr := obs.NewTracer(obs.TracerConfig{RingSize: 64})
	root := tr.Start("eval", obs.StageEval).WithStream("s")
	child := root.Child("encode", obs.StageEncode).WithCodec("t0")
	child.End()
	root.End()
	var buf bytes.Buffer
	if err := obs.WriteTraceEvents(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	rep, err := check(buf.Bytes())
	if err != nil {
		t.Fatalf("check rejected exporter output: %v\n%s", err, buf.String())
	}
	if rep.Complete != 2 {
		t.Errorf("complete events = %d, want 2", rep.Complete)
	}
	// The child nests inside the root, so the root alone covers the
	// window: coverage must be exactly 1.
	if math.Abs(rep.Coverage-1) > 1e-9 {
		t.Errorf("coverage = %g, want 1", rep.Coverage)
	}
}

func TestCheckCoverageUnion(t *testing.T) {
	// Two 10us spans over a 40us window: 50% coverage, and the overlap
	// between the first pair must not double-count.
	raw := []byte(`{"traceEvents": [
		{"name": "a", "ph": "X", "ts": 0, "dur": 6, "pid": 1, "tid": 1},
		{"name": "b", "ph": "X", "ts": 4, "dur": 6, "pid": 1, "tid": 2},
		{"name": "c", "ph": "X", "ts": 30, "dur": 10, "pid": 1, "tid": 1}
	]}`)
	rep, err := check(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WallUs != 40 {
		t.Errorf("wall = %g, want 40", rep.WallUs)
	}
	if math.Abs(rep.Coverage-0.5) > 1e-9 {
		t.Errorf("coverage = %g, want 0.5", rep.Coverage)
	}
}

func TestCheckRejections(t *testing.T) {
	cases := []struct {
		name, raw, want string
	}{
		{"not json", `nope`, "not trace-event JSON"},
		{"empty", `{"traceEvents": []}`, "empty"},
		{"bad phase", `{"traceEvents": [{"name": "a", "ph": "B", "ts": 0, "dur": 1, "pid": 1, "tid": 1}]}`, "unsupported phase"},
		{"unnamed", `{"traceEvents": [{"ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1}]}`, "empty name"},
		{"negative", `{"traceEvents": [{"name": "a", "ph": "X", "ts": -1, "dur": 1, "pid": 1, "tid": 1}]}`, "negative ts/dur"},
		{"no tid", `{"traceEvents": [{"name": "a", "ph": "X", "ts": 0, "dur": 1, "pid": 1}]}`, "missing pid/tid"},
		{"metadata only", `{"traceEvents": [{"name": "process_name", "ph": "M", "pid": 1, "tid": 1}]}`, "no complete"},
	}
	for _, tc := range cases {
		if _, err := check([]byte(tc.raw)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}
