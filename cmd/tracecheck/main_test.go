package main

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"busenc/internal/obs"
)

func TestCheckValidFile(t *testing.T) {
	// Real exporter output: record a tiny span tree and write it out.
	tr := obs.NewTracer(obs.TracerConfig{RingSize: 64})
	root := tr.Start("eval", obs.StageEval).WithStream("s")
	child := root.Child("encode", obs.StageEncode).WithCodec("t0")
	child.End()
	root.End()
	var buf bytes.Buffer
	if err := obs.WriteTraceEvents(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	rep, err := check(buf.Bytes())
	if err != nil {
		t.Fatalf("check rejected exporter output: %v\n%s", err, buf.String())
	}
	if rep.Complete != 2 {
		t.Errorf("complete events = %d, want 2", rep.Complete)
	}
	// The child nests inside the root, so the root alone covers the
	// window: coverage must be exactly 1.
	if math.Abs(rep.Coverage-1) > 1e-9 {
		t.Errorf("coverage = %g, want 1", rep.Coverage)
	}
}

func TestCheckCoverageUnion(t *testing.T) {
	// Two 10us spans over a 40us window: 50% coverage, and the overlap
	// between the first pair must not double-count.
	raw := []byte(`{"traceEvents": [
		{"name": "a", "ph": "X", "ts": 0, "dur": 6, "pid": 1, "tid": 1},
		{"name": "b", "ph": "X", "ts": 4, "dur": 6, "pid": 1, "tid": 2},
		{"name": "c", "ph": "X", "ts": 30, "dur": 10, "pid": 1, "tid": 1}
	]}`)
	rep, err := check(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WallUs != 40 {
		t.Errorf("wall = %g, want 40", rep.WallUs)
	}
	if math.Abs(rep.Coverage-0.5) > 1e-9 {
		t.Errorf("coverage = %g, want 0.5", rep.Coverage)
	}
}

// TestCheckMultiPidLanes: per-process coverage over merged distributed
// traces — gaps and overlaps are attributed to the right lane, and a
// hole in one peer's lane is visible even when the whole-file union
// looks complete.
func TestCheckMultiPidLanes(t *testing.T) {
	cases := []struct {
		name    string
		raw     string
		lanes   int
		overall float64
		cover   map[int]float64 // pid → lane coverage
	}{
		{
			// Coordinator covers [0,100]; worker lane has a 50% hole that
			// the coordinator's span hides from the overall union.
			name: "worker hole hidden by coordinator",
			raw: `{"traceEvents": [
				{"name": "sweep", "ph": "X", "ts": 0, "dur": 100, "pid": 1, "tid": 1},
				{"name": "price", "ph": "X", "ts": 10, "dur": 20, "pid": 2, "tid": 1},
				{"name": "price", "ph": "X", "ts": 70, "dur": 20, "pid": 2, "tid": 1}
			]}`,
			lanes:   2,
			overall: 1,
			cover:   map[int]float64{1: 1, 2: 0.5},
		},
		{
			// Overlapping spans within one lane must not double-count.
			name: "overlap within a lane",
			raw: `{"traceEvents": [
				{"name": "a", "ph": "X", "ts": 0, "dur": 6, "pid": 3, "tid": 1},
				{"name": "b", "ph": "X", "ts": 4, "dur": 6, "pid": 3, "tid": 2},
				{"name": "c", "ph": "X", "ts": 30, "dur": 10, "pid": 3, "tid": 1}
			]}`,
			lanes:   1,
			overall: 0.5,
			cover:   map[int]float64{3: 0.5},
		},
		{
			// Disjoint lanes: each is fully covered over its own window
			// even though the lanes are far apart on the shared timeline.
			name: "disjoint lanes each complete",
			raw: `{"traceEvents": [
				{"name": "m", "ph": "M", "pid": 1, "tid": 1},
				{"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 1},
				{"name": "b", "ph": "X", "ts": 1000, "dur": 10, "pid": 2, "tid": 1}
			]}`,
			lanes:   2,
			overall: 20.0 / 1010.0,
			cover:   map[int]float64{1: 1, 2: 1},
		},
		{
			// An instantaneous lane (zero-length window) counts as covered.
			name: "degenerate lane",
			raw: `{"traceEvents": [
				{"name": "a", "ph": "X", "ts": 0, "dur": 50, "pid": 1, "tid": 1},
				{"name": "tick", "ph": "X", "ts": 25, "dur": 0, "pid": 2, "tid": 1}
			]}`,
			lanes:   2,
			overall: 1,
			cover:   map[int]float64{1: 1, 2: 1},
		},
	}
	for _, tc := range cases {
		rep, err := check([]byte(tc.raw))
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if len(rep.Lanes) != tc.lanes {
			t.Errorf("%s: lanes = %d, want %d", tc.name, len(rep.Lanes), tc.lanes)
			continue
		}
		if math.Abs(rep.Coverage-tc.overall) > 1e-9 {
			t.Errorf("%s: overall coverage = %g, want %g", tc.name, rep.Coverage, tc.overall)
		}
		for _, lane := range rep.Lanes {
			want, ok := tc.cover[lane.Pid]
			if !ok {
				t.Errorf("%s: unexpected lane pid %d", tc.name, lane.Pid)
				continue
			}
			if math.Abs(lane.Coverage-want) > 1e-9 {
				t.Errorf("%s: pid %d coverage = %g, want %g", tc.name, lane.Pid, lane.Coverage, want)
			}
		}
		// Lanes come out in ascending pid order.
		for i := 1; i < len(rep.Lanes); i++ {
			if rep.Lanes[i].Pid <= rep.Lanes[i-1].Pid {
				t.Errorf("%s: lanes out of order: %v", tc.name, rep.Lanes)
			}
		}
	}
}

// TestCheckMergedExporterOutput: a real WriteMergedTraceEvents file
// round-trips through check with one lane per process.
func TestCheckMergedExporterOutput(t *testing.T) {
	procs := []obs.ProcessTrace{
		{Label: "coordinator", Host: "c", PID: 100, EpochUnixNs: 1_000_000, Spans: []obs.Span{
			{ID: 1, Name: "dist.sweep", Stage: obs.StageEval, Start: 0, Dur: 9000},
		}},
		{Label: "worker", Host: "w", PID: 200, EpochUnixNs: 1_002_000, Spans: []obs.Span{
			{ID: 2, Name: "dist.shard_price", Stage: obs.StageEncode, Start: 0, Dur: 4000},
			{ID: 3, Name: "dist.shard_price", Stage: obs.StageEncode, Start: 4000, Dur: 3000},
		}},
	}
	var buf bytes.Buffer
	if err := obs.WriteMergedTraceEvents(&buf, procs); err != nil {
		t.Fatal(err)
	}
	rep, err := check(buf.Bytes())
	if err != nil {
		t.Fatalf("check rejected merged exporter output: %v\n%s", err, buf.String())
	}
	if len(rep.Lanes) != 2 || rep.Complete != 3 {
		t.Fatalf("report = %+v, want 2 lanes / 3 spans", rep)
	}
	for _, lane := range rep.Lanes {
		if math.Abs(lane.Coverage-1) > 1e-9 {
			t.Errorf("pid %d coverage = %g, want 1 (contiguous spans)", lane.Pid, lane.Coverage)
		}
	}
}

func TestCheckRejections(t *testing.T) {
	cases := []struct {
		name, raw, want string
	}{
		{"not json", `nope`, "not trace-event JSON"},
		{"empty", `{"traceEvents": []}`, "empty"},
		{"bad phase", `{"traceEvents": [{"name": "a", "ph": "B", "ts": 0, "dur": 1, "pid": 1, "tid": 1}]}`, "unsupported phase"},
		{"unnamed", `{"traceEvents": [{"ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1}]}`, "empty name"},
		{"negative", `{"traceEvents": [{"name": "a", "ph": "X", "ts": -1, "dur": 1, "pid": 1, "tid": 1}]}`, "negative ts/dur"},
		{"no tid", `{"traceEvents": [{"name": "a", "ph": "X", "ts": 0, "dur": 1, "pid": 1}]}`, "missing pid/tid"},
		{"metadata only", `{"traceEvents": [{"name": "process_name", "ph": "M", "pid": 1, "tid": 1}]}`, "no complete"},
	}
	for _, tc := range cases {
		if _, err := check([]byte(tc.raw)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}
