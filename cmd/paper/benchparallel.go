package main

import (
	"fmt"
	"runtime"
	"time"

	"busenc/internal/bench"
	"busenc/internal/codec"
	"busenc/internal/core"
	"busenc/internal/obs"
)

// Parallel-engine benchmark (-benchparallel): prices the Table 4 stream
// suite three ways on the same machine and records the ratios:
//
//   - reference: the seed-style per-entry path (streams regenerated,
//     virtual Encode/Drive/Decode per entry, full verification), serial;
//   - serial warm: codec.RunFast codec-by-codec over pre-analyzed
//     streams at GOMAXPROCS=1 — the engine's sequential best;
//   - parallel warm: core.EvaluateParallel (shard-parallel pricing with
//     encoder state reseeding) at an elevated GOMAXPROCS.
//
// SpeedupParallel = serial_warm / parallel_warm is the shard scaling
// itself; on a single-CPU machine the shards timeslice one core and the
// ratio degenerates to ~1x, which is why the record also carries
// num_cpu and SpeedupVsReference = reference / parallel_warm, a
// machine-independent floor the guard can always enforce. Parity
// requires all three paths to agree transition-for-transition.

// benchParallel runs the comparison and writes BENCH_parallel.json.
// shards=0 lets EvaluateParallel pick GOMAXPROCS shards per codec.
func benchParallel(path string, src core.Source, shards, warmIters int) (err error) {
	sp := obs.StartSpan("bench.parallel", obs.StageBench)
	defer func() { sp.EndErr(err) }()
	if warmIters < 1 {
		warmIters = 1
	}
	defaultProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(defaultProcs)

	// Reference timing, serial, streams regenerated (seed semantics).
	runtime.GOMAXPROCS(1)
	t0 := time.Now()
	refTotals, err := referenceTable4(src)
	if err != nil {
		return err
	}
	refNs := time.Since(t0).Nanoseconds()

	// The suite both warm sweeps share: generated and analyzed once, so
	// the measurements isolate pricing, not stream construction.
	sets, err := core.GenerateStreams(src)
	if err != nil {
		return err
	}
	codes := append([]string{"binary"}, core.ExistingCodes...)
	for _, set := range sets {
		set.Muxed.Analyze(uint64(core.Stride))
	}

	serialSweep := func() (map[string][]int64, error) {
		totals := make(map[string][]int64, len(sets))
		for _, set := range sets {
			row := make([]int64, 0, len(codes))
			for _, code := range codes {
				res, err := codec.RunFast(codec.MustNew(code, core.Width, core.DefaultOptions),
					set.Muxed, codec.RunOpts{Verify: codec.VerifySampled})
				if err != nil {
					return nil, err
				}
				row = append(row, res.Transitions)
			}
			totals[set.Name] = row
		}
		return totals, nil
	}
	parallelSweep := func() (map[string][]int64, error) {
		totals := make(map[string][]int64, len(sets))
		for _, set := range sets {
			results, err := core.EvaluateParallel(set.Muxed, core.Width, codes, core.DefaultOptions,
				core.ParallelConfig{Shards: shards, Verify: codec.VerifySampled})
			if err != nil {
				return nil, err
			}
			row := make([]int64, 0, len(results))
			for _, res := range results {
				row = append(row, res.Transitions)
			}
			totals[set.Name] = row
		}
		return totals, nil
	}
	timeSweep := func(sweep func() (map[string][]int64, error)) (map[string][]int64, int64, error) {
		var totals map[string][]int64
		best := int64(0)
		for i := 0; i < warmIters; i++ {
			t := time.Now()
			got, err := sweep()
			if err != nil {
				return nil, 0, err
			}
			if ns := time.Since(t).Nanoseconds(); best == 0 || ns < best {
				best = ns
			}
			totals = got
		}
		return totals, best, nil
	}

	// Serial warm sweep stays pinned to one proc.
	serTotals, serNs, err := timeSweep(serialSweep)
	if err != nil {
		return err
	}

	// Parallel sweep at an elevated GOMAXPROCS so the shard workers can
	// actually spread; forced to at least 4 so records from small
	// machines still exercise the multi-shard path.
	parProcs := runtime.NumCPU()
	if parProcs < 4 {
		parProcs = 4
	}
	runtime.GOMAXPROCS(parProcs)
	parTotals, parNs, err := timeSweep(parallelSweep)
	runtime.GOMAXPROCS(defaultProcs)
	if err != nil {
		return err
	}

	// The record carries the effective per-codec shard count, not the
	// flag value: shards=0 delegates to EvaluateParallel, which sizes
	// the fan-out by the GOMAXPROCS of the parallel measurement.
	effShards := shards
	if effShards <= 0 {
		effShards = parProcs
	}
	parity := sameTotals(refTotals, serTotals) && sameTotals(serTotals, parTotals)
	rec := bench.ParallelEngineRecord{
		Bench:              bench.ParallelBenchName,
		Source:             string(src),
		NumCPU:             runtime.NumCPU(),
		GoVersion:          runtime.Version(),
		ChunkLen:           codec.RunChunkLen,
		GOMAXPROCS:         parProcs,
		Shards:             effShards,
		Codecs:             codes,
		WarmIters:          warmIters,
		ReferenceNs:        refNs,
		SerialWarmNs:       serNs,
		ParallelWarmNs:     parNs,
		SpeedupParallel:    float64(serNs) / float64(parNs),
		SpeedupVsReference: float64(refNs) / float64(parNs),
		Parity:             parity,
	}
	if err := bench.WriteRecord(path, rec); err != nil {
		return err
	}
	fmt.Printf("parallel bench (%s source, %d cpu): reference %.1f ms, serial warm %.1f ms, parallel warm@%d procs %.1f ms (%.2fx vs serial, %.1fx vs reference), parity=%v -> %s\n",
		src, rec.NumCPU, float64(refNs)/1e6, float64(serNs)/1e6,
		parProcs, float64(parNs)/1e6, rec.SpeedupParallel, rec.SpeedupVsReference, parity, path)
	if !parity {
		return fmt.Errorf("parallel, serial and reference transition totals diverge")
	}
	return nil
}
