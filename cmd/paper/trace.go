package main

import (
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"busenc/internal/codec"
	"busenc/internal/core"
	"busenc/internal/trace"
)

// Trace evaluation mode (-trace): price codecs over an on-disk trace
// file instead of the generated benchmark suites. With -stream the
// trace is never materialized — the streaming fan-out reads it once in
// pooled chunks and evaluates all codecs concurrently under a fixed
// memory budget; without it the trace is loaded into memory and run
// through the batched engine codec-by-codec (useful for comparing the
// two paths on the same file).

// paperCodes are the seven codes of the paper's tables, binary first so
// savings are always relative to it.
var paperCodes = []string{"binary", "gray", "t0", "businvert", "t0bi", "dualt0", "dualt0bi"}

// parseCodes expands the -codes flag value.
func parseCodes(codes string) []string {
	switch codes {
	case "", "paper":
		return paperCodes
	case "all":
		return codec.Names()
	}
	var out []string
	for _, c := range strings.Split(codes, ",") {
		if c = strings.TrimSpace(c); c != "" {
			out = append(out, c)
		}
	}
	return out
}

// evalTrace evaluates the named codecs over the trace file and prints a
// comparison table. parallel > 0 routes the materialized path through
// core.EvaluateParallel with that many shards per codec. kernel picks
// the pricing kernel ("auto", "scalar" or "plane").
func evalTrace(path, codes string, streaming bool, chunkLen, parallel int, kernel string) error {
	if streaming && parallel > 0 {
		return fmt.Errorf("-stream and -parallel are mutually exclusive: the streaming fan-out never materializes the trace, shard-parallel pricing needs it in memory")
	}
	kern, err := codec.ParseKernel(kernel)
	if err != nil {
		return err
	}
	names := parseCodes(codes)
	// Ensure binary leads so savings have a reference.
	if len(names) == 0 || names[0] != "binary" {
		withBin := []string{"binary"}
		for _, n := range names {
			if n != "binary" {
				withBin = append(withBin, n)
			}
		}
		names = withBin
	}

	var pool *trace.ChunkPool
	if chunkLen > 0 {
		pool = trace.NewChunkPool(chunkLen)
	}
	r, closer, err := trace.OpenFile(path, pool)
	if err != nil {
		return err
	}
	defer closer.Close()

	var results []codec.Result
	var streamName string
	var entries int64
	if streaming {
		results, err = core.EvaluateStreaming(r, r.Width(), names, core.DefaultOptions,
			core.FanoutConfig{Verify: codec.VerifySampled, Kernel: kern})
		if err != nil {
			return err
		}
		streamName = results[0].Stream
		entries = results[0].Cycles
	} else {
		s, err := trace.ReadAll(r)
		if err != nil {
			return err
		}
		streamName = s.Name
		entries = int64(s.Len())
		if parallel > 0 {
			results, err = core.EvaluateParallel(s, s.Width, names, core.DefaultOptions,
				core.ParallelConfig{Shards: parallel, Verify: codec.VerifySampled, Kernel: kern})
			if err != nil {
				return err
			}
		} else {
			for _, name := range names {
				c, err := codec.New(name, s.Width, core.DefaultOptions)
				if err != nil {
					return err
				}
				res, err := codec.RunFast(c, s, codec.RunOpts{Verify: codec.VerifySampled, Kernel: kern})
				if err != nil {
					return err
				}
				results = append(results, res)
			}
		}
	}

	mode := "materialized"
	switch {
	case streaming:
		mode = "streaming"
	case parallel > 0:
		mode = fmt.Sprintf("parallel (%d shards)", parallel)
	}
	fmt.Printf("trace %q (%s): %d references, width %d, %s evaluation\n",
		streamName, path, entries, r.Width(), mode)
	bin := results[0]
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "code\tbus lines\ttransitions\tper cycle\tsavings")
	for _, res := range results {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%.2f%%\n",
			res.Codec, res.BusWidth, res.Transitions, res.AvgPerCycle(), res.SavingsVs(bin)*100)
	}
	return tw.Flush()
}
