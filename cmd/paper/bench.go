package main

import (
	"fmt"
	"runtime"
	"time"

	"busenc/internal/bench"
	"busenc/internal/codec"
	"busenc/internal/core"
	"busenc/internal/obs"
)

// Engine benchmark: times a Table 4 regeneration on the seed-style
// reference path (fresh stream generation, one virtual Encode/Drive/
// Decode per entry, full verification) against the batched evaluation
// engine (memoized streams, bulk encode kernels, aggregate counting,
// sampled verification), checks the two agree transition-for-transition,
// and writes the numbers as JSON so successive PRs can track the
// trajectory. The record schema lives in internal/bench, shared with
// cmd/benchguard, which enforces it in CI. The top-level timings are
// measured serially (GOMAXPROCS pinned to 1) so successive records stay
// comparable across machines; Parallel repeats the warm engine run at
// the process's default GOMAXPROCS so the bounded scheduler's speedup
// is visible in the trajectory.

// referenceTable4 rebuilds Table 4 the way the seed implementation did:
// streams generated from scratch and every codec run entry-at-a-time on
// the fully verified slow path. Row totals are returned for the parity
// check.
func referenceTable4(src core.Source) (map[string][]int64, error) {
	sets, err := core.GenerateStreams(src)
	if err != nil {
		return nil, err
	}
	totals := make(map[string][]int64, len(sets))
	for _, set := range sets {
		s := set.Muxed
		s.Analyze(uint64(core.Stride))
		bin, err := codec.Run(codec.MustNew("binary", core.Width, codec.Options{}), s)
		if err != nil {
			return nil, err
		}
		row := []int64{bin.Transitions}
		for _, code := range core.ExistingCodes {
			res, err := codec.Run(codec.MustNew(code, core.Width, core.DefaultOptions), s)
			if err != nil {
				return nil, err
			}
			row = append(row, res.Transitions)
		}
		totals[set.Name] = row
	}
	return totals, nil
}

func engineTotals(tab *core.Table) map[string][]int64 {
	totals := make(map[string][]int64, len(tab.Rows))
	for _, r := range tab.Rows {
		row := []int64{r.Binary}
		for _, c := range r.Cols {
			row = append(row, c.Transitions)
		}
		totals[r.Bench] = row
	}
	return totals
}

func sameTotals(a, b map[string][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

// benchEngine runs the comparison and writes the JSON record to path.
func benchEngine(path string, src core.Source, warmIters int) error {
	if warmIters < 1 {
		warmIters = 1
	}
	root := obs.StartSpan("bench.engine", obs.StageBench)

	// Serial measurements: pin to one proc so records are comparable
	// across machines and across the trajectory.
	defaultProcs := runtime.GOMAXPROCS(1)
	psp := root.Child("bench.reference", obs.StageBench)
	t0 := time.Now()
	refTotals, err := referenceTable4(src)
	if err != nil {
		runtime.GOMAXPROCS(defaultProcs)
		psp.EndErr(err)
		root.EndErr(err)
		return err
	}
	refNs := time.Since(t0).Nanoseconds()
	psp.End()

	psp = root.Child("bench.engine_cold", obs.StageBench)
	t0 = time.Now()
	tab, err := core.Table4(src)
	if err != nil {
		runtime.GOMAXPROCS(defaultProcs)
		psp.EndErr(err)
		root.EndErr(err)
		return err
	}
	coldNs := time.Since(t0).Nanoseconds()
	psp.End()
	parity := sameTotals(refTotals, engineTotals(tab))

	warm := func(iters int) (int64, error) {
		best := int64(0)
		for i := 0; i < iters; i++ {
			t0 := time.Now()
			if _, err := core.Table4(src); err != nil {
				return 0, err
			}
			if ns := time.Since(t0).Nanoseconds(); best == 0 || ns < best {
				best = ns
			}
		}
		return best, nil
	}
	psp = root.Child("bench.engine_warm", obs.StageBench)
	warmNs, err := warm(warmIters)
	if err != nil {
		runtime.GOMAXPROCS(defaultProcs)
		psp.EndErr(err)
		root.EndErr(err)
		return err
	}
	psp.End()

	// Parallel warm run at the default GOMAXPROCS (the caches are warm
	// either way, so this isolates the scheduler's gain).
	runtime.GOMAXPROCS(defaultProcs)
	psp = root.Child("bench.engine_warm_parallel", obs.StageBench)
	parWarmNs, err := warm(warmIters)
	if err != nil {
		psp.EndErr(err)
		root.EndErr(err)
		return err
	}
	psp.End()
	root.End()

	rec := bench.EngineRecord{
		Bench:        bench.EngineBenchName,
		Source:       string(src),
		NumCPU:       runtime.NumCPU(),
		GoVersion:    runtime.Version(),
		ChunkLen:     codec.RunChunkLen,
		GOMAXPROCS:   1,
		ReferenceNs:  refNs,
		EngineColdNs: coldNs,
		EngineWarmNs: warmNs,
		WarmIters:    warmIters,
		SpeedupCold:  float64(refNs) / float64(coldNs),
		SpeedupWarm:  float64(refNs) / float64(warmNs),
		Parity:       parity,
		Parallel: bench.ParallelRecord{
			GOMAXPROCS:      defaultProcs,
			EngineWarmNs:    parWarmNs,
			SpeedupWarm:     float64(refNs) / float64(parWarmNs),
			SpeedupVsSerial: float64(warmNs) / float64(parWarmNs),
		},
	}
	if err := bench.WriteRecord(path, rec); err != nil {
		return err
	}
	fmt.Printf("engine bench (%s source): reference %.1f ms, engine cold %.1f ms (%.1fx), warm %.1f ms (%.1fx), warm@%d procs %.1f ms (%.2fx vs serial), parity=%v -> %s\n",
		src, float64(refNs)/1e6, float64(coldNs)/1e6, rec.SpeedupCold,
		float64(warmNs)/1e6, rec.SpeedupWarm,
		defaultProcs, float64(parWarmNs)/1e6, rec.Parallel.SpeedupVsSerial, parity, path)
	if !parity {
		return fmt.Errorf("engine and reference transition totals diverge")
	}
	return nil
}
