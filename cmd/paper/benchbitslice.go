package main

import (
	"fmt"
	"runtime"
	"time"

	"busenc/internal/bench"
	"busenc/internal/codec"
	"busenc/internal/core"
	"busenc/internal/obs"
)

// Bit-sliced kernel benchmark (-benchjson writes BENCH_bitslice.json
// alongside the other records): prices the seedable plane-codec subset
// (binary, gray, offset, incxor) over the same materialized trace two
// ways on the same machine —
//
//   - scalar: codec.RunFast per codec with Kernel forced to
//     KernelScalar, so the batch encode kernels materialize every word
//     and bus.Accumulate prices one entry at a time;
//   - plane: one codec.RunPlaneSet sweep, transposing each 64-address
//     block once and pricing all four codecs on the bit-sliced
//     XOR+popcount kernels, never materializing the word stream.
//
// Both sides request identical statistics (per-line counts, so parity
// covers Transitions, Cycles, PerLine and MaxPerCycle) with VerifyNone,
// isolating encode+count. SpeedupBitslice = scalar_ns / plane_ns is a
// same-machine ratio; the guard's BitsliceFloor band (default 5x)
// enforces the ISSUE target on every regeneration.

// bitsliceCodes is the seedable subset with plane-domain kernels.
var bitsliceCodes = []string{"binary", "gray", "offset", "incxor"}

// benchBitslice runs the comparison and writes BENCH_bitslice.json.
func benchBitslice(path string, entries, warmIters int) (err error) {
	sp := obs.StartSpan("bench.bitslice", obs.StageBench)
	defer func() { sp.EndErr(err) }()
	if entries <= 0 {
		entries = 1 << 20
	}
	if warmIters < 1 {
		warmIters = 1
	}
	s := buildBenchTrace(entries)
	cs := make([]codec.Codec, len(bitsliceCodes))
	for i, code := range bitsliceCodes {
		cs[i] = codec.MustNew(code, core.Width, core.DefaultOptions)
	}
	opts := codec.RunOpts{Verify: codec.VerifyNone, PerLine: true}

	// Serial measurement: both paths are single-threaded, so pin to one
	// proc to keep records insensitive to background scheduling.
	defaultProcs := runtime.GOMAXPROCS(0)
	runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(defaultProcs)

	scalarSweep := func() ([]codec.Result, error) {
		out := make([]codec.Result, len(cs))
		sopts := opts
		sopts.Kernel = codec.KernelScalar
		for i, c := range cs {
			res, err := codec.RunFast(c, s, sopts)
			if err != nil {
				return nil, err
			}
			out[i] = res
		}
		return out, nil
	}
	planeSweep := func() ([]codec.Result, error) {
		return codec.RunPlaneSet(cs, s, opts)
	}
	timeSweep := func(sweep func() ([]codec.Result, error)) ([]codec.Result, int64, error) {
		var results []codec.Result
		best := int64(0)
		for i := 0; i < warmIters; i++ {
			t := time.Now()
			got, err := sweep()
			if err != nil {
				return nil, 0, err
			}
			if ns := time.Since(t).Nanoseconds(); best == 0 || ns < best {
				best = ns
			}
			results = got
		}
		return results, best, nil
	}

	scalarResults, scalarNs, err := timeSweep(scalarSweep)
	if err != nil {
		return err
	}
	planeResults, planeNs, err := timeSweep(planeSweep)
	if err != nil {
		return err
	}

	parity := len(scalarResults) == len(planeResults)
	for i := 0; parity && i < len(scalarResults); i++ {
		parity = sameResult(scalarResults[i], planeResults[i])
	}

	rec := bench.BitsliceRecord{
		Bench:           bench.BitsliceBenchName,
		Entries:         entries,
		ChunkLen:        codec.RunChunkLen,
		NumCPU:          runtime.NumCPU(),
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      1,
		Codecs:          bitsliceCodes,
		PerLine:         true,
		WarmIters:       warmIters,
		ScalarNs:        scalarNs,
		PlaneNs:         planeNs,
		SpeedupBitslice: float64(scalarNs) / float64(planeNs),
		Parity:          parity,
	}
	if err := bench.WriteRecord(path, rec); err != nil {
		return err
	}
	fmt.Printf("bitslice bench: %d entries x %d codecs, scalar %.1f ms, plane %.1f ms (%.2fx), parity=%v -> %s\n",
		entries, len(cs), float64(scalarNs)/1e6, float64(planeNs)/1e6, rec.SpeedupBitslice, parity, path)
	if !parity {
		return fmt.Errorf("plane-kernel and scalar-kernel results diverge")
	}
	return nil
}

// sameResult compares every statistic a Result carries, per-line counts
// included.
func sameResult(a, b codec.Result) bool {
	if a.Codec != b.Codec || a.Transitions != b.Transitions ||
		a.Cycles != b.Cycles || a.MaxPerCycle != b.MaxPerCycle ||
		len(a.PerLine) != len(b.PerLine) {
		return false
	}
	for i := range a.PerLine {
		if a.PerLine[i] != b.PerLine[i] {
			return false
		}
	}
	return true
}
