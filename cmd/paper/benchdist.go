package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"busenc/internal/bench"
	"busenc/internal/codec"
	"busenc/internal/core"
	"busenc/internal/dist"
	"busenc/internal/obs"
	"busenc/internal/trace"
)

// Distributed-sweep benchmark (-benchdist): serialize a large synthetic
// trace to disk, then price every registered codec over it two ways on
// the same machine —
//
//   - serial: decode the file and codec.RunFast codec by codec, the
//     sequential end-to-end best;
//   - distributed: dist.Sweep with real worker processes (this binary
//     re-executed with the hidden -distworker flag, exactly how
//     cmd/busencsweep fans out).
//
// Each timed distributed iteration includes planning, the boundary
// state sweep, worker spawn, shard pricing and the merge — the honest
// end-to-end cost a user pays for `busencsweep -workers N`. Parity
// requires the merged distributed results to match RunFast field for
// field on every codec. The guard's absolute speedup floor binds only
// on boxes with >= 4 CPUs (see bench.CompareDist); the record always
// carries num_cpu so the skip is explicit.

// benchDist runs the comparison and writes BENCH_dist.json.
func benchDist(path string, entries, warmIters int) (err error) {
	sp := obs.StartSpan("bench.dist", obs.StageBench)
	defer func() { sp.EndErr(err) }()
	if entries <= 0 {
		entries = 1 << 20
	}
	if warmIters < 1 {
		warmIters = 1
	}
	s := buildBenchTrace(entries)
	tmp, err := os.CreateTemp(filepath.Dir(path), "busenc-bench-*.betr")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	defer os.Remove(tmpPath)
	if err := trace.WriteBinary(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}

	// Paper-default codec parameters (stride 4, word-addressed MIPS) so
	// the record prices the same workload semantics as every other
	// bench and CLI.
	specs := dist.AllSpecs(core.Width)
	codes := make([]string, len(specs))
	for i, spec := range specs {
		specs[i].Stride = uint64(core.Stride)
		codes[i] = spec.Name
	}

	serialSweep := func() ([]codec.Result, error) {
		r, closer, err := trace.OpenFile(tmpPath, nil)
		if err != nil {
			return nil, err
		}
		decoded, err := trace.ReadAll(r)
		closer.Close()
		if err != nil {
			return nil, err
		}
		results := make([]codec.Result, 0, len(specs))
		for _, spec := range specs {
			c, err := spec.New()
			if err != nil {
				return nil, err
			}
			res, err := codec.RunFast(c, decoded, codec.RunOpts{Verify: codec.VerifyNone})
			if err != nil {
				return nil, err
			}
			results = append(results, res)
		}
		return results, nil
	}

	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2 // exercise the multi-process path even on one core
	}
	if workers > 8 {
		workers = 8
	}
	shards := 4 * workers
	self, err := os.Executable()
	if err != nil {
		return err
	}
	distSweep := func() ([]codec.Result, error) {
		return dist.Sweep(tmpPath, dist.Opts{
			Workers: workers,
			Shards:  shards,
			Codecs:  specs,
			Verify:  codec.VerifyNone,
			Spawn:   dist.ExecSpawner([]string{self, "-distworker"}, nil),
		})
	}

	timeSweep := func(sweep func() ([]codec.Result, error)) ([]codec.Result, int64, error) {
		var results []codec.Result
		best := int64(0)
		for i := 0; i < warmIters; i++ {
			t := time.Now()
			got, err := sweep()
			if err != nil {
				return nil, 0, err
			}
			if ns := time.Since(t).Nanoseconds(); best == 0 || ns < best {
				best = ns
			}
			results = got
		}
		return results, best, nil
	}

	serResults, serNs, err := timeSweep(serialSweep)
	if err != nil {
		return err
	}
	distResults, distNs, err := timeSweep(distSweep)
	if err != nil {
		return err
	}

	parity := len(serResults) == len(distResults)
	if parity {
		for i, want := range serResults {
			got := distResults[i]
			if got.Codec != want.Codec || got.Transitions != want.Transitions ||
				got.Cycles != want.Cycles || got.MaxPerCycle != want.MaxPerCycle {
				parity = false
				break
			}
		}
	}
	rec := bench.DistRecord{
		Bench:        bench.DistBenchName,
		Entries:      entries,
		NumCPU:       runtime.NumCPU(),
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Workers:      workers,
		Shards:       shards,
		Codecs:       codes,
		WarmIters:    warmIters,
		SerialWarmNs: serNs,
		DistWarmNs:   distNs,
		SpeedupDist:  float64(serNs) / float64(distNs),
		Parity:       parity,
	}
	if err := bench.WriteRecord(path, rec); err != nil {
		return err
	}
	fmt.Printf("dist bench (%d entries, %d cpu): serial warm %.1f ms, distributed warm (%d workers, %d shards) %.1f ms (%.2fx), parity=%v -> %s\n",
		entries, rec.NumCPU, float64(serNs)/1e6, workers, shards, float64(distNs)/1e6, rec.SpeedupDist, parity, path)
	if !parity {
		return fmt.Errorf("distributed sweep and sequential RunFast results diverge")
	}
	return nil
}
