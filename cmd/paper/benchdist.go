package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"busenc/internal/bench"
	"busenc/internal/codec"
	"busenc/internal/core"
	"busenc/internal/dist"
	"busenc/internal/obs"
	"busenc/internal/serve"
	"busenc/internal/trace"
)

// Distributed-sweep benchmark (-benchdist): serialize a large synthetic
// trace to disk, then price every registered codec over it two ways on
// the same machine —
//
//   - serial: decode the file and codec.RunFast codec by codec, the
//     sequential end-to-end best;
//   - distributed: dist.Sweep with real worker processes (this binary
//     re-executed with the hidden -distworker flag, exactly how
//     cmd/busencsweep fans out).
//
// Each timed distributed iteration includes planning, the boundary
// state sweep, worker spawn, shard pricing and the merge — the honest
// end-to-end cost a user pays for `busencsweep -workers N`. Parity
// requires the merged distributed results to match RunFast field for
// field on every codec. The guard's absolute speedup floor binds only
// on boxes with >= 4 CPUs (see bench.CompareDist); the record always
// carries num_cpu so the skip is explicit.
//
// The tcp sub-record repeats the sweep over two loopback busencd peers
// speaking the /dist upgrade protocol, comparing the pipelined
// in-flight window against lock-step window=1 dispatch (the pipelining
// floor binds on >= 2 CPUs with >= 2 peers), and proves digest dedup:
// the re-sweep's trace upload must be zero bytes because both peers
// already hold the trace content-addressed by SHA-256.

// benchDist runs the comparison and writes BENCH_dist.json.
func benchDist(path string, entries, warmIters int) (err error) {
	sp := obs.StartSpan("bench.dist", obs.StageBench)
	defer func() { sp.EndErr(err) }()
	if entries <= 0 {
		entries = 1 << 20
	}
	if warmIters < 1 {
		warmIters = 1
	}
	s := buildBenchTrace(entries)
	tmp, err := os.CreateTemp(filepath.Dir(path), "busenc-bench-*.betr")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	defer os.Remove(tmpPath)
	if err := trace.WriteBinary(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}

	// Paper-default codec parameters (stride 4, word-addressed MIPS) so
	// the record prices the same workload semantics as every other
	// bench and CLI.
	specs := dist.AllSpecs(core.Width)
	codes := make([]string, len(specs))
	for i, spec := range specs {
		specs[i].Stride = uint64(core.Stride)
		codes[i] = spec.Name
	}

	serialSweep := func() ([]codec.Result, error) {
		r, closer, err := trace.OpenFile(tmpPath, nil)
		if err != nil {
			return nil, err
		}
		decoded, err := trace.ReadAll(r)
		closer.Close()
		if err != nil {
			return nil, err
		}
		results := make([]codec.Result, 0, len(specs))
		for _, spec := range specs {
			c, err := spec.New()
			if err != nil {
				return nil, err
			}
			res, err := codec.RunFast(c, decoded, codec.RunOpts{Verify: codec.VerifyNone})
			if err != nil {
				return nil, err
			}
			results = append(results, res)
		}
		return results, nil
	}

	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2 // exercise the multi-process path even on one core
	}
	if workers > 8 {
		workers = 8
	}
	shards := 4 * workers
	self, err := os.Executable()
	if err != nil {
		return err
	}
	distSweep := func() ([]codec.Result, error) {
		return dist.Sweep(tmpPath, dist.Opts{
			Workers: workers,
			Shards:  shards,
			Codecs:  specs,
			Verify:  codec.VerifyNone,
			Spawn:   dist.ExecSpawner([]string{self, "-distworker"}, nil),
		})
	}

	timeSweep := func(sweep func() ([]codec.Result, error)) ([]codec.Result, int64, error) {
		var results []codec.Result
		best := int64(0)
		for i := 0; i < warmIters; i++ {
			t := time.Now()
			got, err := sweep()
			if err != nil {
				return nil, 0, err
			}
			if ns := time.Since(t).Nanoseconds(); best == 0 || ns < best {
				best = ns
			}
			results = got
		}
		return results, best, nil
	}

	serResults, serNs, err := timeSweep(serialSweep)
	if err != nil {
		return err
	}
	distResults, distNs, err := timeSweep(distSweep)
	if err != nil {
		return err
	}

	sameResults := func(got, want []codec.Result) bool {
		if len(got) != len(want) {
			return false
		}
		for i, w := range want {
			g := got[i]
			if g.Codec != w.Codec || g.Transitions != w.Transitions ||
				g.Cycles != w.Cycles || g.MaxPerCycle != w.MaxPerCycle {
				return false
			}
		}
		return true
	}
	parity := sameResults(distResults, serResults)

	tcp, err := benchDistTCP(tmpPath, specs, entries, warmIters, serResults, sameResults, timeSweep)
	if err != nil {
		return err
	}

	rec := bench.DistRecord{
		Bench:        bench.DistBenchName,
		Entries:      entries,
		NumCPU:       runtime.NumCPU(),
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Workers:      workers,
		Shards:       shards,
		Codecs:       codes,
		WarmIters:    warmIters,
		SerialWarmNs: serNs,
		DistWarmNs:   distNs,
		SpeedupDist:  float64(serNs) / float64(distNs),
		Parity:       parity,
		TCP:          tcp,
	}
	if err := bench.WriteRecord(path, rec); err != nil {
		return err
	}
	fmt.Printf("dist bench (%d entries, %d cpu): serial warm %.1f ms, distributed warm (%d workers, %d shards) %.1f ms (%.2fx), parity=%v -> %s\n",
		entries, rec.NumCPU, float64(serNs)/1e6, workers, shards, float64(distNs)/1e6, rec.SpeedupDist, parity, path)
	fmt.Printf("dist bench tcp (%d peers, %d shards): pipelined (window %d) %.1f ms vs lock-step %.1f ms (%.2fx), shipped %d B once, re-ship %d B (%d dedup hits), parity=%v\n",
		tcp.Peers, tcp.Shards, tcp.Window, float64(tcp.PipelinedNs)/1e6, float64(tcp.InFlight1Ns)/1e6,
		tcp.SpeedupPipelined, tcp.TraceShipBytes, tcp.DedupReshipBytes, tcp.DedupHits, tcp.Parity)
	if !parity {
		return fmt.Errorf("distributed sweep and sequential RunFast results diverge")
	}
	if !tcp.Parity {
		return fmt.Errorf("networked sweep and sequential RunFast results diverge")
	}
	if tcp.DedupReshipBytes != 0 {
		return fmt.Errorf("re-sweep against warm peers shipped %d trace bytes, want 0 (digest dedup broken)", tcp.DedupReshipBytes)
	}
	return nil
}

// benchDistTCP measures the networked variant: the same sweep over two
// loopback busencd peers, pipelined window vs lock-step, plus the
// digest-dedup re-ship evidence.
func benchDistTCP(tmpPath string, specs []dist.CodecSpec, entries, warmIters int,
	serResults []codec.Result, sameResults func(got, want []codec.Result) bool,
	timeSweep func(func() ([]codec.Result, error)) ([]codec.Result, int64, error)) (*bench.DistTCPRecord, error) {

	const (
		tcpPeers  = 2
		tcpWindow = 8
		// Dispatch-bound on purpose: many small shards put the per-shard
		// round trip on the critical path, which is exactly what the
		// in-flight window is meant to hide.
		tcpShards = 128
	)
	peers := make([]string, 0, tcpPeers)
	for i := 0; i < tcpPeers; i++ {
		dir, err := os.MkdirTemp("", "busenc-bench-peer-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		srv, err := serve.New(serve.Config{StoreDir: dir})
		if err != nil {
			return nil, err
		}
		mux := http.NewServeMux()
		srv.Register(mux)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: mux}
		go hs.Serve(ln)
		defer hs.Close()
		peers = append(peers, ln.Addr().String())
	}

	tcpSweep := func(window int, ns *dist.NetStats) ([]codec.Result, error) {
		return dist.Sweep(tmpPath, dist.Opts{
			Peers:  peers,
			Window: window,
			Shards: tcpShards,
			Codecs: specs,
			Verify: codec.VerifyNone,
			Net:    ns,
		})
	}

	// Cold sweep: ships the trace into both peers' stores exactly once
	// and warms their mmap caches; every timed iteration after it pays
	// only dispatch and pricing.
	var ship dist.NetStats
	if _, err := tcpSweep(tcpWindow, &ship); err != nil {
		return nil, fmt.Errorf("networked warm-up sweep: %w", err)
	}
	pipeResults, pipeNs, err := timeSweep(func() ([]codec.Result, error) { return tcpSweep(tcpWindow, nil) })
	if err != nil {
		return nil, fmt.Errorf("pipelined networked sweep: %w", err)
	}
	lockResults, lockNs, err := timeSweep(func() ([]codec.Result, error) { return tcpSweep(1, nil) })
	if err != nil {
		return nil, fmt.Errorf("lock-step networked sweep: %w", err)
	}
	// Re-sweep with fresh counters: the digest probe must find both
	// peers warm, so zero trace bytes move.
	var reship dist.NetStats
	reResults, err := tcpSweep(tcpWindow, &reship)
	if err != nil {
		return nil, fmt.Errorf("dedup re-sweep: %w", err)
	}

	return &bench.DistTCPRecord{
		Peers:            tcpPeers,
		Window:           tcpWindow,
		Shards:           tcpShards,
		Entries:          entries,
		PipelinedNs:      pipeNs,
		InFlight1Ns:      lockNs,
		SpeedupPipelined: float64(lockNs) / float64(pipeNs),
		Parity: sameResults(pipeResults, serResults) &&
			sameResults(lockResults, serResults) && sameResults(reResults, serResults),
		TraceShipBytes:   ship.TraceShipBytes.Load(),
		DedupReshipBytes: reship.TraceShipBytes.Load(),
		DedupHits:        reship.TraceDedupHits.Load(),
	}, nil
}
