package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"busenc/internal/bench"
	"busenc/internal/codec"
	"busenc/internal/core"
	"busenc/internal/obs"
	"busenc/internal/trace"
)

// Streaming pipeline benchmark: serialize a large synthetic muxed trace
// to disk, then price all seven paper codecs over it twice — once by
// materializing the trace and running the batched engine per codec, and
// once through the single-pass streaming fan-out — and record wall
// times and allocation deltas as JSON. The allocation delta is the
// pipeline's headline: the materialized path allocates proportionally
// to trace length, the streaming path stays flat (pooled chunks +
// bounded channels).

// The machine-readable record written to BENCH_stream.json is
// bench.StreamRecord, shared with the cmd/benchguard regression guard.

// timedAlloc runs f between two GC-stabilized memory readings and
// returns its wall time and the bytes allocated while it ran.
func timedAlloc(f func() error) (int64, uint64, error) {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	err := f()
	ns := time.Since(t0).Nanoseconds()
	runtime.ReadMemStats(&m1)
	return ns, m1.TotalAlloc - m0.TotalAlloc, err
}

// buildBenchTrace replicates the reference muxed stream up to the
// requested entry count so the trace is large without new generators.
func buildBenchTrace(entries int) *trace.Stream {
	base := core.ReferenceMuxedStream(entries)
	s := trace.New("stream-bench", core.Width)
	s.Entries = make([]trace.Entry, 0, entries)
	for len(s.Entries) < entries {
		n := entries - len(s.Entries)
		if n > base.Len() {
			n = base.Len()
		}
		s.Entries = append(s.Entries, base.Entries[:n]...)
	}
	return s
}

// benchStream runs the comparison over a trace of the given length and
// writes the JSON record to path.
func benchStream(path string, entries int) (err error) {
	sp := obs.StartSpan("bench.stream", obs.StageBench)
	defer func() { sp.EndErr(err) }()
	if entries <= 0 {
		entries = 1 << 20
	}
	s := buildBenchTrace(entries)
	tmp, err := os.CreateTemp(filepath.Dir(path), "busenc-bench-*.bin")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	defer os.Remove(tmpPath)
	if err := trace.WriteBinary(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	fi, err := os.Stat(tmpPath)
	if err != nil {
		return err
	}
	s = nil // the benchmark must re-read from disk, not reuse the build

	codes := paperCodes

	// Materialized path: load the whole trace, then run every codec on
	// the batched engine concurrently (same parallelism as the fan-out,
	// so the comparison isolates memory strategy, not scheduling).
	matResults := make([]codec.Result, len(codes))
	matNs, matAlloc, err := timedAlloc(func() error {
		r, closer, err := trace.OpenFile(tmpPath, nil)
		if err != nil {
			return err
		}
		defer closer.Close()
		loaded, err := trace.ReadAll(r)
		if err != nil {
			return err
		}
		errs := make([]error, len(codes))
		var wg sync.WaitGroup
		wg.Add(len(codes))
		for i, code := range codes {
			go func(i int, code string) {
				defer wg.Done()
				res, err := codec.RunFast(codec.MustNew(code, core.Width, core.DefaultOptions), loaded, codec.RunOpts{Verify: codec.VerifySampled})
				matResults[i], errs[i] = res, err
			}(i, code)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Streaming path: one pass, bounded memory.
	var strResults []codec.Result
	strNs, strAlloc, err := timedAlloc(func() error {
		r, closer, err := trace.OpenFile(tmpPath, nil)
		if err != nil {
			return err
		}
		defer closer.Close()
		strResults, err = core.EvaluateStreaming(r, r.Width(), codes, core.DefaultOptions,
			core.FanoutConfig{Verify: codec.VerifySampled})
		return err
	})
	if err != nil {
		return err
	}

	parity := true
	for i := range codes {
		if matResults[i].Transitions != strResults[i].Transitions ||
			matResults[i].Cycles != strResults[i].Cycles {
			parity = false
		}
	}

	rec := bench.StreamRecord{
		Bench:      bench.StreamBenchName,
		Entries:    entries,
		FileBytes:  fi.Size(),
		ChunkLen:   trace.DefaultChunkLen,
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Depth:      core.DefaultFanoutDepth,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Codecs:     codes,

		MaterializedNs:         matNs,
		MaterializedAllocBytes: matAlloc,
		StreamingNs:            strNs,
		StreamingAllocBytes:    strAlloc,
		SpeedupStreaming:       float64(matNs) / float64(strNs),
		AllocRatio:             float64(matAlloc) / float64(max(1, strAlloc)),
		Parity:                 parity,
	}
	if err := bench.WriteRecord(path, rec); err != nil {
		return err
	}
	fmt.Printf("stream bench: %d entries (%.1f MB on disk), materialized %.1f ms / %.1f MB alloc, streaming %.1f ms / %.1f MB alloc (%.2fx time, %.0fx alloc), parity=%v -> %s\n",
		entries, float64(fi.Size())/1e6,
		float64(matNs)/1e6, float64(matAlloc)/1e6,
		float64(strNs)/1e6, float64(strAlloc)/1e6,
		rec.SpeedupStreaming, rec.AllocRatio, parity, path)
	if !parity {
		return fmt.Errorf("streaming and materialized transition totals diverge")
	}
	return nil
}
