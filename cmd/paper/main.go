// Command paper regenerates the tables of Benini et al., "Address Bus
// Encoding Techniques for System-Level Power Optimization" (DATE 1998).
//
// Usage:
//
//	paper                 # print every table (1-9)
//	paper -table 7        # print one table
//	paper -source mips    # drive Tables 2-7 from the MIPS simulator
//	paper -sweep          # with -table 9: print the crossover summary
//	paper -trace prog.bin -stream        # price the codecs over a trace file
//	                                     # in one bounded-memory pass
//	paper -trace prog.bin -parallel 4    # shard-parallel pricing with
//	                                     # reseeded encoder state
//	paper -benchjson BENCH_engine.json   # time the evaluation engine and the
//	                                     # streaming pipeline (BENCH_stream.json)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"busenc/internal/core"
	"busenc/internal/dist"
	"busenc/internal/obs"
)

func main() {
	tableNum := flag.Int("table", 0, "table to print (1-9; 0 = all)")
	source := flag.String("source", "synthetic", "stream source for Tables 2-7: synthetic | mips")
	hwStream := flag.Int("hwstream", 5000, "reference stream length for Tables 8-9")
	sweep := flag.Bool("sweep", false, "print the off-chip crossover summary with Table 9")
	asJSON := flag.Bool("json", false, "emit JSON instead of aligned text")
	tracePath := flag.String("trace", "", "evaluate the codecs over this trace file (text or binary, auto-detected) instead of the benchmark suites")
	stream := flag.Bool("stream", false, "with -trace: use the single-pass bounded-memory streaming fan-out instead of materializing the trace")
	parallel := flag.Int("parallel", 0, "with -trace: price each codec over N shards with reseeded encoder state (0 = off; incompatible with -stream)")
	codes := flag.String("codes", "paper", "with -trace: comma-separated codec list, \"paper\" (the seven paper codes) or \"all\"")
	kernel := flag.String("kernel", "auto", "with -trace: pricing kernel — \"auto\" (plane-capable codecs use the bit-sliced path), \"scalar\" or \"plane\"")
	chunkLen := flag.Int("chunklen", 0, "with -trace: chunk size in entries (0 = default)")
	benchJSON := flag.String("benchjson", "", "benchmark the batched evaluation engine against the reference path and write machine-readable results to this file (e.g. BENCH_engine.json); also writes the streaming-pipeline record (see -benchstream) and the shard-parallel record (see -benchparallel), then exits")
	benchStreamJSON := flag.String("benchstream", "", "with -benchjson: path for the streaming-pipeline record (default: BENCH_stream.json beside the engine record)")
	benchParallelJSON := flag.String("benchparallel", "", "with -benchjson: path for the shard-parallel engine record (default: BENCH_parallel.json beside the engine record)")
	benchBitsliceJSON := flag.String("benchbitslice", "", "with -benchjson: path for the bit-sliced kernel record (default: BENCH_bitslice.json beside the engine record)")
	benchEntries := flag.Int("benchentries", 1<<20, "with -benchjson: trace length for the streaming-pipeline benchmark")
	benchDistJSON := flag.String("benchdist", "", "benchmark the distributed coordinator/worker sweep against a serial decode+price pass and write the record to this path (e.g. BENCH_dist.json), then exit")
	distWorker := flag.Bool("distworker", false, "internal: run as a distributed-sweep protocol worker on stdin/stdout (spawned by -benchdist)")
	metrics := flag.String("metrics", "", "enable run-time observability and dump all metric registries on exit: \"table\", \"json\" or \"spans\" (to stderr, so table/trace output stays clean; \"spans\" prints per-stage span latency attribution)")
	spanTrace := flag.String("spantrace", "", "record pipeline spans and write a Chrome trace-event file (load in Perfetto / chrome://tracing) to this path on exit")
	flag.Parse()

	if *metrics != "" {
		if *metrics != "table" && *metrics != "json" && *metrics != "spans" {
			fmt.Fprintf(os.Stderr, "paper: -metrics must be \"table\", \"json\" or \"spans\", got %q\n", *metrics)
			os.Exit(2)
		}
		obs.Enable()
		if *metrics == "spans" && !obs.TracingEnabled() {
			obs.EnableTracing(obs.TracerConfig{})
		}
		defer dumpMetrics(*metrics)
	}
	if *spanTrace != "" {
		obs.EnableTracing(obs.TracerConfig{})
		defer writeSpanTrace(*spanTrace)
	}

	if *distWorker {
		if err := dist.ServeWorker(os.Stdin, os.Stdout, dist.WorkerOpts{}); err != nil {
			fmt.Fprintln(os.Stderr, "paper worker:", err)
			os.Exit(1)
		}
		return
	}
	if *benchDistJSON != "" {
		if err := benchDist(*benchDistJSON, *benchEntries, 3); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		return
	}
	src := core.Source(*source)
	if *benchJSON != "" {
		if err := benchEngine(*benchJSON, src, 5); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		streamPath := *benchStreamJSON
		if streamPath == "" {
			streamPath = filepath.Join(filepath.Dir(*benchJSON), "BENCH_stream.json")
		}
		if err := benchStream(streamPath, *benchEntries); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		parallelPath := *benchParallelJSON
		if parallelPath == "" {
			parallelPath = filepath.Join(filepath.Dir(*benchJSON), "BENCH_parallel.json")
		}
		if err := benchParallel(parallelPath, src, 0, 5); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		bitslicePath := *benchBitsliceJSON
		if bitslicePath == "" {
			bitslicePath = filepath.Join(filepath.Dir(*benchJSON), "BENCH_bitslice.json")
		}
		if err := benchBitslice(bitslicePath, *benchEntries, 5); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		return
	}
	if *tracePath != "" {
		if err := evalTrace(*tracePath, *codes, *stream, *chunkLen, *parallel, *kernel); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*tableNum, src, *hwStream, *sweep, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
}

// dumpMetrics writes every non-empty registry to stderr in the chosen
// format. Errors are ignored: a metrics dump must never fail the run it
// is observing.
func dumpMetrics(format string) {
	switch format {
	case "json":
		obs.WriteAllJSON(os.Stderr)
	case "spans":
		obs.WriteSpanTable(os.Stderr, obs.Spans())
	default:
		obs.WriteAllTable(os.Stderr)
	}
}

// writeSpanTrace dumps the flight recorder as a Chrome trace-event file.
// A failed dump warns rather than failing the run it observed.
func writeSpanTrace(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paper: -spantrace:", err)
		return
	}
	werr := obs.WriteTraceEvents(f, obs.Spans())
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintln(os.Stderr, "paper: -spantrace:", werr)
	}
}

func run(tableNum int, src core.Source, hwStream int, sweep, asJSON bool) error {
	want := func(n int) bool { return tableNum == 0 || tableNum == n }

	if want(1) {
		rows, err := core.Table1(core.Width, 200000)
		if err != nil {
			return err
		}
		render := core.RenderTable1
		if asJSON {
			render = core.WriteTable1JSON
		}
		if err := render(os.Stdout, rows); err != nil {
			return err
		}
		fmt.Println()
	}

	streamTables := []struct {
		n int
		f func(core.Source) (*core.Table, error)
	}{
		{2, core.Table2}, {3, core.Table3}, {4, core.Table4},
		{5, core.Table5}, {6, core.Table6}, {7, core.Table7},
	}
	for _, st := range streamTables {
		if !want(st.n) {
			continue
		}
		tab, err := st.f(src)
		if err != nil {
			return err
		}
		render := (*core.Table).Render
		if asJSON {
			render = (*core.Table).WriteJSON
		}
		if err := render(tab, os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	if want(8) || want(9) {
		ref := core.ReferenceMuxedStream(hwStream)
		if want(8) {
			rows, err := core.Table8(ref, core.OnChipLoads)
			if err != nil {
				return err
			}
			render := core.RenderTable8
			if asJSON {
				render = core.WriteTable8JSON
			}
			if err := render(os.Stdout, rows); err != nil {
				return err
			}
			fmt.Println()
		}
		if want(9) {
			rows, err := core.Table9(ref, core.OffChipLoads)
			if err != nil {
				return err
			}
			render := core.RenderTable9
			if asJSON {
				render = core.WriteTable9JSON
			}
			if err := render(os.Stdout, rows); err != nil {
				return err
			}
			if sweep {
				if load, ok := core.Crossover(rows); ok {
					fmt.Printf("\nCrossover: dual T0_BI global power drops below T0 at %.0f pF\n", load*1e12)
				} else {
					fmt.Println("\nCrossover: not reached within the sweep")
				}
			}
			fmt.Println()
		}
	}
	return nil
}
