package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"busenc/internal/bench"
	"busenc/internal/core"
	"busenc/internal/dist"
	"busenc/internal/obs"
	"busenc/internal/trace"
)

// benchDist spawns os.Executable() with -distworker — under `go test`
// that is this test binary, so TestMain recognizes the worker argv
// shape and becomes a protocol worker instead of running tests.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "-distworker" {
		if err := dist.ServeWorker(os.Stdin, os.Stdout, dist.WorkerOpts{}); err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("run failed: %v", ferr)
	}
	return out
}

func TestRunSingleTables(t *testing.T) {
	out := captureStdout(t, func() error { return run(7, core.Synthetic, 500, false, false) })
	if !strings.Contains(out, "Table 7") || !strings.Contains(out, "dualt0bi") {
		t.Errorf("table 7 output:\n%s", out)
	}
	if strings.Contains(out, "Table 2") {
		t.Error("-table 7 printed other tables")
	}
	out = captureStdout(t, func() error { return run(9, core.Synthetic, 500, true, false) })
	if !strings.Contains(out, "Crossover") {
		t.Error("sweep summary missing")
	}
}

func TestRunJSONMode(t *testing.T) {
	out := captureStdout(t, func() error { return run(3, core.Synthetic, 500, false, true) })
	if !strings.Contains(out, `"Title"`) || !strings.Contains(out, "Table 3") {
		t.Errorf("JSON output:\n%s", out)
	}
	out = captureStdout(t, func() error { return run(8, core.Synthetic, 400, false, true) })
	if !strings.Contains(out, `"experiment": "table8"`) {
		t.Error("table 8 JSON header missing")
	}
}

func TestRunUnknownSource(t *testing.T) {
	if err := run(2, core.Source("nope"), 500, false, false); err == nil {
		t.Error("unknown source accepted")
	}
}

func writeTestTrace(t *testing.T, n int) string {
	t.Helper()
	s := core.ReferenceMuxedStream(n)
	path := filepath.Join(t.TempDir(), "trace.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteBinary(f, s); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestEvalTraceBothPaths(t *testing.T) {
	path := writeTestTrace(t, 3000)
	var outs []string
	for _, streaming := range []bool{false, true} {
		out := captureStdout(t, func() error { return evalTrace(path, "paper", streaming, 256, 0, "auto") })
		for _, code := range []string{"binary", "t0", "dualt0bi"} {
			if !strings.Contains(out, code) {
				t.Errorf("streaming=%v: code %s missing from output:\n%s", streaming, code, out)
			}
		}
		outs = append(outs, out)
	}
	// Both paths print the same transition table (only the mode line
	// differs), pinning materialized/streaming parity end to end.
	strip := func(s string) string {
		_, rest, _ := strings.Cut(s, "\n")
		return rest
	}
	if strip(outs[0]) != strip(outs[1]) {
		t.Errorf("materialized and streaming tables differ:\n%s\nvs\n%s", outs[0], outs[1])
	}
	if !strings.Contains(outs[1], "streaming evaluation") {
		t.Errorf("-stream output does not announce streaming mode:\n%s", outs[1])
	}
}

func TestEvalTraceParallel(t *testing.T) {
	path := writeTestTrace(t, 3000)
	seq := captureStdout(t, func() error { return evalTrace(path, "paper", false, 0, 0, "auto") })
	par := captureStdout(t, func() error { return evalTrace(path, "paper", false, 0, 3, "auto") })
	if !strings.Contains(par, "parallel (3 shards)") {
		t.Errorf("-parallel output does not announce parallel mode:\n%s", par)
	}
	// Identical transition table: shard-parallel pricing is exact.
	strip := func(s string) string {
		_, rest, _ := strings.Cut(s, "\n")
		return rest
	}
	if strip(seq) != strip(par) {
		t.Errorf("materialized and parallel tables differ:\n%s\nvs\n%s", seq, par)
	}
	if err := evalTrace(path, "paper", true, 0, 2, "auto"); err == nil {
		t.Error("-stream combined with -parallel accepted")
	}
}

func TestEvalTraceCustomCodes(t *testing.T) {
	path := writeTestTrace(t, 1000)
	out := captureStdout(t, func() error { return evalTrace(path, "t0,gray", true, 0, 0, "auto") })
	// binary is always prepended as the savings reference.
	for _, code := range []string{"binary", "t0", "gray"} {
		if !strings.Contains(out, code) {
			t.Errorf("code %s missing:\n%s", code, out)
		}
	}
	if strings.Contains(out, "dualt0") {
		t.Errorf("unrequested codec in output:\n%s", out)
	}
}

func TestSpanTraceExport(t *testing.T) {
	obs.EnableTracing(obs.TracerConfig{})
	defer obs.DisableTracing()
	path := writeTestTrace(t, 3000)
	captureStdout(t, func() error { return evalTrace(path, "paper", false, 0, 4, "auto") })
	out := filepath.Join(t.TempDir(), "spans.json")
	writeSpanTrace(out)

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("span trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name] = true
		}
	}
	// The parallel evaluation must leave its whole span taxonomy in the
	// file: read, per-codec roots, shard kernels and the merge.
	for _, want := range []string{"trace.read_all", "core.evaluate_parallel", "codec.run_parallel", "codec.shard", "codec.merge"} {
		if !names[want] {
			t.Errorf("span trace missing %q events (got %v)", want, names)
		}
	}
}

func TestDumpMetricsSpans(t *testing.T) {
	obs.EnableTracing(obs.TracerConfig{})
	defer obs.DisableTracing()
	path := writeTestTrace(t, 2000)
	captureStdout(t, func() error { return evalTrace(path, "t0,gray", true, 0, 0, "auto") })

	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	dumpMetrics("spans")
	w.Close()
	os.Stderr = old
	buf, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	out := string(buf)
	for _, want := range []string{"stage", "encode", "eval", "slowest chunk"} {
		if !strings.Contains(out, want) {
			t.Errorf("spans dump missing %q:\n%s", want, out)
		}
	}
}

func TestBenchStreamJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_stream.json")
	out := captureStdout(t, func() error { return benchStream(path, 20000) })
	if !strings.Contains(out, "parity=true") {
		t.Errorf("summary missing parity:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec bench.StreamRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if !rec.Parity {
		t.Error("streaming diverged from the materialized path")
	}
	if rec.MaterializedNs <= 0 || rec.StreamingNs <= 0 {
		t.Errorf("timings not recorded: %+v", rec)
	}
	if rec.MaterializedAllocBytes == 0 || rec.StreamingAllocBytes == 0 {
		t.Errorf("alloc deltas not recorded: %+v", rec)
	}
	if rec.Entries != 20000 || rec.Bench != "StreamPipeline" {
		t.Errorf("wrong identity: %+v", rec)
	}
}

func TestBenchParallelJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_parallel.json")
	out := captureStdout(t, func() error { return benchParallel(path, core.Synthetic, 0, 1) })
	if !strings.Contains(out, "parity=true") {
		t.Errorf("summary missing parity:\n%s", out)
	}
	rec, err := bench.ReadParallel(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Parity {
		t.Error("parallel sweep diverged from the serial or reference path")
	}
	if rec.ReferenceNs <= 0 || rec.SerialWarmNs <= 0 || rec.ParallelWarmNs <= 0 {
		t.Errorf("timings not recorded: %+v", rec)
	}
	if rec.Bench != "Table4Parallel" || rec.Source != "synthetic" {
		t.Errorf("wrong identity: %+v", rec)
	}
	if rec.GOMAXPROCS < 4 {
		t.Errorf("parallel sweep at gomaxprocs %d, want >= 4", rec.GOMAXPROCS)
	}
	if rec.NumCPU < 1 || len(rec.Codecs) == 0 {
		t.Errorf("environment not recorded: %+v", rec)
	}
}

func TestBenchDistJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess benchmark in -short mode")
	}
	path := filepath.Join(t.TempDir(), "BENCH_dist.json")
	out := captureStdout(t, func() error { return benchDist(path, 30000, 1) })
	if !strings.Contains(out, "parity=true") {
		t.Errorf("summary missing parity:\n%s", out)
	}
	rec, err := bench.ReadDist(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Parity {
		t.Error("distributed sweep diverged from the serial path")
	}
	if rec.SerialWarmNs <= 0 || rec.DistWarmNs <= 0 || rec.SpeedupDist <= 0 {
		t.Errorf("timings not recorded: %+v", rec)
	}
	if rec.Bench != "DistSweep" || rec.Entries != 30000 {
		t.Errorf("wrong identity: %+v", rec)
	}
	if rec.NumCPU < 1 || rec.Workers < 2 || rec.Shards < rec.Workers || len(rec.Codecs) == 0 {
		t.Errorf("environment not recorded: %+v", rec)
	}
}

func TestBenchEngineJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	out := captureStdout(t, func() error { return benchEngine(path, core.Synthetic, 1) })
	if !strings.Contains(out, "parity=true") {
		t.Errorf("summary missing parity:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec bench.EngineRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if !rec.Parity {
		t.Error("engine diverged from the reference path")
	}
	if rec.ReferenceNs <= 0 || rec.EngineColdNs <= 0 || rec.EngineWarmNs <= 0 {
		t.Errorf("timings not recorded: %+v", rec)
	}
	if rec.Bench != "Table4" || rec.Source != "synthetic" {
		t.Errorf("wrong identity: %+v", rec)
	}
	if rec.GOMAXPROCS != 1 {
		t.Errorf("serial record at gomaxprocs %d, want 1", rec.GOMAXPROCS)
	}
	if rec.Parallel.GOMAXPROCS < 1 || rec.Parallel.EngineWarmNs <= 0 {
		t.Errorf("parallel run not recorded: %+v", rec.Parallel)
	}
}
