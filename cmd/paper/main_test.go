package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"busenc/internal/core"
)

func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatalf("run failed: %v", ferr)
	}
	return out
}

func TestRunSingleTables(t *testing.T) {
	out := captureStdout(t, func() error { return run(7, core.Synthetic, 500, false, false) })
	if !strings.Contains(out, "Table 7") || !strings.Contains(out, "dualt0bi") {
		t.Errorf("table 7 output:\n%s", out)
	}
	if strings.Contains(out, "Table 2") {
		t.Error("-table 7 printed other tables")
	}
	out = captureStdout(t, func() error { return run(9, core.Synthetic, 500, true, false) })
	if !strings.Contains(out, "Crossover") {
		t.Error("sweep summary missing")
	}
}

func TestRunJSONMode(t *testing.T) {
	out := captureStdout(t, func() error { return run(3, core.Synthetic, 500, false, true) })
	if !strings.Contains(out, `"Title"`) || !strings.Contains(out, "Table 3") {
		t.Errorf("JSON output:\n%s", out)
	}
	out = captureStdout(t, func() error { return run(8, core.Synthetic, 400, false, true) })
	if !strings.Contains(out, `"experiment": "table8"`) {
		t.Error("table 8 JSON header missing")
	}
}

func TestRunUnknownSource(t *testing.T) {
	if err := run(2, core.Source("nope"), 500, false, false); err == nil {
		t.Error("unknown source accepted")
	}
}

func TestBenchEngineJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	out := captureStdout(t, func() error { return benchEngine(path, core.Synthetic, 1) })
	if !strings.Contains(out, "parity=true") {
		t.Errorf("summary missing parity:\n%s", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec engineBench
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if !rec.Parity {
		t.Error("engine diverged from the reference path")
	}
	if rec.ReferenceNs <= 0 || rec.EngineColdNs <= 0 || rec.EngineWarmNs <= 0 {
		t.Errorf("timings not recorded: %+v", rec)
	}
	if rec.Bench != "Table4" || rec.Source != "synthetic" {
		t.Errorf("wrong identity: %+v", rec)
	}
}
