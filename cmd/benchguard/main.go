// Command benchguard compares freshly generated benchmark records
// (BENCH_engine.json, BENCH_stream.json) against the committed
// baselines and exits non-zero when a tolerance band is broken. It is
// the CI benchmark-regression gate:
//
//	paper -benchjson .bench-fresh/BENCH_engine.json \
//	      -benchstream .bench-fresh/BENCH_stream.json
//	benchguard -baseline . -fresh .bench-fresh
//
// Because records carry machine-relative ratios (speedups, alloc
// ratios) with a same-machine reference measurement inside, the guard
// is meaningful even when the baseline was committed on different
// hardware than the CI runner.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"busenc/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus os.Exit, for testability.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseline := fs.String("baseline", ".", "directory holding the committed BENCH_engine.json and BENCH_stream.json")
	fresh := fs.String("fresh", "", "directory holding the freshly generated records (required)")
	slowdown := fs.Float64("tolerance", bench.DefaultTolerance().Slowdown, "allowed fractional speedup drop (0.25 = fresh may fall to 75% of committed)")
	allocCollapse := fs.Float64("alloc-collapse", bench.DefaultTolerance().AllocCollapse, "factor by which the streaming alloc ratio may shrink before failing")
	bitsliceFloor := fs.Float64("bitslice-floor", bench.DefaultTolerance().BitsliceFloor, "absolute minimum scalar/plane speedup the fresh bitslice record must report (0 disables)")
	distFloor := fs.Float64("dist-floor", bench.DefaultTolerance().DistFloor, "absolute minimum distributed-sweep speedup on boxes with >= 4 CPUs (0 disables; smaller boxes skip it loudly)")
	tcpFloor := fs.Float64("tcp-floor", bench.DefaultTolerance().TCPPipelineFloor, "absolute minimum pipelined-over-lockstep speedup for the networked sweep on boxes with >= 2 CPUs and >= 2 peers (0 disables; otherwise skipped loudly)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *fresh == "" {
		fmt.Fprintln(stderr, "benchguard: -fresh directory is required")
		fs.Usage()
		return 2
	}
	tol := bench.Tolerance{Slowdown: *slowdown, AllocCollapse: *allocCollapse, BitsliceFloor: *bitsliceFloor, DistFloor: *distFloor, TCPPipelineFloor: *tcpFloor}
	violations, notes := bench.GuardNotes(*baseline, *fresh, tol)
	for _, n := range notes {
		fmt.Fprintf(stdout, "benchguard: note: %s\n", n)
	}
	if len(violations) == 0 {
		fmt.Fprintf(stdout, "benchguard: ok (%s vs %s, tolerance %.0f%% slowdown, %.1fx alloc collapse, %.1fx bitslice floor, %.1fx dist floor, %.1fx tcp floor)\n",
			*fresh, *baseline, tol.Slowdown*100, tol.AllocCollapse, tol.BitsliceFloor, tol.DistFloor, tol.TCPPipelineFloor)
		return 0
	}
	fmt.Fprintf(stderr, "benchguard: %d violation(s):\n", len(violations))
	for _, v := range violations {
		fmt.Fprintf(stderr, "  %s\n", v)
	}
	return 1
}
