package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"busenc/internal/bench"
)

func goodEngine() bench.EngineRecord {
	return bench.EngineRecord{
		Bench: bench.EngineBenchName, Source: "synthetic", GOMAXPROCS: 1,
		ReferenceNs: 1_000_000_000, EngineColdNs: 200_000_000, EngineWarmNs: 50_000_000,
		WarmIters: 5, SpeedupCold: 5, SpeedupWarm: 20, Parity: true,
		Parallel: bench.ParallelRecord{GOMAXPROCS: 8, EngineWarmNs: 20_000_000, SpeedupWarm: 50, SpeedupVsSerial: 2.5},
	}
}

func goodStream() bench.StreamRecord {
	return bench.StreamRecord{
		Bench: bench.StreamBenchName, Entries: 1 << 20, FileBytes: 9 << 20,
		ChunkLen: 4096, Depth: 4, GOMAXPROCS: 8, Codecs: []string{"binary"},
		MaterializedNs: 800_000_000, MaterializedAllocBytes: 1 << 30,
		StreamingNs: 500_000_000, StreamingAllocBytes: 1 << 25,
		SpeedupStreaming: 1.6, AllocRatio: 32, Parity: true,
	}
}

func goodParallel() bench.ParallelEngineRecord {
	return bench.ParallelEngineRecord{
		Bench: bench.ParallelBenchName, Source: "synthetic", NumCPU: 8, GOMAXPROCS: 8,
		Codecs: []string{"binary", "t0", "businvert"}, WarmIters: 5,
		ReferenceNs: 1_000_000_000, SerialWarmNs: 50_000_000, ParallelWarmNs: 20_000_000,
		SpeedupParallel: 2.5, SpeedupVsReference: 50, Parity: true,
	}
}

func goodBitslice() bench.BitsliceRecord {
	return bench.BitsliceRecord{
		Bench: bench.BitsliceBenchName, Entries: 1 << 20, ChunkLen: 4096,
		NumCPU: 8, GOMAXPROCS: 1, Codecs: []string{"binary", "gray", "offset", "incxor"},
		PerLine: true, WarmIters: 5, ScalarNs: 60_000_000, PlaneNs: 10_000_000,
		SpeedupBitslice: 6, Parity: true,
	}
}

func goodDist() bench.DistRecord {
	return bench.DistRecord{
		Bench: bench.DistBenchName, Entries: 1 << 18, NumCPU: 8, GOMAXPROCS: 8,
		Workers: 3, Shards: 12, Codecs: []string{"binary", "gray", "t0"}, WarmIters: 3,
		SerialWarmNs: 90_000_000, DistWarmNs: 45_000_000, SpeedupDist: 2, Parity: true,
		TCP: &bench.DistTCPRecord{
			Peers: 2, Window: 4, Shards: 48, Entries: 1 << 18,
			PipelinedNs: 50_000_000, InFlight1Ns: 80_000_000, SpeedupPipelined: 1.6, Parity: true,
			TraceShipBytes: 2_200_000, DedupReshipBytes: 0, DedupHits: 2,
		},
	}
}

func goodServe() bench.ServeRecord {
	return bench.ServeRecord{
		Bench: bench.ServeBenchName, NumCPU: 8, GoVersion: "go1.22.1", GOMAXPROCS: 8,
		Tenants: 32, Workers: 4, QueueCap: 8, DurationNs: 5_000_000_000,
		JobsDone: 400, SyncEvals: 120, Uploads: 40, CacheHits: 90, QueueFull503: 3,
		P50Ns: 4_000_000, P95Ns: 20_000_000, P99Ns: 45_000_000,
		ThroughputJPS: 104, Parity: true,
	}
}

func writeDir(t *testing.T, eng bench.EngineRecord, str bench.StreamRecord) string {
	t.Helper()
	dir := t.TempDir()
	if err := bench.WriteRecord(filepath.Join(dir, "BENCH_engine.json"), eng); err != nil {
		t.Fatal(err)
	}
	if err := bench.WriteRecord(filepath.Join(dir, "BENCH_stream.json"), str); err != nil {
		t.Fatal(err)
	}
	if err := bench.WriteRecord(filepath.Join(dir, "BENCH_parallel.json"), goodParallel()); err != nil {
		t.Fatal(err)
	}
	if err := bench.WriteRecord(filepath.Join(dir, "BENCH_bitslice.json"), goodBitslice()); err != nil {
		t.Fatal(err)
	}
	if err := bench.WriteRecord(filepath.Join(dir, "BENCH_dist.json"), goodDist()); err != nil {
		t.Fatal(err)
	}
	if err := bench.WriteRecord(filepath.Join(dir, "BENCH_serve.json"), goodServe()); err != nil {
		t.Fatal(err)
	}
	return dir
}

func runGuard(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestCLIPassesOnIdenticalRecords(t *testing.T) {
	dir := writeDir(t, goodEngine(), goodStream())
	code, out, errOut := runGuard(t, "-baseline", dir, "-fresh", dir)
	if code != 0 {
		t.Fatalf("exit %d on identical records; stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "benchguard: ok") {
		t.Errorf("pass summary missing:\n%s", out)
	}
}

func TestCLIFailsOnSlowdown(t *testing.T) {
	base := writeDir(t, goodEngine(), goodStream())
	slow := goodEngine()
	slow.EngineWarmNs *= 2
	slow.SpeedupWarm /= 2
	fresh := writeDir(t, slow, goodStream())
	code, _, errOut := runGuard(t, "-baseline", base, "-fresh", fresh)
	if code != 1 {
		t.Fatalf("exit %d on 2x slowdown, want 1; stderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "speedup_warm") {
		t.Errorf("violation not named:\n%s", errOut)
	}
}

func TestCLIViolationFormatting(t *testing.T) {
	base := writeDir(t, goodEngine(), goodStream())
	slow := goodEngine()
	slow.SpeedupWarm = 7.123456 // 20 committed -> fails the 25% band
	collapsed := goodStream()
	collapsed.StreamingAllocBytes = collapsed.MaterializedAllocBytes
	collapsed.AllocRatio = 1 // 32 committed -> collapses past the 2x band
	fresh := writeDir(t, slow, collapsed)
	code, _, errOut := runGuard(t, "-baseline", base, "-fresh", fresh)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, errOut)
	}
	// Every violation line names its record and prints fixed 3-decimal
	// numbers (no %g scientific or truncated forms).
	var lines []string
	for _, line := range strings.Split(errOut, "\n") {
		if strings.HasPrefix(line, "  ") {
			lines = append(lines, line)
		}
	}
	if len(lines) < 2 {
		t.Fatalf("want at least 2 violation lines, got %d:\n%s", len(lines), errOut)
	}
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "engine:") && !strings.HasPrefix(trimmed, "stream:") &&
			!strings.HasPrefix(trimmed, "parallel:") && !strings.HasPrefix(trimmed, "bitslice:") {
			t.Errorf("violation line does not lead with its record name: %q", line)
		}
	}
	for _, want := range []string{
		"(committed 20.000, fresh 7.123)", // speedup_warm, 3 decimals fixed
		"(floor 15.000)",                  // speedup floor
		"(committed 32.000, fresh 1.000)", // alloc_ratio
		"more than 2.000x",                // collapse factor
	} {
		if !strings.Contains(errOut, want) {
			t.Errorf("stderr missing %q:\n%s", want, errOut)
		}
	}
}

func TestCLITighterTolerance(t *testing.T) {
	base := writeDir(t, goodEngine(), goodStream())
	slight := goodEngine()
	slight.SpeedupWarm *= 0.9 // 10% drop: inside the default 25% band
	fresh := writeDir(t, slight, goodStream())
	if code, _, errOut := runGuard(t, "-baseline", base, "-fresh", fresh); code != 0 {
		t.Fatalf("10%% drop failed the default band (exit %d):\n%s", code, errOut)
	}
	if code, _, _ := runGuard(t, "-baseline", base, "-fresh", fresh, "-tolerance", "0.05"); code != 1 {
		t.Error("10% drop passed a 5% band")
	}
}

func TestCLIBitsliceFloor(t *testing.T) {
	base := writeDir(t, goodEngine(), goodStream())
	slow := goodBitslice()
	slow.ScalarNs = 45_000_000
	slow.SpeedupBitslice = 4.5 // below the default 5x absolute floor
	fresh := writeDir(t, goodEngine(), goodStream())
	if err := bench.WriteRecord(filepath.Join(fresh, "BENCH_bitslice.json"), slow); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runGuard(t, "-baseline", base, "-fresh", fresh)
	if code != 1 {
		t.Fatalf("exit %d with 4.5x bitslice speedup, want 1; stderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "speedup_bitslice") || !strings.Contains(errOut, "floor") {
		t.Errorf("floor violation not named:\n%s", errOut)
	}
	if code, _, errOut := runGuard(t, "-baseline", base, "-fresh", fresh, "-bitslice-floor", "4", "-tolerance", "0.3"); code != 0 {
		t.Errorf("4.5x failed a lowered 4x floor (exit %d):\n%s", code, errOut)
	}
}

func TestCLIDistFloor(t *testing.T) {
	base := writeDir(t, goodEngine(), goodStream())
	slow := goodDist()
	slow.DistWarmNs = 80_000_000
	slow.SpeedupDist = 1.125 // below the default 1.3x floor on an 8-CPU box
	fresh := writeDir(t, goodEngine(), goodStream())
	if err := bench.WriteRecord(filepath.Join(fresh, "BENCH_dist.json"), slow); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runGuard(t, "-baseline", base, "-fresh", fresh)
	if code != 1 {
		t.Fatalf("exit %d with 1.125x dist speedup, want 1; stderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "speedup_dist") || !strings.Contains(errOut, "floor") {
		t.Errorf("dist floor violation not named:\n%s", errOut)
	}
	if code, _, errOut := runGuard(t, "-baseline", base, "-fresh", fresh, "-dist-floor", "1.1", "-tolerance", "0.5"); code != 0 {
		t.Errorf("1.125x failed a lowered 1.1x floor (exit %d):\n%s", code, errOut)
	}
}

// TestCLITCPFloor: the networked sub-record's pipelining floor and
// dedup invariant bind through the CLI, and -tcp-floor lowers the bar.
func TestCLITCPFloor(t *testing.T) {
	base := writeDir(t, goodEngine(), goodStream())
	slow := goodDist()
	slow.TCP.PipelinedNs = slow.TCP.InFlight1Ns
	slow.TCP.SpeedupPipelined = 1.05 // below the default 1.2x floor on an 8-CPU box
	fresh := writeDir(t, goodEngine(), goodStream())
	if err := bench.WriteRecord(filepath.Join(fresh, "BENCH_dist.json"), slow); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runGuard(t, "-baseline", base, "-fresh", fresh)
	if code != 1 {
		t.Fatalf("exit %d with 1.05x pipelining gain, want 1; stderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "tcp.speedup_pipelined") || !strings.Contains(errOut, "floor") {
		t.Errorf("tcp floor violation not named:\n%s", errOut)
	}
	if code, _, errOut := runGuard(t, "-baseline", base, "-fresh", fresh, "-tcp-floor", "1.0", "-tolerance", "0.5"); code != 0 {
		t.Errorf("1.05x failed a lowered 1.0x floor (exit %d):\n%s", code, errOut)
	}

	// Broken dedup (a re-sweep that shipped bytes) fails even when fast.
	leak := goodDist()
	leak.TCP.DedupReshipBytes = 4096
	if err := bench.WriteRecord(filepath.Join(fresh, "BENCH_dist.json"), leak); err != nil {
		t.Fatal(err)
	}
	code, _, errOut = runGuard(t, "-baseline", base, "-fresh", fresh)
	if code != 1 || !strings.Contains(errOut, "tcp.dedup_reship_bytes") {
		t.Errorf("dedup re-ship not flagged (exit %d):\n%s", code, errOut)
	}
}

// TestCLIServeInvariants: a fresh serve record that lost jobs across
// the drain, or lost parity, fails regardless of throughput.
func TestCLIServeInvariants(t *testing.T) {
	base := writeDir(t, goodEngine(), goodStream())
	lost := goodServe()
	lost.LostJobs = 1
	lost.Parity = false
	lost.ThroughputJPS *= 2 // faster, and still must fail
	fresh := writeDir(t, goodEngine(), goodStream())
	if err := bench.WriteRecord(filepath.Join(fresh, "BENCH_serve.json"), lost); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runGuard(t, "-baseline", base, "-fresh", fresh)
	if code != 1 {
		t.Fatalf("exit %d with lost jobs, want 1; stderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "lost_jobs") || !strings.Contains(errOut, "parity") {
		t.Errorf("serve invariant violations not named:\n%s", errOut)
	}

	// A cross-machine throughput drop is a loud skip, not a failure.
	cross := goodServe()
	cross.NumCPU = 2
	cross.ThroughputJPS = 1
	if err := bench.WriteRecord(filepath.Join(fresh, "BENCH_serve.json"), cross); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runGuard(t, "-baseline", base, "-fresh", fresh)
	if code != 0 {
		t.Fatalf("exit %d on a cross-machine serve record, want 0; stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "throughput_jps band skipped") {
		t.Errorf("serve skip note missing from stdout:\n%s", out)
	}
}

// TestCLISkipNotesOnOneCPUBox: records measured on a 1-CPU box pass the
// guard, but the skipped speedup bands are announced on stdout — the
// skip is loud, never silent.
func TestCLISkipNotesOnOneCPUBox(t *testing.T) {
	onecpu := func(dir string) {
		par := goodParallel()
		par.NumCPU = 1
		par.SpeedupParallel = 0.9 // no scaling to show on one core
		if err := bench.WriteRecord(filepath.Join(dir, "BENCH_parallel.json"), par); err != nil {
			t.Fatal(err)
		}
		dst := goodDist()
		dst.NumCPU = 1
		dst.SpeedupDist = 0.8
		if err := bench.WriteRecord(filepath.Join(dir, "BENCH_dist.json"), dst); err != nil {
			t.Fatal(err)
		}
	}
	base := writeDir(t, goodEngine(), goodStream())
	onecpu(base)
	fresh := writeDir(t, goodEngine(), goodStream())
	onecpu(fresh)
	code, out, errOut := runGuard(t, "-baseline", base, "-fresh", fresh)
	if code != 0 {
		t.Fatalf("exit %d on a 1-CPU record set, want 0; stderr:\n%s", code, errOut)
	}
	if !strings.Contains(out, "speedup_parallel enforcement skipped: num_cpu=1") {
		t.Errorf("parallel skip note missing from stdout:\n%s", out)
	}
	if !strings.Contains(out, "speedup_dist floor skipped: num_cpu=1") {
		t.Errorf("dist skip note missing from stdout:\n%s", out)
	}
	if !strings.Contains(out, "benchguard: ok") {
		t.Errorf("pass summary missing:\n%s", out)
	}
}

func TestCLIUsageErrors(t *testing.T) {
	if code, _, errOut := runGuard(t); code != 2 || !strings.Contains(errOut, "-fresh") {
		t.Errorf("missing -fresh: exit %d, stderr:\n%s", code, errOut)
	}
	if code, _, _ := runGuard(t, "-bogus"); code != 2 {
		t.Errorf("bad flag accepted (exit %d)", code)
	}
}

func TestCLIMissingFreshFiles(t *testing.T) {
	base := writeDir(t, goodEngine(), goodStream())
	empty := t.TempDir()
	code, _, errOut := runGuard(t, "-baseline", base, "-fresh", empty)
	if code != 1 {
		t.Fatalf("exit %d with empty fresh dir, want 1", code)
	}
	if !strings.Contains(errOut, "6 violation") {
		t.Errorf("want one violation per missing record:\n%s", errOut)
	}
	// The committed repo records must pass against themselves.
	repoDir, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(repoDir, "BENCH_engine.json")); err != nil {
		t.Skip("committed records not present")
	}
	if code, _, errOut := runGuard(t, "-baseline", repoDir, "-fresh", repoDir); code != 0 {
		t.Errorf("committed records fail against themselves (exit %d):\n%s", code, errOut)
	}
}
