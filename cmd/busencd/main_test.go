package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"busenc/internal/core"
	"busenc/internal/obs"
	"busenc/internal/trace"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func writeServerTrace(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteBinary(f, core.ReferenceMuxedStream(n)); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestServerEndpoints(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	srv := httptest.NewServer(newMux(false))
	defer srv.Close()

	if code, body := get(t, srv, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: %d %q", code, body)
	}

	// Evaluate a real trace through the fan-out.
	path := writeServerTrace(t, 2000)
	code, body := get(t, srv, "/eval?trace="+path+"&codes=t0,gray&chunklen=256")
	if code != 200 {
		t.Fatalf("/eval: %d %s", code, body)
	}
	var resp evalResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("/eval returned invalid JSON: %v\n%s", err, body)
	}
	if resp.Entries != 2000 {
		t.Errorf("entries = %d, want 2000", resp.Entries)
	}
	want := []string{"binary", "t0", "gray"}
	if len(resp.Results) != len(want) {
		t.Fatalf("results = %+v, want codes %v", resp.Results, want)
	}
	for i, code := range want {
		if resp.Results[i].Codec != code {
			t.Errorf("results[%d] = %s, want %s", i, resp.Results[i].Codec, code)
		}
		if resp.Results[i].Transitions <= 0 {
			t.Errorf("%s: no transitions counted", code)
		}
	}

	// The same trace through the shard-parallel path: identical totals,
	// and the parallel gauges show up in the metrics dump.
	code, body = get(t, srv, "/eval?trace="+path+"&codes=t0,gray&parallel=2")
	if code != 200 {
		t.Fatalf("/eval?parallel=2: %d %s", code, body)
	}
	var presp evalResponse
	if err := json.Unmarshal([]byte(body), &presp); err != nil {
		t.Fatalf("/eval?parallel=2 returned invalid JSON: %v\n%s", err, body)
	}
	if presp.Entries != resp.Entries || len(presp.Results) != len(resp.Results) {
		t.Fatalf("parallel eval shape differs: %+v vs %+v", presp, resp)
	}
	for i := range resp.Results {
		if presp.Results[i].Codec != resp.Results[i].Codec ||
			presp.Results[i].Transitions != resp.Results[i].Transitions {
			t.Errorf("parallel results[%d] = %+v, want %+v", i, presp.Results[i], resp.Results[i])
		}
	}
	if code, body := get(t, srv, "/metrics"); code != 200 ||
		!strings.Contains(body, "codec.parallel.shards") {
		t.Errorf("/metrics after parallel eval missing shard gauge: %d\n%s", code, body)
	}

	// The evaluation's traffic must now show up in the metrics dump.
	if code, body := get(t, srv, "/metrics"); code != 200 ||
		!strings.Contains(body, "trace.chunks_read") {
		t.Errorf("/metrics: %d\n%s", code, body)
	}
	if code, body := get(t, srv, "/metrics?format=table"); code != 200 ||
		!strings.Contains(body, "core.fanout.blocks_broadcast") {
		t.Errorf("/metrics?format=table: %d\n%s", code, body)
	}
	if code, _ := get(t, srv, "/metrics?format=xml"); code != 400 {
		t.Errorf("bad format accepted: %d", code)
	}

	// expvar carries the published registries.
	if code, body := get(t, srv, "/debug/vars"); code != 200 ||
		!strings.Contains(body, "busenc.default") {
		t.Errorf("/debug/vars: %d\n%s", code, body)
	}
}

func TestServerEvalErrors(t *testing.T) {
	srv := httptest.NewServer(newMux(false))
	defer srv.Close()
	if code, _ := get(t, srv, "/eval"); code != 400 {
		t.Errorf("missing trace param: %d, want 400", code)
	}
	if code, _ := get(t, srv, "/eval?trace=/no/such/file.bin"); code != 404 {
		t.Errorf("missing file: %d, want 404", code)
	}
	path := writeServerTrace(t, 100)
	if code, _ := get(t, srv, "/eval?trace="+path+"&chunklen=nope"); code != 400 {
		t.Errorf("bad chunklen: %d, want 400", code)
	}
	if code, _ := get(t, srv, "/eval?trace="+path+"&codes=bogus"); code != 422 {
		t.Errorf("unknown codec: %d, want 422", code)
	}
	if code, _ := get(t, srv, "/eval?trace="+path+"&parallel=-1"); code != 400 {
		t.Errorf("bad parallel: %d, want 400", code)
	}
	if code, _ := get(t, srv, "/eval?trace="+path+"&parallel=2&codes=bogus"); code != 422 {
		t.Errorf("unknown codec on parallel path: %d, want 422", code)
	}
}

func TestServerPprofGate(t *testing.T) {
	plain := httptest.NewServer(newMux(false))
	defer plain.Close()
	if code, _ := get(t, plain, "/debug/pprof/"); code == 200 {
		t.Error("pprof exposed without -pprof")
	}
	prof := httptest.NewServer(newMux(true))
	defer prof.Close()
	if code, body := get(t, prof, "/debug/pprof/"); code != 200 ||
		!strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: %d\n%s", code, body)
	}
}
