package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"busenc/internal/core"
	"busenc/internal/obs"
	"busenc/internal/serve"
	"busenc/internal/trace"
)

// newTestMux builds the daemon handler tree over a fresh serve.Server
// (temp store, started workers) for httptest use.
func newTestMux(t *testing.T, withPprof bool) *http.ServeMux {
	t.Helper()
	srv, err := serve.New(serve.Config{StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() { srv.Drain(5 * time.Second) })
	return newMux(withPprof, srv)
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func writeServerTrace(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteBinary(f, core.ReferenceMuxedStream(n)); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestServerEndpoints(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	srv := httptest.NewServer(newTestMux(t, false))
	defer srv.Close()

	if code, body := get(t, srv, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: %d %q", code, body)
	}

	// Evaluate a real trace through the fan-out.
	path := writeServerTrace(t, 2000)
	code, body := get(t, srv, "/eval?trace="+path+"&codes=t0,gray&chunklen=256")
	if code != 200 {
		t.Fatalf("/eval: %d %s", code, body)
	}
	var resp serve.EvalResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("/eval returned invalid JSON: %v\n%s", err, body)
	}
	if resp.Entries != 2000 {
		t.Errorf("entries = %d, want 2000", resp.Entries)
	}
	want := []string{"binary", "t0", "gray"}
	if len(resp.Results) != len(want) {
		t.Fatalf("results = %+v, want codes %v", resp.Results, want)
	}
	for i, code := range want {
		if resp.Results[i].Codec != code {
			t.Errorf("results[%d] = %s, want %s", i, resp.Results[i].Codec, code)
		}
		if resp.Results[i].Transitions <= 0 {
			t.Errorf("%s: no transitions counted", code)
		}
	}

	// The same trace through the shard-parallel path: identical totals,
	// and the parallel gauges show up in the metrics dump.
	code, body = get(t, srv, "/eval?trace="+path+"&codes=t0,gray&parallel=2")
	if code != 200 {
		t.Fatalf("/eval?parallel=2: %d %s", code, body)
	}
	var presp serve.EvalResponse
	if err := json.Unmarshal([]byte(body), &presp); err != nil {
		t.Fatalf("/eval?parallel=2 returned invalid JSON: %v\n%s", err, body)
	}
	if presp.Entries != resp.Entries || len(presp.Results) != len(resp.Results) {
		t.Fatalf("parallel eval shape differs: %+v vs %+v", presp, resp)
	}
	for i := range resp.Results {
		if presp.Results[i].Codec != resp.Results[i].Codec ||
			presp.Results[i].Transitions != resp.Results[i].Transitions {
			t.Errorf("parallel results[%d] = %+v, want %+v", i, presp.Results[i], resp.Results[i])
		}
	}
	if code, body := get(t, srv, "/metrics"); code != 200 ||
		!strings.Contains(body, "codec.parallel.shards") {
		t.Errorf("/metrics after parallel eval missing shard gauge: %d\n%s", code, body)
	}

	// The evaluation's traffic must now show up in the metrics dump.
	if code, body := get(t, srv, "/metrics"); code != 200 ||
		!strings.Contains(body, "trace.chunks_read") {
		t.Errorf("/metrics: %d\n%s", code, body)
	}
	if code, body := get(t, srv, "/metrics?format=table"); code != 200 ||
		!strings.Contains(body, "core.fanout.blocks_broadcast") {
		t.Errorf("/metrics?format=table: %d\n%s", code, body)
	}
	if code, _ := get(t, srv, "/metrics?format=xml"); code != 400 {
		t.Errorf("bad format accepted: %d", code)
	}

	// expvar carries the published registries.
	if code, body := get(t, srv, "/debug/vars"); code != 200 ||
		!strings.Contains(body, "busenc.default") {
		t.Errorf("/debug/vars: %d\n%s", code, body)
	}
}

// decodeErrEnvelope asserts a response body is the JSON error envelope
// and that its status field echoes the HTTP status.
func decodeErrEnvelope(t *testing.T, label, body string, wantStatus int) {
	t.Helper()
	var env struct {
		Error  string `json:"error"`
		Status int    `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Errorf("%s: body is not a JSON envelope: %v\n%s", label, err, body)
		return
	}
	if env.Error == "" {
		t.Errorf("%s: envelope has empty error: %s", label, body)
	}
	if env.Status != wantStatus {
		t.Errorf("%s: envelope status = %d, want %d", label, env.Status, wantStatus)
	}
}

func TestServerEvalErrors(t *testing.T) {
	srv := httptest.NewServer(newTestMux(t, false))
	defer srv.Close()
	path := writeServerTrace(t, 100)
	cases := []struct {
		name, url string
		want      int
	}{
		{"missing trace param", "/eval", 400},
		{"missing file", "/eval?trace=/no/such/file.bin", 404},
		{"bad chunklen", "/eval?trace=" + path + "&chunklen=nope", 400},
		{"zero chunklen", "/eval?trace=" + path + "&chunklen=0", 400},
		{"unknown codec", "/eval?trace=" + path + "&codes=bogus", 422},
		{"bad parallel", "/eval?trace=" + path + "&parallel=-1", 400},
		{"non-numeric parallel", "/eval?trace=" + path + "&parallel=two", 400},
		{"unknown codec on parallel path", "/eval?trace=" + path + "&parallel=2&codes=bogus", 422},
	}
	for _, tc := range cases {
		code, body := get(t, srv, tc.url)
		if code != tc.want {
			t.Errorf("%s: %d, want %d", tc.name, code, tc.want)
			continue
		}
		decodeErrEnvelope(t, tc.name, body, tc.want)
	}
}

func TestServerSpansAndPrometheus(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	obs.EnableTracing(obs.TracerConfig{})
	defer obs.DisableTracing()
	srv := httptest.NewServer(newTestMux(t, false))
	defer srv.Close()

	// Drive one eval so the flight recorder and histograms have content.
	path := writeServerTrace(t, 2000)
	if code, body := get(t, srv, "/eval?trace="+path+"&codes=t0,gray"); code != 200 {
		t.Fatalf("/eval: %d %s", code, body)
	}

	code, body := get(t, srv, "/spans")
	if code != 200 {
		t.Fatalf("/spans: %d %s", code, body)
	}
	var sresp serve.SpansResponse
	if err := json.Unmarshal([]byte(body), &sresp); err != nil {
		t.Fatalf("/spans returned invalid JSON: %v\n%s", err, body)
	}
	if !sresp.Enabled || sresp.Count == 0 || len(sresp.Spans) != sresp.Count {
		t.Fatalf("/spans = enabled=%v count=%d len=%d", sresp.Enabled, sresp.Count, len(sresp.Spans))
	}
	// The export identifies its recorder: pid, host and tracer epoch are
	// what a sweep coordinator uses to place this peer's lane on its own
	// timebase.
	if sresp.PID != os.Getpid() || sresp.Epoch == 0 {
		t.Errorf("/spans recorder identity = pid %d epoch %d", sresp.PID, sresp.Epoch)
	}
	stages := map[string]bool{}
	for _, s := range sresp.Spans {
		stages[s.Stage] = true
	}
	for _, stage := range []string{obs.StageRead, obs.StageEncode, obs.StageEval} {
		if !stages[stage] {
			t.Errorf("/spans missing stage %q (got %v)", stage, stages)
		}
	}

	// Stage and codec filters narrow the set.
	code, body = get(t, srv, "/spans?stage=encode&codec=t0")
	if code != 200 {
		t.Fatalf("/spans?stage=encode&codec=t0: %d %s", code, body)
	}
	var fresp serve.SpansResponse
	if err := json.Unmarshal([]byte(body), &fresp); err != nil {
		t.Fatalf("filtered /spans invalid JSON: %v", err)
	}
	if fresp.Count == 0 {
		t.Error("filtered /spans returned no encode/t0 spans")
	}
	for _, s := range fresp.Spans {
		if s.Stage != "encode" || s.Codec != "t0" {
			t.Errorf("filter leak: stage=%q codec=%q", s.Stage, s.Codec)
		}
	}

	// Prometheus exposition carries typed busenc_ metrics, with the
	// labeled per-tenant SLO series appended (the /eval above ran as the
	// "anon" tenant through the timed /eval route).
	code, body = get(t, srv, "/metrics?format=prometheus")
	if code != 200 {
		t.Fatalf("/metrics?format=prometheus: %d %s", code, body)
	}
	for _, want := range []string{
		"# TYPE busenc_", "busenc_default_trace_chunks_read", "_bucket{le=\"+Inf\"}",
		"# TYPE busenc_serve_slo_latency_ns histogram",
		`busenc_serve_slo_latency_ns_count{route="/eval",tenant="anon"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus exposition missing %q:\n%s", want, body)
		}
	}

	// The JSON SLO summary reports the same traffic.
	code, body = get(t, srv, "/slo")
	if code != 200 {
		t.Fatalf("/slo: %d %s", code, body)
	}
	var slo serve.SLOSnapshot
	if err := json.Unmarshal([]byte(body), &slo); err != nil {
		t.Fatalf("/slo returned invalid JSON: %v\n%s", err, body)
	}
	found := false
	for _, req := range slo.Requests {
		if req.Tenant == "anon" && req.Route == "/eval" && req.Count > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("/slo missing the anon /eval series: %+v", slo.Requests)
	}
}

func TestServerPprofGate(t *testing.T) {
	plain := httptest.NewServer(newTestMux(t, false))
	defer plain.Close()
	if code, _ := get(t, plain, "/debug/pprof/"); code == 200 {
		t.Error("pprof exposed without -pprof")
	}
	prof := httptest.NewServer(newTestMux(t, true))
	defer prof.Close()
	if code, body := get(t, prof, "/debug/pprof/"); code != 200 ||
		!strings.Contains(body, "goroutine") {
		t.Errorf("pprof index: %d\n%s", code, body)
	}
}

// TestServerServiceRoundTrip drives the daemon's service surface:
// streamed upload, async enqueue, long-poll to completion, cache hit on
// the synchronous repeat.
func TestServerServiceRoundTrip(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	srv := httptest.NewServer(newTestMux(t, false))
	defer srv.Close()

	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, core.ReferenceMuxedStream(500)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/traces", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 201 {
		t.Fatalf("upload: %d %s", resp.StatusCode, body)
	}
	var meta serve.TraceMeta
	if err := json.Unmarshal(body, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Entries != 500 {
		t.Fatalf("uploaded meta = %+v", meta)
	}

	code, body2 := get(t, srv, "/eval?trace="+meta.Digest+"&codes=t0&mode=async")
	if code != 202 {
		t.Fatalf("async eval: %d %s", code, body2)
	}
	var enq struct {
		ID       string `json:"id"`
		Location string `json:"location"`
	}
	if err := json.Unmarshal([]byte(body2), &enq); err != nil {
		t.Fatal(err)
	}
	code, body2 = get(t, srv, enq.Location+"?wait=5s")
	if code != 200 {
		t.Fatalf("job poll: %d %s", code, body2)
	}
	var snap serve.Snapshot
	if err := json.Unmarshal([]byte(body2), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.State != serve.JobDone || len(snap.Results) != 2 {
		t.Fatalf("job = %+v, want done with binary+t0", snap)
	}

	// Same key synchronously: served from the result cache.
	code, body2 = get(t, srv, "/eval?trace="+meta.Digest+"&codes=t0")
	if code != 200 {
		t.Fatalf("sync repeat: %d %s", code, body2)
	}
	var eresp serve.EvalResponse
	if err := json.Unmarshal([]byte(body2), &eresp); err != nil {
		t.Fatal(err)
	}
	if !eresp.Cached {
		t.Error("synchronous repeat of an async-evaluated key missed the cache")
	}
	if eresp.Results[1].Transitions != snap.Results[1].Transitions {
		t.Errorf("cached transitions diverge: %d vs %d",
			eresp.Results[1].Transitions, snap.Results[1].Transitions)
	}

	// Queue metrics from the async path are visible on /metrics.
	if code, body := get(t, srv, "/metrics"); code != 200 ||
		!strings.Contains(body, "serve.jobs.done") {
		t.Errorf("/metrics missing serve counters: %d", code)
	}
}
