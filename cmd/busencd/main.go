// Command busencd is the multi-tenant evaluation daemon: it serves the
// internal/serve job queue over HTTP — streamed trace upload into a
// content-addressed store, enqueue-and-poll evaluation with per-tenant
// fairness and quotas, a bytes-bounded result cache — alongside the
// observability surface (metrics, spans, expvar, optional pprof) of
// the original debugging daemon.
//
//	busencd -listen :8377             # service + observability endpoints
//	busencd -listen 127.0.0.1:0       # ephemeral port, printed on stdout
//	busencd -listen :8377 -pprof      # + /debug/pprof/*
//
// Endpoints: POST/GET /traces, GET /traces/{digest}, GET /eval (sync
// for small traces, 202 + /jobs/{id} otherwise), GET /jobs[/{id}],
// GET /dist (peer protocol upgrade for networked distributed pricing),
// /healthz /metrics /spans /debug/vars. SIGTERM/SIGINT starts a
// graceful drain: intake answers
// 503 + Retry-After while every accepted job runs to completion, then
// the HTTP server shuts down. /eval still accepts server-local file
// paths for trusted local profiling.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"busenc/internal/obs"
	"busenc/internal/serve"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:8377", "address to serve on (port 0 picks one; the bound address is printed on stdout)")
		withPprof  = flag.Bool("pprof", false, "also expose /debug/pprof/* (CPU/heap/trace profiling)")
		storeDir   = flag.String("store", "", "trace store directory (default: a fresh temp dir)")
		workers    = flag.Int("workers", 0, "evaluation worker pool size (default GOMAXPROCS)")
		queueCap   = flag.Int("queue-cap", serve.DefaultQueueCap, "max waiting jobs before /eval answers 503")
		cacheBytes = flag.Int64("cache-bytes", serve.DefaultCacheBytes, "result cache bound in bytes (negative disables)")
		maxUpload  = flag.Int64("max-upload", serve.DefaultMaxUploadBytes, "max bytes of one POST /traces body")
		syncMax    = flag.Int64("sync-max-entries", serve.DefaultSyncMaxEntries, "largest known trace evaluated synchronously on /eval")
		rate       = flag.Float64("rate", 0, "per-tenant request rate limit per second (0 = unlimited)")
		burst      = flag.Float64("burst", 0, "per-tenant request burst (default: the rate)")
		maxJobs    = flag.Int("max-queued-jobs", 0, "per-tenant concurrent job quota (0 = unlimited)")
		maxBytes   = flag.Int64("max-trace-bytes", 0, "per-tenant stored trace byte quota (0 = unlimited)")
		drainWait  = flag.Duration("drain-timeout", 60*time.Second, "max time to wait for in-flight jobs on shutdown")
		linger     = flag.Duration("drain-linger", 200*time.Millisecond, "grace for final /jobs polls after the drain completes")
		distFail   = flag.Int("dist-failafter", 0, "fault injection: the first /dist peer connection dies after pricing N shards (0 = off)")
	)
	flag.Parse()

	obs.Enable()
	obs.EnableTracing(obs.TracerConfig{})

	dir := *storeDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "busencd-store-")
		if err != nil {
			log.Fatalf("busencd: %v", err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	srv, err := serve.New(serve.Config{
		Workers:        *workers,
		QueueCap:       *queueCap,
		CacheBytes:     *cacheBytes,
		StoreDir:       dir,
		MaxUploadBytes: *maxUpload,
		SyncMaxEntries: *syncMax,
		DistFailAfter:  *distFail,
		Quotas: serve.Quotas{
			RatePerSec:    *rate,
			RateBurst:     *burst,
			MaxQueuedJobs: *maxJobs,
			MaxTraceBytes: *maxBytes,
		},
	})
	if err != nil {
		log.Fatalf("busencd: %v", err)
	}
	srv.Start()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("busencd: %v", err)
	}
	// The bound address goes to stdout so wrappers (busencload -spawn)
	// can parse it when -listen used port 0.
	fmt.Printf("busencd: listening on %s (pprof=%v store=%s)\n", ln.Addr(), *withPprof, dir)

	hs := &http.Server{Handler: newMux(*withPprof, srv)}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("busencd: %v: draining (timeout %s)", sig, *drainWait)
	case err := <-errc:
		log.Fatalf("busencd: %v", err)
	}

	// Drain: intake 503s while accepted jobs run to completion. The HTTP
	// server keeps answering /jobs polls throughout, plus a short linger
	// so clients can collect their final results before the socket dies.
	drained := srv.Drain(*drainWait)
	time.Sleep(*linger)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(ctx)
	if !drained {
		log.Fatalf("busencd: drain timed out with jobs in flight")
	}
	log.Printf("busencd: drained cleanly")
}

// publishOnce guards the process-global expvar names: expvar panics on
// duplicate Publish, and tests build several muxes per process.
var publishOnce sync.Once

// newMux builds the daemon's handler tree over a serve.Server. Split
// from main so tests can drive it through httptest without a socket.
func newMux(withPprof bool, srv *serve.Server) *http.ServeMux {
	publishOnce.Do(func() {
		for _, r := range obs.Registries() {
			r.PublishExpvar("busenc." + r.Name())
		}
	})

	mux := http.NewServeMux()
	srv.Register(mux) // /traces /eval /jobs /jobs/{id} /healthz /spans /slo /dist
	mux.HandleFunc("/metrics", handleMetrics(srv))
	mux.Handle("/debug/vars", expvar.Handler())
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleMetrics dumps every non-empty registry: JSON by default,
// ?format=table for the human-aligned rendering, ?format=prometheus for
// the text exposition a Prometheus scraper expects (with the serve
// layer's per-tenant SLO histograms appended).
func handleMetrics(srv *serve.Server) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("format") {
		case "", "json":
			w.Header().Set("Content-Type", "application/json")
			if err := obs.WriteAllJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "table":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := obs.WriteAllTable(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "prometheus":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := obs.WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			if err := srv.SLO().WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		default:
			http.Error(w, "format must be json, table or prometheus", http.StatusBadRequest)
		}
	}
}
