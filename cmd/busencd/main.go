// Command busencd serves the evaluation engine over HTTP for local
// profiling and observability work: it evaluates trace files through
// the streaming fan-out on demand and exposes the internal/obs metric
// registries, expvar, and (optionally) net/http/pprof from the same
// process, so the hot paths can be inspected while they run.
//
//	busencd -listen :8377            # /healthz /metrics /spans /eval /debug/vars
//	busencd -listen :8377 -pprof     # + /debug/pprof/*
//
// This is a debugging daemon for trusted local use: /eval reads trace
// files by path from the server's filesystem.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"

	"busenc/internal/codec"
	"busenc/internal/core"
	"busenc/internal/obs"
	"busenc/internal/trace"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8377", "address to serve on")
	withPprof := flag.Bool("pprof", false, "also expose /debug/pprof/* (CPU/heap/trace profiling)")
	flag.Parse()

	obs.Enable()
	obs.EnableTracing(obs.TracerConfig{})
	mux := newMux(*withPprof)
	log.Printf("busencd: serving on %s (pprof=%v)", *listen, *withPprof)
	log.Fatal(http.ListenAndServe(*listen, mux))
}

// publishOnce guards the process-global expvar names: expvar panics on
// duplicate Publish, and tests build several muxes per process.
var publishOnce sync.Once

// newMux builds the daemon's handler tree. Split from main so tests can
// drive it through httptest without binding a socket.
func newMux(withPprof bool) *http.ServeMux {
	publishOnce.Do(func() {
		for _, r := range obs.Registries() {
			r.PublishExpvar("busenc." + r.Name())
		}
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", handleMetrics)
	mux.HandleFunc("/spans", handleSpans)
	mux.HandleFunc("/eval", handleEval)
	mux.Handle("/debug/vars", expvar.Handler())
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleMetrics dumps every non-empty registry: JSON by default,
// ?format=table for the human-aligned rendering, ?format=prometheus for
// the text exposition a Prometheus scraper expects.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Query().Get("format") {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		if err := obs.WriteAllJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "table":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := obs.WriteAllTable(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "prometheus":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		http.Error(w, "format must be json, table or prometheus", http.StatusBadRequest)
	}
}

// spansResponse is the JSON reply of /spans.
type spansResponse struct {
	Enabled bool       `json:"tracing_enabled"`
	Count   int        `json:"count"`
	Spans   []obs.Span `json:"spans"`
}

// handleSpans serves the flight recorder's current contents — the most
// recent spans across the pipeline, start-ordered — optionally filtered
// by exact stage (?stage=encode) and codec (?codec=t0bi) label.
func handleSpans(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	stage, code := q.Get("stage"), q.Get("codec")
	spans := obs.Spans() // a fresh copy, safe to filter in place
	out := spans[:0]
	for _, s := range spans {
		if stage != "" && s.Stage != stage {
			continue
		}
		if code != "" && s.Codec != code {
			continue
		}
		out = append(out, s)
	}
	if out == nil {
		out = []obs.Span{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(spansResponse{Enabled: obs.TracingEnabled(), Count: len(out), Spans: out})
}

// evalResponse is the JSON reply of /eval.
type evalResponse struct {
	Trace   string         `json:"trace"`
	Stream  string         `json:"stream"`
	Width   int            `json:"width"`
	Entries int64          `json:"entries"`
	Results []codec.Result `json:"results"`
}

// handleEval prices codecs over a trace file through the streaming
// fan-out: GET /eval?trace=path[&codes=a,b][&chunklen=N][&depth=N]
// [&kernel=auto|scalar|plane]. With ?parallel=N the trace is
// materialized instead and each codec is priced over N shards with
// reseeded encoder state (the obs registries then carry
// codec.parallel.shards and codec.parallel.shard_ns for the run,
// alongside core.parallel.*).
func handleEval(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	path := q.Get("trace")
	if path == "" {
		httpError(w, http.StatusBadRequest, "missing trace parameter")
		return
	}
	codes := splitCodes(q.Get("codes"))
	kern, err := codec.ParseKernel(q.Get("kernel"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg := core.FanoutConfig{Verify: codec.VerifySampled, Kernel: kern}
	chunkLen, ok := posIntParam(w, q.Get("chunklen"), "chunklen")
	if !ok {
		return
	}
	cfg.Depth, ok = posIntParam(w, q.Get("depth"), "depth")
	if !ok {
		return
	}
	parallel, ok := posIntParam(w, q.Get("parallel"), "parallel")
	if !ok {
		return
	}
	var pool *trace.ChunkPool
	if chunkLen > 0 {
		pool = trace.NewChunkPool(chunkLen)
	}

	tr, closer, err := trace.OpenFile(path, pool)
	if err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	defer closer.Close()
	var results []codec.Result
	if parallel > 0 {
		s, rerr := trace.ReadAll(tr)
		if rerr != nil {
			httpError(w, http.StatusUnprocessableEntity, "%v", rerr)
			return
		}
		results, err = core.EvaluateParallel(s, s.Width, codes, core.DefaultOptions,
			core.ParallelConfig{Shards: parallel, Verify: codec.VerifySampled, Kernel: kern})
	} else {
		results, err = core.EvaluateStreaming(tr, tr.Width(), codes, core.DefaultOptions, cfg)
	}
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp := evalResponse{
		Trace:   path,
		Stream:  results[0].Stream,
		Width:   tr.Width(),
		Entries: results[0].Cycles,
		Results: results,
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// httpError writes /eval's JSON error envelope: {"error": ..., "status":
// ...} with the matching HTTP status code, so clients can branch on a
// machine-readable body instead of scraping plain text.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error  string `json:"error"`
		Status int    `json:"status"`
	}{fmt.Sprintf(format, args...), status})
}

// posIntParam parses an optional positive-integer query parameter; it
// writes the 400 envelope itself and reports ok=false on a bad value.
func posIntParam(w http.ResponseWriter, s, name string) (int, bool) {
	if s == "" {
		return 0, true
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		httpError(w, http.StatusBadRequest, "%s must be a positive integer, got %q", name, s)
		return 0, false
	}
	return n, true
}

// paperCodes mirrors cmd/paper: the seven codes of the paper's tables,
// binary first so savings are always relative to it.
var paperCodes = []string{"binary", "gray", "t0", "businvert", "t0bi", "dualt0", "dualt0bi"}

func splitCodes(codes string) []string {
	switch codes {
	case "", "paper":
		return paperCodes
	case "all":
		return codec.Names()
	}
	out := []string{"binary"}
	for _, c := range strings.Split(codes, ",") {
		if c = strings.TrimSpace(c); c != "" && c != "binary" {
			out = append(out, c)
		}
	}
	return out
}
