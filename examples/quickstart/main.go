// Quickstart: encode one address stream with the paper's codes and print
// the transition savings.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"busenc/internal/codec"
	"busenc/internal/trace"
)

func main() {
	// Build a small instruction-fetch-like stream: two sequential runs
	// separated by a jump, as a program with one branch would produce.
	s := trace.New("quickstart", 32)
	for i := 0; i < 16; i++ {
		s.Append(0x00400000+uint64(i)*4, trace.Instr)
	}
	for i := 0; i < 16; i++ {
		s.Append(0x00401000+uint64(i)*4, trace.Instr)
	}

	// Binary is the reference every code is measured against.
	opts := codec.Options{Stride: 4}
	binary := codec.MustRun(codec.MustNew("binary", 32, codec.Options{}), s)
	fmt.Printf("stream: %d references, %.1f%% in sequence\n", s.Len(), s.InSeqFraction(4)*100)
	fmt.Printf("binary reference: %d transitions\n\n", binary.Transitions)

	for _, name := range []string{"gray", "businvert", "t0", "t0bi"} {
		c, err := codec.New(name, 32, opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := codec.Run(c, s) // Run also verifies decode(encode(x)) == x
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %2d bus lines, %4d transitions, %6.2f%% savings\n",
			name, res.BusWidth, res.Transitions, res.SavingsVs(binary)*100)
	}

	// Under the hood: a codec is an encoder/decoder state-machine pair.
	c := codec.MustNew("t0", 32, opts)
	enc, dec := c.NewEncoder(), c.NewDecoder()
	word := enc.Encode(codec.Symbol{Addr: 0x00400000, Sel: true})
	fmt.Printf("\nfirst encoded word: %#011x (INC line is bit 32)\n", word)
	fmt.Printf("decoded back:       %#011x\n", dec.Decode(word, true))
}
