// Hardware scenario: synthesize the paper's encoder/decoder architectures
// at gate level, verify them against the reference codecs, and sweep the
// bus load to find where each code's activity savings outweigh its codec
// logic — the Section 4 experiment.
//
//	go run ./examples/hardware
package main

import (
	"fmt"
	"log"
	"os"

	"busenc/internal/core"
	"busenc/internal/hw"
	"busenc/internal/netlist"
)

func main() {
	lib := netlist.DefaultLibrary()

	// Build the three hardware codecs of the paper.
	bin := hw.Binary(32)
	t0 := hw.T0(32, 2) // stride 4
	dbi := hw.DualT0BI(32, 2)
	for _, c := range []hw.Codec{bin, t0, dbi} {
		fmt.Printf("%-9s encoder: %4d cells (area %6.1f), decoder: %4d cells (area %6.1f)\n",
			c.Name, c.Enc.NumCells(), lib.Area(c.Enc), c.Dec.NumCells(), lib.Area(c.Dec))
	}

	// Exercise them with a reference muxed stream and measure switching.
	s := core.ReferenceMuxedStream(5000)
	fmt.Printf("\nreference stream: %d refs, %.1f%% in-seq\n\n", s.Len(), s.InSeqFraction(4)*100)

	rows8, err := core.Table8(s, core.OnChipLoads)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.RenderTable8(os.Stdout, rows8); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	rows9, err := core.Table9(s, core.OffChipLoads)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.RenderTable9(os.Stdout, rows9); err != nil {
		log.Fatal(err)
	}

	if load, ok := core.Crossover(rows9); ok {
		fmt.Printf("\nrecommendation: plain T0 below %.0f pF; dual T0_BI at and above (its logic overhead is repaid by pad-activity savings)\n", load*1e12)
	} else {
		fmt.Println("\nno crossover within the sweep: T0 remains preferable")
	}
}
