// Linker scenario: the high-level complement to bus encoding discussed in
// the paper's related work (Panda/Dutt, reference [1]) — before any
// encoder is added, the *placement* of data in the address space already
// determines how many bus transitions an access pattern costs. This
// example profiles a synthetic embedded application, optimizes its data
// layout with internal/memmap, and then stacks a bus code on top,
// showing the two techniques compose.
//
//	go run ./examples/linker
package main

import (
	"fmt"
	"log"
	"math/rand"

	"busenc/internal/codec"
	"busenc/internal/memmap"
)

func main() {
	// An embedded app's data: two hot ping-pong buffers, a coefficient
	// table accessed with them, and assorted cold blocks between them in
	// declaration order.
	blocks := []memmap.Block{
		{Name: "rx_buf", Size: 2048},   // 0: hot
		{Name: "log_area", Size: 8192}, // 1: cold
		{Name: "tx_buf", Size: 2048},   // 2: hot, pairs with rx_buf
		{Name: "config", Size: 256},    // 3: cold
		{Name: "coeffs", Size: 512},    // 4: hot, pairs with both buffers
		{Name: "scratch", Size: 4096},  // 5: cold
	}
	rng := rand.New(rand.NewSource(42))
	var accs []memmap.Access
	for i := 0; i < 20000; i++ {
		switch {
		case i%50 == 49: // occasional cold access
			b := []int{1, 3, 5}[rng.Intn(3)]
			accs = append(accs, memmap.Access{Block: b, Offset: uint64(rng.Intn(int(blocks[b].Size)))})
		default: // hot loop: rx -> coeffs -> tx
			off := uint64(4 * (i % 512))
			accs = append(accs,
				memmap.Access{Block: 0, Offset: off % blocks[0].Size},
				memmap.Access{Block: 4, Offset: (off * 2) % blocks[4].Size},
				memmap.Access{Block: 2, Offset: off % blocks[2].Size, Write: true},
			)
		}
	}

	seq := memmap.Sequential(blocks, 0x10000000, 16)
	opt, err := memmap.Optimize(blocks, accs, 0x10000000, 16)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("layout               declaration-order    optimized")
	for i, b := range blocks {
		fmt.Printf("  %-10s         %#010x           %#010x\n", b.Name, seq.Addr[i], opt.Addr[i])
	}

	tSeq, err := memmap.Transitions(seq, accs, 32)
	if err != nil {
		log.Fatal(err)
	}
	tOpt, err := memmap.Transitions(opt, accs, 32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbinary bus transitions: %d -> %d (%.1f%% saved by placement alone)\n",
		tSeq, tOpt, 100*(1-float64(tOpt)/float64(tSeq)))

	// Now stack a bus code on top of each layout.
	for _, layout := range []struct {
		name string
		l    *memmap.Layout
	}{{"declaration-order", seq}, {"optimized", opt}} {
		stream, err := layout.l.Trace("app", 32, accs)
		if err != nil {
			log.Fatal(err)
		}
		bin := codec.MustRun(codec.MustNew("binary", 32, codec.Options{}), stream)
		best, bestT := "binary", bin.Transitions
		for _, name := range []string{"businvert", "t0", "incxor", "workzone", "gray"} {
			res := codec.MustRun(codec.MustNew(name, 32, codec.Options{Stride: 4}), stream)
			if res.Transitions < bestT {
				best, bestT = name, res.Transitions
			}
		}
		fmt.Printf("%-18s + best code (%s): %d transitions (%.1f%% vs unoptimized binary)\n",
			layout.name, best, bestT, 100*(1-float64(bestT)/float64(tSeq)))
	}
}
