// DSP scenario: an embedded processor repeatedly executing the same kernel
// — the situation the paper's introduction motivates for address bus
// encoding (core + memory on a board, wide bus, battery budget).
//
// The example assembles a FIR filter kernel, runs it on the MIPS
// simulator, and compares every codec on the three buses (instruction,
// data, multiplexed). Because the kernel repeats, it also demonstrates the
// profile-driven Beach code trained on a prefix of the trace.
//
//	go run ./examples/dsp
package main

import (
	"fmt"
	"log"

	"busenc/internal/codec"
	"busenc/internal/mips"
	"busenc/internal/trace"
)

// A 16-tap FIR filter over 512 samples, fixed point. The kind of loop a
// dedicated DSP executes forever.
const firSource = `
        .text
main:
        # Generate 512 input samples with an LCG.
        la    $s0, samples
        li    $s1, 512
        li    $s2, 555
        li    $s3, 1103515245
        li    $t9, 0
gen:
        mul   $s2, $s2, $s3
        addiu $s2, $s2, 12345
        sra   $t0, $s2, 20
        sll   $t1, $t9, 2
        addu  $t2, $s0, $t1
        sw    $t0, 0($t2)
        addiu $t9, $t9, 1
        bne   $t9, $s1, gen

        # y[n] = sum_k h[k] * x[n-k], 16 taps, outputs 496 samples.
        la    $s4, taps
        la    $s5, out
        li    $t8, 15            # n starts where history exists
outer:
        li    $s6, 0             # acc
        li    $s7, 0             # k
inner:
        subu  $t0, $t8, $s7      # n - k
        sll   $t0, $t0, 2
        addu  $t0, $s0, $t0
        lw    $t1, 0($t0)        # x[n-k]
        sll   $t2, $s7, 2
        addu  $t2, $s4, $t2
        lw    $t3, 0($t2)        # h[k]
        mul   $t4, $t1, $t3
        addu  $s6, $s6, $t4
        addiu $s7, $s7, 1
        li    $t5, 16
        bne   $s7, $t5, inner
        subu  $t6, $t8, $t5
        addiu $t6, $t6, 1
        sll   $t6, $t6, 2
        addu  $t6, $s5, $t6
        sw    $s6, 0($t6)        # out[n-15]
        addiu $t8, $t8, 1
        bne   $t8, $s1, outer

        # Checksum the output so the kernel has observable semantics.
        li    $t9, 0
        li    $s6, 0
        li    $t7, 496
cks:
        sll   $t0, $t9, 2
        addu  $t0, $s5, $t0
        lw    $t1, 0($t0)
        xor   $s6, $s6, $t1
        addiu $t9, $t9, 1
        bne   $t9, $t7, cks
        li    $v0, 1
        move  $a0, $s6
        syscall
        li    $v0, 10
        syscall

        .data
taps:   .word 1, -2, 3, -4, 5, -6, 7, -8, 8, -7, 6, -5, 4, -3, 2, -1
samples: .space 2048
out:    .space 2048
`

func main() {
	prog, err := mips.Assemble(firSource)
	if err != nil {
		log.Fatal(err)
	}
	muxed, stats, err := mips.Run(prog, "fir", 2_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FIR kernel: %d cycles, %d fetches, %d loads, %d stores, checksum %s\n\n",
		stats.Cycles, stats.InstrRefs, stats.DataReads, stats.DataWrites, stats.Output)

	buses := []struct {
		name string
		s    *trace.Stream
	}{
		{"instruction", muxed.InstrOnly()},
		{"data", muxed.DataOnly()},
		{"multiplexed", muxed},
	}
	codes := []string{"gray", "businvert", "t0", "t0bi", "dualt0", "dualt0bi", "offset", "workzone", "beach"}
	for _, b := range buses {
		// Train the Beach code on the first quarter of the trace — the
		// kernel repeats, so the profile generalizes.
		train := b.s.Slice(0, b.s.Len()/4)
		opts := codec.Options{Stride: 4, Train: train}
		bin := codec.MustRun(codec.MustNew("binary", 32, codec.Options{}), b.s)
		fmt.Printf("%s bus: %.1f%% in-seq, binary %d transitions\n",
			b.name, b.s.InSeqFraction(4)*100, bin.Transitions)
		best, bestSave := "", -1e9
		for _, name := range codes {
			c, err := codec.New(name, 32, opts)
			if err != nil {
				log.Fatal(err)
			}
			res, err := codec.Run(c, b.s)
			if err != nil {
				log.Fatal(err)
			}
			save := res.SavingsVs(bin) * 100
			fmt.Printf("  %-10s %7.2f%%\n", name, save)
			if save > bestSave {
				best, bestSave = name, save
			}
		}
		fmt.Printf("  -> best: %s (%.2f%%)\n\n", best, bestSave)
	}
}
