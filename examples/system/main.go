// System scenario: the whole stack at once — a benchmark program runs on
// the MIPS simulator, buses carry encodings, and the report sums line,
// pad and codec-logic power into the number a system designer actually
// budgets. The two configurations demonstrate the paper's Section 4
// lesson from the system side: encoding pays off exactly when the bus
// capacitance is large enough that activity savings dwarf codec overhead.
//
//	go run ./examples/system
package main

import (
	"fmt"
	"log"

	"busenc/internal/cache"
	"busenc/internal/codec"
	"busenc/internal/mips/progs"
	"busenc/internal/system"
)

func main() {
	bench, err := progs.Get("gzip")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := bench.Assemble()
	if err != nil {
		log.Fatal(err)
	}

	// Case 1: cacheless embedded system, the address bus goes straight
	// off chip through pads into 50 pF — the paper's scenario. Encoding
	// wins decisively.
	fmt.Println("case 1: cacheless system, off-chip address bus (50 pF)")
	for _, code := range []string{"binary", "t0", "dualt0bi"} {
		rep, err := system.Evaluate(system.Config{
			Program:   prog,
			MaxCycles: bench.MaxCycles,
			CPUBus: system.BusConfig{
				Code:     code,
				Options:  codec.Options{Stride: 4},
				LineCapF: 50e-12,
				OffChip:  true,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s %7.2f mW bus + %6.3f mW codec = %7.2f mW  (net saving %6.2f%%)\n",
			code, rep.CPUBus.BusPowerW*1e3, rep.CPUBus.CodecPowerW*1e3,
			rep.TotalPowerW()*1e3, rep.CPUBus.NetSavingsPct)
	}

	// Case 2: the same program behind an 8 KiB L1. The CPU-side bus is
	// now a short on-chip wire (0.5 pF) and the off-chip bus is nearly
	// idle — encoding the on-chip bus cannot amortize its codec.
	fmt.Println("\ncase 2: 8 KiB L1, on-chip CPU bus (0.5 pF), off-chip memory bus (50 pF)")
	for _, code := range []string{"binary", "dualt0bi"} {
		rep, err := system.Evaluate(system.Config{
			Program:   prog,
			MaxCycles: bench.MaxCycles,
			CPUBus: system.BusConfig{
				Code:     code,
				Options:  codec.Options{Stride: 4},
				LineCapF: 0.5e-12,
			},
			L1: &cache.Config{Size: 8 << 10, LineSize: 16, Ways: 2, WriteBack: true},
			MemBus: &system.BusConfig{
				Code:     "binary",
				LineCapF: 50e-12,
				OffChip:  true,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cpu bus %-9s %6.3f mW bus + %6.3f mW codec; mem bus %6.3f mW (L1 hit rate %.1f%%) -> total %6.3f mW\n",
			code, rep.CPUBus.BusPowerW*1e3, rep.CPUBus.CodecPowerW*1e3,
			rep.MemBus.BusPowerW*1e3, rep.HitRate*100, rep.TotalPowerW()*1e3)
	}
	fmt.Println("\nlesson: encode the heavily loaded bus; behind a high-hit-rate cache a short")
	fmt.Println("on-chip bus cannot amortize the codec — exactly the paper's load crossover.")
}
