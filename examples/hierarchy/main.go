// Memory-hierarchy scenario: the paper's "future work" — which code suits
// which level of the memory hierarchy? Filtering the processor stream
// through caches changes its locality profile completely: the CPU-side
// bus is dominated by sequential fetch, while the L2 and memory buses see
// block-aligned refills with far less sequentiality, so the winning code
// changes per level.
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"

	"busenc/internal/cache"
	"busenc/internal/codec"
	"busenc/internal/trace"
	"busenc/internal/workload"
)

func main() {
	// Processor-side muxed stream from the calibrated espresso model.
	var bench workload.Benchmark
	for _, b := range workload.Suite() {
		if b.Name == "espresso" {
			bench = b
		}
	}
	cpuBus := bench.Muxed()

	l1, err := cache.New(cache.Config{Size: 8 << 10, LineSize: 16, Ways: 2, WriteBack: true})
	if err != nil {
		log.Fatal(err)
	}
	l2, err := cache.New(cache.Config{Size: 128 << 10, LineSize: 64, Ways: 4, WriteBack: true})
	if err != nil {
		log.Fatal(err)
	}
	buses := cache.Hierarchy(cpuBus, l1, l2)
	names := []string{"CPU-L1 bus", "L1-L2 bus", "L2-memory bus"}
	strides := []uint64{4, 16, 64} // the natural stride per level: word, L1 line, L2 line

	fmt.Printf("L1: %d B, %d-way, %d B lines  (hit rate %.1f%%)\n", l1.Config().Size, l1.Config().Ways, l1.Config().LineSize, l1.HitRate()*100)
	fmt.Printf("L2: %d B, %d-way, %d B lines  (hit rate %.1f%%)\n\n", l2.Config().Size, l2.Config().Ways, l2.Config().LineSize, l2.HitRate()*100)

	codes := []string{"gray", "businvert", "t0", "dualt0bi", "workzone"}
	for i, bus := range buses {
		stride := strides[i]
		bin := codec.MustRun(codec.MustNew("binary", 32, codec.Options{}), bus)
		fmt.Printf("%s: %d refs, %.1f%% in-seq at stride %d, binary %d transitions\n",
			names[i], bus.Len(), bus.InSeqFraction(stride)*100, stride, bin.Transitions)
		best, bestSave := "binary", 0.0
		for _, name := range codes {
			c, err := codec.New(name, 32, codec.Options{Stride: stride})
			if err != nil {
				log.Fatal(err)
			}
			res, err := codec.Run(c, bus)
			if err != nil {
				log.Fatal(err)
			}
			save := res.SavingsVs(bin) * 100
			fmt.Printf("  %-10s %7.2f%%\n", name, save)
			if save > bestSave {
				best, bestSave = name, save
			}
		}
		fmt.Printf("  -> recommended code for this level: %s (%.2f%%)\n\n", best, bestSave)
	}
	printActivityBudget(buses, names)
}

// printActivityBudget shows where the transitions actually are: after the
// caches, the lower buses carry far fewer references, so the CPU-side bus
// dominates the system power budget — the paper's premise.
func printActivityBudget(buses []*trace.Stream, names []string) {
	fmt.Println("reference count per level (why the CPU bus matters most):")
	for i, b := range buses {
		fmt.Printf("  %-14s %8d refs\n", names[i], b.Len())
	}
}
