// Package arch characterizes processor architectures with respect to
// address bus encoding — the paper's stated future work: "we are working
// on the characterization of existing microprocessors (e.g., MIPS, SPARC,
// PowerPC, DEC-Alpha, PA-RISC, Intel) with respect to these architectural
// options."
//
// Each profile captures the architecturally visible properties the codes
// are sensitive to: address width, fetch stride, whether the external
// address bus multiplexes instructions and data, and the memory map that
// shapes jump-target Hamming distances. Characterize runs the full code
// family on a profile's streams and reports the best code per bus, so a
// system designer can pick the encoding for a given part.
package arch

import (
	"fmt"
	"math/bits"

	"busenc/internal/codec"
	"busenc/internal/trace"
	"busenc/internal/workload"
)

// BusKind distinguishes split instruction/data buses from a multiplexed
// external address bus (as on the MIPS parts the paper measured).
type BusKind int

const (
	// Split means separate external instruction and data address buses.
	Split BusKind = iota
	// Muxed means one time-multiplexed address bus with a SEL signal.
	Muxed
)

// String returns the bus-kind name.
func (k BusKind) String() string {
	if k == Muxed {
		return "muxed"
	}
	return "split"
}

// Profile describes one processor architecture.
type Profile struct {
	Name string
	// AddrBits is the implemented external address width.
	AddrBits int
	// Stride is the instruction fetch increment in bytes.
	Stride uint64
	// Bus is the external address bus organization.
	Bus BusKind
	// TextBase/LibBase anchor the code regions; DataBase/HeapBase/
	// StackTop anchor the data regions of the conventional memory map.
	TextBase, LibBase             uint64
	DataBase, HeapBase, StackTop  uint64
	InstrSeq, DataSeq, DataFrac   float64
	textSpan, libSpan, regionSpan uint64
}

func (p Profile) spans() Profile {
	if p.textSpan == 0 {
		p.textSpan = 1 << 18
	}
	if p.libSpan == 0 {
		p.libSpan = 1 << 20
	}
	if p.regionSpan == 0 {
		p.regionSpan = 1 << 16
	}
	return p
}

// InstrSpec returns the instruction stream generator of the profile.
func (p Profile) InstrSpec() workload.InstrSpec {
	p = p.spans()
	return workload.InstrSpec{
		Target: p.InstrSeq,
		Stride: p.Stride,
		Far: workload.Model{
			Regions: []workload.Region{
				{Base: p.TextBase, Size: p.textSpan, Weight: 8},
				{Base: p.LibBase, Size: p.libSpan, Weight: 2},
			},
		},
	}
}

// DataSpec returns the data stream generator of the profile.
func (p Profile) DataSpec() workload.DataSpec {
	p = p.spans()
	return workload.DataSpec{
		Target: p.DataSeq,
		Jump: workload.Model{
			Stride: p.Stride,
			Regions: []workload.Region{
				{Base: p.DataBase, Size: p.regionSpan << 4, Weight: 4},
				{Base: p.HeapBase, Size: p.regionSpan, Weight: 4},
				{Base: p.StackTop - p.regionSpan, Size: p.regionSpan, Weight: 3},
			},
		},
	}
}

// Streams generates the profile's characteristic streams: instruction,
// data, and — for muxed-bus parts — the multiplexed stream.
func (p Profile) Streams(n int, seed int64) (instr, data, muxed *trace.Stream) {
	instr = p.InstrSpec().Stream(p.Name+".instr", p.AddrBits, n, seed)
	data = p.DataSpec().Stream(p.Name+".data", p.AddrBits, n, seed+10)
	if p.Bus == Muxed {
		m := workload.MuxSpec{Instr: p.InstrSpec(), Data: p.DataSpec(), DataFrac: p.DataFrac}
		muxed = m.Stream(p.Name+".muxed", p.AddrBits, n, seed+20)
	}
	return instr, data, muxed
}

// Profiles returns the characterization targets named by the paper. The
// stream statistics reuse the paper's measured MIPS values as the common
// baseline; the memory maps and widths are per-architecture.
func Profiles() []Profile {
	return []Profile{
		{
			Name: "mips", AddrBits: 32, Stride: 4, Bus: Muxed,
			TextBase: 0x00400000, LibBase: 0x00480000,
			DataBase: 0x10000000, HeapBase: 0x10010000, StackTop: 0x7FFFF000,
			InstrSeq: 0.63, DataSeq: 0.11, DataFrac: 0.045,
		},
		{
			Name: "sparc", AddrBits: 32, Stride: 4, Bus: Split,
			TextBase: 0x00010000, LibBase: 0x00100000,
			DataBase: 0x00200000, HeapBase: 0x00300000, StackTop: 0xF0000000,
			InstrSeq: 0.61, DataSeq: 0.12, DataFrac: 0.3,
		},
		{
			Name: "powerpc", AddrBits: 40, Stride: 4, Bus: Split,
			TextBase: 0x01800000, LibBase: 0x01C00000,
			DataBase: 0x30000000, HeapBase: 0x30100000, StackTop: 0x7FFE0000,
			InstrSeq: 0.64, DataSeq: 0.13, DataFrac: 0.3,
		},
		{
			Name: "alpha", AddrBits: 43, Stride: 4, Bus: Split,
			TextBase: 0x000120000000, LibBase: 0x000160000000,
			DataBase: 0x000140000000, HeapBase: 0x000141000000, StackTop: 0x00011FFFF000,
			InstrSeq: 0.65, DataSeq: 0.12, DataFrac: 0.3,
		},
		{
			Name: "parisc", AddrBits: 32, Stride: 4, Bus: Split,
			TextBase: 0x00001000, LibBase: 0x40000000,
			DataBase: 0x40001000, HeapBase: 0x40100000, StackTop: 0x7B03A000,
			InstrSeq: 0.62, DataSeq: 0.12, DataFrac: 0.3,
		},
		{
			Name: "x86", AddrBits: 32, Stride: 4, Bus: Split,
			TextBase: 0x08048000, LibBase: 0x40000000,
			DataBase: 0x08100000, HeapBase: 0x08200000, StackTop: 0xBFFFF000,
			// Variable-length instructions make the fetch stream less
			// regular at the bus: lower effective sequentiality.
			InstrSeq: 0.55, DataSeq: 0.13, DataFrac: 0.3,
		},
	}
}

// Recommendation is the characterization verdict for one bus of one part.
type Recommendation struct {
	Arch string
	Bus  string // "instruction", "data" or "muxed"
	// Best is the winning code; SavingsPct its savings vs binary.
	Best       string
	SavingsPct float64
	// InSeqPct is the measured in-sequence fraction of the bus's stream.
	InSeqPct float64
}

// characterizationCodes is the code family considered per bus. The dual
// codes only make sense on a muxed bus (they need SEL).
var splitCodes = []string{"gray", "businvert", "t0", "t0bi", "incxor"}
var muxedCodes = []string{"gray", "businvert", "t0", "t0bi", "dualt0", "dualt0bi", "incxor"}

// Characterize runs the code family on each of the profile's buses and
// returns one recommendation per bus.
func Characterize(p Profile, n int, seed int64) ([]Recommendation, error) {
	instr, data, muxed := p.Streams(n, seed)
	buses := []struct {
		name  string
		s     *trace.Stream
		codes []string
	}{
		{"instruction", instr, splitCodes},
		{"data", data, splitCodes},
	}
	if muxed != nil {
		buses = append(buses, struct {
			name  string
			s     *trace.Stream
			codes []string
		}{"muxed", muxed, muxedCodes})
	}
	var out []Recommendation
	for _, b := range buses {
		rec, err := bestCode(p, b.name, b.s, b.codes)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

func bestCode(p Profile, busName string, s *trace.Stream, codes []string) (Recommendation, error) {
	if p.Stride == 0 || p.Stride&(p.Stride-1) != 0 {
		return Recommendation{}, fmt.Errorf("arch %s: stride %d not a power of two", p.Name, p.Stride)
	}
	opts := codec.Options{Stride: p.Stride}
	bin, err := codec.Run(codec.MustNew("binary", p.AddrBits, codec.Options{}), s)
	if err != nil {
		return Recommendation{}, err
	}
	rec := Recommendation{
		Arch:     p.Name,
		Bus:      busName,
		Best:     "binary",
		InSeqPct: s.InSeqFraction(p.Stride) * 100,
	}
	for _, name := range codes {
		c, err := codec.New(name, p.AddrBits, opts)
		if err != nil {
			return Recommendation{}, err
		}
		res, err := codec.Run(c, s)
		if err != nil {
			return Recommendation{}, err
		}
		if save := res.SavingsVs(bin) * 100; save > rec.SavingsPct {
			rec.Best, rec.SavingsPct = name, save
		}
	}
	return rec, nil
}

// strideLog returns log2 of the profile stride, for hardware generation.
func (p Profile) StrideLog() int { return bits.TrailingZeros64(p.Stride) }
