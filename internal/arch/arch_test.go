package arch

import (
	"strings"
	"testing"
)

func TestProfilesCoverPaperList(t *testing.T) {
	want := []string{"mips", "sparc", "powerpc", "alpha", "parisc", "x86"}
	got := map[string]Profile{}
	for _, p := range Profiles() {
		got[p.Name] = p
	}
	for _, name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("profile %q missing", name)
		}
	}
}

func TestProfilesAreWellFormed(t *testing.T) {
	for _, p := range Profiles() {
		if p.AddrBits < 16 || p.AddrBits > 63 {
			t.Errorf("%s: address width %d outside codec range", p.Name, p.AddrBits)
		}
		if p.Stride == 0 || p.Stride&(p.Stride-1) != 0 {
			t.Errorf("%s: stride %d not a power of two", p.Name, p.Stride)
		}
		if p.InstrSeq <= p.DataSeq {
			t.Errorf("%s: instruction streams must be more sequential than data", p.Name)
		}
		limit := uint64(1) << uint(p.AddrBits)
		for _, a := range []uint64{p.TextBase, p.LibBase, p.DataBase, p.HeapBase, p.StackTop} {
			if a >= limit {
				t.Errorf("%s: memory-map address %#x outside %d-bit space", p.Name, a, p.AddrBits)
			}
		}
	}
}

func TestStreamsMatchProfileStatistics(t *testing.T) {
	for _, p := range Profiles() {
		instr, data, muxed := p.Streams(30000, 1)
		if got := instr.InSeqFraction(p.Stride); got < p.InstrSeq-0.04 || got > p.InstrSeq+0.04 {
			t.Errorf("%s: instr in-seq %.3f, target %.3f", p.Name, got, p.InstrSeq)
		}
		if got := data.InSeqFraction(p.Stride); got < p.DataSeq-0.04 || got > p.DataSeq+0.04 {
			t.Errorf("%s: data in-seq %.3f, target %.3f", p.Name, got, p.DataSeq)
		}
		if p.Bus == Muxed && muxed == nil {
			t.Errorf("%s: muxed profile produced no muxed stream", p.Name)
		}
		if p.Bus == Split && muxed != nil {
			t.Errorf("%s: split profile produced a muxed stream", p.Name)
		}
	}
}

func TestStreamsStayInsideAddressSpace(t *testing.T) {
	for _, p := range Profiles() {
		instr, data, _ := p.Streams(20000, 2)
		limit := uint64(1) << uint(p.AddrBits)
		for _, s := range []interface{ Addresses() []uint64 }{instr, data} {
			for _, a := range s.Addresses() {
				if a >= limit {
					t.Fatalf("%s: address %#x outside the %d-bit space", p.Name, a, p.AddrBits)
				}
			}
		}
	}
}

func TestCharacterizeRecommendsSensibly(t *testing.T) {
	for _, p := range Profiles() {
		recs, err := Characterize(p, 30000, 3)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		wantBuses := 2
		if p.Bus == Muxed {
			wantBuses = 3
		}
		if len(recs) != wantBuses {
			t.Fatalf("%s: %d recommendations", p.Name, len(recs))
		}
		byBus := map[string]Recommendation{}
		for _, r := range recs {
			byBus[r.Bus] = r
		}
		// Instruction buses must prefer a sequentiality-exploiting code.
		in := byBus["instruction"]
		if !strings.Contains(in.Best, "t0") && in.Best != "incxor" && in.Best != "gray" {
			t.Errorf("%s instruction bus: recommended %q", p.Name, in.Best)
		}
		if in.SavingsPct < 15 {
			t.Errorf("%s instruction bus: savings %.1f%% too low", p.Name, in.SavingsPct)
		}
		// Data buses must not recommend the dual codes (no SEL benefit).
		d := byBus["data"]
		if strings.HasPrefix(d.Best, "dual") {
			t.Errorf("%s data bus: recommended %q", p.Name, d.Best)
		}
		if m, ok := byBus["muxed"]; ok {
			if m.SavingsPct <= 0 {
				t.Errorf("%s muxed bus: no code saved anything", p.Name)
			}
		}
	}
}

func TestMIPSMuxedRecommendationMatchesPaper(t *testing.T) {
	// The paper's conclusion: dual T0_BI is the most effective code for
	// the MIPS muxed address bus.
	var mips Profile
	for _, p := range Profiles() {
		if p.Name == "mips" {
			mips = p
		}
	}
	recs, err := Characterize(mips, 50000, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Bus == "muxed" {
			if r.Best != "dualt0bi" && r.Best != "dualt0" {
				t.Errorf("muxed recommendation = %q, want a dual code (paper: dualt0bi)", r.Best)
			}
		}
	}
}

func TestStrideLog(t *testing.T) {
	p := Profile{Stride: 4}
	if p.StrideLog() != 2 {
		t.Errorf("StrideLog = %d", p.StrideLog())
	}
}

func TestBusKindString(t *testing.T) {
	if Split.String() != "split" || Muxed.String() != "muxed" {
		t.Error("bus kind names wrong")
	}
}
