package codec

import (
	"fmt"
	"math/bits"

	"busenc/internal/bus"
)

func init() {
	Register("gray", func(width int, opts Options) (Codec, error) {
		return NewGray(width, opts.stride())
	})
}

// Gray is the Gray code of Su, Tsui and Despain: consecutive addresses
// differ in exactly one bit, so an unlimited in-sequence stream costs one
// transition per emitted address — the optimum among irredundant codes.
//
// For byte-addressable machines whose in-sequence increment is a power of
// two S > 1 (the situation of Mehta, Owens and Irwin [5]), the code is
// applied to the address divided by S while the low log2(S) bits pass
// through unchanged; in-sequence references then still cost a single
// transition.
type Gray struct {
	width     int
	mask      uint64
	shift     uint // log2(stride)
	lowMask   uint64
	stride    uint64
	graySpace int // width - shift
}

// NewGray returns the Gray code over width lines with the given
// in-sequence stride (a power of two).
func NewGray(width int, stride uint64) (*Gray, error) {
	if err := checkWidth("gray", width, 0); err != nil {
		return nil, err
	}
	if stride == 0 || stride&(stride-1) != 0 {
		return nil, fmt.Errorf("codec gray: stride must be a power of two, got %d", stride)
	}
	shift := uint(bits.TrailingZeros64(stride))
	if int(shift) >= width {
		return nil, fmt.Errorf("codec gray: stride %d consumes the whole %d-bit bus", stride, width)
	}
	return &Gray{
		width:     width,
		mask:      bus.Mask(width),
		shift:     shift,
		lowMask:   bus.Mask(int(shift)),
		stride:    stride,
		graySpace: width - int(shift),
	}, nil
}

// Name implements Codec.
func (g *Gray) Name() string { return "gray" }

// PayloadWidth implements Codec.
func (g *Gray) PayloadWidth() int { return g.width }

// BusWidth implements Codec.
func (g *Gray) BusWidth() int { return g.width }

// NewEncoder implements Codec.
func (g *Gray) NewEncoder() Encoder { return grayEnd{g} }

// NewDecoder implements Codec.
func (g *Gray) NewDecoder() Decoder { return grayEnd{g} }

type grayEnd struct{ g *Gray }

func (e grayEnd) Encode(s Symbol) uint64 {
	a := s.Addr & e.g.mask
	hi := a >> e.g.shift
	return (ToGray(hi) << e.g.shift) | (a & e.g.lowMask)
}

func (e grayEnd) Decode(word uint64, _ bool) uint64 {
	word &= e.g.mask
	hi := word >> e.g.shift
	return (FromGray(hi) << e.g.shift) | (word & e.g.lowMask)
}

func (e grayEnd) Reset() {}

// Snapshot implements StateCodec; the Gray code is stateless.
func (e grayEnd) Snapshot() State { return nil }

// Restore implements StateCodec.
func (e grayEnd) Restore(State) {}

// SeedFrom implements Seeder: nothing to seed.
func (e grayEnd) SeedFrom(Symbol) {}

// EncodeBatch implements BatchEncoder.
func (e grayEnd) EncodeBatch(syms []Symbol, out []uint64) {
	mask, shift, lowMask := e.g.mask, e.g.shift, e.g.lowMask
	for i := range syms {
		a := syms[i].Addr & mask
		hi := a >> shift
		out[i] = (ToGray(hi) << shift) | (a & lowMask)
	}
}

// EncodePlanes implements PlaneEncoder. ToGray is GF(2)-linear, so the
// whole transform is one XOR per plane: for planes at or above the
// stride shift, encoded plane b is a_b ^ a_{b+1} (with the plane at the
// payload width reading as zero, which is exactly the masking the
// scalar encoder applies); planes below the shift pass through.
func (g *Gray) EncodePlanes(blk *PlaneBlock, scratch *[64]uint64) (*[64]uint64, uint64) {
	a := blk.A
	shift := int(g.shift)
	for b := 0; b < shift; b++ {
		scratch[b] = a[b]
	}
	top := g.width - 1 // constructor guarantees shift < width
	if top > 63 {
		top = 63 // unreachable; aids bounds-check elimination
	}
	for b := shift; b < top; b++ {
		scratch[b] = a[b] ^ a[b+1]
	}
	scratch[top] = a[top]
	la := blk.Last & g.mask
	return scratch, (ToGray(la>>g.shift) << g.shift) | (la & g.lowMask)
}

// ToGray converts a binary value to its reflected Gray code.
func ToGray(b uint64) uint64 { return b ^ (b >> 1) }

// FromGray converts a reflected Gray code back to binary using the
// logarithmic prefix-XOR.
func FromGray(g uint64) uint64 {
	g ^= g >> 32
	g ^= g >> 16
	g ^= g >> 8
	g ^= g >> 4
	g ^= g >> 2
	g ^= g >> 1
	return g
}
