package codec

import (
	"math/rand"
	"reflect"
	"testing"

	"busenc/internal/trace"
)

// Fixture streams with the three reference-class shapes of the paper's
// tables: a mostly in-sequence instruction stream, a scattered data
// stream, and a SEL-multiplexed mix of the two. Generated here rather
// than imported from workload to keep the codec package's tests
// self-contained.
func fixtureStreams(n int) []*trace.Stream {
	const stride = 4
	rng := rand.New(rand.NewSource(42))

	instr := trace.New("fixture.instr", 32)
	addr := uint64(0x00400000)
	for i := 0; i < n; i++ {
		switch {
		case rng.Float64() < 0.65:
			addr += stride
		case rng.Float64() < 0.85:
			addr = uint64(int64(addr) + int64(rng.Intn(128)-64)*stride)
		default:
			addr = 0x00400000 + uint64(rng.Intn(1<<16))*stride
		}
		instr.Append(addr, trace.Instr)
	}

	data := trace.New("fixture.data", 32)
	daddr := uint64(0x10000000)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.12 {
			daddr += stride
		} else {
			daddr = 0x10000000 + uint64(rng.Intn(1<<18))*stride
		}
		kind := trace.DataRead
		if rng.Float64() < 0.35 {
			kind = trace.DataWrite
		}
		data.Append(daddr, kind)
	}

	muxed := trace.New("fixture.muxed", 32)
	ii, di := 0, 0
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.3 && di < data.Len() {
			muxed.Entries = append(muxed.Entries, data.Entries[di])
			di++
		} else if ii < instr.Len() {
			muxed.Entries = append(muxed.Entries, instr.Entries[ii])
			ii++
		}
	}
	return []*trace.Stream{instr, data, muxed}
}

// TestBatchParity is the engine's correctness contract: for every
// registered codec and every fixture stream class, the batched fast path
// must agree bit-for-bit with the reference Run on Transitions, Cycles,
// MaxPerCycle — and on PerLine when requested.
func TestBatchParity(t *testing.T) {
	streams := fixtureStreams(20000)
	train := streams[2].Slice(0, 2000)
	opts := Options{Stride: 4, Train: train}
	for _, name := range Names() {
		for _, s := range streams {
			c := MustNew(name, 32, opts)
			slow, err := Run(c, s)
			if err != nil {
				t.Fatalf("%s/%s: reference Run: %v", name, s.Name, err)
			}
			for _, ro := range []RunOpts{
				{Verify: VerifyFull, PerLine: true},
				{Verify: VerifySampled},
				{Verify: VerifyNone},
			} {
				fast, err := RunFast(MustNew(name, 32, opts), s, ro)
				if err != nil {
					t.Fatalf("%s/%s %+v: RunFast: %v", name, s.Name, ro, err)
				}
				if fast.Transitions != slow.Transitions {
					t.Errorf("%s/%s %+v: transitions %d != %d", name, s.Name, ro, fast.Transitions, slow.Transitions)
				}
				if fast.Cycles != slow.Cycles {
					t.Errorf("%s/%s %+v: cycles %d != %d", name, s.Name, ro, fast.Cycles, slow.Cycles)
				}
				if fast.MaxPerCycle != slow.MaxPerCycle {
					t.Errorf("%s/%s %+v: maxPerCycle %d != %d", name, s.Name, ro, fast.MaxPerCycle, slow.MaxPerCycle)
				}
				if ro.PerLine {
					if !reflect.DeepEqual(fast.PerLine, slow.PerLine) {
						t.Errorf("%s/%s: per-line counts diverge", name, s.Name)
					}
				} else if fast.PerLine != nil {
					t.Errorf("%s/%s: PerLine should be nil without opts.PerLine", name, s.Name)
				}
			}
		}
	}
}

// TestBatchEncoderMatchesScalar drives the same symbols through Encode
// and EncodeBatch on separate encoder instances and requires identical
// words, for every codec that implements the batch interface natively.
func TestBatchEncoderMatchesScalar(t *testing.T) {
	s := fixtureStreams(8192)[2]
	syms := make([]Symbol, s.Len())
	for i, e := range s.Entries {
		syms[i] = SymbolOf(e)
	}
	for _, name := range Names() {
		c := MustNew(name, 32, Options{Stride: 4, Train: s.Slice(0, 1000)})
		scalarEnc := c.NewEncoder()
		want := make([]uint64, len(syms))
		for i, sym := range syms {
			want[i] = scalarEnc.Encode(sym)
		}
		got := make([]uint64, len(syms))
		// Split into uneven chunks to exercise state carry-over.
		be := AsBatch(c.NewEncoder())
		for lo := 0; lo < len(syms); {
			hi := lo + 1000 + lo%777
			if hi > len(syms) {
				hi = len(syms)
			}
			be.EncodeBatch(syms[lo:hi], got[lo:hi])
			lo = hi
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: word %d: batch %#x != scalar %#x", name, i, got[i], want[i])
				break
			}
		}
	}
}

// TestRunFastEmptyAndTiny covers the degenerate stream lengths where the
// first-drive convention matters.
func TestRunFastEmptyAndTiny(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		s := trace.New("tiny", 32)
		for i := 0; i < n; i++ {
			s.Append(uint64(0x1000+4*i), trace.Instr)
		}
		c := MustNew("t0", 32, Options{Stride: 4})
		slow := MustRun(c, s)
		fast := MustRunFast(MustNew("t0", 32, Options{Stride: 4}), s, RunOpts{PerLine: true})
		if fast.Transitions != slow.Transitions || fast.Cycles != slow.Cycles {
			t.Errorf("n=%d: fast %+v != slow %+v", n, fast, slow)
		}
	}
}

// TestRunFastDetectsMismatch ensures the verification path still fires:
// the deliberately broken decoder (shared with property_test.go) must be
// caught by VerifyFull and by VerifySampled within its prefix.
func TestRunFastDetectsMismatch(t *testing.T) {
	s := fixtureStreams(2000)[0]
	c := brokenCodec{}
	if _, err := RunFast(c, s, RunOpts{Verify: VerifyFull}); err == nil {
		t.Error("VerifyFull missed a decoder bug")
	}
	if _, err := RunFast(c, s, RunOpts{Verify: VerifySampled}); err == nil {
		t.Error("VerifySampled missed a decoder bug in its prefix")
	}
	if _, err := RunFast(c, s, RunOpts{Verify: VerifyNone}); err != nil {
		t.Errorf("VerifyNone should not decode at all: %v", err)
	}
}
