// Package codec implements the address bus encoding schemes studied in
// Benini et al., "Address Bus Encoding Techniques for System-Level Power
// Optimization" (DATE 1998), plus a small set of related codes from the
// literature the paper builds on.
//
// Paper codes:
//
//   - Binary: the identity code, reference for all savings figures.
//   - Gray: single-transition code for consecutive addresses (Su/Tsui/
//     Despain; stride-aware per Mehta/Owens/Irwin).
//   - Bus-Invert: Stan/Burleson redundant code, INV line, caps per-cycle
//     Hamming distance at ceil((N+1)/2).
//   - T0: the authors' asymptotic-zero-transition code; redundant INC line
//     freezes the bus during in-sequence runs.
//   - T0_BI: T0 for in-sequence patterns, bus-invert otherwise (INC+INV).
//   - Dual T0: T0 keyed to the SEL signal of a multiplexed bus; the
//     instruction-address reference register is updated only when SEL=1.
//   - Dual T0_BI: single INCV line; T0 on the instruction sub-stream,
//     bus-invert on the data sub-stream.
//
// Extension codes (beyond the paper, from the surrounding literature):
// Offset (delta) code, Working-Zone, Beach-style profiled XOR code, and
// partitioned Bus-Invert.
//
// Encoders and decoders are separate state machines, mirroring the two
// ends of a physical bus: the decoder sees only the encoded word and the
// SEL control signal.
package codec

import (
	"fmt"
	"sort"

	"busenc/internal/trace"
)

// Symbol is one reference presented to an encoder: the address to be
// transmitted and the SEL control signal (asserted for instruction
// addresses on a multiplexed bus). Codes that do not use SEL ignore it.
type Symbol struct {
	Addr uint64
	Sel  bool
}

// SymbolOf converts a trace entry to an encoder input.
func SymbolOf(e trace.Entry) Symbol { return Symbol{Addr: e.Addr, Sel: e.Sel()} }

// Encoder transforms an address stream into an encoded bus-word stream.
// The returned word occupies BusWidth bits: the low PayloadWidth bits are
// the address lines, redundant control lines (INC/INV/INCV/...) occupy the
// bits immediately above.
type Encoder interface {
	Encode(s Symbol) uint64
	Reset()
}

// Decoder recovers the address stream from the encoded words. SEL is
// available at the receiver in the standard bus interface, so it is an
// input to Decode.
type Decoder interface {
	Decode(word uint64, sel bool) uint64
	Reset()
}

// Codec describes an encoding scheme and creates encoder/decoder
// instances. Implementations are immutable and safe for concurrent use;
// the Encoder/Decoder instances they create are not.
type Codec interface {
	// Name is a short identifier, e.g. "t0" or "dualt0bi".
	Name() string
	// PayloadWidth is the number of address lines N.
	PayloadWidth() int
	// BusWidth is PayloadWidth plus the number of redundant lines.
	BusWidth() int
	NewEncoder() Encoder
	NewDecoder() Decoder
}

// Options carries the tunable parameters of the codes.
type Options struct {
	// Stride is the in-sequence address increment S (a power of two). The
	// zero value means 1.
	Stride uint64
	// Partitions is the number of independently inverted sub-buses for
	// the partitioned bus-invert code. The zero value means 1 (classic BI).
	Partitions int
	// Zones is the number of zone registers for the working-zone code.
	// The zero value means 4.
	Zones int
	// ZoneBits is the offset width of a working-zone hit. The zero value
	// means 8 (a 256-byte zone).
	ZoneBits int
	// Entries is the list size of the adaptive (self-organizing list)
	// code. The zero value means 16.
	Entries int
	// Train is the profiling stream for the Beach code; nil means the
	// Beach code degenerates to binary.
	Train *trace.Stream
}

func (o Options) stride() uint64 {
	if o.Stride == 0 {
		return 1
	}
	return o.Stride
}

func (o Options) partitions() int {
	if o.Partitions == 0 {
		return 1
	}
	return o.Partitions
}

// Factory builds a codec for a payload width with options.
type Factory func(width int, opts Options) (Codec, error)

var registry = map[string]Factory{}

// Register adds a codec factory under a unique name. It is intended to be
// called from package init functions and panics on duplicates.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic("codec: duplicate registration of " + name)
	}
	registry[name] = f
}

// New builds a registered codec by name.
func New(name string, width int, opts Options) (Codec, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("codec: unknown code %q (have %v)", name, Names())
	}
	return f(width, opts)
}

// Names lists the registered codec names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MustNew is New panicking on error; for tests and tables with known-good
// parameters.
func MustNew(name string, width int, opts Options) Codec {
	c, err := New(name, width, opts)
	if err != nil {
		panic(err)
	}
	return c
}

func checkWidth(name string, width, redundant int) error {
	if width <= 0 {
		return fmt.Errorf("codec %s: payload width must be positive, got %d", name, width)
	}
	if width+redundant > 64 {
		return fmt.Errorf("codec %s: bus width %d exceeds 64 lines", name, width+redundant)
	}
	return nil
}
