package codec

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"busenc/internal/trace"
)

// TestRunStreamParity is the streaming pipeline's correctness contract
// and the chunk-boundary state-carry test: the same stream evaluated at
// chunk sizes 1, 7, 4096 and len(stream) must produce transition counts
// identical to the reference Run for every registered codec — a codec
// whose sequential state (T0 reference register, BI inversion bit, INC
// lines) failed to carry across a chunk boundary would diverge at size
// 1 or 7 immediately.
func TestRunStreamParity(t *testing.T) {
	streams := fixtureStreams(20000)
	train := streams[2].Slice(0, 2000)
	opts := Options{Stride: 4, Train: train}
	chunkSizes := func(s *trace.Stream) []int { return []int{1, 7, 4096, s.Len()} }
	for _, name := range Names() {
		for _, s := range streams {
			slow, err := Run(MustNew(name, 32, opts), s)
			if err != nil {
				t.Fatalf("%s/%s: reference Run: %v", name, s.Name, err)
			}
			for _, size := range chunkSizes(s) {
				got, err := RunStream(MustNew(name, 32, opts), s.Chunks(size), RunOpts{Verify: VerifyFull, PerLine: true})
				if err != nil {
					t.Fatalf("%s/%s chunk %d: RunStream: %v", name, s.Name, size, err)
				}
				if got.Transitions != slow.Transitions {
					t.Errorf("%s/%s chunk %d: transitions %d != %d", name, s.Name, size, got.Transitions, slow.Transitions)
				}
				if got.Cycles != slow.Cycles {
					t.Errorf("%s/%s chunk %d: cycles %d != %d", name, s.Name, size, got.Cycles, slow.Cycles)
				}
				if got.MaxPerCycle != slow.MaxPerCycle {
					t.Errorf("%s/%s chunk %d: maxPerCycle %d != %d", name, s.Name, size, got.MaxPerCycle, slow.MaxPerCycle)
				}
				if !reflect.DeepEqual(got.PerLine, slow.PerLine) {
					t.Errorf("%s/%s chunk %d: per-line counts diverge", name, s.Name, size)
				}
				if got.Stream != s.Name {
					t.Errorf("%s/%s chunk %d: stream name %q", name, s.Name, size, got.Stream)
				}
			}
		}
	}
}

// TestRunStreamFromSerializedTrace pins the full pipeline: a trace
// serialized to the binary and text formats and streamed back through
// the zero-allocation parsers must evaluate identically to the
// in-memory reference.
func TestRunStreamFromSerializedTrace(t *testing.T) {
	s := fixtureStreams(12000)[2]
	c := MustNew("dualt0bi", 32, Options{Stride: 4})
	want := MustRun(MustNew("dualt0bi", 32, Options{Stride: 4}), s)

	var bin, txt bytes.Buffer
	if err := trace.WriteBinary(&bin, s); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteText(&txt, s); err != nil {
		t.Fatal(err)
	}
	br, err := trace.OpenBinary(bytes.NewReader(bin.Bytes()), "", trace.NewChunkPool(512))
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunStream(c, br, RunOpts{Verify: VerifySampled})
	if err != nil {
		t.Fatal(err)
	}
	if got.Transitions != want.Transitions || got.Cycles != want.Cycles {
		t.Errorf("binary stream: %d/%d != reference %d/%d", got.Transitions, got.Cycles, want.Transitions, want.Cycles)
	}
	tr, err := trace.OpenText(bytes.NewReader(txt.Bytes()), "", trace.NewChunkPool(512))
	if err != nil {
		t.Fatal(err)
	}
	got, err = RunStream(MustNew("dualt0bi", 32, Options{Stride: 4}), tr, RunOpts{Verify: VerifySampled})
	if err != nil {
		t.Fatal(err)
	}
	if got.Transitions != want.Transitions || got.Cycles != want.Cycles {
		t.Errorf("text stream: %d/%d != reference %d/%d", got.Transitions, got.Cycles, want.Transitions, want.Cycles)
	}
}

// TestRunStreamDetectsMismatch mirrors the RunFast verification test on
// the streaming path.
func TestRunStreamDetectsMismatch(t *testing.T) {
	s := fixtureStreams(2000)[0]
	c := brokenCodec{}
	if _, err := RunStream(c, s.Chunks(256), RunOpts{Verify: VerifyFull}); err == nil {
		t.Error("VerifyFull missed a decoder bug")
	}
	if _, err := RunStream(c, s.Chunks(256), RunOpts{Verify: VerifySampled}); err == nil {
		t.Error("VerifySampled missed a decoder bug in its prefix")
	}
	if _, err := RunStream(c, s.Chunks(256), RunOpts{Verify: VerifyNone}); err != nil {
		t.Errorf("VerifyNone should not decode at all: %v", err)
	}
}

// failingReader yields a few chunks then an error, to check propagation.
type failingReader struct {
	inner trace.ChunkReader
	after int
	err   error
}

func (f *failingReader) Next() (*trace.Chunk, error) {
	if f.after <= 0 {
		return nil, f.err
	}
	f.after--
	return f.inner.Next()
}
func (f *failingReader) Name() string { return f.inner.Name() }
func (f *failingReader) Width() int   { return f.inner.Width() }

func TestRunStreamPropagatesReaderError(t *testing.T) {
	s := fixtureStreams(4000)[0]
	sentinel := errors.New("disk on fire")
	r := &failingReader{inner: s.Chunks(512), after: 3, err: sentinel}
	_, err := RunStream(MustNew("t0", 32, Options{Stride: 4}), r, RunOpts{Verify: VerifyNone})
	if !errors.Is(err, sentinel) {
		t.Errorf("reader error not propagated: %v", err)
	}
}

func TestRunStreamEmptyAndTiny(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		s := trace.New("tiny", 32)
		for i := 0; i < n; i++ {
			s.Append(uint64(0x1000+4*i), trace.Instr)
		}
		slow := MustRun(MustNew("t0", 32, Options{Stride: 4}), s)
		got := MustRunStream(MustNew("t0", 32, Options{Stride: 4}), s.Chunks(2), RunOpts{PerLine: true})
		if got.Transitions != slow.Transitions || got.Cycles != slow.Cycles {
			t.Errorf("n=%d: stream %+v != slow %+v", n, got, slow)
		}
	}
}
