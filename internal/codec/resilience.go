package codec

import (
	"math/rand"

	"busenc/internal/trace"
)

// Fault-injection analysis (EXTENSION): redundant bus codes trade power
// for reliability in very different ways. A single-event upset on a
// binary bus corrupts exactly one transferred address; on a bus-invert
// bus at most one word (the polarity of a single transfer); but the
// T0-family decoders hold *state* — a flipped INC line or a corrupted
// frozen word desynchronizes the receiver's address register, and every
// regenerated address afterwards is wrong until the next out-of-sequence
// word resynchronizes it. Resilience quantifies that.

// FaultReport summarizes one fault-injection campaign.
type FaultReport struct {
	// Injections is the number of single-bit bus faults injected.
	Injections int
	// CorruptedWords is the total number of wrongly decoded addresses
	// across all injections.
	CorruptedWords int
	// MaxBurst is the longest run of consecutive wrong decodes after a
	// single fault.
	MaxBurst int
	// MeanBurst is CorruptedWords / Injections.
	MeanBurst float64
}

// Resilience injects, one at a time, a single-bit fault on a random bus
// line of a random word of the encoded stream, decodes the whole stream
// with a fresh decoder, and counts how many addresses come out wrong.
// Each injection is independent (one fault per campaign run), modeling
// single-event upsets. The SEL line is assumed fault-free (it is a
// control signal with its own integrity budget).
func Resilience(c Codec, s *trace.Stream, injections int, seed int64) FaultReport {
	rng := rand.New(rand.NewSource(seed))
	words := EncodeAll(c, s)
	rep := FaultReport{Injections: injections}
	if len(words) == 0 {
		return rep
	}
	for k := 0; k < injections; k++ {
		pos := rng.Intn(len(words))
		bit := uint(rng.Intn(c.BusWidth()))
		dec := c.NewDecoder()
		burst := 0
		longest := 0
		for i, w := range s.Entries {
			word := words[i]
			if i == pos {
				word ^= 1 << bit
			}
			got := dec.Decode(word, w.Sel())
			if got != w.Addr&maskOf(c.PayloadWidth()) {
				rep.CorruptedWords++
				burst++
				if burst > longest {
					longest = burst
				}
			} else {
				burst = 0
			}
		}
		if longest > rep.MaxBurst {
			rep.MaxBurst = longest
		}
	}
	if injections > 0 {
		rep.MeanBurst = float64(rep.CorruptedWords) / float64(injections)
	}
	return rep
}

func maskOf(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(width) - 1
}
