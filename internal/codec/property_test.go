package codec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"busenc/internal/trace"
)

// allCodecs instantiates every registered code at the given width with
// reasonable parameters, for cross-cutting property tests.
func allCodecs(t *testing.T, width int) []Codec {
	t.Helper()
	train := randomMixStream(width, 400, 99)
	zoneBits := 8
	if zoneBits >= width {
		zoneBits = width / 2
	}
	var out []Codec
	for _, name := range Names() {
		c, err := New(name, width, Options{Stride: 4, Train: train, ZoneBits: zoneBits})
		if err != nil {
			t.Fatalf("New(%s, %d): %v", name, width, err)
		}
		out = append(out, c)
	}
	return out
}

// randomMixStream generates a stream mixing sequential runs, random jumps
// and interleaved data accesses — adversarial input for round-trip tests.
func randomMixStream(width, n int, seed int64) *trace.Stream {
	rng := rand.New(rand.NewSource(seed))
	s := trace.New("mix", width)
	addr := rng.Uint64()
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0: // sequential instruction
			addr += 4
			s.Append(addr, trace.Instr)
		case 1: // instruction jump
			addr = rng.Uint64()
			s.Append(addr, trace.Instr)
		case 2:
			s.Append(rng.Uint64(), trace.DataRead)
		default:
			s.Append(rng.Uint64(), trace.DataWrite)
		}
	}
	return s
}

// TestRoundTripAllCodecs: Decode(Encode(x)) == x for every code on
// adversarial mixed streams, via the Run verifier.
func TestRoundTripAllCodecs(t *testing.T) {
	for _, width := range []int{8, 16, 32, 48} {
		for _, c := range allCodecs(t, width) {
			s := randomMixStream(width, 2000, int64(width))
			if _, err := Run(c, s); err != nil {
				t.Errorf("width %d: %v", width, err)
			}
		}
	}
}

// TestRoundTripQuick drives randomized (addr, sel) pairs one by one
// through paired encoder/decoder state machines.
func TestRoundTripQuick(t *testing.T) {
	const width = 32
	for _, c := range allCodecs(t, width) {
		c := c
		enc := c.NewEncoder()
		dec := c.NewDecoder()
		mask := uint64(1)<<width - 1
		f := func(addr uint64, sel bool) bool {
			w := enc.Encode(Symbol{Addr: addr, Sel: sel})
			return dec.Decode(w, sel) == addr&mask
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// TestRoundTripSequentialBias exercises the in-sequence paths heavily:
// quick's uniform addresses almost never trigger INC.
func TestRoundTripSequentialBias(t *testing.T) {
	for _, c := range allCodecs(t, 32) {
		enc := c.NewEncoder()
		dec := c.NewDecoder()
		rng := rand.New(rand.NewSource(5))
		addr := uint64(0x400000)
		for i := 0; i < 5000; i++ {
			sel := rng.Intn(3) > 0
			if rng.Intn(10) > 0 {
				addr += 4
			} else {
				addr = rng.Uint64() & 0xFFFFFFFF
			}
			w := enc.Encode(Symbol{Addr: addr, Sel: sel})
			if got := dec.Decode(w, sel); got != addr&0xFFFFFFFF {
				t.Fatalf("%s: step %d: decoded %#x, want %#x", c.Name(), i, got, addr)
			}
		}
	}
}

// TestResetRestoresInitialBehaviour: after Reset an encoder must emit the
// same words as a fresh instance.
func TestResetRestoresInitialBehaviour(t *testing.T) {
	syms := []Symbol{
		{Addr: 0x1000, Sel: true},
		{Addr: 0x1004, Sel: true},
		{Addr: 0xDEAD, Sel: false},
		{Addr: 0x1008, Sel: true},
	}
	for _, c := range allCodecs(t, 32) {
		enc := c.NewEncoder()
		first := make([]uint64, len(syms))
		for i, s := range syms {
			first[i] = enc.Encode(s)
		}
		enc.Reset()
		for i, s := range syms {
			if w := enc.Encode(s); w != first[i] {
				t.Errorf("%s: word %d after Reset = %#x, want %#x", c.Name(), i, w, first[i])
			}
		}
		dec := c.NewDecoder()
		dec.Reset() // Reset on a fresh decoder must be a no-op.
		for i, s := range syms {
			sel := s.Sel
			if got := dec.Decode(first[i], sel); got != s.Addr&0xFFFFFFFF {
				t.Errorf("%s: decode %d after encoder replay = %#x, want %#x", c.Name(), i, got, s.Addr)
			}
		}
	}
}

// TestRedundantLinesStayInBusWidth: encoders must never set bits at or
// above BusWidth.
func TestRedundantLinesStayInBusWidth(t *testing.T) {
	for _, c := range allCodecs(t, 32) {
		s := randomMixStream(32, 1000, 17)
		for i, w := range EncodeAll(c, s) {
			if c.BusWidth() < 64 && w>>uint(c.BusWidth()) != 0 {
				t.Errorf("%s: word %d = %#x uses lines above BusWidth %d", c.Name(), i, w, c.BusWidth())
			}
		}
	}
}

// TestBusWidthConsistency: BusWidth >= PayloadWidth always.
func TestBusWidthConsistency(t *testing.T) {
	for _, c := range allCodecs(t, 32) {
		if c.BusWidth() < c.PayloadWidth() {
			t.Errorf("%s: BusWidth %d < PayloadWidth %d", c.Name(), c.BusWidth(), c.PayloadWidth())
		}
		if c.PayloadWidth() != 32 {
			t.Errorf("%s: PayloadWidth = %d, want 32", c.Name(), c.PayloadWidth())
		}
	}
}

// TestT0ZeroTransitionInvariant (paper Section 2.2): on an unlimited
// in-sequence stream, T0-family codes asymptotically cost zero transitions
// per address.
func TestT0ZeroTransitionInvariant(t *testing.T) {
	for _, name := range []string{"t0", "t0bi", "dualt0", "dualt0bi"} {
		c := MustNew(name, 32, Options{Stride: 4})
		s := trace.New("seq", 32)
		for i := 0; i < 10000; i++ {
			s.Append(0x400000+4*uint64(i), trace.Instr)
		}
		res := MustRun(c, s)
		if res.Transitions > 2 {
			t.Errorf("%s: %d transitions on a pure sequential stream, want <= 2", name, res.Transitions)
		}
	}
}

// TestBIWorstCaseBound (Stan/Burleson): per-cycle transitions never exceed
// ceil((N+1)/2) for the classic bus-invert code.
func TestBIWorstCaseBound(t *testing.T) {
	const n = 16
	c := MustNew("businvert", n, Options{})
	s := randomMixStream(n, 5000, 23)
	res := MustRun(c, s)
	if res.MaxPerCycle > (n+2)/2 {
		t.Errorf("max per-cycle = %d, bound is %d", res.MaxPerCycle, (n+2)/2)
	}
}

// TestSavingsVsComputation checks the savings arithmetic.
func TestSavingsVsComputation(t *testing.T) {
	ref := Result{Transitions: 100}
	r := Result{Transitions: 64}
	if got := r.SavingsVs(ref); got != 0.36 {
		t.Errorf("SavingsVs = %v, want 0.36", got)
	}
	if got := r.SavingsVs(Result{}); got != 0 {
		t.Errorf("SavingsVs empty reference = %v, want 0", got)
	}
}

// TestRunDetectsBrokenCodec: Run must report a round-trip failure.
func TestRunDetectsBrokenCodec(t *testing.T) {
	s := randomMixStream(8, 10, 3)
	if _, err := Run(brokenCodec{}, s); err == nil {
		t.Error("Run accepted a codec whose decoder is wrong")
	}
}

type brokenCodec struct{}

func (brokenCodec) Name() string        { return "broken" }
func (brokenCodec) PayloadWidth() int   { return 8 }
func (brokenCodec) BusWidth() int       { return 8 }
func (brokenCodec) NewEncoder() Encoder { return brokenEnd{} }
func (brokenCodec) NewDecoder() Decoder { return brokenEnd{} }

type brokenEnd struct{}

func (brokenEnd) Encode(s Symbol) uint64         { return s.Addr & 0xFF }
func (brokenEnd) Decode(w uint64, _ bool) uint64 { return (w + 1) & 0xFF }
func (brokenEnd) Reset()                         {}
