package codec

import (
	"testing"
)

// TestStateWireRoundTripEveryCodec pins the wire layer's core property:
// Marshal(Snapshot) then Restore(Unmarshal) into a fresh encoder — the
// distributed sweep's cross-process hand-off — must reproduce the same
// suffix words as the uninterrupted encoder, for every registered codec
// at a spread of split points.
func TestStateWireRoundTripEveryCodec(t *testing.T) {
	s := randomMixStream(32, 2000, 23)
	for _, c := range allCodecs(t, 32) {
		for _, split := range []int{0, 1, 2, 137, 999, s.Len()} {
			enc := c.NewEncoder()
			encodeRange(enc, s, 0, split)
			st := enc.(StateCodec).Snapshot()
			want := encodeRange(enc, s, split, s.Len())

			data, err := MarshalState(st)
			if err != nil {
				t.Fatalf("%s split=%d: MarshalState: %v", c.Name(), split, err)
			}
			back, err := UnmarshalState(data)
			if err != nil {
				t.Fatalf("%s split=%d: UnmarshalState: %v", c.Name(), split, err)
			}
			fresh := c.NewEncoder()
			fresh.(StateCodec).Restore(back)
			if got := encodeRange(fresh, s, split, s.Len()); !equalWords(got, want) {
				t.Errorf("%s split=%d: suffix diverges after wire round trip", c.Name(), split)
			}
		}
	}
}

// TestStateWireRejectsGarbage pins the decoder's failure modes: empty
// input, unknown tags, truncation at every byte of a real encoding, and
// trailing bytes must all error, never panic or return a bogus state.
func TestStateWireRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalState(nil); err == nil {
		t.Error("empty state decoded")
	}
	if _, err := UnmarshalState([]byte{0xFF}); err == nil {
		t.Error("unknown tag decoded")
	}
	if _, err := MarshalState("not a state"); err == nil {
		t.Error("foreign state type marshaled")
	}

	s := randomMixStream(32, 500, 5)
	for _, c := range allCodecs(t, 32) {
		enc := c.NewEncoder()
		encodeRange(enc, s, 0, s.Len())
		data, err := MarshalState(enc.(StateCodec).Snapshot())
		if err != nil {
			t.Fatalf("%s: MarshalState: %v", c.Name(), err)
		}
		for cut := 1; cut < len(data); cut++ {
			if _, err := UnmarshalState(data[:cut]); err == nil {
				t.Errorf("%s: truncation at %d/%d decoded", c.Name(), cut, len(data))
			}
		}
		if _, err := UnmarshalState(append(append([]byte(nil), data...), 0)); err == nil {
			t.Errorf("%s: trailing byte accepted", c.Name())
		}
	}
}
