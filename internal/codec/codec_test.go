package codec

import (
	"math/rand"
	"strings"
	"testing"

	"busenc/internal/trace"
)

// drive runs symbols through a fresh encoder and returns the encoded words.
func drive(c Codec, syms []Symbol) []uint64 {
	enc := c.NewEncoder()
	out := make([]uint64, len(syms))
	for i, s := range syms {
		out[i] = enc.Encode(s)
	}
	return out
}

// instrSyms builds an all-instruction symbol sequence from addresses.
func instrSyms(addrs ...uint64) []Symbol {
	out := make([]Symbol, len(addrs))
	for i, a := range addrs {
		out[i] = Symbol{Addr: a, Sel: true}
	}
	return out
}

func streamOf(width int, syms []Symbol) *trace.Stream {
	s := trace.New("test", width)
	for _, sym := range syms {
		k := trace.DataRead
		if sym.Sel {
			k = trace.Instr
		}
		s.Append(sym.Addr, k)
	}
	return s
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	for _, want := range []string{"binary", "gray", "businvert", "t0", "t0bi", "dualt0", "dualt0bi", "offset", "workzone", "beach"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("codec %q not registered (have %v)", want, names)
		}
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("nope", 32, Options{}); err == nil {
		t.Error("unknown codec accepted")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Errorf("error does not name the codec: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic on bad name")
		}
	}()
	MustNew("nope", 32, Options{})
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register("binary", func(int, Options) (Codec, error) { return nil, nil })
}

func TestWidthValidation(t *testing.T) {
	for _, name := range []string{"binary", "gray", "businvert", "t0", "t0bi", "dualt0", "dualt0bi", "offset"} {
		if _, err := New(name, 0, Options{}); err == nil {
			t.Errorf("%s accepted width 0", name)
		}
		if _, err := New(name, 65, Options{}); err == nil {
			t.Errorf("%s accepted width 65", name)
		}
	}
	// Codes with redundant lines must reject widths whose bus exceeds 64.
	if _, err := New("t0", 64, Options{}); err == nil {
		t.Error("t0 accepted width 64 (bus would be 65 lines)")
	}
	if _, err := New("t0bi", 63, Options{}); err == nil {
		t.Error("t0bi accepted width 63 (bus would be 65 lines)")
	}
}

func TestStrideValidation(t *testing.T) {
	for _, name := range []string{"gray", "t0", "t0bi", "dualt0", "dualt0bi"} {
		if _, err := New(name, 32, Options{Stride: 3}); err == nil {
			t.Errorf("%s accepted non-power-of-two stride", name)
		}
	}
}

func TestBinaryIsIdentity(t *testing.T) {
	c := MustNew("binary", 16, Options{})
	if c.BusWidth() != 16 || c.PayloadWidth() != 16 {
		t.Errorf("binary widths: payload %d, bus %d", c.PayloadWidth(), c.BusWidth())
	}
	enc := c.NewEncoder()
	dec := c.NewDecoder()
	for _, a := range []uint64{0, 1, 0xFFFF, 0x12345} {
		w := enc.Encode(Symbol{Addr: a})
		if w != a&0xFFFF {
			t.Errorf("Encode(%#x) = %#x", a, w)
		}
		if got := dec.Decode(w, false); got != a&0xFFFF {
			t.Errorf("Decode(%#x) = %#x", w, got)
		}
	}
}

func TestGrayHelpers(t *testing.T) {
	for x := uint64(0); x < 1024; x++ {
		if FromGray(ToGray(x)) != x {
			t.Fatalf("FromGray(ToGray(%d)) != %d", x, x)
		}
	}
	// Adjacent values differ by exactly one bit in Gray code.
	for x := uint64(0); x < 1024; x++ {
		d := ToGray(x) ^ ToGray(x+1)
		if d == 0 || d&(d-1) != 0 {
			t.Fatalf("ToGray(%d) and ToGray(%d) differ in more than one bit", x, x+1)
		}
	}
}

func TestGraySingleTransitionPerSequentialAddress(t *testing.T) {
	for _, stride := range []uint64{1, 4} {
		c := MustNew("gray", 32, Options{Stride: stride})
		syms := make([]Symbol, 64)
		for i := range syms {
			syms[i] = Symbol{Addr: 0x400000 + uint64(i)*stride, Sel: true}
		}
		words := drive(c, syms)
		for i := 1; i < len(words); i++ {
			d := words[i-1] ^ words[i]
			if d == 0 || d&(d-1) != 0 {
				t.Errorf("stride %d: step %d toggles more than one line (%#x -> %#x)", stride, i, words[i-1], words[i])
			}
		}
	}
}

func TestGrayStrideMustFit(t *testing.T) {
	if _, err := NewGray(4, 16); err == nil {
		t.Error("gray accepted a stride wider than the bus")
	}
}

func TestBusInvertCapsHammingDistance(t *testing.T) {
	const n = 8
	c := MustNew("businvert", n, Options{})
	if c.BusWidth() != n+1 {
		t.Fatalf("BusWidth = %d", c.BusWidth())
	}
	rng := rand.New(rand.NewSource(7))
	enc := c.NewEncoder()
	prev := enc.Encode(Symbol{Addr: rng.Uint64()})
	for i := 0; i < 2000; i++ {
		w := enc.Encode(Symbol{Addr: rng.Uint64()})
		h := popcount(prev ^ w)
		if h > (n+1+1)/2 {
			t.Fatalf("step %d: %d transitions exceed ceil((N+1)/2)", i, h)
		}
		prev = w
	}
}

func TestBusInvertDecisions(t *testing.T) {
	// 8-bit bus, starting state 0 (INV=0).
	c := MustNew("businvert", 8, Options{})
	enc := c.NewEncoder()
	// 0x0F: H=4 vs threshold 4 -> not inverted.
	if w := enc.Encode(Symbol{Addr: 0x0F}); w != 0x0F {
		t.Errorf("H=N/2 case: got %#x, want 0x0F (no invert)", w)
	}
	// From 0x0F to 0xF0: H=8 > 4 -> inverted: payload ^0xF0 = 0x0F, INV set.
	if w := enc.Encode(Symbol{Addr: 0xF0}); w != 0x0F|1<<8 {
		t.Errorf("H>N/2 case: got %#x, want %#x", w, uint64(0x0F|1<<8))
	}
	// Decoder undoes the inversion regardless of its own history.
	dec := c.NewDecoder()
	if got := dec.Decode(0x0F|1<<8, false); got != 0xF0 {
		t.Errorf("Decode inverted word = %#x, want 0xF0", got)
	}
	if got := dec.Decode(0x0F, false); got != 0x0F {
		t.Errorf("Decode plain word = %#x, want 0x0F", got)
	}
}

func TestBusInvertPartitioned(t *testing.T) {
	c, err := NewBusInvert(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.BusWidth() != 20 {
		t.Errorf("BusWidth = %d, want 20", c.BusWidth())
	}
	// Each nibble decides independently: flipping one nibble completely
	// should only assert that nibble's INV line.
	enc := c.NewEncoder()
	enc.Encode(Symbol{Addr: 0x0000})
	w := enc.Encode(Symbol{Addr: 0x000F})
	if w&0xFFFF != 0x0000 || w>>16 != 0b0001 {
		t.Errorf("partitioned invert: got %#x", w)
	}
}

func TestBusInvertPartitionValidation(t *testing.T) {
	if _, err := NewBusInvert(4, 8); err == nil {
		t.Error("more partitions than lines accepted")
	}
	if _, err := NewBusInvert(60, 8); err == nil {
		t.Error("bus width over 64 accepted")
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
