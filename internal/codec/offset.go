package codec

import "busenc/internal/bus"

func init() {
	Register("offset", func(width int, _ Options) (Codec, error) {
		return NewOffset(width)
	})
}

// Offset is an irredundant difference code (EXTENSION — not in the DATE'98
// paper, but a standard point of comparison in the later bus-encoding
// literature): the word transmitted is the two's-complement difference
// between the current and the previous address. An unlimited in-sequence
// stream transmits the constant stride after the first reference, so —
// like T0 — its asymptotic cost is zero transitions per address, without a
// redundant line; unlike T0, a single corrupted word desynchronizes the
// receiver, and random streams see avalanche on the subtractor output.
type Offset struct {
	width int
	mask  uint64
}

// NewOffset returns the offset (difference) code over width lines.
func NewOffset(width int) (*Offset, error) {
	if err := checkWidth("offset", width, 0); err != nil {
		return nil, err
	}
	return &Offset{width: width, mask: bus.Mask(width)}, nil
}

// Name implements Codec.
func (o *Offset) Name() string { return "offset" }

// PayloadWidth implements Codec.
func (o *Offset) PayloadWidth() int { return o.width }

// BusWidth implements Codec.
func (o *Offset) BusWidth() int { return o.width }

// NewEncoder implements Codec.
func (o *Offset) NewEncoder() Encoder { return &offsetEncoder{o: o} }

// NewDecoder implements Codec.
func (o *Offset) NewDecoder() Decoder { return &offsetDecoder{o: o} }

type offsetEncoder struct {
	o    *Offset
	prev uint64
}

func (e *offsetEncoder) Encode(s Symbol) uint64 {
	addr := s.Addr & e.o.mask
	out := (addr - e.prev) & e.o.mask
	e.prev = addr
	return out
}

func (e *offsetEncoder) Reset() { e.prev = 0 }

// offsetState is the shared Snapshot payload of both offset ends: the
// previously seen masked address.
type offsetState struct{ prev uint64 }

// Snapshot implements StateCodec.
func (e *offsetEncoder) Snapshot() State { return offsetState{e.prev} }

// Restore implements StateCodec.
func (e *offsetEncoder) Restore(st State) { e.prev = st.(offsetState).prev }

// SeedFrom implements Seeder: the encoder state is exactly the previous
// masked address.
func (e *offsetEncoder) SeedFrom(prev Symbol) { e.prev = prev.Addr & e.o.mask }

// EncodePlanes implements PlaneEncoder. Lane i of the output is
// (a_i - a_{i-1}) mod 2^width: build the lane-shifted predecessor
// planes p (a shifted up one lane, with the pre-block address feeding
// lane 0 — zero when First, matching a fresh encoder) and run a
// bit-sliced borrow subtract a - p. The borrow chain runs across
// planes but stays within each lane, so 64 independent subtracts cost
// one ripple pass.
func (o *Offset) EncodePlanes(blk *PlaneBlock, scratch *[64]uint64) (*[64]uint64, uint64) {
	a := blk.A
	prev := blk.PrevRaw & o.mask // zero when blk.First
	width := o.width
	if width > 64 {
		width = 64 // unreachable; aids bounds-check elimination
	}
	var bor uint64
	for b := 0; b < width; b++ {
		ab := a[b]
		pb := ab<<1 | (prev>>uint(b))&1
		x := ab ^ pb
		scratch[b] = x ^ bor
		bor = ^ab&pb | ^x&bor
	}
	return scratch, (blk.Last - blk.Prev2) & o.mask
}

type offsetDecoder struct {
	o    *Offset
	prev uint64
}

func (d *offsetDecoder) Decode(word uint64, _ bool) uint64 {
	addr := (d.prev + word) & d.o.mask
	d.prev = addr
	return addr
}

func (d *offsetDecoder) Reset() { d.prev = 0 }

// Snapshot implements StateCodec.
func (d *offsetDecoder) Snapshot() State { return offsetState{d.prev} }

// Restore implements StateCodec.
func (d *offsetDecoder) Restore(st State) { d.prev = st.(offsetState).prev }

// SeedFrom implements Seeder, so shard-parallel verification can seed a
// mid-stream decoder from the last prefix address.
func (d *offsetDecoder) SeedFrom(prev Symbol) { d.prev = prev.Addr & d.o.mask }
