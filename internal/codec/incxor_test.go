package codec

import (
	"testing"

	"busenc/internal/bus"
	"busenc/internal/trace"
)

func TestIncXorSequentialIsZeroWord(t *testing.T) {
	c := MustNew("incxor", 32, Options{Stride: 4})
	if c.BusWidth() != 32 {
		t.Fatalf("incxor must be irredundant, BusWidth = %d", c.BusWidth())
	}
	syms := make([]Symbol, 50)
	for i := range syms {
		syms[i] = Symbol{Addr: 0x400000 + 4*uint64(i), Sel: true}
	}
	words := drive(c, syms)
	// After the first word (the raw address) the bus carries constant 0.
	for i := 1; i < len(words); i++ {
		if words[i] != 0 {
			t.Fatalf("word %d = %#x, want 0", i, words[i])
		}
	}
	// Total transitions: only the first->second settling.
	if total := bus.CountTransitions(words[1:], 32); total != 0 {
		t.Errorf("steady-state transitions = %d", total)
	}
}

func TestIncXorJumpTransmitsPredictionError(t *testing.T) {
	c := MustNew("incxor", 16, Options{Stride: 1})
	enc := c.NewEncoder()
	enc.Encode(Symbol{Addr: 0x10})
	// Prediction is 0x11; jumping to 0x13 transmits 0x11^0x13 = 0x02.
	if w := enc.Encode(Symbol{Addr: 0x13}); w != 0x02 {
		t.Errorf("prediction-error word = %#x, want 0x02", w)
	}
}

func TestIncXorRoundTripWrap(t *testing.T) {
	c := MustNew("incxor", 16, Options{Stride: 4})
	enc := c.NewEncoder()
	dec := c.NewDecoder()
	for _, a := range []uint64{0xFFFC, 0x0000, 0x0004, 0x1234, 0xFFFF} {
		w := enc.Encode(Symbol{Addr: a})
		if got := dec.Decode(w, false); got != a {
			t.Errorf("decoded %#x, want %#x", got, a)
		}
	}
}

func TestIncXorBeatsBinaryOnInstrStreams(t *testing.T) {
	s := trace.New("instr", 32)
	addr := uint64(0x400000)
	for i := 0; i < 2000; i++ {
		if i%17 == 0 {
			addr = 0x400000 + uint64(i*64)
		}
		addr += 4
		s.Append(addr, trace.Instr)
	}
	bin := MustRun(MustNew("binary", 32, Options{}), s)
	ix := MustRun(MustNew("incxor", 32, Options{Stride: 4}), s)
	if ix.Transitions >= bin.Transitions {
		t.Errorf("incxor %d vs binary %d", ix.Transitions, bin.Transitions)
	}
}

func TestIncXorValidation(t *testing.T) {
	if _, err := New("incxor", 32, Options{Stride: 3}); err == nil {
		t.Error("non-power-of-two stride accepted")
	}
	if _, err := New("incxor", 0, Options{}); err == nil {
		t.Error("zero width accepted")
	}
}
