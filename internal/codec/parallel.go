package codec

import (
	"runtime"
	"sync"
	"time"

	"busenc/internal/bus"
	"busenc/internal/obs"
	"busenc/internal/trace"
)

// Shard-parallel stream pricing. Encoder state chains entry-to-entry,
// so a naive split of a stream across workers is wrong for every code
// except binary. RunParallel splits the stream into P contiguous shards
// anyway and makes the split exact by reconstructing each shard's
// encoder state at its boundary:
//
//   - Seeder codecs (state is a function of the previous symbol alone)
//     get their boundary state in O(1) from the last pre-boundary
//     symbol;
//   - every other StateCodec gets it from one sequential state-only
//     sweep — a pass that runs the batch kernel into a discarded
//     scratch buffer (no bus counting, no verification) and captures a
//     Snapshot at each shard boundary. The sweep costs one encode pass
//     over the prefix, which bounds the theoretical speedup for sweep
//     codecs at roughly 2x (encode once to seed, once to price) —
//     still worthwhile because counting, verification and the Result
//     bookkeeping all parallelize, and because EvaluateParallel runs
//     many codecs' sweeps concurrently.
//
// Each shard worker then re-encodes the single entry just before its
// boundary (producing the exact word the sequential run drove last),
// primes its private bus with it (bus.Prime: state only, no cycle), and
// prices its shard with the regular BatchEncoder chunk loop. The
// reduction is deterministic: results land in a fixed slice slot per
// shard, buses merge in ascending shard order (bus.Merge), and the
// lowest shard's error wins — no atomics or locks anywhere in the hot
// loop. parallel_test.go pins RunParallel == Run for every registered
// codec across shard counts {1,2,3,16}, non-dividing stream lengths and
// adversarial cut positions.

// ParallelOpts tunes RunParallel.
type ParallelOpts struct {
	// Shards is the number of contiguous shards P; <= 0 means
	// GOMAXPROCS. The effective count is clamped so every shard has at
	// least MinShardLen entries; 1 delegates to RunFast.
	Shards int
	// Verify selects decode round-trip checking. Shard 0 verifies its
	// prefix exactly as RunFast would (so VerifySampled checks the same
	// first entries); under VerifyFull, later shards also verify when
	// the codec's decoder can be seeded mid-stream (a Seeder), which
	// covers the stateless and previous-symbol codes. Prefix-dependent
	// decoders cannot be verified mid-stream without a full sequential
	// decode, so their coverage under VerifyFull is shard 0's range.
	Verify VerifyMode
	// PerLine requests per-line transition counts in Result.PerLine.
	PerLine bool
	// Kernel selects the pricing kernel per shard (KernelAuto by
	// default), with the same routing rules as RunOpts.Kernel.
	Kernel Kernel
}

// MinShardLen is the smallest shard worth a goroutine: below this the
// per-shard seeding and reduction overhead dominates the pricing work.
const MinShardLen = 512

// RunParallel is the shard-parallel counterpart of RunFast: identical
// Transitions, Cycles, MaxPerCycle and PerLine for every codec, with
// the stream priced on up to opts.Shards goroutines. Codecs whose
// encoders do not implement StateCodec fall back to RunFast, as do
// streams too short to shard.
func RunParallel(c Codec, s *trace.Stream, opts ParallelOpts) (Result, error) {
	p := opts.Shards
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if max := s.Len() / MinShardLen; p > max {
		p = max
	}
	probe := c.NewEncoder()
	if _, ok := probe.(StateCodec); !ok || p <= 1 {
		return RunFast(c, s, RunOpts{Verify: opts.Verify, PerLine: opts.PerLine, Kernel: opts.Kernel})
	}
	cuts := shardCuts(s.Len(), p)
	return runParallelCuts(c, s, cuts, opts)
}

// shardCuts returns p+1 ascending cut points over [0, n] with shard
// sizes as equal as possible (cuts[k] = k*n/p).
func shardCuts(n, p int) []int {
	cuts := make([]int, p+1)
	for k := 0; k <= p; k++ {
		cuts[k] = k * n / p
	}
	return cuts
}

// runParallelCuts prices the stream over the given cut points. Split
// from RunParallel so tests can force adversarial boundaries (length-1
// shards, cuts on chunk edges) that the equal-split policy never
// produces. Every shard must be non-empty: cuts must be strictly
// ascending from 0 to s.Len().
func runParallelCuts(c Codec, s *trace.Stream, cuts []int, opts ParallelOpts) (Result, error) {
	p := len(cuts) - 1
	entries := s.Entries
	root := obs.StartSpan("codec.run_parallel", obs.StageEval).WithCodec(c.Name()).WithStream(s.Name)

	// Build one seeded encoder per shard: encs[k] holds the state of
	// the sequential run after entries [0, cuts[k]-1) — i.e. entering
	// the boundary entry that worker k re-encodes to prime its bus.
	encs := make([]Encoder, p)
	encs[0] = c.NewEncoder()
	var sweepEntries int64
	if _, ok := encs[0].(Seeder); ok {
		for k := 1; k < p; k++ {
			enc := c.NewEncoder()
			if lead := cuts[k] - 1; lead > 0 {
				enc.(Seeder).SeedFrom(SymbolOf(entries[lead-1]))
			}
			encs[k] = enc
		}
	} else {
		// State-only sweep: run the batch kernel over the prefix into a
		// pooled scratch buffer, snapshotting at each boundary. Nothing
		// is counted or verified here — the shards redo that work in
		// parallel.
		ssp := root.Child("codec.seed_sweep", obs.StageEncode)
		sweep := c.NewEncoder()
		sc := sweep.(StateCodec)
		be := AsBatch(sweep)
		buf := runBufPool.Get().(*runBuf)
		j := 0
		for k := 1; k < p; k++ {
			lead := cuts[k] - 1
			for j < lead {
				m := lead - j
				if m > runChunk {
					m = runChunk
				}
				syms := buf.syms[:m]
				for i := 0; i < m; i++ {
					syms[i] = SymbolOf(entries[j+i])
				}
				be.EncodeBatch(syms, buf.words[:m])
				j += m
			}
			enc := c.NewEncoder()
			enc.(StateCodec).Restore(sc.Snapshot())
			encs[k] = enc
		}
		runBufPool.Put(buf)
		sweepEntries = int64(cuts[p-1] - 1)
		if sweepEntries < 0 {
			sweepEntries = 0
		}
		ssp.End()
	}

	buses := make([]*bus.Bus, p)
	errs := make([]error, p)
	timed := parallelTimed()
	var wg sync.WaitGroup
	wg.Add(p)
	for k := 0; k < p; k++ {
		go func(k int) {
			defer wg.Done()
			ksp := root.Child("codec.shard", obs.StageEncode).WithShard(k)
			var t0 time.Time
			if timed {
				t0 = time.Now()
			}
			bd := Boundary{First: k == 0}
			if k > 0 {
				lead := cuts[k] - 1
				bd.Prev = entries[lead]
				if lead > 0 {
					bd.SeedSym = SymbolOf(entries[lead-1])
					bd.HaveSeedSym = true
				}
			}
			b, err := priceShard(c, entries[cuts[k]:cuts[k+1]], bd, cuts[k], encs[k], opts)
			if timed {
				RecordShard(time.Since(t0).Nanoseconds())
			}
			ksp.EndErr(err)
			buses[k], errs[k] = b, err
		}(k)
	}
	wg.Wait()
	msp := root.Child("codec.merge", obs.StageMerge)
	merged, err := bus.MergeSlots(buses, errs)
	if err != nil {
		msp.EndErr(err)
		root.EndErr(err)
		return Result{}, err
	}
	msp.End()
	root.End()
	RecordParallel(c.Name(), p, sweepEntries)
	RecordRun(c.Name(), int64(len(entries)), merged.Transitions())
	return Result{
		Codec:       c.Name(),
		Stream:      s.Name,
		BusWidth:    c.BusWidth(),
		Transitions: merged.Transitions(),
		Cycles:      merged.Cycles(),
		PerLine:     merged.PerLine(),
		MaxPerCycle: merged.MaxPerCycle(),
	}, nil
}
