package codec

import (
	"fmt"

	"busenc/internal/bus"
)

func init() {
	Register("dualt0", func(width int, opts Options) (Codec, error) {
		return NewDualT0(width, opts.stride())
	})
}

// DualT0 is the paper's second mixed code (Section 3.2), for multiplexed
// address buses. The SEL control signal — already present on a standard
// muxed bus interface — is asserted when an instruction address (stream
// alpha) is transmitted. The T0 code is applied, and the reference
// registers updated, only when SEL is asserted; data addresses (stream
// beta) are transmitted in plain binary while the registers hold (eq. 8/9):
//
//	(B, INC) = (B(t-1), 1)  if SEL=1 and b(t) = ref + S
//	         = (b(t),   0)  otherwise
//
// where ref is the most recent instruction address (updated only on SEL=1
// cycles). Note that the frozen value B(t-1) may be a data address — the
// receiver reconstructs the instruction address as ref + S regardless.
type DualT0 struct {
	width  int
	mask   uint64
	stride uint64
	incBit uint
}

// NewDualT0 returns the dual T0 code over width lines with stride S.
func NewDualT0(width int, stride uint64) (*DualT0, error) {
	if err := checkWidth("dualt0", width, 1); err != nil {
		return nil, err
	}
	if stride == 0 || stride&(stride-1) != 0 {
		return nil, fmt.Errorf("codec dualt0: stride must be a power of two, got %d", stride)
	}
	return &DualT0{width: width, mask: bus.Mask(width), stride: stride, incBit: uint(width)}, nil
}

// Name implements Codec.
func (t *DualT0) Name() string { return "dualt0" }

// PayloadWidth implements Codec.
func (t *DualT0) PayloadWidth() int { return t.width }

// BusWidth implements Codec.
func (t *DualT0) BusWidth() int { return t.width + 1 }

// NewEncoder implements Codec.
func (t *DualT0) NewEncoder() Encoder { return &dualT0Encoder{t: t} }

// NewDecoder implements Codec.
func (t *DualT0) NewDecoder() Decoder { return &dualT0Decoder{t: t} }

type dualT0Encoder struct {
	t        *DualT0
	ref      uint64 // last instruction address (~b of eq. 9)
	refValid bool
	prevBus  uint64 // previous payload lines
}

func (e *dualT0Encoder) Encode(s Symbol) uint64 {
	t := e.t
	addr := s.Addr & t.mask
	var out uint64
	if s.Sel && e.refValid && addr == (e.ref+t.stride)&t.mask {
		out = e.prevBus | 1<<t.incBit
	} else {
		out = addr
		e.prevBus = addr
	}
	if s.Sel {
		e.ref = addr
		e.refValid = true
	}
	return out
}

func (e *dualT0Encoder) Reset() { e.ref, e.refValid, e.prevBus = 0, false, 0 }

// dualT0State is the Snapshot payload; ref is the most recent SEL=1
// address anywhere in the prefix, so dual T0 is a sweep codec.
type dualT0State struct {
	ref      uint64
	refValid bool
	prevBus  uint64
}

// Snapshot implements StateCodec.
func (e *dualT0Encoder) Snapshot() State { return dualT0State{e.ref, e.refValid, e.prevBus} }

// Restore implements StateCodec.
func (e *dualT0Encoder) Restore(st State) {
	s := st.(dualT0State)
	e.ref, e.refValid, e.prevBus = s.ref, s.refValid, s.prevBus
}

// EncodeBatch implements BatchEncoder with the encoder state in locals.
func (e *dualT0Encoder) EncodeBatch(syms []Symbol, out []uint64) {
	t := e.t
	mask, stride := t.mask, t.stride
	incMask := uint64(1) << t.incBit
	ref, refValid, prevBus := e.ref, e.refValid, e.prevBus
	for i := range syms {
		s := syms[i]
		addr := s.Addr & mask
		if s.Sel && refValid && addr == (ref+stride)&mask {
			out[i] = prevBus | incMask
		} else {
			out[i] = addr
			prevBus = addr
		}
		if s.Sel {
			ref = addr
			refValid = true
		}
	}
	e.ref, e.refValid, e.prevBus = ref, refValid, prevBus
}

type dualT0Decoder struct {
	t   *DualT0
	ref uint64
}

func (d *dualT0Decoder) Decode(word uint64, sel bool) uint64 {
	t := d.t
	var addr uint64
	if word&(1<<t.incBit) != 0 {
		addr = (d.ref + t.stride) & t.mask
	} else {
		addr = word & t.mask
	}
	if sel {
		d.ref = addr
	}
	return addr
}

func (d *dualT0Decoder) Reset() { d.ref = 0 }
