package codec

import (
	"fmt"
	"math/bits"

	"busenc/internal/bus"
)

func init() {
	Register("t0bi", func(width int, opts Options) (Codec, error) {
		return NewT0BI(width, opts.stride())
	})
}

// T0BI is the first mixed code of the paper (Section 3.1): two redundant
// lines, INC and INV. In-sequence addresses freeze the bus with INC
// asserted, exactly as in T0; out-of-sequence addresses fall back to
// bus-invert over the N+2 lines, with threshold (N+2)/2 (eq. 6):
//
//	(B, INC, INV) = (B(t-1), 1, 0)  if b(t) = b(t-1) + S
//	              = (b(t),   0, 0)  if not in seq and H <= (N+2)/2
//	              = (~b(t),  0, 1)  if not in seq and H >  (N+2)/2
//
// where H is the Hamming distance between the previous encoded word
// (including both redundant lines) and b(t) extended with INC=INV=0.
type T0BI struct {
	width  int
	mask   uint64
	stride uint64
	incBit uint
	invBit uint
}

// NewT0BI returns the T0_BI code over width lines with stride S.
func NewT0BI(width int, stride uint64) (*T0BI, error) {
	if err := checkWidth("t0bi", width, 2); err != nil {
		return nil, err
	}
	if stride == 0 || stride&(stride-1) != 0 {
		return nil, fmt.Errorf("codec t0bi: stride must be a power of two, got %d", stride)
	}
	return &T0BI{
		width:  width,
		mask:   bus.Mask(width),
		stride: stride,
		incBit: uint(width),
		invBit: uint(width + 1),
	}, nil
}

// Name implements Codec.
func (t *T0BI) Name() string { return "t0bi" }

// PayloadWidth implements Codec.
func (t *T0BI) PayloadWidth() int { return t.width }

// BusWidth implements Codec.
func (t *T0BI) BusWidth() int { return t.width + 2 }

// NewEncoder implements Codec.
func (t *T0BI) NewEncoder() Encoder { return &t0biEncoder{t: t} }

// NewDecoder implements Codec.
func (t *T0BI) NewDecoder() Decoder { return &t0biDecoder{t: t} }

type t0biEncoder struct {
	t        *T0BI
	prevAddr uint64 // previous raw address
	prevWord uint64 // previous encoded word incl. INC and INV lines
	valid    bool
}

func (e *t0biEncoder) Encode(s Symbol) uint64 {
	t := e.t
	addr := s.Addr & t.mask
	var out uint64
	switch {
	case e.valid && addr == (e.prevAddr+t.stride)&t.mask:
		// Freeze payload, assert INC, de-assert INV.
		out = (e.prevWord & t.mask) | 1<<t.incBit
	default:
		h := bits.OnesCount64(e.prevWord ^ addr)
		if 2*h > t.width+2 {
			out = (^addr & t.mask) | 1<<t.invBit
		} else {
			out = addr
		}
	}
	e.prevAddr = addr
	e.prevWord = out
	e.valid = true
	return out
}

func (e *t0biEncoder) Reset() { e.prevAddr, e.prevWord, e.valid = 0, 0, false }

// t0biState is the Snapshot payload; prevWord chains through every
// prior invert/freeze decision, so T0_BI is a sweep codec.
type t0biState struct {
	prevAddr uint64
	prevWord uint64
	valid    bool
}

// Snapshot implements StateCodec.
func (e *t0biEncoder) Snapshot() State { return t0biState{e.prevAddr, e.prevWord, e.valid} }

// Restore implements StateCodec.
func (e *t0biEncoder) Restore(st State) {
	s := st.(t0biState)
	e.prevAddr, e.prevWord, e.valid = s.prevAddr, s.prevWord, s.valid
}

// EncodeBatch implements BatchEncoder with the encoder state in locals.
func (e *t0biEncoder) EncodeBatch(syms []Symbol, out []uint64) {
	t := e.t
	mask, stride, width := t.mask, t.stride, t.width
	incMask := uint64(1) << t.incBit
	invMask := uint64(1) << t.invBit
	prevAddr, prevWord, valid := e.prevAddr, e.prevWord, e.valid
	for i := range syms {
		addr := syms[i].Addr & mask
		var w uint64
		if valid && addr == (prevAddr+stride)&mask {
			w = (prevWord & mask) | incMask
		} else if h := bits.OnesCount64(prevWord ^ addr); 2*h > width+2 {
			w = (^addr & mask) | invMask
		} else {
			w = addr
		}
		prevAddr = addr
		prevWord = w
		valid = true
		out[i] = w
	}
	e.prevAddr, e.prevWord, e.valid = prevAddr, prevWord, valid
}

type t0biDecoder struct {
	t        *T0BI
	prevAddr uint64
}

func (d *t0biDecoder) Decode(word uint64, _ bool) uint64 {
	t := d.t
	var addr uint64
	switch {
	case word&(1<<t.incBit) != 0:
		addr = (d.prevAddr + t.stride) & t.mask
	case word&(1<<t.invBit) != 0:
		addr = ^word & t.mask
	default:
		addr = word & t.mask
	}
	d.prevAddr = addr
	return addr
}

func (d *t0biDecoder) Reset() { d.prevAddr = 0 }
