package codec

import (
	"fmt"

	"busenc/internal/bus"
	"busenc/internal/trace"
)

// Shard pricing with an explicit boundary hand-off. RunParallel
// (parallel.go) and the distributed sweep (internal/dist) price the
// same thing — a contiguous run of entries whose encoder state at the
// left edge was produced elsewhere — so the pricing loop lives here in
// a shard-local shape: the shard's own entries plus a Boundary value
// carrying everything that crossed the cut. In-process callers hand the
// boundary over as live encoder state; the distributed coordinator
// ships it through MarshalState and the descriptors' boundary entries.

// Boundary describes how a shard joins the stream at its left edge.
type Boundary struct {
	// First marks shard 0: the encoder starts fresh, no bus priming,
	// and verification behaves exactly as RunFast's would.
	First bool
	// Prev is the entry immediately before the shard (meaningful when
	// !First). The shard re-encodes it to recover the exact word the
	// sequential run left on the bus lines, and primes with that.
	Prev trace.Entry
	// SeedSym is the symbol of the entry before Prev and HaveSeedSym
	// its validity (false when Prev is the stream's first entry). It
	// seeds Seeder encoders — and seedable decoders under VerifyFull —
	// in O(1).
	SeedSym     Symbol
	HaveSeedSym bool
	// State, when non-nil, is the encoder state entering Prev (a
	// Snapshot, possibly round-tripped through MarshalState). It takes
	// precedence over SeedSym and is required for prefix-dependent
	// codecs.
	State State
}

// PriceShard prices a shard of the stream on a private bus and returns
// the accumulator for the ordered reduction (bus.MergeSlots). base is
// the global index of shard[0], used only to position error messages
// identically to a sequential run. The caller owes exactly one
// boundary: b.State for prefix-dependent codecs, b.SeedSym for Seeder
// codecs, neither for shard 0.
func PriceShard(c Codec, shard []trace.Entry, b Boundary, base int, opts ParallelOpts) (*bus.Bus, error) {
	enc := c.NewEncoder()
	if !b.First {
		if b.State != nil {
			sc, ok := enc.(StateCodec)
			if !ok {
				return nil, fmt.Errorf("codec %s: boundary state for an encoder without StateCodec", c.Name())
			}
			sc.Restore(b.State)
		} else if sd, ok := enc.(Seeder); ok {
			if b.HaveSeedSym {
				sd.SeedFrom(b.SeedSym)
			}
		} else {
			return nil, fmt.Errorf("codec %s: mid-stream shard needs explicit boundary state", c.Name())
		}
	}
	return priceShard(c, shard, b, base, enc, opts)
}

// priceShard is PriceShard after encoder seeding: enc already holds the
// state entering b.Prev (or the fresh state for shard 0).
func priceShard(c Codec, shard []trace.Entry, bd Boundary, base int, enc Encoder, opts ParallelOpts) (*bus.Bus, error) {
	if usePlane, err := PlaneEligible(c, opts.Kernel, opts.Verify); err != nil {
		return nil, err
	} else if usePlane {
		return priceShardPlane(c, shard, bd, enc, opts)
	}
	var b *bus.Bus
	if opts.PerLine {
		b = bus.New(c.BusWidth())
	} else {
		b = bus.NewAggregate(c.BusWidth())
	}
	var dec Decoder
	verifyLeft := 0
	if bd.First {
		switch opts.Verify {
		case VerifyFull:
			dec = c.NewDecoder()
			verifyLeft = len(shard)
		case VerifySampled:
			dec = c.NewDecoder()
			verifyLeft = VerifySampleLen
		}
	} else if opts.Verify == VerifyFull {
		d := c.NewDecoder()
		if sd, ok := d.(Seeder); ok {
			if bd.HaveSeedSym {
				sd.SeedFrom(bd.SeedSym)
			}
			dec = d
			verifyLeft = len(shard) + 1 // boundary entry included
		}
	}
	mask := bus.Mask(c.PayloadWidth())
	be := AsBatch(enc)
	buf := runBufPool.Get().(*runBuf)
	defer runBufPool.Put(buf)
	if !bd.First {
		e := bd.Prev
		word := enc.Encode(SymbolOf(e))
		b.Prime(word)
		if dec != nil && verifyLeft > 0 {
			got := dec.Decode(word, e.Sel())
			if want := e.Addr & mask; got != want {
				return nil, fmt.Errorf("codec %s: round-trip mismatch at entry %d: addr %#x decoded as %#x", c.Name(), base-1, want, got)
			}
			verifyLeft--
		}
	}
	for off := 0; off < len(shard); off += runChunk {
		hi := off + runChunk
		if hi > len(shard) {
			hi = len(shard)
		}
		chunk := shard[off:hi]
		syms := buf.syms[:len(chunk)]
		words := buf.words[:len(chunk)]
		for i, e := range chunk {
			syms[i] = SymbolOf(e)
		}
		be.EncodeBatch(syms, words)
		b.Accumulate(words)
		if dec != nil && verifyLeft > 0 {
			n := len(chunk)
			if n > verifyLeft {
				n = verifyLeft
			}
			for i := 0; i < n; i++ {
				e := chunk[i]
				got := dec.Decode(words[i], e.Sel())
				if want := e.Addr & mask; got != want {
					return nil, fmt.Errorf("codec %s: round-trip mismatch at entry %d: addr %#x decoded as %#x", c.Name(), base+off+i, want, got)
				}
			}
			verifyLeft -= n
			if verifyLeft == 0 {
				dec = nil
			}
		}
	}
	return b, nil
}

// priceShardPlane prices a shard on the plane path. Mid-stream seeding
// maps directly onto PlaneSet.Prime: the boundary entry's re-encoded
// word (exactly what the scalar path feeds bus.Prime) plus its raw
// address as the carried-in predecessor. VerifyFull never routes here,
// so only shard 0 can owe a verification sample — replayed scalar-ly
// like runFastPlane's.
func priceShardPlane(c Codec, shard []trace.Entry, bd Boundary, enc Encoder, opts ParallelOpts) (*bus.Bus, error) {
	if bd.First && opts.Verify == VerifySampled {
		if err := verifyPrefix(c, shard, VerifySampleLen); err != nil {
			return nil, err
		}
	}
	ps, err := NewPlaneSet([]Codec{c}, opts.PerLine)
	if err != nil {
		return nil, err
	}
	if !bd.First {
		word := enc.Encode(SymbolOf(bd.Prev))
		ps.Prime(bd.Prev.Addr, []uint64{word})
	}
	ps.ConsumeEntries(shard)
	return ps.Bus(0), nil
}

// BoundaryStates runs the state-only seeding sweep for a distributed
// sweep: one sequential pass of the batch kernel over the stream prefix
// (nothing counted, nothing verified) capturing the marshaled encoder
// state entering each interior cut's boundary entry — the bytes a
// coordinator ships to worker processes as Boundary.State. cuts is the
// ascending cut-point slice (len = shards+1, cuts[0] = 0); the returned
// slice is parallel to it, with states[k] filled for interior cuts
// whose shard starts mid-stream (cuts[k] > 0) and nil elsewhere. For
// Seeder codecs no sweep is needed (the boundary seeds in O(1) from the
// previous symbol) and the result is all nil.
func BoundaryStates(c Codec, entries []trace.Entry, cuts []int) ([][]byte, error) {
	states := make([][]byte, len(cuts))
	sweep := c.NewEncoder()
	if _, ok := sweep.(Seeder); ok {
		return states, nil
	}
	sc, ok := sweep.(StateCodec)
	if !ok {
		return nil, fmt.Errorf("codec %s: neither Seeder nor StateCodec; cannot shard", c.Name())
	}
	be := AsBatch(sweep)
	buf := runBufPool.Get().(*runBuf)
	defer runBufPool.Put(buf)
	j := 0
	for k := 1; k < len(cuts)-1; k++ {
		if cuts[k] == 0 {
			continue
		}
		// Advance to the state entering entry cuts[k]-1 (the boundary
		// entry the shard re-encodes to prime its bus).
		lead := cuts[k] - 1
		for j < lead {
			m := lead - j
			if m > runChunk {
				m = runChunk
			}
			syms := buf.syms[:m]
			for i := 0; i < m; i++ {
				syms[i] = SymbolOf(entries[j+i])
			}
			be.EncodeBatch(syms, buf.words[:m])
			j += m
		}
		b, err := MarshalState(sc.Snapshot())
		if err != nil {
			return nil, err
		}
		states[k] = b
	}
	return states, nil
}
