package codec

import "busenc/internal/obs"

// Observability hooks for the evaluation engines (see internal/obs).
// Counting happens per evaluation, not per entry: RunFast and RunStream
// accumulate in locals through the batch kernels and publish totals
// once per stream, so the enabled cost is a few registry lookups per
// evaluation and the disabled cost is one branch.

// RecordRun publishes one completed evaluation of a codec into the
// gated default registry: entries encoded through the codec's batch
// kernel and bus transitions counted for them. core.EvaluateStreaming
// calls this for its fan-out workers; RunFast and RunStream call it
// themselves. A no-op while metrics are disabled.
func RecordRun(name string, entries, transitions int64) {
	if !obs.Enabled() {
		return
	}
	obs.GetCounter("codec.runs." + name).Inc()
	obs.GetCounter("codec.entries_encoded." + name).Add(entries)
	obs.GetCounter("codec.transitions." + name).Add(transitions)
}
