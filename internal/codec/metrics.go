package codec

import "busenc/internal/obs"

// Observability hooks for the evaluation engines (see internal/obs).
// Counting happens per evaluation, not per entry: RunFast and RunStream
// accumulate in locals through the batch kernels and publish totals
// once per stream, so the enabled cost is a few registry lookups per
// evaluation and the disabled cost is one branch.

// RecordRun publishes one completed evaluation of a codec into the
// gated default registry: entries encoded through the codec's batch
// kernel and bus transitions counted for them. core.EvaluateStreaming
// calls this for its fan-out workers; RunFast and RunStream call it
// themselves. A no-op while metrics are disabled.
func RecordRun(name string, entries, transitions int64) {
	if !obs.Enabled() {
		return
	}
	obs.GetCounter("codec.runs." + name).Inc()
	obs.GetCounter("codec.entries_encoded." + name).Add(entries)
	obs.GetCounter("codec.transitions." + name).Add(transitions)
}

// RecordParallel publishes one completed RunParallel invocation: the
// shard count it actually used (after clamping) and, for sweep codecs,
// the entries re-encoded by the sequential state-only seeding sweep.
// A no-op while metrics are disabled.
func RecordParallel(name string, shards int, sweepEntries int64) {
	if !obs.Enabled() {
		return
	}
	obs.GetCounter("codec.parallel.runs." + name).Inc()
	obs.GetGauge("codec.parallel.shards").Set(int64(shards))
	if sweepEntries > 0 {
		obs.GetCounter("codec.parallel.sweep_entries").Add(sweepEntries)
	}
}

// RecordShard publishes one shard worker's wall time into the per-shard
// wait histogram; the reduction waits for the slowest bucket.
func RecordShard(ns int64) {
	obs.GetHistogram("codec.parallel.shard_ns").Observe(ns)
}

// parallelTimed reports whether shard workers should pay for per-shard
// timing — only while metrics are enabled.
func parallelTimed() bool { return obs.Enabled() }
