package codec

import (
	"math/bits"
	"sort"

	"busenc/internal/bus"
	"busenc/internal/trace"
)

func init() {
	Register("beach", func(width int, opts Options) (Codec, error) {
		return NewBeach(width, opts.Train)
	})
}

// Beach is a profile-driven XOR code in the spirit of the Beach solution
// (Benini et al., ISLPED'97, reference [7] of the paper) — an EXTENSION
// beyond the DATE'98 experiments, aimed at embedded systems that execute
// the same code repeatedly so the address stream can be profiled offline.
//
// This implementation uses the simplest member of the Beach family: from a
// training stream it measures per-line toggle counts T_i and joint toggle
// counts J_ij (cycles where lines i and j toggle together), then greedily
// selects disjoint line pairs (src, dst) maximizing the toggle reduction
// 2*J_ij - T_src obtained by transmitting line dst as dst XOR src. Pairs
// are disjoint, so the transformation is trivially invertible and the
// decoder is the same XOR network. Streams with strong block correlations
// (the Beach code's target) see substantial reductions; on uncorrelated
// streams no positive-gain pair exists and the code degenerates to binary.
type Beach struct {
	width int
	mask  uint64
	pairs []BeachPair
}

// BeachPair is one selected XOR transformation: line Dst is transmitted as
// Dst XOR Src.
type BeachPair struct {
	Src, Dst int
	// Gain is the predicted toggle-count reduction on the training stream.
	Gain int64
}

// NewBeach profiles the training stream and returns the resulting code.
// A nil or too-short training stream yields the identity transformation.
func NewBeach(width int, train *trace.Stream) (*Beach, error) {
	if err := checkWidth("beach", width, 0); err != nil {
		return nil, err
	}
	b := &Beach{width: width, mask: bus.Mask(width)}
	if train != nil && train.Len() >= 2 {
		b.pairs = profileBeach(width, train)
	}
	return b, nil
}

// Pairs returns the selected transformations, ordered by decreasing gain.
func (b *Beach) Pairs() []BeachPair {
	out := make([]BeachPair, len(b.pairs))
	copy(out, b.pairs)
	return out
}

func profileBeach(width int, train *trace.Stream) []BeachPair {
	toggles := make([]int64, width)
	joint := make([][]int64, width)
	for i := range joint {
		joint[i] = make([]int64, width)
	}
	prev := train.Entries[0].Addr
	for _, e := range train.Entries[1:] {
		diff := (prev ^ e.Addr) & bus.Mask(width)
		prev = e.Addr
		var set []int
		for d := diff; d != 0; d &= d - 1 {
			set = append(set, bits.TrailingZeros64(d))
		}
		for _, i := range set {
			toggles[i]++
		}
		for x := 0; x < len(set); x++ {
			for y := x + 1; y < len(set); y++ {
				joint[set[x]][set[y]]++
				joint[set[y]][set[x]]++
			}
		}
	}
	type cand struct {
		src, dst int
		gain     int64
	}
	var cands []cand
	for i := 0; i < width; i++ {
		for j := i + 1; j < width; j++ {
			// Transmitting dst as dst^src changes dst's toggles from T_dst
			// to T_src + T_dst - 2*J, a gain of 2*J - T_src. Orient the
			// pair so the cheaper line is the source.
			if g := 2*joint[i][j] - toggles[i]; g > 0 {
				cands = append(cands, cand{src: i, dst: j, gain: g})
			}
			if g := 2*joint[i][j] - toggles[j]; g > 0 {
				cands = append(cands, cand{src: j, dst: i, gain: g})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].gain != cands[b].gain {
			return cands[a].gain > cands[b].gain
		}
		if cands[a].dst != cands[b].dst {
			return cands[a].dst < cands[b].dst
		}
		return cands[a].src < cands[b].src
	})
	used := make([]bool, width)
	var pairs []BeachPair
	for _, c := range cands {
		if used[c.src] || used[c.dst] {
			continue
		}
		used[c.src], used[c.dst] = true, true
		pairs = append(pairs, BeachPair{Src: c.src, Dst: c.dst, Gain: c.gain})
	}
	return pairs
}

// Name implements Codec.
func (b *Beach) Name() string { return "beach" }

// PayloadWidth implements Codec.
func (b *Beach) PayloadWidth() int { return b.width }

// BusWidth implements Codec.
func (b *Beach) BusWidth() int { return b.width }

// NewEncoder implements Codec.
func (b *Beach) NewEncoder() Encoder { return beachEnd{b} }

// NewDecoder implements Codec.
func (b *Beach) NewDecoder() Decoder { return beachEnd{b} }

type beachEnd struct{ b *Beach }

// transform applies the XOR network. Because pairs are disjoint and the
// source lines pass through unchanged, the network is its own inverse.
func (e beachEnd) transform(v uint64) uint64 {
	out := v & e.b.mask
	for _, p := range e.b.pairs {
		out ^= (v >> uint(p.Src) & 1) << uint(p.Dst)
	}
	return out
}

func (e beachEnd) Encode(s Symbol) uint64            { return e.transform(s.Addr) }
func (e beachEnd) Decode(word uint64, _ bool) uint64 { return e.transform(word) }
func (e beachEnd) Reset()                            {}

// Snapshot implements StateCodec; the XOR network is stateless.
func (e beachEnd) Snapshot() State { return nil }

// Restore implements StateCodec.
func (e beachEnd) Restore(State) {}

// SeedFrom implements Seeder: nothing to seed.
func (e beachEnd) SeedFrom(Symbol) {}
