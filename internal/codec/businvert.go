package codec

import (
	"fmt"
	"math/bits"

	"busenc/internal/bus"
)

func init() {
	Register("businvert", func(width int, opts Options) (Codec, error) {
		return NewBusInvert(width, opts.partitions())
	})
}

// BusInvert is the redundant code of Stan and Burleson: if the Hamming
// distance between the previously transmitted word (including the INV
// line) and the new address exceeds N/2, the address is sent with inverted
// polarity and INV is asserted. The per-cycle transition count is thereby
// capped at ceil((N+1)/2), and for temporally random data the average is
// reduced below N/2.
//
// Partitions > 1 selects the partitioned variant also proposed by Stan and
// Burleson: the lines are split into contiguous groups with one INV line
// and an independent invert decision each, which improves the expected
// savings for wide buses at the cost of extra redundant lines. The
// partition extension is beyond the DATE'98 paper's experiments.
type BusInvert struct {
	width      int
	partitions int
	groups     []group
}

type group struct {
	lo, width int
	mask      uint64 // payload mask, shifted into place
	invBit    uint   // bit position of this group's INV line
}

// NewBusInvert returns the bus-invert code over width lines split into the
// given number of partitions (1 = the classic code).
func NewBusInvert(width, partitions int) (*BusInvert, error) {
	if partitions <= 0 {
		partitions = 1
	}
	if err := checkWidth("businvert", width, partitions); err != nil {
		return nil, err
	}
	if partitions > width {
		return nil, fmt.Errorf("codec businvert: %d partitions exceed %d lines", partitions, width)
	}
	bi := &BusInvert{width: width, partitions: partitions}
	base := width / partitions
	rem := width % partitions
	lo := 0
	for i := 0; i < partitions; i++ {
		w := base
		if i < rem {
			w++
		}
		bi.groups = append(bi.groups, group{
			lo:     lo,
			width:  w,
			mask:   bus.Mask(w) << uint(lo),
			invBit: uint(width + i),
		})
		lo += w
	}
	return bi, nil
}

// Name implements Codec.
func (bi *BusInvert) Name() string { return "businvert" }

// PayloadWidth implements Codec.
func (bi *BusInvert) PayloadWidth() int { return bi.width }

// BusWidth implements Codec.
func (bi *BusInvert) BusWidth() int { return bi.width + bi.partitions }

// NewEncoder implements Codec.
func (bi *BusInvert) NewEncoder() Encoder { return &biEncoder{bi: bi} }

// NewDecoder implements Codec.
func (bi *BusInvert) NewDecoder() Decoder { return biDecoder{bi} }

type biEncoder struct {
	bi   *BusInvert
	prev uint64 // previous encoded word including INV lines
}

func (e *biEncoder) Encode(s Symbol) uint64 {
	out := uint64(0)
	for _, g := range e.bi.groups {
		payload := s.Addr & g.mask
		// Hamming distance over the group's payload lines plus its INV
		// line; the candidate word carries INV=0 (eq. 1 of the paper).
		prevGroup := e.prev & (g.mask | 1<<g.invBit)
		h := bits.OnesCount64(prevGroup ^ payload)
		if 2*h > g.width {
			out |= (^payload & g.mask) | 1<<g.invBit
		} else {
			out |= payload
		}
	}
	e.prev = out
	return out
}

func (e *biEncoder) Reset() { e.prev = 0 }

// biState is the Snapshot payload: the previous encoded word. It is a
// prefix function (the invert decision chains through every prior
// word), so the encoder is a sweep codec, not a Seeder.
type biState struct{ prev uint64 }

// Snapshot implements StateCodec.
func (e *biEncoder) Snapshot() State { return biState{e.prev} }

// Restore implements StateCodec.
func (e *biEncoder) Restore(st State) { e.prev = st.(biState).prev }

// EncodeBatch implements BatchEncoder. The single-partition case (the
// classic code, used by every paper table) gets a dedicated loop without
// the per-group iteration; partitioned variants fall back to the general
// group loop with the state held in a local.
func (e *biEncoder) EncodeBatch(syms []Symbol, out []uint64) {
	prev := e.prev
	if len(e.bi.groups) == 1 {
		g := e.bi.groups[0]
		invMask := uint64(1) << g.invBit
		sel := g.mask | invMask
		for i := range syms {
			payload := syms[i].Addr & g.mask
			h := bits.OnesCount64((prev & sel) ^ payload)
			if 2*h > g.width {
				prev = (^payload & g.mask) | invMask
			} else {
				prev = payload
			}
			out[i] = prev
		}
		e.prev = prev
		return
	}
	for i := range syms {
		word := uint64(0)
		for _, g := range e.bi.groups {
			payload := syms[i].Addr & g.mask
			prevGroup := prev & (g.mask | 1<<g.invBit)
			h := bits.OnesCount64(prevGroup ^ payload)
			if 2*h > g.width {
				word |= (^payload & g.mask) | 1<<g.invBit
			} else {
				word |= payload
			}
		}
		prev = word
		out[i] = word
	}
	e.prev = prev
}

type biDecoder struct{ bi *BusInvert }

func (d biDecoder) Decode(word uint64, _ bool) uint64 {
	addr := uint64(0)
	for _, g := range d.bi.groups {
		payload := word & g.mask
		if word&(1<<g.invBit) != 0 {
			payload = ^payload & g.mask
		}
		addr |= payload
	}
	return addr
}

func (d biDecoder) Reset() {}
