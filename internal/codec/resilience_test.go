package codec

import (
	"testing"

	"busenc/internal/trace"
)

func resilienceStream() *trace.Stream {
	s := trace.New("res", 16)
	addr := uint64(0x1000)
	for i := 0; i < 400; i++ {
		if i%23 == 22 {
			addr = uint64(0x2000 + i*8)
		}
		addr += 4
		s.Append(addr, trace.Instr)
	}
	return s
}

func TestResilienceBinarySingleWord(t *testing.T) {
	// Binary is memoryless: one flipped bit corrupts exactly one word.
	s := resilienceStream()
	rep := Resilience(MustNew("binary", 16, Options{}), s, 50, 1)
	if rep.CorruptedWords != rep.Injections {
		t.Errorf("binary: %d corrupted words for %d injections, want equal", rep.CorruptedWords, rep.Injections)
	}
	if rep.MaxBurst != 1 {
		t.Errorf("binary burst = %d, want 1", rep.MaxBurst)
	}
}

func TestResilienceGrayAndBusInvertBounded(t *testing.T) {
	s := resilienceStream()
	for _, name := range []string{"gray", "businvert"} {
		rep := Resilience(MustNew(name, 16, Options{Stride: 4}), s, 50, 2)
		// Stateless decode: at most one wrong word per injection.
		if rep.MaxBurst > 1 {
			t.Errorf("%s burst = %d, want <= 1", name, rep.MaxBurst)
		}
	}
}

func TestResilienceT0Bursts(t *testing.T) {
	// T0's decoder holds the regenerated address: a fault during an
	// in-sequence run propagates until the next binary (out-of-sequence)
	// word resynchronizes it. Error bursts must therefore exceed
	// binary's single-word corruption.
	s := resilienceStream()
	rep := Resilience(MustNew("t0", 16, Options{Stride: 4}), s, 100, 3)
	if rep.MaxBurst <= 1 {
		t.Errorf("t0 max burst = %d; state-holding decoder should burst", rep.MaxBurst)
	}
	if rep.MeanBurst <= 1 {
		t.Errorf("t0 mean burst = %.2f, want > 1", rep.MeanBurst)
	}
}

func TestResilienceOffsetUnbounded(t *testing.T) {
	// The offset code accumulates deltas: a single fault offsets every
	// subsequent address until the end of the stream — the worst
	// resilience in the family, the price of its irredundancy.
	s := resilienceStream()
	off := Resilience(MustNew("offset", 16, Options{}), s, 50, 4)
	t0 := Resilience(MustNew("t0", 16, Options{Stride: 4}), s, 50, 4)
	if off.MeanBurst <= t0.MeanBurst {
		t.Errorf("offset mean burst %.1f should exceed t0's %.1f", off.MeanBurst, t0.MeanBurst)
	}
}

func TestResilienceEmptyStream(t *testing.T) {
	s := trace.New("empty", 16)
	rep := Resilience(MustNew("binary", 16, Options{}), s, 10, 5)
	if rep.CorruptedWords != 0 || rep.MeanBurst != 0 {
		t.Errorf("empty stream report: %+v", rep)
	}
}

func TestResilienceNoFaultNoError(t *testing.T) {
	// Zero injections: the campaign is a no-op and reports cleanly.
	s := resilienceStream()
	rep := Resilience(MustNew("dualt0bi", 16, Options{Stride: 4}), s, 0, 6)
	if rep.CorruptedWords != 0 || rep.Injections != 0 {
		t.Errorf("report: %+v", rep)
	}
}
