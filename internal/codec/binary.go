package codec

import "busenc/internal/bus"

func init() {
	Register("binary", func(width int, _ Options) (Codec, error) {
		return NewBinary(width)
	})
}

// Binary is the identity code: the address is driven on the lines as is.
// It needs no redundant lines and no codec circuitry; every savings figure
// in the paper is measured against it.
type Binary struct {
	width int
	mask  uint64
}

// NewBinary returns the binary (identity) code over width address lines.
func NewBinary(width int) (*Binary, error) {
	if err := checkWidth("binary", width, 0); err != nil {
		return nil, err
	}
	return &Binary{width: width, mask: bus.Mask(width)}, nil
}

// Name implements Codec.
func (b *Binary) Name() string { return "binary" }

// PayloadWidth implements Codec.
func (b *Binary) PayloadWidth() int { return b.width }

// BusWidth implements Codec.
func (b *Binary) BusWidth() int { return b.width }

// NewEncoder implements Codec.
func (b *Binary) NewEncoder() Encoder { return binaryEnd{b.mask} }

// NewDecoder implements Codec.
func (b *Binary) NewDecoder() Decoder { return binaryEnd{b.mask} }

type binaryEnd struct{ mask uint64 }

func (e binaryEnd) Encode(s Symbol) uint64            { return s.Addr & e.mask }
func (e binaryEnd) Decode(word uint64, _ bool) uint64 { return word & e.mask }
func (e binaryEnd) Reset()                            {}

// Snapshot implements StateCodec; the binary code is stateless.
func (e binaryEnd) Snapshot() State { return nil }

// Restore implements StateCodec.
func (e binaryEnd) Restore(State) {}

// SeedFrom implements Seeder: nothing to seed.
func (e binaryEnd) SeedFrom(Symbol) {}

// EncodeBatch implements BatchEncoder.
func (e binaryEnd) EncodeBatch(syms []Symbol, out []uint64) {
	mask := e.mask
	for i := range syms {
		out[i] = syms[i].Addr & mask
	}
}

// EncodePlanes implements PlaneEncoder: the identity code's encoded
// planes are the address planes themselves (the bus never reads planes
// at or above the width, so no masking is needed).
func (b *Binary) EncodePlanes(blk *PlaneBlock, _ *[64]uint64) (*[64]uint64, uint64) {
	return blk.A, blk.Last & b.mask
}
