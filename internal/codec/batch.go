package codec

import (
	"fmt"
	"sync"

	"busenc/internal/bus"
	"busenc/internal/obs"
	"busenc/internal/trace"
)

// Batched evaluation engine. The paper's whole evaluation reduces to
// "encode a stream, count transitions": this file provides the fast path
// for that loop. Hot codecs implement BatchEncoder with hand-written
// chunk loops that keep their state in registers; the bus side counts
// aggregates with XOR+popcount over the chunk (bus.Accumulate); and
// decode-verification is sampled rather than exhaustive unless the caller
// asks otherwise. RunFast produces bit-identical Transitions, Cycles and
// MaxPerCycle to the reference Run for every codec — the parity test in
// batch_test.go enforces this for all registered codes.

// BatchEncoder is an optional fast-path interface an Encoder may
// implement: EncodeBatch encodes syms into out (len(out) must be at least
// len(syms)), advancing the encoder state exactly as the equivalent
// sequence of Encode calls would. Implementations are free to hoist their
// state into locals for the duration of the chunk.
type BatchEncoder interface {
	EncodeBatch(syms []Symbol, out []uint64)
}

// AsBatch returns enc's batch fast path if it implements BatchEncoder, or
// a generic wrapper that loops over Encode otherwise. The wrapper shares
// enc's state, so batch and scalar calls may be freely interleaved.
func AsBatch(enc Encoder) BatchEncoder {
	if be, ok := enc.(BatchEncoder); ok {
		return be
	}
	return genericBatch{enc}
}

type genericBatch struct{ enc Encoder }

func (g genericBatch) EncodeBatch(syms []Symbol, out []uint64) {
	for i, s := range syms {
		out[i] = g.enc.Encode(s)
	}
}

// VerifyMode selects how much decode round-trip checking RunFast does.
type VerifyMode int

const (
	// VerifyFull decodes and checks every entry — the reference behavior
	// of Run. This is the zero value, so RunOpts{} is as safe as Run.
	VerifyFull VerifyMode = iota
	// VerifySampled decodes and checks only the first VerifySampleLen
	// entries, then stops running the decoder. Decoder state depends on
	// every prior word, so a prefix is the only subset that can be checked
	// without paying for a full decode; it still catches systematic codec
	// bugs while keeping the hot loop encode-and-count only.
	VerifySampled
	// VerifyNone skips decode checking entirely.
	VerifyNone
)

// VerifySampleLen is the number of leading entries VerifySampled checks.
const VerifySampleLen = 1024

// Kernel selects the pricing kernel the RunFast family uses.
type Kernel int

const (
	// KernelAuto picks the plane-domain bit-sliced path whenever the
	// codec implements PlaneEncoder and the verify mode permits it
	// (VerifyFull needs every encoded word and so forces the scalar
	// path). This is the zero value: eligible codecs get the fast
	// kernel without callers opting in, and parity tests pin the two
	// paths bit-identical.
	KernelAuto Kernel = iota
	// KernelScalar forces the word-at-a-time scalar path.
	KernelScalar
	// KernelPlane requires the plane-domain path: evaluation fails if
	// the codec has no plane kernel or the verify mode demands the
	// scalar path. For tests and benchmarks that must not silently
	// fall back.
	KernelPlane
)

// String names the kernel for flags and error messages.
func (k Kernel) String() string {
	switch k {
	case KernelScalar:
		return "scalar"
	case KernelPlane:
		return "plane"
	default:
		return "auto"
	}
}

// ParseKernel maps a flag or query-parameter value to a Kernel. The
// empty string means KernelAuto, matching the zero value.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "", "auto":
		return KernelAuto, nil
	case "scalar":
		return KernelScalar, nil
	case "plane":
		return KernelPlane, nil
	}
	return KernelAuto, fmt.Errorf("codec: unknown kernel %q (want auto, scalar or plane)", s)
}

// RunOpts tunes the RunFast evaluation path.
type RunOpts struct {
	// Verify selects the decode round-trip checking mode.
	Verify VerifyMode
	// PerLine requests per-line transition counts in Result.PerLine. When
	// false (the default) the counting loop is aggregate-only and
	// Result.PerLine is nil.
	PerLine bool
	// Kernel selects the pricing kernel (KernelAuto by default).
	Kernel Kernel
}

// runChunk is the batch granularity: large enough to amortize the chunk
// setup, small enough that the symbol+word buffers stay cache-resident
// (4096 × 24 B ≈ 96 KiB).
const runChunk = 4096

// RunChunkLen is the engine batch granularity, exported for benchmark
// records (bench.*Record.ChunkLen identity fields).
const RunChunkLen = runChunk

type runBuf struct {
	syms  []Symbol
	words []uint64
}

var runBufPool = sync.Pool{New: func() any {
	return &runBuf{syms: make([]Symbol, runChunk), words: make([]uint64, runChunk)}
}}

// RunFast is the batched counterpart of Run: it drives the stream through
// the codec in chunks, using the codec's BatchEncoder kernel when it has
// one, and counts transitions in bulk. Transitions, Cycles and
// MaxPerCycle are identical to Run's for every codec; PerLine is filled
// only when opts.PerLine is set, and decode verification follows
// opts.Verify. RunFast is safe for concurrent use across goroutines (each
// call has its own encoder, decoder, bus and pooled buffers).
func RunFast(c Codec, s *trace.Stream, opts RunOpts) (Result, error) {
	if usePlane, err := PlaneEligible(c, opts.Kernel, opts.Verify); err != nil {
		return Result{}, err
	} else if usePlane {
		return runFastPlane(c, s, opts)
	}
	root := obs.StartSpan("codec.run_fast", obs.StageEncode).WithCodec(c.Name()).WithStream(s.Name)
	enc := AsBatch(c.NewEncoder())
	var b *bus.Bus
	if opts.PerLine {
		b = bus.New(c.BusWidth())
	} else {
		b = bus.NewAggregate(c.BusWidth())
	}
	var dec Decoder
	verifyLeft := 0
	switch opts.Verify {
	case VerifyFull:
		dec = c.NewDecoder()
		verifyLeft = len(s.Entries)
	case VerifySampled:
		dec = c.NewDecoder()
		verifyLeft = VerifySampleLen
	}
	mask := bus.Mask(c.PayloadWidth())
	buf := runBufPool.Get().(*runBuf)
	defer runBufPool.Put(buf)
	entries := s.Entries
	for base := 0; base < len(entries); base += runChunk {
		end := base + runChunk
		if end > len(entries) {
			end = len(entries)
		}
		chunk := entries[base:end]
		csp := root.Child("codec.chunk", obs.StageEncode).WithChunk(base / runChunk)
		syms := buf.syms[:len(chunk)]
		words := buf.words[:len(chunk)]
		for i, e := range chunk {
			syms[i] = SymbolOf(e)
		}
		enc.EncodeBatch(syms, words)
		b.Accumulate(words)
		if dec != nil && verifyLeft > 0 {
			n := len(chunk)
			if n > verifyLeft {
				n = verifyLeft
			}
			for i := 0; i < n; i++ {
				e := chunk[i]
				got := dec.Decode(words[i], e.Sel())
				if want := e.Addr & mask; got != want {
					err := fmt.Errorf("codec %s: round-trip mismatch at entry %d: addr %#x decoded as %#x", c.Name(), base+i, want, got)
					csp.EndErr(err)
					root.EndErr(err)
					return Result{}, err
				}
			}
			verifyLeft -= n
			if verifyLeft == 0 {
				dec = nil
			}
		}
		csp.End()
	}
	root.End()
	RecordRun(c.Name(), int64(len(entries)), b.Transitions())
	return Result{
		Codec:       c.Name(),
		Stream:      s.Name,
		BusWidth:    c.BusWidth(),
		Transitions: b.Transitions(),
		Cycles:      b.Cycles(),
		PerLine:     b.PerLine(),
		MaxPerCycle: b.MaxPerCycle(),
	}, nil
}

// MustRunFast is RunFast panicking on round-trip failure.
func MustRunFast(c Codec, s *trace.Stream, opts RunOpts) Result {
	r, err := RunFast(c, s, opts)
	if err != nil {
		panic(err)
	}
	return r
}
