package codec

import (
	"math/rand"
	"reflect"
	"testing"

	"busenc/internal/bus"
	"busenc/internal/trace"
)

// planeTestStream builds a stream with the mixed shape the plane
// kernels must survive: sequential runs (stride 4), repeats, random
// jumps, and addresses with garbage above the payload width.
func planeTestStream(n int, seed int64) *trace.Stream {
	rng := rand.New(rand.NewSource(seed))
	entries := make([]trace.Entry, n)
	addr := uint64(0x8000_1000)
	for i := range entries {
		switch rng.Intn(10) {
		case 0:
			addr = rng.Uint64() // full 64-bit garbage above the bus width
		case 1:
			// repeat: addr unchanged
		default:
			addr += 4
		}
		entries[i] = trace.Entry{Addr: addr}
	}
	return &trace.Stream{Name: "plane-test", Entries: entries}
}

// planeCodecs returns every registered codec that has a plane kernel,
// in a few width/stride configurations.
func planeCodecs(t testing.TB, width int) []Codec {
	t.Helper()
	cs := []Codec{
		MustNew("binary", width, Options{}),
		MustNew("gray", width, Options{}),
		MustNew("offset", width, Options{}),
		MustNew("incxor", width, Options{}),
	}
	if width > 3 {
		cs = append(cs,
			MustNew("gray", width, Options{Stride: 8}),
			MustNew("incxor", width, Options{Stride: 8}),
		)
	}
	for _, c := range cs {
		if !HasPlaneKernel(c) {
			t.Fatalf("codec %s: expected a plane kernel", c.Name())
		}
	}
	return cs
}

func requireSameResult(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.Transitions != want.Transitions || got.Cycles != want.Cycles || got.MaxPerCycle != want.MaxPerCycle {
		t.Errorf("%s: plane %d/%d/%d vs scalar %d/%d/%d",
			label, got.Transitions, got.Cycles, got.MaxPerCycle,
			want.Transitions, want.Cycles, want.MaxPerCycle)
	}
	if !reflect.DeepEqual(got.PerLine, want.PerLine) {
		t.Errorf("%s: per-line counts diverge\n plane: %v\nscalar: %v", label, got.PerLine, want.PerLine)
	}
}

// TestPlaneSetParity: the shared-transpose multi-codec sweep must be
// bit-identical to the scalar reference Run for every plane codec,
// across widths, stream lengths and consume chunkings.
func TestPlaneSetParity(t *testing.T) {
	for _, width := range []int{1, 2, 7, 13, 21, 32, 33, 48, 64} {
		for _, n := range []int{1, 2, 63, 64, 65, 127, 500, 4096, 4097} {
			s := planeTestStream(n, int64(width*100000+n))
			for _, chunkLen := range []int{1, 63, 64, 65, 1000, 4096} {
				if chunkLen > n && chunkLen != 4096 {
					continue
				}
				for _, perLine := range []bool{true, false} {
					codecs := planeCodecs(t, width)
					ps, err := NewPlaneSet(codecs, perLine)
					if err != nil {
						t.Fatal(err)
					}
					addrs := make([]uint64, n)
					for i, e := range s.Entries {
						addrs[i] = e.Addr
					}
					for lo := 0; lo < n; lo += chunkLen {
						hi := lo + chunkLen
						if hi > n {
							hi = n
						}
						ps.Consume(addrs[lo:hi])
					}
					results := ps.Results(s.Name)
					for i, c := range codecs {
						want := MustRun(c, s)
						if !perLine {
							want.PerLine = nil
						}
						requireSameResult(t, c.Name()+"/plane-set", results[i], want)
					}
				}
			}
		}
	}
}

// TestPlaneSetPrimed: mid-stream seeding (the shard-parallel entry
// point) must reproduce the suffix statistics of a sequential run.
func TestPlaneSetPrimed(t *testing.T) {
	const n, cut = 700, 333
	s := planeTestStream(n, 42)
	addrs := make([]uint64, n)
	for i, e := range s.Entries {
		addrs[i] = e.Addr
	}
	codecs := planeCodecs(t, 29)
	for i, c := range codecs {
		// Reference: a sequential scalar run over the suffix with a
		// seeded encoder and a primed bus — exactly what priceShard does.
		enc := c.NewEncoder()
		enc.(Seeder).SeedFrom(Symbol{Addr: addrs[cut-1]})
		boundary := enc.Encode(Symbol{Addr: addrs[cut]})
		ref := bus.New(c.BusWidth())
		ref.Prime(boundary)
		for _, a := range addrs[cut+1:] {
			ref.Drive(enc.Encode(Symbol{Addr: a}))
		}

		ps, err := NewPlaneSet([]Codec{c}, true)
		if err != nil {
			t.Fatal(err)
		}
		ps.Prime(addrs[cut], []uint64{boundary})
		ps.Consume(addrs[cut+1:])
		got := ps.Results(s.Name)[0]
		want := Result{
			Codec: c.Name(), Stream: s.Name, BusWidth: c.BusWidth(),
			Transitions: ref.Transitions(), Cycles: ref.Cycles(),
			PerLine: ref.PerLine(), MaxPerCycle: ref.MaxPerCycle(),
		}
		requireSameResult(t, c.Name()+"/primed", got, want)
		_ = i
	}
}

// TestNewPlaneSetRejectsScalarCodec: codecs without a plane kernel must
// be refused, not silently mispriced.
func TestNewPlaneSetRejectsScalarCodec(t *testing.T) {
	c := MustNew("t0", 16, Options{})
	if HasPlaneKernel(c) {
		t.Fatal("t0 unexpectedly grew a plane kernel; update this test")
	}
	if _, err := NewPlaneSet([]Codec{c}, false); err == nil {
		t.Fatal("NewPlaneSet accepted a codec without a plane kernel")
	}
}
