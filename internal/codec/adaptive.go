package codec

import (
	"fmt"
	"math/bits"

	"busenc/internal/bus"
)

func init() {
	Register("adaptive", func(width int, opts Options) (Codec, error) {
		entries := opts.Entries
		if entries == 0 {
			entries = 16
			if entries > width {
				entries = width
			}
		}
		return NewAdaptive(width, entries)
	})
}

// Adaptive is a self-organizing-list code (EXTENSION — in the spirit of
// Mamidipaka, Hirschberg and Dutt's adaptive low-power address encoding):
// both ends of the bus maintain an identical move-to-front list of the
// most recent distinct addresses. When the new address is in the list, the
// encoder asserts the HIT line and transmits the entry's index as a
// one-hot pattern on the low lines while freezing the rest of the bus; a
// re-reference to a recent address then costs at most two payload
// transitions, and an immediate repeat costs zero. On a miss the raw
// address is transmitted and inserted at the front.
//
// The code targets temporal locality (repeated addresses — branch targets,
// spin loops, hot globals) rather than the spatial locality T0 exploits,
// so the two compose well across bus types.
type Adaptive struct {
	width   int
	entries int
	mask    uint64
	lowMask uint64
	hitBit  uint
}

// NewAdaptive returns an adaptive code over width lines with the given
// list size (at most width, so indices encode one-hot on the payload).
func NewAdaptive(width, entries int) (*Adaptive, error) {
	if err := checkWidth("adaptive", width, 1); err != nil {
		return nil, err
	}
	if entries <= 0 || entries > width {
		return nil, fmt.Errorf("codec adaptive: entries %d out of range (1..%d)", entries, width)
	}
	return &Adaptive{
		width:   width,
		entries: entries,
		mask:    bus.Mask(width),
		lowMask: bus.Mask(entries),
		hitBit:  uint(width),
	}, nil
}

// Name implements Codec.
func (a *Adaptive) Name() string { return "adaptive" }

// PayloadWidth implements Codec.
func (a *Adaptive) PayloadWidth() int { return a.width }

// BusWidth implements Codec.
func (a *Adaptive) BusWidth() int { return a.width + 1 }

// NewEncoder implements Codec.
func (a *Adaptive) NewEncoder() Encoder { return &adaptiveEnd{a: a} }

// NewDecoder implements Codec.
func (a *Adaptive) NewDecoder() Decoder { return &adaptiveEnd{a: a} }

// adaptiveEnd is the shared state machine: the MTF list evolves
// identically at both ends because every update is a function of
// information both ends have (the decoded address and hit index).
type adaptiveEnd struct {
	a    *Adaptive
	list []uint64
	prev uint64 // previous payload lines
}

func (e *adaptiveEnd) find(addr uint64) int {
	for i, v := range e.list {
		if v == addr {
			return i
		}
	}
	return -1
}

// touch applies the move-to-front update for a hit at index i.
func (e *adaptiveEnd) touch(i int) {
	v := e.list[i]
	copy(e.list[1:i+1], e.list[:i])
	e.list[0] = v
}

// insert pushes a new address at the front, evicting the oldest.
func (e *adaptiveEnd) insert(addr uint64) {
	if len(e.list) < e.a.entries {
		e.list = append(e.list, 0)
	}
	copy(e.list[1:], e.list[:len(e.list)-1])
	e.list[0] = addr
}

func (e *adaptiveEnd) Encode(s Symbol) uint64 {
	addr := s.Addr & e.a.mask
	if i := e.find(addr); i >= 0 {
		payload := (e.prev &^ e.a.lowMask) | 1<<uint(i)
		e.touch(i)
		e.prev = payload
		return payload | 1<<e.a.hitBit
	}
	e.insert(addr)
	e.prev = addr
	return addr
}

func (e *adaptiveEnd) Decode(word uint64, _ bool) uint64 {
	payload := word & e.a.mask
	if word&(1<<e.a.hitBit) != 0 {
		i := bits.TrailingZeros64(payload & e.a.lowMask)
		addr := e.list[i]
		e.touch(i)
		e.prev = payload
		return addr
	}
	e.insert(payload)
	e.prev = payload
	return payload
}

func (e *adaptiveEnd) Reset() {
	e.list = e.list[:0]
	e.prev = 0
}

// adaptiveState is the Snapshot payload: a deep copy of the
// move-to-front list. Adaptive is a sweep codec — the list holds the
// prefix's recent distinct addresses.
type adaptiveState struct {
	list []uint64
	prev uint64
}

// Snapshot implements StateCodec.
func (e *adaptiveEnd) Snapshot() State {
	return adaptiveState{list: append([]uint64(nil), e.list...), prev: e.prev}
}

// Restore implements StateCodec.
func (e *adaptiveEnd) Restore(st State) {
	s := st.(adaptiveState)
	e.list = append(e.list[:0], s.list...)
	e.prev = s.prev
}
