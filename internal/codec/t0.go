package codec

import (
	"fmt"

	"busenc/internal/bus"
)

func init() {
	Register("t0", func(width int, opts Options) (Codec, error) {
		return NewT0(width, opts.stride())
	})
}

// T0 is the asymptotic zero-transition code of Benini et al. (GLSVLSI'97):
// a redundant INC line signals that the current address equals the
// previous one plus the stride S. While INC is asserted the address lines
// are frozen at their previous value, so an unlimited in-sequence stream
// costs zero transitions per emitted address; the receiver regenerates the
// addresses by adding S.
type T0 struct {
	width  int
	mask   uint64
	stride uint64
	incBit uint
}

// NewT0 returns the T0 code over width lines with in-sequence stride S (a
// power of two, reflecting the addressability of the architecture).
func NewT0(width int, stride uint64) (*T0, error) {
	if err := checkWidth("t0", width, 1); err != nil {
		return nil, err
	}
	if stride == 0 || stride&(stride-1) != 0 {
		return nil, fmt.Errorf("codec t0: stride must be a power of two, got %d", stride)
	}
	return &T0{width: width, mask: bus.Mask(width), stride: stride, incBit: uint(width)}, nil
}

// Name implements Codec.
func (t *T0) Name() string { return "t0" }

// PayloadWidth implements Codec.
func (t *T0) PayloadWidth() int { return t.width }

// BusWidth implements Codec.
func (t *T0) BusWidth() int { return t.width + 1 }

// NewEncoder implements Codec.
func (t *T0) NewEncoder() Encoder { return &t0Encoder{t: t} }

// NewDecoder implements Codec.
func (t *T0) NewDecoder() Decoder { return &t0Decoder{t: t} }

type t0Encoder struct {
	t        *T0
	prevAddr uint64 // previous raw address b(t-1)
	prevBus  uint64 // previous payload lines B(t-1)
	valid    bool
}

func (e *t0Encoder) Encode(s Symbol) uint64 {
	addr := s.Addr & e.t.mask
	var out uint64
	if e.valid && addr == (e.prevAddr+e.t.stride)&e.t.mask {
		// In sequence: freeze the address lines, assert INC (eq. 3).
		out = e.prevBus | 1<<e.t.incBit
	} else {
		out = addr
		e.prevBus = addr
	}
	e.prevAddr = addr
	e.valid = true
	return out
}

func (e *t0Encoder) Reset() { e.prevAddr, e.prevBus, e.valid = 0, 0, false }

// t0State is the Snapshot payload. prevBus (the frozen payload lines)
// is a prefix function — it holds the last out-of-sequence address —
// so T0 is a sweep codec, not a Seeder.
type t0State struct {
	prevAddr uint64
	prevBus  uint64
	valid    bool
}

// Snapshot implements StateCodec.
func (e *t0Encoder) Snapshot() State { return t0State{e.prevAddr, e.prevBus, e.valid} }

// Restore implements StateCodec.
func (e *t0Encoder) Restore(st State) {
	s := st.(t0State)
	e.prevAddr, e.prevBus, e.valid = s.prevAddr, s.prevBus, s.valid
}

// EncodeBatch implements BatchEncoder: the chunk loop keeps the encoder
// state in locals, paying the pointer writes once per chunk.
func (e *t0Encoder) EncodeBatch(syms []Symbol, out []uint64) {
	mask, stride := e.t.mask, e.t.stride
	incMask := uint64(1) << e.t.incBit
	prevAddr, prevBus, valid := e.prevAddr, e.prevBus, e.valid
	for i := range syms {
		addr := syms[i].Addr & mask
		if valid && addr == (prevAddr+stride)&mask {
			out[i] = prevBus | incMask
		} else {
			out[i] = addr
			prevBus = addr
		}
		prevAddr = addr
		valid = true
	}
	e.prevAddr, e.prevBus, e.valid = prevAddr, prevBus, valid
}

type t0Decoder struct {
	t        *T0
	prevAddr uint64
}

func (d *t0Decoder) Decode(word uint64, _ bool) uint64 {
	var addr uint64
	if word&(1<<d.t.incBit) != 0 {
		addr = (d.prevAddr + d.t.stride) & d.t.mask
	} else {
		addr = word & d.t.mask
	}
	d.prevAddr = addr
	return addr
}

func (d *t0Decoder) Reset() { d.prevAddr = 0 }
