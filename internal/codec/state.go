package codec

// Encoder state capture. Every encoder in the registry implements
// StateCodec, making its mutable state an explicit, transferable value:
// Snapshot returns an opaque deep copy and Restore installs one into any
// encoder instance built by the same Codec. That contract is what lets
// shard-parallel pricing (parallel.go) hand shard k an encoder carrying
// exactly the state the sequential run would have had at the shard
// boundary — the state_test.go property test and FuzzSnapshotSplit pin
// it for every registered code at arbitrary split points.
//
// Codecs whose state is a function of the previous symbol alone also
// implement Seeder: SeedFrom reconstructs the post-prefix state from the
// last prefix symbol in O(1), with no sequential sweep. Binary, Gray and
// Beach are stateless (SeedFrom is a no-op); Offset and IncXor keep only
// the previous masked address. The prefix-dependent codes — bus-invert
// (previous *encoded* word), the T0 family (reference registers and
// frozen bus lines), working-zone (zone registers and LRU ages) and
// adaptive (the move-to-front list) — cannot be seeded from one symbol
// and are handled by a sequential state-only sweep instead.

// State is an opaque encoder-state value produced by Snapshot. It owns
// its memory: mutating the originating encoder after Snapshot must not
// change a captured State, and Restore must not alias the State into the
// target (so one State may seed several encoders).
type State any

// StateCodec is the capability interface for encoder state transfer.
type StateCodec interface {
	// Snapshot returns a deep copy of the encoder's mutable state.
	Snapshot() State
	// Restore installs a state captured from any encoder (or decoder,
	// for shared end types) of the same Codec.
	Restore(State)
}

// Seeder is the O(1) fast path of StateCodec: SeedFrom puts the
// encoder in exactly the state it would hold after encoding a sequence
// whose last symbol was prev. Only codecs whose state is a function of
// the previous symbol alone can implement it.
type Seeder interface {
	SeedFrom(prev Symbol)
}
