package codec

import (
	"testing"

	"busenc/internal/bus"
	"busenc/internal/trace"
)

func TestOffsetSequentialIsConstant(t *testing.T) {
	c := MustNew("offset", 32, Options{})
	if c.BusWidth() != 32 {
		t.Fatalf("offset should be irredundant, BusWidth = %d", c.BusWidth())
	}
	syms := instrSyms(0x1000, 0x1004, 0x1008, 0x100C)
	words := drive(c, syms)
	// After the first word the bus carries the constant stride 4.
	for i := 1; i < len(words); i++ {
		if words[i] != 4 {
			t.Errorf("word %d = %#x, want 4", i, words[i])
		}
	}
	if total := bus.CountTransitions(words[1:], 32); total != 0 {
		t.Errorf("steady-state transitions = %d, want 0", total)
	}
}

func TestOffsetWrapAround(t *testing.T) {
	c := MustNew("offset", 16, Options{})
	enc := c.NewEncoder()
	dec := c.NewDecoder()
	for _, a := range []uint64{0xFFFF, 0x0001, 0x0000, 0xFFFF} {
		w := enc.Encode(Symbol{Addr: a})
		if got := dec.Decode(w, false); got != a {
			t.Errorf("decoded %#x, want %#x", got, a)
		}
	}
}

func TestWorkZoneHitPath(t *testing.T) {
	w, err := NewWorkZone(32, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if w.BusWidth() != 32+1+2 {
		t.Fatalf("BusWidth = %d, want 35", w.BusWidth())
	}
	enc := w.NewEncoder()
	dec := w.NewDecoder()
	// First access establishes a zone (miss), nearby accesses hit.
	addrs := []uint64{0x1000, 0x1004, 0x1010, 0x10FF, 0x1100}
	hitWant := []bool{false, true, true, true, true}
	for i, a := range addrs {
		word := enc.Encode(Symbol{Addr: a})
		hit := word&(1<<32) != 0
		if hit != hitWant[i] {
			t.Errorf("access %d (%#x): hit=%v, want %v", i, a, hit, hitWant[i])
		}
		if got := dec.Decode(word, false); got != a {
			t.Fatalf("access %d: decoded %#x, want %#x", i, got, a)
		}
	}
}

func TestWorkZoneLRUReplacement(t *testing.T) {
	w, err := NewWorkZone(32, 2, 4) // 2 zones of 16 bytes
	if err != nil {
		t.Fatal(err)
	}
	enc := w.NewEncoder()
	dec := w.NewDecoder()
	// Touch three distinct zones; the first must be evicted, so returning
	// to it is a miss — and the decode must still be exact throughout.
	addrs := []uint64{0x1000, 0x2000, 0x3000, 0x1000}
	for i, a := range addrs {
		word := enc.Encode(Symbol{Addr: a})
		if got := dec.Decode(word, false); got != a {
			t.Fatalf("access %d: decoded %#x, want %#x", i, got, a)
		}
		if i == 3 && word&(1<<32) != 0 {
			t.Error("evicted zone still hit")
		}
	}
}

func TestWorkZoneValidation(t *testing.T) {
	if _, err := NewWorkZone(32, 3, 8); err == nil {
		t.Error("non-power-of-two zone count accepted")
	}
	if _, err := NewWorkZone(32, 4, 0); err == nil {
		t.Error("zero zoneBits accepted")
	}
	if _, err := NewWorkZone(32, 4, 32); err == nil {
		t.Error("zoneBits == width accepted")
	}
}

func TestWorkZoneBeatsBinaryOnZonedStream(t *testing.T) {
	// Two interleaved working zones far apart: binary pays the full
	// inter-zone Hamming distance every cycle; working-zone pays a few
	// offset bits.
	s := trace.New("zones", 32)
	for i := 0; i < 500; i++ {
		s.Append(0x10000000+uint64(i%64), trace.DataRead)
		s.Append(0x7FFF0000+uint64(i%64), trace.DataRead)
	}
	wz := MustRun(MustNew("workzone", 32, Options{Zones: 4, ZoneBits: 8}), s)
	bin := MustRun(MustNew("binary", 32, Options{}), s)
	if wz.Transitions*2 > bin.Transitions {
		t.Errorf("workzone %d vs binary %d: expected >50%% savings", wz.Transitions, bin.Transitions)
	}
}

func TestBeachDegeneratesWithoutTraining(t *testing.T) {
	b, err := NewBeach(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Pairs()) != 0 {
		t.Errorf("untrained Beach has %d pairs", len(b.Pairs()))
	}
	enc := b.NewEncoder()
	if w := enc.Encode(Symbol{Addr: 0x1234}); w != 0x1234 {
		t.Errorf("untrained Beach is not identity: %#x", w)
	}
}

func TestBeachLearnsCorrelatedLines(t *testing.T) {
	// Lines 0 and 1 always toggle together (addresses alternate between
	// 0b00 and 0b11 in the low bits); Beach should pair them.
	s := trace.New("corr", 8)
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			s.Append(0b00, trace.DataRead)
		} else {
			s.Append(0b11, trace.DataRead)
		}
	}
	b, err := NewBeach(8, s)
	if err != nil {
		t.Fatal(err)
	}
	pairs := b.Pairs()
	if len(pairs) != 1 {
		t.Fatalf("pairs = %+v, want exactly one", pairs)
	}
	p := pairs[0]
	if !(p.Src == 0 && p.Dst == 1 || p.Src == 1 && p.Dst == 0) {
		t.Errorf("paired lines %d->%d, want 0 and 1", p.Src, p.Dst)
	}
	// The transformed stream should halve the transitions (one of the two
	// correlated lines goes quiet).
	res := MustRun(b, s)
	bin := MustRun(MustNew("binary", 8, Options{}), s)
	if res.Transitions*2 != bin.Transitions {
		t.Errorf("beach %d vs binary %d: expected exactly half", res.Transitions, bin.Transitions)
	}
}

func TestBeachRoundTripOnTrainingAndOtherStreams(t *testing.T) {
	train := randomMixStream(32, 500, 41)
	b, err := NewBeach(32, train)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(b, train); err != nil {
		t.Errorf("round trip on training stream: %v", err)
	}
	other := randomMixStream(32, 500, 42)
	if _, err := Run(b, other); err != nil {
		t.Errorf("round trip on unseen stream: %v", err)
	}
}

func TestBeachNeverHurtsItsTrainingStream(t *testing.T) {
	// The greedy selection only accepts positive-gain pairs, so on the
	// training stream itself the Beach transform must not increase
	// transitions.
	for seed := int64(0); seed < 5; seed++ {
		train := randomMixStream(32, 800, seed)
		b, err := NewBeach(32, train)
		if err != nil {
			t.Fatal(err)
		}
		res := MustRun(b, train)
		bin := MustRun(MustNew("binary", 32, Options{}), train)
		if res.Transitions > bin.Transitions {
			t.Errorf("seed %d: beach %d > binary %d on its own training stream", seed, res.Transitions, bin.Transitions)
		}
	}
}

func TestCouplingRanksCodesDifferently(t *testing.T) {
	// Under the coupling-dominated energy model the code ranking can
	// differ from the plain transition-count ranking; at minimum the
	// coupling analysis must agree with the toggle counts it embeds.
	s := randomMixStream(32, 4000, 77)
	for _, name := range []string{"binary", "gray", "t0", "businvert", "dualt0bi"} {
		c := MustNew(name, 32, Options{Stride: 4})
		st := Coupling(c, s)
		res := MustRun(c, s)
		if st.Toggles != res.Transitions {
			t.Errorf("%s: coupling toggles %d != transitions %d", name, st.Toggles, res.Transitions)
		}
		if st.Energy(0) != float64(res.Transitions) {
			t.Errorf("%s: lambda=0 energy mismatch", name)
		}
		if st.Energy(2) < st.Energy(0) {
			t.Errorf("%s: energy must grow with lambda", name)
		}
	}
}
