package codec

import (
	"testing"

	"busenc/internal/bus"
)

func TestT0FreezesSequentialStream(t *testing.T) {
	c := MustNew("t0", 32, Options{Stride: 4})
	if c.BusWidth() != 33 {
		t.Fatalf("BusWidth = %d", c.BusWidth())
	}
	syms := make([]Symbol, 100)
	for i := range syms {
		syms[i] = Symbol{Addr: 0x400000 + 4*uint64(i), Sel: true}
	}
	words := drive(c, syms)
	// First word is the binary address with INC=0; all following words are
	// that address frozen with INC=1, so exactly one transition total (the
	// INC line rising once).
	if words[0] != 0x400000 {
		t.Errorf("first word = %#x", words[0])
	}
	for i := 1; i < len(words); i++ {
		if words[i] != 0x400000|1<<32 {
			t.Fatalf("word %d = %#x, want frozen bus with INC", i, words[i])
		}
	}
	if total := bus.CountTransitions(words, 33); total != 1 {
		t.Errorf("sequential stream total transitions = %d, want 1 (INC rising)", total)
	}
}

func TestT0OutOfSequenceIsBinary(t *testing.T) {
	c := MustNew("t0", 16, Options{Stride: 1})
	words := drive(c, instrSyms(0x10, 0x20, 0x30))
	for i, want := range []uint64{0x10, 0x20, 0x30} {
		if words[i] != want {
			t.Errorf("word %d = %#x, want %#x (INC must stay low)", i, words[i], want)
		}
	}
}

func TestT0ResumeAfterJump(t *testing.T) {
	c := MustNew("t0", 16, Options{Stride: 1})
	words := drive(c, instrSyms(1, 2, 3, 100, 101))
	// 1 (binary), 2,3 frozen at 1 with INC, 100 binary, 101 frozen at 100.
	want := []uint64{1, 1 | 1<<16, 1 | 1<<16, 100, 100 | 1<<16}
	for i := range want {
		if words[i] != want[i] {
			t.Errorf("word %d = %#x, want %#x", i, words[i], want[i])
		}
	}
}

func TestT0DecoderRegeneratesAddresses(t *testing.T) {
	c := MustNew("t0", 32, Options{Stride: 4})
	syms := instrSyms(0x1000, 0x1004, 0x1008, 0x2000, 0x2004, 0x1000)
	enc := c.NewEncoder()
	dec := c.NewDecoder()
	for i, s := range syms {
		w := enc.Encode(s)
		if got := dec.Decode(w, true); got != s.Addr {
			t.Errorf("entry %d: decoded %#x, want %#x", i, got, s.Addr)
		}
	}
}

func TestT0WrapAround(t *testing.T) {
	// Address arithmetic is modulo 2^N: 0xFFFF + 1 wraps to 0.
	c := MustNew("t0", 16, Options{Stride: 1})
	enc := c.NewEncoder()
	dec := c.NewDecoder()
	w1 := enc.Encode(Symbol{Addr: 0xFFFF})
	if got := dec.Decode(w1, true); got != 0xFFFF {
		t.Fatalf("decoded %#x", got)
	}
	w2 := enc.Encode(Symbol{Addr: 0x0000})
	if w2&(1<<16) == 0 {
		t.Error("wrap-around increment not detected as in-sequence")
	}
	if got := dec.Decode(w2, true); got != 0 {
		t.Errorf("decoded %#x, want 0", got)
	}
}

func TestT0StrideMattersForSequenceDetection(t *testing.T) {
	c1 := MustNew("t0", 32, Options{Stride: 1})
	c4 := MustNew("t0", 32, Options{Stride: 4})
	syms := instrSyms(0, 4, 8, 12)
	w1 := drive(c1, syms)
	w4 := drive(c4, syms)
	if bus.CountTransitions(w1, 33) <= bus.CountTransitions(w4, 33) {
		t.Error("stride-1 T0 should not beat stride-4 T0 on a stride-4 stream")
	}
}

func TestT0BISelectsAllThreeBranches(t *testing.T) {
	const n = 8
	c := MustNew("t0bi", n, Options{Stride: 1})
	if c.BusWidth() != n+2 {
		t.Fatalf("BusWidth = %d", c.BusWidth())
	}
	enc := c.NewEncoder()
	// Branch 2 (binary): first word.
	w := enc.Encode(Symbol{Addr: 0x01})
	if w != 0x01 {
		t.Fatalf("first word = %#x", w)
	}
	// Branch 1 (T0): in-sequence, payload frozen at 0x01, INC set.
	w = enc.Encode(Symbol{Addr: 0x02})
	if w != 0x01|1<<n {
		t.Fatalf("in-seq word = %#x, want %#x", w, uint64(0x01|1<<n))
	}
	// Branch 3 (invert): from word 0x01|INC, address 0xFE has Hamming
	// distance 8 (payload) + 1 (INC falls) = 9 > (8+2)/2 = 5 -> invert.
	w = enc.Encode(Symbol{Addr: 0xFE})
	wantPayload := uint64(^uint64(0xFE) & 0xFF)
	if w != wantPayload|1<<(n+1) {
		t.Fatalf("invert word = %#x, want %#x", w, wantPayload|1<<(n+1))
	}
	// Decoder follows the same three branches.
	dec := c.NewDecoder()
	if got := dec.Decode(0x01, false); got != 0x01 {
		t.Errorf("binary decode = %#x", got)
	}
	if got := dec.Decode(0x01|1<<n, false); got != 0x02 {
		t.Errorf("T0 decode = %#x, want 0x02", got)
	}
	if got := dec.Decode(wantPayload|1<<(n+1), false); got != 0xFE {
		t.Errorf("invert decode = %#x, want 0xFE", got)
	}
}

func TestT0BISequentialAfterInvertedWord(t *testing.T) {
	// The freeze in branch 1 copies the previous *encoded* payload, even
	// when that payload was transmitted inverted: the decoder relies on
	// the INC line alone, not on the payload value.
	c := MustNew("t0bi", 8, Options{Stride: 1})
	enc := c.NewEncoder()
	dec := c.NewDecoder()
	addrs := []uint64{0x00, 0xFF, 0x00, 0x01, 0x02}
	for i, a := range addrs {
		w := enc.Encode(Symbol{Addr: a})
		if got := dec.Decode(w, false); got != a {
			t.Fatalf("entry %d: decoded %#x, want %#x", i, got, a)
		}
	}
}

func TestT0BIInSequenceBeatsPlainBIOnInstrStreams(t *testing.T) {
	c := MustNew("t0bi", 32, Options{Stride: 4})
	syms := make([]Symbol, 200)
	for i := range syms {
		syms[i] = Symbol{Addr: 0x400000 + 4*uint64(i), Sel: true}
	}
	words := drive(c, syms)
	if total := bus.CountTransitions(words, 34); total != 1 {
		t.Errorf("pure sequential stream costs %d transitions under T0_BI, want 1", total)
	}
}
