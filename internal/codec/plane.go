package codec

import (
	"fmt"

	"busenc/internal/bus"
	"busenc/internal/obs"
	"busenc/internal/trace"
)

// Plane-domain evaluation. The bit-sliced bus kernels (internal/bus
// bitslice.go) price 64 encoded words per machine-word operation, but
// feeding them through EncodeBatch still materializes the encoded word
// stream and transposes it afterwards. For codecs whose transfer
// function is cheap in the transposed domain — binary (identity), gray
// (GF(2)-linear), offset (a lane-wise subtract) and incxor (a lane-wise
// add + XOR) — the encode itself can run on the bit-planes: one machine
// word per bus line per 64 addresses, so encode+count never sees the
// word stream at all. A PlaneSet additionally shares the single address
// transpose across every codec it prices, which is where the multi-codec
// sweeps (core.Evaluate*, cmd/paper) spend their time.

// PlaneBlock is one block of up to bus.BlockLen addresses presented in
// transposed form to a plane-domain encoder.
//
// A holds the raw (unmasked) address bit-planes: bit i of A[b] is bit b
// of the block's i-th address. Lanes >= N are zero. The scalar context
// a prefix-free encoder needs is carried alongside: PrevRaw is the raw
// address immediately preceding lane 0 (zero when First — no address
// precedes the block), Prev2 the address preceding lane N-1 (PrevRaw
// when N == 1), and Last the address in lane N-1.
type PlaneBlock struct {
	A       *[64]uint64
	N       int
	PrevRaw uint64
	Prev2   uint64
	Last    uint64
	First   bool
}

// PlaneEncoder is the optional plane-domain fast path of a Codec: the
// codec can encode a transposed address block directly into encoded
// bit-planes. Implementations must be stateless across calls — all
// sequential context arrives in the PlaneBlock — so one Codec value can
// serve concurrent runs, exactly like NewEncoder instances.
//
// EncodePlanes returns the encoded planes (either scratch, filled by
// the call, or blk.A for identity codes) and the encoded word of lane
// N-1, which the caller feeds to bus.AccumulateEncoded as the
// carried-out line state. Only planes [0, BusWidth()) of the result are
// meaningful; lanes >= blk.N may hold garbage (the bus masks them).
type PlaneEncoder interface {
	Codec
	EncodePlanes(blk *PlaneBlock, scratch *[64]uint64) (e *[64]uint64, last uint64)
}

// HasPlaneKernel reports whether c can be priced on the plane-domain
// path.
func HasPlaneKernel(c Codec) bool {
	_, ok := c.(PlaneEncoder)
	return ok
}

// PlaneSet prices one address stream through several plane-domain
// codecs at once, transposing each 64-address block exactly once and
// running every codec's plane kernel plus the fused bit-sliced counter
// over the shared planes. It is the plane-path analogue of running
// RunFast once per codec, with the gather+pack cost paid once instead
// of per codec. Not safe for concurrent use; build one per goroutine.
type PlaneSet struct {
	lanes   []planeLane
	prevRaw uint64
	first   bool
	a       [64]uint64
	scratch [64]uint64
	// blk is the block descriptor handed to every encoder. A field
	// rather than a consumeBlock local: the pointer escapes into the
	// PlaneEncoder interface call, and a local would be a fresh heap
	// allocation on every 64-address block.
	blk PlaneBlock
}

type planeLane struct {
	pe PlaneEncoder
	b  *bus.Bus
}

// NewPlaneSet builds a PlaneSet over the given codecs. Every codec must
// implement PlaneEncoder (check with HasPlaneKernel first); widths may
// differ. perLine selects per-line counting buses.
func NewPlaneSet(codecs []Codec, perLine bool) (*PlaneSet, error) {
	ps := &PlaneSet{first: true, lanes: make([]planeLane, len(codecs))}
	for i, c := range codecs {
		pe, ok := c.(PlaneEncoder)
		if !ok {
			return nil, errNoPlaneKernel(c)
		}
		var b *bus.Bus
		if perLine {
			b = bus.New(c.BusWidth())
		} else {
			b = bus.NewAggregate(c.BusWidth())
		}
		ps.lanes[i] = planeLane{pe: pe, b: b}
	}
	return ps, nil
}

func errNoPlaneKernel(c Codec) error {
	return &noPlaneKernelError{name: c.Name()}
}

type noPlaneKernelError struct{ name string }

func (e *noPlaneKernelError) Error() string {
	return "codec " + e.name + ": no plane-domain kernel"
}

// Prime seeds the set mid-stream, for shard-parallel pricing: prevRaw
// is the raw address of the entry just before the next Consume call,
// and words[i] the encoded word codec i's bus carries at that point
// (the word the sequential run drove last). len(words) must equal the
// codec count.
func (ps *PlaneSet) Prime(prevRaw uint64, words []uint64) {
	ps.prevRaw = prevRaw
	ps.first = false
	for i := range ps.lanes {
		ps.lanes[i].b.Prime(words[i])
	}
}

// Consume prices the next addrs of the stream, in order, through every
// codec. Calls may chunk the stream arbitrarily: block boundaries do
// not affect any statistic, and sequential context carries across
// calls.
func (ps *PlaneSet) Consume(addrs []uint64) {
	for base := 0; base < len(addrs); base += bus.BlockLen {
		end := base + bus.BlockLen
		if end > len(addrs) {
			end = len(addrs)
		}
		ps.consumeBlock(addrs[base:end])
	}
	if len(addrs) > 0 {
		bus.RecordBitsliced(int64(len(addrs)))
	}
}

// ConsumeEntries prices trace entries directly, gathering each
// 64-address block into a stack buffer immediately before its
// transpose. Compared to Consume over a separately gathered address
// slice this streams the entry array exactly once and never writes an
// intermediate buffer to memory — on large materialized streams the
// evaluation is bandwidth-bound and that second pass is measurable.
// Statistics are identical to the equivalent Consume calls.
func (ps *PlaneSet) ConsumeEntries(entries []trace.Entry) {
	var block [bus.BlockLen]uint64
	for base := 0; base < len(entries); base += bus.BlockLen {
		end := base + bus.BlockLen
		if end > len(entries) {
			end = len(entries)
		}
		n := end - base
		chunk := entries[base:end]
		for i := range chunk {
			block[i] = chunk[i].Addr
		}
		ps.consumeBlock(block[:n])
	}
	if len(entries) > 0 {
		bus.RecordBitsliced(int64(len(entries)))
	}
}

// consumeBlock prices one block of 1..bus.BlockLen addresses.
func (ps *PlaneSet) consumeBlock(block []uint64) {
	n := len(block)
	bus.PackPlanes(block, &ps.a)
	ps.blk = PlaneBlock{
		A:       &ps.a,
		N:       n,
		PrevRaw: ps.prevRaw,
		Last:    block[n-1],
		First:   ps.first,
	}
	if n >= 2 {
		ps.blk.Prev2 = block[n-2]
	} else {
		ps.blk.Prev2 = ps.prevRaw
	}
	for i := range ps.lanes {
		ln := &ps.lanes[i]
		e, last := ln.pe.EncodePlanes(&ps.blk, &ps.scratch)
		ln.b.AccumulateEncoded(e, n, last)
	}
	ps.prevRaw = ps.blk.Last
	ps.first = false
}

// Bus returns codec i's accumulation bus, for ordered shard reduction
// (bus.Merge) and result extraction.
func (ps *PlaneSet) Bus(i int) *bus.Bus { return ps.lanes[i].b }

// Results converts the accumulated statistics into one Result per
// codec, in construction order, labeled with the given stream name.
func (ps *PlaneSet) Results(stream string) []Result {
	out := make([]Result, len(ps.lanes))
	for i := range ps.lanes {
		ln := &ps.lanes[i]
		out[i] = Result{
			Codec:       ln.pe.Name(),
			Stream:      stream,
			BusWidth:    ln.pe.BusWidth(),
			Transitions: ln.b.Transitions(),
			Cycles:      ln.b.Cycles(),
			PerLine:     ln.b.PerLine(),
			MaxPerCycle: ln.b.MaxPerCycle(),
		}
	}
	return out
}

// PlaneEligible decides whether an evaluation routes to the plane path,
// honoring the Kernel selector: VerifyFull needs every encoded word
// materialized, so it always prices scalar — under KernelPlane that
// combination is an error rather than a silent fallback, as is a codec
// without a plane kernel.
func PlaneEligible(c Codec, k Kernel, v VerifyMode) (bool, error) {
	switch k {
	case KernelScalar:
		return false, nil
	case KernelPlane:
		if !HasPlaneKernel(c) {
			return false, errNoPlaneKernel(c)
		}
		if v == VerifyFull {
			return false, fmt.Errorf("codec %s: the plane kernel cannot verify every entry; use VerifySampled or the scalar kernel", c.Name())
		}
		return true, nil
	default:
		return v != VerifyFull && HasPlaneKernel(c), nil
	}
}

// verifyPrefix replays the first n entries through a fresh scalar
// encoder/decoder pair and checks the decode round trip, reproducing
// exactly the sampled verification RunFast performs before the plane
// path takes over (the plane path never materializes encoded words, so
// the sample is re-encoded scalar-ly; all plane codecs are cheap
// scalar encoders and the sample is small).
func verifyPrefix(c Codec, entries []trace.Entry, n int) error {
	if n > len(entries) {
		n = len(entries)
	}
	enc := c.NewEncoder()
	dec := c.NewDecoder()
	mask := bus.Mask(c.PayloadWidth())
	for i := 0; i < n; i++ {
		e := entries[i]
		word := enc.Encode(SymbolOf(e))
		got := dec.Decode(word, e.Sel())
		if want := e.Addr & mask; got != want {
			return fmt.Errorf("codec %s: round-trip mismatch at entry %d: addr %#x decoded as %#x", c.Name(), i, want, got)
		}
	}
	return nil
}

// runFastPlane is RunFast's plane-domain path: one PlaneSet over the
// materialized stream, with sampled verification replayed scalar-ly up
// front. Results are bit-identical to the scalar path.
func runFastPlane(c Codec, s *trace.Stream, opts RunOpts) (Result, error) {
	root := obs.StartSpan("codec.run_fast", obs.StageEncode).WithCodec(c.Name()).WithStream(s.Name)
	if opts.Verify == VerifySampled {
		if err := verifyPrefix(c, s.Entries, VerifySampleLen); err != nil {
			root.EndErr(err)
			return Result{}, err
		}
	}
	ps, err := NewPlaneSet([]Codec{c}, opts.PerLine)
	if err != nil {
		root.EndErr(err)
		return Result{}, err
	}
	consumeEntries(root, ps, s.Entries)
	root.End()
	res := ps.Results(s.Name)[0]
	RecordRun(c.Name(), int64(len(s.Entries)), res.Transitions)
	return res, nil
}

// consumeEntries feeds the entries to the set chunk by chunk (chunking
// only bounds the per-span attribution; ConsumeEntries gathers each
// 64-block on the stack itself).
func consumeEntries(root obs.SpanHandle, ps *PlaneSet, entries []trace.Entry) {
	for base := 0; base < len(entries); base += runChunk {
		end := base + runChunk
		if end > len(entries) {
			end = len(entries)
		}
		csp := root.Child("codec.chunk", obs.StageEncode).WithChunk(base / runChunk)
		ps.ConsumeEntries(entries[base:end])
		csp.End()
	}
}

// RunPlaneSet prices one materialized stream through several codecs in
// a single sweep, sharing the per-block address transpose across all of
// them — the cheapest way to regenerate a multi-codec table. Every
// codec must have a plane kernel (NewPlaneSet's rule); opts.Kernel is
// ignored (this entry point IS the plane kernel) and VerifyFull is
// rejected like KernelPlane. Results come back in codec order and are
// bit-identical to per-codec RunFast.
func RunPlaneSet(codecs []Codec, s *trace.Stream, opts RunOpts) ([]Result, error) {
	if opts.Verify == VerifyFull {
		return nil, fmt.Errorf("codec: RunPlaneSet cannot verify every entry; use VerifySampled or per-codec RunFast")
	}
	root := obs.StartSpan("codec.run_plane_set", obs.StageEncode).WithStream(s.Name)
	if opts.Verify == VerifySampled {
		for _, c := range codecs {
			if err := verifyPrefix(c, s.Entries, VerifySampleLen); err != nil {
				root.EndErr(err)
				return nil, err
			}
		}
	}
	ps, err := NewPlaneSet(codecs, opts.PerLine)
	if err != nil {
		root.EndErr(err)
		return nil, err
	}
	consumeEntries(root, ps, s.Entries)
	root.End()
	results := ps.Results(s.Name)
	for _, r := range results {
		RecordRun(r.Codec, int64(len(s.Entries)), r.Transitions)
	}
	return results, nil
}
