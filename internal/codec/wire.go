package codec

import (
	"encoding/binary"
	"fmt"
)

// Wire format for encoder states. Snapshot/Restore (state.go) move
// encoder state between instances inside one process as opaque values;
// the distributed sweep (internal/dist) has to move the same state to a
// worker process, so every concrete state type gets a stable byte
// encoding: one tag byte naming the type, then the fields in little-
// endian fixed width (uvarint-prefixed lengths for slices). The format
// is an internal hand-off between a coordinator and workers built from
// the same binary — the tag table may be renumbered freely between
// versions, it is never persisted beyond a checkpoint journal that
// records the producing plan's digest.
//
// MarshalState(Snapshot()) followed by Restore(UnmarshalState(...)) in
// another process must be indistinguishable from handing the Snapshot
// over directly; wire_test.go pins that round trip for every registered
// codec at arbitrary split points.

// State wire tags, one per concrete Snapshot payload type. Tag 0 is the
// nil state of the stateless codes (binary, gray, beach).
const (
	wireNil = iota
	wireBI
	wireOffset
	wireIncXor
	wireT0
	wireT0BI
	wireDualT0
	wireDualT0BI
	wireWorkZone
	wireAdaptive
)

// wireBuf is a minimal append-only encoder.
type wireBuf struct{ b []byte }

func (w *wireBuf) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wireBuf) boolean(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}
func (w *wireBuf) u64s(vs []uint64) {
	w.b = binary.AppendUvarint(w.b, uint64(len(vs)))
	for _, v := range vs {
		w.u64(v)
	}
}
func (w *wireBuf) ints(vs []int) {
	w.b = binary.AppendUvarint(w.b, uint64(len(vs)))
	for _, v := range vs {
		w.u64(uint64(v))
	}
}

// wireDec decodes the same format, remembering the first error so call
// sites stay linear.
type wireDec struct {
	b   []byte
	err error
}

func (d *wireDec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("codec: truncated state")
	}
}

func (d *wireDec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *wireDec) boolean() bool {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return false
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v != 0
}

func (d *wireDec) length() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 || v > 1<<20 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return int(v)
}

func (d *wireDec) u64s() []uint64 {
	n := d.length()
	if d.err != nil {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.u64()
	}
	return out
}

func (d *wireDec) ints() []int {
	n := d.length()
	if d.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.u64())
	}
	return out
}

// MarshalState serializes a Snapshot payload for cross-process
// transfer. Every state type a registered codec can produce is
// supported; an unknown type is an error (a newly added codec whose
// state was not taught to the wire layer), never a silent drop.
func MarshalState(st State) ([]byte, error) {
	var w wireBuf
	switch s := st.(type) {
	case nil:
		w.b = append(w.b, wireNil)
	case biState:
		w.b = append(w.b, wireBI)
		w.u64(s.prev)
	case offsetState:
		w.b = append(w.b, wireOffset)
		w.u64(s.prev)
	case incXorState:
		w.b = append(w.b, wireIncXor)
		w.u64(s.prev)
		w.boolean(s.valid)
	case t0State:
		w.b = append(w.b, wireT0)
		w.u64(s.prevAddr)
		w.u64(s.prevBus)
		w.boolean(s.valid)
	case t0biState:
		w.b = append(w.b, wireT0BI)
		w.u64(s.prevAddr)
		w.u64(s.prevWord)
		w.boolean(s.valid)
	case dualT0State:
		w.b = append(w.b, wireDualT0)
		w.u64(s.ref)
		w.boolean(s.refValid)
		w.u64(s.prevBus)
	case dualT0BIState:
		w.b = append(w.b, wireDualT0BI)
		w.u64(s.ref)
		w.boolean(s.refValid)
		w.u64(s.prevWord)
	case wzState:
		w.b = append(w.b, wireWorkZone)
		w.u64s(s.regs)
		w.ints(s.age)
		w.u64(s.prev)
	case adaptiveState:
		w.b = append(w.b, wireAdaptive)
		w.u64s(s.list)
		w.u64(s.prev)
	default:
		return nil, fmt.Errorf("codec: state type %T has no wire encoding", st)
	}
	return w.b, nil
}

// UnmarshalState reverses MarshalState. The returned State owns its
// memory (slices are freshly allocated), preserving the Snapshot
// aliasing contract.
func UnmarshalState(data []byte) (State, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("codec: empty state")
	}
	d := wireDec{b: data[1:]}
	var st State
	switch data[0] {
	case wireNil:
		st = nil
	case wireBI:
		st = biState{prev: d.u64()}
	case wireOffset:
		st = offsetState{prev: d.u64()}
	case wireIncXor:
		st = incXorState{prev: d.u64(), valid: d.boolean()}
	case wireT0:
		st = t0State{prevAddr: d.u64(), prevBus: d.u64(), valid: d.boolean()}
	case wireT0BI:
		st = t0biState{prevAddr: d.u64(), prevWord: d.u64(), valid: d.boolean()}
	case wireDualT0:
		st = dualT0State{ref: d.u64(), refValid: d.boolean(), prevBus: d.u64()}
	case wireDualT0BI:
		st = dualT0BIState{ref: d.u64(), refValid: d.boolean(), prevWord: d.u64()}
	case wireWorkZone:
		st = wzState{regs: d.u64s(), age: d.ints(), prev: d.u64()}
	case wireAdaptive:
		st = adaptiveState{list: d.u64s(), prev: d.u64()}
	default:
		return nil, fmt.Errorf("codec: unknown state tag %d", data[0])
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("codec: %d trailing state bytes", len(d.b))
	}
	return st, nil
}
