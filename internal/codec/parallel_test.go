package codec

import (
	"reflect"
	"testing"

	"busenc/internal/trace"
)

// sameAggregate compares the counts RunParallel must reproduce exactly.
func sameAggregate(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.Transitions != want.Transitions || got.Cycles != want.Cycles ||
		got.MaxPerCycle != want.MaxPerCycle {
		t.Errorf("%s: got %d/%d/%d, want %d/%d/%d", label,
			got.Transitions, got.Cycles, got.MaxPerCycle,
			want.Transitions, want.Cycles, want.MaxPerCycle)
	}
}

// TestRunParallelParity pins RunParallel == Run (transitions, cycles,
// max per cycle, and per-line counts where requested) for every
// registered codec across shard counts {1, 2, 3, 16} and stream lengths
// that do not divide evenly.
func TestRunParallelParity(t *testing.T) {
	streams := fixtureStreams(9000)
	streams = append(streams, randomMixStream(32, 19997, 5))
	for _, c := range allCodecs(t, 32) {
		for _, s := range streams {
			ref := MustRun(c, s)
			for _, shards := range []int{1, 2, 3, 16} {
				res, err := RunParallel(c, s, ParallelOpts{Shards: shards, Verify: VerifySampled})
				if err != nil {
					t.Fatalf("%s/%s shards=%d: %v", c.Name(), s.Name, shards, err)
				}
				sameAggregate(t, c.Name()+"/"+s.Name, res, ref)
			}
			perLine, err := RunParallel(c, s, ParallelOpts{Shards: 3, Verify: VerifyNone, PerLine: true})
			if err != nil {
				t.Fatalf("%s/%s per-line: %v", c.Name(), s.Name, err)
			}
			if !reflect.DeepEqual(perLine.PerLine, ref.PerLine) {
				t.Errorf("%s/%s: per-line counts diverge from Run", c.Name(), s.Name)
			}
		}
	}
}

// TestRunParallelAdversarialCuts drives runParallelCuts directly with
// boundaries the equal-split policy never produces: length-1 shards at
// the front, middle and back, and cuts straddling the batch-chunk edge.
// VerifyFull is on, so the seedable decoders' mid-stream verification
// path runs too.
func TestRunParallelAdversarialCuts(t *testing.T) {
	s := randomMixStream(32, 2*runChunk+1009, 11)
	n := s.Len()
	cutSets := [][]int{
		{0, 1, 2, n},
		{0, 1, n - 1, n},
		{0, runChunk, runChunk + 1, n},
		{0, n / 2, n/2 + 1, n},
		{0, n - 1, n},
	}
	for _, c := range allCodecs(t, 32) {
		ref := MustRun(c, s)
		for _, cuts := range cutSets {
			res, err := runParallelCuts(c, s, cuts, ParallelOpts{Verify: VerifyFull})
			if err != nil {
				t.Fatalf("%s cuts=%v: %v", c.Name(), cuts, err)
			}
			sameAggregate(t, c.Name(), res, ref)
		}
	}
}

// TestRunParallelShortStreamAndFallback: streams below the shard
// minimum and codecs without StateCodec take the sequential RunFast
// path — and the fallback still verifies, catching a broken decoder.
func TestRunParallelShortStreamAndFallback(t *testing.T) {
	short := randomMixStream(32, 100, 3)
	c := MustNew("t0", 32, Options{Stride: 4})
	res, err := RunParallel(c, short, ParallelOpts{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	sameAggregate(t, "short", res, MustRun(c, short))

	if _, err := RunParallel(brokenCodec{}, randomMixStream(8, 2000, 3), ParallelOpts{Shards: 2}); err == nil {
		t.Error("RunParallel accepted a codec whose decoder is wrong via the fallback path")
	}
}

// TestRunParallelEmptyStream: zero entries must behave like RunFast.
func TestRunParallelEmptyStream(t *testing.T) {
	c := MustNew("gray", 32, Options{Stride: 4})
	res, err := RunParallel(c, trace.New("empty", 32), ParallelOpts{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 0 || res.Transitions != 0 {
		t.Errorf("empty stream priced as %d cycles / %d transitions", res.Cycles, res.Transitions)
	}
}

// TestShardCuts pins the splitter's invariants: p+1 ascending cuts
// covering [0, n] with every shard non-empty when p <= n.
func TestShardCuts(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{10, 3}, {19997, 16}, {512, 512}, {7, 7}} {
		cuts := shardCuts(tc.n, tc.p)
		if len(cuts) != tc.p+1 || cuts[0] != 0 || cuts[tc.p] != tc.n {
			t.Fatalf("shardCuts(%d,%d) = %v", tc.n, tc.p, cuts)
		}
		for k := 1; k <= tc.p; k++ {
			if cuts[k] <= cuts[k-1] {
				t.Fatalf("shardCuts(%d,%d): empty shard at %d: %v", tc.n, tc.p, k, cuts)
			}
		}
	}
}
