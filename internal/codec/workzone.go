package codec

import (
	"fmt"
	"math/bits"

	"busenc/internal/bus"
)

func init() {
	Register("workzone", func(width int, opts Options) (Codec, error) {
		zones := opts.Zones
		if zones == 0 {
			zones = 4
		}
		zoneBits := opts.ZoneBits
		if zoneBits == 0 {
			zoneBits = 8
		}
		return NewWorkZone(width, zones, zoneBits)
	})
}

// WorkZone is a simplified working-zone code (EXTENSION — Musoll et al.,
// referenced by the post-DATE'98 literature; the paper's conclusion points
// at exactly this class of locality exploitation for data buses). The
// encoder keeps K zone registers. When the new address falls within
// 2^zoneBits of a zone register, only the zone index and the offset are
// transmitted (Gray-coded so near offsets cost few transitions) and a HIT
// line is asserted; the matched zone register is advanced to the address.
// On a miss the full address is transmitted, HIT is de-asserted, and the
// least-recently-used zone register is replaced.
//
// Redundant lines: HIT plus ceil(log2(K)) zone-index lines.
type WorkZone struct {
	width    int
	mask     uint64
	zones    int
	zoneBits int
	idxBits  int
	hitBit   uint
	idxShift uint
}

// NewWorkZone returns a working-zone code with the given number of zone
// registers (a power of two) and zone offset width.
func NewWorkZone(width, zones, zoneBits int) (*WorkZone, error) {
	if zones < 2 || zones&(zones-1) != 0 {
		return nil, fmt.Errorf("codec workzone: zones must be a power of two >= 2, got %d", zones)
	}
	if zoneBits <= 0 || zoneBits >= width {
		return nil, fmt.Errorf("codec workzone: zoneBits %d out of range for width %d", zoneBits, width)
	}
	idxBits := bits.Len(uint(zones - 1))
	if err := checkWidth("workzone", width, 1+idxBits); err != nil {
		return nil, err
	}
	return &WorkZone{
		width:    width,
		mask:     bus.Mask(width),
		zones:    zones,
		zoneBits: zoneBits,
		idxBits:  idxBits,
		hitBit:   uint(width),
		idxShift: uint(width + 1),
	}, nil
}

// Name implements Codec.
func (w *WorkZone) Name() string { return "workzone" }

// PayloadWidth implements Codec.
func (w *WorkZone) PayloadWidth() int { return w.width }

// BusWidth implements Codec.
func (w *WorkZone) BusWidth() int { return w.width + 1 + w.idxBits }

// NewEncoder implements Codec.
func (w *WorkZone) NewEncoder() Encoder { return newWZEnd(w) }

// NewDecoder implements Codec.
func (w *WorkZone) NewDecoder() Decoder { return newWZEnd(w) }

// wzEnd holds the zone-register state, which evolves identically at both
// ends of the bus, so a single implementation serves as encoder and
// decoder.
type wzEnd struct {
	w    *WorkZone
	regs []uint64 // zone base registers
	age  []int    // LRU ages; larger = older
	prev uint64   // previous payload lines (held on hits beyond offset bits)
}

func newWZEnd(w *WorkZone) *wzEnd {
	e := &wzEnd{w: w, regs: make([]uint64, w.zones), age: make([]int, w.zones)}
	e.Reset()
	return e
}

func (e *wzEnd) Reset() {
	for i := range e.regs {
		e.regs[i] = 0
		e.age[i] = i
	}
	e.prev = 0
}

// wzState is the Snapshot payload: deep copies of the zone registers
// and LRU ages, so one State can seed several shard encoders without
// aliasing. Working-zone is a sweep codec — the registers accumulate
// the whole prefix's locality.
type wzState struct {
	regs []uint64
	age  []int
	prev uint64
}

// Snapshot implements StateCodec.
func (e *wzEnd) Snapshot() State {
	return wzState{
		regs: append([]uint64(nil), e.regs...),
		age:  append([]int(nil), e.age...),
		prev: e.prev,
	}
}

// Restore implements StateCodec.
func (e *wzEnd) Restore(st State) {
	s := st.(wzState)
	copy(e.regs, s.regs)
	copy(e.age, s.age)
	e.prev = s.prev
}

func (e *wzEnd) touch(idx int) {
	for i := range e.age {
		e.age[i]++
	}
	e.age[idx] = 0
}

func (e *wzEnd) lru() int {
	worst, at := -1, 0
	for i, a := range e.age {
		if a > worst {
			worst, at = a, i
		}
	}
	return at
}

func (e *wzEnd) match(addr uint64) int {
	span := uint64(1) << uint(e.w.zoneBits)
	for i, r := range e.regs {
		if addr >= r && addr-r < span {
			return i
		}
	}
	return -1
}

func (e *wzEnd) Encode(s Symbol) uint64 {
	w := e.w
	addr := s.Addr & w.mask
	idx := e.match(addr)
	var out uint64
	if idx >= 0 {
		off := addr - e.regs[idx]
		// Gray-code the offset and hold the remaining payload lines at
		// their previous value to minimize toggles.
		payload := (e.prev &^ bus.Mask(w.zoneBits)) | ToGray(off)
		out = payload | 1<<w.hitBit | uint64(idx)<<w.idxShift
		e.regs[idx] = addr
		e.touch(idx)
	} else {
		v := e.lru()
		e.regs[v] = addr
		e.touch(v)
		out = addr | uint64(v)<<w.idxShift
	}
	e.prev = out & w.mask
	return out
}

func (e *wzEnd) Decode(word uint64, _ bool) uint64 {
	w := e.w
	payload := word & w.mask
	idx := int(word >> w.idxShift & bus.Mask(w.idxBits))
	var addr uint64
	if word&(1<<w.hitBit) != 0 {
		off := FromGray(payload & bus.Mask(w.zoneBits))
		addr = (e.regs[idx] + off) & w.mask
		e.regs[idx] = addr
		e.touch(idx)
	} else {
		addr = payload
		e.regs[idx] = addr
		e.touch(idx)
	}
	e.prev = payload
	return addr
}
