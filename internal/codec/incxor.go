package codec

import (
	"fmt"
	"math/bits"

	"busenc/internal/bus"
)

func init() {
	Register("incxor", func(width int, opts Options) (Codec, error) {
		return NewIncXor(width, opts.stride())
	})
}

// IncXor is the INC-XOR code (EXTENSION — Ramprasad, Shanbhag and Hajj's
// coding framework, a standard irredundant competitor to T0 in the
// post-DATE'98 literature): the word transmitted is
//
//	B(t) = b(t) XOR (b(t-1) + S)
//
// i.e. the new address XORed with the *predicted* address. A perfectly
// sequential stream transmits the constant zero word — zero transitions,
// like T0 but without the redundant INC line. Out-of-sequence references
// transmit the prediction error, whose Hamming weight reflects how far
// the jump went. The decoder reverses the XOR with its own prediction.
type IncXor struct {
	width  int
	mask   uint64
	stride uint64
}

// NewIncXor returns the INC-XOR code over width lines with stride S.
func NewIncXor(width int, stride uint64) (*IncXor, error) {
	if err := checkWidth("incxor", width, 0); err != nil {
		return nil, err
	}
	if stride == 0 || stride&(stride-1) != 0 {
		return nil, fmt.Errorf("codec incxor: stride must be a power of two, got %d", stride)
	}
	return &IncXor{width: width, mask: bus.Mask(width), stride: stride}, nil
}

// Name implements Codec.
func (x *IncXor) Name() string { return "incxor" }

// PayloadWidth implements Codec.
func (x *IncXor) PayloadWidth() int { return x.width }

// BusWidth implements Codec.
func (x *IncXor) BusWidth() int { return x.width }

// NewEncoder implements Codec.
func (x *IncXor) NewEncoder() Encoder { return &incXorEnd{x: x} }

// NewDecoder implements Codec.
func (x *IncXor) NewDecoder() Decoder { return &incXorEnd{x: x} }

// incXorEnd holds the previous address; encode and decode mirror each
// other around the shared prediction.
type incXorEnd struct {
	x     *IncXor
	prev  uint64
	valid bool
}

func (e *incXorEnd) predict() uint64 {
	if !e.valid {
		// Before any reference the prediction is zero, so the first word
		// is the address itself at both ends.
		return 0
	}
	return (e.prev + e.x.stride) & e.x.mask
}

func (e *incXorEnd) Encode(s Symbol) uint64 {
	addr := s.Addr & e.x.mask
	out := addr ^ e.predict()
	e.prev = addr
	e.valid = true
	return out
}

func (e *incXorEnd) Decode(word uint64, _ bool) uint64 {
	addr := (word ^ e.predict()) & e.x.mask
	e.prev = addr
	e.valid = true
	return addr
}

func (e *incXorEnd) Reset() { e.prev, e.valid = 0, false }

// EncodePlanes implements PlaneEncoder. Lane i transmits
// a_i ^ (a_{i-1} + S): build the lane-shifted predecessor planes (the
// pre-block address feeds lane 0) and add the power-of-two stride
// bit-sliced — planes below the stride's bit pass through, the stride's
// own plane flips and seeds the carry, planes above it ripple the
// carry. Each lane's carry chain is independent. When First, the
// prediction for lane 0 must be zero (a fresh encoder transmits the
// first address verbatim), so lane 0 of the summed prediction is
// cleared before the XOR.
func (x *IncXor) EncodePlanes(blk *PlaneBlock, scratch *[64]uint64) (*[64]uint64, uint64) {
	a := blk.A
	prev := blk.PrevRaw & x.mask // zero when blk.First
	shift := bits.TrailingZeros64(x.stride)
	keep := ^uint64(0)
	if blk.First {
		keep = ^uint64(1)
	}
	width := x.width
	if width > 64 {
		width = 64 // unreachable; aids bounds-check elimination
	}
	low := shift
	if low > width {
		low = width
	}
	b := 0
	for ; b < low; b++ {
		ab := a[b]
		sp := ab<<1 | (prev>>uint(b))&1
		scratch[b] = ab ^ sp&keep
	}
	var cy uint64
	if b == shift && b < width {
		ab := a[b]
		sp := ab<<1 | (prev>>uint(b))&1
		scratch[b] = ab ^ ^sp&keep
		cy = sp
		b++
	}
	for ; b < width; b++ {
		ab := a[b]
		sp := ab<<1 | (prev>>uint(b))&1
		scratch[b] = ab ^ (sp^cy)&keep
		cy &= sp
	}
	addr := blk.Last & x.mask
	pred := uint64(0)
	if !(blk.First && blk.N == 1) {
		pred = (blk.Prev2&x.mask + x.stride) & x.mask
	}
	return scratch, addr ^ pred
}

// incXorState is the Snapshot payload of the shared INC-XOR end.
type incXorState struct {
	prev  uint64
	valid bool
}

// Snapshot implements StateCodec.
func (e *incXorEnd) Snapshot() State { return incXorState{e.prev, e.valid} }

// Restore implements StateCodec.
func (e *incXorEnd) Restore(st State) {
	s := st.(incXorState)
	e.prev, e.valid = s.prev, s.valid
}

// SeedFrom implements Seeder: the prediction depends only on the
// previous masked address.
func (e *incXorEnd) SeedFrom(prev Symbol) { e.prev, e.valid = prev.Addr&e.x.mask, true }
