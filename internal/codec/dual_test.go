package codec

import (
	"testing"

	"busenc/internal/bus"
)

// muxedSyms builds the canonical muxed pattern: instruction fetches in
// sequence, with a scattered data access interleaved after every fetch.
func muxedSyms(n int, stride uint64) []Symbol {
	var syms []Symbol
	data := []uint64{0x10008000, 0x7FFF0000, 0x10000004, 0x7FFFEEE0}
	for i := 0; i < n; i++ {
		syms = append(syms, Symbol{Addr: 0x400000 + uint64(i)*stride, Sel: true})
		syms = append(syms, Symbol{Addr: data[i%len(data)], Sel: false})
	}
	return syms
}

func TestDualT0TracksInstructionStreamAcrossDataAccesses(t *testing.T) {
	c := MustNew("dualt0", 32, Options{Stride: 4})
	syms := []Symbol{
		{Addr: 0x1000, Sel: true},
		{Addr: 0xAAAA, Sel: false}, // data, binary, ref holds
		{Addr: 0x1004, Sel: true},  // in sequence w.r.t. 0x1000 -> INC
		{Addr: 0xBBBB, Sel: false},
		{Addr: 0x1008, Sel: true}, // in sequence w.r.t. 0x1004 -> INC
	}
	words := drive(c, syms)
	if words[0] != 0x1000 || words[1] != 0xAAAA {
		t.Fatalf("prefix wrong: %#x %#x", words[0], words[1])
	}
	// The frozen payload is the *previous bus value* (the data address).
	if words[2] != 0xAAAA|1<<32 {
		t.Errorf("word 2 = %#x, want data address frozen with INC", words[2])
	}
	if words[4] != 0xBBBB|1<<32 {
		t.Errorf("word 4 = %#x, want data address frozen with INC", words[4])
	}
	// Decoder recovers the true instruction addresses from ref+S.
	dec := c.NewDecoder()
	want := []uint64{0x1000, 0xAAAA, 0x1004, 0xBBBB, 0x1008}
	for i, w := range words {
		if got := dec.Decode(w, syms[i].Sel); got != want[i] {
			t.Errorf("entry %d: decoded %#x, want %#x", i, got, want[i])
		}
	}
}

func TestDualT0DataNeverAssertsINC(t *testing.T) {
	c := MustNew("dualt0", 32, Options{Stride: 1})
	// Data addresses that are perfectly sequential must still go binary:
	// the dual code applies T0 only to the SEL=1 sub-stream.
	syms := []Symbol{
		{Addr: 0x100, Sel: false},
		{Addr: 0x101, Sel: false},
		{Addr: 0x102, Sel: false},
	}
	for i, w := range drive(c, syms) {
		if w&(1<<32) != 0 {
			t.Errorf("word %d asserts INC for a data address", i)
		}
	}
}

func TestDualT0RefUpdatesOnlyOnSel(t *testing.T) {
	c := MustNew("dualt0", 32, Options{Stride: 4})
	// An instruction at 0x1000, then a data access at 0x2000, then an
	// instruction at 0x2004. 0x2004 is "in sequence" w.r.t. the data
	// address but NOT w.r.t. the last instruction address, so it must be
	// transmitted binary.
	syms := []Symbol{
		{Addr: 0x1000, Sel: true},
		{Addr: 0x2000, Sel: false},
		{Addr: 0x2004, Sel: true},
	}
	words := drive(c, syms)
	if words[2] != 0x2004 {
		t.Errorf("word 2 = %#x, want binary 0x2004", words[2])
	}
}

func TestDualT0BIAllBranches(t *testing.T) {
	const n = 8
	c := MustNew("dualt0bi", n, Options{Stride: 1})
	if c.BusWidth() != n+1 {
		t.Fatalf("BusWidth = %d, want %d", c.BusWidth(), n+1)
	}
	enc := c.NewEncoder()
	dec := c.NewDecoder()

	// Instruction, binary branch.
	w := enc.Encode(Symbol{Addr: 0x01, Sel: true})
	if w != 0x01 {
		t.Fatalf("instr binary word = %#x", w)
	}
	if got := dec.Decode(w, true); got != 0x01 {
		t.Fatalf("decode = %#x", got)
	}

	// Instruction in sequence: INCV asserted, payload frozen.
	w = enc.Encode(Symbol{Addr: 0x02, Sel: true})
	if w != 0x01|1<<n {
		t.Fatalf("instr in-seq word = %#x", w)
	}
	if got := dec.Decode(w, true); got != 0x02 {
		t.Fatalf("decode = %#x, want 0x02", got)
	}

	// Data address far away: BI branch, INCV asserted, payload inverted.
	// prevWord = 0x101; addr 0xFE: H = popcount(0x101^0x0FE) = 9 > 4.
	w = enc.Encode(Symbol{Addr: 0xFE, Sel: false})
	if w != (^uint64(0xFE)&0xFF)|1<<n {
		t.Fatalf("data BI word = %#x", w)
	}
	if got := dec.Decode(w, false); got != 0xFE {
		t.Fatalf("decode = %#x, want 0xFE", got)
	}

	// Data address nearby: binary branch.
	w = enc.Encode(Symbol{Addr: 0x03, Sel: false})
	if w&(1<<n) != 0 {
		t.Fatalf("nearby data address asserted INCV: %#x", w)
	}
	if got := dec.Decode(w, false); got != 0x03 {
		t.Fatalf("decode = %#x, want 0x03", got)
	}

	// Instruction resumes: 0x03 = ref(0x02)+1 -> INCV.
	w = enc.Encode(Symbol{Addr: 0x03, Sel: true})
	if w&(1<<n) == 0 {
		t.Fatalf("instruction resume did not assert INCV: %#x", w)
	}
	if got := dec.Decode(w, true); got != 0x03 {
		t.Fatalf("decode = %#x, want 0x03", got)
	}
}

func TestDualT0BIInstructionsNeverInverted(t *testing.T) {
	c := MustNew("dualt0bi", 8, Options{Stride: 1})
	enc := c.NewEncoder()
	enc.Encode(Symbol{Addr: 0x00, Sel: true})
	// A far instruction jump must be transmitted binary (no BI for SEL=1).
	w := enc.Encode(Symbol{Addr: 0xFF, Sel: true})
	if w != 0xFF {
		t.Errorf("instruction jump word = %#x, want binary 0xFF", w)
	}
}

func TestDualCodesBeatT0OnMuxedStreams(t *testing.T) {
	// On a muxed stream with sequential fetches and scattered data, plain
	// T0 loses the sequence at every data access; the dual codes keep it.
	syms := muxedSyms(200, 4)
	s := streamOf(32, syms)

	binaryRes := MustRun(MustNew("binary", 32, Options{}), s)
	t0Res := MustRun(MustNew("t0", 32, Options{Stride: 4}), s)
	dualRes := MustRun(MustNew("dualt0", 32, Options{Stride: 4}), s)
	dualBIRes := MustRun(MustNew("dualt0bi", 32, Options{Stride: 4}), s)

	if dualRes.Transitions >= t0Res.Transitions {
		t.Errorf("dual T0 (%d) should beat plain T0 (%d) on muxed streams", dualRes.Transitions, t0Res.Transitions)
	}
	if dualBIRes.Transitions >= binaryRes.Transitions {
		t.Errorf("dual T0_BI (%d) should beat binary (%d)", dualBIRes.Transitions, binaryRes.Transitions)
	}
	if dualBIRes.Transitions > dualRes.Transitions {
		t.Errorf("dual T0_BI (%d) should not lose to dual T0 (%d) here", dualBIRes.Transitions, dualRes.Transitions)
	}
}

func TestDualT0BIWrapAround(t *testing.T) {
	c := MustNew("dualt0bi", 16, Options{Stride: 4})
	enc := c.NewEncoder()
	dec := c.NewDecoder()
	for _, s := range []Symbol{
		{Addr: 0xFFFC, Sel: true},
		{Addr: 0x0000, Sel: true}, // wraps
	} {
		w := enc.Encode(s)
		if got := dec.Decode(w, s.Sel); got != s.Addr {
			t.Errorf("decoded %#x, want %#x", got, s.Addr)
		}
	}
}

func TestDualT0BIZeroTransitionMuxedIdeal(t *testing.T) {
	// Ideal muxed stream: instructions strictly sequential, data constant.
	// After warm-up, instruction words freeze the bus (INCV=1) and the
	// constant data address alternates with it; the INCV line toggles but
	// the cost stays far below binary.
	var syms []Symbol
	for i := 0; i < 100; i++ {
		syms = append(syms, Symbol{Addr: 0x400000 + 4*uint64(i), Sel: true})
		syms = append(syms, Symbol{Addr: 0x10008000, Sel: false})
	}
	s := streamOf(32, syms)
	bin := MustRun(MustNew("binary", 32, Options{}), s)
	dbi := MustRun(MustNew("dualt0bi", 32, Options{Stride: 4}), s)
	if dbi.Transitions*2 > bin.Transitions {
		t.Errorf("dual T0_BI %d vs binary %d: expected >50%% savings on the ideal stream", dbi.Transitions, bin.Transitions)
	}
	_ = bus.Mask // keep the bus import meaningful if assertions change
}
