package codec_test

import (
	"fmt"

	"busenc/internal/codec"
	"busenc/internal/trace"
)

// ExampleRun compares the T0 code against binary on a short sequential
// fetch stream.
func ExampleRun() {
	s := trace.New("fetch", 32)
	for i := 0; i < 8; i++ {
		s.Append(0x00400000+uint64(i)*4, trace.Instr)
	}
	bin, _ := codec.Run(codec.MustNew("binary", 32, codec.Options{}), s)
	t0, _ := codec.Run(codec.MustNew("t0", 32, codec.Options{Stride: 4}), s)
	fmt.Printf("binary: %d transitions\n", bin.Transitions)
	fmt.Printf("t0:     %d transitions (%.0f%% savings)\n", t0.Transitions, t0.SavingsVs(bin)*100)
	// Output:
	// binary: 11 transitions
	// t0:     1 transitions (91% savings)
}

// ExampleCodec shows the raw encoder/decoder state machines: the T0
// encoder freezes the bus during an in-sequence run and the decoder
// regenerates the addresses from its own register.
func ExampleCodec() {
	c := codec.MustNew("t0", 16, codec.Options{Stride: 1})
	enc, dec := c.NewEncoder(), c.NewDecoder()
	for _, addr := range []uint64{0x100, 0x101, 0x102, 0x200} {
		word := enc.Encode(codec.Symbol{Addr: addr, Sel: true})
		fmt.Printf("addr %#x -> bus %#05x inc=%d -> decoded %#x\n",
			addr, word&0xFFFF, word>>16, dec.Decode(word, true))
	}
	// Output:
	// addr 0x100 -> bus 0x00100 inc=0 -> decoded 0x100
	// addr 0x101 -> bus 0x00100 inc=1 -> decoded 0x101
	// addr 0x102 -> bus 0x00100 inc=1 -> decoded 0x102
	// addr 0x200 -> bus 0x00200 inc=0 -> decoded 0x200
}

// ExampleNewBeach trains the profile-driven Beach code on a stream with
// correlated lines.
func ExampleNewBeach() {
	train := trace.New("profile", 8)
	for i := 0; i < 100; i++ {
		train.Append(uint64(i%2)*0b11, trace.DataRead) // lines 0,1 correlate
	}
	b, _ := codec.NewBeach(8, train)
	for _, p := range b.Pairs() {
		fmt.Printf("transmit line %d as line%d XOR line%d\n", p.Dst, p.Dst, p.Src)
	}
	// Output:
	// transmit line 0 as line0 XOR line1
}
