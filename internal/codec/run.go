package codec

import (
	"fmt"

	"busenc/internal/bus"
	"busenc/internal/trace"
)

// Result summarizes one codec applied to one stream.
type Result struct {
	// Codec is the codec name.
	Codec string
	// Stream is the stream name.
	Stream string
	// BusWidth is the total number of driven lines (payload + redundant).
	BusWidth int
	// Transitions is the total line-transition count over the stream,
	// counted on all driven lines including the redundant ones.
	Transitions int64
	// Cycles is the number of bus words driven.
	Cycles int64
	// PerLine is a copy of the per-line transition counts.
	PerLine []int64
	// MaxPerCycle is the worst single-cycle transition count.
	MaxPerCycle int
}

// AvgPerCycle returns the mean transitions per clock cycle.
func (r Result) AvgPerCycle() float64 {
	if r.Cycles <= 1 {
		return 0
	}
	return float64(r.Transitions) / float64(r.Cycles-1)
}

// SavingsVs returns the fractional transition savings of r relative to the
// reference result (typically binary): 1 - T_r / T_ref.
func (r Result) SavingsVs(ref Result) float64 {
	if ref.Transitions == 0 {
		return 0
	}
	return 1 - float64(r.Transitions)/float64(ref.Transitions)
}

// Run drives the stream through the codec's encoder, accumulates bus
// transitions on all lines, and verifies on the fly that the decoder
// recovers every address (returning an error on the first mismatch, which
// would indicate a codec implementation bug).
//
// Run is the reference (slow) evaluation path: one virtual Encode, Drive
// and Decode call per entry, full per-line accounting, exhaustive
// verification. RunFast in batch.go is the batched engine that produces
// identical aggregate counts; Run is kept dispatch-per-entry on purpose
// so the parity tests compare two independent implementations.
func Run(c Codec, s *trace.Stream) (Result, error) {
	enc := c.NewEncoder()
	dec := c.NewDecoder()
	b := bus.New(c.BusWidth())
	mask := bus.Mask(c.PayloadWidth())
	for i, e := range s.Entries {
		word := enc.Encode(SymbolOf(e))
		b.Drive(word)
		got := dec.Decode(word, e.Sel())
		if got != e.Addr&mask {
			return Result{}, fmt.Errorf("codec %s: round-trip mismatch at entry %d: addr %#x decoded as %#x", c.Name(), i, e.Addr&mask, got)
		}
	}
	return Result{
		Codec:       c.Name(),
		Stream:      s.Name,
		BusWidth:    c.BusWidth(),
		Transitions: b.Transitions(),
		Cycles:      b.Cycles(),
		PerLine:     b.PerLine(),
		MaxPerCycle: b.MaxPerCycle(),
	}, nil
}

// MustRun is Run panicking on round-trip failure; for benches and tables.
func MustRun(c Codec, s *trace.Stream) Result {
	r, err := Run(c, s)
	if err != nil {
		panic(err)
	}
	return r
}

// EncodeAll returns the encoded word sequence for a stream; useful for
// feeding gate-level simulations and for tests. It uses the codec's batch
// kernel when one exists.
func EncodeAll(c Codec, s *trace.Stream) []uint64 {
	enc := AsBatch(c.NewEncoder())
	syms := make([]Symbol, s.Len())
	for i, e := range s.Entries {
		syms[i] = SymbolOf(e)
	}
	out := make([]uint64, s.Len())
	enc.EncodeBatch(syms, out)
	return out
}

// Coupling classifies the encoded bus activity of a codec over a stream
// under the deep-submicron coupling model (see bus.CouplingStats) —
// EXTENSION beyond the paper's line-to-ground energy metric.
func Coupling(c Codec, s *trace.Stream) bus.CouplingStats {
	return bus.CouplingTransitions(EncodeAll(c, s), c.BusWidth())
}
