package codec

import (
	"fmt"
	"math/bits"

	"busenc/internal/bus"
)

func init() {
	Register("dualt0bi", func(width int, opts Options) (Codec, error) {
		return NewDualT0BI(width, opts.stride())
	})
}

// DualT0BI is the paper's headline code (Section 3.3), for multiplexed
// address buses: a single redundant line INCV combines the roles of INC
// and INV. The T0 code is applied to the instruction sub-stream (SEL=1)
// and bus-invert to the data sub-stream (SEL=0), the receiver telling the
// two meanings of INCV apart via SEL (eq. 11/12):
//
//	(B, INCV) = (B(t-1), 1)  if SEL=1 and b(t) = ref + S
//	          = (~b(t),  1)  if SEL=0 and H(t) > N/2
//	          = (b(t),   0)  otherwise
//
// with H(t) the Hamming distance between the previous encoded word
// (including INCV) and b(t) extended with INCV=0, and ref the most recent
// instruction address (updated only on SEL=1 cycles).
type DualT0BI struct {
	width   int
	mask    uint64
	stride  uint64
	incvBit uint
}

// NewDualT0BI returns the dual T0_BI code over width lines with stride S.
func NewDualT0BI(width int, stride uint64) (*DualT0BI, error) {
	if err := checkWidth("dualt0bi", width, 1); err != nil {
		return nil, err
	}
	if stride == 0 || stride&(stride-1) != 0 {
		return nil, fmt.Errorf("codec dualt0bi: stride must be a power of two, got %d", stride)
	}
	return &DualT0BI{width: width, mask: bus.Mask(width), stride: stride, incvBit: uint(width)}, nil
}

// Name implements Codec.
func (t *DualT0BI) Name() string { return "dualt0bi" }

// PayloadWidth implements Codec.
func (t *DualT0BI) PayloadWidth() int { return t.width }

// BusWidth implements Codec.
func (t *DualT0BI) BusWidth() int { return t.width + 1 }

// NewEncoder implements Codec.
func (t *DualT0BI) NewEncoder() Encoder { return &dualT0BIEncoder{t: t} }

// NewDecoder implements Codec.
func (t *DualT0BI) NewDecoder() Decoder { return &dualT0BIDecoder{t: t} }

type dualT0BIEncoder struct {
	t        *DualT0BI
	ref      uint64 // last instruction address
	refValid bool
	prevWord uint64 // previous encoded word incl. INCV
}

func (e *dualT0BIEncoder) Encode(s Symbol) uint64 {
	t := e.t
	addr := s.Addr & t.mask
	var out uint64
	switch {
	case s.Sel && e.refValid && addr == (e.ref+t.stride)&t.mask:
		// Instruction in sequence: freeze payload, assert INCV.
		out = (e.prevWord & t.mask) | 1<<t.incvBit
	case !s.Sel && 2*bits.OnesCount64(e.prevWord^addr) > t.width:
		// Data address far from the current bus state: invert it.
		out = (^addr & t.mask) | 1<<t.incvBit
	default:
		out = addr
	}
	if s.Sel {
		e.ref = addr
		e.refValid = true
	}
	e.prevWord = out
	return out
}

func (e *dualT0BIEncoder) Reset() { e.ref, e.refValid, e.prevWord = 0, false, 0 }

// dualT0BIState is the Snapshot payload; both fields are prefix
// functions, so dual T0_BI is a sweep codec.
type dualT0BIState struct {
	ref      uint64
	refValid bool
	prevWord uint64
}

// Snapshot implements StateCodec.
func (e *dualT0BIEncoder) Snapshot() State { return dualT0BIState{e.ref, e.refValid, e.prevWord} }

// Restore implements StateCodec.
func (e *dualT0BIEncoder) Restore(st State) {
	s := st.(dualT0BIState)
	e.ref, e.refValid, e.prevWord = s.ref, s.refValid, s.prevWord
}

// EncodeBatch implements BatchEncoder with the encoder state in locals.
func (e *dualT0BIEncoder) EncodeBatch(syms []Symbol, out []uint64) {
	t := e.t
	mask, stride, width := t.mask, t.stride, t.width
	incvMask := uint64(1) << t.incvBit
	ref, refValid, prevWord := e.ref, e.refValid, e.prevWord
	for i := range syms {
		s := syms[i]
		addr := s.Addr & mask
		var w uint64
		switch {
		case s.Sel && refValid && addr == (ref+stride)&mask:
			w = (prevWord & mask) | incvMask
		case !s.Sel && 2*bits.OnesCount64(prevWord^addr) > width:
			w = (^addr & mask) | incvMask
		default:
			w = addr
		}
		if s.Sel {
			ref = addr
			refValid = true
		}
		prevWord = w
		out[i] = w
	}
	e.ref, e.refValid, e.prevWord = ref, refValid, prevWord
}

type dualT0BIDecoder struct {
	t   *DualT0BI
	ref uint64
}

func (d *dualT0BIDecoder) Decode(word uint64, sel bool) uint64 {
	t := d.t
	var addr uint64
	switch {
	case word&(1<<t.incvBit) != 0 && sel:
		addr = (d.ref + t.stride) & t.mask
	case word&(1<<t.incvBit) != 0:
		addr = ^word & t.mask
	default:
		addr = word & t.mask
	}
	if sel {
		d.ref = addr
	}
	return addr
}

func (d *dualT0BIDecoder) Reset() { d.ref = 0 }
