package codec

import (
	"testing"

	"busenc/internal/bus"
	"busenc/internal/trace"
)

func TestAdaptiveRepeatIsFree(t *testing.T) {
	c := MustNew("adaptive", 32, Options{})
	if c.BusWidth() != 33 {
		t.Fatalf("BusWidth = %d", c.BusWidth())
	}
	// Re-referencing the same address: first a miss (raw), then hits at
	// index 0 forever — the bus freezes entirely after the second word.
	syms := make([]Symbol, 20)
	for i := range syms {
		syms[i] = Symbol{Addr: 0x12345678}
	}
	words := drive(c, syms)
	if words[0] != 0x12345678 {
		t.Fatalf("first word = %#x", words[0])
	}
	for i := 2; i < len(words); i++ {
		if words[i] != words[1] {
			t.Fatalf("word %d = %#x, bus should be frozen at %#x", i, words[i], words[1])
		}
	}
	if total := bus.CountTransitions(words[1:], 33); total != 0 {
		t.Errorf("steady-state transitions = %d", total)
	}
}

func TestAdaptiveAlternationCostsTwoLines(t *testing.T) {
	c := MustNew("adaptive", 32, Options{})
	enc := c.NewEncoder()
	a, b := Symbol{Addr: 0x1000}, Symbol{Addr: 0x7FFF0000}
	enc.Encode(a) // miss
	enc.Encode(b) // miss
	// Both now in the list; alternating references are one-hot swaps.
	w1 := enc.Encode(a)
	w2 := enc.Encode(b)
	w3 := enc.Encode(a)
	if bus.Hamming(w1, w2, 33) > 2 || bus.Hamming(w2, w3, 33) > 2 {
		t.Errorf("alternation cost: %d then %d transitions, want <= 2",
			bus.Hamming(w1, w2, 33), bus.Hamming(w2, w3, 33))
	}
}

func TestAdaptiveMTFEviction(t *testing.T) {
	c, err := NewAdaptive(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc := c.NewEncoder()
	dec := c.NewDecoder()
	// Touch three addresses with a 2-entry list; the first is evicted, so
	// returning to it is a miss. Decodes must stay exact throughout.
	for _, a := range []uint64{0x10, 0x20, 0x30, 0x10, 0x20} {
		w := enc.Encode(Symbol{Addr: a})
		if got := dec.Decode(w, false); got != a {
			t.Fatalf("decoded %#x, want %#x", got, a)
		}
	}
}

func TestAdaptiveValidation(t *testing.T) {
	if _, err := NewAdaptive(16, 0); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := NewAdaptive(16, 17); err == nil {
		t.Error("more entries than payload lines accepted")
	}
	if _, err := New("adaptive", 64, Options{}); err == nil {
		t.Error("65-line bus accepted")
	}
}

func TestAdaptiveBeatsBinaryOnHotAddressStream(t *testing.T) {
	// A branch-target-like stream: a handful of hot addresses revisited
	// in a loop, with occasional cold misses.
	s := trace.New("hot", 32)
	hot := []uint64{0x00400100, 0x7FFF0040, 0x10008000, 0x0040FF00}
	for i := 0; i < 4000; i++ {
		if i%37 == 36 {
			s.Append(uint64(0x20000000)+uint64(i)*4, trace.DataRead)
			continue
		}
		s.Append(hot[i%len(hot)], trace.DataRead)
	}
	ad := MustRun(MustNew("adaptive", 32, Options{}), s)
	bin := MustRun(MustNew("binary", 32, Options{}), s)
	if ad.Transitions*3 > bin.Transitions {
		t.Errorf("adaptive %d vs binary %d: expected >66%% savings on hot-address streams", ad.Transitions, bin.Transitions)
	}
}
