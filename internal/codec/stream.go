package codec

import (
	"fmt"
	"io"
	"math"

	"busenc/internal/bus"
	"busenc/internal/obs"
	"busenc/internal/trace"
)

// Streaming evaluation. RunStream is the chunk-iterator counterpart of
// RunFast: it drives a trace.ChunkReader through the codec's batch
// kernel without ever holding the full stream, carrying the sequential
// encoder/decoder state (T0 reference registers, BI inversion state,
// INC lines) across chunk boundaries simply by reusing the same encoder
// instance for every chunk — EncodeBatch is specified to advance state
// exactly as the equivalent Encode calls would, so chunking is
// invisible to the codec. Memory use is bounded by the reader's chunk
// pool plus one pooled symbol/word buffer; trace length only affects
// wall time. The parity test in stream_test.go pins RunStream
// bit-for-bit to the reference Run for every registered codec at chunk
// sizes 1, 7, 4096 and len(stream).

// RunStream evaluates the codec over a chunked trace, producing a
// Result identical to Run/RunFast on the materialized equivalent
// (Transitions, Cycles, MaxPerCycle; PerLine when opts.PerLine is set).
// It consumes r to io.EOF, releasing every chunk; any reader error is
// returned as-is. Verification follows opts.Verify; VerifyFull checks
// every entry just like Run.
func RunStream(c Codec, r trace.ChunkReader, opts RunOpts) (Result, error) {
	if usePlane, err := PlaneEligible(c, opts.Kernel, opts.Verify); err != nil {
		return Result{}, err
	} else if usePlane {
		return runStreamPlane(c, r, opts)
	}
	root := obs.StartSpan("codec.run_stream", obs.StageEncode).WithCodec(c.Name()).WithStream(r.Name())
	enc := AsBatch(c.NewEncoder())
	var b *bus.Bus
	if opts.PerLine {
		b = bus.New(c.BusWidth())
	} else {
		b = bus.NewAggregate(c.BusWidth())
	}
	var dec Decoder
	verifyLeft := 0
	switch opts.Verify {
	case VerifyFull:
		// The stream length is unknown up front; verify until EOF.
		dec = c.NewDecoder()
		verifyLeft = math.MaxInt
	case VerifySampled:
		dec = c.NewDecoder()
		verifyLeft = VerifySampleLen
	}
	mask := bus.Mask(c.PayloadWidth())
	buf := runBufPool.Get().(*runBuf)
	defer runBufPool.Put(buf)
	idx := 0    // absolute entry index, for mismatch reports
	chunkN := 0 // reader chunks consumed, for span attribution
	for {
		ch, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			root.EndErr(err)
			return Result{}, err
		}
		csp := root.Child("codec.chunk", obs.StageEncode).WithChunk(chunkN)
		chunkN++
		addrs, kinds := ch.Addrs, ch.Kinds
		// Reader chunks can exceed the engine's batch granularity (e.g.
		// Stream.Chunks(len(stream))); re-chunk to keep the pooled
		// buffers fixed-size.
		for base := 0; base < len(addrs); base += runChunk {
			end := base + runChunk
			if end > len(addrs) {
				end = len(addrs)
			}
			n := end - base
			syms := buf.syms[:n]
			words := buf.words[:n]
			for i := 0; i < n; i++ {
				syms[i] = Symbol{Addr: addrs[base+i], Sel: kinds[base+i] == trace.Instr}
			}
			enc.EncodeBatch(syms, words)
			b.Accumulate(words)
			if dec != nil && verifyLeft > 0 {
				vn := n
				if vn > verifyLeft {
					vn = verifyLeft
				}
				for i := 0; i < vn; i++ {
					got := dec.Decode(words[i], syms[i].Sel)
					if want := syms[i].Addr & mask; got != want {
						ch.Release()
						err := fmt.Errorf("codec %s: round-trip mismatch at entry %d: addr %#x decoded as %#x", c.Name(), idx+base+i, want, got)
						csp.EndErr(err)
						root.EndErr(err)
						return Result{}, err
					}
				}
				verifyLeft -= vn
				if verifyLeft == 0 {
					dec = nil
				}
			}
		}
		idx += len(addrs)
		ch.Release()
		csp.End()
	}
	root.End()
	RecordRun(c.Name(), int64(idx), b.Transitions())
	return Result{
		Codec:       c.Name(),
		Stream:      r.Name(),
		BusWidth:    c.BusWidth(),
		Transitions: b.Transitions(),
		Cycles:      b.Cycles(),
		PerLine:     b.PerLine(),
		MaxPerCycle: b.MaxPerCycle(),
	}, nil
}

// runStreamPlane is RunStream's plane-domain path. Reader chunks carry
// addresses in SoA form, so they feed the plane set with no
// symbol-gather at all — the chunk view goes straight into the
// transpose. Sampled verification replays the leading entries through a
// scalar encoder/decoder pair as the chunks stream past.
func runStreamPlane(c Codec, r trace.ChunkReader, opts RunOpts) (Result, error) {
	root := obs.StartSpan("codec.run_stream", obs.StageEncode).WithCodec(c.Name()).WithStream(r.Name())
	ps, err := NewPlaneSet([]Codec{c}, opts.PerLine)
	if err != nil {
		root.EndErr(err)
		return Result{}, err
	}
	var enc Encoder
	var dec Decoder
	verifyLeft := 0
	if opts.Verify == VerifySampled {
		enc, dec = c.NewEncoder(), c.NewDecoder()
		verifyLeft = VerifySampleLen
	}
	mask := bus.Mask(c.PayloadWidth())
	idx := 0
	chunkN := 0
	for {
		ch, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			root.EndErr(err)
			return Result{}, err
		}
		csp := root.Child("codec.chunk", obs.StageEncode).WithChunk(chunkN)
		chunkN++
		addrs, kinds := ch.Addrs, ch.Kinds
		if verifyLeft > 0 {
			vn := len(addrs)
			if vn > verifyLeft {
				vn = verifyLeft
			}
			for i := 0; i < vn; i++ {
				sel := kinds[i] == trace.Instr
				word := enc.Encode(Symbol{Addr: addrs[i], Sel: sel})
				got := dec.Decode(word, sel)
				if want := addrs[i] & mask; got != want {
					ch.Release()
					err := fmt.Errorf("codec %s: round-trip mismatch at entry %d: addr %#x decoded as %#x", c.Name(), idx+i, want, got)
					csp.EndErr(err)
					root.EndErr(err)
					return Result{}, err
				}
			}
			verifyLeft -= vn
		}
		ps.Consume(addrs)
		idx += len(addrs)
		ch.Release()
		csp.End()
	}
	root.End()
	res := ps.Results(r.Name())[0]
	RecordRun(c.Name(), int64(idx), res.Transitions)
	return res, nil
}

// MustRunStream is RunStream panicking on error; for benches and tables.
func MustRunStream(c Codec, r trace.ChunkReader, opts RunOpts) Result {
	res, err := RunStream(c, r, opts)
	if err != nil {
		panic(err)
	}
	return res
}
