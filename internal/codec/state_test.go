package codec

import (
	"testing"

	"busenc/internal/bus"
	"busenc/internal/trace"
)

// encodeRange encodes entries[from:to) through enc and returns the words.
func encodeRange(enc Encoder, s *trace.Stream, from, to int) []uint64 {
	out := make([]uint64, 0, to-from)
	for _, e := range s.Entries[from:to] {
		out = append(out, enc.Encode(SymbolOf(e)))
	}
	return out
}

// checkSnapshotSplit verifies the StateCodec contract for one codec at
// one split point: Snapshot taken after the prefix, then encoding the
// suffix, then Restore (into the same encoder and into a fresh one)
// must reproduce the identical suffix words — and therefore identical
// transition counts.
func checkSnapshotSplit(t *testing.T, c Codec, s *trace.Stream, split int) {
	t.Helper()
	enc := c.NewEncoder()
	sc, ok := enc.(StateCodec)
	if !ok {
		t.Fatalf("%s: encoder does not implement StateCodec", c.Name())
	}
	encodeRange(enc, s, 0, split)
	st := sc.Snapshot()
	want := encodeRange(enc, s, split, s.Len())

	// Restore into the mutated original encoder.
	sc.Restore(st)
	if got := encodeRange(enc, s, split, s.Len()); !equalWords(got, want) {
		t.Errorf("%s split=%d: re-encode after Restore diverges", c.Name(), split)
	}

	// Restore the same State into a fresh instance: Snapshot must not
	// alias the source encoder's memory.
	fresh := c.NewEncoder()
	fresh.(StateCodec).Restore(st)
	got := encodeRange(fresh, s, split, s.Len())
	if !equalWords(got, want) {
		t.Errorf("%s split=%d: fresh encoder after Restore diverges", c.Name(), split)
	}
	if gt, wt := bus.CountTransitions(got, c.BusWidth()), bus.CountTransitions(want, c.BusWidth()); gt != wt {
		t.Errorf("%s split=%d: suffix transition count %d, want %d", c.Name(), split, gt, wt)
	}
}

func equalWords(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSnapshotRestoreEveryCodec runs the snapshot property for every
// registered codec at a spread of split points, including the edges.
func TestSnapshotRestoreEveryCodec(t *testing.T) {
	s := randomMixStream(32, 3000, 17)
	for _, c := range allCodecs(t, 32) {
		for _, split := range []int{0, 1, 2, 100, 1499, s.Len() - 1, s.Len()} {
			checkSnapshotSplit(t, c, s, split)
		}
	}
}

// TestSeederMatchesPrefix pins the Seeder contract against the ground
// truth: SeedFrom(last prefix symbol) on a fresh encoder must yield the
// same suffix words as an encoder that actually encoded the prefix.
func TestSeederMatchesPrefix(t *testing.T) {
	s := randomMixStream(32, 2000, 23)
	seedable := 0
	for _, c := range allCodecs(t, 32) {
		probe := c.NewEncoder()
		sd, ok := probe.(Seeder)
		if !ok {
			continue
		}
		seedable++
		for _, split := range []int{1, 7, 1023, s.Len() - 1} {
			ref := c.NewEncoder()
			encodeRange(ref, s, 0, split)
			want := encodeRange(ref, s, split, s.Len())
			sd.SeedFrom(SymbolOf(s.Entries[split-1]))
			if got := encodeRange(probe, s, split, s.Len()); !equalWords(got, want) {
				t.Errorf("%s split=%d: seeded encoder diverges from prefix-encoded one", c.Name(), split)
			}
			probe = c.NewEncoder()
			sd = probe.(Seeder)
		}
	}
	// binary, gray, beach, offset, incxor — the previous-symbol codes.
	if seedable != 5 {
		t.Errorf("seedable codecs = %d, want 5 (did a Seeder appear or vanish?)", seedable)
	}
}

// FuzzSnapshotSplit fuzzes the split point and stream seed of the
// snapshot property across every registered codec.
func FuzzSnapshotSplit(f *testing.F) {
	f.Add(int64(1), uint16(0))
	f.Add(int64(42), uint16(255))
	f.Add(int64(-7), uint16(511))
	f.Fuzz(func(t *testing.T, seed int64, rawSplit uint16) {
		s := randomMixStream(32, 512, seed)
		split := int(rawSplit) % (s.Len() + 1)
		for _, c := range allCodecs(t, 32) {
			checkSnapshotSplit(t, c, s, split)
		}
	})
}
