package netlist

import (
	"math/bits"
	"math/rand"
	"testing"
)

// setBus converts a word to input values for a bus created by InputBus.
func setBus(word uint64, width int) []bool {
	out := make([]bool, width)
	for i := 0; i < width; i++ {
		out[i] = word>>uint(i)&1 == 1
	}
	return out
}

func TestGateTruthTables(t *testing.T) {
	n := New("gates")
	a := n.Input("a")
	b := n.Input("b")
	s := n.Input("s")
	n.Output("and", n.And(a, b))
	n.Output("or", n.Or(a, b))
	n.Output("nand", n.Nand(a, b))
	n.Output("nor", n.Nor(a, b))
	n.Output("xor", n.Xor(a, b))
	n.Output("xnor", n.Xnor(a, b))
	n.Output("inv", n.Not(a))
	n.Output("buf", n.Buf(a))
	n.Output("mux", n.Mux(a, b, s))
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, want bool) {
		t.Helper()
		id, _ := n.OutputNet(name)
		if sim.Value(id) != want {
			t.Errorf("%s: got %v, want %v", name, sim.Value(id), want)
		}
	}
	for _, tc := range []struct{ a, b, s bool }{
		{false, false, false}, {false, true, false}, {true, false, true}, {true, true, true},
		{false, true, true}, {true, false, false},
	} {
		sim.Step([]bool{tc.a, tc.b, tc.s})
		check("and", tc.a && tc.b)
		check("or", tc.a || tc.b)
		check("nand", !(tc.a && tc.b))
		check("nor", !(tc.a || tc.b))
		check("xor", tc.a != tc.b)
		check("xnor", tc.a == tc.b)
		check("inv", !tc.a)
		check("buf", tc.a)
		want := tc.a
		if tc.s {
			want = tc.b
		}
		check("mux", want)
	}
}

func TestDFFDelaysByOneCycle(t *testing.T) {
	n := New("dff")
	d := n.Input("d")
	q := n.DFF(d)
	q2 := n.DFF(q) // shift chain
	n.Output("q", q)
	n.Output("q2", q2)
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	seq := []bool{true, false, true, true, false}
	var gotQ, gotQ2 []bool
	for _, v := range seq {
		sim.Step([]bool{v})
		gotQ = append(gotQ, sim.Value(q))
		gotQ2 = append(gotQ2, sim.Value(q2))
	}
	// q lags input by one cycle (initial state 0); q2 by two.
	wantQ := []bool{false, true, false, true, true}
	wantQ2 := []bool{false, false, true, false, true}
	for i := range seq {
		if gotQ[i] != wantQ[i] {
			t.Errorf("q at cycle %d = %v, want %v", i, gotQ[i], wantQ[i])
		}
		if gotQ2[i] != wantQ2[i] {
			t.Errorf("q2 at cycle %d = %v, want %v", i, gotQ2[i], wantQ2[i])
		}
	}
}

func TestDFFFeedbackHoldRegister(t *testing.T) {
	// q' = en ? d : q — a load-enable register.
	n := New("holdreg")
	d := n.Input("d")
	en := n.Input("en")
	q, connect := n.DFFFeedback()
	connect(n.Mux(q, d, en))
	n.Output("q", q)
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct{ d, en, wantQNext bool }{
		{true, true, true},   // load 1
		{false, false, true}, // hold
		{false, true, false}, // load 0
		{true, false, false}, // hold
	}
	for i, st := range steps {
		sim.Step([]bool{st.d, st.en})
		sim.Step([]bool{st.d, st.en}) // settle next cycle to observe q
		if sim.Value(q) != st.wantQNext {
			t.Errorf("step %d: q = %v, want %v", i, sim.Value(q), st.wantQNext)
		}
	}
}

func TestCombinationalCycleRejected(t *testing.T) {
	n := New("cycle")
	a := n.Input("a")
	q, connect := n.DFFFeedback()
	_ = q
	// Create a direct combinational loop: x = AND(a, x) via feedback on
	// a non-DFF path.
	x := n.newNet()
	n.addCell(KindAnd2, x, a, x)
	connect(a)
	if _, err := NewSimulator(n); err == nil {
		t.Error("combinational cycle accepted")
	}
}

func TestIncrementerExhaustive(t *testing.T) {
	for _, strideLog := range []int{0, 1, 2} {
		n := New("inc")
		a := n.InputBus("a", 6)
		n.OutputBus("y", n.Incrementer(a, strideLog))
		sim, err := NewSimulator(n)
		if err != nil {
			t.Fatal(err)
		}
		for v := uint64(0); v < 64; v++ {
			sim.Step(setBus(v, 6))
			want := (v + 1<<uint(strideLog)) & 63
			if got := sim.OutputWord("y", 6); got != want {
				t.Errorf("strideLog %d: inc(%d) = %d, want %d", strideLog, v, got, want)
			}
		}
	}
}

func TestEqualExhaustive(t *testing.T) {
	n := New("eq")
	a := n.InputBus("a", 4)
	b := n.InputBus("b", 4)
	n.Output("eq", n.Equal(a, b))
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := n.OutputNet("eq")
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			sim.Step(append(setBus(x, 4), setBus(y, 4)...))
			if sim.Value(id) != (x == y) {
				t.Errorf("Equal(%d, %d) = %v", x, y, sim.Value(id))
			}
		}
	}
}

func TestPopCountExhaustive(t *testing.T) {
	const w = 9
	n := New("pop")
	a := n.InputBus("a", w)
	cnt := n.PopCount(a)
	n.OutputBus("c", cnt)
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 1<<w; v++ {
		sim.Step(setBus(v, w))
		if got := sim.OutputWord("c", len(cnt)); got != uint64(bits.OnesCount64(v)) {
			t.Errorf("PopCount(%#b) = %d, want %d", v, got, bits.OnesCount64(v))
		}
	}
}

func TestGreaterThanConstExhaustive(t *testing.T) {
	for _, k := range []uint64{0, 3, 7, 8, 15} {
		n := New("gt")
		a := n.InputBus("a", 4)
		n.Output("gt", n.GreaterThanConst(a, k))
		sim, err := NewSimulator(n)
		if err != nil {
			t.Fatal(err)
		}
		id, _ := n.OutputNet("gt")
		for v := uint64(0); v < 16; v++ {
			sim.Step(setBus(v, 4))
			if sim.Value(id) != (v > k) {
				t.Errorf("GT(%d > %d) = %v", v, k, sim.Value(id))
			}
		}
	}
}

func TestToggleCounting(t *testing.T) {
	n := New("tog")
	a := n.Input("a")
	inv := n.Not(a)
	n.Output("y", inv)
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []bool{false, true, false, true} {
		sim.Step([]bool{v})
	}
	// a toggles 3 times, inv toggles 3 times.
	if sim.Toggles()[a] != 3 || sim.Toggles()[inv] != 3 {
		t.Errorf("toggles: a=%d inv=%d, want 3 each", sim.Toggles()[a], sim.Toggles()[inv])
	}
	act := sim.Activity()
	if act.NetAlpha[a] != 1.0 {
		t.Errorf("alpha(a) = %v, want 1", act.NetAlpha[a])
	}
}

func TestPowerScalesWithActivityAndLoad(t *testing.T) {
	lib := DefaultLibrary()
	n := New("pow")
	a := n.Input("a")
	n.Output("y", n.Buf(a))
	n.Output("q", n.DFF(a)) // sequential cell: idle power stays positive
	sim, _ := NewSimulator(n)
	// Full activity.
	for i := 0; i < 100; i++ {
		sim.Step([]bool{i%2 == 0})
	}
	actHigh := sim.Activity()
	pHigh := lib.Power(n, actHigh, 100e6, 0)
	pHighLoaded := lib.Power(n, actHigh, 100e6, 10e-12)
	if pHighLoaded <= pHigh {
		t.Error("adding output load must increase power")
	}
	// Idle activity.
	sim2, _ := NewSimulator(n)
	for i := 0; i < 100; i++ {
		sim2.Step([]bool{false})
	}
	pLow := lib.Power(n, sim2.Activity(), 100e6, 0)
	if pLow >= pHigh {
		t.Error("idle circuit must dissipate less than a toggling one")
	}
	if pLow <= 0 {
		t.Error("clock power must keep idle power positive")
	}
}

func TestPropagateMatchesSimulationOnRandomInputs(t *testing.T) {
	// A mixed combinational block driven by independent random inputs:
	// the probabilistic estimate must track simulation closely, since the
	// independence assumption holds by construction.
	n := New("prob")
	a := n.InputBus("a", 8)
	x := n.XorBank(a[:4], a[4:])
	cnt := n.PopCount(x)
	n.Output("gt", n.GreaterThanConst(cnt, 2))
	n.OutputBus("c", cnt)
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30000; i++ {
		sim.Step(setBus(rng.Uint64(), 8))
	}
	measured := sim.Activity()
	est, err := Propagate(n, UniformInputs(n, ProbIn{P: 0.5, D: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	lib := DefaultLibrary()
	pm := lib.Power(n, measured, 100e6, 0)
	pe := lib.Power(n, est, 100e6, 0)
	ratio := pe / pm
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("probabilistic power %.3g vs simulated %.3g (ratio %.2f) — too far apart", pe, pm, ratio)
	}
}

func TestPropagateRequiresAllInputs(t *testing.T) {
	n := New("missing")
	a := n.Input("a")
	b := n.Input("b")
	n.Output("y", n.And(a, b))
	if _, err := Propagate(n, map[NetID]ProbIn{a: {0.5, 0.5}}); err == nil {
		t.Error("missing input accepted")
	}
}

func TestPropagateSequentialFixedPoint(t *testing.T) {
	// A toggle flip-flop: q' = q XOR en. With en always high, q toggles
	// every cycle: P(q) = 0.5 and D(q) should converge near 0.5 (the
	// lag-one estimate 2*0.5*0.5).
	n := New("tff")
	en := n.Input("en")
	q, connect := n.DFFFeedback()
	connect(n.Xor(q, en))
	n.Output("q", q)
	act, err := Propagate(n, UniformInputs(n, ProbIn{P: 1, D: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if a := act.NetAlpha[q]; a < 0.4 || a > 0.6 {
		t.Errorf("toggle FF density = %v, want ~0.5", a)
	}
}

func TestLibraryCoversAllKinds(t *testing.T) {
	lib := DefaultLibrary()
	for k := Kind(0); k < kindCount; k++ {
		if lib.Specs[k].InputCapF <= 0 {
			t.Errorf("%s has no input capacitance", k)
		}
	}
	if lib.Specs[KindDFF].ClockEnergyJ <= 0 {
		t.Error("DFF needs clock energy")
	}
}

func TestAreaAndCounting(t *testing.T) {
	n := New("area")
	a := n.Input("a")
	b := n.Input("b")
	n.Output("y", n.And(a, b))
	n.Output("z", n.DFF(a))
	lib := DefaultLibrary()
	if lib.Area(n) != lib.Specs[KindAnd2].Area+lib.Specs[KindDFF].Area {
		t.Error("area mismatch")
	}
	if n.CountCells(KindAnd2) != 1 || n.CountCells(KindDFF) != 1 || n.NumCells() != 2 {
		t.Error("cell counting wrong")
	}
}

func TestBusHelpers(t *testing.T) {
	n := New("bus")
	a := n.InputBus("a", 3)
	if len(a) != 3 || len(n.Inputs()) != 3 {
		t.Fatal("InputBus wrong")
	}
	n.OutputBus("y", a)
	if len(n.Outputs()) != 3 {
		t.Fatal("OutputBus wrong")
	}
	if _, ok := n.InputNet("a[2]"); !ok {
		t.Error("named input lookup failed")
	}
	if _, ok := n.OutputNet("y[0]"); !ok {
		t.Error("named output lookup failed")
	}
}
