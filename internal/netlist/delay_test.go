package netlist

import "testing"

func TestPrefixIncrementerExhaustive(t *testing.T) {
	for _, strideLog := range []int{0, 1, 3} {
		n := New("pinc")
		a := n.InputBus("a", 7)
		n.OutputBus("y", n.PrefixIncrementer(a, strideLog))
		sim, err := NewSimulator(n)
		if err != nil {
			t.Fatal(err)
		}
		for v := uint64(0); v < 128; v++ {
			sim.Step(setBus(v, 7))
			want := (v + 1<<uint(strideLog)) & 127
			if got := sim.OutputWord("y", 7); got != want {
				t.Errorf("strideLog %d: inc(%d) = %d, want %d", strideLog, v, got, want)
			}
		}
	}
}

func TestPrefixIncrementerShallowerThanRipple(t *testing.T) {
	depthOf := func(build func(n *Netlist, a []NetID) []NetID) int {
		n := New("d")
		a := n.InputBus("a", 32)
		n.OutputBus("y", build(n, a))
		max := 0
		for _, d := range n.Depths() {
			if d > max {
				max = d
			}
		}
		return max
	}
	ripple := depthOf(func(n *Netlist, a []NetID) []NetID { return n.Incrementer(a, 0) })
	prefix := depthOf(func(n *Netlist, a []NetID) []NetID { return n.PrefixIncrementer(a, 0) })
	if prefix*3 > ripple {
		t.Errorf("prefix depth %d not clearly below ripple depth %d", prefix, ripple)
	}
}

func TestCriticalPathSimpleChain(t *testing.T) {
	lib := DefaultLibrary()
	n := New("chain")
	a := n.Input("a")
	x := n.Xor(a, n.Not(a)) // inv 0.10 + xor 0.30
	n.Output("y", x)
	delay, path, err := lib.CriticalPath(n)
	if err != nil {
		t.Fatal(err)
	}
	want := lib.delayOf(KindInv) + lib.delayOf(KindXor2)
	if diff := delay - want; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("delay = %g, want %g", delay, want)
	}
	if len(path) != 2 || path[0].Kind != KindInv || path[1].Kind != KindXor2 {
		t.Errorf("path = %+v", path)
	}
}

func TestCriticalPathStartsAtRegister(t *testing.T) {
	lib := DefaultLibrary()
	n := New("r2r")
	a := n.Input("a")
	q := n.DFF(a)
	q2 := n.DFF(n.Xor(q, a)) // reg -> xor -> reg: clk-to-Q + xor
	n.Output("y", q2)
	delay, path, err := lib.CriticalPath(n)
	if err != nil {
		t.Fatal(err)
	}
	want := lib.delayOf(KindDFF) + lib.delayOf(KindXor2)
	if diff := delay - want; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("delay = %g, want %g", delay, want)
	}
	if len(path) == 0 || path[0].Kind != KindDFF {
		t.Errorf("path should start at the register: %+v", path)
	}
}

func TestCriticalPathEmptyNetlist(t *testing.T) {
	lib := DefaultLibrary()
	n := New("empty")
	n.Input("a")
	delay, path, err := lib.CriticalPath(n)
	if err != nil || delay != 0 || path != nil {
		t.Errorf("empty netlist: %v %v %v", delay, path, err)
	}
}

func TestMaxFrequency(t *testing.T) {
	lib := DefaultLibrary()
	n := New("f")
	a := n.Input("a")
	n.Output("q", n.DFF(n.Xor(a, a)))
	f, err := lib.MaxFrequencyHz(n)
	if err != nil {
		t.Fatal(err)
	}
	if f <= 0 || f > 10e9 {
		t.Errorf("implausible max frequency %g", f)
	}
}
