package netlist

import "fmt"

// Optimize returns a logically equivalent netlist with constants folded,
// aliases removed and dead logic eliminated:
//
//   - gates with constant inputs are folded (AND(x,0) -> 0, NAND(x,1) ->
//     INV(x), XOR(x,1) -> INV(x), MUX with a constant select, ...);
//   - buffers and other identity gates become wire aliases;
//   - gates with identical inputs simplify (XOR(x,x) -> 0, AND(x,x) -> x);
//   - cells whose outputs reach no primary output or flip-flop are dropped.
//
// Flip-flops are never folded (their cycle-0 state is architectural).
// Primary input and output names are preserved, so simulators driving the
// optimized netlist are drop-in compatible.
func Optimize(n *Netlist) (*Netlist, error) {
	order, err := levelize(n)
	if err != nil {
		return nil, err
	}
	cells := n.Cells()

	// Analysis state over original net ids.
	type constVal struct {
		known bool
		v     bool
	}
	consts := make([]constVal, n.NumNets())
	alias := make([]NetID, n.NumNets())
	for i := range alias {
		alias[i] = NetID(i)
	}
	var resolve func(NetID) NetID
	resolve = func(x NetID) NetID {
		for alias[x] != x {
			alias[x] = alias[alias[x]]
			x = alias[x]
		}
		return x
	}
	if n.hasC0 {
		consts[n.const0] = constVal{known: true, v: false}
	}
	if n.hasC1 {
		consts[n.const1] = constVal{known: true, v: true}
	}

	// rewrittenKind[i] overrides the cell kind when a fold turns a
	// two-input gate into an inverter of `rewrittenIn[i]`.
	rewrittenKind := make(map[int]Kind)
	rewrittenIn := make(map[int]NetID)
	dropped := make([]bool, len(cells))

	setConst := func(out NetID, v bool) {
		consts[out] = constVal{known: true, v: v}
	}
	cv := func(id NetID) constVal { return consts[resolve(id)] }

	for _, ci := range order {
		c := cells[ci]
		in := make([]NetID, len(c.In))
		for k, id := range c.In {
			in[k] = resolve(id)
		}
		allKnown := true
		vals := make([]bool, len(in))
		for k, id := range in {
			cvk := cv(id)
			if !cvk.known {
				allKnown = false
			}
			vals[k] = cvk.v
		}
		if allKnown {
			setConst(c.Out, eval(c.Kind, vals))
			dropped[ci] = true
			continue
		}
		switch c.Kind {
		case KindBuf:
			alias[c.Out] = in[0]
			dropped[ci] = true
		case KindAnd2, KindNand2, KindOr2, KindNor2:
			neg := c.Kind == KindNand2 || c.Kind == KindNor2
			isAnd := c.Kind == KindAnd2 || c.Kind == KindNand2
			a, b := in[0], in[1]
			ca, cbv := cv(a), cv(b)
			// Normalize: if either side is constant, put it in ca/a.
			if cbv.known {
				a, b = b, a
				ca = cbv
			}
			switch {
			case ca.known && ca.v == isAnd:
				// AND(x,1) / OR(x,0): identity (or inversion for N-gates).
				if neg {
					rewrittenKind[ci] = KindInv
					rewrittenIn[ci] = b
				} else {
					alias[c.Out] = b
					dropped[ci] = true
				}
			case ca.known:
				// AND(x,0) = 0; OR(x,1) = 1; negated for N-gates.
				setConst(c.Out, neg == isAnd)
				dropped[ci] = true
			case a == b:
				if neg {
					rewrittenKind[ci] = KindInv
					rewrittenIn[ci] = a
				} else {
					alias[c.Out] = a
					dropped[ci] = true
				}
			}
		case KindXor2, KindXnor2:
			inv := c.Kind == KindXnor2
			a, b := in[0], in[1]
			ca, cbv := cv(a), cv(b)
			if cbv.known {
				a, b = b, a
				ca = cbv
			}
			switch {
			case ca.known && ca.v == inv:
				alias[c.Out] = b
				dropped[ci] = true
			case ca.known:
				rewrittenKind[ci] = KindInv
				rewrittenIn[ci] = b
			case a == b:
				setConst(c.Out, inv)
				dropped[ci] = true
			}
		case KindMux2:
			a, b, s := in[0], in[1], in[2]
			if cs := cv(s); cs.known {
				if cs.v {
					alias[c.Out] = b
				} else {
					alias[c.Out] = a
				}
				dropped[ci] = true
			} else if a == b {
				alias[c.Out] = a
				dropped[ci] = true
			}
		}
	}

	// Liveness: outputs and (transitively) DFF data inputs keep cells.
	driver := make(map[NetID]int)
	for ci, c := range cells {
		if !dropped[ci] {
			driver[c.Out] = ci
		}
	}
	live := make([]bool, len(cells))
	var mark func(NetID)
	mark = func(id NetID) {
		id = resolve(id)
		ci, ok := driver[id]
		if !ok || live[ci] {
			return
		}
		live[ci] = true
		if k, rewritten := rewrittenKind[ci]; rewritten && k == KindInv {
			mark(rewrittenIn[ci])
			return
		}
		for _, in := range cells[ci].In {
			mark(in)
		}
	}
	for _, out := range n.Outputs() {
		mark(out)
	}

	// Rebuild.
	out := New(n.Name)
	newID := make(map[NetID]NetID)
	for _, id := range n.Inputs() {
		newID[id] = out.Input(n.netName[id])
	}
	lookup := func(id NetID) NetID {
		id = resolve(id)
		if c := consts[id]; c.known {
			if c.v {
				return out.Const1()
			}
			return out.Const0()
		}
		nid, ok := newID[id]
		if !ok {
			panic(fmt.Sprintf("netlist: optimize lost net %d", id))
		}
		return nid
	}
	// Allocate DFF outputs first so feedback resolves.
	dffConnect := make(map[int]func(NetID))
	for ci, c := range cells {
		if live[ci] && c.Kind == KindDFF {
			q, connect := out.DFFFeedback()
			newID[c.Out] = q
			dffConnect[ci] = connect
		}
	}
	// Copy surviving combinational cells in topological order.
	for _, ci := range order {
		if !live[ci] || dropped[ci] {
			continue
		}
		c := cells[ci]
		if k, ok := rewrittenKind[ci]; ok && k == KindInv {
			newID[c.Out] = out.Not(lookup(rewrittenIn[ci]))
			continue
		}
		ins := make([]NetID, len(c.In))
		for k, id := range c.In {
			ins[k] = lookup(id)
		}
		newID[c.Out] = out.addCell(c.Kind, out.newNet(), ins...)
	}
	// Connect flip-flops.
	for ci, connect := range dffConnect {
		connect(lookup(cells[ci].In[0]))
	}
	// Re-declare outputs under their original names.
	for name, id := range n.outName {
		out.Output(name, lookup(id))
	}
	// Preserve declaration order of outputs for simulators that index
	// positionally: rebuild the ordered slice to match the original.
	out.outputs = out.outputs[:0]
	for _, id := range n.outputs {
		out.outputs = append(out.outputs, lookup(id))
	}
	return out, nil
}
