package netlist

import (
	"math/rand"
	"testing"
)

// randomCircuit builds a random sequential DAG circuit: gates draw inputs
// from earlier nets (inputs, constants, DFF outputs, gate outputs), and a
// few feedback registers close loops through the existing logic.
func randomCircuit(rng *rand.Rand, nInputs, nGates, nRegs, nOutputs int) *Netlist {
	n := New("fuzz")
	var pool []NetID
	for i := 0; i < nInputs; i++ {
		pool = append(pool, n.Input("in"+string(rune('a'+i))))
	}
	pool = append(pool, n.Const0(), n.Const1())
	// Feedback registers: allocate Q nets up front so gates can use them.
	type pending struct{ connect func(NetID) }
	var regs []pending
	for i := 0; i < nRegs; i++ {
		q, connect := n.DFFFeedback()
		pool = append(pool, q)
		regs = append(regs, pending{connect})
	}
	pick := func() NetID { return pool[rng.Intn(len(pool))] }
	kinds := []Kind{KindInv, KindBuf, KindAnd2, KindOr2, KindNand2, KindNor2, KindXor2, KindXnor2, KindMux2}
	for i := 0; i < nGates; i++ {
		k := kinds[rng.Intn(len(kinds))]
		var out NetID
		switch k.arity() {
		case 1:
			out = n.addCell(k, n.newNet(), pick())
		case 2:
			out = n.addCell(k, n.newNet(), pick(), pick())
		default:
			out = n.addCell(k, n.newNet(), pick(), pick(), pick())
		}
		pool = append(pool, out)
	}
	for _, r := range regs {
		r.connect(pick())
	}
	for i := 0; i < nOutputs; i++ {
		n.Output("out"+string(rune('a'+i)), pick())
	}
	return n
}

// TestOptimizeRandomCircuits fuzzes the optimizer against the simulator on
// hundreds of random circuits with feedback.
func TestOptimizeRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		n := randomCircuit(rng, 2+rng.Intn(5), 5+rng.Intn(60), rng.Intn(5), 1+rng.Intn(4))
		opt, err := Optimize(n)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		simA, err := NewSimulator(n)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		simB, err := NewSimulator(opt)
		if err != nil {
			t.Fatalf("trial %d: optimized netlist broken: %v", trial, err)
		}
		if opt.NumCells() > n.NumCells() {
			t.Fatalf("trial %d: optimization grew %d -> %d cells", trial, n.NumCells(), opt.NumCells())
		}
		in := make([]bool, len(n.Inputs()))
		for cyc := 0; cyc < 40; cyc++ {
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			simA.Step(in)
			simB.Step(in)
			for name, idA := range n.outName {
				idB, ok := opt.OutputNet(name)
				if !ok {
					t.Fatalf("trial %d: output %q lost", trial, name)
				}
				if simA.Value(idA) != simB.Value(idB) {
					t.Fatalf("trial %d cycle %d: output %q differs", trial, cyc, name)
				}
			}
		}
	}
}

// TestOptimizeRandomCircuitsReduce reports the aggregate reduction, as a
// sanity check that the optimizer does real work on random logic.
func TestOptimizeRandomCircuitsReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	before, after := 0, 0
	for trial := 0; trial < 50; trial++ {
		n := randomCircuit(rng, 4, 80, 3, 3)
		opt, err := Optimize(n)
		if err != nil {
			t.Fatal(err)
		}
		before += n.NumCells()
		after += opt.NumCells()
	}
	if after >= before {
		t.Errorf("no aggregate reduction: %d -> %d cells", before, after)
	}
	t.Logf("aggregate: %d -> %d cells (%.1f%% removed)", before, after, 100*(1-float64(after)/float64(before)))
}
