package netlist

import (
	"math/rand"
	"testing"
)

// checkOptEquivalence simulates the original and optimized netlists on the
// same random input vectors and compares every named output every cycle.
func checkOptEquivalence(t *testing.T, n *Netlist, cycles int, seed int64) *Netlist {
	t.Helper()
	opt, err := Optimize(n)
	if err != nil {
		t.Fatal(err)
	}
	simA, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	simB, err := NewSimulator(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Inputs()) != len(n.Inputs()) {
		t.Fatalf("input count changed: %d -> %d", len(n.Inputs()), len(opt.Inputs()))
	}
	rng := rand.New(rand.NewSource(seed))
	in := make([]bool, len(n.Inputs()))
	for cyc := 0; cyc < cycles; cyc++ {
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		simA.Step(in)
		simB.Step(in)
		for name, idA := range n.outName {
			idB, ok := opt.OutputNet(name)
			if !ok {
				t.Fatalf("output %q lost", name)
			}
			if simA.Value(idA) != simB.Value(idB) {
				t.Fatalf("cycle %d: output %q differs (%v vs %v)", cyc, name, simA.Value(idA), simB.Value(idB))
			}
		}
	}
	return opt
}

func TestOptimizeFoldsConstants(t *testing.T) {
	n := New("consts")
	a := n.Input("a")
	n.Output("y", n.And(a, n.Const1()))           // -> a
	n.Output("z", n.Or(a, n.Const1()))            // -> 1
	n.Output("w", n.Xor(a, n.Const1()))           // -> INV a
	n.Output("q", n.Mux(a, n.Not(a), n.Const0())) // -> a
	opt := checkOptEquivalence(t, n, 50, 1)
	// Only the inverter for w should survive.
	if opt.NumCells() != 1 || opt.CountCells(KindInv) != 1 {
		t.Errorf("optimized to %d cells (%d INV), want a single inverter", opt.NumCells(), opt.CountCells(KindInv))
	}
}

func TestOptimizeIdenticalInputs(t *testing.T) {
	n := New("same")
	a := n.Input("a")
	n.Output("x", n.Xor(a, a))  // -> 0
	n.Output("y", n.And(a, a))  // -> a
	n.Output("z", n.Nand(a, a)) // -> INV a
	opt := checkOptEquivalence(t, n, 20, 2)
	if opt.NumCells() != 1 {
		t.Errorf("optimized to %d cells, want 1", opt.NumCells())
	}
}

func TestOptimizeRemovesDeadLogic(t *testing.T) {
	n := New("dead")
	a := n.Input("a")
	b := n.Input("b")
	n.Output("y", n.And(a, b))
	// A whole dead cone: computed but never output.
	dead := n.Xor(n.Or(a, b), n.Not(a))
	_ = n.DFF(dead) // dead register too
	opt := checkOptEquivalence(t, n, 20, 3)
	if opt.NumCells() != 1 {
		t.Errorf("optimized to %d cells, want 1 (dead cone kept?)", opt.NumCells())
	}
}

func TestOptimizeKeepsLiveRegisters(t *testing.T) {
	n := New("live")
	a := n.Input("a")
	q, connect := n.DFFFeedback()
	connect(n.Xor(q, a)) // toggle register: live feedback
	n.Output("q", q)
	opt := checkOptEquivalence(t, n, 100, 4)
	if opt.CountCells(KindDFF) != 1 || opt.CountCells(KindXor2) != 1 {
		t.Errorf("feedback register mangled: %d DFF, %d XOR", opt.CountCells(KindDFF), opt.CountCells(KindXor2))
	}
}

func TestOptimizeDFFWithConstInputKept(t *testing.T) {
	// DFF(1) is NOT foldable: its output is 0 on cycle 0 and 1 after.
	n := New("dffconst")
	v := n.DFF(n.Const1())
	a := n.Input("a")
	n.Output("y", n.And(a, v))
	opt := checkOptEquivalence(t, n, 10, 5)
	if opt.CountCells(KindDFF) != 1 {
		t.Error("warm-up register folded away")
	}
}

func TestOptimizeBufferChains(t *testing.T) {
	n := New("bufs")
	a := n.Input("a")
	x := a
	for i := 0; i < 5; i++ {
		x = n.Buf(x)
	}
	n.Output("y", x)
	opt := checkOptEquivalence(t, n, 10, 6)
	if opt.NumCells() != 0 {
		t.Errorf("buffer chain not collapsed: %d cells", opt.NumCells())
	}
}

func TestOptimizeGreaterThanConst(t *testing.T) {
	// GreaterThanConst seeds Const0/Const1 into AND/OR chains — prime
	// folding territory. The optimized circuit must stay exact.
	n := New("gt")
	a := n.InputBus("a", 6)
	n.Output("gt", n.GreaterThanConst(a, 21))
	opt := checkOptEquivalence(t, n, 200, 7)
	if opt.NumCells() >= n.NumCells() {
		t.Errorf("no reduction: %d -> %d cells", n.NumCells(), opt.NumCells())
	}
	// Exhaustive check on top of the random one.
	sim, err := NewSimulator(opt)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := opt.OutputNet("gt")
	for v := uint64(0); v < 64; v++ {
		sim.Step(setBus(v, 6))
		if sim.Value(id) != (v > 21) {
			t.Errorf("optimized GT(%d > 21) = %v", v, sim.Value(id))
		}
	}
}

func TestOptimizePreservesOutputOrder(t *testing.T) {
	n := New("order")
	a := n.Input("a")
	b := n.Input("b")
	n.Output("first", n.And(a, b))
	n.Output("second", n.Buf(a)) // aliases to a
	opt, err := Optimize(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Outputs()) != 2 {
		t.Fatalf("outputs: %d", len(opt.Outputs()))
	}
	id, _ := opt.OutputNet("second")
	if opt.Outputs()[1] != id {
		t.Error("output declaration order not preserved")
	}
}
