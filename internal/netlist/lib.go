package netlist

// CellSpec carries the electrical parameters of one library cell, loosely
// modeled on a 0.35um, 3.3V standard-cell library of the kind the paper's
// encoders were mapped to (SGS-Thomson). Values are order-of-magnitude
// realistic; the experiments depend on ratios and trends, not absolutes.
type CellSpec struct {
	// InputCapF is the capacitance of each input pin, in farads.
	InputCapF float64
	// OutputCapF is the parasitic capacitance of the output pin.
	OutputCapF float64
	// InternalEnergyJ is the short-circuit/internal energy dissipated per
	// output transition, in joules.
	InternalEnergyJ float64
	// ClockEnergyJ is energy per clock edge (sequential cells only).
	ClockEnergyJ float64
	// Area is relative cell area (NAND2 = 1), for reporting.
	Area float64
}

// Library maps each cell kind to its electrical spec.
type Library struct {
	Specs [kindCount]CellSpec
	// WireCapF is the fixed parasitic wire capacitance added to each net.
	WireCapF float64
	// Vdd is the supply voltage in volts.
	Vdd float64
	// GlitchFactor models the extra transitions of deep combinational
	// logic under real (non-zero) gate delays: a cell at combinational
	// depth d dissipates (1 + GlitchFactor*(d-1)) times its zero-delay
	// switching energy. The zero-delay simulator counts one settled
	// transition per net per cycle; unbalanced arithmetic such as
	// ripple carries and population-count trees glitches several times
	// per useful transition, which a timing-accurate estimator (the
	// paper used Synopsys Design Power) captures. Zero disables the
	// correction.
	GlitchFactor float64
	// MaxGlitch caps the depth multiplier: very deep chains (ripple
	// carries) settle mostly monotonically, so glitching saturates
	// rather than growing without bound. Zero means no cap.
	MaxGlitch float64
}

// DefaultLibrary returns the 0.35um/3.3V-class library used throughout the
// experiments.
func DefaultLibrary() *Library {
	lib := &Library{WireCapF: 5e-15, Vdd: 3.3, GlitchFactor: 0.8, MaxGlitch: 10}
	lib.Specs[KindInv] = CellSpec{InputCapF: 8e-15, OutputCapF: 4e-15, InternalEnergyJ: 10e-15, Area: 0.6}
	lib.Specs[KindBuf] = CellSpec{InputCapF: 8e-15, OutputCapF: 5e-15, InternalEnergyJ: 20e-15, Area: 0.9}
	lib.Specs[KindAnd2] = CellSpec{InputCapF: 10e-15, OutputCapF: 5e-15, InternalEnergyJ: 25e-15, Area: 1.2}
	lib.Specs[KindOr2] = CellSpec{InputCapF: 10e-15, OutputCapF: 5e-15, InternalEnergyJ: 25e-15, Area: 1.2}
	lib.Specs[KindNand2] = CellSpec{InputCapF: 10e-15, OutputCapF: 5e-15, InternalEnergyJ: 18e-15, Area: 1.0}
	lib.Specs[KindNor2] = CellSpec{InputCapF: 10e-15, OutputCapF: 5e-15, InternalEnergyJ: 18e-15, Area: 1.0}
	lib.Specs[KindXor2] = CellSpec{InputCapF: 14e-15, OutputCapF: 6e-15, InternalEnergyJ: 40e-15, Area: 2.2}
	lib.Specs[KindXnor2] = CellSpec{InputCapF: 14e-15, OutputCapF: 6e-15, InternalEnergyJ: 40e-15, Area: 2.2}
	lib.Specs[KindMux2] = CellSpec{InputCapF: 12e-15, OutputCapF: 6e-15, InternalEnergyJ: 35e-15, Area: 2.0}
	lib.Specs[KindDFF] = CellSpec{InputCapF: 12e-15, OutputCapF: 6e-15, InternalEnergyJ: 60e-15, ClockEnergyJ: 25e-15, Area: 4.5}
	return lib
}

// NetCaps computes the capacitance of every net: the driver's output pin
// cap, the wire cap, and the input pin caps of all fanout cells. Primary
// outputs additionally see loadF (the external load per line).
func (lib *Library) NetCaps(n *Netlist, loadF float64) []float64 {
	caps := make([]float64, n.NumNets())
	for i := range caps {
		caps[i] = lib.WireCapF
	}
	for _, c := range n.Cells() {
		caps[c.Out] += lib.Specs[c.Kind].OutputCapF
		for _, in := range c.In {
			caps[in] += lib.Specs[c.Kind].InputCapF
		}
	}
	for _, out := range n.Outputs() {
		caps[out] += loadF
	}
	return caps
}

// Area returns the total relative cell area.
func (lib *Library) Area(n *Netlist) float64 {
	total := 0.0
	for _, c := range n.Cells() {
		total += lib.Specs[c.Kind].Area
	}
	return total
}
