package netlist

// Gate-delay model and critical-path extraction. The paper reports its
// dual T0_BI encoder's critical path (5.36 ns in a 0.35um library,
// through the bus-invert section and the output mux); this file provides
// the equivalent analysis for generated netlists.

// delays returns a per-kind propagation delay in seconds, loosely
// calibrated to a 0.35um standard-cell library. Load-dependent delay is
// not modeled; the numbers represent a typical fanout-of-4 stage.
func (lib *Library) delayOf(k Kind) float64 {
	switch k {
	case KindInv:
		return 0.10e-9
	case KindBuf:
		return 0.15e-9
	case KindNand2, KindNor2:
		return 0.15e-9
	case KindAnd2, KindOr2:
		return 0.20e-9
	case KindXor2, KindXnor2:
		return 0.30e-9
	case KindMux2:
		return 0.25e-9
	case KindDFF:
		return 0.45e-9 // clock-to-Q
	default:
		return 0.20e-9
	}
}

// PathStage is one cell on a timing path.
type PathStage struct {
	Cell   int
	Kind   Kind
	Out    NetID
	DelayS float64
}

// CriticalPath returns the slowest register-to-register (or input-to-
// output) combinational path: its total delay in seconds and the cells
// along it, driver first. DFF outputs contribute their clock-to-Q delay
// as the path's starting point.
func (lib *Library) CriticalPath(n *Netlist) (float64, []PathStage, error) {
	order, err := levelize(n)
	if err != nil {
		return 0, nil, err
	}
	cells := n.Cells()
	arrival := make([]float64, n.NumNets())
	from := make([]int, n.NumNets()) // driving cell index along the worst path
	for i := range from {
		from[i] = -1
	}
	// DFF outputs start paths at clock-to-Q.
	for ci, c := range cells {
		if c.Kind == KindDFF {
			arrival[c.Out] = lib.delayOf(KindDFF)
			from[c.Out] = ci
		}
	}
	worstNet := NetID(-1)
	worst := 0.0
	for _, ci := range order {
		c := cells[ci]
		in := 0.0
		for _, id := range c.In {
			if arrival[id] > in {
				in = arrival[id]
			}
		}
		t := in + lib.delayOf(c.Kind)
		arrival[c.Out] = t
		from[c.Out] = ci
		if t > worst {
			worst = t
			worstNet = c.Out
		}
	}
	// Also account for DFF data inputs: the path must settle before the
	// next clock edge, so the endpoint is the D pin arrival.
	for _, c := range cells {
		if c.Kind != KindDFF {
			continue
		}
		if t := arrival[c.In[0]]; t > worst {
			worst = t
			worstNet = c.In[0]
		}
	}
	if worstNet < 0 {
		return 0, nil, nil
	}
	// Walk the path backwards.
	var rev []PathStage
	for net := worstNet; net >= 0 && from[net] >= 0; {
		ci := from[net]
		c := cells[ci]
		rev = append(rev, PathStage{Cell: ci, Kind: c.Kind, Out: c.Out, DelayS: lib.delayOf(c.Kind)})
		if c.Kind == KindDFF {
			break
		}
		next := NetID(-1)
		best := -1.0
		for _, id := range c.In {
			if arrival[id] > best {
				best = arrival[id]
				next = id
			}
		}
		if next < 0 {
			break
		}
		net = next
	}
	path := make([]PathStage, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	return worst, path, nil
}

// MaxFrequencyHz returns the clock rate the netlist supports under the
// delay model (1 / critical path).
func (lib *Library) MaxFrequencyHz(n *Netlist) (float64, error) {
	t, _, err := lib.CriticalPath(n)
	if err != nil {
		return 0, err
	}
	if t <= 0 {
		return 0, nil
	}
	return 1 / t, nil
}
