// Package netlist provides a structural gate-level netlist with a small
// standard-cell library, a zero-delay logic simulator that counts per-net
// switching activity, and a probabilistic activity estimator. It is the
// substitute for the Synopsys Design Compiler / Design Power flow the
// paper used to evaluate its encoder and decoder implementations (Section
// 4): power is alpha * C * Vdd^2 * f at every net, so counting weighted
// toggles reproduces the experiment's structure.
package netlist

import "fmt"

// NetID identifies one net (wire) in the netlist.
type NetID int

// Kind enumerates the available standard cells.
type Kind int

// The cell library. MUX2 selects In[1] when In[2] is high, else In[0].
const (
	KindInv Kind = iota
	KindBuf
	KindAnd2
	KindOr2
	KindNand2
	KindNor2
	KindXor2
	KindXnor2
	KindMux2
	KindDFF
	kindCount
)

// String returns the cell name.
func (k Kind) String() string {
	names := [...]string{"INV", "BUF", "AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2", "MUX2", "DFF"}
	if k < 0 || int(k) >= len(names) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return names[k]
}

func (k Kind) arity() int {
	switch k {
	case KindInv, KindBuf, KindDFF:
		return 1
	case KindMux2:
		return 3
	default:
		return 2
	}
}

// Cell is one instantiated gate.
type Cell struct {
	Kind Kind
	In   []NetID
	Out  NetID
}

// Netlist is a gate-level circuit under construction or analysis.
type Netlist struct {
	Name string

	nets    int
	cells   []Cell
	inputs  []NetID
	outputs []NetID
	inName  map[string]NetID
	outName map[string]NetID
	netName map[NetID]string

	const0 NetID
	const1 NetID
	hasC0  bool
	hasC1  bool
}

// New returns an empty netlist.
func New(name string) *Netlist {
	return &Netlist{
		Name:    name,
		inName:  make(map[string]NetID),
		outName: make(map[string]NetID),
		netName: make(map[NetID]string),
	}
}

func (n *Netlist) newNet() NetID {
	id := NetID(n.nets)
	n.nets++
	return id
}

// NumNets returns the total net count.
func (n *Netlist) NumNets() int { return n.nets }

// NumCells returns the total cell count.
func (n *Netlist) NumCells() int { return len(n.cells) }

// CountCells returns the number of cells of one kind.
func (n *Netlist) CountCells(k Kind) int {
	c := 0
	for _, cell := range n.cells {
		if cell.Kind == k {
			c++
		}
	}
	return c
}

// Input declares a named primary input and returns its net.
func (n *Netlist) Input(name string) NetID {
	if _, dup := n.inName[name]; dup {
		panic("netlist: duplicate input " + name)
	}
	id := n.newNet()
	n.inputs = append(n.inputs, id)
	n.inName[name] = id
	n.netName[id] = name
	return id
}

// InputBus declares width named inputs "name[0]".."name[w-1]", LSB first.
func (n *Netlist) InputBus(name string, width int) []NetID {
	out := make([]NetID, width)
	for i := range out {
		out[i] = n.Input(fmt.Sprintf("%s[%d]", name, i))
	}
	return out
}

// Output marks a net as a named primary output.
func (n *Netlist) Output(name string, id NetID) {
	if _, dup := n.outName[name]; dup {
		panic("netlist: duplicate output " + name)
	}
	n.outputs = append(n.outputs, id)
	n.outName[name] = id
}

// OutputBus marks nets as outputs "name[0]".."name[w-1]".
func (n *Netlist) OutputBus(name string, ids []NetID) {
	for i, id := range ids {
		n.Output(fmt.Sprintf("%s[%d]", name, i), id)
	}
}

// Inputs returns the primary input nets in declaration order.
func (n *Netlist) Inputs() []NetID { return n.inputs }

// Outputs returns the primary output nets in declaration order.
func (n *Netlist) Outputs() []NetID { return n.outputs }

// InputNet returns a named input's net.
func (n *Netlist) InputNet(name string) (NetID, bool) {
	id, ok := n.inName[name]
	return id, ok
}

// OutputNet returns a named output's net.
func (n *Netlist) OutputNet(name string) (NetID, bool) {
	id, ok := n.outName[name]
	return id, ok
}

func (n *Netlist) addCell(k Kind, out NetID, in ...NetID) NetID {
	if len(in) != k.arity() {
		panic(fmt.Sprintf("netlist: %s takes %d inputs, got %d", k, k.arity(), len(in)))
	}
	n.cells = append(n.cells, Cell{Kind: k, In: in, Out: out})
	return out
}

// Const0 returns the constant-zero net (created on first use).
func (n *Netlist) Const0() NetID {
	if !n.hasC0 {
		n.const0 = n.newNet()
		n.hasC0 = true
	}
	return n.const0
}

// Const1 returns the constant-one net (created on first use).
func (n *Netlist) Const1() NetID {
	if !n.hasC1 {
		n.const1 = n.newNet()
		n.hasC1 = true
	}
	return n.const1
}

// Gate constructors. Each allocates the output net.

// Not returns !a.
func (n *Netlist) Not(a NetID) NetID { return n.addCell(KindInv, n.newNet(), a) }

// Buf returns a through a buffer.
func (n *Netlist) Buf(a NetID) NetID { return n.addCell(KindBuf, n.newNet(), a) }

// And returns a & b.
func (n *Netlist) And(a, b NetID) NetID { return n.addCell(KindAnd2, n.newNet(), a, b) }

// Or returns a | b.
func (n *Netlist) Or(a, b NetID) NetID { return n.addCell(KindOr2, n.newNet(), a, b) }

// Nand returns !(a & b).
func (n *Netlist) Nand(a, b NetID) NetID { return n.addCell(KindNand2, n.newNet(), a, b) }

// Nor returns !(a | b).
func (n *Netlist) Nor(a, b NetID) NetID { return n.addCell(KindNor2, n.newNet(), a, b) }

// Xor returns a ^ b.
func (n *Netlist) Xor(a, b NetID) NetID { return n.addCell(KindXor2, n.newNet(), a, b) }

// Xnor returns !(a ^ b).
func (n *Netlist) Xnor(a, b NetID) NetID { return n.addCell(KindXnor2, n.newNet(), a, b) }

// Mux returns sel ? b : a.
func (n *Netlist) Mux(a, b, sel NetID) NetID { return n.addCell(KindMux2, n.newNet(), a, b, sel) }

// DFF returns the Q output of a new flip-flop with data input d. State
// updates at each simulation step's clock edge; Q initializes to zero.
func (n *Netlist) DFF(d NetID) NetID { return n.addCell(KindDFF, n.newNet(), d) }

// DFFFeedback allocates a flip-flop whose Q net is available before its D
// input exists, so Q can feed the combinational logic that computes D
// (state-holding registers). Call connect exactly once.
func (n *Netlist) DFFFeedback() (q NetID, connect func(d NetID)) {
	q = n.newNet()
	connected := false
	return q, func(d NetID) {
		if connected {
			panic("netlist: DFFFeedback connected twice")
		}
		connected = true
		n.addCell(KindDFF, q, d)
	}
}

// Cells returns the cell slice (shared; callers must not mutate).
func (n *Netlist) Cells() []Cell { return n.cells }

// Depths returns the combinational depth of every net: 0 for primary
// inputs, constants and DFF outputs; 1 + max(input depths) for nets driven
// by combinational cells. Panics on a combinational cycle (use
// NewSimulator for a checked levelization first).
func (n *Netlist) Depths() []int {
	depth := make([]int, n.NumNets())
	order, err := levelize(n)
	if err != nil {
		panic(err)
	}
	for _, ci := range order {
		c := n.cells[ci]
		d := 0
		for _, in := range c.In {
			if depth[in] > d {
				d = depth[in]
			}
		}
		depth[c.Out] = d + 1
	}
	return depth
}
