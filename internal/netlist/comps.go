package netlist

import "fmt"

// Component generators: the datapath building blocks of the paper's
// encoder and decoder architectures (Section 4.1) — incrementers,
// comparators, the Hamming-distance evaluator (XOR bank + population-count
// tree) and the majority voter.

// Incrementer returns a + 2^strideLog over the width of a (ripple carry;
// the result wraps modulo 2^len(a)).
func (n *Netlist) Incrementer(a []NetID, strideLog int) []NetID {
	if strideLog < 0 || strideLog >= len(a) {
		panic(fmt.Sprintf("netlist: strideLog %d out of range for %d bits", strideLog, len(a)))
	}
	out := make([]NetID, len(a))
	for i := 0; i < strideLog; i++ {
		out[i] = a[i]
	}
	// Adding 1 at bit position strideLog: sum = a ^ carry chain.
	carry := a[strideLog] // carry out of bit strideLog when adding 1
	out[strideLog] = n.Not(a[strideLog])
	for i := strideLog + 1; i < len(a); i++ {
		out[i] = n.Xor(a[i], carry)
		if i+1 < len(a) {
			carry = n.And(a[i], carry)
		}
	}
	return out
}

// PrefixIncrementer returns a + 2^strideLog like Incrementer, but with a
// Kogge-Stone prefix-AND carry network: O(N log N) gates at O(log N)
// depth instead of the ripple chain's O(N) depth. Used by the hardware
// codec generators so the T0 sections' timing reflects a realistic
// implementation rather than a worst-case ripple.
func (n *Netlist) PrefixIncrementer(a []NetID, strideLog int) []NetID {
	if strideLog < 0 || strideLog >= len(a) {
		panic(fmt.Sprintf("netlist: strideLog %d out of range for %d bits", strideLog, len(a)))
	}
	out := make([]NetID, len(a))
	for i := 0; i < strideLog; i++ {
		out[i] = a[i]
	}
	out[strideLog] = n.Not(a[strideLog])
	m := len(a) - strideLog
	if m == 1 {
		return out
	}
	// pre[j] = AND(a[strideLog .. strideLog+j]) via a Kogge-Stone scan.
	pre := make([]NetID, m)
	copy(pre, a[strideLog:])
	for d := 1; d < m; d <<= 1 {
		next := make([]NetID, m)
		copy(next, pre)
		for j := d; j < m; j++ {
			next[j] = n.And(pre[j], pre[j-d])
		}
		pre = next
	}
	for i := strideLog + 1; i < len(a); i++ {
		// Carry into bit i is the AND of all lower bits from strideLog.
		out[i] = n.Xor(a[i], pre[i-1-strideLog])
	}
	return out
}

// Equal returns a single net that is high when buses a and b are equal.
func (n *Netlist) Equal(a, b []NetID) NetID {
	if len(a) != len(b) {
		panic("netlist: Equal on unequal widths")
	}
	terms := make([]NetID, len(a))
	for i := range a {
		terms[i] = n.Xnor(a[i], b[i])
	}
	return n.AndTree(terms)
}

// AndTree reduces nets with a balanced AND tree.
func (n *Netlist) AndTree(in []NetID) NetID {
	return n.tree(in, n.And)
}

// OrTree reduces nets with a balanced OR tree.
func (n *Netlist) OrTree(in []NetID) NetID {
	return n.tree(in, n.Or)
}

func (n *Netlist) tree(in []NetID, op func(a, b NetID) NetID) NetID {
	if len(in) == 0 {
		panic("netlist: empty reduction")
	}
	for len(in) > 1 {
		var next []NetID
		for i := 0; i+1 < len(in); i += 2 {
			next = append(next, op(in[i], in[i+1]))
		}
		if len(in)%2 == 1 {
			next = append(next, in[len(in)-1])
		}
		in = next
	}
	return in[0]
}

// XorBank returns a[i] ^ b[i] for each line — the per-line difference
// stage of the Hamming-distance evaluator.
func (n *Netlist) XorBank(a, b []NetID) []NetID {
	if len(a) != len(b) {
		panic("netlist: XorBank on unequal widths")
	}
	out := make([]NetID, len(a))
	for i := range a {
		out[i] = n.Xor(a[i], b[i])
	}
	return out
}

// InvertBank returns a[i] ^ inv for each line — conditional inversion.
func (n *Netlist) InvertBank(a []NetID, inv NetID) []NetID {
	out := make([]NetID, len(a))
	for i := range a {
		out[i] = n.Xor(a[i], inv)
	}
	return out
}

// MuxBank returns sel ? b[i] : a[i] per line.
func (n *Netlist) MuxBank(a, b []NetID, sel NetID) []NetID {
	if len(a) != len(b) {
		panic("netlist: MuxBank on unequal widths")
	}
	out := make([]NetID, len(a))
	for i := range a {
		out[i] = n.Mux(a[i], b[i], sel)
	}
	return out
}

// RegBank returns DFF outputs for each line of d.
func (n *Netlist) RegBank(d []NetID) []NetID {
	out := make([]NetID, len(d))
	for i := range d {
		out[i] = n.DFF(d[i])
	}
	return out
}

// RegBankFeedback allocates a register bank whose Q nets are available
// before the D nets; returns the Qs and the connect function.
func (n *Netlist) RegBankFeedback(width int) (q []NetID, connect func(d []NetID)) {
	q = make([]NetID, width)
	conns := make([]func(NetID), width)
	for i := 0; i < width; i++ {
		q[i], conns[i] = n.DFFFeedback()
	}
	return q, func(d []NetID) {
		if len(d) != width {
			panic("netlist: RegBankFeedback width mismatch")
		}
		for i := range d {
			conns[i](d[i])
		}
	}
}

// fullAdder returns (sum, carry) of three bits.
func (n *Netlist) fullAdder(a, b, c NetID) (sum, carry NetID) {
	axb := n.Xor(a, b)
	sum = n.Xor(axb, c)
	carry = n.Or(n.And(a, b), n.And(axb, c))
	return sum, carry
}

// halfAdder returns (sum, carry) of two bits.
func (n *Netlist) halfAdder(a, b NetID) (sum, carry NetID) {
	return n.Xor(a, b), n.And(a, b)
}

// PopCount builds a carry-save adder tree counting the high inputs; the
// result bus is ceil(log2(len(in)+1)) bits, LSB first.
func (n *Netlist) PopCount(in []NetID) []NetID {
	if len(in) == 0 {
		panic("netlist: PopCount of nothing")
	}
	// columns[i] holds bits of weight 2^i awaiting reduction.
	columns := [][]NetID{append([]NetID(nil), in...)}
	for w := 0; w < len(columns); w++ {
		for len(columns[w]) > 1 {
			col := columns[w]
			if len(columns) == w+1 {
				columns = append(columns, nil)
			}
			switch {
			case len(col) >= 3:
				s, c := n.fullAdder(col[0], col[1], col[2])
				columns[w] = append(col[3:], s)
				columns[w+1] = append(columns[w+1], c)
			default:
				s, c := n.halfAdder(col[0], col[1])
				columns[w] = append(col[2:], s)
				columns[w+1] = append(columns[w+1], c)
			}
		}
	}
	out := make([]NetID, len(columns))
	for i, col := range columns {
		out[i] = col[0]
	}
	return out
}

// GreaterThanConst returns a net that is high when the unsigned value on
// bus v (LSB first) is strictly greater than the constant k — the
// majority-voter comparison of the bus-invert section.
func (n *Netlist) GreaterThanConst(v []NetID, k uint64) NetID {
	// Scan from MSB: gt' = gt | (eq & v_i & !k_i); eq' = eq & (v_i == k_i).
	gt := n.Const0()
	eq := n.Const1()
	for i := len(v) - 1; i >= 0; i-- {
		kbit := k>>uint(i)&1 == 1
		if kbit {
			// v_i must be 1 to stay equal; can never become greater here.
			eq = n.And(eq, v[i])
		} else {
			gt = n.Or(gt, n.And(eq, v[i]))
			eq = n.And(eq, n.Not(v[i]))
		}
	}
	return gt
}
