package netlist

import "fmt"

// Simulator evaluates a netlist cycle by cycle under a zero-delay model
// (each net settles once per cycle; glitch power is not modeled, matching
// the paper's probabilistic estimation granularity) and accumulates
// per-net toggle counts and per-cell output toggle counts.
type Simulator struct {
	n      *Netlist
	order  []int // combinational cell evaluation order
	values []bool
	prev   []bool

	toggles     []int64 // per net
	cellToggles []int64 // per cell (output transitions)
	cycles      int64
	initialized bool
}

// NewSimulator levelizes the netlist. It returns an error if the
// combinational logic contains a cycle (feedback must go through a DFF).
func NewSimulator(n *Netlist) (*Simulator, error) {
	order, err := levelize(n)
	if err != nil {
		return nil, err
	}
	return &Simulator{
		n:           n,
		order:       order,
		values:      make([]bool, n.NumNets()),
		prev:        make([]bool, n.NumNets()),
		toggles:     make([]int64, n.NumNets()),
		cellToggles: make([]int64, len(n.Cells())),
	}, nil
}

// levelize returns combinational cells in topological order. DFF outputs,
// constants and primary inputs are sources.
func levelize(n *Netlist) ([]int, error) {
	cells := n.Cells()
	// Map net -> driving combinational cell.
	combDriver := make(map[NetID]int)
	for i, c := range cells {
		if c.Kind != KindDFF {
			combDriver[c.Out] = i
		}
	}
	state := make([]int, len(cells)) // 0 unvisited, 1 visiting, 2 done
	var order []int
	var visit func(i int) error
	visit = func(i int) error {
		switch state[i] {
		case 1:
			return fmt.Errorf("netlist %s: combinational cycle through cell %d (%s)", n.Name, i, cells[i].Kind)
		case 2:
			return nil
		}
		state[i] = 1
		for _, in := range cells[i].In {
			if d, ok := combDriver[in]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[i] = 2
		order = append(order, i)
		return nil
	}
	for i, c := range cells {
		if c.Kind == KindDFF {
			continue
		}
		if err := visit(i); err != nil {
			return nil, err
		}
	}
	// DFF data inputs must also be reachable; they are evaluated as part
	// of the combinational order above (their drivers are).
	_ = combDriver
	return order, nil
}

func eval(k Kind, in []bool) bool {
	switch k {
	case KindInv:
		return !in[0]
	case KindBuf:
		return in[0]
	case KindAnd2:
		return in[0] && in[1]
	case KindOr2:
		return in[0] || in[1]
	case KindNand2:
		return !(in[0] && in[1])
	case KindNor2:
		return !(in[0] || in[1])
	case KindXor2:
		return in[0] != in[1]
	case KindXnor2:
		return in[0] == in[1]
	case KindMux2:
		if in[2] {
			return in[1]
		}
		return in[0]
	default:
		panic("netlist: eval on " + k.String())
	}
}

// Step applies the primary input values (keyed by declared input order),
// settles the combinational logic, clocks all flip-flops and accumulates
// toggle counts. The first cycle establishes the reference values without
// counting transitions.
func (s *Simulator) Step(inputs []bool) {
	n := s.n
	if len(inputs) != len(n.Inputs()) {
		panic(fmt.Sprintf("netlist %s: %d input values for %d inputs", n.Name, len(inputs), len(n.Inputs())))
	}
	for i, id := range n.Inputs() {
		s.values[id] = inputs[i]
	}
	if n.hasC0 {
		s.values[n.const0] = false
	}
	if n.hasC1 {
		s.values[n.const1] = true
	}
	cells := n.Cells()
	inBuf := make([]bool, 3)
	for _, ci := range s.order {
		c := cells[ci]
		for k, in := range c.In {
			inBuf[k] = s.values[in]
		}
		s.values[c.Out] = eval(c.Kind, inBuf[:len(c.In)])
	}
	// Count toggles against the previous settled cycle.
	if s.initialized {
		for id := 0; id < len(s.values); id++ {
			if s.values[id] != s.prev[id] {
				s.toggles[id]++
			}
		}
		for ci, c := range cells {
			if s.values[c.Out] != s.prev[c.Out] {
				s.cellToggles[ci]++
			}
		}
		s.cycles++
	} else {
		s.initialized = true
		s.cycles++
	}
	copy(s.prev, s.values)
	// Clock edge: DFF outputs take their data-input values; the change
	// becomes visible (and is counted) in the next cycle's settle. Read
	// data values from the settled snapshot so chained flip-flops shift
	// correctly regardless of cell order.
	for _, c := range cells {
		if c.Kind == KindDFF {
			s.values[c.Out] = s.prev[c.In[0]]
		}
	}
}

// Value returns the settled value of a net after the last Step.
func (s *Simulator) Value(id NetID) bool { return s.prev[id] }

// OutputWord packs the named output bus "name[0..w-1]" into a uint64.
func (s *Simulator) OutputWord(name string, width int) uint64 {
	var w uint64
	for i := 0; i < width; i++ {
		id, ok := s.n.OutputNet(fmt.Sprintf("%s[%d]", name, i))
		if !ok {
			panic("netlist: no output " + fmt.Sprintf("%s[%d]", name, i))
		}
		if s.Value(id) {
			w |= 1 << uint(i)
		}
	}
	return w
}

// Cycles returns the number of Steps taken.
func (s *Simulator) Cycles() int64 { return s.cycles }

// Toggles returns the per-net toggle counts (shared slice; do not mutate).
func (s *Simulator) Toggles() []int64 { return s.toggles }

// Activity is the measured switching profile of a netlist, consumable by
// the power model.
type Activity struct {
	// NetAlpha is the per-net toggle probability per cycle.
	NetAlpha []float64
	// CellAlpha is the per-cell output toggle probability per cycle.
	CellAlpha []float64
}

// Activity returns the measured switching activity so far.
func (s *Simulator) Activity() Activity {
	denom := float64(s.cycles - 1)
	a := Activity{
		NetAlpha:  make([]float64, len(s.toggles)),
		CellAlpha: make([]float64, len(s.cellToggles)),
	}
	if denom <= 0 {
		return a
	}
	for i, t := range s.toggles {
		a.NetAlpha[i] = float64(t) / denom
	}
	for i, t := range s.cellToggles {
		a.CellAlpha[i] = float64(t) / denom
	}
	return a
}

// Power computes the average power in watts of the netlist switching with
// the given activity at frequency freqHz, with loadF on each primary
// output: net switching power + cell internal power + DFF clock power.
// When the library's GlitchFactor is non-zero, combinational cells deep in
// the logic see their switching energy scaled up to account for glitching
// under real gate delays (see Library.GlitchFactor).
func (lib *Library) Power(n *Netlist, act Activity, freqHz, loadF float64) float64 {
	caps := lib.NetCaps(n, 0)
	mult := lib.glitchMultipliers(n)
	e := 0.0 // energy per cycle
	for id, c := range caps {
		if id < len(act.NetAlpha) {
			e += 0.5 * c * lib.Vdd * lib.Vdd * act.NetAlpha[id] * mult[id]
		}
	}
	// External loads on primary outputs switch at the settled activity:
	// output drivers are sized and buffered so internal glitches do not
	// rail-to-rail swing the load.
	for _, out := range n.Outputs() {
		if int(out) < len(act.NetAlpha) {
			e += 0.5 * loadF * lib.Vdd * lib.Vdd * act.NetAlpha[out]
		}
	}
	for ci, cell := range n.Cells() {
		spec := lib.Specs[cell.Kind]
		if ci < len(act.CellAlpha) {
			e += spec.InternalEnergyJ * act.CellAlpha[ci] * mult[cell.Out]
		}
		e += spec.ClockEnergyJ // every cycle, clock tree toggles the cell
	}
	return e * freqHz
}

// glitchMultipliers returns the per-net switching-energy multiplier based
// on combinational depth. Primary inputs, constants and DFF outputs (depth
// 0) are glitch-free.
func (lib *Library) glitchMultipliers(n *Netlist) []float64 {
	mult := make([]float64, n.NumNets())
	for i := range mult {
		mult[i] = 1
	}
	if lib.GlitchFactor <= 0 {
		return mult
	}
	for net, depth := range n.Depths() {
		if depth > 1 {
			m := 1 + lib.GlitchFactor*float64(depth-1)
			if lib.MaxGlitch > 0 && m > lib.MaxGlitch {
				m = lib.MaxGlitch
			}
			mult[net] = m
		}
	}
	return mult
}
