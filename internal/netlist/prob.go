package netlist

import (
	"fmt"
	"math"
)

// ProbIn is the statistical description of a primary input: the signal
// probability P (fraction of cycles the net is high) and the transition
// density D (toggle probability per cycle).
type ProbIn struct {
	P, D float64
}

// Propagate computes per-net signal probabilities and transition densities
// under the spatial-independence assumption — the same abstraction as the
// "probabilistic mode" of the commercial power estimator the paper used.
// Sequential feedback is resolved by fixed-point iteration; flip-flop
// outputs use the lag-one independence estimate D(q) = 2*P(1-P).
//
// Every primary input must be present in the in map.
func Propagate(n *Netlist, in map[NetID]ProbIn) (Activity, error) {
	p := make([]float64, n.NumNets())
	d := make([]float64, n.NumNets())
	for _, id := range n.Inputs() {
		pi, ok := in[id]
		if !ok {
			return Activity{}, fmt.Errorf("netlist %s: missing probability for input net %d", n.Name, id)
		}
		p[id], d[id] = clamp01(pi.P), clamp01(pi.D)
	}
	if n.hasC0 {
		p[n.const0], d[n.const0] = 0, 0
	}
	if n.hasC1 {
		p[n.const1], d[n.const1] = 1, 0
	}
	order, err := levelize(n)
	if err != nil {
		return Activity{}, err
	}
	cells := n.Cells()
	// Fixed-point over DFF state probabilities.
	const maxIter = 200
	for iter := 0; ; iter++ {
		for _, ci := range order {
			c := cells[ci]
			po, do := gateProb(c.Kind, c.In, p, d)
			p[c.Out], d[c.Out] = po, do
		}
		delta := 0.0
		for _, c := range cells {
			if c.Kind != KindDFF {
				continue
			}
			// Damped update so oscillating feedback (e.g. a toggle
			// flip-flop, whose exact iteration maps p to 1-p) converges
			// to its stationary distribution.
			np := 0.5*p[c.Out] + 0.5*p[c.In[0]]
			nd := clamp01(2 * np * (1 - np))
			delta = math.Max(delta, math.Abs(np-p[c.Out]))
			p[c.Out], d[c.Out] = np, nd
		}
		if delta < 1e-9 {
			break
		}
		if iter >= maxIter {
			return Activity{}, fmt.Errorf("netlist %s: probability fixed point did not converge (delta %g)", n.Name, delta)
		}
	}
	// One final combinational pass with the converged state.
	for _, ci := range order {
		c := cells[ci]
		po, do := gateProb(c.Kind, c.In, p, d)
		p[c.Out], d[c.Out] = po, do
	}
	act := Activity{NetAlpha: d, CellAlpha: make([]float64, len(cells))}
	for ci, c := range cells {
		act.CellAlpha[ci] = d[c.Out]
	}
	return act, nil
}

// gateProb returns the output signal probability and lag-one transition
// probability of one gate. Each input is modeled as a two-state process
// described by its probability p and toggle probability d; under
// spatio-temporal independence of distinct inputs the output statistics
// are computed exactly by enumerating every (value(t), value(t+1))
// combination of the inputs. This avoids the classic boolean-difference
// overestimate, where two inputs toggling together (e.g. into an XOR) are
// counted as two output transitions that in fact cancel.
func gateProb(k Kind, in []NetID, p, d []float64) (float64, float64) {
	switch k {
	case KindInv:
		return 1 - p[in[0]], d[in[0]]
	case KindBuf, KindDFF:
		// DFF statistics are assigned by the fixed-point driver.
		return p[in[0]], d[in[0]]
	}
	type pair struct {
		t, t1 bool
		w     float64
	}
	// Per input: joint distribution of (value at t, value at t+1).
	joint := func(id NetID) [4]pair {
		pi, di := p[id], d[id]
		// Consistency: a signal cannot toggle more often than its level
		// allows (P(0->1) = P(1->0) = d/2 must fit inside p and 1-p).
		if lim := 2 * pi; di > lim {
			di = lim
		}
		if lim := 2 * (1 - pi); di > lim {
			di = lim
		}
		h := di / 2
		return [4]pair{
			{false, false, 1 - pi - h},
			{false, true, h},
			{true, false, h},
			{true, true, pi - h},
		}
	}
	fn := func(vals []bool) bool { return eval(k, vals) }
	ins := make([][4]pair, len(in))
	for i, id := range in {
		ins[i] = joint(id)
	}
	var pOut, dOut float64
	var rec func(i int, w float64, vt, vt1 []bool)
	vt := make([]bool, len(in))
	vt1 := make([]bool, len(in))
	rec = func(i int, w float64, vt, vt1 []bool) {
		if w == 0 {
			return
		}
		if i == len(in) {
			ft := fn(vt)
			ft1 := fn(vt1)
			if ft1 {
				pOut += w
			}
			if ft != ft1 {
				dOut += w
			}
			return
		}
		for _, pr := range ins[i] {
			vt[i], vt1[i] = pr.t, pr.t1
			rec(i+1, w*pr.w, vt, vt1)
		}
	}
	rec(0, 1, vt, vt1)
	return clamp01(pOut), clamp01(dOut)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// UniformInputs builds a ProbIn map assigning the same statistics to every
// primary input — handy for quick estimates.
func UniformInputs(n *Netlist, pi ProbIn) map[NetID]ProbIn {
	m := make(map[NetID]ProbIn, len(n.Inputs()))
	for _, id := range n.Inputs() {
		m[id] = pi
	}
	return m
}

// MeasuredInputs converts a per-input activity measurement (probability
// and density per declared input, in order) into the Propagate input map.
func MeasuredInputs(n *Netlist, stats []ProbIn) (map[NetID]ProbIn, error) {
	if len(stats) != len(n.Inputs()) {
		return nil, fmt.Errorf("netlist %s: %d stats for %d inputs", n.Name, len(stats), len(n.Inputs()))
	}
	m := make(map[NetID]ProbIn, len(stats))
	for i, id := range n.Inputs() {
		m[id] = stats[i]
	}
	return m, nil
}
