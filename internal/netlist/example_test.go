package netlist_test

import (
	"fmt"
	"log"

	"busenc/internal/netlist"
)

// ExampleNetlist builds a 2-bit equality comparator, simulates it, and
// reads the result.
func ExampleNetlist() {
	n := netlist.New("eq2")
	a := n.InputBus("a", 2)
	b := n.InputBus("b", 2)
	n.Output("eq", n.Equal(a, b))

	sim, err := netlist.NewSimulator(n)
	if err != nil {
		log.Fatal(err)
	}
	eq, _ := n.OutputNet("eq")
	// Drive a=2, b=2 then a=2, b=3 (inputs in declaration order, LSB first).
	sim.Step([]bool{false, true, false, true})
	fmt.Println("2 == 2:", sim.Value(eq))
	sim.Step([]bool{false, true, true, true})
	fmt.Println("2 == 3:", sim.Value(eq))
	// Output:
	// 2 == 2: true
	// 2 == 3: false
}

// ExampleLibrary_Power measures the switching power of a toggling counter
// bit at 100 MHz.
func ExampleLibrary_Power() {
	n := netlist.New("tff")
	en := n.Input("en")
	q, connect := n.DFFFeedback()
	connect(n.Xor(q, en)) // toggle flip-flop

	sim, err := netlist.NewSimulator(n)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		sim.Step([]bool{true})
	}
	lib := netlist.DefaultLibrary()
	p := lib.Power(n, sim.Activity(), 100e6, 0)
	fmt.Printf("toggle FF power at 100 MHz: %.1f uW\n", p*1e6)
	// Output:
	// toggle FF power at 100 MHz: 38.6 uW
}

// ExampleOptimize folds a constant-laden circuit down to its live core.
func ExampleOptimize() {
	n := netlist.New("demo")
	a := n.Input("a")
	n.Output("y", n.And(a, n.Const1())) // y = a
	n.Output("z", n.Xor(a, n.Const1())) // z = !a

	opt, err := netlist.Optimize(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d cells -> %d cells\n", n.NumCells(), opt.NumCells())
	// Output:
	// 2 cells -> 1 cells
}
