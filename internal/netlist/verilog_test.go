package netlist

import (
	"strings"
	"testing"
)

func TestWriteVerilogCombinational(t *testing.T) {
	n := New("demo")
	a := n.InputBus("a", 4)
	b := n.InputBus("b", 4)
	n.Output("eq", n.Equal(a, b))
	var sb strings.Builder
	if err := WriteVerilog(&sb, n); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	for _, want := range []string{
		"module demo (",
		"input wire [3:0] a",
		"input wire [3:0] b",
		"output wire eq",
		"xnor u0",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q:\n%s", want, v)
		}
	}
	if strings.Contains(v, "busenc_dff") {
		t.Error("combinational module must not emit the flip-flop model")
	}
}

func TestWriteVerilogSequential(t *testing.T) {
	n := New("seq-mod") // name needs sanitizing
	d := n.Input("d")
	q := n.DFF(d)
	n.Output("q", q)
	var sb strings.Builder
	if err := WriteVerilog(&sb, n); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	if !strings.Contains(v, "module seq_mod (") {
		t.Errorf("module name not sanitized:\n%s", v)
	}
	if !strings.Contains(v, "busenc_dff u0") || !strings.Contains(v, "module busenc_dff") {
		t.Error("flip-flop instantiation or model missing")
	}
	if !strings.Contains(v, "input wire clk") || !strings.Contains(v, "input wire rst") {
		t.Error("clock/reset ports missing")
	}
}

func TestWriteVerilogGateCountsMatch(t *testing.T) {
	n := New("counts")
	a := n.Input("a")
	b := n.Input("b")
	s := n.Input("s")
	n.Output("x", n.Mux(n.And(a, b), n.Or(a, b), s))
	n.Output("y", n.Nand(a, b))
	var sb strings.Builder
	if err := WriteVerilog(&sb, n); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	if got := strings.Count(v, "\n  and "); got != 1 {
		t.Errorf("and instances = %d", got)
	}
	if got := strings.Count(v, "? n["); got != 1 {
		t.Errorf("mux assigns = %d", got)
	}
	if got := strings.Count(v, "\n  nand "); got != 1 {
		t.Errorf("nand instances = %d", got)
	}
}

func TestWriteVerilogConstants(t *testing.T) {
	n := New("consts")
	a := n.Input("a")
	n.Output("z", n.And(a, n.Const1()))
	n.Output("w", n.Or(a, n.Const0()))
	var sb strings.Builder
	if err := WriteVerilog(&sb, n); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	if !strings.Contains(v, "= 1'b0;") || !strings.Contains(v, "= 1'b1;") {
		t.Errorf("constant assigns missing:\n%s", v)
	}
}

func TestSanitizeIdent(t *testing.T) {
	cases := map[string]string{
		"t0-enc":   "t0_enc",
		"9lives":   "_lives",
		"ok_name":  "ok_name",
		"":         "m",
		"a.b[c]":   "a_b_c_",
		"dualt0bi": "dualt0bi",
	}
	for in, want := range cases {
		if got := sanitizeIdent(in); got != want {
			t.Errorf("sanitizeIdent(%q) = %q, want %q", in, got, want)
		}
	}
}
