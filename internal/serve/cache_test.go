package serve

import (
	"fmt"
	"sync"
	"testing"

	"busenc/internal/codec"
)

func fakeResults(codecs ...string) []codec.Result {
	out := make([]codec.Result, len(codecs))
	for i, c := range codecs {
		out[i] = codec.Result{
			Codec: c, Stream: "s", BusWidth: 32,
			Transitions: int64(1000 + i), Cycles: 500,
			PerLine: make([]int64, 32),
		}
	}
	return out
}

const testDigest = "sha256:" + "ab12" + "0123456789abcdef0123456789abcdef0123456789abcdef0123456789ab"

// TestCacheKeyDiscriminates is the ISSUE's correctness case: the same
// trace digest under a different codec set, stride or kernel must MISS
// — only the exact (digest, codes, stride, kernel) tuple hits.
func TestCacheKeyDiscriminates(t *testing.T) {
	c := NewCache(1 << 20)
	key := NewCacheKey(testDigest, []string{"binary", "gray"}, 4, codec.KernelAuto)
	c.Put(key, fakeResults("binary", "gray"))

	if _, ok := c.Get(key); !ok {
		t.Fatal("exact key missed")
	}
	variants := []CacheKey{
		NewCacheKey(testDigest, []string{"binary", "t0"}, 4, codec.KernelAuto),   // different codec set
		NewCacheKey(testDigest, []string{"binary"}, 4, codec.KernelAuto),         // subset
		NewCacheKey(testDigest, []string{"binary", "gray"}, 8, codec.KernelAuto), // different stride
		NewCacheKey(testDigest, []string{"binary", "gray"}, 4, codec.KernelScalar),
		NewCacheKey("sha256:"+"ffff"+testDigest[11:], []string{"binary", "gray"}, 4, codec.KernelAuto),
	}
	for i, k := range variants {
		if _, ok := c.Get(k); ok {
			t.Errorf("variant %d unexpectedly hit: %+v", i, k)
		}
	}
}

// TestCacheEviction pins LRU eviction under the bytes bound: inserting
// past the cap evicts the least-recently-used entries first, and the
// resident byte estimate never exceeds the bound.
func TestCacheEviction(t *testing.T) {
	one := resultBytes(fakeResults("binary"))
	c := NewCache(3 * one) // room for exactly 3 single-result entries

	keyN := func(n int) CacheKey {
		return NewCacheKey(testDigest, []string{fmt.Sprintf("c%d", n)}, 1, codec.KernelAuto)
	}
	for n := 0; n < 3; n++ {
		c.Put(keyN(n), fakeResults("binary"))
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	// Touch 0 so 1 becomes LRU, then insert 3: 1 must be evicted.
	if _, ok := c.Get(keyN(0)); !ok {
		t.Fatal("key 0 missed before eviction")
	}
	c.Put(keyN(3), fakeResults("binary"))
	if _, ok := c.Get(keyN(1)); ok {
		t.Error("LRU entry 1 survived eviction")
	}
	for _, n := range []int{0, 2, 3} {
		if _, ok := c.Get(keyN(n)); !ok {
			t.Errorf("entry %d evicted out of LRU order", n)
		}
	}
	if c.Bytes() > 3*one {
		t.Errorf("resident bytes %d exceed bound %d", c.Bytes(), 3*one)
	}

	// An entry bigger than the whole bound is refused outright rather
	// than flushing everything else.
	big := NewCache(one - 1)
	big.Put(keyN(9), fakeResults("binary"))
	if big.Len() != 0 {
		t.Error("oversized entry was cached")
	}
}

// TestCacheConcurrent hammers hit/miss/eviction from many goroutines;
// the -race run of this test is the ISSUE's concurrency criterion.
func TestCacheConcurrent(t *testing.T) {
	one := resultBytes(fakeResults("binary"))
	c := NewCache(8 * one) // small enough to keep evicting under load
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := NewCacheKey(testDigest, []string{fmt.Sprintf("c%d", i%16)}, uint64(g%2+1), codec.KernelAuto)
				if res, ok := c.Get(key); ok {
					if len(res) != 1 || res[0].Cycles != 500 {
						t.Errorf("corrupt cached result: %+v", res)
						return
					}
				} else {
					c.Put(key, fakeResults("binary"))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Bytes() > 8*one {
		t.Errorf("resident bytes %d exceed bound %d after concurrent load", c.Bytes(), 8*one)
	}
}
