// Package serve is the multi-tenant evaluation service layer: a
// persistent job queue with bounded concurrent evaluations and
// per-tenant fairness, streamed trace upload into a content-addressed
// store, per-tenant quotas (request rate, queued jobs, stored bytes), a
// bytes-bounded LRU result cache, and graceful drain semantics. It is
// the machinery behind cmd/busencd's /traces, /eval and /jobs
// endpoints; cmd/busencload drives it under load.
//
// Backpressure contract: a full queue or a draining server answers 503
// with a Retry-After header; a tenant over its request rate or job
// quota answers 429; an upload over the size cap or byte quota answers
// 413. All error bodies are the {"error","status"} JSON envelope.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"busenc/internal/codec"
	"busenc/internal/core"
	"busenc/internal/obs"
	"busenc/internal/trace"
)

// Config tunes a Server. Zero values select the documented defaults.
type Config struct {
	// Workers is the evaluation worker-pool size (GOMAXPROCS if 0).
	Workers int
	// QueueCap bounds waiting jobs across all tenants (DefaultQueueCap
	// if 0).
	QueueCap int
	// Quotas are the per-tenant budgets (zero = unlimited).
	Quotas Quotas
	// CacheBytes bounds the result cache (DefaultCacheBytes if 0; < 0
	// disables caching).
	CacheBytes int64
	// StoreDir is the trace-store directory (required).
	StoreDir string
	// MaxUploadBytes caps one POST /traces body (DefaultMaxUploadBytes
	// if 0).
	MaxUploadBytes int64
	// SyncMaxEntries is the legacy synchronous /eval threshold: a trace
	// with a known entry count at or below it is evaluated inline
	// (DefaultSyncMaxEntries if 0).
	SyncMaxEntries int64
	// Options are the codec parameters (core.DefaultOptions when zero).
	Options codec.Options
	// DistFailAfter injects a worker fault into the first /dist
	// connection of the process: its dist worker dies after pricing
	// that many shards. Test/smoke-only knob; 0 disables.
	DistFailAfter int
}

// Defaults for Config's zero values.
const (
	DefaultQueueCap       = 256
	DefaultMaxUploadBytes = 256 << 20
	DefaultSyncMaxEntries = 1 << 16
	defaultRetryAfter     = "1"
)

// Server ties the store, tenants, cache and queue together under an
// http.Handler surface.
type Server struct {
	cfg       Config
	store     *Store
	tenants   *Tenants
	cache     *Cache
	queue     *Queue
	slo       *SLO
	distConns atomic.Int64
}

// New builds a Server (without starting workers; call Start).
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultQueueCap
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = DefaultMaxUploadBytes
	}
	if cfg.SyncMaxEntries <= 0 {
		cfg.SyncMaxEntries = DefaultSyncMaxEntries
	}
	if cfg.Options == (codec.Options{}) {
		cfg.Options = core.DefaultOptions
	}
	if cfg.StoreDir == "" {
		return nil, fmt.Errorf("serve: Config.StoreDir is required")
	}
	store, err := NewStore(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		store:   store,
		tenants: NewTenants(cfg.Quotas),
		slo:     NewSLO(0),
	}
	if cfg.CacheBytes >= 0 {
		s.cache = NewCache(cfg.CacheBytes)
	}
	s.queue = NewQueue(cfg.QueueCap, DefaultEvaluator(store, cfg.Options), s.cache, s.tenants)
	s.queue.onWait = s.slo.ObserveQueueWait
	return s, nil
}

// Start launches the worker pool.
func (s *Server) Start() { s.queue.Start(s.cfg.Workers) }

// Queue exposes the underlying queue (the daemon's drain path and
// tests use it).
func (s *Server) Queue() *Queue { return s.queue }

// Store exposes the underlying trace store.
func (s *Server) Store() *Store { return s.store }

// Cache exposes the result cache (nil when disabled).
func (s *Server) Cache() *Cache { return s.cache }

// SLO exposes the per-tenant service-level accumulator.
func (s *Server) SLO() *SLO { return s.slo }

// Drain stops intake and waits for every accepted job to finish, then
// stops the workers. It reports whether the queue fully drained within
// the timeout (<= 0 waits forever).
func (s *Server) Drain(timeout time.Duration) bool {
	ok := s.queue.Drain(timeout)
	s.queue.Close()
	return ok
}

// Register installs the service endpoints on a mux: POST /traces,
// GET /traces, GET /traces/{digest}, GET/POST /eval, GET /jobs,
// GET /jobs/{id}, GET /healthz, GET /spans, GET /slo and the /dist
// peer upgrade. Request-bearing routes are wrapped so every response's
// wall time lands in the per-tenant SLO histograms under a fixed route
// label; /dist is hijacked into the peer protocol, so its connection
// lifetime is not a request latency and it stays untimed.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("/traces", s.timed("/traces", s.handleTraces))
	mux.HandleFunc("/traces/", s.timed("/traces/{digest}", s.handleTraceByDigest))
	mux.HandleFunc("/eval", s.timed("/eval", s.HandleEval))
	mux.HandleFunc("/jobs", s.timed("/jobs", s.handleJobs))
	mux.HandleFunc("/jobs/", s.timed("/jobs/{id}", s.handleJob))
	mux.HandleFunc("/healthz", s.timed("/healthz", s.handleHealthz))
	mux.HandleFunc("/spans", s.handleSpans)
	mux.HandleFunc("/slo", s.handleSLO)
	mux.HandleFunc("/dist", s.handleDist)
}

// timed wraps a handler so its wall time is observed under the given
// route label. The route is the registration pattern, never the raw
// request path — SLO cardinality stays (tenants × registered routes).
func (s *Server) timed(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		tenant, ok := TenantOf(r)
		if !ok {
			tenant = "invalid"
		}
		s.slo.ObserveRequest(tenant, route, time.Since(start))
	}
}

// Error writes the service's JSON error envelope ({"error","status"})
// with the matching HTTP status code.
func Error(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error  string `json:"error"`
		Status int    `json:"status"`
	}{fmt.Sprintf(format, args...), status})
}

// unavailable writes the backpressure 503 with its Retry-After header.
func unavailable(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Retry-After", defaultRetryAfter)
	Error(w, http.StatusServiceUnavailable, format, args...)
}

// TenantOf extracts the request's tenant: the X-Tenant header, or
// "anon" when absent. An invalid identifier yields ok=false (the
// handler answers 400).
func TenantOf(r *http.Request) (string, bool) {
	id := r.Header.Get("X-Tenant")
	if id == "" {
		return "anon", true
	}
	if !ValidTenant(id) {
		return "", false
	}
	return id, true
}

// admit runs the shared per-request gate: tenant validity and the
// token-bucket rate. It writes the error response itself on failure.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (string, bool) {
	tenant, ok := TenantOf(r)
	if !ok {
		Error(w, http.StatusBadRequest, "invalid X-Tenant header (want 1-64 chars of [A-Za-z0-9_.-])")
		return "", false
	}
	if !s.tenants.Allow(tenant) {
		w.Header().Set("Retry-After", defaultRetryAfter)
		Error(w, http.StatusTooManyRequests, "tenant %q request rate exceeded", tenant)
		return "", false
	}
	return tenant, true
}

// handleTraces serves POST /traces (streamed upload) and GET /traces
// (stored-trace listing).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.store.List())
	case http.MethodPost:
		s.handleUpload(w, r)
	default:
		Error(w, http.StatusMethodNotAllowed, "method %s not allowed on /traces", r.Method)
	}
}

// handleUpload streams one trace body into the store under the
// tenant's byte quota. The body is parsed (and rejected with the trace
// layer's positioned errors) while it is being digested and spooled —
// it is never buffered whole.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.admit(w, r)
	if !ok {
		return
	}
	if s.queue.Draining() {
		metrics().uploadErrs.Inc()
		unavailable(w, "server is draining")
		return
	}
	sp := obs.StartSpan("serve.upload", obs.StageRead).WithStream(tenant)
	meta, err := s.store.Ingest(r.Body, s.cfg.MaxUploadBytes)
	sp.EndErr(err)
	if err != nil {
		metrics().uploadErrs.Inc()
		if strings.Contains(err.Error(), errTooLarge.Error()) {
			Error(w, http.StatusRequestEntityTooLarge, "%v", err)
			return
		}
		Error(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.tenants.AdmitBytes(tenant, meta.Digest, meta.Bytes); err != nil {
		Error(w, http.StatusRequestEntityTooLarge, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, meta)
}

// evalRequest is a parsed /eval query.
type evalRequest struct {
	source   string
	spec     JobSpec
	parallel int
	mode     string // "", "sync", "async"
}

// parseEval validates the query and writes the 4xx envelope itself on
// failure.
func (s *Server) parseEval(w http.ResponseWriter, r *http.Request) (evalRequest, bool) {
	q := r.URL.Query()
	var req evalRequest
	req.source = q.Get("trace")
	if req.source == "" {
		Error(w, http.StatusBadRequest, "missing trace parameter")
		return req, false
	}
	kern, err := codec.ParseKernel(q.Get("kernel"))
	if err != nil {
		Error(w, http.StatusBadRequest, "%v", err)
		return req, false
	}
	req.spec.Kernel = kern
	req.spec.Codes = NormalizeCodes(q.Get("codes"))
	// Validate codec names at admission so an async request fails with
	// 422 now instead of a JobFailed snapshot later.
	registered := make(map[string]bool, len(codec.Names()))
	for _, n := range codec.Names() {
		registered[n] = true
	}
	for _, c := range req.spec.Codes {
		if !registered[c] {
			Error(w, http.StatusUnprocessableEntity, "codec: unknown code %q (have %v)", c, codec.Names())
			return req, false
		}
	}
	var ok bool
	if req.spec.ChunkLen, ok = posIntParam(w, q.Get("chunklen"), "chunklen"); !ok {
		return req, false
	}
	if req.spec.Depth, ok = posIntParam(w, q.Get("depth"), "depth"); !ok {
		return req, false
	}
	if req.parallel, ok = posIntParam(w, q.Get("parallel"), "parallel"); !ok {
		return req, false
	}
	if v := q.Get("stride"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil || n == 0 {
			Error(w, http.StatusBadRequest, "stride must be a positive integer, got %q", v)
			return req, false
		}
		req.spec.Stride = n
	}
	switch req.mode = q.Get("mode"); req.mode {
	case "", "sync", "async":
	default:
		Error(w, http.StatusBadRequest, "mode must be sync or async, got %q", req.mode)
		return req, false
	}
	req.spec.Source = req.source
	return req, true
}

// EvalResponse is the JSON reply of a synchronous /eval.
type EvalResponse struct {
	Trace   string         `json:"trace"`
	Stream  string         `json:"stream"`
	Width   int            `json:"width"`
	Entries int64          `json:"entries"`
	Cached  bool           `json:"cached"`
	Results []codec.Result `json:"results"`
}

// enqueueResponse is the 202 reply of an asynchronous /eval.
type enqueueResponse struct {
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Location string   `json:"location"`
}

// HandleEval serves /eval: admission, source resolution, then either
// the legacy synchronous path (small traces, explicit ?mode=sync, or
// the materializing ?parallel=N path) or enqueue-and-poll (202 with a
// /jobs/{id} location). Unknown digests and missing files are 404;
// backpressure is 503 + Retry-After.
func (s *Server) HandleEval(w http.ResponseWriter, r *http.Request) {
	tenant, ok := s.admit(w, r)
	if !ok {
		return
	}
	req, ok := s.parseEval(w, r)
	if !ok {
		return
	}

	// Resolve the source to an entry count where one is cheaply known
	// (stored digests always; BETR files from their header) so the
	// sync/async routing is deterministic.
	entries := int64(-1)
	if IsDigest(req.source) {
		meta, ok := s.store.Lookup(req.source)
		if !ok {
			Error(w, http.StatusNotFound, "unknown trace digest %q", req.source)
			return
		}
		entries = meta.Entries
	}

	if req.parallel > 0 {
		// The shard-parallel path materializes the trace; it stays
		// synchronous exactly like the pre-service daemon.
		s.evalParallel(w, req)
		return
	}

	mode := req.mode
	if mode == "" {
		if entries >= 0 && entries <= s.cfg.SyncMaxEntries {
			mode = "sync"
		} else if entries < 0 {
			mode = s.pathMode(req.source)
		} else {
			mode = "async"
		}
	}
	if mode == "sync" {
		s.evalSync(w, req)
		return
	}

	job, err := s.queue.Enqueue(tenant, req.spec)
	switch {
	case err == nil:
	case err == ErrQueueFull:
		unavailable(w, "job queue full (capacity %d)", s.cfg.QueueCap)
		return
	case err == ErrDraining:
		unavailable(w, "server is draining")
		return
	default: // tenant job quota
		w.Header().Set("Retry-After", defaultRetryAfter)
		Error(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	w.Header().Set("Location", "/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, enqueueResponse{
		ID: job.ID, State: JobQueued, Location: "/jobs/" + job.ID,
	})
}

// pathMode routes a legacy filesystem-path source: BETR headers carry
// an entry count, so regular binary files below the sync threshold run
// inline; anything unknown-sized runs async.
func (s *Server) pathMode(path string) string {
	r, closer, err := trace.OpenFile(path, nil)
	if err != nil {
		return "sync" // let evalSync surface the open error as 404
	}
	defer closer.Close()
	type counter interface{ EntryCount() (uint64, bool) }
	if ec, ok := r.(counter); ok {
		if n, known := ec.EntryCount(); known && int64(n) <= s.cfg.SyncMaxEntries {
			return "sync"
		}
	}
	return "async"
}

// evalSync runs the legacy synchronous path through the same
// cache-aware evaluator the workers use.
func (s *Server) evalSync(w http.ResponseWriter, req evalRequest) {
	metrics().jobsSync.Inc()
	results, width, entries, cached, err := s.queue.evaluate(req.spec)
	if err != nil {
		s.evalError(w, req.source, err)
		return
	}
	writeJSON(w, http.StatusOK, EvalResponse{
		Trace: req.source, Stream: results[0].Stream, Width: width,
		Entries: entries, Cached: cached, Results: results,
	})
}

// evalParallel is the pre-service materializing shard path, preserved
// verbatim for local profiling.
func (s *Server) evalParallel(w http.ResponseWriter, req evalRequest) {
	var pool *trace.ChunkPool
	if req.spec.ChunkLen > 0 {
		pool = trace.NewChunkPool(req.spec.ChunkLen)
	}
	var (
		r      trace.ChunkReader
		closer interface{ Close() error }
		err    error
	)
	if IsDigest(req.source) {
		r, closer, err = s.store.Open(req.source, pool)
	} else {
		r, closer, err = trace.OpenFile(req.source, pool)
	}
	if err != nil {
		Error(w, http.StatusNotFound, "%v", err)
		return
	}
	defer closer.Close()
	st, err := trace.ReadAll(r)
	if err != nil {
		Error(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	opts := s.cfg.Options
	if req.spec.Stride > 0 {
		opts.Stride = req.spec.Stride
	}
	results, err := core.EvaluateParallel(st, st.Width, req.spec.Codes, opts,
		core.ParallelConfig{Shards: req.parallel, Verify: codec.VerifySampled, Kernel: req.spec.Kernel})
	if err != nil {
		Error(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, EvalResponse{
		Trace: req.source, Stream: results[0].Stream, Width: st.Width,
		Entries: results[0].Cycles, Results: results,
	})
}

// evalError maps an evaluation error to the daemon's historical status
// split: unreadable sources are 404, everything else (unknown codec,
// malformed trace) is 422.
func (s *Server) evalError(w http.ResponseWriter, source string, err error) {
	if !IsDigest(source) {
		if _, statErr := os.Stat(source); statErr != nil {
			Error(w, http.StatusNotFound, "%v", err)
			return
		}
	}
	Error(w, http.StatusUnprocessableEntity, "%v", err)
}

// handleJobs lists the requesting tenant's jobs (?all=1 lists every
// tenant, for the ops surface).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	tenant, ok := TenantOf(r)
	if !ok {
		Error(w, http.StatusBadRequest, "invalid X-Tenant header")
		return
	}
	if r.URL.Query().Get("all") != "" {
		tenant = ""
	}
	writeJSON(w, http.StatusOK, s.queue.Jobs(tenant))
}

// handleJob serves GET /jobs/{id}[?wait=2s]: the job snapshot, with
// optional long-polling — the request parks until the job is terminal
// or the wait elapses, whichever is first (capped at MaxJobWait).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	if id == "" || strings.Contains(id, "/") {
		Error(w, http.StatusNotFound, "want /jobs/{id}")
		return
	}
	job, ok := s.queue.Lookup(id)
	if !ok {
		Error(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if wait := r.URL.Query().Get("wait"); wait != "" {
		d, err := time.ParseDuration(wait)
		if err != nil || d < 0 {
			Error(w, http.StatusBadRequest, "wait must be a duration like 500ms, got %q", wait)
			return
		}
		if d > MaxJobWait {
			d = MaxJobWait
		}
		select {
		case <-job.Done():
		case <-time.After(d):
		case <-r.Context().Done():
			return
		}
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

// MaxJobWait caps one long-poll parking interval.
const MaxJobWait = 30 * time.Second

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// posIntParam parses an optional positive-integer query parameter,
// writing the 400 envelope itself on a bad value.
func posIntParam(w http.ResponseWriter, s, name string) (int, bool) {
	if s == "" {
		return 0, true
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		Error(w, http.StatusBadRequest, "%s must be a positive integer, got %q", name, s)
		return 0, false
	}
	return n, true
}

// PaperCodes mirrors cmd/paper: the seven codes of the paper's tables,
// binary first so savings are always relative to it.
var PaperCodes = []string{"binary", "gray", "t0", "businvert", "t0bi", "dualt0", "dualt0bi"}

// NormalizeCodes expands a codes query value to the canonical list:
// "" or "paper" → the paper's seven, "all" → every registered codec,
// otherwise a comma list with binary forced first (deduplicated).
func NormalizeCodes(codes string) []string {
	switch codes {
	case "", "paper":
		return PaperCodes
	case "all":
		return codec.Names()
	}
	out := []string{"binary"}
	for _, c := range strings.Split(codes, ",") {
		if c = strings.TrimSpace(c); c != "" && c != "binary" {
			out = append(out, c)
		}
	}
	return out
}
