package serve

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"busenc/internal/codec"
	"busenc/internal/core"
	"busenc/internal/obs"
	"busenc/internal/trace"
)

// Job queue. Accepted evaluations wait in per-tenant FIFO lists and are
// dispatched round-robin across tenants: within one tenant order is
// strictly FIFO, across tenants each dispatch takes the next tenant in
// ring order, so a tenant that enqueues a thousand jobs delays its own
// backlog, not everyone else's. Capacity bounds the total number of
// WAITING jobs (running jobs are bounded separately by the worker
// count); when the bound is hit Enqueue fails with ErrQueueFull and the
// HTTP layer answers 503 with Retry-After — callers are expected to
// back off, not to block the accept loop.
//
// Shutdown is a drain, not an abort: Drain flips the queue into a
// rejecting state (ErrDraining), then waits until every accepted job —
// waiting or running — has reached a terminal state. No accepted job is
// ever dropped; "graceful" here is a hard invariant the load harness
// asserts (zero lost jobs across a SIGTERM).

// JobState is the lifecycle of a job.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// JobSpec is what a job evaluates: one trace source against one codec
// set under fixed options.
type JobSpec struct {
	// Source is a stored-trace digest ("sha256:...") or, for the legacy
	// local-debug path, a server filesystem path.
	Source string
	// Codes is the normalized codec list (binary first).
	Codes []string
	// Stride is codec.Options.Stride (0 = core default).
	Stride uint64
	// Kernel selects the pricing kernel.
	Kernel codec.Kernel
	// ChunkLen and Depth tune the streaming fan-out (0 = defaults).
	ChunkLen int
	Depth    int
}

// Job is one accepted evaluation. Mutable fields are guarded by mu;
// Done is closed exactly once when the job reaches a terminal state.
type Job struct {
	ID     string
	Tenant string
	Spec   JobSpec

	mu       sync.Mutex
	state    JobState
	results  []codec.Result
	errMsg   string
	cached   bool
	width    int
	entries  int64
	enqueued time.Time
	started  time.Time
	finished time.Time

	done chan struct{}
}

// Snapshot is a race-free copy of a job's externally visible state.
type Snapshot struct {
	ID      string         `json:"id"`
	Tenant  string         `json:"tenant"`
	Source  string         `json:"trace"`
	Codes   []string       `json:"codes"`
	State   JobState       `json:"state"`
	Cached  bool           `json:"cached"`
	Width   int            `json:"width,omitempty"`
	Entries int64          `json:"entries,omitempty"`
	WaitNs  int64          `json:"wait_ns,omitempty"`
	RunNs   int64          `json:"run_ns,omitempty"`
	Results []codec.Result `json:"results,omitempty"`
	Error   string         `json:"error,omitempty"`
}

// Snapshot returns the job's current state as one consistent copy.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID: j.ID, Tenant: j.Tenant, Source: j.Spec.Source, Codes: j.Spec.Codes,
		State: j.state, Cached: j.cached, Width: j.width, Entries: j.entries,
		Results: j.results, Error: j.errMsg,
	}
	if !j.started.IsZero() {
		s.WaitNs = j.started.Sub(j.enqueued).Nanoseconds()
	}
	if !j.finished.IsZero() {
		s.RunNs = j.finished.Sub(j.started).Nanoseconds()
	}
	return s
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Terminal reports whether the job has finished (done or failed).
func (j *Job) Terminal() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// Enqueue failure modes the HTTP layer maps to statuses.
var (
	ErrQueueFull = errors.New("serve: job queue full")
	ErrDraining  = errors.New("serve: server is draining")
)

// Evaluator prices one job spec; the default implementation opens the
// trace and runs the streaming fan-out. Swappable for tests (and for
// fault injection in the load harness's unit tests).
type Evaluator func(spec JobSpec) (results []codec.Result, width int, entries int64, err error)

// Queue is the bounded, tenant-fair job queue plus its worker pool.
type Queue struct {
	capacity int
	eval     Evaluator
	cache    *Cache
	tenants  *Tenants
	// onWait, when set before Start, observes each job's queue wait
	// attributed to its tenant (the SLO layer hangs off it).
	onWait func(tenant string, waitNs int64)

	mu       sync.Mutex
	cond     *sync.Cond // signaled when work arrives or state flips
	waiting  int
	running  int
	draining bool
	closed   bool
	ring     []string          // tenants with non-empty FIFOs, dispatch order
	next     int               // ring cursor
	fifos    map[string][]*Job // tenant → waiting jobs
	jobs     map[string]*Job   // id → job, all states
	seq      int64

	wg sync.WaitGroup // live workers
}

// NewQueue builds a queue with the given total waiting-job capacity
// (minimum 1), evaluator, cache (nil = no caching) and tenant registry
// (nil = no per-tenant job accounting). Workers are started separately
// with Start so tests can exercise a stalled queue deterministically.
func NewQueue(capacity int, eval Evaluator, cache *Cache, tenants *Tenants) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue{
		capacity: capacity,
		eval:     eval,
		cache:    cache,
		tenants:  tenants,
		fifos:    make(map[string][]*Job),
		jobs:     make(map[string]*Job),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Start launches n worker goroutines (minimum 1).
func (q *Queue) Start(n int) {
	if n < 1 {
		n = 1
	}
	q.wg.Add(n)
	for i := 0; i < n; i++ {
		go q.worker()
	}
}

// Enqueue accepts a job for a tenant, or reports why it cannot:
// ErrDraining after Drain began, ErrQueueFull at capacity, or the
// tenant's job-quota error. The job is owned by the queue from here on.
func (q *Queue) Enqueue(tenant string, spec JobSpec) (*Job, error) {
	m := metrics()
	q.mu.Lock()
	if q.draining || q.closed {
		q.mu.Unlock()
		m.drainRejects.Inc()
		return nil, ErrDraining
	}
	if q.waiting >= q.capacity {
		q.mu.Unlock()
		m.queueFull.Inc()
		return nil, ErrQueueFull
	}
	if q.tenants != nil {
		if err := q.tenants.AdmitJob(tenant); err != nil {
			q.mu.Unlock()
			return nil, err
		}
	}
	q.seq++
	job := &Job{
		ID:     fmt.Sprintf("j%d", q.seq),
		Tenant: tenant,
		Spec:   spec,
		state:  JobQueued,
		done:   make(chan struct{}),
	}
	job.enqueued = time.Now()
	if len(q.fifos[tenant]) == 0 {
		q.ring = append(q.ring, tenant)
	}
	q.fifos[tenant] = append(q.fifos[tenant], job)
	q.jobs[job.ID] = job
	q.waiting++
	m.queueDepth.Set(int64(q.waiting))
	q.mu.Unlock()

	m.enqueued.Inc()
	q.cond.Signal()
	return job, nil
}

// Lookup returns a job by ID (any state).
func (q *Queue) Lookup(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	return j, ok
}

// Jobs returns snapshots of every job a tenant owns ("" = all tenants),
// newest first by numeric ID.
func (q *Queue) Jobs(tenant string) []Snapshot {
	q.mu.Lock()
	list := make([]*Job, 0, len(q.jobs))
	for _, j := range q.jobs {
		if tenant == "" || j.Tenant == tenant {
			list = append(list, j)
		}
	}
	q.mu.Unlock()
	out := make([]Snapshot, len(list))
	for i, j := range list {
		out[i] = j.Snapshot()
	}
	// Sort by numeric suffix of the "jN" IDs, newest first.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && jobNum(out[k].ID) > jobNum(out[k-1].ID); k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

func jobNum(id string) int64 {
	var n int64
	for _, c := range strings.TrimPrefix(id, "j") {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int64(c-'0')
	}
	return n
}

// Depth reports (waiting, running).
func (q *Queue) Depth() (int, int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.waiting, q.running
}

// pop removes and returns the next job in tenant-fair order, blocking
// until one is available. ok=false means the queue is closed and empty.
func (q *Queue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.waiting > 0 {
			// Take the head of the next non-empty tenant FIFO in ring
			// order. Ring entries are removed when a FIFO empties, so the
			// first probe always hits.
			t := q.ring[q.next%len(q.ring)]
			fifo := q.fifos[t]
			job := fifo[0]
			if len(fifo) == 1 {
				delete(q.fifos, t)
				q.ring = append(q.ring[:q.next%len(q.ring)], q.ring[q.next%len(q.ring)+1:]...)
				// Cursor now points at the successor already; wrap below.
			} else {
				q.fifos[t] = fifo[1:]
				q.next++
			}
			if len(q.ring) > 0 {
				q.next %= len(q.ring)
			} else {
				q.next = 0
			}
			q.waiting--
			q.running++
			metrics().queueDepth.Set(int64(q.waiting))
			return job, true
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// worker runs jobs until the queue closes.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		job, ok := q.pop()
		if !ok {
			return
		}
		q.runJob(job)
		q.mu.Lock()
		q.running--
		idle := q.waiting == 0 && q.running == 0
		q.mu.Unlock()
		if idle {
			q.cond.Broadcast() // wake Drain waiters
		}
	}
}

// runJob executes one job: cache lookup, evaluation, cache fill,
// terminal-state publication. Every stage is attributed to the tenant
// through the flight recorder (stream label = tenant).
func (q *Queue) runJob(job *Job) {
	m := metrics()
	start := time.Now()
	job.mu.Lock()
	job.state = JobRunning
	job.started = start
	enq := job.enqueued
	job.mu.Unlock()
	m.waitNs.Observe(start.Sub(enq).Nanoseconds())
	if q.onWait != nil {
		q.onWait(job.Tenant, start.Sub(enq).Nanoseconds())
	}

	sp := obs.StartSpan("serve.job", obs.StageEval).WithStream(job.Tenant).WithCodec(strings.Join(job.Spec.Codes, ","))
	results, width, entries, cached, err := q.evaluate(job.Spec)
	sp.EndErr(err)

	end := time.Now()
	job.mu.Lock()
	job.finished = end
	job.width = width
	job.entries = entries
	job.cached = cached
	if err != nil {
		job.state = JobFailed
		job.errMsg = err.Error()
	} else {
		job.state = JobDone
		job.results = results
	}
	job.mu.Unlock()
	m.runNs.Observe(end.Sub(start).Nanoseconds())
	if err != nil {
		m.jobsFailed.Inc()
	} else {
		m.jobsDone.Inc()
	}
	if q.tenants != nil {
		q.tenants.ReleaseJob(job.Tenant)
	}
	close(job.done)
}

// evaluate prices a spec through the cache. Exported results must be
// treated read-only by every consumer (the cache shares them).
func (q *Queue) evaluate(spec JobSpec) (results []codec.Result, width int, entries int64, cached bool, err error) {
	var key CacheKey
	if q.cache != nil && IsDigest(spec.Source) {
		key = NewCacheKey(spec.Source, spec.Codes, spec.Stride, spec.Kernel)
		if res, ok := q.cache.Get(key); ok {
			return res, resultWidth(res), resultEntries(res), true, nil
		}
	}
	results, width, entries, err = q.eval(spec)
	if err != nil {
		return nil, 0, 0, false, err
	}
	if q.cache != nil && IsDigest(spec.Source) {
		q.cache.Put(key, results)
	}
	return results, width, entries, false, nil
}

func resultWidth(res []codec.Result) int {
	if len(res) == 0 {
		return 0
	}
	return res[0].BusWidth
}

func resultEntries(res []codec.Result) int64 {
	if len(res) == 0 {
		return 0
	}
	return res[0].Cycles
}

// Drain stops intake and blocks until every accepted job is terminal
// (or the timeout elapses; timeout <= 0 waits forever). It reports
// whether the queue fully drained.
func (q *Queue) Drain(timeout time.Duration) bool {
	q.mu.Lock()
	q.draining = true
	q.mu.Unlock()
	q.cond.Broadcast()

	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		q.mu.Lock()
		idle := q.waiting == 0 && q.running == 0
		q.mu.Unlock()
		if idle {
			return true
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close ends the worker pool after a Drain (or abandons waiting jobs if
// none was done — callers that care must Drain first).
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
	q.wg.Wait()
}

// Draining reports whether Drain has begun.
func (q *Queue) Draining() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.draining
}

// DefaultEvaluator prices a spec by opening its source (store digests
// resolve through the store, anything else is a server-local file path)
// and running the streaming multi-codec fan-out.
func DefaultEvaluator(store *Store, opts codec.Options) Evaluator {
	return func(spec JobSpec) ([]codec.Result, int, int64, error) {
		var pool *trace.ChunkPool
		if spec.ChunkLen > 0 {
			pool = trace.NewChunkPool(spec.ChunkLen)
		}
		var (
			r      trace.ChunkReader
			closer interface{ Close() error }
			err    error
		)
		if IsDigest(spec.Source) {
			r, closer, err = store.Open(spec.Source, pool)
		} else {
			r, closer, err = trace.OpenFile(spec.Source, pool)
		}
		if err != nil {
			return nil, 0, 0, err
		}
		defer closer.Close()
		o := opts
		if spec.Stride > 0 {
			o.Stride = spec.Stride
		}
		cfg := core.FanoutConfig{
			Depth:  spec.Depth,
			Verify: codec.VerifySampled,
			Kernel: spec.Kernel,
		}
		results, err := core.EvaluateStreaming(r, r.Width(), spec.Codes, o, cfg)
		if err != nil {
			return nil, 0, 0, err
		}
		return results, r.Width(), results[0].Cycles, nil
	}
}
