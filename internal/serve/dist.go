package serve

import (
	"fmt"
	"net/http"
	"strings"

	"busenc/internal/dist"
	"busenc/internal/obs"
)

// /dist: the peer side of networked distributed pricing. A dist
// coordinator upgrades the connection (HTTP/1.1 101, Upgrade:
// busenc-dist) and then speaks the exact length-prefixed job protocol
// local workers speak over stdin/stdout — dist.ServeWorker runs the
// connection. Jobs reference traces by "sha256:..." digest only; the
// resolver confines every worker to the content-addressed store, so a
// peer never opens a coordinator-controlled filesystem path.

// handleDist upgrades one connection into a dist worker.
func (s *Server) handleDist(w http.ResponseWriter, r *http.Request) {
	if !strings.EqualFold(r.Header.Get("Upgrade"), dist.UpgradeProtocol) {
		Error(w, http.StatusBadRequest, "want Upgrade: %s", dist.UpgradeProtocol)
		return
	}
	if s.queue.Draining() {
		unavailable(w, "server is draining")
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		Error(w, http.StatusInternalServerError, "connection cannot be hijacked")
		return
	}
	conn, bufrw, err := hj.Hijack()
	if err != nil {
		Error(w, http.StatusInternalServerError, "hijack: %v", err)
		return
	}
	defer conn.Close()
	fmt.Fprintf(bufrw, "HTTP/1.1 101 Switching Protocols\r\nUpgrade: %s\r\nConnection: Upgrade\r\n\r\n", dist.UpgradeProtocol)
	if err := bufrw.Flush(); err != nil {
		return
	}

	wo := dist.WorkerOpts{Resolve: s.resolveTrace}
	// Fault injection for the peer-kill tests and smoke scenarios: only
	// the first /dist connection of the process gets the failure, so a
	// redialed (respawned) peer slot is healthy — mirroring the
	// gen-0-only injection of the local spawner tests.
	if s.cfg.DistFailAfter > 0 && s.distConns.Add(1) == 1 {
		wo.FailAfter = s.cfg.DistFailAfter
	}
	sp := obs.StartSpan("serve.dist_conn", obs.StageNet).WithStream(conn.RemoteAddr().String())
	err = dist.ServeWorker(bufrw.Reader, conn, wo)
	sp.EndErr(err)
}

// resolveTrace maps a job's trace ref to a store path. Only stored
// digests resolve; filesystem paths are refused outright.
func (s *Server) resolveTrace(ref string) (string, error) {
	if !IsDigest(ref) {
		return "", fmt.Errorf("serve: dist jobs must reference traces by digest, got %q", ref)
	}
	if _, ok := s.store.Lookup(ref); !ok {
		return "", fmt.Errorf("serve: unknown trace digest %q", ref)
	}
	return s.store.path(ref), nil
}
