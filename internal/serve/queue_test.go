package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"busenc/internal/codec"
)

// stubEval returns an Evaluator that records run order and optionally
// blocks until released.
func stubEval(order *[]string, mu *sync.Mutex, block chan struct{}) Evaluator {
	return func(spec JobSpec) ([]codec.Result, int, int64, error) {
		if block != nil {
			<-block
		}
		if mu != nil {
			mu.Lock()
			*order = append(*order, spec.Source)
			mu.Unlock()
		}
		return fakeResults("binary"), 32, 500, nil
	}
}

// TestQueueTenantFairness: with one worker, jobs from a backlogged
// tenant interleave round-robin with a later tenant's instead of
// starving it: A1 A2 A3 then B1 must run A1 B1 A2 A3.
func TestQueueTenantFairness(t *testing.T) {
	var order []string
	var mu sync.Mutex
	gate := make(chan struct{})
	q := NewQueue(16, func(spec JobSpec) ([]codec.Result, int, int64, error) {
		<-gate // hold the single worker until all jobs are enqueued
		mu.Lock()
		order = append(order, spec.Source)
		mu.Unlock()
		return fakeResults("binary"), 32, 500, nil
	}, nil, nil)

	var jobs []*Job
	for _, e := range []struct{ tenant, src string }{
		{"A", "A1"}, {"A", "A2"}, {"A", "A3"}, {"B", "B1"},
	} {
		j, err := q.Enqueue(e.tenant, JobSpec{Source: e.src, Codes: []string{"binary"}})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	q.Start(1)
	close(gate)
	for _, j := range jobs {
		<-j.Done()
	}
	q.Drain(time.Second)
	q.Close()

	want := []string{"A1", "B1", "A2", "A3"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("run order = %v, want %v", order, want)
	}
}

// TestQueueFullAndQuota: a stalled queue rejects at capacity with
// ErrQueueFull, and a tenant over its job quota is rejected without
// consuming queue capacity.
func TestQueueFullAndQuota(t *testing.T) {
	tenants := NewTenants(Quotas{MaxQueuedJobs: 2})
	q := NewQueue(2, stubEval(nil, nil, nil), nil, tenants) // workers never started
	if _, err := q.Enqueue("t1", JobSpec{Source: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("t2", JobSpec{Source: "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Enqueue("t3", JobSpec{Source: "c"}); err != ErrQueueFull {
		t.Errorf("third enqueue: err = %v, want ErrQueueFull", err)
	}

	// Tenant quota binds before global capacity.
	tq := NewQueue(16, stubEval(nil, nil, nil), nil, NewTenants(Quotas{MaxQueuedJobs: 1}))
	if _, err := tq.Enqueue("t1", JobSpec{Source: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := tq.Enqueue("t1", JobSpec{Source: "b"}); err == nil {
		t.Error("tenant over job quota was admitted")
	}
	if _, err := tq.Enqueue("t2", JobSpec{Source: "c"}); err != nil {
		t.Errorf("unrelated tenant rejected: %v", err)
	}
	if w, _ := tq.Depth(); w != 2 {
		t.Errorf("waiting = %d, want 2", w)
	}
}

// TestQueueDrain: Drain lets every accepted job finish, rejects new
// work with ErrDraining, and reports completion.
func TestQueueDrain(t *testing.T) {
	var done atomic.Int64
	q := NewQueue(64, func(spec JobSpec) ([]codec.Result, int, int64, error) {
		time.Sleep(time.Millisecond)
		done.Add(1)
		return fakeResults("binary"), 32, 500, nil
	}, nil, nil)
	q.Start(2)
	var jobs []*Job
	for i := 0; i < 20; i++ {
		j, err := q.Enqueue(fmt.Sprintf("t%d", i%4), JobSpec{Source: fmt.Sprintf("s%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if !q.Drain(5 * time.Second) {
		t.Fatal("drain timed out")
	}
	if _, err := q.Enqueue("t0", JobSpec{Source: "late"}); err != ErrDraining {
		t.Errorf("enqueue after drain: err = %v, want ErrDraining", err)
	}
	if n := done.Load(); n != 20 {
		t.Errorf("only %d of 20 accepted jobs ran to completion", n)
	}
	for _, j := range jobs {
		if !j.Terminal() {
			t.Errorf("job %s not terminal after drain", j.ID)
		}
		if snap := j.Snapshot(); snap.State != JobDone {
			t.Errorf("job %s state = %s, want done", j.ID, snap.State)
		}
	}
	q.Close()
}

// TestQueueCachedJob: two jobs with the same digest-keyed spec share
// one evaluation; the second is served from the cache and marked so.
func TestQueueCachedJob(t *testing.T) {
	var evals atomic.Int64
	cache := NewCache(1 << 20)
	q := NewQueue(16, func(spec JobSpec) ([]codec.Result, int, int64, error) {
		evals.Add(1)
		return fakeResults("binary", "gray"), 32, 500, nil
	}, cache, nil)
	q.Start(1)
	spec := JobSpec{Source: testDigest, Codes: []string{"binary", "gray"}, Stride: 4}
	j1, err := q.Enqueue("a", spec)
	if err != nil {
		t.Fatal(err)
	}
	<-j1.Done()
	j2, err := q.Enqueue("b", spec)
	if err != nil {
		t.Fatal(err)
	}
	<-j2.Done()
	q.Drain(time.Second)
	q.Close()

	if n := evals.Load(); n != 1 {
		t.Errorf("evaluator ran %d times, want 1 (second job should hit the cache)", n)
	}
	s1, s2 := j1.Snapshot(), j2.Snapshot()
	if s1.Cached || !s2.Cached {
		t.Errorf("cached flags = %v/%v, want false/true", s1.Cached, s2.Cached)
	}
	if len(s2.Results) != 2 || s2.Results[0].Transitions != s1.Results[0].Transitions {
		t.Errorf("cached results diverge: %+v vs %+v", s2.Results, s1.Results)
	}

	// A path-keyed (non-digest) job must never populate or hit the cache.
	j3, err := q2path(t, cache)
	if err != nil {
		t.Fatal(err)
	}
	if j3.Snapshot().Cached {
		t.Error("path-sourced job claims a cache hit")
	}
}

func q2path(t *testing.T, cache *Cache) (*Job, error) {
	t.Helper()
	q := NewQueue(4, stubEval(nil, nil, nil), cache, nil)
	q.Start(1)
	defer q.Close()
	j, err := q.Enqueue("a", JobSpec{Source: "/tmp/some/path", Codes: []string{"binary"}})
	if err != nil {
		return nil, err
	}
	<-j.Done()
	q.Drain(time.Second)
	return j, nil
}

// TestQueueConcurrentEnqueue races many producers against the worker
// pool and the drain path (the -race criterion for the queue).
func TestQueueConcurrentEnqueue(t *testing.T) {
	q := NewQueue(1024, stubEval(nil, nil, nil), NewCache(1<<20), NewTenants(Quotas{}))
	q.Start(4)
	var wg sync.WaitGroup
	var accepted atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				j, err := q.Enqueue(fmt.Sprintf("t%d", g), JobSpec{
					Source: testDigest, Codes: []string{"binary"}, Stride: uint64(i%3 + 1),
				})
				if err == nil {
					accepted.Add(1)
					_ = j.Snapshot() // racy-read check under -race
				}
			}
		}(g)
	}
	wg.Wait()
	if !q.Drain(10 * time.Second) {
		t.Fatal("drain timed out")
	}
	q.Close()
	if accepted.Load() == 0 {
		t.Fatal("no jobs accepted")
	}
	for _, s := range q.Jobs("") {
		if s.State != JobDone {
			t.Errorf("job %s state = %s after drain", s.ID, s.State)
		}
	}
}
