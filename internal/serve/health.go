package serve

import (
	"net/http"
	"runtime"
	"strings"

	"busenc/internal/codec"
	"busenc/internal/dist"
)

// GET /healthz: the version/capability half of the dist peer
// handshake. A coordinator refuses to dispatch to a peer whose
// protocol version differs from its own; the rest of the reply
// (kernels, GOMAXPROCS, codec count) is capacity information for
// operators and load balancers. Status flips to "draining" during a
// graceful shutdown so new peers stop selecting this daemon while
// accepted work finishes.

// kernelNames are the pricing kernels this build can route to.
var kernelNames = []string{"auto", "scalar", "plane"}

// Health returns the current capability snapshot.
func (s *Server) Health() dist.PeerHealth {
	status := "ok"
	if s.queue.Draining() {
		status = "draining"
	}
	return dist.PeerHealth{
		Status:       status,
		ProtoVersion: dist.ProtoVersion,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Kernels:      kernelNames,
		Codecs:       len(codec.Names()),
	}
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		Error(w, http.StatusMethodNotAllowed, "method %s not allowed on /healthz", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, s.Health())
}

// handleTraceByDigest serves GET/HEAD /traces/{digest}: the stored
// metadata, or 404. Dist coordinators probe it before shipping a trace
// so a peer that already holds the digest receives zero bytes.
func (s *Server) handleTraceByDigest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		Error(w, http.StatusMethodNotAllowed, "method %s not allowed on /traces/{digest}", r.Method)
		return
	}
	ref := strings.TrimPrefix(r.URL.Path, "/traces/")
	if !IsDigest(ref) {
		Error(w, http.StatusBadRequest, "want /traces/sha256:<64 hex>, got %q", ref)
		return
	}
	meta, ok := s.store.Lookup(ref)
	if !ok {
		Error(w, http.StatusNotFound, "unknown trace digest %q", ref)
		return
	}
	writeJSON(w, http.StatusOK, meta)
}
