package serve

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"busenc/internal/codec"
	"busenc/internal/dist"
	"busenc/internal/trace"
)

// The networked-pricing tests: a dist coordinator pointed at real
// busencd-shaped peers over loopback TCP must be bit-identical to a
// sequential RunFast for every codec — through trace shipping, digest
// dedup, pipelined dispatch, a peer dying mid-sweep, and a checkpoint
// stop/resume.

// startPeer mounts a Server on a loopback listener and returns its
// host:port (what -peers takes) alongside the Server.
func startPeer(t *testing.T, cfg Config) (string, *Server) {
	t.Helper()
	s, hs := newTestServer(t, cfg, false)
	return strings.TrimPrefix(hs.URL, "http://"), s
}

// netStream mirrors the dist package's generator: sequential runs,
// jumps and random data accesses so every registered code exercises
// real state.
func netStream(width, n int, seed int64) *trace.Stream {
	rng := rand.New(rand.NewSource(seed))
	mask := uint64(1)<<width - 1
	s := trace.New("net", width)
	addr := rng.Uint64() & mask
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			addr = (addr + 4) & mask
			s.Append(addr, trace.Instr)
		case 1:
			addr = rng.Uint64() & mask
			s.Append(addr, trace.Instr)
		case 2:
			s.Append(rng.Uint64()&mask, trace.DataRead)
		default:
			s.Append(rng.Uint64()&mask, trace.DataWrite)
		}
	}
	return s
}

func netBETR(t *testing.T, s *trace.Stream) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "net.betr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteBinary(f, s); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// checkNetParity compares a networked sweep against sequential RunFast.
func checkNetParity(t *testing.T, got []codec.Result, s *trace.Stream, specs []dist.CodecSpec) {
	t.Helper()
	if len(got) != len(specs) {
		t.Fatalf("%d results, want %d", len(got), len(specs))
	}
	for i, cs := range specs {
		c, err := cs.New()
		if err != nil {
			t.Fatal(err)
		}
		want, err := codec.RunFast(c, s, codec.RunOpts{Verify: codec.VerifyNone})
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Codec != want.Codec || got[i].Transitions != want.Transitions ||
			got[i].Cycles != want.Cycles || got[i].MaxPerCycle != want.MaxPerCycle {
			t.Errorf("codec %s: networked %+v != sequential %+v", want.Codec, got[i], want)
		}
	}
}

func TestHealthz(t *testing.T) {
	s, hs := newTestServer(t, Config{}, false)
	tests := []struct {
		name, method string
		drain        bool
		status       int
		wantStatus   string
	}{
		{name: "ok", method: http.MethodGet, status: 200, wantStatus: "ok"},
		{name: "head", method: http.MethodHead, status: 200},
		{name: "post", method: http.MethodPost, status: 405},
		{name: "draining", method: http.MethodGet, drain: true, status: 200, wantStatus: "draining"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.drain {
				s.Drain(0)
			}
			resp, body := doReq(t, tc.method, hs.URL+"/healthz", nil, "")
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			if tc.status != 200 || tc.method == http.MethodHead {
				return
			}
			h := s.Health()
			if h.Status != tc.wantStatus {
				t.Errorf("Health().Status = %q, want %q", h.Status, tc.wantStatus)
			}
			if h.ProtoVersion != dist.ProtoVersion {
				t.Errorf("proto version %d, want %d", h.ProtoVersion, dist.ProtoVersion)
			}
			if h.Codecs != len(codec.Names()) {
				t.Errorf("codecs %d, want %d", h.Codecs, len(codec.Names()))
			}
			for _, frag := range []string{`"status"`, `"proto_version"`, `"kernels"`} {
				if !strings.Contains(string(body), frag) {
					t.Errorf("body missing %s:\n%s", frag, body)
				}
			}
		})
	}
}

func TestTraceByDigest(t *testing.T) {
	_, hs := newTestServer(t, Config{}, false)
	meta := upload(t, hs, binaryTrace(t, 128), "alice")
	tests := []struct {
		name, method, path string
		status             int
	}{
		{"hit", http.MethodGet, "/traces/" + meta.Digest, 200},
		{"head", http.MethodHead, "/traces/" + meta.Digest, 200},
		{"unknown", http.MethodGet, "/traces/sha256:" + strings.Repeat("ab", 32), 404},
		{"bad ref", http.MethodGet, "/traces/not-a-digest", 400},
		{"post", http.MethodPost, "/traces/" + meta.Digest, 405},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := doReq(t, tc.method, hs.URL+tc.path, nil, "")
			if resp.StatusCode != tc.status {
				t.Errorf("%s %s = %d, want %d (%s)", tc.method, tc.path, resp.StatusCode, tc.status, body)
			}
			if tc.name == "hit" && !strings.Contains(string(body), meta.Digest) {
				t.Errorf("hit body missing digest:\n%s", body)
			}
		})
	}
}

func TestDistUpgradeRejects(t *testing.T) {
	s, hs := newTestServer(t, Config{}, false)
	resp, body := doReq(t, http.MethodGet, hs.URL+"/dist", nil, "")
	if resp.StatusCode != 400 || !strings.Contains(string(body), dist.UpgradeProtocol) {
		t.Errorf("no-upgrade GET /dist = %d %s, want 400 naming the protocol", resp.StatusCode, body)
	}
	s.Drain(0)
	req, err := http.NewRequest(http.MethodGet, hs.URL+"/dist", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Connection", "Upgrade")
	req.Header.Set("Upgrade", dist.UpgradeProtocol)
	rec := httptest.NewRecorder()
	s.handleDist(rec, req)
	if rec.Code != 503 {
		t.Errorf("draining /dist = %d, want 503", rec.Code)
	}
}

// TestNetSweepParity: a peers-only sweep over two loopback busencd
// peers matches RunFast for all registered codecs; a re-sweep ships
// zero trace bytes (both peers dedup by digest); a mixed sweep (local
// in-process worker + one peer) holds the same parity.
func TestNetSweepParity(t *testing.T) {
	const width = 32
	s := netStream(width, 16000, 43)
	path := netBETR(t, s)
	specs := dist.AllSpecs(width)
	addr1, _ := startPeer(t, Config{})
	addr2, _ := startPeer(t, Config{})

	var ns dist.NetStats
	res, err := dist.Sweep(path, dist.Opts{
		Peers:  []string{addr1, addr2},
		Shards: 8,
		Codecs: specs,
		Verify: codec.VerifyNone,
		Net:    &ns,
	})
	if err != nil {
		t.Fatalf("networked sweep: %v", err)
	}
	checkNetParity(t, res, s, specs)
	if ns.TraceShipBytes.Load() == 0 {
		t.Error("first sweep shipped zero trace bytes; expected one upload per peer")
	}
	if ns.FramesSent.Load() == 0 || ns.FramesRecv.Load() == 0 {
		t.Errorf("frame counters idle: sent %d recv %d", ns.FramesSent.Load(), ns.FramesRecv.Load())
	}

	// Re-sweep: both peers already hold the digest, so nothing ships.
	var ns2 dist.NetStats
	res, err = dist.Sweep(path, dist.Opts{
		Peers:  []string{addr1, addr2},
		Shards: 8,
		Codecs: specs,
		Verify: codec.VerifyNone,
		Net:    &ns2,
	})
	if err != nil {
		t.Fatalf("re-sweep: %v", err)
	}
	checkNetParity(t, res, s, specs)
	if got := ns2.TraceShipBytes.Load(); got != 0 {
		t.Errorf("re-sweep shipped %d trace bytes, want 0 (digest dedup)", got)
	}
	if got := ns2.TraceDedupHits.Load(); got != 2 {
		t.Errorf("re-sweep dedup hits = %d, want 2", got)
	}

	// Mixed: one local in-process worker alongside one TCP peer.
	res, err = dist.Sweep(path, dist.Opts{
		Workers: 1,
		Peers:   []string{addr1},
		Shards:  8,
		Codecs:  specs,
		Verify:  codec.VerifyNone,
		Spawn:   dist.InProcSpawner(nil),
	})
	if err != nil {
		t.Fatalf("mixed sweep: %v", err)
	}
	checkNetParity(t, res, s, specs)
}

// TestNetPeerKill: the peer's first connection dies mid-sweep; the
// coordinator redials it and re-dispatches the orphaned shards, and
// the result stays bit-identical. A single peer makes the death
// deterministic — with 8 shards and one slot, the doomed first
// connection must receive a second job frame (with two peers the
// healthy one can drain the queue before the fault fires). The
// two-peer kill scenario lives in TestNetSmoke.
func TestNetPeerKill(t *testing.T) {
	const width = 32
	s := netStream(width, 16000, 47)
	path := netBETR(t, s)
	specs := dist.AllSpecs(width)
	addr1, _ := startPeer(t, Config{DistFailAfter: 1})

	var ns dist.NetStats
	res, err := dist.Sweep(path, dist.Opts{
		Peers:  []string{addr1},
		Shards: 8,
		Codecs: specs,
		Verify: codec.VerifyNone,
		Net:    &ns,
	})
	if err != nil {
		t.Fatalf("sweep with peer kill: %v", err)
	}
	checkNetParity(t, res, s, specs)
	if ns.Redispatches.Load() < 1 {
		t.Errorf("redispatches = %d, want >= 1 after a peer death", ns.Redispatches.Load())
	}
}

// TestNetSmoke is the two-peer kill + checkpoint/resume scenario `make
// dist-smoke` runs under -race: peer 0 dies after one shard, the
// coordinator stops at the checkpoint, and the rerun resumes the
// journal to a bit-identical result.
func TestNetSmoke(t *testing.T) {
	const width = 32
	s := netStream(width, 16000, 53)
	path := netBETR(t, s)
	specs := dist.AllSpecs(width)
	addr1, _ := startPeer(t, Config{DistFailAfter: 1})
	addr2, _ := startPeer(t, Config{})
	ckpt := filepath.Join(t.TempDir(), "net-sweep.json")

	opts := dist.Opts{
		Peers:      []string{addr1, addr2},
		Shards:     8,
		Codecs:     specs,
		Verify:     codec.VerifyNone,
		Checkpoint: ckpt,
	}
	first := opts
	first.StopAfter = 3
	_, err := dist.Sweep(path, first)
	if err == nil || !strings.Contains(err.Error(), "stopped") {
		t.Fatalf("first run: err = %v, want checkpoint stop", err)
	}
	res, err := dist.Sweep(path, opts)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	checkNetParity(t, res, s, specs)
}
