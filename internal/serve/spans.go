package serve

import (
	"net/http"
	"os"

	"busenc/internal/obs"
)

// GET /spans is the flight-recorder export — and, since the trace
// harvest went cross-process, also the wire format dist.fetchPeerSpans
// reads when a sweep coordinator collects a TCP peer's lane: the pid,
// host and epoch_unix_ns fields are what let the coordinator place this
// process's spans on its own timebase, so their names are part of the
// peer protocol and must not drift.

// SpansResponse is the JSON reply of GET /spans.
type SpansResponse struct {
	Enabled bool       `json:"tracing_enabled"`
	PID     int        `json:"pid"`
	Host    string     `json:"host"`
	Epoch   int64      `json:"epoch_unix_ns"`
	Count   int        `json:"count"`
	Spans   []obs.Span `json:"spans"`
}

// handleSpans serves the flight recorder's current contents — the most
// recent spans across the pipeline, start-ordered — optionally filtered
// by exact stage (?stage=encode), codec (?codec=t0bi) or distributed
// trace ID (?trace=cafe0123deadbeef) label, with the recorder's
// identity (pid, host, tracer epoch) alongside.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		Error(w, http.StatusMethodNotAllowed, "method %s not allowed on /spans", r.Method)
		return
	}
	q := r.URL.Query()
	stage, code, trace := q.Get("stage"), q.Get("codec"), q.Get("trace")
	resp := SpansResponse{Enabled: obs.TracingEnabled(), PID: os.Getpid()}
	resp.Host, _ = os.Hostname()
	if tr := obs.CurrentTracer(); tr != nil {
		resp.Epoch = tr.Epoch().UnixNano()
	}
	spans := obs.Spans() // a fresh copy, safe to filter in place
	out := spans[:0]
	for _, sp := range spans {
		if stage != "" && sp.Stage != stage {
			continue
		}
		if code != "" && sp.Codec != code {
			continue
		}
		if trace != "" && sp.Trace != trace {
			continue
		}
		out = append(out, sp)
	}
	if out == nil {
		out = []obs.Span{}
	}
	resp.Count = len(out)
	resp.Spans = out
	writeJSON(w, http.StatusOK, resp)
}

// handleSLO serves GET /slo: the per-tenant, per-route latency and
// queue-wait summary.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		Error(w, http.StatusMethodNotAllowed, "method %s not allowed on /slo", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, s.slo.Snapshot())
}
