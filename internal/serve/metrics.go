package serve

import "busenc/internal/obs"

// Observability hooks for the service layer (see internal/obs). The
// handles live in the gated default registry like the trace metrics:
// while metrics are disabled every handle is nil and each instrumented
// event costs one predictable branch; cmd/busencd enables the registry
// at startup.
//
// Instrumented sites:
//
//   - Queue.Enqueue / worker loop — queue depth gauge (jobs waiting,
//     not yet picked by a worker), enqueue/done/failed counters,
//     queue-full and drain rejections, and the wait (enqueue→start) and
//     run (start→done) latency histograms;
//   - Cache.Get / Cache.Put — hit/miss/eviction counters and the
//     resident-bytes gauge;
//   - Store.Put and the upload handler — accepted/rejected uploads and
//     stored bytes;
//   - tenant admission — token-bucket rate rejections and quota
//     rejections (queued-job and trace-byte quotas).
type serveMetrics struct {
	queueDepth   *obs.Gauge     // serve.queue.depth
	enqueued     *obs.Counter   // serve.jobs.enqueued
	jobsDone     *obs.Counter   // serve.jobs.done
	jobsFailed   *obs.Counter   // serve.jobs.failed
	jobsSync     *obs.Counter   // serve.jobs.sync
	queueFull    *obs.Counter   // serve.queue.full_rejects
	drainRejects *obs.Counter   // serve.queue.drain_rejects
	waitNs       *obs.Histogram // serve.queue.wait_ns
	runNs        *obs.Histogram // serve.job.run_ns
	cacheHits    *obs.Counter   // serve.cache.hits
	cacheMisses  *obs.Counter   // serve.cache.misses
	cacheEvicts  *obs.Counter   // serve.cache.evictions
	cacheBytes   *obs.Gauge     // serve.cache.bytes
	uploads      *obs.Counter   // serve.uploads.accepted
	uploadErrs   *obs.Counter   // serve.uploads.rejected
	storedBytes  *obs.Gauge     // serve.store.bytes
	rateRejects  *obs.Counter   // serve.tenant.rate_rejects
	quotaRejects *obs.Counter   // serve.tenant.quota_rejects
}

var metricsBinding = obs.NewBinding(func() *serveMetrics {
	return &serveMetrics{
		queueDepth:   obs.GetGauge("serve.queue.depth"),
		enqueued:     obs.GetCounter("serve.jobs.enqueued"),
		jobsDone:     obs.GetCounter("serve.jobs.done"),
		jobsFailed:   obs.GetCounter("serve.jobs.failed"),
		jobsSync:     obs.GetCounter("serve.jobs.sync"),
		queueFull:    obs.GetCounter("serve.queue.full_rejects"),
		drainRejects: obs.GetCounter("serve.queue.drain_rejects"),
		waitNs:       obs.GetHistogram("serve.queue.wait_ns"),
		runNs:        obs.GetHistogram("serve.job.run_ns"),
		cacheHits:    obs.GetCounter("serve.cache.hits"),
		cacheMisses:  obs.GetCounter("serve.cache.misses"),
		cacheEvicts:  obs.GetCounter("serve.cache.evictions"),
		cacheBytes:   obs.GetGauge("serve.cache.bytes"),
		uploads:      obs.GetCounter("serve.uploads.accepted"),
		uploadErrs:   obs.GetCounter("serve.uploads.rejected"),
		storedBytes:  obs.GetGauge("serve.store.bytes"),
		rateRejects:  obs.GetCounter("serve.tenant.rate_rejects"),
		quotaRejects: obs.GetCounter("serve.tenant.quota_rejects"),
	}
})

func metrics() *serveMetrics { return metricsBinding.Get() }
