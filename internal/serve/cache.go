package serve

import (
	"container/list"
	"strings"
	"sync"

	"busenc/internal/codec"
)

// Result cache. Evaluation results are a pure function of the trace
// bytes and the codec parameters, so the cache key is exactly that
// function's domain: the trace's SHA-256 digest, the normalized codec
// set, the in-sequence stride (codec.Options.Stride changes every
// T0-family result) and the pricing kernel. Chunk length and fan-out
// depth are deliberately NOT in the key — the streaming parity tests
// pin results to be chunking-independent, so including them would only
// split hits.
//
// The cache is LRU-bounded by an approximate resident-byte count, not
// an entry count: a PerLine-carrying result for a wide bus is two
// orders of magnitude bigger than an aggregate-only one, and the
// ROADMAP scenario ("millions of users") makes bytes the resource that
// actually runs out.

// CacheKey identifies one evaluation's inputs.
type CacheKey struct {
	// Digest is the trace content digest ("sha256:..." hex).
	Digest string
	// Codes is the normalized codec set: names joined by "," in request
	// order (the canonical order NormalizeCodes produces).
	Codes string
	// Stride is the codec.Options in-sequence stride (0 means 1).
	Stride uint64
	// Kernel is the pricing kernel name ("auto", "scalar", "plane").
	Kernel string
}

// NewCacheKey builds a key from a digest, a codec list, and options.
func NewCacheKey(digest string, codes []string, stride uint64, kernel codec.Kernel) CacheKey {
	return CacheKey{
		Digest: digest,
		Codes:  strings.Join(codes, ","),
		Stride: stride,
		Kernel: kernel.String(),
	}
}

type cacheEntry struct {
	key     CacheKey
	results []codec.Result
	bytes   int64
}

// Cache is a bytes-bounded LRU of evaluation results. It is safe for
// concurrent use. Stored result slices are shared with callers and must
// be treated as read-only by everyone.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used; values are *cacheEntry
	m        map[CacheKey]*list.Element
}

// DefaultCacheBytes is the default result-cache bound: 64 MiB of
// resident results.
const DefaultCacheBytes = 64 << 20

// NewCache returns a cache bounded to maxBytes of resident results
// (DefaultCacheBytes if maxBytes <= 0).
func NewCache(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &Cache{maxBytes: maxBytes, ll: list.New(), m: make(map[CacheKey]*list.Element)}
}

// resultBytes approximates the resident size of a result set: the
// fixed struct fields plus the PerLine slice payloads and string
// headers' backing bytes.
func resultBytes(results []codec.Result) int64 {
	n := int64(0)
	for _, r := range results {
		n += 96 // struct fields, slice/string headers
		n += int64(len(r.PerLine)) * 8
		n += int64(len(r.Codec) + len(r.Stream))
	}
	return n
}

// Get returns the cached results for key, marking the entry most
// recently used. The second return distinguishes a hit from a miss, and
// both outcomes are counted.
func (c *Cache) Get(key CacheKey) ([]codec.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		metrics().cacheMisses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	metrics().cacheHits.Inc()
	return el.Value.(*cacheEntry).results, true
}

// Put stores results under key, evicting least-recently-used entries
// until the byte bound holds. A result set bigger than the whole bound
// is not cached at all (it would evict everything for one un-shareable
// entry). Re-putting an existing key refreshes its recency and value.
func (c *Cache) Put(key CacheKey, results []codec.Result) {
	size := resultBytes(results)
	if size > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += size - ent.bytes
		ent.results, ent.bytes = results, size
		c.ll.MoveToFront(el)
	} else {
		c.m[key] = c.ll.PushFront(&cacheEntry{key: key, results: results, bytes: size})
		c.bytes += size
	}
	for c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.m, ent.key)
		c.bytes -= ent.bytes
		metrics().cacheEvicts.Inc()
	}
	metrics().cacheBytes.Set(c.bytes)
}

// Len reports the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes reports the resident byte estimate.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
