package serve

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestSLOSnapshotAndOrder: observations land in the right (tenant,
// route) series and the snapshot comes out in stable sorted order with
// sane quantiles.
func TestSLOSnapshotAndOrder(t *testing.T) {
	s := NewSLO(0)
	for i := 0; i < 100; i++ {
		s.ObserveRequest("alice", "/eval", 3*time.Nanosecond)
	}
	s.ObserveRequest("alice", "/eval", 1000*time.Nanosecond)
	s.ObserveRequest("alice", "/jobs", 5*time.Nanosecond)
	s.ObserveRequest("bob", "/eval", 7*time.Nanosecond)
	s.ObserveQueueWait("bob", 42)

	snap := s.Snapshot()
	var keys []string
	for _, r := range snap.Requests {
		keys = append(keys, r.Tenant+" "+r.Route)
	}
	want := []string{"alice /eval", "alice /jobs", "bob /eval"}
	if strings.Join(keys, ",") != strings.Join(want, ",") {
		t.Fatalf("request series = %v, want %v", keys, want)
	}
	ae := snap.Requests[0]
	if ae.Count != 101 {
		t.Errorf("alice /eval count = %d, want 101", ae.Count)
	}
	if ae.P50Ns > ae.P99Ns || ae.P99Ns > ae.MaxNs {
		t.Errorf("quantiles out of order: p50 %d p99 %d max %d", ae.P50Ns, ae.P99Ns, ae.MaxNs)
	}
	if ae.MaxNs != 1000 {
		t.Errorf("alice /eval max = %d, want 1000", ae.MaxNs)
	}
	if len(snap.QueueWait) != 1 || snap.QueueWait[0].Tenant != "bob" || snap.QueueWait[0].Count != 1 {
		t.Errorf("queue-wait series = %+v", snap.QueueWait)
	}
}

// TestSLOTenantCardinalityCap: tenants beyond the cap fold into the
// overflow label instead of growing the metric surface.
func TestSLOTenantCardinalityCap(t *testing.T) {
	s := NewSLO(3)
	for i := 0; i < 10; i++ {
		s.ObserveRequest(fmt.Sprintf("t%d", i), "/eval", time.Nanosecond)
	}
	snap := s.Snapshot()
	if len(snap.Requests) != 4 {
		t.Fatalf("series = %d, want 3 admitted + overflow", len(snap.Requests))
	}
	var overflow *SLORouteSnapshot
	for i := range snap.Requests {
		if snap.Requests[i].Tenant == sloOverflowTenant {
			overflow = &snap.Requests[i]
		}
	}
	if overflow == nil || overflow.Count != 7 {
		t.Fatalf("overflow series = %+v, want 7 folded observations", overflow)
	}
	// An admitted tenant keeps its own series even after the cap hits.
	s.ObserveRequest("t0", "/eval", time.Nanosecond)
	for _, r := range s.Snapshot().Requests {
		if r.Tenant == "t0" && r.Count != 2 {
			t.Errorf("t0 count = %d, want 2", r.Count)
		}
	}
}

// TestSLOWritePrometheus: the text exposition is well-formed, labeled,
// cumulative and deterministic.
func TestSLOWritePrometheus(t *testing.T) {
	s := NewSLO(0)
	s.ObserveRequest("alice", "/eval", 3*time.Nanosecond)
	s.ObserveRequest("alice", "/eval", 100*time.Nanosecond)
	s.ObserveQueueWait("alice", 9)

	var a, b bytes.Buffer
	if err := s.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("exposition not deterministic across writes")
	}
	out := a.String()
	for _, want := range []string{
		"# TYPE busenc_serve_slo_latency_ns histogram",
		`busenc_serve_slo_latency_ns_bucket{route="/eval",tenant="alice",le="+Inf"} 2`,
		`busenc_serve_slo_latency_ns_sum{route="/eval",tenant="alice"} 103`,
		`busenc_serve_slo_latency_ns_count{route="/eval",tenant="alice"} 2`,
		"# TYPE busenc_serve_slo_queue_wait_ns histogram",
		`busenc_serve_slo_queue_wait_ns_count{tenant="alice"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Bucket counts are cumulative: every _bucket line's value must be
	// monotonically non-decreasing within one series.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `busenc_serve_slo_latency_ns_bucket{route="/eval",tenant="alice",le=`) {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, "} ")+2:], "%d", &v); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if v < last {
			t.Errorf("bucket counts not cumulative: %d after %d in %q", v, last, line)
		}
		last = v
	}
	if last != 2 {
		t.Errorf("final cumulative bucket = %d, want 2", last)
	}

	// A nil SLO is inert (handlers guard with it).
	var nilSLO *SLO
	nilSLO.ObserveRequest("x", "/eval", time.Nanosecond)
	nilSLO.ObserveQueueWait("x", 1)
}
