package serve

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"busenc/internal/trace"
)

// Trace store. POST /traces streams a text or BETR trace body straight
// through the chunk parsers — the body is never buffered whole — while
// a tee computes the SHA-256 digest and spools the bytes to a temp file
// in the store directory. Only after the parser has validated every
// entry is the temp file renamed to its content address
// (<hex-digest>.trace), so the store never contains a partially
// written or malformed trace. Uploads are content-addressed and
// deduplicated: re-uploading an existing digest is a cheap no-op that
// returns the same address.

// TraceMeta describes one stored trace.
type TraceMeta struct {
	// Digest is the content address ("sha256:" + hex of the raw bytes).
	Digest string `json:"digest"`
	// Bytes is the stored file size.
	Bytes int64 `json:"bytes"`
	// Entries, Width and Name are the parsed trace properties.
	Entries int64  `json:"entries"`
	Width   int    `json:"width"`
	Name    string `json:"name"`
}

// Store is a content-addressed trace store over one directory.
type Store struct {
	dir string

	mu sync.Mutex
	m  map[string]TraceMeta // digest → meta
}

// NewStore opens (creating if needed) a store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, m: make(map[string]TraceMeta)}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// errTooLarge marks an upload that hit the size cap; the HTTP layer
// maps it to 413 instead of the parser's positioned 400.
var errTooLarge = errors.New("serve: upload exceeds the size cap")

// capReader bounds an upload body and remembers whether the cap was the
// reason reads stopped, so the handler can distinguish "too large"
// from a genuine parse error at the same offset.
type capReader struct {
	r       io.Reader
	left    int64
	tripped bool
}

func (c *capReader) Read(p []byte) (int, error) {
	if c.left <= 0 {
		c.tripped = true
		return 0, errTooLarge
	}
	if int64(len(p)) > c.left {
		p = p[:c.left]
	}
	n, err := c.r.Read(p)
	c.left -= int64(n)
	return n, err
}

// Ingest streams one trace body into the store: parse-validate, digest,
// spool, rename. maxBytes caps the accepted body size (0 = no cap).
// The returned error is errTooLarge (or wraps it) when the cap tripped;
// any other error is a positioned parse error from the trace layer.
func (s *Store) Ingest(body io.Reader, maxBytes int64) (TraceMeta, error) {
	tmp, err := os.CreateTemp(s.dir, "ingest-*")
	if err != nil {
		return TraceMeta{}, err
	}
	defer func() {
		tmp.Close()
		os.Remove(tmp.Name()) // no-op once renamed
	}()

	src := body
	cr := &capReader{r: body, left: maxBytes}
	if maxBytes > 0 {
		src = cr
	}
	sum := sha256.New()
	spool := bufio.NewWriter(io.MultiWriter(tmp, sum))
	tee := io.TeeReader(src, spool)

	meta, err := parseTrace(tee)
	if err != nil {
		if cr.tripped {
			return TraceMeta{}, fmt.Errorf("%w (max %d bytes)", errTooLarge, maxBytes)
		}
		return TraceMeta{}, err
	}
	if err := spool.Flush(); err != nil {
		return TraceMeta{}, err
	}
	if err := tmp.Sync(); err != nil {
		return TraceMeta{}, err
	}
	st, err := tmp.Stat()
	if err != nil {
		return TraceMeta{}, err
	}
	meta.Bytes = st.Size()
	meta.Digest = "sha256:" + hex.EncodeToString(sum.Sum(nil))

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[meta.Digest]; ok {
		return s.m[meta.Digest], nil // dedup: keep the original file
	}
	if err := os.Rename(tmp.Name(), s.path(meta.Digest)); err != nil {
		return TraceMeta{}, err
	}
	s.m[meta.Digest] = meta
	metrics().uploads.Inc()
	metrics().storedBytes.Add(meta.Bytes)
	return meta, nil
}

// parseTrace validates a trace body through the streaming chunk
// parsers (never materializing it) and returns its parsed properties.
// The format is sniffed from the BETR magic, mirroring trace.OpenFile.
func parseTrace(r io.Reader) (TraceMeta, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, _ := br.Peek(4)
	var (
		cr  trace.ChunkReader
		err error
	)
	if string(magic) == "BETR" {
		cr, err = trace.OpenBinary(br, "upload", nil)
	} else {
		cr, err = trace.OpenText(br, "upload", nil)
	}
	if err != nil {
		return TraceMeta{}, err
	}
	var entries int64
	for {
		ch, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return TraceMeta{}, err
		}
		entries += int64(ch.Len())
		ch.Release()
	}
	return TraceMeta{Entries: entries, Width: cr.Width(), Name: cr.Name()}, nil
}

// path maps a digest to its file. The "sha256:" prefix is stripped and
// the hex remainder validated by Lookup before any filesystem use.
func (s *Store) path(digest string) string {
	return filepath.Join(s.dir, strings.TrimPrefix(digest, "sha256:")+".trace")
}

// Lookup returns the metadata for a stored digest.
func (s *Store) Lookup(digest string) (TraceMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.m[digest]
	return m, ok
}

// Open returns a ChunkReader over a stored trace.
func (s *Store) Open(digest string, pool *trace.ChunkPool) (trace.ChunkReader, io.Closer, error) {
	if _, ok := s.Lookup(digest); !ok {
		return nil, nil, fmt.Errorf("serve: unknown trace digest %q", digest)
	}
	return trace.OpenFile(s.path(digest), pool)
}

// List returns the stored metadata sorted by digest.
func (s *Store) List() []TraceMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TraceMeta, 0, len(s.m))
	for _, m := range s.m {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out
}

// IsDigest reports whether ref names a stored-trace address
// ("sha256:<64 hex>") as opposed to a filesystem path.
func IsDigest(ref string) bool {
	const p = "sha256:"
	if !strings.HasPrefix(ref, p) || len(ref) != len(p)+64 {
		return false
	}
	_, err := hex.DecodeString(ref[len(p):])
	return err == nil
}
