package serve

import (
	"testing"
	"time"
)

// TestTokenBucket drives the rate limiter on a fake clock: burst
// admits, empty bucket rejects, elapsed time refills.
func TestTokenBucket(t *testing.T) {
	ts := NewTenants(Quotas{RatePerSec: 2, RateBurst: 3})
	now := time.Unix(1000, 0)
	ts.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if !ts.Allow("t") {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	if ts.Allow("t") {
		t.Error("empty bucket admitted a request")
	}
	now = now.Add(500 * time.Millisecond) // refills 1 token at 2/s
	if !ts.Allow("t") {
		t.Error("refilled token rejected")
	}
	if ts.Allow("t") {
		t.Error("second request on one refilled token admitted")
	}
	// A long idle period caps at the burst, not unbounded.
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if !ts.Allow("t") {
			t.Fatalf("post-idle request %d rejected", i)
		}
	}
	if ts.Allow("t") {
		t.Error("bucket exceeded its burst cap after idling")
	}
	// Tenants are isolated.
	if !ts.Allow("other") {
		t.Error("fresh tenant rejected because another drained its bucket")
	}
}

// TestByteQuota: uploads charge per digest once, re-uploads are free,
// and the quota rejects without charging.
func TestByteQuota(t *testing.T) {
	ts := NewTenants(Quotas{MaxTraceBytes: 100})
	if err := ts.AdmitBytes("t", "sha256:aa", 60); err != nil {
		t.Fatal(err)
	}
	if err := ts.AdmitBytes("t", "sha256:aa", 60); err != nil {
		t.Errorf("re-upload of an owned digest charged: %v", err)
	}
	if err := ts.AdmitBytes("t", "sha256:bb", 60); err == nil {
		t.Error("over-quota upload admitted")
	}
	if got := ts.StoredBytes("t"); got != 60 {
		t.Errorf("stored bytes = %d, want 60 (failed admit must not charge)", got)
	}
	if err := ts.AdmitBytes("t", "sha256:cc", 40); err != nil {
		t.Errorf("exactly-at-quota upload rejected: %v", err)
	}
	if err := ts.AdmitBytes("other", "sha256:bb", 60); err != nil {
		t.Errorf("unrelated tenant hit a shared quota: %v", err)
	}
}

// TestJobQuota pairs AdmitJob/ReleaseJob.
func TestJobQuota(t *testing.T) {
	ts := NewTenants(Quotas{MaxQueuedJobs: 2})
	if err := ts.AdmitJob("t"); err != nil {
		t.Fatal(err)
	}
	if err := ts.AdmitJob("t"); err != nil {
		t.Fatal(err)
	}
	if err := ts.AdmitJob("t"); err == nil {
		t.Error("third concurrent job admitted over quota 2")
	}
	ts.ReleaseJob("t")
	if err := ts.AdmitJob("t"); err != nil {
		t.Errorf("released slot not reusable: %v", err)
	}
	if got := ts.QueuedJobs("t"); got != 2 {
		t.Errorf("queued = %d, want 2", got)
	}
}

func TestValidTenant(t *testing.T) {
	for _, ok := range []string{"a", "tenant-1", "A_b.c", "anon"} {
		if !ValidTenant(ok) {
			t.Errorf("ValidTenant(%q) = false", ok)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", "has space", "semi;colon", "slash/y", string(long)} {
		if ValidTenant(bad) {
			t.Errorf("ValidTenant(%q) = true", bad)
		}
	}
}
