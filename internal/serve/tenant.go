package serve

import (
	"fmt"
	"sync"
	"time"
)

// Per-tenant admission control. Every request names a tenant (the
// X-Tenant header; "anon" when absent) and is admitted against three
// independent budgets before it touches the queue or the store:
//
//   - a token-bucket request rate (RatePerSec refill, RateBurst cap),
//   - a queued-job quota (jobs enqueued and not yet terminal),
//   - a stored-trace byte quota (uploads the tenant still owns).
//
// The budgets are deliberately per-tenant rather than global: the queue
// already bounds global memory, and fairness between tenants is the
// queue's round-robin job — quotas exist so one tenant can neither
// starve the bucket of another nor fill the store.

// Quotas configures per-tenant budgets. Zero values disable the
// corresponding budget (no rate limit / unlimited jobs / unlimited
// bytes), so the zero Quotas admits everything.
type Quotas struct {
	// RatePerSec is the token-bucket refill rate in requests per second
	// (0 disables rate limiting).
	RatePerSec float64
	// RateBurst is the bucket capacity in requests (defaults to
	// RatePerSec when 0 and rate limiting is on).
	RateBurst float64
	// MaxQueuedJobs bounds jobs a tenant may have enqueued-or-running at
	// once (0 = unlimited).
	MaxQueuedJobs int
	// MaxTraceBytes bounds the total stored trace bytes a tenant owns
	// (0 = unlimited).
	MaxTraceBytes int64
}

// tenant is the mutable per-tenant state. All fields are guarded by mu.
type tenant struct {
	id string

	mu          sync.Mutex
	tokens      float64
	last        time.Time // last refill instant
	queued      int       // jobs enqueued and not yet terminal
	storedBytes int64     // trace bytes owned in the store
	digests     map[string]int64
}

// Tenants is the tenant registry: it lazily creates per-tenant state on
// first sight and applies one Quotas set to every tenant.
type Tenants struct {
	quotas Quotas
	now    func() time.Time // injectable clock for tests

	mu sync.Mutex
	m  map[string]*tenant
}

// NewTenants returns a registry enforcing the given quotas.
func NewTenants(q Quotas) *Tenants {
	if q.RatePerSec > 0 && q.RateBurst <= 0 {
		q.RateBurst = q.RatePerSec
	}
	return &Tenants{quotas: q, now: time.Now, m: make(map[string]*tenant)}
}

// get returns (creating if needed) the tenant record.
func (ts *Tenants) get(id string) *tenant {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t := ts.m[id]
	if t == nil {
		t = &tenant{
			id:      id,
			tokens:  ts.quotas.RateBurst,
			last:    ts.now(),
			digests: make(map[string]int64),
		}
		ts.m[id] = t
	}
	return t
}

// Allow spends one request token from the tenant's bucket, refilling by
// elapsed wall time first. It reports false — and counts a rate
// rejection — when the bucket is empty.
func (ts *Tenants) Allow(id string) bool {
	if ts.quotas.RatePerSec <= 0 {
		return true
	}
	t := ts.get(id)
	t.mu.Lock()
	defer t.mu.Unlock()
	now := ts.now()
	if dt := now.Sub(t.last).Seconds(); dt > 0 {
		t.tokens += dt * ts.quotas.RatePerSec
		if t.tokens > ts.quotas.RateBurst {
			t.tokens = ts.quotas.RateBurst
		}
	}
	t.last = now
	if t.tokens < 1 {
		metrics().rateRejects.Inc()
		return false
	}
	t.tokens--
	return true
}

// AdmitJob reserves one queued-job slot; the caller must pair a
// successful admit with exactly one ReleaseJob when the job reaches a
// terminal state (or failed to enqueue after all).
func (ts *Tenants) AdmitJob(id string) error {
	t := ts.get(id)
	t.mu.Lock()
	defer t.mu.Unlock()
	if max := ts.quotas.MaxQueuedJobs; max > 0 && t.queued >= max {
		metrics().quotaRejects.Inc()
		return fmt.Errorf("tenant %q job quota exhausted (%d queued, max %d)", id, t.queued, max)
	}
	t.queued++
	return nil
}

// ReleaseJob returns a queued-job slot.
func (ts *Tenants) ReleaseJob(id string) {
	t := ts.get(id)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.queued > 0 {
		t.queued--
	}
}

// AdmitBytes charges size stored bytes for digest to the tenant. A
// digest the tenant already owns is free (re-uploading is idempotent);
// exceeding the byte quota is an error and charges nothing.
func (ts *Tenants) AdmitBytes(id, digest string, size int64) error {
	t := ts.get(id)
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.digests[digest]; ok {
		return nil
	}
	if max := ts.quotas.MaxTraceBytes; max > 0 && t.storedBytes+size > max {
		metrics().quotaRejects.Inc()
		return fmt.Errorf("tenant %q trace-byte quota exhausted (%d stored + %d new > max %d)",
			id, t.storedBytes, size, max)
	}
	t.storedBytes += size
	t.digests[digest] = size
	return nil
}

// QueuedJobs reports the tenant's current queued-or-running job count.
func (ts *Tenants) QueuedJobs(id string) int {
	t := ts.get(id)
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.queued
}

// StoredBytes reports the tenant's charged store bytes.
func (ts *Tenants) StoredBytes(id string) int64 {
	t := ts.get(id)
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.storedBytes
}

// ValidTenant reports whether id is an acceptable tenant identifier:
// 1..64 characters from [A-Za-z0-9_.-].
func ValidTenant(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.':
		default:
			return false
		}
	}
	return true
}
