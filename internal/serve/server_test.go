package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"busenc/internal/codec"
	"busenc/internal/core"
	"busenc/internal/trace"
)

// newTestServer builds a Server over a temp store and mounts it on an
// httptest server. start=false leaves the worker pool idle so queued
// jobs stay queued (deterministic queue-full tests).
func newTestServer(t *testing.T, cfg Config, start bool) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.StoreDir == "" {
		cfg.StoreDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if start {
		s.Start()
	}
	mux := http.NewServeMux()
	s.Register(mux)
	hs := httptest.NewServer(mux)
	t.Cleanup(func() {
		hs.Close()
		if start {
			s.Drain(5 * time.Second)
		}
	})
	return s, hs
}

// binaryTrace serializes a reference stream of n entries.
func binaryTrace(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, core.ReferenceMuxedStream(n)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// doReq issues one request and decodes the body.
func doReq(t *testing.T, method, url string, body io.Reader, tenant string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func upload(t *testing.T, hs *httptest.Server, body []byte, tenant string) TraceMeta {
	t.Helper()
	resp, b := doReq(t, http.MethodPost, hs.URL+"/traces", bytes.NewReader(body), tenant)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status = %d, body %s", resp.StatusCode, b)
	}
	var meta TraceMeta
	if err := json.Unmarshal(b, &meta); err != nil {
		t.Fatal(err)
	}
	return meta
}

func TestServerUploadAndSyncEval(t *testing.T) {
	const entries = 512
	_, hs := newTestServer(t, Config{}, true)

	raw := binaryTrace(t, entries)
	meta := upload(t, hs, raw, "alice")
	if !IsDigest(meta.Digest) {
		t.Fatalf("upload digest %q is not a content address", meta.Digest)
	}
	if meta.Entries != entries || meta.Width != 32 {
		t.Errorf("meta = %+v, want %d entries width 32", meta, entries)
	}
	// Re-upload dedups to the same address.
	if again := upload(t, hs, raw, "bob"); again.Digest != meta.Digest {
		t.Errorf("re-upload digest %q != %q", again.Digest, meta.Digest)
	}
	resp, b := doReq(t, http.MethodGet, hs.URL+"/traces", nil, "")
	if resp.StatusCode != 200 || !strings.Contains(string(b), meta.Digest) {
		t.Errorf("GET /traces = %d %s", resp.StatusCode, b)
	}

	// Small stored trace routes synchronously; results must match an
	// in-process evaluation of the same stream (parity).
	resp, b = doReq(t, http.MethodGet, hs.URL+"/eval?trace="+meta.Digest+"&codes=t0,gray", nil, "alice")
	if resp.StatusCode != 200 {
		t.Fatalf("sync eval = %d %s", resp.StatusCode, b)
	}
	var got EvalResponse
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	st := core.ReferenceMuxedStream(entries)
	want, err := core.EvaluateParallel(st, st.Width, []string{"binary", "t0", "gray"},
		core.DefaultOptions, core.ParallelConfig{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want) {
		t.Fatalf("result count = %d, want %d", len(got.Results), len(want))
	}
	for i := range want {
		if got.Results[i].Codec != want[i].Codec || got.Results[i].Transitions != want[i].Transitions {
			t.Errorf("parity: result %d = %s/%d, want %s/%d", i,
				got.Results[i].Codec, got.Results[i].Transitions, want[i].Codec, want[i].Transitions)
		}
	}
	if got.Entries != entries || got.Cached {
		t.Errorf("entries/cached = %d/%v, want %d/false", got.Entries, got.Cached, entries)
	}

	// The same query again is a cache hit.
	resp, b = doReq(t, http.MethodGet, hs.URL+"/eval?trace="+meta.Digest+"&codes=t0,gray", nil, "alice")
	var again EvalResponse
	if err := json.Unmarshal(b, &again); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !again.Cached {
		t.Errorf("repeat eval = %d cached=%v, want 200 cached", resp.StatusCode, again.Cached)
	}
}

func TestServerAsyncEvalAndLongPoll(t *testing.T) {
	_, hs := newTestServer(t, Config{}, true)
	meta := upload(t, hs, binaryTrace(t, 256), "alice")

	resp, b := doReq(t, http.MethodGet,
		hs.URL+"/eval?trace="+meta.Digest+"&codes=t0&mode=async", nil, "alice")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async eval = %d %s", resp.StatusCode, b)
	}
	var enq enqueueResponse
	if err := json.Unmarshal(b, &enq); err != nil {
		t.Fatal(err)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+enq.ID || loc != enq.Location {
		t.Errorf("Location header %q vs body %q (id %s)", loc, enq.Location, enq.ID)
	}

	// Long-poll until terminal.
	resp, b = doReq(t, http.MethodGet, hs.URL+enq.Location+"?wait=5s", nil, "alice")
	if resp.StatusCode != 200 {
		t.Fatalf("job poll = %d %s", resp.StatusCode, b)
	}
	var snap Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.State != JobDone || len(snap.Results) != 2 {
		t.Fatalf("job = %+v, want done with 2 results", snap)
	}

	// The tenant's job listing includes it; another tenant's does not.
	_, b = doReq(t, http.MethodGet, hs.URL+"/jobs", nil, "alice")
	if !strings.Contains(string(b), enq.ID) {
		t.Errorf("tenant listing misses job: %s", b)
	}
	_, b = doReq(t, http.MethodGet, hs.URL+"/jobs", nil, "bob")
	if strings.Contains(string(b), enq.ID) {
		t.Errorf("foreign tenant sees the job: %s", b)
	}

	// Poll errors.
	if resp, _ := doReq(t, http.MethodGet, hs.URL+"/jobs/nope", nil, ""); resp.StatusCode != 404 {
		t.Errorf("unknown job = %d, want 404", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodGet, hs.URL+enq.Location+"?wait=bogus", nil, ""); resp.StatusCode != 400 {
		t.Errorf("bad wait = %d, want 400", resp.StatusCode)
	}
}

func TestServerQueueFullBackpressure(t *testing.T) {
	// Workers never started: the first async job parks in the queue and
	// the second hits the capacity bound deterministically.
	_, hs := newTestServer(t, Config{QueueCap: 1}, false)
	meta := upload(t, hs, binaryTrace(t, 64), "alice")
	url := hs.URL + "/eval?trace=" + meta.Digest + "&codes=t0&mode=async"

	if resp, b := doReq(t, http.MethodGet, url, nil, "alice"); resp.StatusCode != 202 {
		t.Fatalf("first async eval = %d %s", resp.StatusCode, b)
	}
	resp, b := doReq(t, http.MethodGet, url, nil, "bob")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second async eval = %d %s, want 503", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue-full 503 missing Retry-After")
	}
	if !strings.Contains(string(b), "queue full") {
		t.Errorf("503 body %s does not name the queue", b)
	}
}

func TestServerDrainRejectsIntake(t *testing.T) {
	s, hs := newTestServer(t, Config{}, true)
	meta := upload(t, hs, binaryTrace(t, 64), "alice")
	if !s.Drain(5 * time.Second) {
		t.Fatal("drain timed out")
	}
	resp, _ := doReq(t, http.MethodPost, hs.URL+"/traces", bytes.NewReader(binaryTrace(t, 32)), "alice")
	if resp.StatusCode != 503 || resp.Header.Get("Retry-After") == "" {
		t.Errorf("upload while draining = %d, want 503 + Retry-After", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodGet,
		hs.URL+"/eval?trace="+meta.Digest+"&codes=t0&mode=async", nil, "alice")
	if resp.StatusCode != 503 {
		t.Errorf("async eval while draining = %d, want 503", resp.StatusCode)
	}
}

func TestServerUploadErrors(t *testing.T) {
	_, hs := newTestServer(t, Config{
		MaxUploadBytes: 128,
		Quotas:         Quotas{MaxTraceBytes: 64},
	}, true)

	// Positioned parse error from the streaming text parser: line 2.
	resp, b := doReq(t, http.MethodPost, hs.URL+"/traces",
		strings.NewReader("I 10\nX bogus\n"), "alice")
	if resp.StatusCode != 400 || !strings.Contains(string(b), "upload:2") {
		t.Errorf("malformed upload = %d %s, want 400 naming upload:2", resp.StatusCode, b)
	}

	// Over the body cap: 413, not a parse 400.
	big := strings.Repeat("I 10\n", 64)
	resp, b = doReq(t, http.MethodPost, hs.URL+"/traces", strings.NewReader(big), "alice")
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload = %d %s, want 413", resp.StatusCode, b)
	}

	// Within the cap but over the tenant byte quota: 413 naming the quota.
	resp, b = doReq(t, http.MethodPost, hs.URL+"/traces",
		strings.NewReader(strings.Repeat("I 10\n", 20)), "alice")
	if resp.StatusCode != http.StatusRequestEntityTooLarge || !strings.Contains(string(b), "quota") {
		t.Errorf("over-quota upload = %d %s, want 413 naming the quota", resp.StatusCode, b)
	}
}

func TestServerEvalErrors(t *testing.T) {
	_, hs := newTestServer(t, Config{}, true)
	meta := upload(t, hs, binaryTrace(t, 64), "alice")

	cases := []struct {
		name, query string
		status      int
	}{
		{"missing trace", "/eval", 400},
		{"unknown digest", "/eval?trace=sha256:" + strings.Repeat("0", 64), 404},
		{"missing file", "/eval?trace=/no/such/file", 404},
		{"bad chunklen", "/eval?trace=" + meta.Digest + "&chunklen=-1", 400},
		{"bad stride", "/eval?trace=" + meta.Digest + "&stride=zero", 400},
		{"bad mode", "/eval?trace=" + meta.Digest + "&mode=maybe", 400},
		{"bad kernel", "/eval?trace=" + meta.Digest + "&kernel=quantum", 400},
		{"unknown codec", "/eval?trace=" + meta.Digest + "&codes=nope", 422},
		// The async path must reject at admission, not as a JobFailed
		// snapshot discovered by a later poll.
		{"unknown codec on async path", "/eval?trace=" + meta.Digest + "&codes=nope&mode=async", 422},
	}
	for _, tc := range cases {
		resp, b := doReq(t, http.MethodGet, hs.URL+tc.query, nil, "alice")
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d %s, want %d", tc.name, resp.StatusCode, b, tc.status)
		}
		if !strings.Contains(resp.Header.Get("Content-Type"), "json") {
			t.Errorf("%s: error not in the JSON envelope", tc.name)
		}
	}

	// Invalid tenant identifier.
	resp, _ := doReq(t, http.MethodGet, hs.URL+"/eval?trace="+meta.Digest, nil, "bad tenant!")
	if resp.StatusCode != 400 {
		t.Errorf("invalid tenant = %d, want 400", resp.StatusCode)
	}
}

func TestServerRateLimit(t *testing.T) {
	_, hs := newTestServer(t, Config{Quotas: Quotas{RatePerSec: 1, RateBurst: 1}}, true)
	if resp, b := doReq(t, http.MethodGet, hs.URL+"/eval?trace=/no/such", nil, "alice"); resp.StatusCode == 429 {
		t.Fatalf("first request rate-limited: %s", b)
	}
	resp, b := doReq(t, http.MethodGet, hs.URL+"/eval?trace=/no/such", nil, "alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request = %d %s, want 429", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	// Another tenant has its own bucket.
	if resp, _ := doReq(t, http.MethodGet, hs.URL+"/eval?trace=/no/such", nil, "bob"); resp.StatusCode == 429 {
		t.Error("unrelated tenant rate-limited")
	}
}

func TestNormalizeCodes(t *testing.T) {
	if got := NormalizeCodes(""); fmt.Sprint(got) != fmt.Sprint(PaperCodes) {
		t.Errorf("empty = %v", got)
	}
	if got := NormalizeCodes("t0, gray"); fmt.Sprint(got) != fmt.Sprint([]string{"binary", "t0", "gray"}) {
		t.Errorf("list = %v, want binary-first", got)
	}
	if got := NormalizeCodes("binary,t0"); fmt.Sprint(got) != fmt.Sprint([]string{"binary", "t0"}) {
		t.Errorf("explicit binary duplicated: %v", got)
	}
	if got := NormalizeCodes("all"); len(got) < len(PaperCodes) {
		t.Errorf("all = %v, shorter than the paper set", got)
	}
	_ = codec.Names() // keep the import honest if the assertions change
}
