package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"busenc/internal/obs"
)

// Per-tenant service-level metrics. The gated obs registry aggregates
// per metric name with no label dimension, so the SLOs busencload
// measures from the outside — per-tenant, per-route latency and queue
// wait — were invisible from inside the daemon. SLO keeps its own
// always-on histograms (obs.Histogram zero values, lock-free on the
// observe path) keyed by (tenant, route), with the tenant dimension
// capped: once DefaultSLOMaxTenants distinct tenants have been seen,
// later ones fold into the "~other" label, so a tenant-ID cardinality
// attack cannot grow the metric surface without bound. Routes are a
// fixed enum (one per registered pattern), never derived from the
// request path.

// DefaultSLOMaxTenants bounds the tenant label dimension.
const DefaultSLOMaxTenants = 64

// sloOverflowTenant absorbs observations from tenants beyond the cap.
const sloOverflowTenant = "~other"

// sloKey is one labeled latency series.
type sloKey struct {
	tenant string
	route  string
}

// SLO accumulates per-tenant request latency (by route) and queue-wait
// histograms. The maps are mutex-guarded; each histogram is internally
// atomic, so steady-state observation is one map lookup under a
// short-held lock plus a lock-free Observe.
type SLO struct {
	maxTenants int

	mu        sync.Mutex
	tenants   map[string]bool // distinct tenants admitted into the label space
	latency   map[sloKey]*obs.Histogram
	queueWait map[string]*obs.Histogram
}

// NewSLO builds the accumulator; maxTenants <= 0 selects the default
// cap.
func NewSLO(maxTenants int) *SLO {
	if maxTenants <= 0 {
		maxTenants = DefaultSLOMaxTenants
	}
	return &SLO{
		maxTenants: maxTenants,
		tenants:    make(map[string]bool),
		latency:    make(map[sloKey]*obs.Histogram),
		queueWait:  make(map[string]*obs.Histogram),
	}
}

// fold admits a tenant into the label space or maps it to the overflow
// label. Caller holds s.mu.
func (s *SLO) fold(tenant string) string {
	if s.tenants[tenant] {
		return tenant
	}
	if len(s.tenants) >= s.maxTenants {
		return sloOverflowTenant
	}
	s.tenants[tenant] = true
	return tenant
}

// ObserveRequest records one served request's wall time.
func (s *SLO) ObserveRequest(tenant, route string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	k := sloKey{tenant: s.fold(tenant), route: route}
	h, ok := s.latency[k]
	if !ok {
		h = &obs.Histogram{}
		s.latency[k] = h
	}
	s.mu.Unlock()
	h.Observe(d.Nanoseconds())
}

// ObserveQueueWait records how long one of the tenant's jobs sat
// queued before a worker picked it up.
func (s *SLO) ObserveQueueWait(tenant string, waitNs int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	t := s.fold(tenant)
	h, ok := s.queueWait[t]
	if !ok {
		h = &obs.Histogram{}
		s.queueWait[t] = h
	}
	s.mu.Unlock()
	h.Observe(waitNs)
}

// SLORouteSnapshot is one (tenant, route) latency series, summarized.
type SLORouteSnapshot struct {
	Tenant string  `json:"tenant"`
	Route  string  `json:"route"`
	Count  int64   `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P95Ns  int64   `json:"p95_ns"`
	P99Ns  int64   `json:"p99_ns"`
	MaxNs  int64   `json:"max_ns"`
}

// SLOWaitSnapshot is one tenant's queue-wait series, summarized.
type SLOWaitSnapshot struct {
	Tenant string  `json:"tenant"`
	Count  int64   `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P95Ns  int64   `json:"p95_ns"`
	P99Ns  int64   `json:"p99_ns"`
	MaxNs  int64   `json:"max_ns"`
}

// SLOSnapshot is the GET /slo reply: every labeled series, summarized
// with bucket-quantile estimates, in stable (tenant, route) order.
type SLOSnapshot struct {
	Requests  []SLORouteSnapshot `json:"requests"`
	QueueWait []SLOWaitSnapshot  `json:"queue_wait"`
}

// Snapshot freezes the current SLO state.
func (s *SLO) Snapshot() SLOSnapshot {
	s.mu.Lock()
	lat := make(map[sloKey]*obs.Histogram, len(s.latency))
	for k, h := range s.latency {
		lat[k] = h
	}
	qw := make(map[string]*obs.Histogram, len(s.queueWait))
	for t, h := range s.queueWait {
		qw[t] = h
	}
	s.mu.Unlock()

	var out SLOSnapshot
	for k, h := range lat {
		hs := h.Snapshot()
		out.Requests = append(out.Requests, SLORouteSnapshot{
			Tenant: k.tenant, Route: k.route,
			Count: hs.Count, MeanNs: hs.Mean(), MaxNs: hs.Max,
			P50Ns: hs.Quantile(0.50), P95Ns: hs.Quantile(0.95), P99Ns: hs.Quantile(0.99),
		})
	}
	sort.Slice(out.Requests, func(i, j int) bool {
		a, b := out.Requests[i], out.Requests[j]
		if a.Tenant != b.Tenant {
			return a.Tenant < b.Tenant
		}
		return a.Route < b.Route
	})
	for t, h := range qw {
		hs := h.Snapshot()
		out.QueueWait = append(out.QueueWait, SLOWaitSnapshot{
			Tenant: t,
			Count:  hs.Count, MeanNs: hs.Mean(), MaxNs: hs.Max,
			P50Ns: hs.Quantile(0.50), P95Ns: hs.Quantile(0.95), P99Ns: hs.Quantile(0.99),
		})
	}
	sort.Slice(out.QueueWait, func(i, j int) bool {
		return out.QueueWait[i].Tenant < out.QueueWait[j].Tenant
	})
	return out
}

// WritePrometheus appends the labeled SLO series to a text exposition:
// busenc_serve_slo_latency_ns{route,tenant} and
// busenc_serve_slo_queue_wait_ns{tenant} histograms with cumulative
// power-of-two buckets, in stable label order.
func (s *SLO) WritePrometheus(w io.Writer) error {
	s.mu.Lock()
	latKeys := make([]sloKey, 0, len(s.latency))
	for k := range s.latency {
		latKeys = append(latKeys, k)
	}
	qwKeys := make([]string, 0, len(s.queueWait))
	for t := range s.queueWait {
		qwKeys = append(qwKeys, t)
	}
	lat := make(map[sloKey]obs.HistogramSnapshot, len(latKeys))
	for _, k := range latKeys {
		lat[k] = s.latency[k].Snapshot()
	}
	qw := make(map[string]obs.HistogramSnapshot, len(qwKeys))
	for _, t := range qwKeys {
		qw[t] = s.queueWait[t].Snapshot()
	}
	s.mu.Unlock()

	sort.Slice(latKeys, func(i, j int) bool {
		if latKeys[i].tenant != latKeys[j].tenant {
			return latKeys[i].tenant < latKeys[j].tenant
		}
		return latKeys[i].route < latKeys[j].route
	})
	sort.Strings(qwKeys)

	if len(latKeys) > 0 {
		if _, err := fmt.Fprintf(w, "# TYPE busenc_serve_slo_latency_ns histogram\n"); err != nil {
			return err
		}
		for _, k := range latKeys {
			labels := fmt.Sprintf(`route=%q,tenant=%q`, k.route, k.tenant)
			if err := writePromHistogram(w, "busenc_serve_slo_latency_ns", labels, lat[k]); err != nil {
				return err
			}
		}
	}
	if len(qwKeys) > 0 {
		if _, err := fmt.Fprintf(w, "# TYPE busenc_serve_slo_queue_wait_ns histogram\n"); err != nil {
			return err
		}
		for _, t := range qwKeys {
			labels := fmt.Sprintf(`tenant=%q`, t)
			if err := writePromHistogram(w, "busenc_serve_slo_queue_wait_ns", labels, qw[t]); err != nil {
				return err
			}
		}
	}
	return nil
}

// writePromHistogram renders one labeled histogram series with
// cumulative le buckets.
func writePromHistogram(w io.Writer, name, labels string, hs obs.HistogramSnapshot) error {
	cum := int64(0)
	for _, b := range hs.Buckets {
		cum += b.Count
		if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"%d\"} %d\n", name, labels, b.Hi, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, hs.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum{%s} %d\n", name, labels, hs.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, hs.Count)
	return err
}
