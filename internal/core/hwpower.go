package core

import (
	"fmt"
	"io"
	"text/tabwriter"

	"busenc/internal/bus"
	"busenc/internal/hw"
	"busenc/internal/netlist"
	"busenc/internal/power"
	"busenc/internal/trace"
)

// DecoderInternalLoadF is the on-chip capacitance each decoder output
// drives (register inputs of the receiving memory controller).
const DecoderInternalLoadF = 0.05e-12

// HWMeasure holds the measured electrical behaviour of one codec's
// hardware on a reference stream.
type HWMeasure struct {
	Codec hw.Codec
	// EncAct and DecAct are the netlist switching activities.
	EncAct, DecAct netlist.Activity
	// LineAlphas are the per-bus-line toggle probabilities of the
	// encoded stream (payload + redundant lines) — what the bus wires or
	// pads see.
	LineAlphas []float64
}

// MeasureHW simulates the encoder and decoder netlists over the stream and
// records all switching activities.
func MeasureHW(c hw.Codec, s *trace.Stream) (*HWMeasure, error) {
	encSim, err := netlist.NewSimulator(c.Enc)
	if err != nil {
		return nil, err
	}
	decSim, err := netlist.NewSimulator(c.Dec)
	if err != nil {
		return nil, err
	}
	lines := bus.New(c.BusWidth())
	for _, e := range s.Entries {
		encSim.Step(c.EncInputs(e))
		word := c.EncodedWord(encSim)
		lines.Drive(word)
		decSim.Step(c.DecInputs(word, e.Sel()))
	}
	per := lines.PerLine()
	alphas := make([]float64, len(per))
	denom := float64(s.Len() - 1)
	for i, t := range per {
		if denom > 0 {
			alphas[i] = float64(t) / denom
		}
	}
	return &HWMeasure{
		Codec:      c,
		EncAct:     encSim.Activity(),
		DecAct:     decSim.Activity(),
		LineAlphas: alphas,
	}, nil
}

// Table8Row is one on-chip load point: encoder and decoder power in watts
// for the three hardware codecs (paper Table 8).
type Table8Row struct {
	LoadF                float64
	BinaryEnc, BinaryDec float64
	T0Enc, T0Dec         float64
	DbiEnc, DbiDec       float64
}

// hwSet builds and measures the three hardware codecs once.
type hwSet struct {
	bin, t0, dbi *HWMeasure
}

func measureAll(s *trace.Stream) (*hwSet, error) {
	strideLog := 2 // stride 4
	bin, err := MeasureHW(hw.Binary(Width), s)
	if err != nil {
		return nil, err
	}
	t0, err := MeasureHW(hw.T0(Width, strideLog), s)
	if err != nil {
		return nil, err
	}
	dbi, err := MeasureHW(hw.DualT0BI(Width, strideLog), s)
	if err != nil {
		return nil, err
	}
	return &hwSet{bin: bin, t0: t0, dbi: dbi}, nil
}

// Table8 computes the on-chip codec power sweep: every encoder output
// drives loadF per line; decoders drive the fixed internal load.
func Table8(s *trace.Stream, loadsF []float64) ([]Table8Row, error) {
	set, err := measureAll(s)
	if err != nil {
		return nil, err
	}
	lib := netlist.DefaultLibrary()
	m := power.Default()
	rows := make([]Table8Row, 0, len(loadsF))
	for _, load := range loadsF {
		rows = append(rows, Table8Row{
			LoadF:     load,
			BinaryEnc: lib.Power(set.bin.Codec.Enc, set.bin.EncAct, m.FreqHz, load),
			BinaryDec: lib.Power(set.bin.Codec.Dec, set.bin.DecAct, m.FreqHz, DecoderInternalLoadF),
			T0Enc:     lib.Power(set.t0.Codec.Enc, set.t0.EncAct, m.FreqHz, load),
			T0Dec:     lib.Power(set.t0.Codec.Dec, set.t0.DecAct, m.FreqHz, DecoderInternalLoadF),
			DbiEnc:    lib.Power(set.dbi.Codec.Enc, set.dbi.EncAct, m.FreqHz, load),
			DbiDec:    lib.Power(set.dbi.Codec.Dec, set.dbi.DecAct, m.FreqHz, DecoderInternalLoadF),
		})
	}
	return rows, nil
}

// RenderTable8 writes the on-chip power table (values in mW).
func RenderTable8(w io.Writer, rows []Table8Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 8: Enc/Dec Power Consumption for On-Chip Loads (mW)")
	fmt.Fprintln(tw, "Load(pF)\tBinary Enc\tBinary Dec\tT0 Enc\tT0 Dec\tDualT0BI Enc\tDualT0BI Dec")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.2f\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\n",
			r.LoadF*1e12, r.BinaryEnc*1e3, r.BinaryDec*1e3, r.T0Enc*1e3, r.T0Dec*1e3, r.DbiEnc*1e3, r.DbiDec*1e3)
	}
	return tw.Flush()
}

// Table9Row is one off-chip load point: pad power and global (encoder
// logic + pads + decoder logic) power in watts (paper Table 9).
type Table9Row struct {
	LoadF        float64
	BinaryPads   float64
	BinaryGlobal float64
	T0Pads       float64
	T0Global     float64
	DbiPads      float64
	DbiGlobal    float64
}

// Table9 computes the off-chip sweep: the encoders drive output pads
// (their on-chip load is the pad input capacitance), the pads drive the
// external load at the encoded stream's per-line activity, and the
// decoders run from the received stream. Input-pad power is neglected, as
// in the paper.
func Table9(s *trace.Stream, loadsF []float64) ([]Table9Row, error) {
	set, err := measureAll(s)
	if err != nil {
		return nil, err
	}
	lib := netlist.DefaultLibrary()
	m := power.Default()
	pad := power.DefaultPad()
	global := func(hm *HWMeasure, loadF float64) (pads, total float64) {
		pads = power.PadBankPower(m, pad, hm.LineAlphas, loadF)
		encLogic := lib.Power(hm.Codec.Enc, hm.EncAct, m.FreqHz, pad.InputCapF)
		decLogic := lib.Power(hm.Codec.Dec, hm.DecAct, m.FreqHz, DecoderInternalLoadF)
		return pads, encLogic + pads + decLogic
	}
	rows := make([]Table9Row, 0, len(loadsF))
	for _, load := range loadsF {
		r := Table9Row{LoadF: load}
		r.BinaryPads, r.BinaryGlobal = global(set.bin, load)
		r.T0Pads, r.T0Global = global(set.t0, load)
		r.DbiPads, r.DbiGlobal = global(set.dbi, load)
		rows = append(rows, r)
	}
	return rows, nil
}

// RenderTable9 writes the off-chip power table (values in mW).
func RenderTable9(w io.Writer, rows []Table9Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 9: Enc/Dec Power Consumption for Off-Chip Loads (mW)")
	fmt.Fprintln(tw, "Load(pF)\tBinary Pads\tBinary Global\tT0 Pads\tT0 Global\tDualT0BI Pads\tDualT0BI Global")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.0f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			r.LoadF*1e12, r.BinaryPads*1e3, r.BinaryGlobal*1e3, r.T0Pads*1e3, r.T0Global*1e3, r.DbiPads*1e3, r.DbiGlobal*1e3)
	}
	return tw.Flush()
}

// OnChipLoads are the paper's Table 8 load points.
var OnChipLoads = []float64{0.1e-12, 0.2e-12, 0.4e-12, 0.6e-12, 0.8e-12, 1.0e-12}

// OffChipLoads are the paper's Table 9 load points.
var OffChipLoads = []float64{20e-12, 50e-12, 100e-12, 200e-12, 500e-12, 1000e-12}

// Crossover finds the smallest off-chip load (by linear scan over the
// sweep) at which the dual T0_BI global power drops below the T0 global
// power — the paper's recommendation boundary ("T0 for 20-100 pF, dual
// T0_BI above").
func Crossover(rows []Table9Row) (loadF float64, found bool) {
	for _, r := range rows {
		if r.DbiGlobal < r.T0Global {
			return r.LoadF, true
		}
	}
	return 0, false
}
