package core

import (
	"fmt"
	"sync"

	"busenc/internal/mips"
	"busenc/internal/mips/progs"
	"busenc/internal/obs"
	"busenc/internal/workload"
)

// Stream-suite memoization. Each of Table2..Table7 needs the same nine
// benchmark stream sets; regenerating them per table made a full cmd/paper
// run pay six stream generations (and six MIPS simulations of every
// program with -source mips). The suites are deterministic per source, so
// they are computed once per process and shared. Streams are treated as
// immutable after generation — nothing in this repository mutates
// trace.Stream entries once built.

type streamCacheEntry struct {
	once sync.Once
	sets []StreamSet
	err  error
}

var streamCache sync.Map // Source -> *streamCacheEntry

// Engine counters, kept in an explicit always-on obs registry (the
// events are once-per-process rare, so gating would only hide them):
// they make the memoization contract measurable ("each MIPS program is
// assembled and simulated exactly once per process") and show up in
// every metrics dump alongside the gated hot-path registry.
// The parallel-evaluation counters are written concurrently by the
// scheduler's workers (and, beneath them, shard goroutines), so every
// counter here must stay an obs atomic — StreamEngineStats may be
// called while an evaluation is in flight and must stay race-clean
// (core's race test hammers exactly that).
var (
	engineReg       = obs.NewRegistry("engine")
	mipsRuns        = engineReg.Counter("engine.mips_runs")
	mipsCycles      = engineReg.Counter("engine.mips_cycles")
	parallelEvals   = engineReg.Counter("engine.parallel_evals")
	parallelEntries = engineReg.Counter("engine.parallel_entries")
)

// EngineStats reports cumulative work done by the stream layer since
// process start.
type EngineStats struct {
	// MIPSRuns is the number of benchmark programs assembled and simulated.
	MIPSRuns int64
	// MIPSCycles is the total number of simulated CPU cycles across those
	// runs (from mips.RunStats).
	MIPSCycles int64
	// ParallelEvals is the number of codec evaluations completed through
	// EvaluateParallel.
	ParallelEvals int64
	// ParallelEntries is the total entries priced by those evaluations.
	ParallelEntries int64
}

// StreamEngineStats returns the current engine counters. It is safe to
// call concurrently with running evaluations.
func StreamEngineStats() EngineStats {
	return EngineStats{
		MIPSRuns:        mipsRuns.Value(),
		MIPSCycles:      mipsCycles.Value(),
		ParallelEvals:   parallelEvals.Value(),
		ParallelEntries: parallelEntries.Value(),
	}
}

// Streams returns the nine-benchmark stream sets from the chosen source,
// memoized per source: the first call per source generates (bounded by
// the worker pool), subsequent calls share the same streams. Callers must
// treat the returned streams as read-only.
func Streams(src Source) ([]StreamSet, error) {
	v, _ := streamCache.LoadOrStore(src, &streamCacheEntry{})
	e := v.(*streamCacheEntry)
	e.once.Do(func() { e.sets, e.err = GenerateStreams(src) })
	if e.err != nil {
		return nil, e.err
	}
	// Copy the slice header so callers cannot reorder the cached sets.
	return append([]StreamSet(nil), e.sets...), nil
}

// GenerateStreams builds the nine-benchmark stream sets from scratch,
// bypassing the memoization cache. It is the generation backend of
// Streams and is exported for benchmarking the uncached path (cmd/paper
// -benchjson).
func GenerateStreams(src Source) ([]StreamSet, error) {
	switch src {
	case Synthetic:
		suite := workload.Suite()
		out := make([]StreamSet, len(suite))
		err := forEachN(len(suite), func(i int) error {
			b := suite[i]
			out[i] = StreamSet{Name: b.Name, Instr: b.Instr(), Data: b.Data(), Muxed: b.Muxed()}
			return nil
		})
		return out, err
	case MIPS:
		names := progs.PaperOrder()
		out := make([]StreamSet, len(names))
		err := forEachN(len(names), func(i int) error {
			name := names[i]
			b, err := progs.Get(name)
			if err != nil {
				return err
			}
			p, err := b.Assemble()
			if err != nil {
				return err
			}
			muxed, stats, err := mips.Run(p, name, b.MaxCycles)
			if err != nil {
				return err
			}
			// stats is not part of the table data, but it is the engine's
			// record of simulation work done — fold it into the counters.
			mipsRuns.Add(1)
			mipsCycles.Add(stats.Cycles)
			out[i] = StreamSet{
				Name:  name,
				Instr: muxed.InstrOnly(),
				Data:  muxed.DataOnly(),
				Muxed: muxed,
			}
			return nil
		})
		return out, err
	default:
		return nil, fmt.Errorf("core: unknown stream source %q", src)
	}
}
