package core

import (
	"bytes"
	"testing"

	"busenc/internal/codec"
	"busenc/internal/obs"
	"busenc/internal/trace"
)

// TestEvaluateStreamingMetrics: with observability enabled, one fan-out
// evaluation must account for every chunk broadcast, every entry
// encoded per codec, and the configured depth/worker gauges — measured
// as a snapshot diff so the test is immune to other tests' traffic.
func TestEvaluateStreamingMetrics(t *testing.T) {
	obs.Enable()
	defer obs.Disable()

	const entries = 10000
	s := ReferenceMuxedStream(entries)
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	codes := []string{"binary", "t0", "dualt0bi"}

	before := obs.Default().Snapshot()
	r, err := trace.OpenBinary(bytes.NewReader(buf.Bytes()), "metrics.bin", nil)
	if err != nil {
		t.Fatal(err)
	}
	results, err := EvaluateStreaming(r, r.Width(), codes, DefaultOptions,
		FanoutConfig{Verify: codec.VerifySampled})
	if err != nil {
		t.Fatal(err)
	}
	d := obs.Default().Snapshot().Diff(before)

	wantChunks := int64((entries + trace.DefaultChunkLen - 1) / trace.DefaultChunkLen)
	if got := d.Counters["core.fanout.blocks_broadcast"]; got != wantChunks {
		t.Errorf("blocks_broadcast = %d, want %d", got, wantChunks)
	}
	if got := d.Counters["trace.chunks_read"]; got != wantChunks {
		t.Errorf("trace.chunks_read = %d, want %d", got, wantChunks)
	}
	if got := d.Counters["trace.entries_read"]; got != entries {
		t.Errorf("trace.entries_read = %d, want %d", got, entries)
	}
	for i, code := range codes {
		if got := d.Counters["codec.entries_encoded."+code]; got != entries {
			t.Errorf("entries_encoded.%s = %d, want %d", code, got, entries)
		}
		if got := d.Counters["codec.transitions."+code]; got != results[i].Transitions {
			t.Errorf("transitions.%s = %d, want %d", code, got, results[i].Transitions)
		}
	}
	// Gauges are instantaneous: after the evaluation they hold its config.
	if got := d.Gauges["core.fanout.depth"]; got != DefaultFanoutDepth {
		t.Errorf("fanout.depth gauge = %d, want %d", got, DefaultFanoutDepth)
	}
	if got := d.Gauges["core.fanout.workers"]; got != int64(len(codes)) {
		t.Errorf("fanout.workers gauge = %d, want %d", got, len(codes))
	}
	// Every worker blocks at least once (on the closing channel), so the
	// wait histogram must have at least one observation per worker.
	h := d.Histograms["core.fanout.worker_wait_ns"]
	if h.Count < int64(len(codes)) {
		t.Errorf("worker_wait_ns count = %d, want >= %d", h.Count, len(codes))
	}
	// The trace pool must balance: everything handed out was released.
	if got := d.Gauges["trace.pool.in_use"]; got != 0 {
		t.Errorf("trace.pool.in_use = %d after evaluation, want 0", got)
	}
}

// TestEngineStatsOnRegistry: the memoization counters now live in the
// always-on "engine" registry and must agree with the public
// StreamEngineStats accessor.
func TestEngineStatsOnRegistry(t *testing.T) {
	if _, err := Streams(Synthetic); err != nil {
		t.Fatal(err)
	}
	stats := StreamEngineStats()
	var snap obs.Snapshot
	for _, s := range obs.SnapshotAll() {
		if s.Registry == "engine" {
			snap = s
		}
	}
	if snap.Registry != "engine" {
		// Synthetic streams never touch the MIPS counters; the registry
		// only shows up in SnapshotAll once something was recorded.
		if stats.MIPSRuns != 0 {
			t.Fatalf("MIPSRuns = %d but engine registry empty", stats.MIPSRuns)
		}
		return
	}
	if got := snap.Counters["engine.mips_runs"]; got != stats.MIPSRuns {
		t.Errorf("registry mips_runs = %d, StreamEngineStats = %d", got, stats.MIPSRuns)
	}
	if got := snap.Counters["engine.mips_cycles"]; got != stats.MIPSCycles {
		t.Errorf("registry mips_cycles = %d, StreamEngineStats = %d", got, stats.MIPSCycles)
	}
}
