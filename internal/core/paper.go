package core

import (
	"fmt"
	"io"
	"text/tabwriter"

	"busenc/internal/analytic"
	"busenc/internal/codec"
	"busenc/internal/trace"
	"busenc/internal/workload"
)

// Paper table regeneration. One function per table of the DATE'98 paper;
// cmd/paper and bench_test.go call these.

// ExistingCodes are the columns of Tables 2-4.
var ExistingCodes = []string{"t0", "businvert"}

// MixedCodes are the columns of Tables 5-7.
var MixedCodes = []string{"t0bi", "dualt0", "dualt0bi"}

// DefaultOptions are the codec parameters of the paper's experiments:
// stride 4 (word-addressed instructions on a byte-addressed 32-bit MIPS).
var DefaultOptions = codec.Options{Stride: Stride}

// Table1 returns the analytical comparison rows plus a Monte-Carlo
// cross-check column measured over n random / sequential references.
type Table1Row struct {
	analytic.Row
	Simulated float64 // measured avg transitions/clock for the same case
}

// Table1 computes the analytical table for an n-bit bus and verifies each
// closed form by simulation over the given number of references.
func Table1(nBits, refs int) ([]Table1Row, error) {
	rows := analytic.Table1(nBits)
	out := make([]Table1Row, 0, len(rows))
	random := workload.Random(nBits, refs, 7)
	sequential := workload.Sequential(nBits, refs, 0, 1)
	for _, r := range rows {
		s := random
		if r.Stream == "sequential" {
			s = sequential
		}
		c, err := codec.New(r.Code, nBits, codec.Options{Stride: 1})
		if err != nil {
			return nil, err
		}
		res, err := codec.Run(c, s)
		if err != nil {
			return nil, err
		}
		out = append(out, Table1Row{Row: r, Simulated: res.AvgPerCycle()})
	}
	return out, nil
}

// RenderTable1 writes the analytical table as text.
func RenderTable1(w io.Writer, rows []Table1Row) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table 1: Analytical Performance Comparison")
	fmt.Fprintln(tw, "Stream\tCode\tAvg Trans/Clock\tAvg Trans/Line\tRel. I/O Power\tSimulated")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.4f\t%.4f\t%.4f\t%.4f\n", r.Stream, r.Code, r.PerClk, r.PerLine, r.RelPow, r.Simulated)
	}
	return tw.Flush()
}

// pickers for the three stream classes.
func pickInstr(s StreamSet) *trace.Stream { return s.Instr }
func pickData(s StreamSet) *trace.Stream  { return s.Data }
func pickMuxed(s StreamSet) *trace.Stream { return s.Muxed }

// Table2 compares the existing codes on instruction address streams.
func Table2(src Source) (*Table, error) {
	sets, err := Streams(src)
	if err != nil {
		return nil, err
	}
	return Compare("Table 2: Existing Encoding Schemes, Instruction Address Streams ("+string(src)+")",
		sets, pickInstr, ExistingCodes, DefaultOptions)
}

// Table3 compares the existing codes on data address streams.
func Table3(src Source) (*Table, error) {
	sets, err := Streams(src)
	if err != nil {
		return nil, err
	}
	return Compare("Table 3: Existing Encoding Schemes, Data Address Streams ("+string(src)+")",
		sets, pickData, ExistingCodes, DefaultOptions)
}

// Table4 compares the existing codes on multiplexed address streams.
func Table4(src Source) (*Table, error) {
	sets, err := Streams(src)
	if err != nil {
		return nil, err
	}
	return Compare("Table 4: Existing Encoding Schemes, Multiplexed Address Streams ("+string(src)+")",
		sets, pickMuxed, ExistingCodes, DefaultOptions)
}

// Table5 compares the mixed codes on instruction address streams.
func Table5(src Source) (*Table, error) {
	sets, err := Streams(src)
	if err != nil {
		return nil, err
	}
	return Compare("Table 5: Mixed Encoding Schemes, Instruction Address Streams ("+string(src)+")",
		sets, pickInstr, MixedCodes, DefaultOptions)
}

// Table6 compares the mixed codes on data address streams.
func Table6(src Source) (*Table, error) {
	sets, err := Streams(src)
	if err != nil {
		return nil, err
	}
	return Compare("Table 6: Mixed Encoding Schemes, Data Address Streams ("+string(src)+")",
		sets, pickData, MixedCodes, DefaultOptions)
}

// Table7 compares the mixed codes on multiplexed address streams.
func Table7(src Source) (*Table, error) {
	sets, err := Streams(src)
	if err != nil {
		return nil, err
	}
	return Compare("Table 7: Mixed Encoding Schemes, Multiplexed Address Streams ("+string(src)+")",
		sets, pickMuxed, MixedCodes, DefaultOptions)
}

// ReferenceMuxedStream returns the stream used to exercise the hardware
// codecs in Tables 8-9: the first synthetic benchmark's muxed stream,
// truncated for simulation speed.
func ReferenceMuxedStream(n int) *trace.Stream {
	b := workload.Suite()[0]
	s := b.Muxed()
	if s.Len() > n {
		s = s.Slice(0, n)
	}
	return s
}
