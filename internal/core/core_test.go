package core

import (
	"math"
	"strings"
	"testing"

	"busenc/internal/trace"
)

func table(t *testing.T, f func(Source) (*Table, error), src Source) *Table {
	t.Helper()
	tab, err := f(src)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func savings(t *testing.T, tab *Table, code string) float64 {
	t.Helper()
	s, err := tab.AvgSavingsFor(code)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStreamsSources(t *testing.T) {
	for _, src := range []Source{Synthetic, MIPS} {
		sets, err := Streams(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if len(sets) != 9 {
			t.Fatalf("%s: %d benchmarks", src, len(sets))
		}
		for _, set := range sets {
			if set.Instr.Len() == 0 || set.Data.Len() == 0 || set.Muxed.Len() == 0 {
				t.Errorf("%s/%s: empty stream", src, set.Name)
			}
		}
	}
	if _, err := Streams("nope"); err == nil {
		t.Error("unknown source accepted")
	}
}

// TestTable2Shape: instruction streams. Paper: in-seq 63.04%, T0 saves
// 35.52%, bus-invert 0.03%.
func TestTable2Shape(t *testing.T) {
	tab := table(t, Table2, Synthetic)
	if math.Abs(tab.AvgInSeqPct-63.04) > 2 {
		t.Errorf("in-seq avg = %.2f%%, paper 63.04%%", tab.AvgInSeqPct)
	}
	t0 := savings(t, tab, "t0")
	bi := savings(t, tab, "businvert")
	if t0 < 28 || t0 > 43 {
		t.Errorf("T0 savings = %.2f%%, paper 35.52%%", t0)
	}
	if math.Abs(bi) > 3 {
		t.Errorf("bus-invert savings = %.2f%%, paper 0.03%%", bi)
	}
	if !(t0 > bi+20) {
		t.Error("T0 must dominate bus-invert on instruction streams")
	}
}

// TestTable3Shape: data streams. Paper: in-seq 11.39%, T0 3.37%,
// bus-invert 10.78% — bus-invert wins.
func TestTable3Shape(t *testing.T) {
	tab := table(t, Table3, Synthetic)
	if math.Abs(tab.AvgInSeqPct-11.39) > 2 {
		t.Errorf("in-seq avg = %.2f%%, paper 11.39%%", tab.AvgInSeqPct)
	}
	t0 := savings(t, tab, "t0")
	bi := savings(t, tab, "businvert")
	if t0 > 8 || t0 < -2 {
		t.Errorf("T0 savings = %.2f%%, paper 3.37%% (must be marginal)", t0)
	}
	if bi < 5 || bi > 22 {
		t.Errorf("bus-invert savings = %.2f%%, paper 10.78%%", bi)
	}
	if bi <= t0 {
		t.Error("bus-invert must win on data streams")
	}
}

// TestTable4Shape: multiplexed streams show intermediate behaviour; T0
// still edges out bus-invert (paper: 10.25% vs 9.79%).
func TestTable4Shape(t *testing.T) {
	tab := table(t, Table4, Synthetic)
	if math.Abs(tab.AvgInSeqPct-57.62) > 3 {
		t.Errorf("in-seq avg = %.2f%%, paper 57.62%%", tab.AvgInSeqPct)
	}
	t0 := savings(t, tab, "t0")
	bi := savings(t, tab, "businvert")
	if t0 <= bi {
		t.Errorf("T0 (%.2f%%) must beat bus-invert (%.2f%%) on muxed streams", t0, bi)
	}
	// Intermediate: below the instruction-stream savings, above data.
	instr := savings(t, table(t, Table2, Synthetic), "t0")
	data := savings(t, table(t, Table3, Synthetic), "t0")
	if !(data < t0 && t0 < instr) {
		t.Errorf("muxed T0 savings %.2f%% not between data %.2f%% and instruction %.2f%%", t0, data, instr)
	}
}

// TestTable5Shape: on instruction streams every mixed code matches plain
// T0 (paper: 34.92 / 35.52 / 35.52 vs 35.52).
func TestTable5Shape(t *testing.T) {
	tab := table(t, Table5, Synthetic)
	t0 := savings(t, table(t, Table2, Synthetic), "t0")
	for _, code := range MixedCodes {
		s := savings(t, tab, code)
		if math.Abs(s-t0) > 3 {
			t.Errorf("%s savings %.2f%% should match plain T0's %.2f%% on instruction streams", code, s, t0)
		}
	}
	// T0_BI pays for its second redundant line: it must not beat dual T0.
	if savings(t, tab, "t0bi") > savings(t, tab, "dualt0")+0.5 {
		t.Error("t0bi should trail dualt0 slightly, as in the paper")
	}
}

// TestTable6Shape: data streams. Paper: t0bi 12.82%, dual t0 0.00%, dual
// t0_bi 10.66%.
func TestTable6Shape(t *testing.T) {
	tab := table(t, Table6, Synthetic)
	t0bi := savings(t, tab, "t0bi")
	dual := savings(t, tab, "dualt0")
	dbi := savings(t, tab, "dualt0bi")
	if math.Abs(dual) > 0.5 {
		t.Errorf("dual T0 savings = %.2f%%, paper 0.00%% (no instruction addresses to exploit)", dual)
	}
	if t0bi < 8 || dbi < 8 {
		t.Errorf("BI-family codes too weak on data: t0bi %.2f%%, dualt0bi %.2f%%", t0bi, dbi)
	}
	if t0bi < dbi-1 {
		t.Errorf("t0bi (%.2f%%) should not trail dualt0bi (%.2f%%) on data streams", t0bi, dbi)
	}
}

// TestTable7Shape: the headline result — dual T0_BI is the best code for
// the multiplexed address bus (paper: 22.25% vs 19.56% and 12.15%).
func TestTable7Shape(t *testing.T) {
	tab := table(t, Table7, Synthetic)
	t0bi := savings(t, tab, "t0bi")
	dual := savings(t, tab, "dualt0")
	dbi := savings(t, tab, "dualt0bi")
	if !(dbi > t0bi && dbi > dual) {
		t.Errorf("dual T0_BI (%.2f%%) must be the best muxed code (t0bi %.2f%%, dualt0 %.2f%%)", dbi, t0bi, dual)
	}
	if dbi < 15 {
		t.Errorf("dual T0_BI savings = %.2f%%, paper 22.25%%", dbi)
	}
	// It must also beat plain T0 from Table 4 (paper: 22.25 vs 10.25).
	t0 := savings(t, table(t, Table4, Synthetic), "t0")
	if dbi <= t0 {
		t.Errorf("dual T0_BI (%.2f%%) must beat plain T0 (%.2f%%) on the muxed bus", dbi, t0)
	}
}

// TestMIPSSourceShapes: the simulator-generated streams must reproduce the
// qualitative orderings too.
func TestMIPSSourceShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("mips simulation in -short mode")
	}
	t2 := table(t, Table2, MIPS)
	if s := savings(t, t2, "t0"); s < 20 {
		t.Errorf("MIPS instruction T0 savings = %.2f%%, want substantial", s)
	}
	t7 := table(t, Table7, MIPS)
	dbi := savings(t, t7, "dualt0bi")
	dual := savings(t, t7, "dualt0")
	t0bi := savings(t, t7, "t0bi")
	if !(dbi >= dual-0.5 && dbi > t0bi-3) {
		t.Errorf("MIPS muxed: dualt0bi %.2f%% should be at or near the top (dualt0 %.2f%%, t0bi %.2f%%)", dbi, dual, t0bi)
	}
}

func TestTable1RowsAndSimulation(t *testing.T) {
	rows, err := Table1(16, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Closed forms and Monte-Carlo agree.
		tol := 0.15
		if r.Stream == "random" {
			tol = 0.25
		}
		if math.Abs(r.PerClk-r.Simulated) > tol {
			t.Errorf("%s/%s: analytical %.3f vs simulated %.3f", r.Stream, r.Code, r.PerClk, r.Simulated)
		}
	}
}

func TestRenderers(t *testing.T) {
	tab := table(t, Table2, Synthetic)
	out := tab.String()
	for _, want := range []string{"gzip", "oracle", "Average", "t0", "businvert"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	rows, err := Table1(8, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderTable1(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "businvert") {
		t.Error("table 1 render incomplete")
	}
}

func TestAvgSavingsForUnknown(t *testing.T) {
	tab := table(t, Table2, Synthetic)
	if _, err := tab.AvgSavingsFor("nope"); err == nil {
		t.Error("unknown code accepted")
	}
}

func TestCompareRejectsBadCode(t *testing.T) {
	sets, _ := Streams(Synthetic)
	_, err := Compare("x", sets[:1], func(s StreamSet) *trace.Stream { return s.Instr }, []string{"nope"}, DefaultOptions)
	if err == nil {
		t.Error("bad codec name accepted")
	}
}

func TestReferenceMuxedStreamTruncation(t *testing.T) {
	s := ReferenceMuxedStream(100)
	if s.Len() != 100 {
		t.Errorf("len = %d", s.Len())
	}
}
