package core

import (
	"encoding/json"
	"io"
)

// JSON export of the experiment tables, for plotting or regression
// tracking outside Go.

// WriteJSON writes the comparison table as indented JSON.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// jsonDoc wraps any table payload with an identifying header.
type jsonDoc struct {
	Experiment string      `json:"experiment"`
	Rows       interface{} `json:"rows"`
}

// WriteTable1JSON writes the analytical table as JSON.
func WriteTable1JSON(w io.Writer, rows []Table1Row) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonDoc{Experiment: "table1", Rows: rows})
}

// WriteTable8JSON writes the on-chip power sweep as JSON.
func WriteTable8JSON(w io.Writer, rows []Table8Row) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonDoc{Experiment: "table8", Rows: rows})
}

// WriteTable9JSON writes the off-chip power sweep as JSON.
func WriteTable9JSON(w io.Writer, rows []Table9Row) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonDoc{Experiment: "table9", Rows: rows})
}

// WriteHWComparisonJSON writes the extended hardware table as JSON.
func WriteHWComparisonJSON(w io.Writer, rows []HWRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonDoc{Experiment: "hwcompare", Rows: rows})
}
