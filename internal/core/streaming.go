package core

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"busenc/internal/bus"
	"busenc/internal/codec"
	"busenc/internal/obs"
	"busenc/internal/trace"
)

// Streaming multi-codec fan-out. EvaluateStreaming reads a trace
// exactly once and prices every codec concurrently: a single producer
// parses chunks, converts them to encoder symbols, and broadcasts each
// pooled, reference-counted block to one bounded channel per codec
// worker. Backpressure is structural — when the slowest worker falls
// Depth chunks behind, the producer blocks, so peak memory is
//
//	O(codecs × Depth × chunkLen)
//
// symbols regardless of trace length. This is the evaluation path for
// traces too large to materialize (the ROADMAP's multi-GB serving
// scenario); for in-memory streams the batched RunFast remains the
// lower-overhead choice.

// DefaultFanoutDepth is the per-codec bounded channel depth: how many
// chunks a fast worker may run ahead of the slowest one.
const DefaultFanoutDepth = 4

// FanoutConfig tunes EvaluateStreaming.
type FanoutConfig struct {
	// Depth is the per-codec channel depth in chunks (DefaultFanoutDepth
	// if <= 0).
	Depth int
	// Verify selects decode round-trip checking per worker; the zero
	// value is codec.VerifyFull, mirroring RunOpts.
	Verify codec.VerifyMode
	// PerLine requests per-line transition counts in every Result.
	PerLine bool
	// Kernel selects the pricing kernel per worker (codec.KernelAuto by
	// default): plane-capable codecs price on the bit-sliced path, the
	// rest on their scalar batch kernels, under the same routing rules
	// as codec.RunOpts.Kernel.
	Kernel codec.Kernel
}

// symBlock is one chunk's worth of encoder symbols, shared read-only by
// all workers and returned to the pool by the last Release.
type symBlock struct {
	syms []codec.Symbol
	refs atomic.Int32
}

var symBlockPool = sync.Pool{New: func() any {
	return &symBlock{syms: make([]codec.Symbol, 0, trace.DefaultChunkLen)}
}}

func (b *symBlock) release() {
	n := b.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("core: symBlock released more times than retained")
	}
	b.syms = b.syms[:0]
	symBlockPool.Put(b)
}

// streamWorker accumulates one codec's result over the broadcast blocks.
type streamWorker struct {
	c          codec.Codec
	enc        codec.BatchEncoder
	b          *bus.Bus
	dec        codec.Decoder
	verifyLeft int
	mask       uint64
	words      []uint64
	idx        int
	in         chan *symBlock
	err        error

	// Plane-path state: when ps is non-nil the worker prices on the
	// bit-sliced plane kernel (b aliases ps's bus so result() needs no
	// special case); vEnc re-encodes the verification sample scalar-ly,
	// and addrs is the worker-local SoA gather buffer.
	ps    *codec.PlaneSet
	vEnc  codec.Encoder
	addrs []uint64
}

func newStreamWorker(c codec.Codec, cfg FanoutConfig, depth int) (*streamWorker, error) {
	w := &streamWorker{
		c:    c,
		mask: bus.Mask(c.PayloadWidth()),
		in:   make(chan *symBlock, depth),
	}
	usePlane, err := codec.PlaneEligible(c, cfg.Kernel, cfg.Verify)
	if err != nil {
		return nil, err
	}
	if usePlane {
		ps, err := codec.NewPlaneSet([]codec.Codec{c}, cfg.PerLine)
		if err != nil {
			return nil, err
		}
		w.ps = ps
		w.b = ps.Bus(0)
		if cfg.Verify == codec.VerifySampled {
			w.vEnc = c.NewEncoder()
			w.dec = c.NewDecoder()
			w.verifyLeft = codec.VerifySampleLen
		}
		return w, nil
	}
	w.enc = codec.AsBatch(c.NewEncoder())
	if cfg.PerLine {
		w.b = bus.New(c.BusWidth())
	} else {
		w.b = bus.NewAggregate(c.BusWidth())
	}
	switch cfg.Verify {
	case codec.VerifyFull:
		w.dec = c.NewDecoder()
		w.verifyLeft = int(^uint(0) >> 1)
	case codec.VerifySampled:
		w.dec = c.NewDecoder()
		w.verifyLeft = codec.VerifySampleLen
	}
	return w, nil
}

// run drains the worker's channel; after a verification failure it
// keeps draining (releasing blocks) so the producer can never deadlock
// on a dead consumer. Channel waits are timed only while the histogram
// is live. parent is the evaluation's root span handle (a value, so the
// copy into each worker goroutine is race-free); consumed blocks record
// as its encode-stage children.
func (w *streamWorker) run(wg *sync.WaitGroup, m *fanoutMetrics, parent obs.SpanHandle) {
	defer wg.Done()
	timed := m.workerWaitNs != nil
	blkIdx := 0
	for {
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		blk, ok := <-w.in
		if timed {
			m.workerWaitNs.Observe(time.Since(t0).Nanoseconds())
		}
		if !ok {
			return
		}
		if w.err == nil {
			sp := parent.Child("core.worker", obs.StageEncode).WithCodec(w.c.Name()).WithChunk(blkIdx)
			w.consume(blk)
			sp.EndErr(w.err)
		} else {
			m.drainEvents.Inc()
		}
		blkIdx++
		blk.release()
	}
}

func (w *streamWorker) consume(blk *symBlock) {
	if w.ps != nil {
		w.consumePlane(blk)
		return
	}
	syms := blk.syms
	n := len(syms)
	if cap(w.words) < n {
		w.words = make([]uint64, n)
	}
	words := w.words[:n]
	w.enc.EncodeBatch(syms, words)
	w.b.Accumulate(words)
	if w.dec != nil && w.verifyLeft > 0 {
		vn := n
		if vn > w.verifyLeft {
			vn = w.verifyLeft
		}
		for i := 0; i < vn; i++ {
			got := w.dec.Decode(words[i], syms[i].Sel)
			if want := syms[i].Addr & w.mask; got != want {
				w.err = fmt.Errorf("codec %s: round-trip mismatch at entry %d: addr %#x decoded as %#x", w.c.Name(), w.idx+i, want, got)
				return
			}
		}
		w.verifyLeft -= vn
		if w.verifyLeft == 0 {
			w.dec = nil
		}
	}
	w.idx += n
}

// consumePlane prices one block on the plane path: the SoA address
// gather happens here, in the worker's goroutine, so the producer's
// broadcast loop stays untouched. Sampled verification re-encodes the
// leading entries scalar-ly, exactly like codec.RunStream's plane path.
func (w *streamWorker) consumePlane(blk *symBlock) {
	syms := blk.syms
	n := len(syms)
	if cap(w.addrs) < n {
		w.addrs = make([]uint64, n)
	}
	addrs := w.addrs[:n]
	for i := range syms {
		addrs[i] = syms[i].Addr
	}
	if w.dec != nil && w.verifyLeft > 0 {
		vn := n
		if vn > w.verifyLeft {
			vn = w.verifyLeft
		}
		for i := 0; i < vn; i++ {
			word := w.vEnc.Encode(syms[i])
			got := w.dec.Decode(word, syms[i].Sel)
			if want := syms[i].Addr & w.mask; got != want {
				w.err = fmt.Errorf("codec %s: round-trip mismatch at entry %d: addr %#x decoded as %#x", w.c.Name(), w.idx+i, want, got)
				return
			}
		}
		w.verifyLeft -= vn
		if w.verifyLeft == 0 {
			w.dec = nil
		}
	}
	w.ps.Consume(addrs)
	w.idx += n
}

func (w *streamWorker) result(stream string) codec.Result {
	return codec.Result{
		Codec:       w.c.Name(),
		Stream:      stream,
		BusWidth:    w.c.BusWidth(),
		Transitions: w.b.Transitions(),
		Cycles:      w.b.Cycles(),
		PerLine:     w.b.PerLine(),
		MaxPerCycle: w.b.MaxPerCycle(),
	}
}

// EvaluateStreaming reads the trace once and evaluates every named
// codec concurrently, returning results in the order of codes. width is
// the payload width for codec construction (0 means core.Width; pass
// r.Width() to honor the trace header). The reader is consumed to
// io.EOF; on any error (reader or codec verification) the already-read
// prefix is discarded and the first error in deterministic order
// (reader first, then codes order) is returned.
func EvaluateStreaming(r trace.ChunkReader, width int, codes []string, opts codec.Options, cfg FanoutConfig) ([]codec.Result, error) {
	if len(codes) == 0 {
		return nil, fmt.Errorf("core: no codecs to evaluate")
	}
	if width <= 0 {
		width = Width
	}
	depth := cfg.Depth
	if depth <= 0 {
		depth = DefaultFanoutDepth
	}
	root := obs.StartSpan("core.evaluate_streaming", obs.StageEval).WithStream(r.Name())
	workers := make([]*streamWorker, len(codes))
	for i, code := range codes {
		c, err := codec.New(code, width, opts)
		if err != nil {
			root.EndErr(err)
			return nil, err
		}
		if workers[i], err = newStreamWorker(c, cfg, depth); err != nil {
			root.EndErr(err)
			return nil, err
		}
	}
	m := fanoutBinding.Get()
	m.depth.Set(int64(depth))
	m.workers.Set(int64(len(workers)))
	timed := m.sendWaitNs != nil
	var wg sync.WaitGroup
	wg.Add(len(workers))
	for _, w := range workers {
		go w.run(&wg, m, root)
	}
	var readErr error
	chunkN := 0
	for {
		ch, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			readErr = err
			break
		}
		bsp := root.Child("core.broadcast", obs.StageRead).WithChunk(chunkN)
		chunkN++
		blk := symBlockPool.Get().(*symBlock)
		if cap(blk.syms) < ch.Len() {
			blk.syms = make([]codec.Symbol, 0, ch.Len())
		}
		syms := blk.syms[:ch.Len()]
		for i, a := range ch.Addrs {
			syms[i] = codec.Symbol{Addr: a, Sel: ch.Kinds[i] == trace.Instr}
		}
		blk.syms = syms
		ch.Release()
		blk.refs.Store(int32(len(workers)))
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		for _, w := range workers {
			w.in <- blk
		}
		if timed {
			m.sendWaitNs.Observe(time.Since(t0).Nanoseconds())
		}
		m.broadcasts.Inc()
		bsp.End()
	}
	for _, w := range workers {
		close(w.in)
	}
	wg.Wait()
	if readErr != nil {
		root.EndErr(readErr)
		return nil, readErr
	}
	for _, w := range workers {
		if w.err != nil {
			root.EndErr(w.err)
			return nil, w.err
		}
	}
	rsp := root.Child("core.reduce", obs.StageReduce)
	stream := r.Name()
	results := make([]codec.Result, len(workers))
	for i, w := range workers {
		results[i] = w.result(stream)
		codec.RecordRun(results[i].Codec, int64(w.idx), results[i].Transitions)
	}
	rsp.End()
	root.End()
	return results, nil
}
