package core

import (
	"sync"
	"testing"

	"busenc/internal/codec"
)

// TestEvaluateParallelParity: the parallel evaluator must reproduce the
// sequential engine's results for every requested codec, in codes
// order, across shard counts.
func TestEvaluateParallelParity(t *testing.T) {
	s := ReferenceMuxedStream(20000)
	codes := []string{"binary", "gray", "t0", "businvert", "t0bi", "dualt0", "dualt0bi"}
	var want []codec.Result
	for _, code := range codes {
		c := codec.MustNew(code, Width, DefaultOptions)
		res, err := codec.RunFast(c, s, codec.RunOpts{Verify: codec.VerifySampled})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}
	for _, shards := range []int{0, 1, 3, 16} {
		got, err := EvaluateParallel(s, Width, codes, DefaultOptions,
			ParallelConfig{Shards: shards, Verify: codec.VerifySampled})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for i := range want {
			if got[i].Codec != want[i].Codec || got[i].Transitions != want[i].Transitions ||
				got[i].Cycles != want[i].Cycles || got[i].MaxPerCycle != want[i].MaxPerCycle {
				t.Errorf("shards=%d %s: got %+v, want %+v", shards, codes[i], got[i], want[i])
			}
		}
	}
}

// TestEvaluateParallelErrors: unknown codecs fail fast, before any
// pricing, and an empty code list is rejected.
func TestEvaluateParallelErrors(t *testing.T) {
	s := ReferenceMuxedStream(1000)
	if _, err := EvaluateParallel(s, Width, nil, DefaultOptions, ParallelConfig{}); err == nil {
		t.Error("empty code list accepted")
	}
	if _, err := EvaluateParallel(s, Width, []string{"binary", "bogus"}, DefaultOptions, ParallelConfig{}); err == nil {
		t.Error("unknown codec accepted")
	}
}

// TestEngineStatsConcurrent hammers EvaluateParallel from several
// goroutines while reading StreamEngineStats — the race detector is the
// real assertion; the counter check pins that concurrent shard workers
// do not lose increments.
func TestEngineStatsConcurrent(t *testing.T) {
	s := ReferenceMuxedStream(4000)
	codes := []string{"binary", "t0", "businvert"}
	before := StreamEngineStats()
	const evals = 4
	var wg sync.WaitGroup
	for i := 0; i < evals; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := EvaluateParallel(s, Width, codes, DefaultOptions,
				ParallelConfig{Shards: 4, Verify: codec.VerifyNone}); err != nil {
				t.Error(err)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = StreamEngineStats()
		}
	}()
	wg.Wait()
	<-done
	after := StreamEngineStats()
	if got := after.ParallelEvals - before.ParallelEvals; got != evals*int64(len(codes)) {
		t.Errorf("ParallelEvals grew by %d, want %d", got, evals*len(codes))
	}
	if got := after.ParallelEntries - before.ParallelEntries; got != evals*int64(len(codes))*4000 {
		t.Errorf("ParallelEntries grew by %d, want %d", got, evals*len(codes)*4000)
	}
}
