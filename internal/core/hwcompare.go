package core

import (
	"fmt"
	"io"
	"text/tabwriter"

	"busenc/internal/hw"
	"busenc/internal/netlist"
	"busenc/internal/power"
	"busenc/internal/trace"
)

// HWRow is one codec's line in the extended hardware comparison: gate-
// level cost and measured behaviour on a reference stream (EXTENSION —
// the paper implements three codecs; this covers the whole family).
type HWRow struct {
	Name      string
	BusLines  int
	EncCells  int
	DecCells  int
	EncArea   float64
	DecArea   float64
	EncPowerW float64 // at the given on-chip load
	DecPowerW float64 // at the decoder internal load
	// EncDelayS is the encoder's critical path under the delay model.
	EncDelayS float64
	// BusSavingsPct is the transition savings of the encoded bus vs the
	// binary bus on the reference stream.
	BusSavingsPct float64
}

// HWComparison builds, verifies activity for, and measures every hardware
// codec on the stream at the given encoder output load.
func HWComparison(s *trace.Stream, strideLog int, loadF float64) ([]HWRow, error) {
	codecs := []hw.Codec{
		hw.Binary(Width),
		hw.Gray(Width, strideLog),
		hw.BusInvert(Width),
		hw.T0(Width, strideLog),
		hw.T0BI(Width, strideLog),
		hw.DualT0(Width, strideLog),
		hw.DualT0BI(Width, strideLog),
		hw.IncXor(Width, strideLog),
	}
	lib := netlist.DefaultLibrary()
	m := power.Default()
	var binTotal float64
	rows := make([]HWRow, 0, len(codecs))
	for _, c := range codecs {
		meas, err := MeasureHW(c, s)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", c.Name, err)
		}
		total := 0.0
		for _, a := range meas.LineAlphas {
			total += a
		}
		if c.Name == "binary" {
			binTotal = total
		}
		encDelay, _, err := lib.CriticalPath(c.Enc)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", c.Name, err)
		}
		row := HWRow{
			Name:      c.Name,
			BusLines:  c.BusWidth(),
			EncCells:  c.Enc.NumCells(),
			DecCells:  c.Dec.NumCells(),
			EncArea:   lib.Area(c.Enc),
			DecArea:   lib.Area(c.Dec),
			EncPowerW: lib.Power(c.Enc, meas.EncAct, m.FreqHz, loadF),
			DecPowerW: lib.Power(c.Dec, meas.DecAct, m.FreqHz, DecoderInternalLoadF),
			EncDelayS: encDelay,
		}
		if binTotal > 0 {
			row.BusSavingsPct = (1 - total/binTotal) * 100
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderHWComparison writes the extended comparison as aligned text.
func RenderHWComparison(w io.Writer, rows []HWRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Extended hardware comparison (all codecs)")
	fmt.Fprintln(tw, "code\tbus lines\tenc cells\tenc area\tenc ns\tenc mW\tdec cells\tdec area\tdec mW\tbus savings")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%.2f\t%.4f\t%d\t%.1f\t%.4f\t%.2f%%\n",
			r.Name, r.BusLines, r.EncCells, r.EncArea, r.EncDelayS*1e9, r.EncPowerW*1e3,
			r.DecCells, r.DecArea, r.DecPowerW*1e3, r.BusSavingsPct)
	}
	return tw.Flush()
}
