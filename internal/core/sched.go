package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Bounded work scheduler. Table generation fans out over the flattened
// codec×stream matrix; running each cell on its own goroutine (the seed
// behavior) oversubscribes the machine as tables get wider and stream
// suites get longer. forEachN instead runs a fixed GOMAXPROCS-sized pool
// of workers that pull indices from a shared counter: results are written
// to caller-owned index slots, so the output is deterministic regardless
// of scheduling order.

// forEachN calls fn(0..n-1), each index exactly once, from at most
// GOMAXPROCS worker goroutines. It returns the error of the
// lowest-indexed failing call (all calls run regardless), which keeps the
// reported error deterministic.
func forEachN(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
