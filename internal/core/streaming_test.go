package core

import (
	"bytes"
	"errors"
	"testing"

	"busenc/internal/codec"
	"busenc/internal/trace"
)

var streamingCodes = []string{"binary", "gray", "t0", "businvert", "t0bi", "dualt0", "dualt0bi"}

// TestEvaluateStreamingParity: one pass over a serialized trace must
// price every codec exactly as the materialized fast path does.
func TestEvaluateStreamingParity(t *testing.T) {
	sets, err := Streams(Synthetic)
	if err != nil {
		t.Fatal(err)
	}
	s := sets[0].Muxed
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	r, err := trace.OpenBinary(bytes.NewReader(buf.Bytes()), "", trace.NewChunkPool(1024))
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateStreaming(r, Width, streamingCodes, DefaultOptions, FanoutConfig{Verify: codec.VerifySampled})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(streamingCodes) {
		t.Fatalf("got %d results for %d codes", len(got), len(streamingCodes))
	}
	for i, code := range streamingCodes {
		want, err := codec.RunFast(codec.MustNew(code, Width, DefaultOptions), s, codec.RunOpts{Verify: codec.VerifyNone})
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Codec != code {
			t.Errorf("result %d is %q, want %q (order must follow codes)", i, got[i].Codec, code)
		}
		if got[i].Transitions != want.Transitions || got[i].Cycles != want.Cycles || got[i].MaxPerCycle != want.MaxPerCycle {
			t.Errorf("%s: streaming %d/%d/%d != materialized %d/%d/%d", code,
				got[i].Transitions, got[i].Cycles, got[i].MaxPerCycle,
				want.Transitions, want.Cycles, want.MaxPerCycle)
		}
		if got[i].Stream != s.Name {
			t.Errorf("%s: stream name %q, want %q", code, got[i].Stream, s.Name)
		}
	}
}

func TestEvaluateStreamingPerLine(t *testing.T) {
	sets, err := Streams(Synthetic)
	if err != nil {
		t.Fatal(err)
	}
	s := sets[1].Instr
	got, err := EvaluateStreaming(s.Chunks(333), Width, []string{"t0"}, DefaultOptions, FanoutConfig{PerLine: true, Verify: codec.VerifyNone})
	if err != nil {
		t.Fatal(err)
	}
	want := codec.MustRunFast(codec.MustNew("t0", Width, DefaultOptions), s, codec.RunOpts{PerLine: true, Verify: codec.VerifyNone})
	if len(got[0].PerLine) != len(want.PerLine) {
		t.Fatalf("per-line width %d != %d", len(got[0].PerLine), len(want.PerLine))
	}
	for i := range want.PerLine {
		if got[0].PerLine[i] != want.PerLine[i] {
			t.Fatalf("line %d: %d != %d", i, got[0].PerLine[i], want.PerLine[i])
		}
	}
}

func TestEvaluateStreamingUnknownCodec(t *testing.T) {
	s := trace.New("x", 32)
	s.Append(0, trace.Instr)
	if _, err := EvaluateStreaming(s.Chunks(0), Width, []string{"nope"}, DefaultOptions, FanoutConfig{}); err == nil {
		t.Error("unknown codec accepted")
	}
	if _, err := EvaluateStreaming(s.Chunks(0), Width, nil, DefaultOptions, FanoutConfig{}); err == nil {
		t.Error("empty codec list accepted")
	}
}

// erroringReader fails after a few chunks.
type erroringReader struct {
	inner trace.ChunkReader
	left  int
	err   error
}

func (e *erroringReader) Next() (*trace.Chunk, error) {
	if e.left <= 0 {
		return nil, e.err
	}
	e.left--
	return e.inner.Next()
}
func (e *erroringReader) Name() string { return e.inner.Name() }
func (e *erroringReader) Width() int   { return e.inner.Width() }

func TestEvaluateStreamingReaderError(t *testing.T) {
	sets, err := Streams(Synthetic)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("backend gone")
	r := &erroringReader{inner: sets[0].Muxed.Chunks(128), left: 5, err: sentinel}
	_, err = EvaluateStreaming(r, Width, streamingCodes, DefaultOptions, FanoutConfig{Verify: codec.VerifyNone, Depth: 2})
	if !errors.Is(err, sentinel) {
		t.Errorf("reader error not propagated: %v", err)
	}
}

// brokenStreamCodec always decodes zero, so verification must fail; the
// other workers keep draining and the producer must not deadlock even
// with a tiny channel depth.
type brokenStreamCodec struct{ codec.Codec }

type zeroDecoder struct{}

func (zeroDecoder) Decode(uint64, bool) uint64 { return 0xdead }
func (zeroDecoder) Reset()                     {}

func (b brokenStreamCodec) Name() string              { return "xbroken" }
func (b brokenStreamCodec) NewDecoder() codec.Decoder { return zeroDecoder{} }

func init() {
	codec.Register("xbroken", func(width int, opts codec.Options) (codec.Codec, error) {
		inner, err := codec.New("binary", width, opts)
		if err != nil {
			return nil, err
		}
		return brokenStreamCodec{inner}, nil
	})
}

func TestEvaluateStreamingVerificationFailure(t *testing.T) {
	sets, err := Streams(Synthetic)
	if err != nil {
		t.Fatal(err)
	}
	s := sets[0].Muxed
	_, err = EvaluateStreaming(s.Chunks(64), Width,
		[]string{"binary", "xbroken", "t0"}, DefaultOptions,
		FanoutConfig{Verify: codec.VerifySampled, Depth: 1})
	if err == nil {
		t.Fatal("broken decoder not detected")
	}
	if got := err.Error(); !contains(got, "xbroken") {
		t.Errorf("error %q does not name the failing codec", got)
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }
