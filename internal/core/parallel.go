package core

import (
	"fmt"

	"busenc/internal/codec"
	"busenc/internal/obs"
	"busenc/internal/trace"
)

// Shard-parallel evaluation of a materialized stream. EvaluateParallel
// is the third evaluation path next to the batched sequential engine
// (RunFast via Compare) and the bounded streaming fan-out
// (EvaluateStreaming): every named codec prices the stream through
// codec.RunParallel, and the codec-level calls themselves fan out on
// the bounded scheduler, so a sweep codec's sequential seeding pass
// overlaps with other codecs' shard work. Results are returned in codes
// order and errors are deterministic (lowest codec index wins),
// regardless of scheduling.

// ParallelConfig tunes EvaluateParallel.
type ParallelConfig struct {
	// Shards is the per-codec shard count handed to codec.RunParallel;
	// <= 0 means GOMAXPROCS.
	Shards int
	// Verify selects decode round-trip checking (see
	// codec.ParallelOpts.Verify for mid-stream coverage).
	Verify codec.VerifyMode
	// PerLine requests per-line transition counts in every Result.
	PerLine bool
	// Kernel selects the pricing kernel per shard (codec.KernelAuto by
	// default; see codec.RunOpts.Kernel for the routing rules).
	Kernel codec.Kernel
}

// EvaluateParallel prices every named codec over a materialized stream
// with shard-parallel pricing. width is the payload width for codec
// construction (0 means core.Width). All codec constructions are
// validated before any pricing starts, so an unknown code fails fast.
func EvaluateParallel(s *trace.Stream, width int, codes []string, opts codec.Options, cfg ParallelConfig) ([]codec.Result, error) {
	if len(codes) == 0 {
		return nil, fmt.Errorf("core: no codecs to evaluate")
	}
	if width <= 0 {
		width = Width
	}
	cs := make([]codec.Codec, len(codes))
	for i, code := range codes {
		c, err := codec.New(code, width, opts)
		if err != nil {
			return nil, err
		}
		cs[i] = c
	}
	root := obs.StartSpan("core.evaluate_parallel", obs.StageEval).WithStream(s.Name)
	m := parallelBinding.Get()
	m.shards.Set(int64(cfg.Shards))
	m.codecs.Set(int64(len(cs)))
	popts := codec.ParallelOpts{Shards: cfg.Shards, Verify: cfg.Verify, PerLine: cfg.PerLine, Kernel: cfg.Kernel}
	results := make([]codec.Result, len(cs))
	err := forEachN(len(cs), func(i int) error {
		res, err := codec.RunParallel(cs[i], s, popts)
		if err != nil {
			return err
		}
		results[i] = res
		parallelEvals.Add(1)
		parallelEntries.Add(res.Cycles)
		return nil
	})
	root.EndErr(err)
	if err != nil {
		return nil, err
	}
	return results, nil
}
