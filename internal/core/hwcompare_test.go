package core

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestHWComparisonCoversFamily(t *testing.T) {
	s := ReferenceMuxedStream(1500)
	rows, err := HWComparison(s, 2, 0.1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]HWRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Binary is the zero reference for bus savings and the cheapest codec.
	if byName["binary"].BusSavingsPct != 0 {
		t.Errorf("binary bus savings = %v", byName["binary"].BusSavingsPct)
	}
	for name, r := range byName {
		if name == "binary" {
			continue
		}
		if r.EncArea <= byName["binary"].EncArea && name != "gray" && name != "incxor" {
			t.Errorf("%s encoder area %.1f should exceed binary's %.1f", name, r.EncArea, byName["binary"].EncArea)
		}
	}
	// On the muxed reference stream the dual codes must reduce bus
	// activity the most among the family.
	if byName["dualt0bi"].BusSavingsPct < byName["t0"].BusSavingsPct {
		t.Error("dual T0_BI must beat T0 on the muxed reference stream")
	}
	// The gray codec is combinational: strictly cheaper than the T0
	// encoder (which carries registers).
	if byName["gray"].EncPowerW >= byName["t0"].EncPowerW {
		t.Errorf("gray encoder (%.3g) should be cheaper than t0's (%.3g)", byName["gray"].EncPowerW, byName["t0"].EncPowerW)
	}
	// Every codec's power must be positive.
	for name, r := range byName {
		if r.EncPowerW <= 0 || r.DecPowerW <= 0 {
			t.Errorf("%s: non-positive power", name)
		}
	}
}

func TestRenderHWComparison(t *testing.T) {
	s := ReferenceMuxedStream(500)
	rows, err := HWComparison(s, 2, 0.1e-12)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderHWComparison(&sb, rows); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dualt0bi", "incxor", "bus savings"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestJSONWriters(t *testing.T) {
	tab, err := Table2(Synthetic)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tab.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded Table
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("table JSON does not round-trip: %v", err)
	}
	if decoded.Title != tab.Title || len(decoded.Rows) != len(tab.Rows) {
		t.Error("table JSON lost content")
	}

	s := ReferenceMuxedStream(400)
	rows8, err := Table8(s, OnChipLoads[:1])
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := WriteTable8JSON(&sb, rows8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"experiment": "table8"`) {
		t.Error("table8 JSON header missing")
	}
	rows9, err := Table9(s, OffChipLoads[:1])
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := WriteTable9JSON(&sb, rows9); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"experiment": "table9"`) {
		t.Error("table9 JSON header missing")
	}
	rows1, err := Table1(8, 500)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := WriteTable1JSON(&sb, rows1); err != nil {
		t.Fatal(err)
	}
	hw, err := HWComparison(s, 2, 0.1e-12)
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := WriteHWComparisonJSON(&sb, hw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dualt0bi") {
		t.Error("hw comparison JSON incomplete")
	}
}
