package core

import (
	"strings"
	"testing"
)

// The hardware-power tables simulate three gate-level codecs over a
// reference stream; keep the stream short enough for unit tests.
const hwTestStreamLen = 2000

func TestTable8Shape(t *testing.T) {
	s := ReferenceMuxedStream(hwTestStreamLen)
	rows, err := Table8(s, OnChipLoads)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(OnChipLoads) {
		t.Fatalf("%d rows", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	// At every load: binary codec cheapest, dual T0_BI encoder most
	// expensive (paper Table 8 structure).
	for _, r := range rows {
		if !(r.BinaryEnc < r.T0Enc && r.T0Enc < r.DbiEnc) {
			t.Errorf("load %.1fpF: encoder ordering violated: bin %.3g, t0 %.3g, dbi %.3g",
				r.LoadF*1e12, r.BinaryEnc, r.T0Enc, r.DbiEnc)
		}
		if r.T0Dec <= 0 || r.DbiDec <= 0 {
			t.Error("decoder power must be positive")
		}
	}
	// Decoders are load-independent in this table (fixed internal load).
	if first.T0Dec != last.T0Dec {
		t.Error("T0 decoder power should not depend on the bus load")
	}
	// The paper: T0 and dual T0_BI decoders are comparable.
	if ratio := first.DbiDec / first.T0Dec; ratio > 2 || ratio < 0.5 {
		t.Errorf("decoder powers diverge: ratio %.2f", ratio)
	}
	// Encoder power grows with load; the relative gap between dual T0_BI
	// and T0 narrows as the load term dominates ("for higher values the
	// difference is reduced").
	if !(last.T0Enc > first.T0Enc) {
		t.Error("T0 encoder power must grow with load")
	}
	gapSmall := rows[0].DbiEnc / rows[0].T0Enc
	gapBig := last.DbiEnc / last.T0Enc
	if gapBig >= gapSmall {
		t.Errorf("dual/T0 encoder power ratio should shrink with load: %.2f -> %.2f", gapSmall, gapBig)
	}
}

func TestTable9ShapeAndCrossover(t *testing.T) {
	s := ReferenceMuxedStream(hwTestStreamLen)
	rows, err := Table9(s, OffChipLoads)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Encoding reduces pad power relative to binary at every load.
		if !(r.T0Pads < r.BinaryPads) {
			t.Errorf("load %.0fpF: T0 pads %.3g not below binary pads %.3g", r.LoadF*1e12, r.T0Pads, r.BinaryPads)
		}
		if !(r.DbiPads < r.BinaryPads) {
			t.Errorf("load %.0fpF: dual T0_BI pads %.3g not below binary pads %.3g", r.LoadF*1e12, r.DbiPads, r.BinaryPads)
		}
		// Dual T0_BI reduces bus activity more than T0 on muxed streams.
		if !(r.DbiPads < r.T0Pads) {
			t.Errorf("load %.0fpF: dual T0_BI pads %.3g not below T0 pads %.3g", r.LoadF*1e12, r.DbiPads, r.T0Pads)
		}
	}
	// The paper's recommendation structure: at moderate loads T0's global
	// power is competitive (cheap logic); at large loads dual T0_BI wins
	// because pad power dominates. The crossover must exist within the
	// sweep and the largest load must favor dual T0_BI.
	last := rows[len(rows)-1]
	if !(last.DbiGlobal < last.T0Global && last.T0Global < last.BinaryGlobal) {
		t.Errorf("at %.0fpF want dbi < t0 < binary global power, got %.3g %.3g %.3g",
			last.LoadF*1e12, last.DbiGlobal, last.T0Global, last.BinaryGlobal)
	}
	if _, found := Crossover(rows); !found {
		t.Error("no dual-T0_BI-vs-T0 crossover found in the off-chip sweep")
	}
	// Encoded codecs must beat raw binary globally once loads are large.
	if !(last.T0Global < last.BinaryGlobal) {
		t.Error("T0 must beat binary at large off-chip loads")
	}
}

func TestHWTablesRender(t *testing.T) {
	s := ReferenceMuxedStream(500)
	rows8, err := Table8(s, OnChipLoads[:2])
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderTable8(&sb, rows8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "On-Chip") {
		t.Error("table 8 render incomplete")
	}
	rows9, err := Table9(s, OffChipLoads[:2])
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := RenderTable9(&sb, rows9); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Off-Chip") {
		t.Error("table 9 render incomplete")
	}
}

func TestMeasureHWLineActivities(t *testing.T) {
	s := ReferenceMuxedStream(1000)
	set, err := measureAll(s)
	if err != nil {
		t.Fatal(err)
	}
	// Binary drives 32 lines, the others 33.
	if len(set.bin.LineAlphas) != 32 || len(set.t0.LineAlphas) != 33 || len(set.dbi.LineAlphas) != 33 {
		t.Fatalf("line counts: %d %d %d", len(set.bin.LineAlphas), len(set.t0.LineAlphas), len(set.dbi.LineAlphas))
	}
	sum := func(a []float64) float64 {
		t := 0.0
		for _, v := range a {
			t += v
		}
		return t
	}
	// Total line activity: encoded buses quieter than binary.
	if !(sum(set.dbi.LineAlphas) < sum(set.bin.LineAlphas)) {
		t.Error("dual T0_BI bus must toggle less than binary")
	}
}
