package core

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestStreamsMemoized: repeated Streams calls must return the same
// underlying stream objects — the suite is generated once per process.
func TestStreamsMemoized(t *testing.T) {
	a, err := Streams(Synthetic)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Streams(Synthetic)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Instr != b[i].Instr || a[i].Data != b[i].Data || a[i].Muxed != b[i].Muxed {
			t.Fatalf("set %d: streams regenerated instead of shared", i)
		}
	}
	// The returned slice header must be a copy: reordering it must not
	// corrupt the cache.
	a[0], a[1] = a[1], a[0]
	c, _ := Streams(Synthetic)
	if c[0].Name != b[0].Name {
		t.Error("caller mutation leaked into the cache")
	}
}

// TestMIPSSimulatedExactlyOnce is the memoization layer's observability
// contract: no matter how many tables are regenerated from the MIPS
// source, each benchmark program is assembled and simulated exactly once
// per process. The engine counter makes this measurable.
func TestMIPSSimulatedExactlyOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("mips simulation in -short mode")
	}
	sets, err := Streams(MIPS)
	if err != nil {
		t.Fatal(err)
	}
	after := StreamEngineStats()
	if want := int64(len(sets)); after.MIPSRuns != want {
		t.Errorf("MIPSRuns = %d after warm-up, want exactly %d (one per program)", after.MIPSRuns, want)
	}
	if after.MIPSCycles <= 0 {
		t.Error("MIPSCycles not recorded")
	}
	// Six tables' worth of repeat calls must not re-simulate anything.
	for i := 0; i < 6; i++ {
		if _, err := Streams(MIPS); err != nil {
			t.Fatal(err)
		}
	}
	if again := StreamEngineStats(); again.MIPSRuns != after.MIPSRuns {
		t.Errorf("repeat Streams(MIPS) re-simulated: runs %d -> %d", after.MIPSRuns, again.MIPSRuns)
	}
}

// TestCompareDeterministic: the pooled scheduler must not make table
// content order- or timing-dependent.
func TestCompareDeterministic(t *testing.T) {
	a := table(t, Table7, Synthetic)
	b := table(t, Table7, Synthetic)
	if !reflect.DeepEqual(a, b) {
		t.Error("Table7 differs between runs")
	}
}

// TestGenerateStreamsBypassesCache: the uncached generation path must
// produce fresh, equal-content streams (used by cmd/paper -benchjson to
// time the cold path).
func TestGenerateStreamsBypassesCache(t *testing.T) {
	cached, err := Streams(Synthetic)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := GenerateStreams(Synthetic)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != len(cached) {
		t.Fatalf("%d sets, want %d", len(fresh), len(cached))
	}
	for i := range fresh {
		if fresh[i].Muxed == cached[i].Muxed {
			t.Fatalf("set %d: GenerateStreams returned a cached stream", i)
		}
		if !reflect.DeepEqual(fresh[i].Muxed.Entries, cached[i].Muxed.Entries) {
			t.Fatalf("set %d: regeneration is not deterministic", i)
		}
	}
}

// TestForEachN exercises the bounded scheduler: full coverage, exactly
// one call per index, and deterministic (lowest-index) error reporting.
func TestForEachN(t *testing.T) {
	const n = 100
	var calls [n]atomic.Int32
	if err := forEachN(n, func(i int) error {
		calls[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if c := calls[i].Load(); c != 1 {
			t.Fatalf("index %d called %d times", i, c)
		}
	}
	if err := forEachN(0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("boom-3")
	err := forEachN(10, func(i int) error {
		if i == 3 || i == 7 {
			return fmt.Errorf("boom-%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != wantErr.Error() {
		t.Errorf("err = %v, want %v (lowest failing index)", err, wantErr)
	}
}
