// Package core is the top-level experiment API: it ties the stream sources
// (MIPS simulator, calibrated synthetic workloads), the codecs, and the
// power models together, and regenerates every table of the paper's
// evaluation (Tables 1-9). cmd/paper and the repository benchmarks are
// thin wrappers around this package.
package core

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"text/tabwriter"

	"busenc/internal/codec"
	"busenc/internal/trace"
	"busenc/internal/workload"
)

// Width is the address bus width of all paper experiments.
const Width = workload.Width

// Stride is the in-sequence increment of the 32-bit byte-addressed MIPS.
const Stride = workload.Stride

// StreamSet is one benchmark's three address streams, as in Tables 2-7.
type StreamSet struct {
	Name  string
	Instr *trace.Stream
	Data  *trace.Stream
	Muxed *trace.Stream
}

// Source selects where benchmark streams come from.
type Source string

const (
	// Synthetic uses the calibrated Markov workload models whose
	// statistics match the values reported in the paper.
	Synthetic Source = "synthetic"
	// MIPS runs the bundled benchmark programs on the MIPS simulator.
	MIPS Source = "mips"
)

// Column is one codec's result within a table row.
type Column struct {
	Code        string
	Transitions int64
	// SavingsPct is the percentage of transitions saved vs. binary.
	SavingsPct float64
}

// Row is one benchmark line of a comparison table.
type Row struct {
	Bench    string
	Length   int
	InSeqPct float64
	Binary   int64
	Cols     []Column
}

// Table is a full codec-comparison table in the layout of Tables 2-7.
type Table struct {
	Title string
	Codes []string
	Rows  []Row
	// AvgInSeqPct and AvgSavingsPct summarize the table like the paper's
	// "Average" line.
	AvgInSeqPct   float64
	AvgSavingsPct []float64
}

// baselineEntry caches the expensive per-stream quantities every table
// column shares: the stream statistics and the binary reference run.
// Keyed by stream identity; stream suites are memoized (see streams.go),
// so the same nine streams recur across all six tables and the cache
// stays small and hot.
type baselineEntry struct {
	stats trace.Stats
	bin   codec.Result
}

var baselineCache sync.Map // *trace.Stream -> baselineEntry

func baseline(s *trace.Stream) (baselineEntry, error) {
	if v, ok := baselineCache.Load(s); ok {
		return v.(baselineEntry), nil
	}
	bin, err := codec.RunFast(codec.MustNew("binary", Width, codec.Options{}), s, codec.RunOpts{Verify: codec.VerifySampled})
	if err != nil {
		return baselineEntry{}, err
	}
	e := baselineEntry{stats: s.Analyze(uint64(Stride)), bin: bin}
	baselineCache.Store(s, e)
	return e, nil
}

// Compare runs binary plus the named codecs over each stream and builds
// the comparison table. The stream picker selects which of the three
// streams of a set the table is about.
//
// The work is scheduled as a flattened codec×stream matrix on the bounded
// worker pool (see sched.go): each cell runs one codec over one stream on
// the batched fast path, results land in indexed slots, and the table is
// assembled serially afterwards — so output is deterministic and wide
// tables cannot oversubscribe the machine.
func Compare(title string, sets []StreamSet, pick func(StreamSet) *trace.Stream, codes []string, opts codec.Options) (*Table, error) {
	t := &Table{Title: title, Codes: codes}
	t.AvgSavingsPct = make([]float64, len(codes))
	// Validate codec names up front so concurrent cells can use MustNew.
	for _, code := range codes {
		if _, err := codec.New(code, Width, opts); err != nil {
			return nil, err
		}
	}
	nC := len(codes)
	bases := make([]baselineEntry, len(sets))
	cells := make([]codec.Result, len(sets)*nC)
	// Cell k = (set i, column j): column 0 is the stats+binary baseline,
	// columns 1.. are the codes under comparison.
	err := forEachN(len(sets)*(nC+1), func(k int) error {
		i, j := k/(nC+1), k%(nC+1)
		s := pick(sets[i])
		if j == 0 {
			b, err := baseline(s)
			bases[i] = b
			return err
		}
		res, err := codec.RunFast(codec.MustNew(codes[j-1], Width, opts), s, codec.RunOpts{Verify: codec.VerifySampled})
		cells[i*nC+j-1] = res
		return err
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Row, len(sets))
	for i, set := range sets {
		row := Row{
			Bench:    set.Name,
			Length:   pick(set).Len(),
			InSeqPct: bases[i].stats.InSeqFrac * 100,
			Binary:   bases[i].bin.Transitions,
		}
		for j, code := range codes {
			res := cells[i*nC+j]
			row.Cols = append(row.Cols, Column{
				Code:        code,
				Transitions: res.Transitions,
				SavingsPct:  res.SavingsVs(bases[i].bin) * 100,
			})
		}
		rows[i] = row
	}
	t.Rows = rows
	for _, row := range rows {
		t.AvgInSeqPct += row.InSeqPct
		for ci, col := range row.Cols {
			t.AvgSavingsPct[ci] += col.SavingsPct
		}
	}
	if n := float64(len(t.Rows)); n > 0 {
		t.AvgInSeqPct /= n
		for i := range t.AvgSavingsPct {
			t.AvgSavingsPct[i] /= n
		}
	}
	return t, nil
}

// Render writes the table as aligned text in the paper's column layout.
func (t *Table) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\n", t.Title)
	fmt.Fprint(tw, "Benchmark\tLength\tIn-Seq%\tBinary Trans.")
	for _, c := range t.Codes {
		fmt.Fprintf(tw, "\t%s Trans.\tSavings", c)
	}
	fmt.Fprintln(tw)
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.2f%%\t%d", r.Bench, r.Length, r.InSeqPct, r.Binary)
		for _, c := range r.Cols {
			fmt.Fprintf(tw, "\t%d\t%.2f%%", c.Transitions, c.SavingsPct)
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintf(tw, "Average\t\t%.2f%%\t", t.AvgInSeqPct)
	for _, s := range t.AvgSavingsPct {
		fmt.Fprintf(tw, "\t\t%.2f%%", s)
	}
	fmt.Fprintln(tw)
	return tw.Flush()
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return err.Error()
	}
	return sb.String()
}

// AvgSavingsFor returns the table-average savings of one code.
func (t *Table) AvgSavingsFor(code string) (float64, error) {
	for i, c := range t.Codes {
		if c == code {
			return t.AvgSavingsPct[i], nil
		}
	}
	return 0, fmt.Errorf("core: code %q not in table", code)
}
