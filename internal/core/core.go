// Package core is the top-level experiment API: it ties the stream sources
// (MIPS simulator, calibrated synthetic workloads), the codecs, and the
// power models together, and regenerates every table of the paper's
// evaluation (Tables 1-9). cmd/paper and the repository benchmarks are
// thin wrappers around this package.
package core

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"text/tabwriter"

	"busenc/internal/codec"
	"busenc/internal/mips"
	"busenc/internal/mips/progs"
	"busenc/internal/trace"
	"busenc/internal/workload"
)

// Width is the address bus width of all paper experiments.
const Width = workload.Width

// Stride is the in-sequence increment of the 32-bit byte-addressed MIPS.
const Stride = workload.Stride

// StreamSet is one benchmark's three address streams, as in Tables 2-7.
type StreamSet struct {
	Name  string
	Instr *trace.Stream
	Data  *trace.Stream
	Muxed *trace.Stream
}

// Source selects where benchmark streams come from.
type Source string

const (
	// Synthetic uses the calibrated Markov workload models whose
	// statistics match the values reported in the paper.
	Synthetic Source = "synthetic"
	// MIPS runs the bundled benchmark programs on the MIPS simulator.
	MIPS Source = "mips"
)

// Streams returns the nine-benchmark stream sets from the chosen source.
func Streams(src Source) ([]StreamSet, error) {
	switch src {
	case Synthetic:
		suite := workload.Suite()
		out := make([]StreamSet, len(suite))
		var wg sync.WaitGroup
		for i, b := range suite {
			wg.Add(1)
			go func(i int, b workload.Benchmark) {
				defer wg.Done()
				out[i] = StreamSet{Name: b.Name, Instr: b.Instr(), Data: b.Data(), Muxed: b.Muxed()}
			}(i, b)
		}
		wg.Wait()
		return out, nil
	case MIPS:
		names := progs.PaperOrder()
		out := make([]StreamSet, len(names))
		errs := make([]error, len(names))
		var wg sync.WaitGroup
		for i, name := range names {
			wg.Add(1)
			go func(i int, name string) {
				defer wg.Done()
				b, err := progs.Get(name)
				if err != nil {
					errs[i] = err
					return
				}
				p, err := b.Assemble()
				if err != nil {
					errs[i] = err
					return
				}
				muxed, _, err := mips.Run(p, name, b.MaxCycles)
				if err != nil {
					errs[i] = err
					return
				}
				out[i] = StreamSet{
					Name:  name,
					Instr: muxed.InstrOnly(),
					Data:  muxed.DataOnly(),
					Muxed: muxed,
				}
			}(i, name)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("core: unknown stream source %q", src)
	}
}

// Column is one codec's result within a table row.
type Column struct {
	Code        string
	Transitions int64
	// SavingsPct is the percentage of transitions saved vs. binary.
	SavingsPct float64
}

// Row is one benchmark line of a comparison table.
type Row struct {
	Bench    string
	Length   int
	InSeqPct float64
	Binary   int64
	Cols     []Column
}

// Table is a full codec-comparison table in the layout of Tables 2-7.
type Table struct {
	Title string
	Codes []string
	Rows  []Row
	// AvgInSeqPct and AvgSavingsPct summarize the table like the paper's
	// "Average" line.
	AvgInSeqPct   float64
	AvgSavingsPct []float64
}

// Compare runs binary plus the named codecs over each stream and builds
// the comparison table. The stream picker selects which of the three
// streams of a set the table is about.
func Compare(title string, sets []StreamSet, pick func(StreamSet) *trace.Stream, codes []string, opts codec.Options) (*Table, error) {
	t := &Table{Title: title, Codes: codes}
	t.AvgSavingsPct = make([]float64, len(codes))
	// Validate codec names up front so concurrent rows can use MustNew.
	for _, code := range codes {
		if _, err := codec.New(code, Width, opts); err != nil {
			return nil, err
		}
	}
	rows := make([]Row, len(sets))
	errs := make([]error, len(sets))
	var wg sync.WaitGroup
	for i, set := range sets {
		wg.Add(1)
		go func(i int, set StreamSet) {
			defer wg.Done()
			s := pick(set)
			stats := s.Analyze(uint64(Stride))
			binRes, err := codec.Run(codec.MustNew("binary", Width, codec.Options{}), s)
			if err != nil {
				errs[i] = err
				return
			}
			row := Row{
				Bench:    set.Name,
				Length:   s.Len(),
				InSeqPct: stats.InSeqFrac * 100,
				Binary:   binRes.Transitions,
			}
			for _, code := range codes {
				res, err := codec.Run(codec.MustNew(code, Width, opts), s)
				if err != nil {
					errs[i] = err
					return
				}
				row.Cols = append(row.Cols, Column{
					Code:        code,
					Transitions: res.Transitions,
					SavingsPct:  res.SavingsVs(binRes) * 100,
				})
			}
			rows[i] = row
		}(i, set)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	t.Rows = rows
	for _, row := range rows {
		t.AvgInSeqPct += row.InSeqPct
		for ci, col := range row.Cols {
			t.AvgSavingsPct[ci] += col.SavingsPct
		}
	}
	if n := float64(len(t.Rows)); n > 0 {
		t.AvgInSeqPct /= n
		for i := range t.AvgSavingsPct {
			t.AvgSavingsPct[i] /= n
		}
	}
	return t, nil
}

// Render writes the table as aligned text in the paper's column layout.
func (t *Table) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\n", t.Title)
	fmt.Fprint(tw, "Benchmark\tLength\tIn-Seq%\tBinary Trans.")
	for _, c := range t.Codes {
		fmt.Fprintf(tw, "\t%s Trans.\tSavings", c)
	}
	fmt.Fprintln(tw)
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.2f%%\t%d", r.Bench, r.Length, r.InSeqPct, r.Binary)
		for _, c := range r.Cols {
			fmt.Fprintf(tw, "\t%d\t%.2f%%", c.Transitions, c.SavingsPct)
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprintf(tw, "Average\t\t%.2f%%\t", t.AvgInSeqPct)
	for _, s := range t.AvgSavingsPct {
		fmt.Fprintf(tw, "\t\t%.2f%%", s)
	}
	fmt.Fprintln(tw)
	return tw.Flush()
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return err.Error()
	}
	return sb.String()
}

// AvgSavingsFor returns the table-average savings of one code.
func (t *Table) AvgSavingsFor(code string) (float64, error) {
	for i, c := range t.Codes {
		if c == code {
			return t.AvgSavingsPct[i], nil
		}
	}
	return 0, fmt.Errorf("core: code %q not in table", code)
}
