package core

import "busenc/internal/obs"

// Observability hooks for the streaming fan-out (see internal/obs). The
// handles live in the gated default registry; EvaluateStreaming fetches
// the bundle once per evaluation and the workers time their channel
// waits only when the histograms are live, so the disabled path adds
// one branch per chunk.
//
// Instrumented sites (all in streaming.go):
//
//   - producer: per-broadcast stall time (blocked handing a block to
//     the slowest worker's bounded channel), blocks broadcast;
//   - workers: per-receive wait time (blocked on an empty channel) and
//     drain events (blocks discarded after the worker failed
//     verification, while keeping the channel flowing);
//   - gauges: configured fan-out depth and worker count of the most
//     recent evaluation.
type fanoutMetrics struct {
	sendWaitNs   *obs.Histogram // core.fanout.send_wait_ns
	workerWaitNs *obs.Histogram // core.fanout.worker_wait_ns
	broadcasts   *obs.Counter   // core.fanout.blocks_broadcast
	drainEvents  *obs.Counter   // core.fanout.drain_events
	depth        *obs.Gauge     // core.fanout.depth
	workers      *obs.Gauge     // core.fanout.workers
}

var fanoutBinding = obs.NewBinding(func() *fanoutMetrics {
	return &fanoutMetrics{
		sendWaitNs:   obs.GetHistogram("core.fanout.send_wait_ns"),
		workerWaitNs: obs.GetHistogram("core.fanout.worker_wait_ns"),
		broadcasts:   obs.GetCounter("core.fanout.blocks_broadcast"),
		drainEvents:  obs.GetCounter("core.fanout.drain_events"),
		depth:        obs.GetGauge("core.fanout.depth"),
		workers:      obs.GetGauge("core.fanout.workers"),
	}
})

// parallelMetrics are the gauges of the most recent EvaluateParallel
// call: the configured shard count (0 = GOMAXPROCS) and the number of
// codecs evaluated. The per-shard wall-time histogram and the effective
// (clamped) shard count live at the codec layer —
// codec.parallel.shard_ns and codec.parallel.shards — where the shard
// workers run.
type parallelMetrics struct {
	shards *obs.Gauge // core.parallel.shards
	codecs *obs.Gauge // core.parallel.codecs
}

var parallelBinding = obs.NewBinding(func() *parallelMetrics {
	return &parallelMetrics{
		shards: obs.GetGauge("core.parallel.shards"),
		codecs: obs.GetGauge("core.parallel.codecs"),
	}
})
