package analytic

import (
	"math"
	"math/rand"
	"testing"

	"busenc/internal/codec"
	"busenc/internal/trace"
)

// markovStream generates the exact model the closed forms assume: a
// stride-aligned grid of 2^m points, in-sequence with probability p.
func markovStream(p float64, m int, n int, seed int64) *trace.Stream {
	rng := rand.New(rand.NewSource(seed))
	s := trace.New("markov", m+2) // grid bits only; stride 1 on the grid
	addr := uint64(rng.Intn(1 << m))
	mask := uint64(1)<<uint(m) - 1
	for i := 0; i < n; i++ {
		s.Append(addr, trace.Instr)
		if rng.Float64() < p {
			addr = (addr + 1) & mask
		} else {
			addr = rng.Uint64() & mask
		}
	}
	return s
}

func TestMarkovClosedFormsMatchSimulation(t *testing.T) {
	const m = 16
	for _, p := range []float64{0.0, 0.3, 0.63, 0.9, 0.99} {
		s := markovStream(p, m, 150000, int64(p*1000))
		bin := codec.MustRun(codec.MustNew("binary", m, codec.Options{}), s)
		t0 := codec.MustRun(codec.MustNew("t0", m, codec.Options{Stride: 1}), s)
		wantBin := BinaryMarkov(p, m)
		wantT0 := T0Markov(p, m)
		if got := bin.AvgPerCycle(); math.Abs(got-wantBin) > 0.05*wantBin+0.05 {
			t.Errorf("p=%.2f: binary simulated %.4f vs predicted %.4f", p, got, wantBin)
		}
		if p < 1 {
			tol := 0.06*wantT0 + 0.05
			if got := t0.AvgPerCycle(); math.Abs(got-wantT0) > tol {
				t.Errorf("p=%.2f: t0 simulated %.4f vs predicted %.4f", p, got, wantT0)
			}
		}
	}
}

func TestMarkovLimits(t *testing.T) {
	const m = 16
	// p=0: both codes see pure random grid traffic, m/2 per cycle
	// (T0 adds no INC activity: the line never rises).
	if got := T0Markov(0, m); got != 8 {
		t.Errorf("T0Markov(0) = %v, want 8", got)
	}
	if got := BinaryMarkov(0, m); got != 8 {
		t.Errorf("BinaryMarkov(0) = %v, want 8", got)
	}
	// p=1: T0 freezes entirely; binary pays the increment cost.
	if got := T0Markov(1, m); got != 0 {
		t.Errorf("T0Markov(1) = %v, want 0", got)
	}
	if got := BinaryMarkov(1, m); math.Abs(got-BinarySequential(m)) > 1e-12 {
		t.Errorf("BinaryMarkov(1) = %v", got)
	}
}

func TestMarkovSavingsCurveShape(t *testing.T) {
	const m = 16
	// Savings are (near) zero at p=0 and approach 100% at p->1, and the
	// curve is monotone over the practical range.
	if s := T0MarkovSavings(0, m); math.Abs(s) > 1e-9 {
		t.Errorf("savings at p=0: %v", s)
	}
	if s := T0MarkovSavings(0.999, m); s < 0.95 {
		t.Errorf("savings at p~1: %v", s)
	}
	prev := -1.0
	for p := 0.0; p <= 0.999; p += 0.05 {
		s := T0MarkovSavings(p, m)
		if s < prev-1e-9 {
			t.Fatalf("savings curve not monotone at p=%.2f", p)
		}
		prev = s
	}
	// At the paper's aggregate in-sequence fraction (p = 0.63) the
	// single-state model predicts only ~19% savings — far below Table 2's
	// 35.5%. That is the model's diagnostic value, not an error: with
	// independent per-cycle sequentiality the mean run is 1/(1-p) ~ 2.7
	// references, and the INC-line toggles at the 2p(1-p) run boundaries
	// eat the savings. Real instruction streams at the same aggregate
	// fraction have much longer runs (the regime model in
	// internal/workload), which is exactly why the fraction alone
	// under-predicts T0.
	if s := T0MarkovSavings(0.63, m); s < 0.12 || s > 0.28 {
		t.Errorf("predicted savings at the paper's p: %v, want ~0.19", s)
	}
}

func TestMarkovBreakEven(t *testing.T) {
	p, ok := T0MarkovBreakEven(0.25, 16)
	if !ok {
		t.Fatal("no break-even found")
	}
	if p < 0.2 || p > 0.8 {
		t.Errorf("25%%-savings break-even at p=%.3f, implausible", p)
	}
	if s := T0MarkovSavings(p, 16); s < 0.25 {
		t.Errorf("break-even point does not reach the target: %v", s)
	}
	if _, ok := T0MarkovBreakEven(1.5, 16); ok {
		t.Error("impossible target reported reachable")
	}
}
