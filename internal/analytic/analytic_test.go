package analytic

import (
	"math"
	"math/rand"
	"testing"

	"busenc/internal/codec"
	"busenc/internal/trace"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBinaryRandom(t *testing.T) {
	if BinaryRandom(32) != 16 {
		t.Errorf("BinaryRandom(32) = %v", BinaryRandom(32))
	}
}

func TestBinarySequentialApproachesTwo(t *testing.T) {
	got := BinarySequential(32)
	if !almost(got, 2, 1e-6) {
		t.Errorf("BinarySequential(32) = %v, want ~2", got)
	}
	// Exact small case: N=2, addresses 0,1,2,3 wrap. Flips: 1,2,1,2 -> 1.5.
	if got := BinarySequential(2); !almost(got, 1.5, 1e-12) {
		t.Errorf("BinarySequential(2) = %v, want 1.5", got)
	}
}

func TestGrayAndT0Limits(t *testing.T) {
	if GraySequential(32) != 1 {
		t.Error("Gray sequential must be exactly 1")
	}
	if T0Sequential(32) != 0 {
		t.Error("T0 sequential must be exactly 0")
	}
	if T0Random(32) != 16 || GrayRandom(32) != 16 {
		t.Error("random-stream averages must equal binary's N/2")
	}
}

func TestBusInvertRandomSmall(t *testing.T) {
	// N=2 by hand: eta = 2^-2 * [0*C(3,0) + 1*C(3,1)] = 3/4.
	if got := BusInvertRandom(2); !almost(got, 0.75, 1e-12) {
		t.Errorf("BusInvertRandom(2) = %v, want 0.75", got)
	}
	// The code must beat binary's N/2 for any width.
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		if BusInvertRandom(n) >= float64(n)/2 {
			t.Errorf("BusInvertRandom(%d) = %v does not beat N/2", n, BusInvertRandom(n))
		}
	}
}

func TestBusInvertRandomMatchesSimulation(t *testing.T) {
	const n = 8
	want := BusInvertRandom(n)
	c := codec.MustNew("businvert", n, codec.Options{})
	rng := rand.New(rand.NewSource(11))
	s := trace.New("rand", n)
	const cycles = 200000
	for i := 0; i < cycles; i++ {
		s.Append(rng.Uint64(), trace.DataRead)
	}
	res := codec.MustRun(c, s)
	got := res.AvgPerCycle()
	if !almost(got, want, 0.03) {
		t.Errorf("simulated eta = %v, analytical = %v", got, want)
	}
}

func TestBinaryRandomMatchesSimulation(t *testing.T) {
	const n = 16
	rng := rand.New(rand.NewSource(12))
	s := trace.New("rand", n)
	for i := 0; i < 100000; i++ {
		s.Append(rng.Uint64(), trace.DataRead)
	}
	res := codec.MustRun(codec.MustNew("binary", n, codec.Options{}), s)
	if !almost(res.AvgPerCycle(), BinaryRandom(n), 0.05) {
		t.Errorf("simulated = %v, analytical = %v", res.AvgPerCycle(), BinaryRandom(n))
	}
}

func TestBinarySequentialMatchesSimulation(t *testing.T) {
	const n = 16
	s := trace.New("seq", n)
	for i := 0; i < 1<<n; i++ { // a full wrap covers the exact distribution
		s.Append(uint64(i), trace.Instr)
	}
	s.Append(0, trace.Instr) // complete the cycle for the wrap term
	res := codec.MustRun(codec.MustNew("binary", n, codec.Options{}), s)
	if !almost(res.AvgPerCycle(), BinarySequential(n), 1e-3) {
		t.Errorf("simulated = %v, analytical = %v", res.AvgPerCycle(), BinarySequential(n))
	}
}

func TestBusInvertSequentialMatchesSimulation(t *testing.T) {
	const n = 10
	s := trace.New("seq", n)
	for i := 0; i <= 1<<n; i++ {
		s.Append(uint64(i&(1<<n-1)), trace.Instr)
	}
	res := codec.MustRun(codec.MustNew("businvert", n, codec.Options{}), s)
	if !almost(res.AvgPerCycle(), BusInvertSequential(n), 0.02) {
		t.Errorf("simulated = %v, analytical = %v", res.AvgPerCycle(), BusInvertSequential(n))
	}
}

func TestTable1Shape(t *testing.T) {
	rows := Table1(32)
	if len(rows) != 8 {
		t.Fatalf("Table1 has %d rows", len(rows))
	}
	byKey := map[string]Row{}
	for _, r := range rows {
		byKey[r.Stream+"/"+r.Code] = r
	}
	// Random stream: binary == T0 == Gray, bus-invert strictly better.
	if byKey["random/binary"].PerClk != byKey["random/t0"].PerClk {
		t.Error("random: T0 must match binary")
	}
	if byKey["random/businvert"].PerClk >= byKey["random/binary"].PerClk {
		t.Error("random: bus-invert must beat binary")
	}
	if byKey["random/businvert"].RelPow >= 1 {
		t.Error("random: bus-invert relative power must be below 1")
	}
	// Sequential stream: T0 < Gray < binary ~ bus-invert.
	if byKey["sequential/t0"].PerClk != 0 {
		t.Error("sequential: T0 must be zero")
	}
	if byKey["sequential/gray"].PerClk != 1 {
		t.Error("sequential: Gray must be one")
	}
	if !(byKey["sequential/gray"].PerClk < byKey["sequential/binary"].PerClk) {
		t.Error("sequential: Gray must beat binary")
	}
	if byKey["sequential/binary"].RelPow != 1 {
		t.Error("binary relative power must be 1 by definition")
	}
}
