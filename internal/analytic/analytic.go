// Package analytic provides the closed-form expected switching activities
// behind Table 1 of the paper: average transitions per clock cycle, per
// line, and relative I/O power for the binary, Gray, T0 and bus-invert
// codes on two limiting stream classes — unlimited streams of uniformly
// random addresses and unlimited streams of consecutive addresses.
package analytic

import "math/big"

// BinaryRandom returns the expected transitions per clock of the binary
// code on a uniformly random address stream: each of the N lines toggles
// with probability 1/2, giving N/2.
func BinaryRandom(n int) float64 { return float64(n) / 2 }

// BinarySequential returns the expected transitions per clock of the
// binary code on an unlimited consecutive stream with stride 1: an
// increment flips the trailing-ones run plus the next bit, averaging
// 2 - 2^(1-N) over the 2^N addresses (the textbook ripple-carry average).
func BinarySequential(n int) float64 {
	// Average flips = sum_{k=1..N} k * P(flip count = k), with
	// P(k flips) = 2^-k for k < N and 2^-(N-1) for k = N (wrap-around
	// flips all N bits when the address is all ones).
	sum := 0.0
	p := 0.5
	for k := 1; k < n; k++ {
		sum += float64(k) * p
		p /= 2
	}
	sum += float64(n) * (p * 2) // k = N term has probability 2^-(N-1)
	return sum
}

// GrayRandom returns the expected transitions per clock of the Gray code
// on a random stream. The Gray map is a bijection, so a uniformly random
// binary stream maps to a uniformly random code stream: N/2, no gain.
func GrayRandom(n int) float64 { return float64(n) / 2 }

// GraySequential returns the expected transitions per clock of the Gray
// code on an unlimited consecutive stream: exactly 1.
func GraySequential(int) float64 { return 1 }

// T0Random returns the expected transitions per clock of the T0 code on a
// random stream. In-sequence pairs have probability 2^-N, so asymptotically
// the code behaves as binary on the N address lines while the INC line
// stays low: N/2.
func T0Random(n int) float64 { return float64(n) / 2 }

// T0Sequential returns the expected transitions per clock of the T0 code
// on an unlimited consecutive stream: the bus is frozen and INC is held
// high, so 0.
func T0Sequential(int) float64 { return 0 }

// BusInvertRandom returns the expected transitions per clock (eta) of the
// bus-invert code on a uniformly random stream over an N-line bus (paper
// eq. 5):
//
//	eta = 2^-N * sum_{k=0}^{N/2} k * C(N+1, k)
//
// The formula counts the Hamming distance distribution over the N+1
// encoded lines after the invert decision folds distances above the
// midpoint back below it.
func BusInvertRandom(n int) float64 {
	num := new(big.Float)
	for k := 0; k <= n/2; k++ {
		c := new(big.Int).Binomial(int64(n+1), int64(k))
		term := new(big.Float).SetInt(c)
		term.Mul(term, big.NewFloat(float64(k)))
		num.Add(num, term)
	}
	den := new(big.Float).SetInt(new(big.Int).Lsh(big.NewInt(1), uint(n)))
	num.Quo(num, den)
	out, _ := num.Float64()
	return out
}

// BusInvertSequential returns the expected transitions per clock of the
// bus-invert code on an unlimited consecutive stream. Increments have
// Hamming distance k with probability 2^-k (k < N), virtually never above
// N/2 for practical widths, so the invert logic stays idle and the cost
// equals the binary sequential cost.
func BusInvertSequential(n int) float64 {
	// Exact: distances above the threshold are folded to N+1-k with INV.
	// For k <= N/2 the word goes through unchanged.
	sum := 0.0
	p := 0.5
	for k := 1; k < n; k++ {
		cost := float64(k)
		if 2*k > n {
			cost = float64(n + 1 - k)
		}
		sum += cost * p
		p /= 2
	}
	// k = N (wrap-around) always exceeds the threshold, so the word is
	// inverted and only the INV line toggles: cost 1.
	sum += 1 * (p * 2)
	return sum
}

// Row is one line of Table 1.
type Row struct {
	Stream  string  // "random" or "sequential"
	Code    string  // code name
	PerClk  float64 // average transitions per clock cycle
	PerLine float64 // average transitions per line per clock
	RelPow  float64 // average I/O power relative to binary on that stream
}

// Table1 computes the full analytical comparison for an N-bit bus,
// including the Gray code the paper discusses in the text.
func Table1(n int) []Row {
	mk := func(stream, code string, perClk, lines, binPerClk float64) Row {
		rel := 0.0
		if binPerClk > 0 {
			rel = perClk / binPerClk
		}
		return Row{Stream: stream, Code: code, PerClk: perClk, PerLine: perClk / lines, RelPow: rel}
	}
	binR := BinaryRandom(n)
	binS := BinarySequential(n)
	return []Row{
		mk("random", "binary", binR, float64(n), binR),
		mk("random", "gray", GrayRandom(n), float64(n), binR),
		mk("random", "t0", T0Random(n), float64(n+1), binR),
		mk("random", "businvert", BusInvertRandom(n), float64(n+1), binR),
		mk("sequential", "binary", binS, float64(n), binS),
		mk("sequential", "gray", GraySequential(n), float64(n), binS),
		mk("sequential", "t0", T0Sequential(n), float64(n+1), binS),
		mk("sequential", "businvert", BusInvertSequential(n), float64(n+1), binS),
	}
}
