package analytic

// Markov-stream closed forms (EXTENSION): the paper evaluates the codes
// on measured streams; these formulas predict the same quantities from
// two parameters a designer can estimate without a full trace — the
// in-sequence probability p and the size of the jump-target window.
//
// Model: addresses live on a stride-aligned grid inside one region of
// 2^m grid points. Each cycle is in-sequence (addr += stride) with
// probability p, independent across cycles, or jumps to a uniformly
// random grid point with probability 1-p.
//
// Under this model:
//
//   - the address grid index immediately after a jump is uniform, and
//     two distinct jump targets are independent, so the Hamming distance
//     between them averages exactly m/2;
//   - the binary cost of an in-sequence step is the average carry-chain
//     flip count, 2 - 2^(1-m) (see BinarySequential);
//   - the T0 bus freezes during runs: its payload lines change only on
//     jumps, from the previous jump's target (plus however far the run
//     carried it) to the new target — approximately independent
//     uniforms, i.e. m/2 — and its INC line toggles whenever consecutive
//     cycles disagree on sequentiality, 2p(1-p) per cycle.
//
// The in-sequence-step Hamming cost uses the stationary-uniform
// approximation (the counter value before an increment is treated as
// uniform); the tests bound the resulting error against simulation.

// BinaryMarkov returns the expected binary-code transitions per cycle on
// the Markov stream with in-sequence probability p over a 2^m-point
// stride grid. Only the m grid bits toggle; the region base is constant.
func BinaryMarkov(p float64, m int) float64 {
	return p*BinarySequential(m) + (1-p)*float64(m)/2
}

// T0Markov returns the expected T0-code transitions per cycle (payload
// plus INC line) on the same stream.
func T0Markov(p float64, m int) float64 {
	jumpCost := (1 - p) * float64(m) / 2 // frozen payload changes only on jumps
	incCost := 2 * p * (1 - p)           // INC toggles at run boundaries
	return jumpCost + incCost
}

// T0MarkovSavings returns the predicted fractional transition savings of
// T0 over binary as a function of the stream's in-sequence probability:
// the design-aid curve "how sequential must my bus be before T0 pays?".
func T0MarkovSavings(p float64, m int) float64 {
	b := BinaryMarkov(p, m)
	if b == 0 {
		return 0
	}
	return 1 - T0Markov(p, m)/b
}

// T0MarkovBreakEven returns the smallest in-sequence probability at which
// T0 saves at least the given fraction, found by scanning p in steps of
// 1e-3 (the curve is monotone in p for practical m).
func T0MarkovBreakEven(target float64, m int) (float64, bool) {
	for p := 0.0; p <= 1.0; p += 1e-3 {
		if T0MarkovSavings(p, m) >= target {
			return p, true
		}
	}
	return 0, false
}
