package bus

import "math/bits"

// Bulk transition counting. These are the hot kernels of the batched
// evaluation engine: a full table regeneration reduces to XOR+popcount
// over encoded word chunks, so the per-word virtual-call and bit-scan
// overhead of Drive must not appear on this path.

// Accumulate drives every word of the chunk onto the bus in order,
// updating the aggregate statistics. It is equivalent to calling Drive on
// each word but keeps the line state and counters in registers across the
// whole chunk; the per-line scan runs only when the bus tracks per-line
// counts (constructed with New rather than NewAggregate).
func (b *Bus) Accumulate(words []uint64) {
	if len(words) == 0 {
		return
	}
	i := 0
	if !b.driven {
		b.driven = true
		b.current = words[0] & b.mask
		b.cycles++
		i = 1
	}
	b.cycles += int64(len(words) - i)
	cur := b.current
	mask := b.mask
	total := b.total
	maxN := b.maxInWord
	if b.perLine == nil {
		for ; i < len(words); i++ {
			w := words[i] & mask
			n := bits.OnesCount64(cur ^ w)
			total += int64(n)
			if n > maxN {
				maxN = n
			}
			cur = w
		}
	} else {
		for ; i < len(words); i++ {
			w := words[i] & mask
			diff := cur ^ w
			if diff == 0 {
				// Repeated address: nothing toggles, so the popcount, the
				// max comparison and the per-line scan are all dead weight.
				// DMA/burst traces repeat addresses often enough that the
				// early exit is worth its branch (cur is unchanged too).
				continue
			}
			n := bits.OnesCount64(diff)
			total += int64(n)
			if n > maxN {
				maxN = n
			}
			for diff != 0 {
				j := bits.TrailingZeros64(diff)
				b.perLine[j]++
				diff &= diff - 1
			}
			cur = w
		}
	}
	b.current = cur
	b.total = total
	b.maxInWord = maxN
}

// CountTransitionsInto counts the total line transitions of driving seq
// onto a width-wide bus, like CountTransitions, and additionally adds the
// per-line transition counts into perLine when it is non-nil (index 0 is
// the least significant line). perLine must have at least width entries.
func CountTransitionsInto(seq []uint64, width int, perLine []int64) int64 {
	m := Mask(width)
	var total int64
	if perLine == nil {
		for i := 1; i < len(seq); i++ {
			total += int64(bits.OnesCount64((seq[i-1] ^ seq[i]) & m))
		}
		return total
	}
	for i := 1; i < len(seq); i++ {
		diff := (seq[i-1] ^ seq[i]) & m
		total += int64(bits.OnesCount64(diff))
		for diff != 0 {
			j := bits.TrailingZeros64(diff)
			perLine[j]++
			diff &= diff - 1
		}
	}
	return total
}
