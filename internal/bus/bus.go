// Package bus models a parallel bus as a set of binary lines and accounts
// for the switching activity (bit transitions) caused by driving a sequence
// of words onto it.
//
// Power dissipated at a bus line is proportional to the number of 0->1 and
// 1->0 transitions on that line (P = alpha * C * Vdd^2 * f), so transition
// counts are the paper's primary metric. The package counts transitions per
// line and in aggregate, and computes Hamming distances between words.
package bus

import (
	"fmt"
	"math/bits"
)

// MaxWidth is the widest bus representable by a single uint64 word.
const MaxWidth = 64

// Bus is a parallel bus with a fixed number of lines. Driving words onto
// the bus accumulates per-line and aggregate transition counts. The zero
// value is not usable; construct with New.
type Bus struct {
	width     int
	mask      uint64
	current   uint64
	driven    bool
	cycles    int64
	total     int64
	perLine   []int64
	maxInWord int // largest number of lines toggling in a single cycle

	// dScratch holds the current block's transition planes for the
	// bit-sliced path (bitslice.go). A persistent field rather than a
	// local so AccumulateEncoded pays no per-block zeroing; only planes
	// [0, width) of the current block are ever live.
	dScratch [64]uint64

	// maxFails counts consecutive bit-sliced blocks whose nonzero-plane
	// screen failed to rule out a new max-per-cycle (so blockMax had to
	// run). Once it crosses maxFuseAfter the screen is clearly not
	// paying for itself on this stream and AccumulateEncoded switches —
	// permanently, for this bus — to the fused loop that folds the
	// vertical max counters into the counting pass. Heuristic state
	// only: every path produces bit-identical statistics.
	maxFails int
}

// New returns a bus with the given number of lines (1..MaxWidth).
func New(width int) *Bus {
	if width <= 0 || width > MaxWidth {
		panic(fmt.Sprintf("bus: invalid width %d", width))
	}
	return &Bus{
		width:   width,
		mask:    Mask(width),
		perLine: make([]int64, width),
	}
}

// NewAggregate returns a bus that accumulates only aggregate statistics
// (total transitions, cycles, max per cycle). Drive skips the per-line
// bit-scan loop entirely, which roughly halves the cost of counting on
// streams with many toggling lines; PerLine reports nil. Use it when the
// caller only needs Result-level totals — the batched evaluation engine
// does, unless per-line counts are explicitly requested.
func NewAggregate(width int) *Bus {
	if width <= 0 || width > MaxWidth {
		panic(fmt.Sprintf("bus: invalid width %d", width))
	}
	return &Bus{width: width, mask: Mask(width)}
}

// Mask returns a mask with the low width bits set.
func Mask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(width)) - 1
}

// Width returns the number of lines.
func (b *Bus) Width() int { return b.width }

// Drive places word on the bus lines and returns the number of lines that
// toggled relative to the previously driven word. The first drive
// initializes the lines and reports zero transitions, matching the paper's
// convention that activity is counted between successive patterns.
func (b *Bus) Drive(word uint64) int {
	word &= b.mask
	if !b.driven {
		b.driven = true
		b.current = word
		b.cycles++
		return 0
	}
	diff := b.current ^ word
	n := bits.OnesCount64(diff)
	b.total += int64(n)
	b.cycles++
	if n > b.maxInWord {
		b.maxInWord = n
	}
	if b.perLine != nil {
		for diff != 0 {
			i := bits.TrailingZeros64(diff)
			b.perLine[i]++
			diff &= diff - 1
		}
	}
	b.current = word
	return n
}

// Current returns the word currently held on the lines. Valid only after
// at least one Drive.
func (b *Bus) Current() uint64 { return b.current }

// Transitions returns the total number of line transitions accumulated.
func (b *Bus) Transitions() int64 { return b.total }

// Cycles returns the number of words driven (including the first).
func (b *Bus) Cycles() int64 { return b.cycles }

// PerLine returns a copy of the per-line transition counts, index 0 being
// the least significant line. It returns nil for a bus constructed with
// NewAggregate.
func (b *Bus) PerLine() []int64 {
	if b.perLine == nil {
		return nil
	}
	out := make([]int64, len(b.perLine))
	copy(out, b.perLine)
	return out
}

// MaxPerCycle returns the largest number of lines that toggled in any
// single cycle so far.
func (b *Bus) MaxPerCycle() int { return b.maxInWord }

// AvgPerCycle returns the mean transitions per clock cycle. The first
// drive establishes the reference and is excluded from the denominator.
func (b *Bus) AvgPerCycle() float64 {
	if b.cycles <= 1 {
		return 0
	}
	return float64(b.total) / float64(b.cycles-1)
}

// AvgPerLine returns the mean per-line transition probability per cycle,
// i.e. AvgPerCycle normalized by the bus width.
func (b *Bus) AvgPerLine() float64 {
	return b.AvgPerCycle() / float64(b.width)
}

// Prime sets the line state to word without counting a cycle or any
// transitions: the bus behaves exactly as if word had been the last word
// driven by someone else. Shard-parallel pricing uses it to seed a
// shard's accumulator with the word driven just before the shard
// boundary, so the boundary transition is counted exactly once — by the
// shard that drives the following word.
func (b *Bus) Prime(word uint64) {
	b.current = word & b.mask
	b.driven = true
}

// Merge folds the statistics of o — a bus of the same width that
// continued counting where b left off — into b: totals, cycles and
// per-line counts add, the max-per-cycle is the pair's max, and b's line
// state advances to o's. Per-shard accumulators reduce with Merge
// without re-walking any words; merging in ascending shard order keeps
// the reduction deterministic. Merging a full (per-line) bus into an
// aggregate-only one, or vice versa, loses no aggregate data but keeps
// only the counts both sides track.
func (b *Bus) Merge(o *Bus) {
	if o.width != b.width {
		panic(fmt.Sprintf("bus: merge of width %d into width %d", o.width, b.width))
	}
	b.total += o.total
	b.cycles += o.cycles
	if o.maxInWord > b.maxInWord {
		b.maxInWord = o.maxInWord
	}
	if b.perLine != nil && o.perLine != nil {
		for i, v := range o.perLine {
			b.perLine[i] += v
		}
	}
	if o.driven {
		b.current = o.current
		b.driven = true
	}
}

// Reset clears all accumulated statistics and the line state.
func (b *Bus) Reset() {
	b.current = 0
	b.driven = false
	b.cycles = 0
	b.total = 0
	b.maxInWord = 0
	for i := range b.perLine {
		b.perLine[i] = 0
	}
}

// Hamming returns the Hamming distance between a and b restricted to the
// low width bits.
func Hamming(a, b uint64, width int) int {
	return bits.OnesCount64((a ^ b) & Mask(width))
}

// CountTransitions returns the total number of line transitions produced
// by driving the words of seq, in order, onto a bus of the given width.
func CountTransitions(seq []uint64, width int) int64 {
	m := Mask(width)
	var total int64
	for i := 1; i < len(seq); i++ {
		total += int64(bits.OnesCount64((seq[i-1] ^ seq[i]) & m))
	}
	return total
}
