package bus

import "fmt"

// Cross-process accumulator transfer. Shard-parallel pricing inside one
// process merges *Bus values directly (Merge); the distributed sweep in
// internal/dist prices shards in worker processes and ships their
// accumulators back as plain data. Stats is that wire form: it captures
// everything Merge consumes — totals, cycles, max-per-cycle, optional
// per-line counts, and the line state the next shard continues from —
// so FromStats(w, b.Stats()) reconstructs a bus that merges exactly
// like the original.

// Stats is the serializable snapshot of a bus accumulator.
type Stats struct {
	Transitions int64   `json:"transitions"`
	Cycles      int64   `json:"cycles"`
	MaxPerCycle int     `json:"max_per_cycle"`
	PerLine     []int64 `json:"per_line,omitempty"`
	// Current and Driven carry the line state: the word left on the
	// lines after the last drive (or prime), and whether the lines hold
	// one at all.
	Current uint64 `json:"current"`
	Driven  bool   `json:"driven"`
}

// Stats returns a snapshot of the accumulated statistics and line state.
// The PerLine slice is a copy (nil for an aggregate-only bus).
func (b *Bus) Stats() Stats {
	return Stats{
		Transitions: b.total,
		Cycles:      b.cycles,
		MaxPerCycle: b.maxInWord,
		PerLine:     b.PerLine(),
		Current:     b.current,
		Driven:      b.driven,
	}
}

// FromStats reconstructs a bus of the given width from a snapshot. The
// result is per-line capable exactly when the snapshot carries per-line
// counts; it merges (and continues counting) identically to the bus the
// snapshot was taken from.
func FromStats(width int, st Stats) (*Bus, error) {
	if st.PerLine != nil && len(st.PerLine) != width {
		return nil, fmt.Errorf("bus: stats carry %d per-line counts for width %d", len(st.PerLine), width)
	}
	var b *Bus
	if st.PerLine != nil {
		b = New(width)
		copy(b.perLine, st.PerLine)
	} else {
		b = NewAggregate(width)
	}
	b.total = st.Transitions
	b.cycles = st.Cycles
	b.maxInWord = st.MaxPerCycle
	b.current = st.Current & b.mask
	b.driven = st.Driven
	return b, nil
}

// MergeSlots reduces per-shard accumulators deterministically: slots[k]
// holds shard k's bus, errs[k] its error (errs may be nil, or must be
// the same length as slots). The lowest-indexed error wins — a failure
// in shard k suppresses everything after it, matching what a sequential
// run would have reported — and on success the slots merge in ascending
// order into slots[0], which is returned. Empty input returns (nil,
// nil); a nil bus in an error-free slot is rejected loudly rather than
// silently skipped, since it means a worker lost a shard.
func MergeSlots(slots []*Bus, errs []error) (*Bus, error) {
	if errs != nil && len(errs) != len(slots) {
		return nil, fmt.Errorf("bus: merge of %d slots with %d errors", len(slots), len(errs))
	}
	for k := range slots {
		if errs != nil && errs[k] != nil {
			return nil, errs[k]
		}
		if slots[k] == nil {
			return nil, fmt.Errorf("bus: merge slot %d is empty", k)
		}
	}
	if len(slots) == 0 {
		return nil, nil
	}
	merged := slots[0]
	for _, o := range slots[1:] {
		merged.Merge(o)
	}
	return merged, nil
}
