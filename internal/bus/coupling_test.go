package bus

import (
	"math/rand"
	"testing"
)

func TestCouplingClassification(t *testing.T) {
	// 4-bit bus, hand-checked cycles.
	cases := []struct {
		name     string
		seq      []uint64
		toggles  int64
		single   int64
		opposite int64
		together int64
	}{
		{
			name: "one line toggles, both neighbours quiet",
			seq:  []uint64{0b0000, 0b0010},
			// Pairs (0,1) and (1,2) each see a single toggle.
			toggles: 1, single: 2,
		},
		{
			name: "adjacent lines rise together",
			seq:  []uint64{0b0000, 0b0110},
			// Pair (1,2) together; pairs (0,1) and (2,3) single.
			toggles: 2, single: 2, together: 1,
		},
		{
			name: "adjacent lines swing opposite",
			seq:  []uint64{0b0010, 0b0100},
			// Line 1 falls while line 2 rises.
			toggles: 2, single: 2, opposite: 1,
		},
		{
			name:    "all lines rise together",
			seq:     []uint64{0b0000, 0b1111},
			toggles: 4, together: 3,
		},
		{
			name:    "alternating pattern flips",
			seq:     []uint64{0b0101, 0b1010},
			toggles: 4, opposite: 3,
		},
		{
			name: "quiet bus",
			seq:  []uint64{0b1001, 0b1001},
		},
	}
	for _, tc := range cases {
		st := CouplingTransitions(tc.seq, 4)
		if st.Toggles != tc.toggles || st.Single != tc.single ||
			st.Opposite != tc.opposite || st.Together != tc.together {
			t.Errorf("%s: got %+v", tc.name, st)
		}
	}
}

func TestCouplingEnergyModel(t *testing.T) {
	st := CouplingStats{Toggles: 10, Single: 4, Opposite: 3, Together: 5, Cycles: 2}
	if e := st.Energy(0); e != 10 {
		t.Errorf("lambda=0 energy = %v, want toggles only", e)
	}
	// lambda=1: 10 + (4 + 2*3) = 20.
	if e := st.Energy(1); e != 20 {
		t.Errorf("lambda=1 energy = %v, want 20", e)
	}
	if got := st.AvgEnergyPerCycle(1); got != 10 {
		t.Errorf("avg energy = %v", got)
	}
	if (CouplingStats{}).AvgEnergyPerCycle(1) != 0 {
		t.Error("empty stats must average to zero")
	}
}

func TestCouplingTogglesMatchPlainCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seq := make([]uint64, 500)
	for i := range seq {
		seq[i] = rng.Uint64()
	}
	st := CouplingTransitions(seq, 24)
	if st.Toggles != CountTransitions(seq, 24) {
		t.Errorf("coupling toggle count %d != plain count %d", st.Toggles, CountTransitions(seq, 24))
	}
	if st.Cycles != int64(len(seq)-1) {
		t.Errorf("cycles = %d", st.Cycles)
	}
}

// Property: per cycle, each adjacent pair is classified exactly once, so
// single + opposite + together <= (width-1) * cycles, with equality only
// if every pair toggles every cycle.
func TestCouplingPairAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	seq := make([]uint64, 300)
	for i := range seq {
		seq[i] = rng.Uint64()
	}
	const width = 16
	st := CouplingTransitions(seq, width)
	pairs := st.Single + st.Opposite + st.Together
	if pairs > int64(width-1)*st.Cycles {
		t.Errorf("pair events %d exceed capacity %d", pairs, int64(width-1)*st.Cycles)
	}
}

func TestGraySequentialCouplingBehaviour(t *testing.T) {
	// A sequential Gray-coded stream toggles exactly one line per cycle,
	// so it can never produce opposite-direction coupling events — but
	// that lone toggle always charges both neighbouring coupling caps.
	// Binary's carry runs move adjacent lines *together* (coupling-free
	// within the run), so — the classic DSM result — Gray's factor-two
	// advantage over binary *erodes* as coupling grows.
	var grayWords, binWords []uint64
	for i := uint64(0); i < 1024; i++ {
		binWords = append(binWords, i)
		grayWords = append(grayWords, i^(i>>1))
	}
	gray := CouplingTransitions(grayWords, 10)
	bin := CouplingTransitions(binWords, 10)
	if gray.Opposite != 0 {
		t.Errorf("gray opposite events = %d, want 0", gray.Opposite)
	}
	if bin.Opposite == 0 {
		t.Error("binary counting should produce opposite swings")
	}
	if bin.Together == 0 {
		t.Error("binary carry runs should move adjacent lines together")
	}
	weak := gray.Energy(0) / bin.Energy(0)
	strong := gray.Energy(2) / bin.Energy(2)
	if strong <= weak {
		t.Errorf("gray/binary energy ratio should erode with coupling: %.3f -> %.3f", weak, strong)
	}
	// Gray still wins in absolute terms at moderate coupling.
	if gray.Energy(2) >= bin.Energy(2) {
		t.Error("gray should still beat binary at lambda=2 on sequential streams")
	}
}
