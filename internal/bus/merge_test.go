package bus

import (
	"fmt"
	"reflect"
	"testing"
)

// TestMergeMatchesSequential: driving a word sequence split across two
// buses — the second primed with the word at the split — and merging
// must reproduce the single-bus statistics exactly, in both modes and
// at every split point of a small sequence.
func TestMergeMatchesSequential(t *testing.T) {
	words := randomWords(300, 7)
	const width = 29
	for _, aggOnly := range []bool{false, true} {
		mk := New
		if aggOnly {
			mk = NewAggregate
		}
		ref := mk(width)
		ref.Accumulate(words)
		for cut := 1; cut < len(words); cut += 13 {
			lo := mk(width)
			lo.Accumulate(words[:cut])
			hi := mk(width)
			hi.Prime(words[cut-1])
			hi.Accumulate(words[cut:])
			lo.Merge(hi)
			if lo.Transitions() != ref.Transitions() || lo.Cycles() != ref.Cycles() ||
				lo.MaxPerCycle() != ref.MaxPerCycle() {
				t.Errorf("aggOnly=%v cut=%d: merged %d/%d/%d vs sequential %d/%d/%d",
					aggOnly, cut, lo.Transitions(), lo.Cycles(), lo.MaxPerCycle(),
					ref.Transitions(), ref.Cycles(), ref.MaxPerCycle())
			}
			if !reflect.DeepEqual(lo.PerLine(), ref.PerLine()) {
				t.Errorf("aggOnly=%v cut=%d: per-line counts diverge", aggOnly, cut)
			}
			if lo.Current() != ref.Current() {
				t.Errorf("aggOnly=%v cut=%d: line state %#x, want %#x",
					aggOnly, cut, lo.Current(), ref.Current())
			}
		}
	}
}

// TestPrimeCountsNoCycle: a primed bus reports zero cycles and zero
// transitions until something is driven, and the first drive after a
// prime counts the transition from the primed word.
func TestPrimeCountsNoCycle(t *testing.T) {
	b := NewAggregate(8)
	b.Prime(0xFF)
	if b.Cycles() != 0 || b.Transitions() != 0 {
		t.Errorf("prime counted work: cycles %d transitions %d", b.Cycles(), b.Transitions())
	}
	if n := b.Drive(0x0F); n != 4 {
		t.Errorf("first drive after prime toggled %d lines, want 4", n)
	}
	if b.Cycles() != 1 || b.Transitions() != 4 {
		t.Errorf("after drive: cycles %d transitions %d", b.Cycles(), b.Transitions())
	}
}

// TestMergeEmptyShard: merging a primed-but-never-driven bus is a
// statistics no-op apart from adopting the line state.
func TestMergeEmptyShard(t *testing.T) {
	lo := NewAggregate(16)
	lo.Accumulate([]uint64{1, 2, 3})
	hi := NewAggregate(16)
	hi.Prime(0xABC)
	lo.Merge(hi)
	if lo.Cycles() != 3 {
		t.Errorf("cycles = %d, want 3", lo.Cycles())
	}
	if lo.Current() != 0xABC {
		t.Errorf("line state %#x, want %#x", lo.Current(), uint64(0xABC))
	}
}

// TestMergeWidthMismatchPanics pins the misuse guard.
func TestMergeWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merge of mismatched widths did not panic")
		}
	}()
	New(8).Merge(New(9))
}

// TestMergeSlots pins the ordered reduction's edge cases: empty and
// single-entry shards merge like any other, the lowest-indexed error
// suppresses everything after it, and slot counts beyond the in-process
// shard fan-out (>16) still reduce to the sequential statistics.
func TestMergeSlots(t *testing.T) {
	const width = 23
	words := randomWords(500, 11)

	// slotsFor cuts words at the given points (ascending, possibly
	// repeated for empty shards) and builds one primed accumulator per
	// shard, exactly as shard workers do.
	slotsFor := func(cuts []int) []*Bus {
		slots := make([]*Bus, 0, len(cuts)+1)
		prev := 0
		for i := 0; i <= len(cuts); i++ {
			end := len(words)
			if i < len(cuts) {
				end = cuts[i]
			}
			b := New(width)
			if prev > 0 {
				b.Prime(words[prev-1])
			}
			b.Accumulate(words[prev:end])
			slots = append(slots, b)
			prev = end
		}
		return slots
	}
	manyCuts := func(n int) []int {
		cuts := make([]int, n)
		for i := range cuts {
			cuts[i] = (i + 1) * len(words) / (n + 1)
		}
		return cuts
	}

	errMid := fmt.Errorf("shard 2 exploded")
	errHigh := fmt.Errorf("shard 4 exploded")
	cases := []struct {
		name    string
		cuts    []int
		errs    func(n int) []error
		wantErr error
	}{
		{name: "two shards", cuts: []int{250}},
		{name: "empty middle shard", cuts: []int{200, 200}},
		{name: "empty first shard", cuts: []int{0, 300}},
		{name: "single-entry shard", cuts: []int{100, 101}},
		{name: "25 slots", cuts: manyCuts(24)},
		{name: "nil errs slice", cuts: []int{250}, errs: func(int) []error { return nil }},
		{
			name: "error in middle shard",
			cuts: manyCuts(5),
			errs: func(n int) []error {
				errs := make([]error, n)
				errs[2] = errMid
				errs[4] = errHigh
				return errs
			},
			wantErr: errMid,
		},
	}

	ref := New(width)
	ref.Accumulate(words)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			slots := slotsFor(tc.cuts)
			var errs []error
			if tc.errs != nil {
				errs = tc.errs(len(slots))
			}
			got, err := MergeSlots(slots, errs)
			if tc.wantErr != nil {
				if err != tc.wantErr {
					t.Fatalf("error = %v, want lowest-shard error %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("MergeSlots: %v", err)
			}
			if got.Transitions() != ref.Transitions() || got.Cycles() != ref.Cycles() ||
				got.MaxPerCycle() != ref.MaxPerCycle() || got.Current() != ref.Current() {
				t.Errorf("merged %d/%d/%d/%#x vs sequential %d/%d/%d/%#x",
					got.Transitions(), got.Cycles(), got.MaxPerCycle(), got.Current(),
					ref.Transitions(), ref.Cycles(), ref.MaxPerCycle(), ref.Current())
			}
			if !reflect.DeepEqual(got.PerLine(), ref.PerLine()) {
				t.Errorf("per-line counts diverge from sequential")
			}
		})
	}

	t.Run("empty input", func(t *testing.T) {
		if b, err := MergeSlots(nil, nil); b != nil || err != nil {
			t.Errorf("MergeSlots(nil) = %v, %v; want nil, nil", b, err)
		}
	})
	t.Run("lost shard", func(t *testing.T) {
		slots := slotsFor([]int{250})
		slots[1] = nil
		if _, err := MergeSlots(slots, make([]error, 2)); err == nil {
			t.Error("nil bus in an error-free slot did not fail")
		}
	})
	t.Run("mismatched errs length", func(t *testing.T) {
		if _, err := MergeSlots(slotsFor([]int{250}), make([]error, 1)); err == nil {
			t.Error("errs shorter than slots did not fail")
		}
	})
}

// TestStatsRoundTrip: a bus rebuilt from its Stats snapshot merges and
// keeps counting exactly like the original — the property the
// distributed sweep's wire transfer depends on.
func TestStatsRoundTrip(t *testing.T) {
	words := randomWords(400, 3)
	const width = 31
	for _, aggOnly := range []bool{false, true} {
		mk := New
		if aggOnly {
			mk = NewAggregate
		}
		ref := mk(width)
		ref.Accumulate(words)

		lo := mk(width)
		lo.Accumulate(words[:150])
		hi := mk(width)
		hi.Prime(words[149])
		hi.Accumulate(words[150:])

		rlo, err := FromStats(width, lo.Stats())
		if err != nil {
			t.Fatalf("FromStats(lo): %v", err)
		}
		rhi, err := FromStats(width, hi.Stats())
		if err != nil {
			t.Fatalf("FromStats(hi): %v", err)
		}
		rlo.Merge(rhi)
		if rlo.Transitions() != ref.Transitions() || rlo.Cycles() != ref.Cycles() ||
			rlo.MaxPerCycle() != ref.MaxPerCycle() || rlo.Current() != ref.Current() {
			t.Errorf("aggOnly=%v: rebuilt merge diverges from sequential", aggOnly)
		}
		if !reflect.DeepEqual(rlo.PerLine(), ref.PerLine()) {
			t.Errorf("aggOnly=%v: rebuilt per-line counts diverge", aggOnly)
		}
		// The rebuilt bus must also keep counting: drive one more word
		// on both and compare.
		ref.Drive(0x5A5A)
		rlo.Drive(0x5A5A)
		if rlo.Transitions() != ref.Transitions() || rlo.MaxPerCycle() != ref.MaxPerCycle() {
			t.Errorf("aggOnly=%v: rebuilt bus counts diverge after further drives", aggOnly)
		}
	}
	if _, err := FromStats(8, Stats{PerLine: make([]int64, 9)}); err == nil {
		t.Error("per-line width mismatch did not fail")
	}
}
