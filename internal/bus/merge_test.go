package bus

import (
	"reflect"
	"testing"
)

// TestMergeMatchesSequential: driving a word sequence split across two
// buses — the second primed with the word at the split — and merging
// must reproduce the single-bus statistics exactly, in both modes and
// at every split point of a small sequence.
func TestMergeMatchesSequential(t *testing.T) {
	words := randomWords(300, 7)
	const width = 29
	for _, aggOnly := range []bool{false, true} {
		mk := New
		if aggOnly {
			mk = NewAggregate
		}
		ref := mk(width)
		ref.Accumulate(words)
		for cut := 1; cut < len(words); cut += 13 {
			lo := mk(width)
			lo.Accumulate(words[:cut])
			hi := mk(width)
			hi.Prime(words[cut-1])
			hi.Accumulate(words[cut:])
			lo.Merge(hi)
			if lo.Transitions() != ref.Transitions() || lo.Cycles() != ref.Cycles() ||
				lo.MaxPerCycle() != ref.MaxPerCycle() {
				t.Errorf("aggOnly=%v cut=%d: merged %d/%d/%d vs sequential %d/%d/%d",
					aggOnly, cut, lo.Transitions(), lo.Cycles(), lo.MaxPerCycle(),
					ref.Transitions(), ref.Cycles(), ref.MaxPerCycle())
			}
			if !reflect.DeepEqual(lo.PerLine(), ref.PerLine()) {
				t.Errorf("aggOnly=%v cut=%d: per-line counts diverge", aggOnly, cut)
			}
			if lo.Current() != ref.Current() {
				t.Errorf("aggOnly=%v cut=%d: line state %#x, want %#x",
					aggOnly, cut, lo.Current(), ref.Current())
			}
		}
	}
}

// TestPrimeCountsNoCycle: a primed bus reports zero cycles and zero
// transitions until something is driven, and the first drive after a
// prime counts the transition from the primed word.
func TestPrimeCountsNoCycle(t *testing.T) {
	b := NewAggregate(8)
	b.Prime(0xFF)
	if b.Cycles() != 0 || b.Transitions() != 0 {
		t.Errorf("prime counted work: cycles %d transitions %d", b.Cycles(), b.Transitions())
	}
	if n := b.Drive(0x0F); n != 4 {
		t.Errorf("first drive after prime toggled %d lines, want 4", n)
	}
	if b.Cycles() != 1 || b.Transitions() != 4 {
		t.Errorf("after drive: cycles %d transitions %d", b.Cycles(), b.Transitions())
	}
}

// TestMergeEmptyShard: merging a primed-but-never-driven bus is a
// statistics no-op apart from adopting the line state.
func TestMergeEmptyShard(t *testing.T) {
	lo := NewAggregate(16)
	lo.Accumulate([]uint64{1, 2, 3})
	hi := NewAggregate(16)
	hi.Prime(0xABC)
	lo.Merge(hi)
	if lo.Cycles() != 3 {
		t.Errorf("cycles = %d, want 3", lo.Cycles())
	}
	if lo.Current() != 0xABC {
		t.Errorf("line state %#x, want %#x", lo.Current(), uint64(0xABC))
	}
}

// TestMergeWidthMismatchPanics pins the misuse guard.
func TestMergeWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merge of mismatched widths did not panic")
		}
	}()
	New(8).Merge(New(9))
}
