package bus

import "math/bits"

// Bit-sliced (word-parallel) transition counting. The scalar Accumulate
// prices one bus word per iteration: XOR, popcount, and — when per-line
// counts are tracked — a TrailingZeros64 scan over every set bit of the
// diff. Transposing a block of 64 words into bit-planes turns that
// inside out: plane b holds bit b of all 64 words packed into one
// machine word (lane i = word i), so the transitions of line b across
// the whole block are one XOR against the lane-shifted plane and one
// popcount — 64 entries per instruction, and the per-line scan
// disappears entirely. Per-cycle transition counts (for MaxPerCycle)
// are recovered without transposing back by summing the diff planes in
// bit-sliced vertical counters. See DESIGN.md "Bit-sliced counting" for
// the layout and the block-boundary handling; parity with the scalar
// kernel is pinned bit-for-bit by bitslice_test.go and
// FuzzTransposeRoundTrip.

// BlockLen is the number of entries per bit-plane block: one lane per
// bit of a machine word.
const BlockLen = 64

// Transpose64 transposes the 64x64 bit matrix held in a, in place:
// afterwards bit i of a[b] is what bit b of a[i] was. The
// transformation is an involution (applying it twice is the identity),
// which is how UnpackPlanes inverts PackPlanes. This is the classic
// recursive block-swap (Hacker's Delight 7-3): 6 rounds of delta swaps,
// ~3 ops per row per round — far below the 64 single-bit extractions
// per word of a naive transpose.
func Transpose64(a *[64]uint64) {
	// Each round swaps the high-column bits of the low row with the
	// low-column bits of the high row (row index and LSB-first bit index
	// are the two matrix axes; swapping the other pair of quadrants would
	// transpose along the anti-diagonal and reverse the lanes). The j=32
	// round is peeled so transposeTail can be shared with the narrow-word
	// fast path in PackPlanes.
	for k := 0; k < 32; k++ {
		t := ((a[k] >> 32) ^ a[k+32]) & 0x00000000FFFFFFFF
		a[k] ^= t << 32
		a[k+32] ^= t
	}
	transposeTail(a, 64)
}

// transposeTail runs the j=16..1 delta-swap rounds over the first rows
// rows of a (rows is 32 or 64). After the j=32 round, rows 0..31 and
// 32..63 never mix again, so callers that know rows 32..63 are zero
// (words all below 2^32) can skip them entirely — half the transpose.
// Each round is written out with its literal shift and mask so the
// swaps compile to immediate-operand instructions with the row bounds
// provable, which roughly halves the cost of the generic loop nest.
func transposeTail(a *[64]uint64, rows int) {
	for base := 0; base < rows; base += 32 {
		for k := base; k < base+16; k++ {
			t := ((a[k&63] >> 16) ^ a[(k+16)&63]) & 0x0000FFFF0000FFFF
			a[k&63] ^= t << 16
			a[(k+16)&63] ^= t
		}
	}
	transposeTail8(a, rows)
}

// transposeTailHalf is transposeTail specialized to rows == 32, the
// narrow-word partial-block path. With the row bound a constant every
// index is provably below 64, so the compiler drops both the bounds
// checks and the &63 wrap masking the generic loops need for the
// rows == 64 case.
func transposeTailHalf(a *[64]uint64) {
	for k := 0; k < 16; k++ {
		t := ((a[k] >> 16) ^ a[k+16]) & 0x0000FFFF0000FFFF
		a[k] ^= t << 16
		a[k+16] ^= t
	}
	transposeTail8Half(a)
}

// transposeTail8Half is transposeTail8 specialized to rows == 32 (see
// transposeTailHalf); it finishes the fused narrow full-block pack in
// PackPlanes, which runs once per 64-address block on every plane-path
// evaluation — the hottest transpose call site.
func transposeTail8Half(a *[64]uint64) {
	for base := 0; base < 32; base += 16 {
		for k := base; k < base+8; k++ {
			t := ((a[k] >> 8) ^ a[k+8]) & 0x00FF00FF00FF00FF
			a[k] ^= t << 8
			a[k+8] ^= t
		}
	}
	for base := 0; base < 32; base += 8 {
		for k := base; k < base+4; k++ {
			t := ((a[k] >> 4) ^ a[k+4]) & 0x0F0F0F0F0F0F0F0F
			a[k] ^= t << 4
			a[k+4] ^= t
		}
	}
	for base := 0; base < 32; base += 4 {
		for k := base; k < base+2; k++ {
			t := ((a[k] >> 2) ^ a[k+2]) & 0x3333333333333333
			a[k] ^= t << 2
			a[k+2] ^= t
		}
	}
	for k := 0; k < 32; k += 2 {
		t := ((a[k] >> 1) ^ a[k+1]) & 0x5555555555555555
		a[k] ^= t << 1
		a[k+1] ^= t
	}
}

// transposeTail8 is the j=8..1 suffix of transposeTail, split out so the
// full-block narrow pack can fuse the j=16 round with its interleave.
func transposeTail8(a *[64]uint64, rows int) {
	for base := 0; base < rows; base += 16 {
		for k := base; k < base+8; k++ {
			t := ((a[k&63] >> 8) ^ a[(k+8)&63]) & 0x00FF00FF00FF00FF
			a[k&63] ^= t << 8
			a[(k+8)&63] ^= t
		}
	}
	for base := 0; base < rows; base += 8 {
		for k := base; k < base+4; k++ {
			t := ((a[k&63] >> 4) ^ a[(k+4)&63]) & 0x0F0F0F0F0F0F0F0F
			a[k&63] ^= t << 4
			a[(k+4)&63] ^= t
		}
	}
	for base := 0; base < rows; base += 4 {
		for k := base; k < base+2; k++ {
			t := ((a[k&63] >> 2) ^ a[(k+2)&63]) & 0x3333333333333333
			a[k&63] ^= t << 2
			a[(k+2)&63] ^= t
		}
	}
	for k := 0; k < rows; k += 2 {
		t := ((a[k&63] >> 1) ^ a[(k+1)&63]) & 0x5555555555555555
		a[k&63] ^= t << 1
		a[(k+1)&63] ^= t
	}
}

// PackPlanes packs up to 64 words into bit-plane form: on return, bit i
// of planes[b] is bit b of words[i] (lane i = word i), and lanes beyond
// len(words) are zero in every plane. Panics if len(words) > BlockLen.
func PackPlanes(words []uint64, planes *[64]uint64) {
	if len(words) > BlockLen {
		panic("bus: PackPlanes block exceeds 64 words")
	}
	if len(words) == BlockLen {
		// Full-block fast path: when every word fits in 32 bits (the
		// paper's traces are at most 32 wide) the j=32 round degenerates
		// to interleaving row k+32's low half into row k's empty high
		// half, rows 32..63 become zero planes, and the remaining rounds
		// only have real work in rows 0..31 — half the transpose. The
		// interleave, the narrowness check and the j=16 round are all
		// fused into one pass over the input so the intermediate rows
		// never round-trip through memory.
		var or uint64
		for k := 0; k < 16; k++ {
			w0, w1, w2, w3 := words[k], words[k+16], words[k+32], words[k+48]
			or |= w0 | w1 | w2 | w3
			r1 := w0 | w2<<32
			r2 := w1 | w3<<32
			t := ((r1 >> 16) ^ r2) & 0x0000FFFF0000FFFF
			planes[k] = r1 ^ t<<16
			planes[k+16] = r2 ^ t
		}
		if or>>32 == 0 {
			for k := 32; k < 64; k++ {
				planes[k] = 0
			}
			transposeTail8Half(planes)
			return
		}
		// Wide words: rebuild the rows and take the general transpose.
		copy(planes[:], words)
		Transpose64(planes)
		return
	}
	var or uint64
	for i, w := range words {
		planes[i] = w
		or |= w
	}
	for i := len(words); i < 64; i++ {
		planes[i] = 0
	}
	if or>>32 == 0 {
		for k := 0; k < 32; k++ {
			planes[k] |= planes[k+32] << 32
			planes[k+32] = 0
		}
		transposeTailHalf(planes)
		return
	}
	Transpose64(planes)
}

// UnpackPlanes recovers the word forms of the first len(words) lanes of
// planes (the inverse of PackPlanes). planes is left untouched. Panics
// if len(words) > BlockLen.
func UnpackPlanes(planes *[64]uint64, words []uint64) {
	if len(words) > BlockLen {
		panic("bus: UnpackPlanes block exceeds 64 words")
	}
	tmp := *planes
	Transpose64(&tmp)
	copy(words, tmp[:len(words)])
}

// BlockLaneMask reports the lane mask an n-word block's diff planes
// must be built under: lanes 0..n-1 carry transitions, and when the bus
// is still undriven lane 0 is the initializing word — the paper's
// "first pattern costs nothing" convention — so its diff is masked out
// as well. The mask reflects the bus state at the time of the call; the
// first AccumulateEncoded consumes the undriven state, so callers must
// query the mask per block, before accumulating it.
func (b *Bus) BlockLaneMask(n int) uint64 {
	laneMask := ^uint64(0)
	if n < 64 {
		laneMask = (uint64(1) << uint(n)) - 1
	}
	if !b.driven {
		laneMask &^= 1
	}
	return laneMask
}

// blockMax folds an n-block's transition planes d[:width] to the
// largest per-cycle transition count via vertical carry-save counters:
// four planes per step — two ones-level full adders, one twos-level
// full adder, then a single weight-4 carry ripples the rest of the
// counter stack (lane i of cK holds bit K of cycle i's count).
// Straight-line and branchless — the per-cycle counts are
// data-dependent, so conditional early-exits here mispredict constantly
// on real traces. The counters then fold to the max by walking from the
// top bit narrowing the candidate lanes — the bit-sliced equivalent of
// the scalar per-word max comparison.
func blockMax(d *[64]uint64, width int) int {
	var c0, c1, c2, c3, c4, c5, c6 uint64
	pb := 0
	for ; pb+4 <= width; pb += 4 {
		d0, d1, d2, d3 := d[pb], d[pb+1], d[pb+2], d[pb+3]
		u := c0 ^ d0
		carryA := (c0 & d0) | (u & d1)
		s01 := u ^ d1
		v := s01 ^ d2
		carryB := (s01 & d2) | (v & d3)
		c0 = v ^ d3
		w := c1 ^ carryA
		carry := (c1 & carryA) | (w & carryB)
		c1 = w ^ carryB
		t := c2 & carry
		c2 ^= carry
		carry = t
		t = c3 & carry
		c3 ^= carry
		carry = t
		t = c4 & carry
		c4 ^= carry
		carry = t
		t = c5 & carry
		c5 ^= carry
		c6 |= t
	}
	for ; pb < width; pb++ {
		dd := d[pb]
		t := c0 & dd
		c0 ^= dd
		t, c1 = c1&t, c1^t
		t, c2 = c2&t, c2^t
		t, c3 = c3&t, c3^t
		t, c4 = c4&t, c4^t
		t, c5 = c5&t, c5^t
		c6 |= t
	}
	return foldMax(c0, c1, c2, c3, c4, c5, c6)
}

// foldMax reduces a stack of vertical counters (lane i of cK holds bit
// K of cycle i's transition count) to the largest per-lane value by
// walking from the top bit narrowing the candidate lanes — the
// bit-sliced equivalent of the scalar per-word max comparison.
// Branchless: whether a bit of the max is set is data-dependent with no
// pattern across blocks, so the obvious conditional narrows mispredict
// their way through all seven rounds; the arithmetic select costs a
// handful of ALU ops per round instead.
func foldMax(c0, c1, c2, c3, c4, c5, c6 uint64) int {
	maxv := uint64(0)
	cand := ^uint64(0)
	for k, vc := range [7]uint64{c6, c5, c4, c3, c2, c1, c0} {
		t := cand & vc
		nz := (t | -t) >> 63     // 1 when any candidate lane has this bit
		maxv |= nz << uint(6-k)  // set the max's bit
		cand ^= (cand ^ t) & -nz // narrow to those lanes when nonempty
	}
	return int(maxv)
}

// maxFuseAfter is how many consecutive failed nz screens flip a bus
// into the fused max loop. Low-toggle streams (sequential address
// traces) skip blockMax almost every block and never get close; on
// high-entropy streams the screen fails essentially always, and the
// fused loop is cheaper than screen + diff store + blockMax reload.
const maxFuseAfter = 8

// AccumulateEncoded drives the n encoded words packed in e (lane i of
// e[pb] = bit pb of word i) onto the bus. This is the counting core of
// the bit-sliced path: per plane it is one popcount (total and per-line
// counts), with max-per-cycle folded from vertical carry-save counters
// (blockMax) only when a free per-block bound says the block could beat
// the running max. Results are bit-identical to scalar Accumulate on
// the word forms. last must be word n-1 (callers on the word path have
// it for free; plane-domain encoders derive it scalar-ly from the
// block's final addresses). Lanes >= n and planes at or above the bus
// width are ignored, so callers need not mask either.
func (b *Bus) AccumulateEncoded(e *[64]uint64, n int, last uint64) {
	if n <= 0 {
		return
	}
	if n > BlockLen {
		panic("bus: AccumulateEncoded block exceeds 64 words")
	}
	laneMask := b.BlockLaneMask(n)
	prev := b.current
	b.driven = true
	b.cycles += int64(n)
	b.current = last & b.mask
	if b.maxFails >= maxFuseAfter {
		b.accumulateFused(e, laneMask, prev)
		return
	}
	total := b.total
	width := b.width
	if width > 64 {
		width = 64 // unreachable; aids bounds-check elimination
	}
	// Pass 1 builds the transition planes — lane-shifted XOR with the
	// carried-in line state feeding lane 0 (pv walks alongside pb so the
	// per-plane carry bit is a constant-shift extract) — and takes the
	// popcounts. nz counts the planes with any transition at all: no
	// cycle of the block can toggle more lines than there are toggling
	// planes, so it is a free upper bound on the block's max-per-cycle.
	// The vertical-counter fold (blockMax) runs only when that bound
	// beats the running max — after the max establishes itself in the
	// first blocks of a trace, almost never.
	d := &b.dScratch
	var nz int64
	pb := 0
	if b.perLine != nil {
		perLine := b.perLine[:width]
		for ; pb+4 <= width; pb += 4 {
			p0, p1, p2, p3 := e[pb], e[pb+1], e[pb+2], e[pb+3]
			pv := prev >> uint(pb)
			d0 := (p0 ^ (p0 << 1) ^ (pv & 1)) & laneMask
			d1 := (p1 ^ (p1 << 1) ^ ((pv >> 1) & 1)) & laneMask
			d2 := (p2 ^ (p2 << 1) ^ ((pv >> 2) & 1)) & laneMask
			d3 := (p3 ^ (p3 << 1) ^ ((pv >> 3) & 1)) & laneMask
			d[pb], d[pb+1], d[pb+2], d[pb+3] = d0, d1, d2, d3
			n0 := int64(bits.OnesCount64(d0))
			n1 := int64(bits.OnesCount64(d1))
			n2 := int64(bits.OnesCount64(d2))
			n3 := int64(bits.OnesCount64(d3))
			perLine[pb] += n0
			perLine[pb+1] += n1
			perLine[pb+2] += n2
			perLine[pb+3] += n3
			total += n0 + n1 + n2 + n3
			// (nK+63)>>6 is 0 for an empty plane and 1 otherwise.
			nz += (n0+63)>>6 + (n1+63)>>6 + (n2+63)>>6 + (n3+63)>>6
		}
		for ; pb < width; pb++ {
			p := e[pb]
			dd := (p ^ (p << 1) ^ ((prev >> uint(pb)) & 1)) & laneMask
			d[pb] = dd
			c := int64(bits.OnesCount64(dd))
			total += c
			perLine[pb] += c
			nz += (c + 63) >> 6
		}
	} else {
		for ; pb+4 <= width; pb += 4 {
			p0, p1, p2, p3 := e[pb], e[pb+1], e[pb+2], e[pb+3]
			pv := prev >> uint(pb)
			d0 := (p0 ^ (p0 << 1) ^ (pv & 1)) & laneMask
			d1 := (p1 ^ (p1 << 1) ^ ((pv >> 1) & 1)) & laneMask
			d2 := (p2 ^ (p2 << 1) ^ ((pv >> 2) & 1)) & laneMask
			d3 := (p3 ^ (p3 << 1) ^ ((pv >> 3) & 1)) & laneMask
			d[pb], d[pb+1], d[pb+2], d[pb+3] = d0, d1, d2, d3
			n0 := int64(bits.OnesCount64(d0))
			n1 := int64(bits.OnesCount64(d1))
			n2 := int64(bits.OnesCount64(d2))
			n3 := int64(bits.OnesCount64(d3))
			total += n0 + n1 + n2 + n3
			nz += (n0+63)>>6 + (n1+63)>>6 + (n2+63)>>6 + (n3+63)>>6
		}
		for ; pb < width; pb++ {
			p := e[pb]
			dd := (p ^ (p << 1) ^ ((prev >> uint(pb)) & 1)) & laneMask
			d[pb] = dd
			c := int64(bits.OnesCount64(dd))
			total += c
			nz += (c + 63) >> 6
		}
	}
	b.total = total
	if int(nz) > b.maxInWord {
		b.maxFails++
		if maxv := blockMax(d, width); maxv > b.maxInWord {
			b.maxInWord = maxv
		}
	} else {
		b.maxFails = 0
	}
}

// accumulateFused is AccumulateEncoded's loop for buses whose nz screen
// keeps failing (maxFails crossed maxFuseAfter): the vertical carry-save
// max counters accumulate inside the counting pass itself, so the block
// pays neither the screen arithmetic nor the transition-plane store and
// blockMax's reload of it. Statistics are bit-identical to the screened
// loop — the counters are exact, not a bound.
func (b *Bus) accumulateFused(e *[64]uint64, laneMask, prev uint64) {
	total := b.total
	width := b.width
	if width > 64 {
		width = 64 // unreachable; aids bounds-check elimination
	}
	var c0, c1, c2, c3, c4, c5, c6 uint64
	pb := 0
	if b.perLine != nil {
		perLine := b.perLine[:width]
		for ; pb+4 <= width; pb += 4 {
			p0, p1, p2, p3 := e[pb], e[pb+1], e[pb+2], e[pb+3]
			pv := prev >> uint(pb)
			d0 := (p0 ^ (p0 << 1) ^ (pv & 1)) & laneMask
			d1 := (p1 ^ (p1 << 1) ^ ((pv >> 1) & 1)) & laneMask
			d2 := (p2 ^ (p2 << 1) ^ ((pv >> 2) & 1)) & laneMask
			d3 := (p3 ^ (p3 << 1) ^ ((pv >> 3) & 1)) & laneMask
			n0 := int64(bits.OnesCount64(d0))
			n1 := int64(bits.OnesCount64(d1))
			n2 := int64(bits.OnesCount64(d2))
			n3 := int64(bits.OnesCount64(d3))
			perLine[pb] += n0
			perLine[pb+1] += n1
			perLine[pb+2] += n2
			perLine[pb+3] += n3
			total += n0 + n1 + n2 + n3
			u := c0 ^ d0
			carryA := (c0 & d0) | (u & d1)
			s01 := u ^ d1
			v := s01 ^ d2
			carryB := (s01 & d2) | (v & d3)
			c0 = v ^ d3
			w := c1 ^ carryA
			carry := (c1 & carryA) | (w & carryB)
			c1 = w ^ carryB
			t := c2 & carry
			c2 ^= carry
			carry = t
			t = c3 & carry
			c3 ^= carry
			carry = t
			t = c4 & carry
			c4 ^= carry
			carry = t
			t = c5 & carry
			c5 ^= carry
			c6 |= t
		}
		for ; pb < width; pb++ {
			p := e[pb]
			dd := (p ^ (p << 1) ^ ((prev >> uint(pb)) & 1)) & laneMask
			c := int64(bits.OnesCount64(dd))
			total += c
			perLine[pb] += c
			t := c0 & dd
			c0 ^= dd
			t, c1 = c1&t, c1^t
			t, c2 = c2&t, c2^t
			t, c3 = c3&t, c3^t
			t, c4 = c4&t, c4^t
			t, c5 = c5&t, c5^t
			c6 |= t
		}
	} else {
		for ; pb+4 <= width; pb += 4 {
			p0, p1, p2, p3 := e[pb], e[pb+1], e[pb+2], e[pb+3]
			pv := prev >> uint(pb)
			d0 := (p0 ^ (p0 << 1) ^ (pv & 1)) & laneMask
			d1 := (p1 ^ (p1 << 1) ^ ((pv >> 1) & 1)) & laneMask
			d2 := (p2 ^ (p2 << 1) ^ ((pv >> 2) & 1)) & laneMask
			d3 := (p3 ^ (p3 << 1) ^ ((pv >> 3) & 1)) & laneMask
			total += int64(bits.OnesCount64(d0)) + int64(bits.OnesCount64(d1)) +
				int64(bits.OnesCount64(d2)) + int64(bits.OnesCount64(d3))
			u := c0 ^ d0
			carryA := (c0 & d0) | (u & d1)
			s01 := u ^ d1
			v := s01 ^ d2
			carryB := (s01 & d2) | (v & d3)
			c0 = v ^ d3
			w := c1 ^ carryA
			carry := (c1 & carryA) | (w & carryB)
			c1 = w ^ carryB
			t := c2 & carry
			c2 ^= carry
			carry = t
			t = c3 & carry
			c3 ^= carry
			carry = t
			t = c4 & carry
			c4 ^= carry
			carry = t
			t = c5 & carry
			c5 ^= carry
			c6 |= t
		}
		for ; pb < width; pb++ {
			p := e[pb]
			dd := (p ^ (p << 1) ^ ((prev >> uint(pb)) & 1)) & laneMask
			total += int64(bits.OnesCount64(dd))
			t := c0 & dd
			c0 ^= dd
			t, c1 = c1&t, c1^t
			t, c2 = c2&t, c2^t
			t, c3 = c3&t, c3^t
			t, c4 = c4&t, c4^t
			t, c5 = c5&t, c5^t
			c6 |= t
		}
	}
	b.total = total
	if maxv := foldMax(c0, c1, c2, c3, c4, c5, c6); maxv > b.maxInWord {
		b.maxInWord = maxv
	}
}

// AccumulatePlanes drives the n words packed in planes onto the bus,
// producing bit-identical totals, per-line counts, max-per-cycle,
// cycles and line state to Accumulate on the word forms. Lane i of
// planes[b] must be bit b of word i for i < n; lanes >= n and planes at
// or above the bus width are ignored, so callers need not mask either.
// n must be in [0, BlockLen]. It is AccumulateEncoded plus the final
// word extracted from lane n-1 of the planes.
func (b *Bus) AccumulatePlanes(planes *[64]uint64, n int) {
	if n <= 0 {
		return
	}
	if n > BlockLen {
		panic("bus: AccumulatePlanes block exceeds 64 words")
	}
	width := b.width
	if width > 64 {
		width = 64
	}
	curShift := uint(n - 1)
	var last uint64
	for pb := 0; pb < width; pb++ {
		last |= ((planes[pb] >> curShift) & 1) << uint(pb)
	}
	b.AccumulateEncoded(planes, n, last)
}

// AccumulateBitsliced is Accumulate routed through the bit-plane
// kernel: the words are transposed 64 at a time and counted with
// AccumulatePlanes. Results are bit-identical to Accumulate; it wins
// when per-line counts are tracked (the plane kernel replaces the
// per-set-bit scan with one popcount per line) and loses the transpose
// cost when they are not, which is why Accumulate remains the
// aggregate-only default.
func (b *Bus) AccumulateBitsliced(words []uint64) {
	var planes [64]uint64
	for base := 0; base < len(words); base += BlockLen {
		end := base + BlockLen
		if end > len(words) {
			end = len(words)
		}
		PackPlanes(words[base:end], &planes)
		b.AccumulatePlanes(&planes, end-base)
	}
	recordBitslice(int64(len(words)))
}
