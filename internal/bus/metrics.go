package bus

import "busenc/internal/obs"

// Observability hooks for the bit-sliced counting kernels (see
// internal/obs). The handles live in the gated default registry: while
// metrics are disabled every handle is nil and the instrumented sites
// cost one predictable branch. Counters are bumped once per kernel
// call, never per block or per word — the plane loops must stay free of
// atomics.
//
// Instrumented sites:
//
//   - bus.bitslice.calls / bus.bitslice.entries — bit-sliced
//     accumulation passes and the entries they priced (AccumulateBitsliced
//     and the codec plane runners via RecordBitsliced).
type busMetrics struct {
	bitsliceCalls   *obs.Counter // bus.bitslice.calls
	bitsliceEntries *obs.Counter // bus.bitslice.entries
}

var metricsBinding = obs.NewBinding(func() *busMetrics {
	return &busMetrics{
		bitsliceCalls:   obs.GetCounter("bus.bitslice.calls"),
		bitsliceEntries: obs.GetCounter("bus.bitslice.entries"),
	}
})

// RecordBitsliced counts one bit-sliced pricing pass over n entries.
// Exported so the codec plane runners (which call AccumulatePlanes
// block-by-block) can account a whole pass with a single bump.
func RecordBitsliced(n int64) { recordBitslice(n) }

func recordBitslice(n int64) {
	m := metricsBinding.Get()
	m.bitsliceCalls.Inc()
	m.bitsliceEntries.Add(n)
}
