package bus

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadWidth(t *testing.T) {
	for _, w := range []int{-1, 0, 65, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", w)
				}
			}()
			New(w)
		}()
	}
}

func TestMask(t *testing.T) {
	cases := []struct {
		width int
		want  uint64
	}{
		{1, 0x1},
		{4, 0xF},
		{8, 0xFF},
		{32, 0xFFFFFFFF},
		{63, 0x7FFFFFFFFFFFFFFF},
		{64, ^uint64(0)},
	}
	for _, c := range cases {
		if got := Mask(c.width); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.width, got, c.want)
		}
	}
}

func TestFirstDriveCostsNothing(t *testing.T) {
	b := New(8)
	if n := b.Drive(0xFF); n != 0 {
		t.Errorf("first Drive reported %d transitions, want 0", n)
	}
	if b.Transitions() != 0 {
		t.Errorf("Transitions after first drive = %d, want 0", b.Transitions())
	}
	if b.Cycles() != 1 {
		t.Errorf("Cycles = %d, want 1", b.Cycles())
	}
}

func TestDriveCountsToggles(t *testing.T) {
	b := New(8)
	b.Drive(0x00)
	if n := b.Drive(0x0F); n != 4 {
		t.Errorf("0x00 -> 0x0F reported %d, want 4", n)
	}
	if n := b.Drive(0x0F); n != 0 {
		t.Errorf("repeat drive reported %d, want 0", n)
	}
	if n := b.Drive(0xF0); n != 8 {
		t.Errorf("0x0F -> 0xF0 reported %d, want 8", n)
	}
	if b.Transitions() != 12 {
		t.Errorf("total = %d, want 12", b.Transitions())
	}
	if b.MaxPerCycle() != 8 {
		t.Errorf("MaxPerCycle = %d, want 8", b.MaxPerCycle())
	}
}

func TestDriveMasksToWidth(t *testing.T) {
	b := New(4)
	b.Drive(0x0)
	if n := b.Drive(0xF0); n != 0 {
		t.Errorf("bits above the bus width toggled: %d", n)
	}
	if b.Current() != 0 {
		t.Errorf("Current = %#x, want 0", b.Current())
	}
}

func TestPerLine(t *testing.T) {
	b := New(4)
	b.Drive(0b0000)
	b.Drive(0b0001) // line 0
	b.Drive(0b0011) // line 1
	b.Drive(0b0010) // line 0
	per := b.PerLine()
	want := []int64{2, 1, 0, 0}
	for i := range want {
		if per[i] != want[i] {
			t.Errorf("line %d: %d transitions, want %d", i, per[i], want[i])
		}
	}
	// The returned slice must be a copy.
	per[0] = 99
	if b.PerLine()[0] != 2 {
		t.Error("PerLine returned internal state, not a copy")
	}
}

func TestAverages(t *testing.T) {
	b := New(4)
	if b.AvgPerCycle() != 0 {
		t.Error("AvgPerCycle on empty bus should be 0")
	}
	b.Drive(0b0000)
	b.Drive(0b1111)
	b.Drive(0b0000)
	if got := b.AvgPerCycle(); got != 4 {
		t.Errorf("AvgPerCycle = %v, want 4", got)
	}
	if got := b.AvgPerLine(); got != 1 {
		t.Errorf("AvgPerLine = %v, want 1", got)
	}
}

func TestReset(t *testing.T) {
	b := New(8)
	b.Drive(0xAA)
	b.Drive(0x55)
	b.Reset()
	if b.Transitions() != 0 || b.Cycles() != 0 || b.MaxPerCycle() != 0 {
		t.Error("Reset did not clear statistics")
	}
	if n := b.Drive(0xFF); n != 0 {
		t.Errorf("first drive after Reset reported %d, want 0", n)
	}
	for i, c := range b.PerLine() {
		if c != 0 {
			t.Errorf("line %d count %d after Reset", i, c)
		}
	}
}

func TestHamming(t *testing.T) {
	cases := []struct {
		a, b  uint64
		width int
		want  int
	}{
		{0, 0, 32, 0},
		{0xFF, 0, 8, 8},
		{0xFF, 0, 4, 4}, // width restricts the comparison
		{0b1010, 0b0101, 4, 4},
		{^uint64(0), 0, 64, 64},
	}
	for _, c := range cases {
		if got := Hamming(c.a, c.b, c.width); got != c.want {
			t.Errorf("Hamming(%#x, %#x, %d) = %d, want %d", c.a, c.b, c.width, got, c.want)
		}
	}
}

func TestCountTransitionsMatchesBus(t *testing.T) {
	seq := []uint64{0, 1, 3, 7, 2, 0xFF, 0xFF, 0}
	b := New(8)
	for _, w := range seq {
		b.Drive(w)
	}
	if got := CountTransitions(seq, 8); got != b.Transitions() {
		t.Errorf("CountTransitions = %d, Bus total = %d", got, b.Transitions())
	}
}

func TestCountTransitionsEdgeCases(t *testing.T) {
	if CountTransitions(nil, 32) != 0 {
		t.Error("nil sequence should have 0 transitions")
	}
	if CountTransitions([]uint64{42}, 32) != 0 {
		t.Error("single-word sequence should have 0 transitions")
	}
}

// Property: total transitions equal the sum of pairwise Hamming distances.
func TestDriveMatchesHammingProperty(t *testing.T) {
	f := func(words []uint64) bool {
		const width = 24
		b := New(width)
		var want int64
		for i, w := range words {
			b.Drive(w)
			if i > 0 {
				want += int64(bits.OnesCount64((words[i-1] ^ w) & Mask(width)))
			}
		}
		return b.Transitions() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: per-line counts sum to the total.
func TestPerLineSumsToTotal(t *testing.T) {
	f := func(words []uint64) bool {
		b := New(16)
		for _, w := range words {
			b.Drive(w)
		}
		var sum int64
		for _, c := range b.PerLine() {
			sum += c
		}
		return sum == b.Transitions()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
