package bus

import (
	"math/rand"
	"reflect"
	"testing"
)

func randomWords(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64()
	}
	return out
}

// TestAggregateMatchesFull: the aggregate-only bus must report the same
// totals, cycles and max-per-cycle as the full bus, and nil per-line.
func TestAggregateMatchesFull(t *testing.T) {
	words := randomWords(5000, 1)
	full := New(33)
	agg := NewAggregate(33)
	for _, w := range words {
		if full.Drive(w) != agg.Drive(w) {
			t.Fatal("Drive return values diverge")
		}
	}
	if agg.Transitions() != full.Transitions() || agg.Cycles() != full.Cycles() || agg.MaxPerCycle() != full.MaxPerCycle() {
		t.Errorf("aggregate stats diverge: %d/%d/%d vs %d/%d/%d",
			agg.Transitions(), agg.Cycles(), agg.MaxPerCycle(),
			full.Transitions(), full.Cycles(), full.MaxPerCycle())
	}
	if agg.PerLine() != nil {
		t.Error("aggregate bus reported per-line counts")
	}
	if full.PerLine() == nil {
		t.Error("full bus lost its per-line counts")
	}
}

// TestAccumulateMatchesDrive: bulk accumulation in uneven chunks must be
// byte-identical to word-at-a-time Drive, in both modes.
func TestAccumulateMatchesDrive(t *testing.T) {
	words := randomWords(4096, 2)
	for _, aggOnly := range []bool{false, true} {
		mk := New
		if aggOnly {
			mk = NewAggregate
		}
		ref := mk(17)
		bulk := mk(17)
		for _, w := range words {
			ref.Drive(w)
		}
		for lo := 0; lo < len(words); {
			hi := lo + 1 + lo%509
			if hi > len(words) {
				hi = len(words)
			}
			bulk.Accumulate(words[lo:hi])
			lo = hi
		}
		if bulk.Transitions() != ref.Transitions() || bulk.Cycles() != ref.Cycles() || bulk.MaxPerCycle() != ref.MaxPerCycle() {
			t.Errorf("aggOnly=%v: bulk %d/%d/%d vs drive %d/%d/%d", aggOnly,
				bulk.Transitions(), bulk.Cycles(), bulk.MaxPerCycle(),
				ref.Transitions(), ref.Cycles(), ref.MaxPerCycle())
		}
		if !reflect.DeepEqual(bulk.PerLine(), ref.PerLine()) {
			t.Errorf("aggOnly=%v: per-line counts diverge", aggOnly)
		}
	}
}

// TestAccumulateEmptyAndFirst: empty chunks are no-ops and the first word
// of the first chunk establishes the reference with zero transitions.
func TestAccumulateEmptyAndFirst(t *testing.T) {
	b := NewAggregate(8)
	b.Accumulate(nil)
	if b.Cycles() != 0 {
		t.Error("empty chunk advanced the bus")
	}
	b.Accumulate([]uint64{0xFF})
	if b.Cycles() != 1 || b.Transitions() != 0 {
		t.Errorf("first drive: cycles %d transitions %d", b.Cycles(), b.Transitions())
	}
	b.Accumulate([]uint64{0x00})
	if b.Transitions() != 8 {
		t.Errorf("transitions = %d, want 8", b.Transitions())
	}
}

// TestCountTransitionsInto checks the free-function kernel against
// CountTransitions and a per-line reference.
func TestCountTransitionsInto(t *testing.T) {
	words := randomWords(2000, 3)
	const width = 21
	if got, want := CountTransitionsInto(words, width, nil), CountTransitions(words, width); got != want {
		t.Errorf("aggregate: %d != %d", got, want)
	}
	perLine := make([]int64, width)
	total := CountTransitionsInto(words, width, perLine)
	ref := New(width)
	for _, w := range words {
		ref.Drive(w)
	}
	if total != ref.Transitions() {
		t.Errorf("total %d != %d", total, ref.Transitions())
	}
	if !reflect.DeepEqual(perLine, ref.PerLine()) {
		t.Error("per-line counts diverge")
	}
	var sum int64
	for _, c := range perLine {
		sum += c
	}
	if sum != total {
		t.Errorf("per-line sum %d != total %d", sum, total)
	}
}
