package bus

import "math/bits"

// Coupling-aware activity accounting (EXTENSION — beyond the 1998 paper).
// In deep-submicron processes the capacitance *between* adjacent bus lines
// rivals the line-to-ground capacitance, so the energy of a cycle depends
// not only on how many lines toggle but on how neighbouring lines move
// relative to each other:
//
//   - a line toggling next to a quiet line charges the coupling cap once;
//   - two adjacent lines toggling in opposite directions charge it twice
//     (the worst case);
//   - two adjacent lines toggling together leave it uncharged.
//
// CouplingStats classifies every adjacent pair per cycle so codes can be
// ranked under a coupling-dominated energy model: the ranking of codes
// changes when lambda (the coupling-to-ground ratio) grows, which is why
// later bus-encoding work revisits the 1998 conclusions for DSM buses.
type CouplingStats struct {
	// Toggles is the plain self-transition count (as Bus.Transitions).
	Toggles int64
	// Single counts adjacent pairs where exactly one line toggled.
	Single int64
	// Opposite counts adjacent pairs toggling in opposite directions.
	Opposite int64
	// Together counts adjacent pairs toggling in the same direction.
	Together int64
	// Cycles is the number of transitions observed (words - 1).
	Cycles int64
}

// Energy returns the normalized switching energy of the observed
// sequence: self transitions cost 1 each; coupling events cost lambda
// for a single-toggle pair and 2*lambda for an opposite-toggle pair
// (the standard DSM bus energy model; lambda is Cc/Cg).
func (c CouplingStats) Energy(lambda float64) float64 {
	return float64(c.Toggles) + lambda*(float64(c.Single)+2*float64(c.Opposite))
}

// AvgEnergyPerCycle normalizes Energy by the observed cycles.
func (c CouplingStats) AvgEnergyPerCycle(lambda float64) float64 {
	if c.Cycles == 0 {
		return 0
	}
	return c.Energy(lambda) / float64(c.Cycles)
}

// CouplingTransitions classifies the activity of driving seq onto a bus
// of the given width, pair by adjacent pair.
func CouplingTransitions(seq []uint64, width int) CouplingStats {
	m := Mask(width)
	var st CouplingStats
	for i := 1; i < len(seq); i++ {
		prev, cur := seq[i-1]&m, seq[i]&m
		diff := prev ^ cur
		st.Toggles += int64(bits.OnesCount64(diff))
		st.Cycles++
		// Rising lines: 0 -> 1 (falling is the complement within diff).
		rising := diff & cur
		for line := 0; line < width-1; line++ {
			aT := diff>>uint(line)&1 == 1
			bT := diff>>uint(line+1)&1 == 1
			switch {
			case aT && bT:
				aUp := rising>>uint(line)&1 == 1
				bUp := rising>>uint(line+1)&1 == 1
				if aUp == bUp {
					st.Together++
				} else {
					st.Opposite++
				}
			case aT || bT:
				st.Single++
			}
		}
	}
	return st
}
