package bus

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestTransposeRoundTrip: Transpose64 is an involution, so PackPlanes
// followed by UnpackPlanes must reproduce the input words exactly.
func TestTransposeRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 31, 63, 64} {
		words := randomWords(n, int64(100+n))
		var planes [64]uint64
		PackPlanes(words, &planes)
		got := make([]uint64, n)
		UnpackPlanes(&planes, got)
		if n > 0 && !reflect.DeepEqual(got, words) {
			t.Errorf("n=%d: round trip diverged", n)
		}
	}
}

// TestPackPlanesLayout: bit i of planes[b] must be bit b of words[i].
func TestPackPlanesLayout(t *testing.T) {
	words := randomWords(64, 4)
	var planes [64]uint64
	PackPlanes(words, &planes)
	for b := 0; b < 64; b++ {
		for i := 0; i < 64; i++ {
			if (planes[b]>>uint(i))&1 != (words[i]>>uint(b))&1 {
				t.Fatalf("plane %d lane %d: bit mismatch", b, i)
			}
		}
	}
}

// TestPackPlanesShortBlock: lanes beyond len(words) must be zero in
// every plane, so a partial block never leaks stale data.
func TestPackPlanesShortBlock(t *testing.T) {
	var planes [64]uint64
	for i := range planes {
		planes[i] = ^uint64(0) // poison
	}
	words := []uint64{^uint64(0), ^uint64(0), ^uint64(0)}
	PackPlanes(words, &planes)
	for b := 0; b < 64; b++ {
		if planes[b] != 0b111 {
			t.Fatalf("plane %d = %#x, want 0b111", b, planes[b])
		}
	}
}

// checkParity drives words through a scalar reference bus and a
// bit-sliced bus (chopped into chunks of chunkLen) and requires every
// observable statistic to match bit-for-bit.
func checkParity(t *testing.T, width int, words []uint64, chunkLen int, aggOnly bool) {
	t.Helper()
	mk := New
	if aggOnly {
		mk = NewAggregate
	}
	ref := mk(width)
	ref.Accumulate(words)
	bs := mk(width)
	for lo := 0; lo < len(words); lo += chunkLen {
		hi := lo + chunkLen
		if hi > len(words) {
			hi = len(words)
		}
		bs.AccumulateBitsliced(words[lo:hi])
	}
	if bs.Transitions() != ref.Transitions() || bs.Cycles() != ref.Cycles() || bs.MaxPerCycle() != ref.MaxPerCycle() {
		t.Errorf("width=%d len=%d chunk=%d agg=%v: bitsliced %d/%d/%d vs scalar %d/%d/%d",
			width, len(words), chunkLen, aggOnly,
			bs.Transitions(), bs.Cycles(), bs.MaxPerCycle(),
			ref.Transitions(), ref.Cycles(), ref.MaxPerCycle())
	}
	if !reflect.DeepEqual(bs.PerLine(), ref.PerLine()) {
		t.Errorf("width=%d len=%d chunk=%d agg=%v: per-line counts diverge",
			width, len(words), chunkLen, aggOnly)
	}
}

// TestAccumulateBitslicedParity sweeps widths and the chunk lengths the
// issue pins (1, 63, 64, 65, 4096) plus uneven re-chunkings, in both
// per-line and aggregate modes.
func TestAccumulateBitslicedParity(t *testing.T) {
	for _, width := range []int{1, 2, 7, 16, 17, 21, 32, 33, 63, 64} {
		for _, n := range []int{1, 2, 63, 64, 65, 127, 128, 129, 4096} {
			words := randomWords(n, int64(width*10000+n))
			for _, chunkLen := range []int{1, 63, 64, 65, 4096} {
				if chunkLen > n && chunkLen != 4096 {
					continue
				}
				checkParity(t, width, words, chunkLen, false)
				checkParity(t, width, words, chunkLen, true)
			}
		}
	}
}

// TestAccumulateBitslicedRepeats: runs of identical and near-identical
// words (the DMA/burst shape) exercise the diff==0 paths on both sides.
func TestAccumulateBitslicedRepeats(t *testing.T) {
	words := make([]uint64, 300)
	for i := range words {
		words[i] = 0xABCD
		if i%37 == 0 {
			words[i] = uint64(i)
		}
	}
	checkParity(t, 20, words, 64, false)
	checkParity(t, 20, words, 64, true)
}

// TestAccumulateBitslicedPrimed: parity must also hold when the bus was
// already driven (lane 0 diffs against the carried-in line state rather
// than being consumed as the initializer).
func TestAccumulateBitslicedPrimed(t *testing.T) {
	words := randomWords(200, 7)
	ref := New(29)
	bs := New(29)
	ref.Prime(0x12345678)
	bs.Prime(0x12345678)
	ref.Accumulate(words)
	bs.AccumulateBitsliced(words)
	if bs.Transitions() != ref.Transitions() || bs.Cycles() != ref.Cycles() || bs.MaxPerCycle() != ref.MaxPerCycle() {
		t.Errorf("primed: bitsliced %d/%d/%d vs scalar %d/%d/%d",
			bs.Transitions(), bs.Cycles(), bs.MaxPerCycle(),
			ref.Transitions(), ref.Cycles(), ref.MaxPerCycle())
	}
	if !reflect.DeepEqual(bs.PerLine(), ref.PerLine()) {
		t.Error("primed: per-line counts diverge")
	}
}

// TestAccumulatePlanesIgnoresDirtyHighLanes: words may carry garbage
// above the bus width and lanes >= n may be nonzero; AccumulatePlanes
// documents that both are ignored.
func TestAccumulatePlanesIgnoresDirtyHighLanes(t *testing.T) {
	words := randomWords(40, 8) // full 64-bit garbage, bus is narrower
	ref := New(13)
	ref.Accumulate(words)
	var planes [64]uint64
	PackPlanes(words, &planes)
	// Poison the unused lanes of every plane the kernel may read.
	poison := ^uint64(0)
	poison <<= 40
	for b := 0; b < 13; b++ {
		planes[b] |= poison
	}
	bs := New(13)
	bs.AccumulatePlanes(&planes, 40)
	if bs.Transitions() != ref.Transitions() || bs.MaxPerCycle() != ref.MaxPerCycle() {
		t.Errorf("dirty lanes: bitsliced %d/%d vs scalar %d/%d",
			bs.Transitions(), bs.MaxPerCycle(), ref.Transitions(), ref.MaxPerCycle())
	}
	if !reflect.DeepEqual(bs.PerLine(), ref.PerLine()) {
		t.Error("dirty lanes: per-line counts diverge")
	}
}

// FuzzTransposeRoundTrip fuzzes the two properties the issue pins:
// pack→unpack is the identity, and scalar vs bit-sliced statistics
// agree for arbitrary widths and data.
func FuzzTransposeRoundTrip(f *testing.F) {
	f.Add(uint8(32), int64(1), uint16(64))
	f.Add(uint8(1), int64(2), uint16(1))
	f.Add(uint8(64), int64(3), uint16(65))
	f.Add(uint8(21), int64(4), uint16(4096))
	f.Fuzz(func(t *testing.T, widthB uint8, seed int64, nB uint16) {
		width := int(widthB)%64 + 1
		n := int(nB)%4096 + 1
		words := randomWords(n, seed)
		block := words
		if len(block) > 64 {
			block = block[:64]
		}
		var planes [64]uint64
		PackPlanes(block, &planes)
		got := make([]uint64, len(block))
		UnpackPlanes(&planes, got)
		if !reflect.DeepEqual(got, block) {
			t.Fatal("pack→unpack is not the identity")
		}
		checkParity(t, width, words, 64, false)
		checkParity(t, width, words, 64, true)
	})
}

func benchWords(n int) []uint64 {
	rng := rand.New(rand.NewSource(99))
	out := make([]uint64, n)
	for i := range out {
		// Realistic address-trace shape: mostly sequential with jumps.
		if i == 0 || rng.Intn(8) == 0 {
			out[i] = rng.Uint64() & 0xFFFFFFFF
		} else {
			out[i] = out[i-1] + 4
		}
	}
	return out
}

// BenchmarkAccumulatePerLine: the scalar per-line kernel (the path the
// diff==0 early exit and the bit-sliced kernel both target).
func BenchmarkAccumulatePerLine(b *testing.B) {
	words := benchWords(1 << 16)
	bus := New(32)
	b.SetBytes(int64(len(words) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Reset()
		bus.Accumulate(words)
	}
}

// BenchmarkAccumulatePerLineBitsliced: the same workload through the
// transposed bit-plane kernel.
func BenchmarkAccumulatePerLineBitsliced(b *testing.B) {
	words := benchWords(1 << 16)
	bus := New(32)
	b.SetBytes(int64(len(words) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Reset()
		bus.AccumulateBitsliced(words)
	}
}

// BenchmarkAccumulateAggregate: scalar aggregate-only baseline, for the
// README performance table.
func BenchmarkAccumulateAggregate(b *testing.B) {
	words := benchWords(1 << 16)
	bus := NewAggregate(32)
	b.SetBytes(int64(len(words) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Reset()
		bus.Accumulate(words)
	}
}
