package bench

import "fmt"

// Service load-harness record (BENCH_serve.json) and its guard bands.
// The record captures one cmd/busencload run against a live busencd:
// mixed upload/eval/poll traffic from N concurrent tenants, including a
// forced queue-full 503 and a mid-run SIGTERM drain. Two fields are
// correctness invariants and bind on any machine: Parity (every job's
// results match an in-process evaluation of the same stream) and
// LostJobs (every 202-accepted job reached a terminal state across the
// drain — the zero-lost-jobs guarantee). The throughput band, like
// every other ratio in this package, only binds across a same-machine
// boundary; a cross-box comparison skips it with an explicit note.

// ServeBenchName is the identity value of a serve record.
const ServeBenchName = "ServeLoad"

// ServeRecord mirrors BENCH_serve.json.
type ServeRecord struct {
	Bench      string `json:"bench"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Tenants    int   `json:"tenants"`
	Workers    int   `json:"workers"`
	QueueCap   int   `json:"queue_cap"`
	DurationNs int64 `json:"duration_ns"`

	// Traffic totals over the run.
	JobsDone     int64 `json:"jobs_done"`      // async jobs that reached "done"
	SyncEvals    int64 `json:"sync_evals"`     // synchronous /eval responses
	Uploads      int64 `json:"uploads"`        // accepted POST /traces
	CacheHits    int64 `json:"cache_hits"`     // responses served from the result cache
	QueueFull503 int64 `json:"queue_full_503"` // backpressure rejections observed
	LostJobs     int64 `json:"lost_jobs"`      // accepted jobs that never went terminal

	// End-to-end eval latency percentiles (enqueue/request to result).
	P50Ns int64 `json:"p50_ns"`
	P95Ns int64 `json:"p95_ns"`
	P99Ns int64 `json:"p99_ns"`

	// ThroughputJPS is completed evaluations (sync + async) per second.
	ThroughputJPS float64 `json:"throughput_jps"`

	// Parity is true when every collected result matched the in-process
	// reference evaluation of the same generated stream.
	Parity bool `json:"parity"`
}

// Validate reports the first structurally missing field of a serve
// record.
func (r ServeRecord) Validate() error {
	switch {
	case r.Bench != ServeBenchName:
		return fmt.Errorf("bench = %q, want %q", r.Bench, ServeBenchName)
	case r.NumCPU <= 0:
		return fmt.Errorf("missing field num_cpu")
	case r.Tenants <= 0:
		return fmt.Errorf("missing field tenants")
	case r.Workers <= 0:
		return fmt.Errorf("missing field workers")
	case r.QueueCap <= 0:
		return fmt.Errorf("missing field queue_cap")
	case r.DurationNs <= 0:
		return fmt.Errorf("missing field duration_ns")
	case r.JobsDone <= 0:
		return fmt.Errorf("missing field jobs_done")
	case r.P50Ns <= 0 || r.P95Ns <= 0 || r.P99Ns <= 0:
		return fmt.Errorf("missing latency percentiles")
	case r.ThroughputJPS <= 0:
		return fmt.Errorf("missing field throughput_jps")
	}
	return nil
}

// ReadServe loads and validates a serve record.
func ReadServe(path string) (ServeRecord, error) {
	var r ServeRecord
	if err := readJSON(path, &r); err != nil {
		return r, err
	}
	if err := r.Validate(); err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	return r, nil
}

// CompareServe holds a fresh serve record against the committed one.
// Parity and the zero-lost-jobs invariant always bind; the throughput
// floor (relative tol.Slowdown band against the committed record) binds
// only across a same-machine boundary and is skipped with a note
// otherwise — never silently.
func CompareServe(old, fresh ServeRecord, tol Tolerance) ([]Violation, []string) {
	var out []Violation
	var notes []string
	if err := old.Validate(); err != nil {
		out = append(out, Violation{Record: "serve", Field: "baseline", Msg: err.Error()})
	}
	if err := fresh.Validate(); err != nil {
		out = append(out, Violation{Record: "serve", Field: "fresh", Msg: err.Error()})
		return out, notes
	}
	if !fresh.Parity {
		out = append(out, Violation{Record: "serve", Field: "parity",
			Msg: "load-harness results diverge from the in-process reference evaluation"})
	}
	if fresh.LostJobs > 0 {
		out = append(out, Violation{Record: "serve", Field: "lost_jobs",
			New: float64(fresh.LostJobs),
			Msg: "accepted jobs never reached a terminal state (drain dropped work)"})
	}
	if !SameMachine(old.NumCPU, fresh.NumCPU, old.GoVersion, fresh.GoVersion) {
		notes = append(notes, fmt.Sprintf(
			"serve: throughput_jps band skipped: cross-machine baseline (%d/%s vs %d/%s)",
			old.NumCPU, old.GoVersion, fresh.NumCPU, fresh.GoVersion))
		return out, notes
	}
	floor := old.ThroughputJPS * (1 - tol.Slowdown)
	if fresh.ThroughputJPS < floor {
		out = append(out, Violation{
			Record: "serve", Field: "throughput_jps",
			Old: old.ThroughputJPS, New: fresh.ThroughputJPS,
			Msg: fmt.Sprintf("service throughput dropped more than %.0f%% below the committed record (floor %.3f)",
				tol.Slowdown*100, floor),
		})
	}
	return out, notes
}
