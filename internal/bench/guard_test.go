package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

// engineFixture is a healthy committed-style record.
func engineFixture() EngineRecord {
	return EngineRecord{
		Bench: EngineBenchName, Source: "synthetic", GOMAXPROCS: 1,
		ReferenceNs: 120e6, EngineColdNs: 80e6, EngineWarmNs: 5e6, WarmIters: 5,
		SpeedupCold: 1.5, SpeedupWarm: 24, Parity: true,
		Parallel: ParallelRecord{GOMAXPROCS: 4, EngineWarmNs: 4e6, SpeedupWarm: 30, SpeedupVsSerial: 1.25},
	}
}

func parallelFixture() ParallelEngineRecord {
	return ParallelEngineRecord{
		Bench: ParallelBenchName, Source: "synthetic", NumCPU: 8, GOMAXPROCS: 8,
		Shards: 0, Codecs: []string{"binary", "t0", "businvert"}, WarmIters: 5,
		ReferenceNs: 120e6, SerialWarmNs: 5e6, ParallelWarmNs: 2e6,
		SpeedupParallel: 2.5, SpeedupVsReference: 60, Parity: true,
	}
}

func bitsliceFixture() BitsliceRecord {
	return BitsliceRecord{
		Bench: BitsliceBenchName, Entries: 1 << 20, ChunkLen: 4096,
		NumCPU: 8, GOMAXPROCS: 1, Codecs: []string{"binary", "gray", "offset", "incxor"},
		PerLine: true, WarmIters: 5, ScalarNs: 60e6, PlaneNs: 10e6,
		SpeedupBitslice: 6, Parity: true,
	}
}

func distFixture() DistRecord {
	return DistRecord{
		Bench: DistBenchName, Entries: 1 << 18, NumCPU: 8, GOMAXPROCS: 8,
		Workers: 3, Shards: 12, Codecs: []string{"binary", "gray", "t0"}, WarmIters: 3,
		SerialWarmNs: 90e6, DistWarmNs: 45e6, SpeedupDist: 2, Parity: true,
		TCP: &DistTCPRecord{
			Peers: 2, Window: 4, Shards: 64, Entries: 1 << 18,
			PipelinedNs: 50e6, InFlight1Ns: 80e6, SpeedupPipelined: 1.6, Parity: true,
			TraceShipBytes: 2.2e6, DedupReshipBytes: 0, DedupHits: 2,
		},
	}
}

func serveFixture() ServeRecord {
	return ServeRecord{
		Bench: ServeBenchName, NumCPU: 8, GoVersion: "go1.22.1", GOMAXPROCS: 8,
		Tenants: 32, Workers: 4, QueueCap: 8, DurationNs: 5e9,
		JobsDone: 400, SyncEvals: 120, Uploads: 40, CacheHits: 90, QueueFull503: 3,
		LostJobs: 0, P50Ns: 4e6, P95Ns: 20e6, P99Ns: 45e6,
		ThroughputJPS: 104, Parity: true,
	}
}

func streamFixture() StreamRecord {
	return StreamRecord{
		Bench: StreamBenchName, Entries: 1 << 20, FileBytes: 2.8e6, ChunkLen: 4096,
		Depth: 4, GOMAXPROCS: 4, Codecs: []string{"binary", "t0"},
		MaterializedNs: 73e6, MaterializedAllocBytes: 17e6,
		StreamingNs: 46e6, StreamingAllocBytes: 7e5,
		SpeedupStreaming: 1.59, AllocRatio: 24.6, Parity: true,
	}
}

// TestGuardPassesOnIdenticalRecords: comparing a record against itself
// must be clean — this is what CI sees when nothing changed.
func TestGuardPassesOnIdenticalRecords(t *testing.T) {
	tol := DefaultTolerance()
	if vs := CompareEngine(engineFixture(), engineFixture(), tol); len(vs) != 0 {
		t.Errorf("identical engine records flagged: %v", vs)
	}
	if vs := CompareStream(streamFixture(), streamFixture(), tol); len(vs) != 0 {
		t.Errorf("identical stream records flagged: %v", vs)
	}
	if vs := CompareParallel(parallelFixture(), parallelFixture(), tol); len(vs) != 0 {
		t.Errorf("identical parallel records flagged: %v", vs)
	}
	if vs := CompareBitslice(bitsliceFixture(), bitsliceFixture(), tol); len(vs) != 0 {
		t.Errorf("identical bitslice records flagged: %v", vs)
	}
	if vs, notes := CompareDist(distFixture(), distFixture(), tol); len(vs) != 0 || len(notes) != 0 {
		t.Errorf("identical dist records flagged: %v (notes %v)", vs, notes)
	}
	if vs, notes := CompareServe(serveFixture(), serveFixture(), tol); len(vs) != 0 || len(notes) != 0 {
		t.Errorf("identical serve records flagged: %v (notes %v)", vs, notes)
	}
}

// TestGuardServe pins the serve record's bands: the zero-lost-jobs and
// parity invariants bind everywhere, the throughput floor binds only
// same-machine (skipped with a note across boxes).
func TestGuardServe(t *testing.T) {
	tol := DefaultTolerance()
	old := serveFixture()

	lost := serveFixture()
	lost.LostJobs = 2
	vs, _ := CompareServe(old, lost, tol)
	if len(vs) != 1 || vs[0].Field != "lost_jobs" {
		t.Errorf("lost jobs: violations = %v, want one lost_jobs violation", vs)
	}

	bad := serveFixture()
	bad.Parity = false
	vs, _ = CompareServe(old, bad, tol)
	if len(vs) != 1 || vs[0].Field != "parity" {
		t.Errorf("parity=false: violations = %v", vs)
	}

	slow := serveFixture()
	slow.ThroughputJPS = old.ThroughputJPS * 0.5 // beyond the 25% band
	vs, notes := CompareServe(old, slow, tol)
	if len(vs) != 1 || vs[0].Field != "throughput_jps" || len(notes) != 0 {
		t.Errorf("2x throughput drop: violations = %v, notes = %v", vs, notes)
	}
	onFloor := serveFixture()
	onFloor.ThroughputJPS = old.ThroughputJPS * (1 - tol.Slowdown)
	if vs, _ := CompareServe(old, onFloor, tol); len(vs) != 0 {
		t.Errorf("throughput exactly on the floor rejected: %v", vs)
	}

	// Cross-machine: the ratio band skips loudly, the invariants hold.
	cross := serveFixture()
	cross.NumCPU = 2
	cross.ThroughputJPS = 1 // would break the band if it bound
	vs, notes = CompareServe(old, cross, tol)
	if len(vs) != 0 {
		t.Errorf("cross-box throughput drop flagged: %v", vs)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "skipped") {
		t.Errorf("notes = %v, want one explicit skip note", notes)
	}
	cross.LostJobs = 1
	vs, _ = CompareServe(old, cross, tol)
	if len(vs) != 1 || vs[0].Field != "lost_jobs" {
		t.Errorf("cross-box lost jobs: violations = %v", vs)
	}
}

// TestGuardFailsOnInjected2xSlowdown is the acceptance criterion: a
// fresh record whose engine got twice as slow (speedup halved) must be
// rejected, and the same for the streaming pipeline.
func TestGuardFailsOnInjected2xSlowdown(t *testing.T) {
	tol := DefaultTolerance()

	fresh := engineFixture()
	fresh.EngineWarmNs *= 2
	fresh.SpeedupWarm /= 2
	vs := CompareEngine(engineFixture(), fresh, tol)
	if len(vs) != 1 || vs[0].Field != "speedup_warm" {
		t.Errorf("2x engine slowdown: violations = %v, want one speedup_warm violation", vs)
	}

	sfresh := streamFixture()
	sfresh.StreamingNs *= 2
	sfresh.SpeedupStreaming /= 2
	svs := CompareStream(streamFixture(), sfresh, tol)
	if len(svs) != 1 || svs[0].Field != "speedup_streaming" {
		t.Errorf("2x stream slowdown: violations = %v, want one speedup_streaming violation", svs)
	}

	pfresh := parallelFixture()
	pfresh.ParallelWarmNs *= 2
	pfresh.SpeedupParallel /= 2
	pfresh.SpeedupVsReference /= 2
	pvs := CompareParallel(parallelFixture(), pfresh, tol)
	if len(pvs) != 2 || pvs[0].Field != "speedup_parallel" || pvs[1].Field != "speedup_vs_reference" {
		t.Errorf("2x parallel slowdown: violations = %v, want both speedup violations", pvs)
	}

	// A halved bitslice speedup (6 -> 3) breaks both the absolute 5x
	// floor and the relative band against the committed record.
	bfresh := bitsliceFixture()
	bfresh.PlaneNs *= 2
	bfresh.SpeedupBitslice /= 2
	bvs := CompareBitslice(bitsliceFixture(), bfresh, tol)
	if len(bvs) != 2 || bvs[0].Field != "speedup_bitslice" || bvs[1].Field != "speedup_bitslice" {
		t.Errorf("2x bitslice slowdown: violations = %v, want floor + relative violations", bvs)
	}

	// A halved dist speedup (2 -> 1) on an 8-CPU box breaks both the
	// absolute 1.3x floor and the relative band.
	dfresh := distFixture()
	dfresh.DistWarmNs *= 2
	dfresh.SpeedupDist /= 2
	dvs, _ := CompareDist(distFixture(), dfresh, tol)
	if len(dvs) != 2 || dvs[0].Field != "speedup_dist" || dvs[1].Field != "speedup_dist" {
		t.Errorf("2x dist slowdown: violations = %v, want floor + relative violations", dvs)
	}
}

// TestGuardBoundary: a fresh speedup exactly on the tolerance floor
// passes; epsilon below it fails.
func TestGuardBoundary(t *testing.T) {
	tol := Tolerance{Slowdown: 0.25, AllocCollapse: 2}
	old := engineFixture()

	onFloor := engineFixture()
	onFloor.SpeedupWarm = old.SpeedupWarm * 0.75
	if vs := CompareEngine(old, onFloor, tol); len(vs) != 0 {
		t.Errorf("exact boundary rejected: %v", vs)
	}

	below := engineFixture()
	below.SpeedupWarm = old.SpeedupWarm*0.75 - 1e-9
	if vs := CompareEngine(old, below, tol); len(vs) != 1 {
		t.Errorf("just below boundary accepted: %v", vs)
	}

	sold := streamFixture()
	sOnFloor := streamFixture()
	sOnFloor.AllocRatio = sold.AllocRatio / 2
	if vs := CompareStream(sold, sOnFloor, tol); len(vs) != 0 {
		t.Errorf("alloc-ratio exact boundary rejected: %v", vs)
	}
	sBelow := streamFixture()
	sBelow.AllocRatio = sold.AllocRatio/2 - 1e-9
	if vs := CompareStream(sold, sBelow, tol); len(vs) != 1 || vs[0].Field != "alloc_ratio" {
		t.Errorf("alloc-ratio collapse accepted: %v", vs)
	}
}

// TestGuardParity: parity=false in the fresh record fails regardless of
// the timings.
func TestGuardParity(t *testing.T) {
	fresh := engineFixture()
	fresh.Parity = false
	fresh.SpeedupWarm *= 2 // even faster — still must fail
	vs := CompareEngine(engineFixture(), fresh, DefaultTolerance())
	if len(vs) != 1 || vs[0].Field != "parity" {
		t.Errorf("parity=false: violations = %v, want one parity violation", vs)
	}

	sfresh := streamFixture()
	sfresh.Parity = false
	svs := CompareStream(streamFixture(), sfresh, DefaultTolerance())
	if len(svs) != 1 || svs[0].Field != "parity" {
		t.Errorf("stream parity=false: violations = %v", svs)
	}

	pfresh := parallelFixture()
	pfresh.Parity = false
	pvs := CompareParallel(parallelFixture(), pfresh, DefaultTolerance())
	if len(pvs) != 1 || pvs[0].Field != "parity" {
		t.Errorf("parallel parity=false: violations = %v", pvs)
	}

	bfresh := bitsliceFixture()
	bfresh.Parity = false
	bvs := CompareBitslice(bitsliceFixture(), bfresh, DefaultTolerance())
	if len(bvs) != 1 || bvs[0].Field != "parity" {
		t.Errorf("bitslice parity=false: violations = %v", bvs)
	}

	dfresh := distFixture()
	dfresh.Parity = false
	dfresh.NumCPU = 1 // parity binds even where the speedup floor skips
	dvs, _ := CompareDist(distFixture(), dfresh, DefaultTolerance())
	if len(dvs) != 1 || dvs[0].Field != "parity" {
		t.Errorf("dist parity=false: violations = %v", dvs)
	}
}

// TestGuardBitsliceFloor: the absolute floor binds on any machine —
// including across machine boundaries where every relative band is
// skipped — and a disabled floor (0) lets a slow record through.
func TestGuardBitsliceFloor(t *testing.T) {
	tol := DefaultTolerance()
	old := bitsliceFixture()

	crossBox := bitsliceFixture()
	crossBox.NumCPU = 4 // different machine: relative bands skip
	crossBox.SpeedupBitslice = 4.9
	vs := CompareBitslice(old, crossBox, tol)
	if len(vs) != 1 || vs[0].Field != "speedup_bitslice" || !strings.Contains(vs[0].Msg, "floor") {
		t.Errorf("cross-box sub-floor speedup: violations = %v, want the absolute floor only", vs)
	}

	onFloor := bitsliceFixture()
	onFloor.NumCPU = 4
	onFloor.SpeedupBitslice = tol.BitsliceFloor
	if vs := CompareBitslice(old, onFloor, tol); len(vs) != 0 {
		t.Errorf("speedup exactly on the floor rejected: %v", vs)
	}

	noFloor := tol
	noFloor.BitsliceFloor = 0
	if vs := CompareBitslice(old, crossBox, noFloor); len(vs) != 0 {
		t.Errorf("disabled floor still flagged: %v", vs)
	}
}

// TestGuardDistFloor: the absolute distributed-speedup floor binds only
// on machines with DistFloorMinCPU or more CPUs; below that it is
// skipped with an explicit note, never a silent pass.
func TestGuardDistFloor(t *testing.T) {
	tol := DefaultTolerance()
	old := distFixture()

	slow := distFixture()
	slow.SpeedupDist = 1.1 // below the 1.3x floor on an 8-CPU box
	vs, notes := CompareDist(old, slow, tol)
	if len(vs) != 2 || vs[0].Field != "speedup_dist" || !strings.Contains(vs[0].Msg, "floor") {
		t.Errorf("sub-floor speedup on 8 CPUs: violations = %v, want floor + relative", vs)
	}
	if len(notes) != 0 {
		t.Errorf("floor bound yet notes emitted: %v", notes)
	}

	// Same sub-floor speedup on a 1-CPU box: no violation, loud notes —
	// one for the dist floor, one for the tcp pipelining floor.
	oneCPU := distFixture()
	oneCPU.NumCPU = 1
	oneCPU.SpeedupDist = 0.9
	vs, notes = CompareDist(old, oneCPU, tol)
	if len(vs) != 0 {
		t.Errorf("1-CPU box flagged for missing scaling: %v", vs)
	}
	if len(notes) != 2 || !strings.Contains(notes[0], "skipped: num_cpu=1") || !strings.Contains(notes[1], "skipped: num_cpu=1") {
		t.Errorf("notes = %v, want explicit skipped: num_cpu=1 notes for both floors", notes)
	}

	// Exactly DistFloorMinCPU CPUs and exactly on the floor: binds and
	// passes (cross-box, so the relative band is out of the picture).
	onFloor := distFixture()
	onFloor.NumCPU = DistFloorMinCPU
	onFloor.SpeedupDist = tol.DistFloor
	if vs, notes := CompareDist(old, onFloor, tol); len(vs) != 0 || len(notes) != 0 {
		t.Errorf("speedup exactly on the floor at %d CPUs: violations %v, notes %v", DistFloorMinCPU, vs, notes)
	}

	noFloor := tol
	noFloor.DistFloor = 0
	if vs, notes := CompareDist(old, slow, noFloor); len(vs) != 1 || len(notes) != 0 {
		t.Errorf("disabled floor: violations = %v (want relative band only), notes %v", vs, notes)
	}
}

// TestGuardDistTCP pins the networked sub-record's bands: the record
// must exist, its parity and zero-byte dedup re-ship invariants bind
// on any machine, and the pipelining floor is gated on CPUs and peer
// count with loud skips.
func TestGuardDistTCP(t *testing.T) {
	tol := DefaultTolerance()
	old := distFixture()

	missing := distFixture()
	missing.TCP = nil
	vs, _ := CompareDist(old, missing, tol)
	if len(vs) != 1 || vs[0].Field != "tcp" || !strings.Contains(vs[0].Msg, "no tcp sub-record") {
		t.Errorf("missing tcp sub-record: violations = %v, want one tcp violation", vs)
	}

	noParity := distFixture()
	noParity.TCP.Parity = false
	vs, _ = CompareDist(old, noParity, tol)
	if len(vs) != 1 || vs[0].Field != "tcp.parity" {
		t.Errorf("tcp parity=false: violations = %v", vs)
	}

	reship := distFixture()
	reship.TCP.DedupReshipBytes = 4096
	vs, _ = CompareDist(old, reship, tol)
	if len(vs) != 1 || vs[0].Field != "tcp.dedup_reship_bytes" {
		t.Errorf("re-ship bytes: violations = %v", vs)
	}

	// Sub-floor pipelining gain on a capable box breaks the absolute
	// floor and the relative band.
	slow := distFixture()
	slow.TCP.PipelinedNs = slow.TCP.InFlight1Ns
	slow.TCP.SpeedupPipelined = 1.0
	vs, notes := CompareDist(old, slow, tol)
	if len(vs) != 2 || vs[0].Field != "tcp.speedup_pipelined" || vs[1].Field != "tcp.speedup_pipelined" {
		t.Errorf("sub-floor pipelining: violations = %v, want floor + relative", vs)
	}
	if len(notes) != 0 {
		t.Errorf("floor bound yet notes emitted: %v", notes)
	}

	// One peer: the floor cannot bind (nothing to overlap), loud note.
	// Cross-box (different NumCPU) so the relative bands stay out of it.
	onePeer := distFixture()
	onePeer.NumCPU = 4
	onePeer.TCP.Peers = 1
	onePeer.TCP.SpeedupPipelined = 0.9
	vs, notes = CompareDist(old, onePeer, tol)
	if len(vs) != 0 {
		t.Errorf("one-peer box flagged: %v", vs)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "peers=1") {
			found = true
		}
	}
	if !found {
		t.Errorf("notes = %v, want an explicit peers=1 skip note", notes)
	}

	// Exactly on the floor at exactly TCPFloorMinCPU CPUs: binds, passes.
	onFloor := distFixture()
	onFloor.NumCPU = TCPFloorMinCPU
	onFloor.TCP.SpeedupPipelined = tol.TCPPipelineFloor
	vs, notes = CompareDist(old, onFloor, tol)
	for _, v := range vs {
		if strings.HasPrefix(v.Field, "tcp") {
			t.Errorf("pipelining exactly on the floor rejected: %v", v)
		}
	}

	// A baseline without a tcp sub-record (pre-networking) skips the
	// relative band but still enforces the fresh record's floor.
	oldNoTCP := distFixture()
	oldNoTCP.TCP = nil
	vs, _ = CompareDist(oldNoTCP, slow, tol)
	if len(vs) != 1 || vs[0].Field != "tcp.speedup_pipelined" {
		t.Errorf("nil-baseline tcp: violations = %v, want the absolute floor only", vs)
	}

	noFloor := tol
	noFloor.TCPPipelineFloor = 0
	vs, notes = CompareDist(old, slow, noFloor)
	if len(vs) != 1 || len(notes) != 0 {
		t.Errorf("disabled tcp floor: violations = %v (want relative band only), notes %v", vs, notes)
	}
}

// TestGuardParallelSkipNote: on a 1-CPU box the shard-scaling band is
// skipped with an explicit note, while the vs-reference band and parity
// keep binding.
func TestGuardParallelSkipNote(t *testing.T) {
	tol := DefaultTolerance()
	old := parallelFixture()
	old.NumCPU = 1

	fresh := parallelFixture()
	fresh.NumCPU = 1
	fresh.SpeedupParallel = 0.4 // would break the relative band if it bound
	vs, notes := CompareParallelNotes(old, fresh, tol)
	if len(vs) != 0 {
		t.Errorf("1-CPU shard scaling flagged: %v", vs)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "skipped: num_cpu=1") {
		t.Errorf("notes = %v, want one explicit skipped: num_cpu=1 note", notes)
	}

	// The absolute-throughput band still binds on the same box.
	fresh.SpeedupVsReference /= 2
	vs, _ = CompareParallelNotes(old, fresh, tol)
	if len(vs) != 1 || vs[0].Field != "speedup_vs_reference" {
		t.Errorf("1-CPU vs-reference slowdown: violations = %v", vs)
	}

	// On a multi-core box the band binds and no note is emitted.
	multi := parallelFixture()
	multi.SpeedupParallel = 0.4
	vs, notes = CompareParallelNotes(parallelFixture(), multi, tol)
	if len(vs) != 1 || vs[0].Field != "speedup_parallel" || len(notes) != 0 {
		t.Errorf("8-CPU scaling collapse: violations = %v, notes = %v", vs, notes)
	}
}

// TestSameMachine: unknown identity (zero values from records written
// before the fields existed) counts as comparable; a mismatch in either
// CPU count or toolchain skips the ratio bands.
func TestSameMachine(t *testing.T) {
	cases := []struct {
		oldCPU, freshCPU int
		oldGo, freshGo   string
		want             bool
	}{
		{8, 8, "go1.22.1", "go1.22.1", true},
		{0, 8, "", "go1.22.1", true},
		{8, 0, "go1.22.1", "", true},
		{8, 4, "go1.22.1", "go1.22.1", false},
		{8, 8, "go1.22.1", "go1.23.0", false},
	}
	for _, c := range cases {
		if got := SameMachine(c.oldCPU, c.freshCPU, c.oldGo, c.freshGo); got != c.want {
			t.Errorf("SameMachine(%d, %d, %q, %q) = %v, want %v",
				c.oldCPU, c.freshCPU, c.oldGo, c.freshGo, got, c.want)
		}
	}

	// The skip behavior itself: a 2x engine slowdown measured on a
	// different machine is not a ratio violation, but parity still binds.
	old := engineFixture()
	old.NumCPU = 8
	fresh := engineFixture()
	fresh.NumCPU = 4
	fresh.SpeedupWarm /= 2
	if vs := CompareEngine(old, fresh, DefaultTolerance()); len(vs) != 0 {
		t.Errorf("cross-box ratio drop flagged: %v", vs)
	}
	fresh.Parity = false
	vs := CompareEngine(old, fresh, DefaultTolerance())
	if len(vs) != 1 || vs[0].Field != "parity" {
		t.Errorf("cross-box parity=false: violations = %v", vs)
	}
}

// TestGuardMissingField: a record the producer never filled in (zero
// timings, wrong bench identity) is a violation, not a silent pass.
func TestGuardMissingField(t *testing.T) {
	fresh := engineFixture()
	fresh.SpeedupWarm = 0
	vs := CompareEngine(engineFixture(), fresh, DefaultTolerance())
	if len(vs) != 1 || !strings.Contains(vs[0].Msg, "speedup_warm") {
		t.Errorf("zero speedup_warm: violations = %v", vs)
	}

	wrong := streamFixture()
	wrong.Bench = "Table4"
	svs := CompareStream(streamFixture(), wrong, DefaultTolerance())
	if len(svs) != 1 || !strings.Contains(svs[0].Msg, "bench") {
		t.Errorf("wrong bench identity: violations = %v", svs)
	}

	var zero StreamRecord
	zero.Bench = StreamBenchName
	zvs := CompareStream(streamFixture(), zero, DefaultTolerance())
	if len(zvs) != 1 || !strings.Contains(zvs[0].Msg, "materialized_ns") {
		t.Errorf("all-zero record: violations = %v (want first missing field named)", zvs)
	}

	bwrong := bitsliceFixture()
	bwrong.Bench = "bogus"
	bvs := CompareBitslice(bitsliceFixture(), bwrong, DefaultTolerance())
	if len(bvs) != 1 || !strings.Contains(bvs[0].Msg, "bench") {
		t.Errorf("wrong bitslice bench identity: violations = %v", bvs)
	}
	bzero := bitsliceFixture()
	bzero.PlaneNs = 0
	bzvs := CompareBitslice(bitsliceFixture(), bzero, DefaultTolerance())
	if len(bzvs) != 1 || !strings.Contains(bzvs[0].Msg, "plane_ns") {
		t.Errorf("zero plane_ns: violations = %v", bzvs)
	}
}

// TestGuardOnCommittedRecords is the other half of the acceptance
// criterion: the records committed at the repository root must pass the
// guard against themselves, and fail once a 2x slowdown is injected.
func TestGuardOnCommittedRecords(t *testing.T) {
	root := filepath.Join("..", "..")
	eng, err := ReadEngine(filepath.Join(root, "BENCH_engine.json"))
	if err != nil {
		t.Fatalf("committed engine record unreadable: %v", err)
	}
	str, err := ReadStream(filepath.Join(root, "BENCH_stream.json"))
	if err != nil {
		t.Fatalf("committed stream record unreadable: %v", err)
	}
	par, err := ReadParallel(filepath.Join(root, "BENCH_parallel.json"))
	if err != nil {
		t.Fatalf("committed parallel record unreadable: %v", err)
	}
	bit, err := ReadBitslice(filepath.Join(root, "BENCH_bitslice.json"))
	if err != nil {
		t.Fatalf("committed bitslice record unreadable: %v", err)
	}
	dst, err := ReadDist(filepath.Join(root, "BENCH_dist.json"))
	if err != nil {
		t.Fatalf("committed dist record unreadable: %v", err)
	}
	srv, err := ReadServe(filepath.Join(root, "BENCH_serve.json"))
	if err != nil {
		t.Fatalf("committed serve record unreadable: %v", err)
	}
	tol := DefaultTolerance()
	if vs := CompareEngine(eng, eng, tol); len(vs) != 0 {
		t.Errorf("committed engine record fails its own guard: %v", vs)
	}
	if vs := CompareStream(str, str, tol); len(vs) != 0 {
		t.Errorf("committed stream record fails its own guard: %v", vs)
	}
	if vs := CompareParallel(par, par, tol); len(vs) != 0 {
		t.Errorf("committed parallel record fails its own guard: %v", vs)
	}
	if vs := CompareBitslice(bit, bit, tol); len(vs) != 0 {
		t.Errorf("committed bitslice record fails its own guard: %v", vs)
	}
	if vs, _ := CompareDist(dst, dst, tol); len(vs) != 0 {
		t.Errorf("committed dist record fails its own guard: %v", vs)
	}
	if vs, _ := CompareServe(srv, srv, tol); len(vs) != 0 {
		t.Errorf("committed serve record fails its own guard: %v", vs)
	}

	slow := eng
	slow.EngineWarmNs *= 2
	slow.SpeedupWarm /= 2
	if vs := CompareEngine(eng, slow, tol); len(vs) == 0 {
		t.Error("2x slowdown injected into the committed engine record passed the guard")
	}
	sslow := str
	sslow.StreamingNs *= 2
	sslow.SpeedupStreaming /= 2
	if vs := CompareStream(str, sslow, tol); len(vs) == 0 {
		t.Error("2x slowdown injected into the committed stream record passed the guard")
	}
	pslow := par
	pslow.ParallelWarmNs *= 2
	pslow.SpeedupParallel /= 2
	pslow.SpeedupVsReference /= 2
	if vs := CompareParallel(par, pslow, tol); len(vs) == 0 {
		t.Error("2x slowdown injected into the committed parallel record passed the guard")
	}
	bslow := bit
	bslow.PlaneNs *= 2
	bslow.SpeedupBitslice /= 2
	if vs := CompareBitslice(bit, bslow, tol); len(vs) == 0 {
		t.Error("2x slowdown injected into the committed bitslice record passed the guard")
	}
}

// TestGuardDirs: the directory-level entry point used by cmd/benchguard
// reports unreadable files as violations and compares what it can read.
func TestGuardDirs(t *testing.T) {
	base := filepath.Join("..", "..")
	vs := Guard(base, base, DefaultTolerance())
	if len(vs) != 0 {
		t.Errorf("committed records against themselves: %v", vs)
	}

	empty := t.TempDir()
	vs = Guard(base, empty, DefaultTolerance())
	if len(vs) != 6 {
		t.Errorf("missing fresh records: got %d violations (%v), want 6", len(vs), vs)
	}

	// A fresh dir with a broken engine record still gets the stream,
	// parallel, bitslice, dist and serve pairs compared.
	broken := t.TempDir()
	if err := WriteRecord(filepath.Join(broken, "BENCH_engine.json"), EngineRecord{Bench: "bogus"}); err != nil {
		t.Fatal(err)
	}
	str, err := ReadStream(filepath.Join(base, "BENCH_stream.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteRecord(filepath.Join(broken, "BENCH_stream.json"), str); err != nil {
		t.Fatal(err)
	}
	par, err := ReadParallel(filepath.Join(base, "BENCH_parallel.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteRecord(filepath.Join(broken, "BENCH_parallel.json"), par); err != nil {
		t.Fatal(err)
	}
	bit, err := ReadBitslice(filepath.Join(base, "BENCH_bitslice.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteRecord(filepath.Join(broken, "BENCH_bitslice.json"), bit); err != nil {
		t.Fatal(err)
	}
	dst, err := ReadDist(filepath.Join(base, "BENCH_dist.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteRecord(filepath.Join(broken, "BENCH_dist.json"), dst); err != nil {
		t.Fatal(err)
	}
	srv, err := ReadServe(filepath.Join(base, "BENCH_serve.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteRecord(filepath.Join(broken, "BENCH_serve.json"), srv); err != nil {
		t.Fatal(err)
	}
	vs = Guard(base, broken, DefaultTolerance())
	if len(vs) != 1 || vs[0].Record != "engine" {
		t.Errorf("broken engine + healthy stream/parallel/bitslice/dist/serve: %v, want one engine violation", vs)
	}
}
