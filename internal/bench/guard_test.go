package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

// engineFixture is a healthy committed-style record.
func engineFixture() EngineRecord {
	return EngineRecord{
		Bench: EngineBenchName, Source: "synthetic", GOMAXPROCS: 1,
		ReferenceNs: 120e6, EngineColdNs: 80e6, EngineWarmNs: 5e6, WarmIters: 5,
		SpeedupCold: 1.5, SpeedupWarm: 24, Parity: true,
		Parallel: ParallelRecord{GOMAXPROCS: 4, EngineWarmNs: 4e6, SpeedupWarm: 30, SpeedupVsSerial: 1.25},
	}
}

func parallelFixture() ParallelEngineRecord {
	return ParallelEngineRecord{
		Bench: ParallelBenchName, Source: "synthetic", NumCPU: 8, GOMAXPROCS: 8,
		Shards: 0, Codecs: []string{"binary", "t0", "businvert"}, WarmIters: 5,
		ReferenceNs: 120e6, SerialWarmNs: 5e6, ParallelWarmNs: 2e6,
		SpeedupParallel: 2.5, SpeedupVsReference: 60, Parity: true,
	}
}

func streamFixture() StreamRecord {
	return StreamRecord{
		Bench: StreamBenchName, Entries: 1 << 20, FileBytes: 2.8e6, ChunkLen: 4096,
		Depth: 4, GOMAXPROCS: 4, Codecs: []string{"binary", "t0"},
		MaterializedNs: 73e6, MaterializedAllocBytes: 17e6,
		StreamingNs: 46e6, StreamingAllocBytes: 7e5,
		SpeedupStreaming: 1.59, AllocRatio: 24.6, Parity: true,
	}
}

// TestGuardPassesOnIdenticalRecords: comparing a record against itself
// must be clean — this is what CI sees when nothing changed.
func TestGuardPassesOnIdenticalRecords(t *testing.T) {
	tol := DefaultTolerance()
	if vs := CompareEngine(engineFixture(), engineFixture(), tol); len(vs) != 0 {
		t.Errorf("identical engine records flagged: %v", vs)
	}
	if vs := CompareStream(streamFixture(), streamFixture(), tol); len(vs) != 0 {
		t.Errorf("identical stream records flagged: %v", vs)
	}
	if vs := CompareParallel(parallelFixture(), parallelFixture(), tol); len(vs) != 0 {
		t.Errorf("identical parallel records flagged: %v", vs)
	}
}

// TestGuardFailsOnInjected2xSlowdown is the acceptance criterion: a
// fresh record whose engine got twice as slow (speedup halved) must be
// rejected, and the same for the streaming pipeline.
func TestGuardFailsOnInjected2xSlowdown(t *testing.T) {
	tol := DefaultTolerance()

	fresh := engineFixture()
	fresh.EngineWarmNs *= 2
	fresh.SpeedupWarm /= 2
	vs := CompareEngine(engineFixture(), fresh, tol)
	if len(vs) != 1 || vs[0].Field != "speedup_warm" {
		t.Errorf("2x engine slowdown: violations = %v, want one speedup_warm violation", vs)
	}

	sfresh := streamFixture()
	sfresh.StreamingNs *= 2
	sfresh.SpeedupStreaming /= 2
	svs := CompareStream(streamFixture(), sfresh, tol)
	if len(svs) != 1 || svs[0].Field != "speedup_streaming" {
		t.Errorf("2x stream slowdown: violations = %v, want one speedup_streaming violation", svs)
	}

	pfresh := parallelFixture()
	pfresh.ParallelWarmNs *= 2
	pfresh.SpeedupParallel /= 2
	pfresh.SpeedupVsReference /= 2
	pvs := CompareParallel(parallelFixture(), pfresh, tol)
	if len(pvs) != 2 || pvs[0].Field != "speedup_parallel" || pvs[1].Field != "speedup_vs_reference" {
		t.Errorf("2x parallel slowdown: violations = %v, want both speedup violations", pvs)
	}
}

// TestGuardBoundary: a fresh speedup exactly on the tolerance floor
// passes; epsilon below it fails.
func TestGuardBoundary(t *testing.T) {
	tol := Tolerance{Slowdown: 0.25, AllocCollapse: 2}
	old := engineFixture()

	onFloor := engineFixture()
	onFloor.SpeedupWarm = old.SpeedupWarm * 0.75
	if vs := CompareEngine(old, onFloor, tol); len(vs) != 0 {
		t.Errorf("exact boundary rejected: %v", vs)
	}

	below := engineFixture()
	below.SpeedupWarm = old.SpeedupWarm*0.75 - 1e-9
	if vs := CompareEngine(old, below, tol); len(vs) != 1 {
		t.Errorf("just below boundary accepted: %v", vs)
	}

	sold := streamFixture()
	sOnFloor := streamFixture()
	sOnFloor.AllocRatio = sold.AllocRatio / 2
	if vs := CompareStream(sold, sOnFloor, tol); len(vs) != 0 {
		t.Errorf("alloc-ratio exact boundary rejected: %v", vs)
	}
	sBelow := streamFixture()
	sBelow.AllocRatio = sold.AllocRatio/2 - 1e-9
	if vs := CompareStream(sold, sBelow, tol); len(vs) != 1 || vs[0].Field != "alloc_ratio" {
		t.Errorf("alloc-ratio collapse accepted: %v", vs)
	}
}

// TestGuardParity: parity=false in the fresh record fails regardless of
// the timings.
func TestGuardParity(t *testing.T) {
	fresh := engineFixture()
	fresh.Parity = false
	fresh.SpeedupWarm *= 2 // even faster — still must fail
	vs := CompareEngine(engineFixture(), fresh, DefaultTolerance())
	if len(vs) != 1 || vs[0].Field != "parity" {
		t.Errorf("parity=false: violations = %v, want one parity violation", vs)
	}

	sfresh := streamFixture()
	sfresh.Parity = false
	svs := CompareStream(streamFixture(), sfresh, DefaultTolerance())
	if len(svs) != 1 || svs[0].Field != "parity" {
		t.Errorf("stream parity=false: violations = %v", svs)
	}

	pfresh := parallelFixture()
	pfresh.Parity = false
	pvs := CompareParallel(parallelFixture(), pfresh, DefaultTolerance())
	if len(pvs) != 1 || pvs[0].Field != "parity" {
		t.Errorf("parallel parity=false: violations = %v", pvs)
	}
}

// TestGuardMissingField: a record the producer never filled in (zero
// timings, wrong bench identity) is a violation, not a silent pass.
func TestGuardMissingField(t *testing.T) {
	fresh := engineFixture()
	fresh.SpeedupWarm = 0
	vs := CompareEngine(engineFixture(), fresh, DefaultTolerance())
	if len(vs) != 1 || !strings.Contains(vs[0].Msg, "speedup_warm") {
		t.Errorf("zero speedup_warm: violations = %v", vs)
	}

	wrong := streamFixture()
	wrong.Bench = "Table4"
	svs := CompareStream(streamFixture(), wrong, DefaultTolerance())
	if len(svs) != 1 || !strings.Contains(svs[0].Msg, "bench") {
		t.Errorf("wrong bench identity: violations = %v", svs)
	}

	var zero StreamRecord
	zero.Bench = StreamBenchName
	zvs := CompareStream(streamFixture(), zero, DefaultTolerance())
	if len(zvs) != 1 || !strings.Contains(zvs[0].Msg, "materialized_ns") {
		t.Errorf("all-zero record: violations = %v (want first missing field named)", zvs)
	}
}

// TestGuardOnCommittedRecords is the other half of the acceptance
// criterion: the records committed at the repository root must pass the
// guard against themselves, and fail once a 2x slowdown is injected.
func TestGuardOnCommittedRecords(t *testing.T) {
	root := filepath.Join("..", "..")
	eng, err := ReadEngine(filepath.Join(root, "BENCH_engine.json"))
	if err != nil {
		t.Fatalf("committed engine record unreadable: %v", err)
	}
	str, err := ReadStream(filepath.Join(root, "BENCH_stream.json"))
	if err != nil {
		t.Fatalf("committed stream record unreadable: %v", err)
	}
	par, err := ReadParallel(filepath.Join(root, "BENCH_parallel.json"))
	if err != nil {
		t.Fatalf("committed parallel record unreadable: %v", err)
	}
	tol := DefaultTolerance()
	if vs := CompareEngine(eng, eng, tol); len(vs) != 0 {
		t.Errorf("committed engine record fails its own guard: %v", vs)
	}
	if vs := CompareStream(str, str, tol); len(vs) != 0 {
		t.Errorf("committed stream record fails its own guard: %v", vs)
	}
	if vs := CompareParallel(par, par, tol); len(vs) != 0 {
		t.Errorf("committed parallel record fails its own guard: %v", vs)
	}

	slow := eng
	slow.EngineWarmNs *= 2
	slow.SpeedupWarm /= 2
	if vs := CompareEngine(eng, slow, tol); len(vs) == 0 {
		t.Error("2x slowdown injected into the committed engine record passed the guard")
	}
	sslow := str
	sslow.StreamingNs *= 2
	sslow.SpeedupStreaming /= 2
	if vs := CompareStream(str, sslow, tol); len(vs) == 0 {
		t.Error("2x slowdown injected into the committed stream record passed the guard")
	}
	pslow := par
	pslow.ParallelWarmNs *= 2
	pslow.SpeedupParallel /= 2
	pslow.SpeedupVsReference /= 2
	if vs := CompareParallel(par, pslow, tol); len(vs) == 0 {
		t.Error("2x slowdown injected into the committed parallel record passed the guard")
	}
}

// TestGuardDirs: the directory-level entry point used by cmd/benchguard
// reports unreadable files as violations and compares what it can read.
func TestGuardDirs(t *testing.T) {
	base := filepath.Join("..", "..")
	vs := Guard(base, base, DefaultTolerance())
	if len(vs) != 0 {
		t.Errorf("committed records against themselves: %v", vs)
	}

	empty := t.TempDir()
	vs = Guard(base, empty, DefaultTolerance())
	if len(vs) != 3 {
		t.Errorf("missing fresh records: got %d violations (%v), want 3", len(vs), vs)
	}

	// A fresh dir with a broken engine record still gets the stream and
	// parallel pairs compared.
	broken := t.TempDir()
	if err := WriteRecord(filepath.Join(broken, "BENCH_engine.json"), EngineRecord{Bench: "bogus"}); err != nil {
		t.Fatal(err)
	}
	str, err := ReadStream(filepath.Join(base, "BENCH_stream.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteRecord(filepath.Join(broken, "BENCH_stream.json"), str); err != nil {
		t.Fatal(err)
	}
	par, err := ReadParallel(filepath.Join(base, "BENCH_parallel.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteRecord(filepath.Join(broken, "BENCH_parallel.json"), par); err != nil {
		t.Fatal(err)
	}
	vs = Guard(base, broken, DefaultTolerance())
	if len(vs) != 1 || vs[0].Record != "engine" {
		t.Errorf("broken engine + healthy stream/parallel: %v, want one engine violation", vs)
	}
}
