package bench

import "fmt"

// Distributed-sweep benchmark record (BENCH_dist.json) and its guard
// bands. The record compares end-to-end pricing of a BETR trace —
// decode plus RunFast per codec, serially — against the distributed
// coordinator/worker sweep over the same file with a persistent worker
// pool. Unlike the in-process shard records, the honest multi-core
// claim here is gated on the machine actually having cores: the
// absolute floor binds only when the measuring box reports num_cpu >=
// DistFloorMinCPU, and a box below that skips the floor loudly (an
// explicit note in the guard output), never silently passes.

// DistBenchName is the identity value of a dist record.
const DistBenchName = "DistSweep"

// DistFloorMinCPU is the smallest CPU count on which the absolute
// distributed-speedup floor is enforceable: below this the workers
// timeslice the same cores as the serial baseline and the ratio
// measures scheduling noise, not scaling.
const DistFloorMinCPU = 4

// TCPFloorMinCPU is the smallest CPU count on which the pipelining
// floor of the tcp sub-record is enforceable: on one CPU the loopback
// peers timeslice the coordinator's core, so keeping the wire full
// cannot beat lock-step dispatch by any honest margin.
const TCPFloorMinCPU = 2

// DistRecord mirrors BENCH_dist.json.
type DistRecord struct {
	Bench      string   `json:"bench"`
	Entries    int      `json:"entries"`
	NumCPU     int      `json:"num_cpu"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Workers    int      `json:"workers"`
	Shards     int      `json:"shards"`
	Codecs     []string `json:"codecs"`
	WarmIters  int      `json:"warm_iters"`

	// SerialWarmNs is the best warm end-to-end serial pass: decode the
	// BETR file, RunFast every codec. DistWarmNs is the best warm
	// distributed sweep over the same file on an already-spawned worker
	// pool (spawn cost is paid once, like a long-lived sweep amortizes
	// it).
	SerialWarmNs int64 `json:"serial_warm_ns"`
	DistWarmNs   int64 `json:"dist_warm_ns"`

	SpeedupDist float64 `json:"speedup_dist"` // serial/dist wall time
	Parity      bool    `json:"parity"`       // dist results == RunFast results, all codecs

	// TCP is the networked variant: the same sweep over loopback busencd
	// peers speaking the /dist upgrade protocol.
	TCP *DistTCPRecord `json:"tcp,omitempty"`
}

// DistTCPRecord is the networked sub-record of BENCH_dist.json: the
// sweep dispatched to busencd peers over loopback TCP, measured with
// the pipelined in-flight window against lock-step (window=1)
// dispatch, plus the digest-dedup evidence that a re-sweep ships zero
// trace bytes.
type DistTCPRecord struct {
	Peers   int `json:"peers"`
	Window  int `json:"window"` // pipelined in-flight window per peer
	Shards  int `json:"shards"`
	Entries int `json:"entries"`

	// PipelinedNs is the best warm networked sweep with the in-flight
	// window open; InFlight1Ns is the same sweep with window=1 —
	// lock-step request/response, one RTT of dead wire per shard.
	PipelinedNs int64 `json:"pipelined_ns"`
	InFlight1Ns int64 `json:"inflight1_ns"`

	SpeedupPipelined float64 `json:"speedup_pipelined"` // inflight1/pipelined wall time
	Parity           bool    `json:"parity"`            // networked results == RunFast results, all codecs

	// TraceShipBytes is what the first sweep uploaded to the peers'
	// content-addressed stores; DedupReshipBytes is what the re-sweep
	// shipped (must be 0 — the digest probe found every peer warm), and
	// DedupHits counts those probe hits.
	TraceShipBytes   int64 `json:"trace_ship_bytes"`
	DedupReshipBytes int64 `json:"dedup_reship_bytes"`
	DedupHits        int64 `json:"dedup_hits"`
}

// Validate reports the first structurally missing field of a tcp
// sub-record.
func (r DistTCPRecord) Validate() error {
	switch {
	case r.Peers <= 0:
		return fmt.Errorf("missing field tcp.peers")
	case r.Window <= 1:
		return fmt.Errorf("tcp.window = %d, want > 1 (pipelined)", r.Window)
	case r.Shards <= 0:
		return fmt.Errorf("missing field tcp.shards")
	case r.Entries <= 0:
		return fmt.Errorf("missing field tcp.entries")
	case r.PipelinedNs <= 0:
		return fmt.Errorf("missing field tcp.pipelined_ns")
	case r.InFlight1Ns <= 0:
		return fmt.Errorf("missing field tcp.inflight1_ns")
	case r.SpeedupPipelined <= 0:
		return fmt.Errorf("missing field tcp.speedup_pipelined")
	case r.TraceShipBytes <= 0:
		return fmt.Errorf("missing field tcp.trace_ship_bytes")
	}
	return nil
}

// Validate reports the first structurally missing field of a dist
// record.
func (r DistRecord) Validate() error {
	switch {
	case r.Bench != DistBenchName:
		return fmt.Errorf("bench = %q, want %q", r.Bench, DistBenchName)
	case r.Entries <= 0:
		return fmt.Errorf("missing field entries")
	case r.NumCPU <= 0:
		return fmt.Errorf("missing field num_cpu")
	case r.Workers <= 0:
		return fmt.Errorf("missing field workers")
	case r.Shards <= 0:
		return fmt.Errorf("missing field shards")
	case r.SerialWarmNs <= 0:
		return fmt.Errorf("missing field serial_warm_ns")
	case r.DistWarmNs <= 0:
		return fmt.Errorf("missing field dist_warm_ns")
	case r.SpeedupDist <= 0:
		return fmt.Errorf("missing field speedup_dist")
	case len(r.Codecs) == 0:
		return fmt.Errorf("missing field codecs")
	}
	return nil
}

// ReadDist loads and validates a dist record.
func ReadDist(path string) (DistRecord, error) {
	var r DistRecord
	if err := readJSON(path, &r); err != nil {
		return r, err
	}
	if err := r.Validate(); err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	return r, nil
}

// CompareDist holds a fresh dist record against the committed one.
// Parity always binds — for the process-worker sweep and the tcp
// sub-record alike — and so does the tcp dedup invariant (a re-sweep
// must ship zero trace bytes; dedup is correctness, not speed). The
// absolute DistFloor binds whenever the fresh record's machine has
// DistFloorMinCPU or more CPUs; the tcp pipelining floor binds with
// TCPFloorMinCPU or more CPUs and at least two peers; on smaller boxes
// each floor is skipped with an explicit note (never a silent pass).
// The relative bands against the committed speedups apply only across
// a same-machine boundary, like every other ratio band.
func CompareDist(old, fresh DistRecord, tol Tolerance) ([]Violation, []string) {
	var out []Violation
	var notes []string
	if err := old.Validate(); err != nil {
		out = append(out, Violation{Record: "dist", Field: "baseline", Msg: err.Error()})
	}
	if err := fresh.Validate(); err != nil {
		out = append(out, Violation{Record: "dist", Field: "fresh", Msg: err.Error()})
		return out, notes
	}
	if !fresh.Parity {
		out = append(out, Violation{Record: "dist", Field: "parity",
			Msg: "distributed sweep and sequential RunFast results diverge"})
	}
	if tol.DistFloor > 0 {
		if fresh.NumCPU >= DistFloorMinCPU {
			if fresh.SpeedupDist < tol.DistFloor {
				out = append(out, Violation{
					Record: "dist", Field: "speedup_dist",
					Old: tol.DistFloor, New: fresh.SpeedupDist,
					Msg: fmt.Sprintf("distributed speedup fell below the absolute %.1fx floor on a %d-CPU box", tol.DistFloor, fresh.NumCPU),
				})
			}
		} else {
			notes = append(notes, fmt.Sprintf(
				"dist: speedup_dist floor skipped: num_cpu=%d (absolute %.1fx floor needs >= %d CPUs)",
				fresh.NumCPU, tol.DistFloor, DistFloorMinCPU))
		}
	}
	out = append(out, compareDistTCP(old, fresh, tol, &notes)...)
	if !SameMachine(old.NumCPU, fresh.NumCPU, old.GoVersion, fresh.GoVersion) {
		return out, notes
	}
	if v := speedupDrop("dist", "speedup_dist", old.SpeedupDist, fresh.SpeedupDist, tol.Slowdown); v != nil {
		out = append(out, *v)
	}
	if old.TCP != nil && fresh.TCP != nil {
		if v := speedupDrop("dist", "tcp.speedup_pipelined", old.TCP.SpeedupPipelined, fresh.TCP.SpeedupPipelined, tol.Slowdown); v != nil {
			out = append(out, *v)
		}
	}
	return out, notes
}

// compareDistTCP runs the machine-independent tcp sub-record checks:
// presence, structure, parity, the zero-byte dedup re-ship invariant,
// and the CPU/peer-gated pipelining floor.
func compareDistTCP(old, fresh DistRecord, tol Tolerance, notes *[]string) []Violation {
	var out []Violation
	if fresh.TCP == nil {
		out = append(out, Violation{Record: "dist", Field: "tcp",
			Msg: "fresh record has no tcp sub-record (networked sweep not measured)"})
		return out
	}
	tcp := *fresh.TCP
	if err := tcp.Validate(); err != nil {
		out = append(out, Violation{Record: "dist", Field: "tcp", Msg: err.Error()})
		return out
	}
	if !tcp.Parity {
		out = append(out, Violation{Record: "dist", Field: "tcp.parity",
			Msg: "networked sweep and sequential RunFast results diverge"})
	}
	if tcp.DedupReshipBytes != 0 {
		out = append(out, Violation{
			Record: "dist", Field: "tcp.dedup_reship_bytes",
			New: float64(tcp.DedupReshipBytes),
			Msg: "re-sweep against warm peers shipped trace bytes; digest dedup is broken",
		})
	}
	if tol.TCPPipelineFloor > 0 {
		switch {
		case fresh.NumCPU < TCPFloorMinCPU:
			*notes = append(*notes, fmt.Sprintf(
				"dist: tcp.speedup_pipelined floor skipped: num_cpu=%d (absolute %.1fx floor needs >= %d CPUs)",
				fresh.NumCPU, tol.TCPPipelineFloor, TCPFloorMinCPU))
		case tcp.Peers < 2:
			*notes = append(*notes, fmt.Sprintf(
				"dist: tcp.speedup_pipelined floor skipped: peers=%d (needs >= 2)", tcp.Peers))
		case tcp.SpeedupPipelined < tol.TCPPipelineFloor:
			out = append(out, Violation{
				Record: "dist", Field: "tcp.speedup_pipelined",
				Old: tol.TCPPipelineFloor, New: tcp.SpeedupPipelined,
				Msg: fmt.Sprintf("pipelined dispatch fell below the absolute %.1fx floor over window=1 on a %d-CPU box", tol.TCPPipelineFloor, fresh.NumCPU),
			})
		}
	}
	return out
}
