package bench

import "fmt"

// Distributed-sweep benchmark record (BENCH_dist.json) and its guard
// bands. The record compares end-to-end pricing of a BETR trace —
// decode plus RunFast per codec, serially — against the distributed
// coordinator/worker sweep over the same file with a persistent worker
// pool. Unlike the in-process shard records, the honest multi-core
// claim here is gated on the machine actually having cores: the
// absolute floor binds only when the measuring box reports num_cpu >=
// DistFloorMinCPU, and a box below that skips the floor loudly (an
// explicit note in the guard output), never silently passes.

// DistBenchName is the identity value of a dist record.
const DistBenchName = "DistSweep"

// DistFloorMinCPU is the smallest CPU count on which the absolute
// distributed-speedup floor is enforceable: below this the workers
// timeslice the same cores as the serial baseline and the ratio
// measures scheduling noise, not scaling.
const DistFloorMinCPU = 4

// DistRecord mirrors BENCH_dist.json.
type DistRecord struct {
	Bench      string   `json:"bench"`
	Entries    int      `json:"entries"`
	NumCPU     int      `json:"num_cpu"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Workers    int      `json:"workers"`
	Shards     int      `json:"shards"`
	Codecs     []string `json:"codecs"`
	WarmIters  int      `json:"warm_iters"`

	// SerialWarmNs is the best warm end-to-end serial pass: decode the
	// BETR file, RunFast every codec. DistWarmNs is the best warm
	// distributed sweep over the same file on an already-spawned worker
	// pool (spawn cost is paid once, like a long-lived sweep amortizes
	// it).
	SerialWarmNs int64 `json:"serial_warm_ns"`
	DistWarmNs   int64 `json:"dist_warm_ns"`

	SpeedupDist float64 `json:"speedup_dist"` // serial/dist wall time
	Parity      bool    `json:"parity"`       // dist results == RunFast results, all codecs
}

// Validate reports the first structurally missing field of a dist
// record.
func (r DistRecord) Validate() error {
	switch {
	case r.Bench != DistBenchName:
		return fmt.Errorf("bench = %q, want %q", r.Bench, DistBenchName)
	case r.Entries <= 0:
		return fmt.Errorf("missing field entries")
	case r.NumCPU <= 0:
		return fmt.Errorf("missing field num_cpu")
	case r.Workers <= 0:
		return fmt.Errorf("missing field workers")
	case r.Shards <= 0:
		return fmt.Errorf("missing field shards")
	case r.SerialWarmNs <= 0:
		return fmt.Errorf("missing field serial_warm_ns")
	case r.DistWarmNs <= 0:
		return fmt.Errorf("missing field dist_warm_ns")
	case r.SpeedupDist <= 0:
		return fmt.Errorf("missing field speedup_dist")
	case len(r.Codecs) == 0:
		return fmt.Errorf("missing field codecs")
	}
	return nil
}

// ReadDist loads and validates a dist record.
func ReadDist(path string) (DistRecord, error) {
	var r DistRecord
	if err := readJSON(path, &r); err != nil {
		return r, err
	}
	if err := r.Validate(); err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	return r, nil
}

// CompareDist holds a fresh dist record against the committed one.
// Parity always binds. The absolute DistFloor binds whenever the fresh
// record's machine has DistFloorMinCPU or more CPUs; on smaller boxes
// the floor is skipped with an explicit note (never a silent pass).
// The relative band against the committed speedup applies only across
// a same-machine boundary, like every other ratio band.
func CompareDist(old, fresh DistRecord, tol Tolerance) ([]Violation, []string) {
	var out []Violation
	var notes []string
	if err := old.Validate(); err != nil {
		out = append(out, Violation{Record: "dist", Field: "baseline", Msg: err.Error()})
	}
	if err := fresh.Validate(); err != nil {
		out = append(out, Violation{Record: "dist", Field: "fresh", Msg: err.Error()})
		return out, notes
	}
	if !fresh.Parity {
		out = append(out, Violation{Record: "dist", Field: "parity",
			Msg: "distributed sweep and sequential RunFast results diverge"})
	}
	if tol.DistFloor > 0 {
		if fresh.NumCPU >= DistFloorMinCPU {
			if fresh.SpeedupDist < tol.DistFloor {
				out = append(out, Violation{
					Record: "dist", Field: "speedup_dist",
					Old: tol.DistFloor, New: fresh.SpeedupDist,
					Msg: fmt.Sprintf("distributed speedup fell below the absolute %.1fx floor on a %d-CPU box", tol.DistFloor, fresh.NumCPU),
				})
			}
		} else {
			notes = append(notes, fmt.Sprintf(
				"dist: speedup_dist floor skipped: num_cpu=%d (absolute %.1fx floor needs >= %d CPUs)",
				fresh.NumCPU, tol.DistFloor, DistFloorMinCPU))
		}
	}
	if !SameMachine(old.NumCPU, fresh.NumCPU, old.GoVersion, fresh.GoVersion) {
		return out, notes
	}
	if v := speedupDrop("dist", "speedup_dist", old.SpeedupDist, fresh.SpeedupDist, tol.Slowdown); v != nil {
		out = append(out, *v)
	}
	return out, notes
}
