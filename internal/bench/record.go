// Package bench defines the machine-readable benchmark records the
// repository commits (BENCH_engine.json, BENCH_stream.json) and the
// regression-guard logic that compares fresh records against them.
// cmd/paper writes these records; cmd/benchguard enforces them in CI.
//
// The guard compares machine-relative ratios (speedups, alloc ratios),
// not raw nanoseconds: a record committed on one machine stays
// meaningful on a CI runner with a different clock, because each record
// carries its own same-machine baseline (the seed reference path, or
// the materialized pipeline).
package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// Machine identity fields. Every record carries the CPU count, Go
// toolchain version and engine chunk length it was measured with:
// ratios are same-machine by construction, but a baseline committed on
// one box compared against a fresh record from a very different one
// can still misfire (a 4-core laptop's parallel scaling vs a 64-core
// runner's). The guard uses SameMachine to skip ratio bands across
// such boundaries instead of failing them; records predating these
// fields (empty/zero identity) compare unconditionally, preserving the
// old behavior.

// SameMachine reports whether two records' identity fields describe
// comparable measurement environments. Unknown identity (zero NumCPU
// or empty GoVersion on either side) counts as comparable.
func SameMachine(oldCPU, freshCPU int, oldGo, freshGo string) bool {
	if oldCPU != 0 && freshCPU != 0 && oldCPU != freshCPU {
		return false
	}
	if oldGo != "" && freshGo != "" && oldGo != freshGo {
		return false
	}
	return true
}

// EngineRecord mirrors BENCH_engine.json: one Table 4 regeneration on
// the seed-style reference path versus the batched evaluation engine,
// measured serially (GOMAXPROCS=1) with a parallel warm rerun.
type EngineRecord struct {
	Bench        string  `json:"bench"`
	Source       string  `json:"source"`
	NumCPU       int     `json:"num_cpu,omitempty"`
	GoVersion    string  `json:"go_version,omitempty"`
	ChunkLen     int     `json:"chunk_len,omitempty"` // engine batch granularity
	GOMAXPROCS   int     `json:"gomaxprocs"`          // 1: the serial measurement
	ReferenceNs  int64   `json:"reference_ns"`        // seed path, streams regenerated
	EngineColdNs int64   `json:"engine_cold_ns"`      // first engine call, caches empty
	EngineWarmNs int64   `json:"engine_warm_ns"`      // fastest warm engine call
	WarmIters    int     `json:"warm_iters"`
	SpeedupCold  float64 `json:"speedup_cold"`
	SpeedupWarm  float64 `json:"speedup_warm"`
	Parity       bool    `json:"parity"` // engine totals == reference totals

	Parallel ParallelRecord `json:"parallel"`
}

// ParallelRecord is the warm engine rerun at the default GOMAXPROCS.
type ParallelRecord struct {
	GOMAXPROCS   int   `json:"gomaxprocs"`
	EngineWarmNs int64 `json:"engine_warm_ns"`
	// SpeedupWarm is vs. the serial reference path; SpeedupVsSerial is
	// the scheduler's own parallel-over-serial warm gain.
	SpeedupWarm     float64 `json:"speedup_warm"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial_warm"`
}

// StreamRecord mirrors BENCH_stream.json: all seven paper codecs priced
// over a serialized trace, materialize-then-run versus the single-pass
// streaming fan-out.
type StreamRecord struct {
	Bench      string   `json:"bench"`
	Entries    int      `json:"entries"`
	FileBytes  int64    `json:"file_bytes"`
	ChunkLen   int      `json:"chunk_len"`
	NumCPU     int      `json:"num_cpu,omitempty"`
	GoVersion  string   `json:"go_version,omitempty"`
	Depth      int      `json:"fanout_depth"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Codecs     []string `json:"codecs"`

	MaterializedNs         int64  `json:"materialized_ns"`
	MaterializedAllocBytes uint64 `json:"materialized_alloc_bytes"`
	StreamingNs            int64  `json:"streaming_ns"`
	StreamingAllocBytes    uint64 `json:"streaming_alloc_bytes"`

	SpeedupStreaming float64 `json:"speedup_streaming"` // materialized/streaming wall time
	AllocRatio       float64 `json:"alloc_ratio"`       // materialized/streaming alloc bytes
	Parity           bool    `json:"parity"`
}

// ParallelEngineRecord mirrors BENCH_parallel.json: the Table 4 stream
// suite priced codec-by-codec on the warm sequential engine path
// (GOMAXPROCS=1) versus core.EvaluateParallel's shard-parallel pricing
// at an elevated GOMAXPROCS, with the seed-style reference path timed
// on the same suite as a second same-machine baseline. On a single-CPU
// machine SpeedupParallel degenerates to ~1x (shards timeslice one
// core); SpeedupVsReference stays meaningful everywhere because it
// compares against the per-entry reference loop.
type ParallelEngineRecord struct {
	Bench      string   `json:"bench"`
	Source     string   `json:"source"`
	NumCPU     int      `json:"num_cpu"`
	GoVersion  string   `json:"go_version,omitempty"`
	ChunkLen   int      `json:"chunk_len,omitempty"` // engine batch granularity
	GOMAXPROCS int      `json:"gomaxprocs"`          // procs of the parallel measurement
	Shards     int      `json:"shards"`              // effective shard count per codec
	Codecs     []string `json:"codecs"`
	WarmIters  int      `json:"warm_iters"`

	ReferenceNs    int64 `json:"reference_ns"`     // seed-style per-entry path
	SerialWarmNs   int64 `json:"serial_warm_ns"`   // warm RunFast sweep at GOMAXPROCS=1
	ParallelWarmNs int64 `json:"parallel_warm_ns"` // warm EvaluateParallel at GOMAXPROCS above

	// SpeedupParallel is serial_warm_ns / parallel_warm_ns — the
	// shard-parallel gain over the sequential warm engine path.
	// SpeedupVsReference is reference_ns / parallel_warm_ns.
	SpeedupParallel    float64 `json:"speedup_parallel"`
	SpeedupVsReference float64 `json:"speedup_vs_reference"`
	Parity             bool    `json:"parity"` // parallel totals == serial totals == reference totals
}

// BitsliceRecord mirrors BENCH_bitslice.json: the seedable plane-codec
// subset (binary, gray, offset, incxor) priced over the same
// materialized trace twice — codec-by-codec on the scalar batch
// kernels (Kernel forced to scalar) versus one shared-transpose
// codec.RunPlaneSet sweep — with identical statistics requested from
// both (per-line counts and max-per-cycle included, so parity covers
// every Result field). SpeedupBitslice = scalar_ns / plane_ns is the
// bit-sliced kernel's same-machine gain, the ratio the ISSUE's ≥5x
// target and the guard's BitsliceFloor band police.
type BitsliceRecord struct {
	Bench      string   `json:"bench"`
	Entries    int      `json:"entries"`
	ChunkLen   int      `json:"chunk_len"`
	NumCPU     int      `json:"num_cpu"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Codecs     []string `json:"codecs"`
	PerLine    bool     `json:"per_line"`
	WarmIters  int      `json:"warm_iters"`

	ScalarNs int64 `json:"scalar_ns"` // best warm scalar-kernel sweep
	PlaneNs  int64 `json:"plane_ns"`  // best warm RunPlaneSet sweep

	SpeedupBitslice float64 `json:"speedup_bitslice"` // scalar/plane wall time
	Parity          bool    `json:"parity"`           // all Result fields identical
}

// EngineBenchName, StreamBenchName, ParallelBenchName and
// BitsliceBenchName are the identity values of the record kinds;
// Validate checks them so a mixed-up file pair is a loud failure, not
// a silent pass.
const (
	EngineBenchName   = "Table4"
	StreamBenchName   = "StreamPipeline"
	ParallelBenchName = "Table4Parallel"
	BitsliceBenchName = "Bitslice"
)

// Validate reports the first structurally missing or nonsensical field.
// A zero timing or ratio means the producer never filled the field (the
// guard's "missing field" failure mode).
func (r EngineRecord) Validate() error {
	switch {
	case r.Bench != EngineBenchName:
		return fmt.Errorf("bench = %q, want %q", r.Bench, EngineBenchName)
	case r.ReferenceNs <= 0:
		return fmt.Errorf("missing field reference_ns")
	case r.EngineWarmNs <= 0:
		return fmt.Errorf("missing field engine_warm_ns")
	case r.SpeedupWarm <= 0:
		return fmt.Errorf("missing field speedup_warm")
	}
	return nil
}

// Validate reports the first structurally missing field of a stream
// record.
func (r StreamRecord) Validate() error {
	switch {
	case r.Bench != StreamBenchName:
		return fmt.Errorf("bench = %q, want %q", r.Bench, StreamBenchName)
	case r.MaterializedNs <= 0:
		return fmt.Errorf("missing field materialized_ns")
	case r.StreamingNs <= 0:
		return fmt.Errorf("missing field streaming_ns")
	case r.SpeedupStreaming <= 0:
		return fmt.Errorf("missing field speedup_streaming")
	case r.AllocRatio <= 0:
		return fmt.Errorf("missing field alloc_ratio")
	}
	return nil
}

// Validate reports the first structurally missing field of a parallel
// record.
func (r ParallelEngineRecord) Validate() error {
	switch {
	case r.Bench != ParallelBenchName:
		return fmt.Errorf("bench = %q, want %q", r.Bench, ParallelBenchName)
	case r.GOMAXPROCS < 1:
		return fmt.Errorf("missing field gomaxprocs")
	case r.ReferenceNs <= 0:
		return fmt.Errorf("missing field reference_ns")
	case r.SerialWarmNs <= 0:
		return fmt.Errorf("missing field serial_warm_ns")
	case r.ParallelWarmNs <= 0:
		return fmt.Errorf("missing field parallel_warm_ns")
	case r.SpeedupParallel <= 0:
		return fmt.Errorf("missing field speedup_parallel")
	case r.SpeedupVsReference <= 0:
		return fmt.Errorf("missing field speedup_vs_reference")
	}
	return nil
}

// Validate reports the first structurally missing field of a bitslice
// record.
func (r BitsliceRecord) Validate() error {
	switch {
	case r.Bench != BitsliceBenchName:
		return fmt.Errorf("bench = %q, want %q", r.Bench, BitsliceBenchName)
	case r.Entries <= 0:
		return fmt.Errorf("missing field entries")
	case r.ScalarNs <= 0:
		return fmt.Errorf("missing field scalar_ns")
	case r.PlaneNs <= 0:
		return fmt.Errorf("missing field plane_ns")
	case r.SpeedupBitslice <= 0:
		return fmt.Errorf("missing field speedup_bitslice")
	case len(r.Codecs) == 0:
		return fmt.Errorf("missing field codecs")
	}
	return nil
}

// ReadEngine loads and validates an engine record.
func ReadEngine(path string) (EngineRecord, error) {
	var r EngineRecord
	if err := readJSON(path, &r); err != nil {
		return r, err
	}
	if err := r.Validate(); err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	return r, nil
}

// ReadStream loads and validates a stream record.
func ReadStream(path string) (StreamRecord, error) {
	var r StreamRecord
	if err := readJSON(path, &r); err != nil {
		return r, err
	}
	if err := r.Validate(); err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	return r, nil
}

// ReadParallel loads and validates a parallel-engine record.
func ReadParallel(path string) (ParallelEngineRecord, error) {
	var r ParallelEngineRecord
	if err := readJSON(path, &r); err != nil {
		return r, err
	}
	if err := r.Validate(); err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	return r, nil
}

// ReadBitslice loads and validates a bitslice record.
func ReadBitslice(path string) (BitsliceRecord, error) {
	var r BitsliceRecord
	if err := readJSON(path, &r); err != nil {
		return r, err
	}
	if err := r.Validate(); err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	return r, nil
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	return nil
}

// WriteRecord writes a record as indented JSON with a trailing newline,
// the committed-file convention.
func WriteRecord(path string, rec any) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
