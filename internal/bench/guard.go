package bench

import "fmt"

// Regression guard. CompareEngine and CompareStream hold a fresh record
// against a committed baseline and return one Violation per broken
// tolerance band. The bands are ratio-based (see the package comment):
//
//   - parity=false in the fresh record always fails — the engine or the
//     pipeline no longer reproduces the reference numbers;
//   - a speedup ratio may drop by at most Tolerance.Slowdown
//     (fractional, default 0.25: a >25% slowdown relative to the
//     record's own same-machine baseline fails);
//   - the streaming alloc ratio may shrink by at most a factor of
//     Tolerance.AllocCollapse (default 2: the pipeline's bounded-memory
//     property collapsing by 2x fails even if wall time holds).
//
// Boundary semantics are inclusive: a fresh value exactly on the band
// edge passes; only strictly beyond it fails.

// Tolerance configures the guard's bands.
type Tolerance struct {
	// Slowdown is the allowed fractional drop in a speedup ratio
	// (0.25 = fresh may be as low as 75% of the committed speedup).
	Slowdown float64
	// AllocCollapse is the factor by which the streaming alloc ratio may
	// shrink before the guard fails.
	AllocCollapse float64
	// BitsliceFloor is the absolute minimum the fresh bitslice record's
	// scalar/plane speedup may report (0 disables the floor). Unlike the
	// relative bands this needs no committed baseline: the ratio is
	// same-machine by construction, so the floor holds on any box.
	BitsliceFloor float64
	// DistFloor is the absolute minimum distributed-sweep speedup (0
	// disables it). It binds only when the measuring box has at least
	// DistFloorMinCPU CPUs; smaller boxes skip it with an explicit note.
	DistFloor float64
	// TCPPipelineFloor is the absolute minimum the networked sweep's
	// pipelined dispatch may gain over lock-step window=1 dispatch (0
	// disables it). It binds only with TCPFloorMinCPU or more CPUs and
	// at least two peers; otherwise it is skipped with an explicit note.
	TCPPipelineFloor float64
}

// DefaultTolerance is the band set CI enforces.
func DefaultTolerance() Tolerance {
	return Tolerance{Slowdown: 0.25, AllocCollapse: 2, BitsliceFloor: 5, DistFloor: 1.3, TCPPipelineFloor: 1.2}
}

// Violation is one broken band.
type Violation struct {
	Record string  // "engine" or "stream"
	Field  string  // JSON field name
	Old    float64 // committed value (0 when not applicable)
	New    float64 // fresh value
	Msg    string
}

// String renders one error line. The record name always leads, and
// every number prints with fixed 3-decimal formatting so CI logs stay
// column-comparable across runs (no %g magnitude-dependent width).
func (v Violation) String() string {
	if v.Old != 0 || v.New != 0 {
		return fmt.Sprintf("%s: %s: %s (committed %.3f, fresh %.3f)", v.Record, v.Field, v.Msg, v.Old, v.New)
	}
	return fmt.Sprintf("%s: %s: %s", v.Record, v.Field, v.Msg)
}

// speedupDrop checks one ratio band; floor is old*(1-tol), inclusive.
func speedupDrop(record, field string, old, new, tol float64) *Violation {
	floor := old * (1 - tol)
	if new >= floor {
		return nil
	}
	return &Violation{
		Record: record, Field: field, Old: old, New: new,
		Msg: fmt.Sprintf("speedup dropped more than %.0f%% below the committed record (floor %.3f)", tol*100, floor),
	}
}

// CompareEngine holds a fresh engine record against the committed one.
func CompareEngine(old, fresh EngineRecord, tol Tolerance) []Violation {
	var out []Violation
	if err := old.Validate(); err != nil {
		out = append(out, Violation{Record: "engine", Field: "baseline", Msg: err.Error()})
	}
	if err := fresh.Validate(); err != nil {
		out = append(out, Violation{Record: "engine", Field: "fresh", Msg: err.Error()})
		return out
	}
	if !fresh.Parity {
		out = append(out, Violation{Record: "engine", Field: "parity",
			Msg: "engine and reference transition totals diverge"})
	}
	if !SameMachine(old.NumCPU, fresh.NumCPU, old.GoVersion, fresh.GoVersion) {
		return out // cross-box: parity holds everywhere, ratios do not
	}
	if v := speedupDrop("engine", "speedup_warm", old.SpeedupWarm, fresh.SpeedupWarm, tol.Slowdown); v != nil {
		out = append(out, *v)
	}
	return out
}

// CompareStream holds a fresh stream record against the committed one.
func CompareStream(old, fresh StreamRecord, tol Tolerance) []Violation {
	var out []Violation
	if err := old.Validate(); err != nil {
		out = append(out, Violation{Record: "stream", Field: "baseline", Msg: err.Error()})
	}
	if err := fresh.Validate(); err != nil {
		out = append(out, Violation{Record: "stream", Field: "fresh", Msg: err.Error()})
		return out
	}
	if !fresh.Parity {
		out = append(out, Violation{Record: "stream", Field: "parity",
			Msg: "streaming and materialized transition totals diverge"})
	}
	if !SameMachine(old.NumCPU, fresh.NumCPU, old.GoVersion, fresh.GoVersion) {
		return out
	}
	if v := speedupDrop("stream", "speedup_streaming", old.SpeedupStreaming, fresh.SpeedupStreaming, tol.Slowdown); v != nil {
		out = append(out, *v)
	}
	if tol.AllocCollapse > 0 {
		floor := old.AllocRatio / tol.AllocCollapse
		if fresh.AllocRatio < floor {
			out = append(out, Violation{
				Record: "stream", Field: "alloc_ratio", Old: old.AllocRatio, New: fresh.AllocRatio,
				Msg: fmt.Sprintf("alloc ratio collapsed more than %.3fx below the committed record (floor %.3f)", tol.AllocCollapse, floor),
			})
		}
	}
	return out
}

// CompareParallel holds a fresh parallel-engine record against the
// committed one. It is CompareParallelNotes without the skip notes —
// kept for callers that only care about hard failures.
func CompareParallel(old, fresh ParallelEngineRecord, tol Tolerance) []Violation {
	out, _ := CompareParallelNotes(old, fresh, tol)
	return out
}

// CompareParallelNotes holds a fresh parallel-engine record against the
// committed one. Both speedup ratios are banded: SpeedupParallel
// guards the shard scaling itself (meaningful once the machine has
// cores to scale onto), SpeedupVsReference guards the parallel path's
// absolute throughput against the seed reference on any machine. On a
// single-CPU box shard scaling is physically impossible, so the
// speedup_parallel band is skipped — loudly, via a returned note —
// rather than failing or silently passing.
func CompareParallelNotes(old, fresh ParallelEngineRecord, tol Tolerance) ([]Violation, []string) {
	var out []Violation
	var notes []string
	if err := old.Validate(); err != nil {
		out = append(out, Violation{Record: "parallel", Field: "baseline", Msg: err.Error()})
	}
	if err := fresh.Validate(); err != nil {
		out = append(out, Violation{Record: "parallel", Field: "fresh", Msg: err.Error()})
		return out, notes
	}
	if !fresh.Parity {
		out = append(out, Violation{Record: "parallel", Field: "parity",
			Msg: "parallel, serial and reference transition totals diverge"})
	}
	if fresh.NumCPU == 1 {
		notes = append(notes, "parallel: speedup_parallel enforcement skipped: num_cpu=1")
	}
	if !SameMachine(old.NumCPU, fresh.NumCPU, old.GoVersion, fresh.GoVersion) {
		return out, notes
	}
	if fresh.NumCPU != 1 {
		if v := speedupDrop("parallel", "speedup_parallel", old.SpeedupParallel, fresh.SpeedupParallel, tol.Slowdown); v != nil {
			out = append(out, *v)
		}
	}
	if v := speedupDrop("parallel", "speedup_vs_reference", old.SpeedupVsReference, fresh.SpeedupVsReference, tol.Slowdown); v != nil {
		out = append(out, *v)
	}
	return out, notes
}

// CompareBitslice holds a fresh bitslice record against the committed
// one. Parity always binds; the absolute BitsliceFloor binds on any
// machine (the ratio inside a record is same-machine); the relative
// band vs the committed speedup is skipped across machine boundaries
// like the other ratio bands.
func CompareBitslice(old, fresh BitsliceRecord, tol Tolerance) []Violation {
	var out []Violation
	if err := old.Validate(); err != nil {
		out = append(out, Violation{Record: "bitslice", Field: "baseline", Msg: err.Error()})
	}
	if err := fresh.Validate(); err != nil {
		out = append(out, Violation{Record: "bitslice", Field: "fresh", Msg: err.Error()})
		return out
	}
	if !fresh.Parity {
		out = append(out, Violation{Record: "bitslice", Field: "parity",
			Msg: "plane-kernel and scalar-kernel results diverge"})
	}
	if tol.BitsliceFloor > 0 && fresh.SpeedupBitslice < tol.BitsliceFloor {
		out = append(out, Violation{
			Record: "bitslice", Field: "speedup_bitslice",
			Old: tol.BitsliceFloor, New: fresh.SpeedupBitslice,
			Msg: fmt.Sprintf("bit-sliced speedup fell below the absolute %.1fx floor", tol.BitsliceFloor),
		})
	}
	if !SameMachine(old.NumCPU, fresh.NumCPU, old.GoVersion, fresh.GoVersion) {
		return out
	}
	if v := speedupDrop("bitslice", "speedup_bitslice", old.SpeedupBitslice, fresh.SpeedupBitslice, tol.Slowdown); v != nil {
		out = append(out, *v)
	}
	return out
}

// Guard loads the committed and fresh record set from the two
// directories and returns every violation. It is GuardNotes without
// the skip notes.
func Guard(baselineDir, freshDir string, tol Tolerance) []Violation {
	out, _ := GuardNotes(baselineDir, freshDir, tol)
	return out
}

// GuardNotes loads the committed and fresh record set from the two
// directories (BENCH_engine.json, BENCH_stream.json,
// BENCH_parallel.json, BENCH_bitslice.json, BENCH_dist.json and
// BENCH_serve.json in each) and returns every violation plus every
// skip note (bands that
// could not bind on this machine and were skipped loudly). Unreadable
// or invalid files are violations, not errors: the guard's job is to
// fail loudly, so CI gets one unified report either way.
func GuardNotes(baselineDir, freshDir string, tol Tolerance) ([]Violation, []string) {
	var out []Violation
	var notes []string
	oldEng, err := ReadEngine(baselineDir + "/BENCH_engine.json")
	if err != nil {
		out = append(out, Violation{Record: "engine", Field: "baseline", Msg: err.Error()})
	}
	freshEng, ferr := ReadEngine(freshDir + "/BENCH_engine.json")
	if ferr != nil {
		out = append(out, Violation{Record: "engine", Field: "fresh", Msg: ferr.Error()})
	}
	if err == nil && ferr == nil {
		out = append(out, CompareEngine(oldEng, freshEng, tol)...)
	}
	oldStr, err := ReadStream(baselineDir + "/BENCH_stream.json")
	if err != nil {
		out = append(out, Violation{Record: "stream", Field: "baseline", Msg: err.Error()})
	}
	freshStr, ferr := ReadStream(freshDir + "/BENCH_stream.json")
	if ferr != nil {
		out = append(out, Violation{Record: "stream", Field: "fresh", Msg: ferr.Error()})
	}
	if err == nil && ferr == nil {
		out = append(out, CompareStream(oldStr, freshStr, tol)...)
	}
	oldPar, err := ReadParallel(baselineDir + "/BENCH_parallel.json")
	if err != nil {
		out = append(out, Violation{Record: "parallel", Field: "baseline", Msg: err.Error()})
	}
	freshPar, ferr := ReadParallel(freshDir + "/BENCH_parallel.json")
	if ferr != nil {
		out = append(out, Violation{Record: "parallel", Field: "fresh", Msg: ferr.Error()})
	}
	if err == nil && ferr == nil {
		vs, ns := CompareParallelNotes(oldPar, freshPar, tol)
		out = append(out, vs...)
		notes = append(notes, ns...)
	}
	oldBit, err := ReadBitslice(baselineDir + "/BENCH_bitslice.json")
	if err != nil {
		out = append(out, Violation{Record: "bitslice", Field: "baseline", Msg: err.Error()})
	}
	freshBit, ferr := ReadBitslice(freshDir + "/BENCH_bitslice.json")
	if ferr != nil {
		out = append(out, Violation{Record: "bitslice", Field: "fresh", Msg: ferr.Error()})
	}
	if err == nil && ferr == nil {
		out = append(out, CompareBitslice(oldBit, freshBit, tol)...)
	}
	oldDist, err := ReadDist(baselineDir + "/BENCH_dist.json")
	if err != nil {
		out = append(out, Violation{Record: "dist", Field: "baseline", Msg: err.Error()})
	}
	freshDist, ferr := ReadDist(freshDir + "/BENCH_dist.json")
	if ferr != nil {
		out = append(out, Violation{Record: "dist", Field: "fresh", Msg: ferr.Error()})
	}
	if err == nil && ferr == nil {
		vs, ns := CompareDist(oldDist, freshDist, tol)
		out = append(out, vs...)
		notes = append(notes, ns...)
	}
	oldServe, err := ReadServe(baselineDir + "/BENCH_serve.json")
	if err != nil {
		out = append(out, Violation{Record: "serve", Field: "baseline", Msg: err.Error()})
	}
	freshServe, ferr := ReadServe(freshDir + "/BENCH_serve.json")
	if ferr != nil {
		out = append(out, Violation{Record: "serve", Field: "fresh", Msg: ferr.Error()})
	}
	if err == nil && ferr == nil {
		vs, ns := CompareServe(oldServe, freshServe, tol)
		out = append(out, vs...)
		notes = append(notes, ns...)
	}
	return out, notes
}
