package memmap

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSequentialLayout(t *testing.T) {
	blocks := []Block{{"a", 100}, {"b", 50}, {"c", 200}}
	l := Sequential(blocks, 0x1000, 16)
	if l.Addr[0] != 0x1000 {
		t.Errorf("a at %#x", l.Addr[0])
	}
	if l.Addr[1] != 0x1070 { // 0x1000+100=0x1064 aligned to 16 -> 0x1070
		t.Errorf("b at %#x", l.Addr[1])
	}
	if l.Addr[2] != 0x10C0 { // 0x1070+50=0x10A2 -> 0x10B0? recompute below
		// 0x1070 + 50 = 0x10A2; aligned to 16 = 0x10B0.
		if l.Addr[2] != 0x10B0 {
			t.Errorf("c at %#x", l.Addr[2])
		}
	}
}

func TestAddressOfBounds(t *testing.T) {
	l := Sequential([]Block{{"a", 8}}, 0, 1)
	if _, err := l.AddressOf(Access{Block: 0, Offset: 7}); err != nil {
		t.Error(err)
	}
	if _, err := l.AddressOf(Access{Block: 0, Offset: 8}); err == nil {
		t.Error("out-of-bounds offset accepted")
	}
	if _, err := l.AddressOf(Access{Block: 5}); err == nil {
		t.Error("unknown block accepted")
	}
}

func TestTraceKinds(t *testing.T) {
	l := Sequential([]Block{{"a", 8}}, 0x100, 1)
	s, err := l.Trace("t", 32, []Access{{0, 0, false}, {0, 4, true}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Entries[0].Kind.IsData() != true || s.Entries[1].Addr != 0x104 {
		t.Errorf("entries: %+v", s.Entries)
	}
}

func TestOptimizePlacesHotPairAdjacent(t *testing.T) {
	// Blocks a and c alternate heavily; b is rarely touched. A naive
	// declaration-order layout separates a and c by b; the optimizer must
	// place a and c adjacent.
	blocks := []Block{{"a", 64}, {"b", 4096}, {"c", 64}}
	var accs []Access
	for i := 0; i < 500; i++ {
		accs = append(accs, Access{Block: 0, Offset: uint64(i % 64)})
		accs = append(accs, Access{Block: 2, Offset: uint64(i % 64)})
	}
	accs = append(accs, Access{Block: 1, Offset: 0})
	opt, err := Optimize(blocks, accs, 0x10000, 4)
	if err != nil {
		t.Fatal(err)
	}
	gap := int64(opt.Addr[2]) - int64(opt.Addr[0])
	if gap < 0 {
		gap = -gap
	}
	if gap > 128 {
		t.Errorf("a at %#x, c at %#x: not adjacent", opt.Addr[0], opt.Addr[2])
	}
}

func TestOptimizeReducesTransitions(t *testing.T) {
	// Random round-robin over a few hot blocks interleaved with cold
	// ones: the optimized layout must not lose to declaration order.
	rng := rand.New(rand.NewSource(9))
	var blocks []Block
	for i := 0; i < 12; i++ {
		blocks = append(blocks, Block{Name: string(rune('a' + i)), Size: uint64(64 + rng.Intn(2048))})
	}
	var accs []Access
	hot := []int{2, 9, 5}
	for i := 0; i < 3000; i++ {
		var b int
		if rng.Intn(10) < 8 {
			b = hot[i%len(hot)]
		} else {
			b = rng.Intn(len(blocks))
		}
		accs = append(accs, Access{Block: b, Offset: uint64(rng.Intn(int(blocks[b].Size)))})
	}
	seq := Sequential(blocks, 0x10000000, 4)
	opt, err := Optimize(blocks, accs, 0x10000000, 4)
	if err != nil {
		t.Fatal(err)
	}
	tSeq, err := Transitions(seq, accs, 32)
	if err != nil {
		t.Fatal(err)
	}
	tOpt, err := Transitions(opt, accs, 32)
	if err != nil {
		t.Fatal(err)
	}
	if tOpt > tSeq {
		t.Errorf("optimized layout (%d transitions) worse than sequential (%d)", tOpt, tSeq)
	}
	improvement := 1 - float64(tOpt)/float64(tSeq)
	t.Logf("transition reduction: %.1f%%", improvement*100)
}

func TestOptimizeHandlesDegenerateProfiles(t *testing.T) {
	// Empty blocks, empty profile, single block.
	if _, err := Optimize(nil, nil, 0, 4); err != nil {
		t.Error(err)
	}
	one := []Block{{"x", 16}}
	l, err := Optimize(one, []Access{{0, 0, false}, {0, 8, false}}, 0x100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if l.Addr[0] != 0x100 {
		t.Errorf("single block at %#x", l.Addr[0])
	}
	// Profile referencing an unknown block must error.
	if _, err := Optimize(one, []Access{{0, 0, false}, {3, 0, false}}, 0, 4); err == nil {
		t.Error("bad profile accepted")
	}
}

func TestOptimizeLayoutsDoNotOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var blocks []Block
	for i := 0; i < 20; i++ {
		blocks = append(blocks, Block{Name: string(rune('a' + i)), Size: uint64(1 + rng.Intn(500))})
	}
	var accs []Access
	for i := 0; i < 1000; i++ {
		b := rng.Intn(len(blocks))
		accs = append(accs, Access{Block: b, Offset: uint64(rng.Intn(int(blocks[b].Size)))})
	}
	l, err := Optimize(blocks, accs, 0x2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	type span struct{ lo, hi uint64 }
	var spans []span
	for i, b := range blocks {
		spans = append(spans, span{l.Addr[i], l.Addr[i] + b.Size})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
				t.Fatalf("blocks %d and %d overlap: %+v %+v", i, j, spans[i], spans[j])
			}
		}
	}
}

// Property: for random block sets and profiles, Optimize always yields a
// valid layout — aligned, non-overlapping, every access resolvable.
// (Transition improvement is heuristic: guaranteed only when the profile
// has block-adjacency structure, as in TestOptimizeReducesTransitions —
// a uniform random profile has nothing to exploit and the greedy chain
// can land slightly worse than declaration order.)
func TestOptimizePropertyQuick(t *testing.T) {
	f := func(sizes []uint16, accessSeed int64) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 24 {
			sizes = sizes[:24]
		}
		blocks := make([]Block, len(sizes))
		for i, sz := range sizes {
			blocks[i] = Block{Name: fmt.Sprintf("b%d", i), Size: uint64(sz%4096) + 1}
		}
		rng := rand.New(rand.NewSource(accessSeed))
		accs := make([]Access, 500)
		for i := range accs {
			b := rng.Intn(len(blocks))
			accs[i] = Access{Block: b, Offset: uint64(rng.Intn(int(blocks[b].Size)))}
		}
		opt, err := Optimize(blocks, accs, 0x1000, 8)
		if err != nil {
			return false
		}
		// Alignment.
		for _, a := range opt.Addr {
			if a%8 != 0 || a < 0x1000 {
				return false
			}
		}
		// No overlap.
		for i := range blocks {
			for j := i + 1; j < len(blocks); j++ {
				if opt.Addr[i] < opt.Addr[j]+blocks[j].Size && opt.Addr[j] < opt.Addr[i]+blocks[i].Size {
					return false
				}
			}
		}
		// Every access must resolve under the layout.
		if _, err := Transitions(opt, accs, 32); err != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
