// Package memmap implements a data-to-memory mapping optimizer in the
// spirit of Panda and Dutt's "Reducing Address Bus Transitions for Low
// Power Memory Mapping" (EDTC'96), reference [1] of the paper — an
// EXTENSION: the paper discusses it as the high-level complement to bus
// encoding. Given the sequence in which logical blocks (variables, arrays)
// are accessed, the optimizer chooses their placement in the address space
// so that consecutive accesses travel between nearby addresses, reducing
// binary bus transitions before any encoder is applied.
//
// The placement heuristic is greedy adjacency clustering: blocks that
// follow each other often in the access sequence are placed next to each
// other, strongest transition pairs first — a maximum-weight Hamiltonian
// path approximation on the access-adjacency graph.
package memmap

import (
	"fmt"
	"sort"

	"busenc/internal/trace"
)

// Block is one logical datum to be placed.
type Block struct {
	Name string
	// Size in bytes; placements are aligned to Align.
	Size uint64
}

// Access is one reference in the profile: a block and an offset within it.
type Access struct {
	Block  int // index into the block list
	Offset uint64
	Write  bool
}

// Layout maps each block to its base address.
type Layout struct {
	Base   uint64
	Align  uint64
	Blocks []Block
	// Addr[i] is the base address of block i.
	Addr []uint64
}

// AddressOf returns the physical address of an access under the layout.
func (l *Layout) AddressOf(a Access) (uint64, error) {
	if a.Block < 0 || a.Block >= len(l.Addr) {
		return 0, fmt.Errorf("memmap: access to unknown block %d", a.Block)
	}
	if a.Offset >= l.Blocks[a.Block].Size {
		return 0, fmt.Errorf("memmap: offset %d outside block %q (size %d)", a.Offset, l.Blocks[a.Block].Name, l.Blocks[a.Block].Size)
	}
	return l.Addr[a.Block] + a.Offset, nil
}

// Trace renders the access profile as an address stream under the layout.
func (l *Layout) Trace(name string, width int, accs []Access) (*trace.Stream, error) {
	s := trace.New(name, width)
	for _, a := range accs {
		addr, err := l.AddressOf(a)
		if err != nil {
			return nil, err
		}
		k := trace.DataRead
		if a.Write {
			k = trace.DataWrite
		}
		s.Append(addr, k)
	}
	return s, nil
}

func align(v, a uint64) uint64 {
	if a == 0 {
		return v
	}
	return (v + a - 1) / a * a
}

// Sequential places blocks in declaration order — the unoptimized
// baseline a naive linker would produce.
func Sequential(blocks []Block, base, alignTo uint64) *Layout {
	l := &Layout{Base: base, Align: alignTo, Blocks: blocks, Addr: make([]uint64, len(blocks))}
	cur := base
	for i, b := range blocks {
		cur = align(cur, alignTo)
		l.Addr[i] = cur
		cur += b.Size
	}
	return l
}

// Optimize places blocks to minimize address-bus transitions for the given
// access profile: it builds the block-adjacency graph (how often access to
// block i is immediately followed by access to block j), then greedily
// chains the heaviest edges into a linear order, and lays the chain out
// contiguously.
func Optimize(blocks []Block, accs []Access, base, alignTo uint64) (*Layout, error) {
	n := len(blocks)
	if n == 0 {
		return Sequential(blocks, base, alignTo), nil
	}
	adj := make([][]int64, n)
	for i := range adj {
		adj[i] = make([]int64, n)
	}
	for i := 1; i < len(accs); i++ {
		a, b := accs[i-1].Block, accs[i].Block
		if a < 0 || a >= n || b < 0 || b >= n {
			return nil, fmt.Errorf("memmap: access to unknown block")
		}
		if a != b {
			adj[a][b]++
			adj[b][a]++
		}
	}
	type edge struct {
		a, b int
		w    int64
	}
	var edges []edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if adj[i][j] > 0 {
				edges = append(edges, edge{i, j, adj[i][j]})
			}
		}
	}
	sort.Slice(edges, func(x, y int) bool {
		if edges[x].w != edges[y].w {
			return edges[x].w > edges[y].w
		}
		if edges[x].a != edges[y].a {
			return edges[x].a < edges[y].a
		}
		return edges[x].b < edges[y].b
	})
	// Greedy path building: accept an edge when both endpoints have
	// degree < 2 and it does not close a cycle (union-find).
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	degree := make([]int, n)
	next := make([][]int, n)
	for _, e := range edges {
		if degree[e.a] >= 2 || degree[e.b] >= 2 {
			continue
		}
		if find(e.a) == find(e.b) {
			continue
		}
		parent[find(e.a)] = find(e.b)
		degree[e.a]++
		degree[e.b]++
		next[e.a] = append(next[e.a], e.b)
		next[e.b] = append(next[e.b], e.a)
	}
	// Walk the resulting paths, endpoints first, then isolated blocks.
	visited := make([]bool, n)
	var order []int
	walk := func(start int) {
		cur, prev := start, -1
		for {
			visited[cur] = true
			order = append(order, cur)
			found := -1
			for _, nb := range next[cur] {
				if nb != prev && !visited[nb] {
					found = nb
					break
				}
			}
			if found < 0 {
				return
			}
			prev, cur = cur, found
		}
	}
	for i := 0; i < n; i++ {
		if !visited[i] && degree[i] <= 1 {
			walk(i)
		}
	}
	for i := 0; i < n; i++ {
		if !visited[i] {
			walk(i) // safety for any leftover structure
		}
	}
	l := &Layout{Base: base, Align: alignTo, Blocks: blocks, Addr: make([]uint64, n)}
	cur := base
	for _, bi := range order {
		cur = align(cur, alignTo)
		l.Addr[bi] = cur
		cur += blocks[bi].Size
	}
	return l, nil
}

// Transitions evaluates a layout: total binary bus transitions of the
// profile's address stream.
func Transitions(l *Layout, accs []Access, width int) (int64, error) {
	s, err := l.Trace("eval", width, accs)
	if err != nil {
		return 0, err
	}
	return s.Analyze(1).BinaryTransitions, nil
}
