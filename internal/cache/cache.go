// Package cache implements a set-associative cache simulator used to study
// bus encoding at different levels of the memory hierarchy — the direction
// named in the paper's "Conclusions and Future Work" section. Filtering a
// processor address stream through a cache yields the address stream seen
// on the next-level bus (refills and write-backs), whose locality profile
// differs sharply from the processor-side stream: sequentiality drops and
// block alignment appears, changing which code wins.
package cache

import (
	"fmt"

	"busenc/internal/trace"
)

// Config describes one cache level.
type Config struct {
	// Size is the total capacity in bytes.
	Size int
	// LineSize is the block size in bytes (a power of two).
	LineSize int
	// Ways is the associativity (1 = direct mapped).
	Ways int
	// WriteBack selects write-back (true) or write-through (false).
	// Write-allocate is used in both cases.
	WriteBack bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineSize)
	}
	if c.Size%(c.LineSize*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible by line*ways=%d", c.Size, c.LineSize*c.Ways)
	}
	sets := c.Size / (c.LineSize * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	age   int64
}

// Cache is one simulated cache level.
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	lineBits uint
	clock    int64

	// Statistics.
	Accesses int64
	Misses   int64
	Evicts   int64
	WBacks   int64
}

// New builds a cache from a validated configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Size / (cfg.LineSize * cfg.Ways)
	c := &Cache{cfg: cfg, setMask: uint64(sets - 1)}
	for cfg.LineSize>>c.lineBits > 1 {
		c.lineBits++
	}
	c.sets = make([][]line, sets)
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// HitRate returns the fraction of accesses that hit.
func (c *Cache) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return 1 - float64(c.Misses)/float64(c.Accesses)
}

// Access simulates one reference and returns the resulting next-level bus
// traffic (zero, one or two block-aligned references): a refill read on a
// miss, preceded by a write-back if a dirty line is evicted; plus the
// write-through store itself when configured.
func (c *Cache) Access(addr uint64, write bool) []trace.Entry {
	c.Accesses++
	c.clock++
	blk := addr >> c.lineBits
	set := blk & c.setMask
	tag := blk >> uint(setBits(c.setMask))
	lines := c.sets[set]

	var out []trace.Entry
	if !c.cfg.WriteBack && write {
		// Write-through: the store always reaches the next level.
		out = append(out, trace.Entry{Addr: addr, Kind: trace.DataWrite})
	}
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].age = c.clock
			if write && c.cfg.WriteBack {
				lines[i].dirty = true
			}
			return out
		}
	}
	// Miss: choose the LRU victim.
	c.Misses++
	victim := 0
	for i := range lines {
		if !lines[i].valid {
			victim = i
			break
		}
		if lines[i].age < lines[victim].age {
			victim = i
		}
	}
	if lines[victim].valid {
		c.Evicts++
		if lines[victim].dirty {
			c.WBacks++
			evAddr := (lines[victim].tag<<uint(setBits(c.setMask)) | set) << c.lineBits
			out = append(out, trace.Entry{Addr: evAddr, Kind: trace.DataWrite})
		}
	}
	// Write-allocate fetches the block before modifying it, so the refill
	// is a read regardless of the triggering access.
	out = append(out, trace.Entry{Addr: blk << c.lineBits, Kind: trace.DataRead})
	lines[victim] = line{tag: tag, valid: true, dirty: write && c.cfg.WriteBack, age: c.clock}
	return out
}

func setBits(mask uint64) int {
	n := 0
	for mask != 0 {
		n++
		mask >>= 1
	}
	return n
}

// Filter runs the whole stream through the cache and returns the
// next-level address stream. Instruction entries refill as instruction
// reads so the downstream SEL signal stays meaningful.
func (c *Cache) Filter(s *trace.Stream) *trace.Stream {
	out := trace.New(s.Name+".miss", s.Width)
	for _, e := range s.Entries {
		refs := c.Access(e.Addr, e.Kind == trace.DataWrite)
		for _, r := range refs {
			kind := r.Kind
			if e.Kind == trace.Instr && kind == trace.DataRead {
				kind = trace.Instr
			}
			out.Append(r.Addr, kind)
		}
	}
	return out
}

// Hierarchy chains cache levels: Filter applies each level in order and
// returns the streams observed on every bus (index 0 = processor bus,
// index i = bus below level i).
func Hierarchy(s *trace.Stream, levels ...*Cache) []*trace.Stream {
	out := []*trace.Stream{s}
	cur := s
	for _, l := range levels {
		cur = l.Filter(cur)
		out = append(out, cur)
	}
	return out
}
