package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"busenc/internal/trace"
	"busenc/internal/workload"
)

func mk(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Size: 0, LineSize: 16, Ways: 1},
		{Size: 1024, LineSize: 24, Ways: 1},  // line not power of two
		{Size: 1000, LineSize: 16, Ways: 1},  // size not divisible
		{Size: 3072, LineSize: 16, Ways: 1},  // sets not power of two
		{Size: 1024, LineSize: 16, Ways: -1}, // negative ways
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, cfg)
		}
	}
	good := Config{Size: 8192, LineSize: 32, Ways: 2, WriteBack: true}
	if err := good.Validate(); err != nil {
		t.Errorf("%+v rejected: %v", good, err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mk(t, Config{Size: 1024, LineSize: 16, Ways: 1})
	refs := c.Access(0x100, false)
	if len(refs) != 1 || refs[0].Addr != 0x100 {
		t.Fatalf("cold miss refs = %+v", refs)
	}
	if refs := c.Access(0x104, false); len(refs) != 0 {
		t.Errorf("same-line access missed: %+v", refs)
	}
	if c.Misses != 1 || c.Accesses != 2 {
		t.Errorf("misses=%d accesses=%d", c.Misses, c.Accesses)
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", c.HitRate())
	}
}

func TestRefillIsBlockAligned(t *testing.T) {
	c := mk(t, Config{Size: 1024, LineSize: 64, Ways: 1})
	refs := c.Access(0x12345, false)
	if len(refs) != 1 {
		t.Fatal("expected one refill")
	}
	if refs[0].Addr%64 != 0 {
		t.Errorf("refill address %#x not aligned to the line", refs[0].Addr)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// Two addresses that map to the same set of a direct-mapped cache
	// evict each other; a 2-way cache holds both.
	dm := mk(t, Config{Size: 1024, LineSize: 16, Ways: 1})
	a, b := uint64(0x0000), uint64(0x0000+1024)
	dm.Access(a, false)
	dm.Access(b, false)
	dm.Access(a, false)
	if dm.Misses != 3 {
		t.Errorf("direct-mapped misses = %d, want 3", dm.Misses)
	}
	sa := mk(t, Config{Size: 1024, LineSize: 16, Ways: 2})
	sa.Access(a, false)
	sa.Access(b, false)
	sa.Access(a, false)
	if sa.Misses != 2 {
		t.Errorf("2-way misses = %d, want 2", sa.Misses)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way set: touch A, B, then A again; C must evict B (the LRU), so A
	// still hits afterwards.
	c := mk(t, Config{Size: 64, LineSize: 16, Ways: 2}) // 2 sets
	a, b, x := uint64(0), uint64(64), uint64(128)       // same set 0
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false)
	c.Access(x, false) // evicts b
	miss := c.Misses
	c.Access(a, false)
	if c.Misses != miss {
		t.Error("LRU evicted the recently used line")
	}
	c.Access(b, false)
	if c.Misses != miss+1 {
		t.Error("expected b to have been evicted")
	}
}

func TestWriteBackEmitsDirtyEviction(t *testing.T) {
	c := mk(t, Config{Size: 64, LineSize: 16, Ways: 1, WriteBack: true}) // 4 sets
	c.Access(0x00, true)                                                 // dirty line in set 0
	refs := c.Access(0x40, false)                                        // conflicts, evicts dirty
	if len(refs) != 2 {
		t.Fatalf("refs = %+v, want write-back + refill", refs)
	}
	if refs[0].Kind != trace.DataWrite || refs[0].Addr != 0x00 {
		t.Errorf("write-back ref = %+v", refs[0])
	}
	if refs[1].Kind != trace.DataRead || refs[1].Addr != 0x40 {
		t.Errorf("refill ref = %+v", refs[1])
	}
	if c.WBacks != 1 {
		t.Errorf("WBacks = %d", c.WBacks)
	}
}

func TestWriteThroughAlwaysWrites(t *testing.T) {
	c := mk(t, Config{Size: 64, LineSize: 16, Ways: 1, WriteBack: false})
	c.Access(0x00, true)
	refs := c.Access(0x04, true) // hit, but write-through still emits
	if len(refs) != 1 || refs[0].Kind != trace.DataWrite || refs[0].Addr != 0x04 {
		t.Errorf("write-through refs = %+v", refs)
	}
}

func TestCleanEvictionSilent(t *testing.T) {
	c := mk(t, Config{Size: 64, LineSize: 16, Ways: 1, WriteBack: true})
	c.Access(0x00, false)
	refs := c.Access(0x40, false)
	if len(refs) != 1 {
		t.Errorf("clean eviction produced extra traffic: %+v", refs)
	}
	if c.Evicts != 1 || c.WBacks != 0 {
		t.Errorf("evicts=%d wbacks=%d", c.Evicts, c.WBacks)
	}
}

func TestFilterSequentialStreamCompresses(t *testing.T) {
	// A sequential instruction stream through a 32-byte-line cache
	// produces one refill per 8 words: the miss stream is 1/8 the length
	// and still sequential (with stride = line size).
	s := workload.Sequential(32, 8000, 0x400000, 4)
	c := mk(t, Config{Size: 4096, LineSize: 32, Ways: 2})
	miss := c.Filter(s)
	if got, want := miss.Len(), 1000; got != want {
		t.Errorf("miss stream length = %d, want %d", got, want)
	}
	if f := miss.InSeqFraction(32); f != 1 {
		t.Errorf("miss stream in-seq fraction at line stride = %v, want 1", f)
	}
	// Instruction kind is preserved for refills of instruction misses.
	for _, e := range miss.Entries {
		if e.Kind != trace.Instr {
			t.Fatalf("refill kind = %v", e.Kind)
		}
	}
}

func TestHierarchyChainsLevels(t *testing.T) {
	s := workload.Sequential(32, 4096, 0, 4)
	l1 := mk(t, Config{Size: 1024, LineSize: 16, Ways: 1})
	l2 := mk(t, Config{Size: 8192, LineSize: 64, Ways: 2})
	buses := Hierarchy(s, l1, l2)
	if len(buses) != 3 {
		t.Fatalf("buses = %d", len(buses))
	}
	if buses[0] != s {
		t.Error("bus 0 must be the processor stream")
	}
	if !(buses[1].Len() > buses[2].Len()) {
		t.Errorf("L2 bus (%d) should be quieter than L1 bus (%d)", buses[2].Len(), buses[1].Len())
	}
}

func TestHitRateOnLoopingWorkload(t *testing.T) {
	// A loop over a working set that fits in the cache must approach 100%
	// hits after the cold pass.
	s := trace.New("loop", 32)
	for pass := 0; pass < 10; pass++ {
		for a := uint64(0); a < 1024; a += 4 {
			s.Append(a, trace.Instr)
		}
	}
	c := mk(t, Config{Size: 4096, LineSize: 32, Ways: 2})
	c.Filter(s)
	if c.HitRate() < 0.98 {
		t.Errorf("hit rate = %v, want ~1", c.HitRate())
	}
}

// Property: miss count is at least the number of distinct blocks touched
// (compulsory misses) and at most the access count; a cache whose capacity
// covers the whole working set in one set-associative group never misses
// after the cold pass.
func TestCacheMissBoundsQuick(t *testing.T) {
	f := func(addrs []uint32) bool {
		if len(addrs) == 0 {
			return true
		}
		c, err := New(Config{Size: 2048, LineSize: 16, Ways: 2})
		if err != nil {
			return false
		}
		blocks := map[uint64]struct{}{}
		for _, a := range addrs {
			c.Access(uint64(a), false)
			blocks[uint64(a)>>4] = struct{}{}
		}
		// Every distinct block compulsorily misses once; misses can never
		// exceed accesses.
		return c.Misses >= int64(len(blocks)) && c.Misses <= c.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFullyCoveringCacheOnlyColdMisses(t *testing.T) {
	// Working set of 32 lines inside a 64-line fully-covering cache:
	// after the first pass every access hits, for any access order.
	rng := rand.New(rand.NewSource(12))
	c := mk(t, Config{Size: 64 * 16, LineSize: 16, Ways: 4})
	warm := map[uint64]struct{}{}
	for i := 0; i < 5000; i++ {
		a := uint64(rng.Intn(32)) * 16
		miss0 := c.Misses
		c.Access(a, false)
		if _, seen := warm[a]; seen && c.Misses != miss0 {
			t.Fatalf("warm line %#x missed", a)
		}
		warm[a] = struct{}{}
	}
	if c.Misses != 32 {
		t.Errorf("misses = %d, want exactly the 32 compulsory ones", c.Misses)
	}
}

// Property: Filter emits exactly one read per miss plus one write per
// write-back (plus write-throughs when configured).
func TestFilterTrafficAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := trace.New("p", 32)
	for i := 0; i < 4000; i++ {
		k := trace.DataRead
		if rng.Intn(3) == 0 {
			k = trace.DataWrite
		}
		s.Append(uint64(rng.Intn(1<<14)), k)
	}
	c := mk(t, Config{Size: 1024, LineSize: 16, Ways: 2, WriteBack: true})
	miss := c.Filter(s)
	if int64(miss.Len()) != c.Misses+c.WBacks {
		t.Errorf("traffic %d != misses %d + writebacks %d", miss.Len(), c.Misses, c.WBacks)
	}
	wt := mk(t, Config{Size: 1024, LineSize: 16, Ways: 2, WriteBack: false})
	writes := 0
	for _, e := range s.Entries {
		if e.Kind == trace.DataWrite {
			writes++
		}
	}
	missWT := wt.Filter(s)
	if int64(missWT.Len()) != wt.Misses+int64(writes) {
		t.Errorf("write-through traffic %d != misses %d + writes %d", missWT.Len(), wt.Misses, writes)
	}
}
