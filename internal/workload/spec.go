package workload

import (
	"math/rand"

	"busenc/internal/trace"
)

// InstrSpec parameterizes an instruction-stream generator: the target
// in-sequence fraction, the fetch stride, and the far-jump region map of
// the architecture's text segment.
type InstrSpec struct {
	// Target is the desired aggregate in-sequence fraction.
	Target float64
	// Stride is the fetch increment (instruction size).
	Stride uint64
	// Far describes call targets; its Stride field is ignored in favour
	// of the spec's.
	Far Model
}

// Stream generates n instruction references.
func (sp InstrSpec) Stream(name string, width, n int, seed int64) *trace.Stream {
	far := sp.Far
	far.Stride = sp.Stride
	g := newInstrGenSpec(sp.Target, sp.Stride, far, rand.New(rand.NewSource(seed)))
	s := trace.New(name, width)
	for i := 0; i < n; i++ {
		s.Append(g.next(), trace.Instr)
	}
	return s
}

// DataSpec parameterizes a data-stream generator: the target in-sequence
// fraction and the jump-region map (globals, heap, stack).
type DataSpec struct {
	Target float64
	// Jump describes scattered-access targets; Jump.Stride is the
	// element size of array walks.
	Jump Model
	// WriteFrac is the fraction of data references that are stores.
	// Zero means the MIPS-suite default of 0.35.
	WriteFrac float64
}

func (sp DataSpec) writeFrac() float64 {
	if sp.WriteFrac == 0 {
		return 0.35
	}
	return sp.WriteFrac
}

// Stream generates n data references.
func (sp DataSpec) Stream(name string, width, n int, seed int64) *trace.Stream {
	rng := rand.New(rand.NewSource(seed))
	g := newDataGen(sp.Target, sp.Jump, rng)
	s := trace.New(name, width)
	for i := 0; i < n; i++ {
		k := trace.DataRead
		if rng.Float64() < sp.writeFrac() {
			k = trace.DataWrite
		}
		s.Append(g.next(), k)
	}
	return s
}

// MuxSpec interleaves an instruction and a data generator on one bus.
type MuxSpec struct {
	Instr InstrSpec
	Data  DataSpec
	// DataFrac is the fraction of bus cycles carrying a data address.
	DataFrac float64
}

// Stream generates n multiplexed references.
func (sp MuxSpec) Stream(name string, width, n int, seed int64) *trace.Stream {
	rng := rand.New(rand.NewSource(seed))
	far := sp.Instr.Far
	far.Stride = sp.Instr.Stride
	gi := newInstrGenSpec(sp.Instr.Target, sp.Instr.Stride, far, rand.New(rand.NewSource(seed+1)))
	gd := newDataGen(sp.Data.Target, sp.Data.Jump, rand.New(rand.NewSource(seed+2)))
	s := trace.New(name, width)
	for i := 0; i < n; i++ {
		if rng.Float64() < sp.DataFrac {
			k := trace.DataRead
			if rng.Float64() < sp.Data.writeFrac() {
				k = trace.DataWrite
			}
			s.Append(gd.next(), k)
		} else {
			s.Append(gi.next(), trace.Instr)
		}
	}
	return s
}
