package workload

import (
	"math"
	"testing"

	"busenc/internal/trace"
)

func testRegions(base uint64) []Region {
	return []Region{{Base: base, Size: 1 << 16, Weight: 1}}
}

func TestInstrSpecTargets(t *testing.T) {
	for _, target := range []float64{0.4, 0.63, 0.85} {
		sp := InstrSpec{Target: target, Stride: 8, Far: Model{Regions: testRegions(0x1000000)}}
		s := sp.Stream("i", 32, 40000, 1)
		if got := s.InSeqFraction(8); math.Abs(got-target) > 0.03 {
			t.Errorf("target %.2f: got %.3f", target, got)
		}
		for _, e := range s.Entries {
			if e.Kind != trace.Instr {
				t.Fatal("instruction spec emitted a data reference")
			}
		}
	}
}

func TestInstrSpecStrideHonoured(t *testing.T) {
	sp := InstrSpec{Target: 0.8, Stride: 16, Far: Model{Regions: testRegions(0x2000)}}
	s := sp.Stream("i", 32, 20000, 2)
	if f := s.InSeqFraction(16); f < 0.7 {
		t.Errorf("stride-16 in-seq = %.3f", f)
	}
	if f := s.InSeqFraction(4); f > 0.05 {
		t.Errorf("stride-4 should see no sequence: %.3f", f)
	}
}

func TestDataSpecWriteFraction(t *testing.T) {
	sp := DataSpec{Target: 0.1, Jump: Model{Stride: 4, Regions: testRegions(0x8000)}, WriteFrac: 0.6}
	s := sp.Stream("d", 32, 20000, 3)
	writes := 0
	for _, e := range s.Entries {
		if e.Kind == trace.DataWrite {
			writes++
		}
	}
	frac := float64(writes) / float64(s.Len())
	if math.Abs(frac-0.6) > 0.02 {
		t.Errorf("write fraction = %.3f, want 0.6", frac)
	}
}

func TestDataSpecDefaultWriteFraction(t *testing.T) {
	sp := DataSpec{Target: 0.1, Jump: Model{Stride: 4, Regions: testRegions(0x8000)}}
	s := sp.Stream("d", 32, 20000, 4)
	writes := 0
	for _, e := range s.Entries {
		if e.Kind == trace.DataWrite {
			writes++
		}
	}
	frac := float64(writes) / float64(s.Len())
	if math.Abs(frac-0.35) > 0.02 {
		t.Errorf("default write fraction = %.3f, want 0.35", frac)
	}
}

func TestMuxSpecComposition(t *testing.T) {
	sp := MuxSpec{
		Instr:    InstrSpec{Target: 0.7, Stride: 4, Far: Model{Regions: testRegions(0x400000)}},
		Data:     DataSpec{Target: 0.1, Jump: Model{Stride: 4, Regions: testRegions(0x10000000)}},
		DataFrac: 0.25,
	}
	s := sp.Stream("m", 32, 30000, 5)
	data := 0
	for _, e := range s.Entries {
		if e.Kind.IsData() {
			data++
		}
	}
	frac := float64(data) / float64(s.Len())
	if math.Abs(frac-0.25) > 0.02 {
		t.Errorf("data fraction = %.3f, want 0.25", frac)
	}
	// The instruction sub-stream keeps its target.
	if f := s.InstrOnly().InSeqFraction(4); math.Abs(f-0.7) > 0.04 {
		t.Errorf("instr sub-stream in-seq = %.3f, want ~0.7", f)
	}
}

func TestSpecReproducibility(t *testing.T) {
	sp := MuxSpec{
		Instr:    InstrSpec{Target: 0.6, Stride: 4, Far: Model{Regions: testRegions(0x400000)}},
		Data:     DataSpec{Target: 0.1, Jump: Model{Stride: 4, Regions: testRegions(0x10000000)}},
		DataFrac: 0.1,
	}
	a := sp.Stream("m", 32, 5000, 9).Addresses()
	b := sp.Stream("m", 32, 5000, 9).Addresses()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
}
