package workload

import "busenc/internal/trace"

// Fit estimates the synthetic-model parameters of an observed multiplexed
// stream, so a reproducible synthetic twin can stand in for a trace that
// cannot be shipped (the situation this repository is in with the paper's
// original workloads). The twin matches the statistics the codes are
// sensitive to: per-class in-sequence fractions and the data fraction of
// the bus.
func Fit(name string, s *trace.Stream, stride uint64) Benchmark {
	instr := s.InstrOnly()
	data := s.DataOnly()
	b := Benchmark{
		Name:   name,
		Length: s.Len(),
		Seed:   1,
	}
	if s.Len() > 0 {
		b.DataFrac = float64(data.Len()) / float64(s.Len())
	}
	b.InstrSeq = clampTarget(instr.InSeqFraction(stride), instrSeqLow, instrSeqHigh)
	b.DataSeq = clampTarget(data.InSeqFraction(stride), dataSeqLow, dataSeqHigh)
	return b
}

// clampTarget keeps a fitted fraction inside the regime model's reachable
// band (the generators mix a high and a low regime, so targets outside
// [low, high] are unreachable).
func clampTarget(f, lo, hi float64) float64 {
	const margin = 0.01
	if f < lo+margin {
		return lo + margin
	}
	if f > hi-margin {
		return hi - margin
	}
	return f
}
