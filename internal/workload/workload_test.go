package workload

import (
	"math"
	"testing"

	"busenc/internal/trace"
)

func TestRandomStreamProperties(t *testing.T) {
	s := Random(32, 1000, 1)
	if s.Len() != 1000 || s.Width != 32 {
		t.Fatalf("len=%d width=%d", s.Len(), s.Width)
	}
	// A uniform stream has essentially no sequential pairs.
	if f := s.InSeqFraction(4); f > 0.01 {
		t.Errorf("random stream in-seq fraction = %v", f)
	}
}

func TestSequentialStreamProperties(t *testing.T) {
	s := Sequential(32, 1000, 0x400000, 4)
	if f := s.InSeqFraction(4); f != 1 {
		t.Errorf("sequential stream in-seq fraction = %v, want 1", f)
	}
	if s.Entries[999].Addr != 0x400000+999*4 {
		t.Errorf("last address = %#x", s.Entries[999].Addr)
	}
}

func TestGeneratorReproducible(t *testing.T) {
	b := Suite()[0]
	a1 := b.Instr().Addresses()
	a2 := b.Instr().Addresses()
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestModelHitsTargetInSeqFraction(t *testing.T) {
	for _, b := range Suite() {
		if got := b.Instr().InSeqFraction(Stride); math.Abs(got-b.InstrSeq) > 0.02 {
			t.Errorf("%s: instr in-seq = %v, target %v", b.Name, got, b.InstrSeq)
		}
		if got := b.Data().InSeqFraction(Stride); math.Abs(got-b.DataSeq) > 0.02 {
			t.Errorf("%s: data in-seq = %v, target %v", b.Name, got, b.DataSeq)
		}
	}
}

func TestSuiteAveragesMatchPaper(t *testing.T) {
	// The paper reports suite-average in-sequence fractions of 63.04%
	// (instruction), 11.39% (data) and 57.62% (multiplexed). The
	// calibrated suite must land close to those.
	var instr, data, mux float64
	suite := Suite()
	for _, b := range suite {
		instr += b.Instr().InSeqFraction(Stride)
		data += b.Data().InSeqFraction(Stride)
		mux += b.Muxed().InSeqFraction(Stride)
	}
	n := float64(len(suite))
	instr, data, mux = instr/n, data/n, mux/n
	if math.Abs(instr-0.6304) > 0.02 {
		t.Errorf("suite instruction in-seq average = %v, paper 0.6304", instr)
	}
	if math.Abs(data-0.1139) > 0.02 {
		t.Errorf("suite data in-seq average = %v, paper 0.1139", data)
	}
	if math.Abs(mux-0.5762) > 0.03 {
		t.Errorf("suite multiplexed in-seq average = %v, paper 0.5762", mux)
	}
}

func TestMuxedStreamComposition(t *testing.T) {
	b := Suite()[3]
	m := b.Muxed()
	dataCount := 0
	for _, e := range m.Entries {
		if e.Kind.IsData() {
			dataCount++
		}
	}
	frac := float64(dataCount) / float64(m.Len())
	if math.Abs(frac-b.DataFrac) > 0.01 {
		t.Errorf("data fraction = %v, target %v", frac, b.DataFrac)
	}
}

func TestJumpTargetsStrideAligned(t *testing.T) {
	b := Suite()[0]
	for _, e := range b.Instr().Entries {
		if e.Addr%Stride != 0 {
			t.Fatalf("instruction address %#x not stride-aligned", e.Addr)
		}
	}
}

func TestSuiteHasNinePaperBenchmarks(t *testing.T) {
	names := map[string]bool{}
	for _, b := range Suite() {
		names[b.Name] = true
	}
	for _, want := range []string{"gzip", "gunzip", "ghostview", "espresso", "nova", "jedi", "latex", "matlab", "oracle"} {
		if !names[want] {
			t.Errorf("suite missing benchmark %q", want)
		}
	}
}

func TestDataStreamHasReadsAndWrites(t *testing.T) {
	d := Suite()[0].Data()
	var r, w int
	for _, e := range d.Entries {
		switch e.Kind {
		case trace.DataRead:
			r++
		case trace.DataWrite:
			w++
		default:
			t.Fatalf("instruction entry in data stream: %+v", e)
		}
	}
	if r == 0 || w == 0 {
		t.Errorf("reads=%d writes=%d", r, w)
	}
}
