package workload

import (
	"math"
	"testing"

	"busenc/internal/mips"
	"busenc/internal/mips/progs"
)

func TestFitRecoversSyntheticParameters(t *testing.T) {
	orig := Benchmark{Name: "orig", InstrSeq: 0.62, DataSeq: 0.12, DataFrac: 0.10, Length: 60000, Seed: 7}
	fit := Fit("twin", orig.Muxed(), Stride)
	if math.Abs(fit.InstrSeq-orig.InstrSeq) > 0.03 {
		t.Errorf("fitted InstrSeq = %.3f, want ~%.3f", fit.InstrSeq, orig.InstrSeq)
	}
	if math.Abs(fit.DataSeq-orig.DataSeq) > 0.03 {
		t.Errorf("fitted DataSeq = %.3f, want ~%.3f", fit.DataSeq, orig.DataSeq)
	}
	if math.Abs(fit.DataFrac-orig.DataFrac) > 0.01 {
		t.Errorf("fitted DataFrac = %.3f, want ~%.3f", fit.DataFrac, orig.DataFrac)
	}
}

func TestFitTwinTracksRealTrace(t *testing.T) {
	// Fit a synthetic twin to a real simulator trace; the twin's muxed
	// stream statistics must land near the original's.
	b, err := progs.Get("espresso")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	real, _, err := mips.Run(p, "espresso", b.MaxCycles)
	if err != nil {
		t.Fatal(err)
	}
	twinSpec := Fit("espresso-twin", real, Stride)
	twin := twinSpec.Muxed()
	if twin.Len() != real.Len() {
		t.Errorf("twin length %d, want %d", twin.Len(), real.Len())
	}
	rf := real.InSeqFraction(Stride)
	tf := twin.InSeqFraction(Stride)
	// The muxed in-seq fraction is a derived quantity (not fitted
	// directly); allow a coarser tolerance.
	if math.Abs(rf-tf) > 0.10 {
		t.Errorf("twin muxed in-seq %.3f vs real %.3f", tf, rf)
	}
	// Data fractions must match closely.
	realData := float64(real.DataOnly().Len()) / float64(real.Len())
	twinData := float64(twin.DataOnly().Len()) / float64(twin.Len())
	if math.Abs(realData-twinData) > 0.02 {
		t.Errorf("twin data fraction %.3f vs real %.3f", twinData, realData)
	}
}

func TestFitClampsUnreachableTargets(t *testing.T) {
	// A perfectly sequential stream exceeds the regime model's reachable
	// band; Fit must clamp rather than produce an invalid generator.
	s := Sequential(32, 5000, 0, 4)
	fit := Fit("seq", s, 4)
	if fit.InstrSeq >= instrSeqHigh {
		t.Errorf("InstrSeq %.3f not clamped below %v", fit.InstrSeq, instrSeqHigh)
	}
	// The generator built from the fit must still work.
	twin := fit.Instr()
	if twin.InSeqFraction(4) < 0.85 {
		t.Errorf("clamped twin in-seq %.3f too low", twin.InSeqFraction(4))
	}
}

func TestFitEmptyStream(t *testing.T) {
	s := Sequential(32, 0, 0, 4)
	fit := Fit("empty", s, 4)
	if fit.DataFrac != 0 || fit.Length != 0 {
		t.Errorf("empty fit: %+v", fit)
	}
}
