// Package power converts switching-activity figures into electrical power
// numbers: bus lines on chip, and output pads driving large external loads
// off chip (Section 4.3 of the paper — "pads usually represent the most
// power consuming part of the entire chip").
package power

// Model fixes the electrical operating point. The paper's experiments run
// at 3.3 V and 100 MHz.
type Model struct {
	Vdd    float64 // supply voltage, volts
	FreqHz float64 // bus clock, hertz
}

// Default returns the paper's operating point.
func Default() Model { return Model{Vdd: 3.3, FreqHz: 100e6} }

// EnergyPerTransition returns the energy to charge or discharge capF.
func (m Model) EnergyPerTransition(capF float64) float64 {
	return 0.5 * capF * m.Vdd * m.Vdd
}

// LinePower returns the average power of one bus line with the given
// toggle probability per cycle driving capF.
func (m Model) LinePower(alpha, capF float64) float64 {
	return m.EnergyPerTransition(capF) * alpha * m.FreqHz
}

// BusPower returns the total power of a bus whose lines toggle avgPerCycle
// times per cycle in aggregate, each line loaded with capF.
func (m Model) BusPower(avgPerCycle, capF float64) float64 {
	return m.EnergyPerTransition(capF) * avgPerCycle * m.FreqHz
}

// Pad models one output pad of the chip interface.
type Pad struct {
	// InputCapF is the capacitance the core logic sees at the pad input
	// (the paper uses 0.01 pF for an 8 mA pad).
	InputCapF float64
	// DriverCapF is the pad's own output-stage parasitic capacitance.
	DriverCapF float64
	// InternalEnergyJ is the short-circuit energy per output transition.
	InternalEnergyJ float64
}

// DefaultPad returns an 8 mA-class output pad.
func DefaultPad() Pad {
	return Pad{InputCapF: 0.01e-12, DriverCapF: 2e-12, InternalEnergyJ: 20e-12}
}

// Power returns the pad's average power when its output toggles with
// probability alpha per cycle into an external load of loadF.
func (p Pad) Power(m Model, alpha, loadF float64) float64 {
	perTransition := m.EnergyPerTransition(loadF+p.DriverCapF) + p.InternalEnergyJ
	return perTransition * alpha * m.FreqHz
}

// PadBankPower returns the total power of one pad per bus line, given the
// per-line toggle probabilities of the encoded stream.
func PadBankPower(m Model, p Pad, lineAlphas []float64, loadF float64) float64 {
	total := 0.0
	for _, a := range lineAlphas {
		total += p.Power(m, a, loadF)
	}
	return total
}
