package power

import (
	"math"
	"testing"
)

func almost(a, b, rel float64) bool {
	if b == 0 {
		return a == 0
	}
	return math.Abs(a-b)/math.Abs(b) <= rel
}

func TestEnergyPerTransition(t *testing.T) {
	m := Model{Vdd: 3.3, FreqHz: 100e6}
	// 0.5 * 1pF * 3.3^2 = 5.445 pJ.
	if got := m.EnergyPerTransition(1e-12); !almost(got, 5.445e-12, 1e-9) {
		t.Errorf("E = %g", got)
	}
}

func TestLinePower(t *testing.T) {
	m := Default()
	// alpha=0.5, C=10pF, 100MHz: 0.5*10p*10.89*0.5*1e8 = 2.7225 mW.
	if got := m.LinePower(0.5, 10e-12); !almost(got, 2.7225e-3, 1e-9) {
		t.Errorf("P = %g", got)
	}
	if m.LinePower(0, 10e-12) != 0 {
		t.Error("idle line dissipates nothing")
	}
}

func TestBusPowerLinearInActivity(t *testing.T) {
	m := Default()
	p1 := m.BusPower(8, 20e-12)
	p2 := m.BusPower(16, 20e-12)
	if !almost(p2, 2*p1, 1e-12) {
		t.Errorf("BusPower not linear: %g vs %g", p1, p2)
	}
}

func TestPadPowerDominatedByExternalLoad(t *testing.T) {
	m := Default()
	pad := DefaultPad()
	small := pad.Power(m, 0.5, 1e-12)
	big := pad.Power(m, 0.5, 100e-12)
	if big <= small {
		t.Error("larger external load must increase pad power")
	}
	// At 100pF the load term (~272 pJ/transition) dwarfs the internal
	// energy (20 pJ): the ratio to a 1pF load should be large.
	if big/small < 5 {
		t.Errorf("load scaling too weak: %g vs %g", big, small)
	}
}

func TestPadBankPowerSumsLines(t *testing.T) {
	m := Default()
	pad := DefaultPad()
	alphas := []float64{0.1, 0.2, 0.3}
	want := 0.0
	for _, a := range alphas {
		want += pad.Power(m, a, 50e-12)
	}
	if got := PadBankPower(m, pad, alphas, 50e-12); !almost(got, want, 1e-12) {
		t.Errorf("bank = %g, want %g", got, want)
	}
	if PadBankPower(m, pad, nil, 50e-12) != 0 {
		t.Error("empty bank must be zero")
	}
}

func TestDefaultPadSpecs(t *testing.T) {
	pad := DefaultPad()
	if pad.InputCapF != 0.01e-12 {
		t.Errorf("pad input cap = %g, paper uses 0.01 pF", pad.InputCapF)
	}
	if pad.InternalEnergyJ <= 0 || pad.DriverCapF <= 0 {
		t.Error("pad parameters must be positive")
	}
}
