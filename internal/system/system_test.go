package system

import (
	"testing"

	"busenc/internal/cache"
	"busenc/internal/codec"
	"busenc/internal/mips/progs"
	"busenc/internal/workload"
)

func testStream() Config {
	b := workload.Suite()[0]
	return Config{
		Stream: b.Muxed().Slice(0, 8000),
		CPUBus: BusConfig{
			Code:     "dualt0bi",
			Options:  codec.Options{Stride: 4},
			LineCapF: 50e-12,
			OffChip:  true,
		},
	}
}

func TestEvaluateSyntheticStream(t *testing.T) {
	rep, err := Evaluate(testStream())
	if err != nil {
		t.Fatal(err)
	}
	cb := rep.CPUBus
	if cb.Refs != 8000 || cb.Code != "dualt0bi" {
		t.Fatalf("report header wrong: %+v", cb)
	}
	if cb.Transitions >= cb.BinaryTransitions {
		t.Error("encoding did not reduce transitions")
	}
	if cb.BusPowerW >= cb.BinaryBusPowerW {
		t.Error("encoding did not reduce bus power")
	}
	if !cb.HWModeled || cb.CodecPowerW <= 0 {
		t.Error("codec logic power should be modeled for dualt0bi")
	}
	// At 50 pF off-chip the activity savings dominate the codec logic.
	if cb.NetSavingsPct <= 0 {
		t.Errorf("net savings %.2f%%, want positive", cb.NetSavingsPct)
	}
	if rep.TotalPowerW() >= rep.BaselinePowerW() {
		t.Error("system with encoding should beat the binary baseline")
	}
}

func TestEvaluateWithCacheHierarchy(t *testing.T) {
	cfg := testStream()
	cfg.L1 = &cache.Config{Size: 8 << 10, LineSize: 16, Ways: 2, WriteBack: true}
	cfg.MemBus = &BusConfig{
		Code:     "businvert",
		LineCapF: 100e-12,
		OffChip:  true,
	}
	rep, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MemBus == nil {
		t.Fatal("memory bus report missing")
	}
	if rep.HitRate <= 0 || rep.HitRate >= 1 {
		t.Errorf("hit rate = %v", rep.HitRate)
	}
	if rep.MemBus.Refs >= rep.CPUBus.Refs {
		t.Error("cache should filter references")
	}
	total := rep.TotalPowerW()
	if total <= 0 {
		t.Error("total power must be positive")
	}
	if rep.MemBus.Code != "businvert" || !rep.MemBus.HWModeled {
		t.Errorf("mem bus report: %+v", rep.MemBus)
	}
}

func TestEvaluateDefaultMemBus(t *testing.T) {
	cfg := testStream()
	cfg.L1 = &cache.Config{Size: 4 << 10, LineSize: 32, Ways: 1}
	rep, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MemBus == nil || rep.MemBus.Code != "binary" {
		t.Fatalf("default memory bus should be binary: %+v", rep.MemBus)
	}
}

func TestEvaluateFromProgram(t *testing.T) {
	b, err := progs.Get("matlab")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Evaluate(Config{
		Program:   p,
		MaxCycles: b.MaxCycles,
		CPUBus: BusConfig{
			Code:     "t0",
			Options:  codec.Options{Stride: 4},
			LineCapF: 0.5e-12,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles == 0 {
		t.Error("program cycles not reported")
	}
	if rep.CPUBus.SavingsPct < 20 {
		t.Errorf("T0 savings on matlab = %.2f%%, expected substantial", rep.CPUBus.SavingsPct)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := testStream()
	cfg.CPUBus.Code = "nope"
	if _, err := Evaluate(cfg); err == nil {
		t.Error("unknown code accepted")
	}
	cfg = testStream()
	cfg.L1 = &cache.Config{Size: 3, LineSize: 5, Ways: 0}
	if _, err := Evaluate(cfg); err == nil {
		t.Error("invalid cache accepted")
	}
}

func TestCodecWithoutHardwareModel(t *testing.T) {
	cfg := testStream()
	cfg.CPUBus.Code = "workzone"
	cfg.CPUBus.Options = codec.Options{Stride: 4}
	rep, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CPUBus.HWModeled || rep.CPUBus.CodecPowerW != 0 {
		t.Error("workzone has no hardware model; codec power must be zero and flagged")
	}
}
