// Package system composes the repository's substrates into a whole-system
// power evaluation — the "system-level power optimization" of the paper's
// title: a workload (a MIPS program or a synthetic stream) drives an
// optional cache, and each bus level carries an encoding whose transition
// savings are converted to watts through the electrical model, including
// the gate-level codec logic overhead when a hardware implementation
// exists. The report answers the designer's actual question: net system
// power with and without the encoder.
package system

import (
	"fmt"
	"math/bits"

	"busenc/internal/cache"
	"busenc/internal/codec"
	"busenc/internal/core"
	"busenc/internal/hw"
	"busenc/internal/mips"
	"busenc/internal/netlist"
	"busenc/internal/power"
	"busenc/internal/trace"
)

// BusConfig describes one bus level.
type BusConfig struct {
	// Code is the encoding name ("binary" for none).
	Code string
	// Options are the codec parameters (stride etc.).
	Options codec.Options
	// LineCapF is the per-line capacitance the bus drives.
	LineCapF float64
	// OffChip includes the output-pad model (pad internal energy plus
	// the external LineCapF load).
	OffChip bool
}

// Config describes the system under evaluation.
type Config struct {
	// Program, when set, is executed on the MIPS simulator to produce
	// the processor bus stream; otherwise Stream is used directly.
	Program   *mips.Program
	MaxCycles int64
	Stream    *trace.Stream

	// CPUBus is the processor-side address bus.
	CPUBus BusConfig
	// L1, when non-nil, filters the stream; MemBus then describes the
	// bus below the cache.
	L1     *cache.Config
	MemBus *BusConfig

	// Electrical operating point; the zero value means the paper's
	// 3.3 V / 100 MHz.
	Power power.Model
}

// BusReport is the evaluation of one bus level.
type BusReport struct {
	Name string
	Code string
	Refs int
	// Transitions under the chosen code and under plain binary.
	Transitions, BinaryTransitions int64
	SavingsPct                     float64
	// BusPowerW is the line (or pad) power under the chosen code;
	// BinaryBusPowerW the same without encoding.
	BusPowerW       float64
	BinaryBusPowerW float64
	// CodecPowerW is the encoder+decoder logic power, measured on the
	// gate-level implementation when one exists (zero otherwise, with
	// HWModeled false).
	CodecPowerW float64
	HWModeled   bool
	// NetSavingsPct is the total power saving including codec overhead.
	NetSavingsPct float64
}

// Report is the whole-system evaluation.
type Report struct {
	Cycles int64
	CPUBus BusReport
	MemBus *BusReport
	// HitRate is the L1 hit rate when a cache is configured.
	HitRate float64
}

// TotalPowerW sums bus and codec power over all levels.
func (r *Report) TotalPowerW() float64 {
	total := r.CPUBus.BusPowerW + r.CPUBus.CodecPowerW
	if r.MemBus != nil {
		total += r.MemBus.BusPowerW + r.MemBus.CodecPowerW
	}
	return total
}

// BaselinePowerW is the same system with plain binary buses.
func (r *Report) BaselinePowerW() float64 {
	total := r.CPUBus.BinaryBusPowerW
	if r.MemBus != nil {
		total += r.MemBus.BinaryBusPowerW
	}
	return total
}

// hwGenerators maps codec names to gate-level implementations for logic-
// power accounting.
var hwGenerators = map[string]func(width, strideLog int) hw.Codec{
	"binary":    func(w, _ int) hw.Codec { return hw.Binary(w) },
	"gray":      hw.Gray,
	"businvert": func(w, _ int) hw.Codec { return hw.BusInvert(w) },
	"t0":        hw.T0,
	"t0bi":      hw.T0BI,
	"dualt0":    hw.DualT0,
	"dualt0bi":  hw.DualT0BI,
	"incxor":    hw.IncXor,
}

// Evaluate runs the configured system and reports power per bus level.
func Evaluate(cfg Config) (*Report, error) {
	m := cfg.Power
	if m.Vdd == 0 {
		m = power.Default()
	}
	stream := cfg.Stream
	rep := &Report{}
	if cfg.Program != nil {
		max := cfg.MaxCycles
		if max == 0 {
			max = 10_000_000
		}
		s, stats, err := mips.Run(cfg.Program, "system", max)
		if err != nil {
			return nil, err
		}
		stream = s
		rep.Cycles = stats.Cycles
	}
	if stream == nil {
		return nil, fmt.Errorf("system: no Program or Stream configured")
	}

	// The system clock ticks once per processor bus reference; lower
	// buses are idle most cycles, so their power scales by utilization.
	systemCycles := stream.Len()
	cpuRep, err := evaluateBus("cpu-bus", stream, cfg.CPUBus, m, systemCycles)
	if err != nil {
		return nil, err
	}
	rep.CPUBus = *cpuRep

	if cfg.L1 != nil {
		l1, err := cache.New(*cfg.L1)
		if err != nil {
			return nil, err
		}
		missStream := l1.Filter(stream)
		rep.HitRate = l1.HitRate()
		memCfg := cfg.MemBus
		if memCfg == nil {
			memCfg = &BusConfig{Code: "binary", LineCapF: 50e-12, OffChip: true}
		}
		memRep, err := evaluateBus("mem-bus", missStream, *memCfg, m, systemCycles)
		if err != nil {
			return nil, err
		}
		rep.MemBus = memRep
	}
	return rep, nil
}

func evaluateBus(name string, s *trace.Stream, cfg BusConfig, m power.Model, systemCycles int) (*BusReport, error) {
	width := s.Width
	c, err := codec.New(cfg.Code, width, cfg.Options)
	if err != nil {
		return nil, err
	}
	res, err := codec.Run(c, s)
	if err != nil {
		return nil, err
	}
	binRes, err := codec.Run(codec.MustNew("binary", width, codec.Options{}), s)
	if err != nil {
		return nil, err
	}
	rep := &BusReport{
		Name:              name,
		Code:              cfg.Code,
		Refs:              s.Len(),
		Transitions:       res.Transitions,
		BinaryTransitions: binRes.Transitions,
		SavingsPct:        res.SavingsVs(binRes) * 100,
	}
	rep.BusPowerW = busPower(m, cfg, res, systemCycles)
	rep.BinaryBusPowerW = busPower(m, cfg, binRes, systemCycles)

	// Utilization: the fraction of system cycles this bus actually
	// transfers a word (enable-gated codec registers idle otherwise).
	util := 1.0
	if systemCycles > 0 {
		util = float64(s.Len()) / float64(systemCycles)
	}

	// Codec logic power from the gate-level implementation, when one
	// exists for this code at this width. Binary needs no codec: its
	// drivers are part of the line/pad model already, matching the
	// paper's treatment ("the binary encoder is constituted only by the
	// output pads").
	if gen, ok := hwGenerators[cfg.Code]; ok && cfg.Code != "binary" && width+2 <= 64 {
		stride := cfg.Options.Stride
		if stride == 0 {
			stride = 1
		}
		hwc := gen(width, bits.TrailingZeros64(stride))
		meas, err := core.MeasureHW(hwc, sampled(s, 3000))
		if err != nil {
			return nil, err
		}
		lib := netlist.DefaultLibrary()
		encLoad := cfg.LineCapF
		if cfg.OffChip {
			encLoad = power.DefaultPad().InputCapF
		}
		rep.CodecPowerW = util * (lib.Power(hwc.Enc, meas.EncAct, m.FreqHz, encLoad) +
			lib.Power(hwc.Dec, meas.DecAct, m.FreqHz, core.DecoderInternalLoadF))
		rep.HWModeled = true
	}
	if rep.BinaryBusPowerW > 0 {
		rep.NetSavingsPct = (1 - (rep.BusPowerW+rep.CodecPowerW)/rep.BinaryBusPowerW) * 100
	}
	return rep, nil
}

// busPower converts a codec run's per-line toggle counts into line or pad
// power: alpha is toggles per *system* cycle, so rarely-used buses (below
// a cache) are billed only for the activity they actually carry.
func busPower(m power.Model, cfg BusConfig, res codec.Result, systemCycles int) float64 {
	denom := float64(systemCycles - 1)
	if denom <= 0 {
		denom = float64(res.Cycles - 1)
	}
	if denom <= 0 {
		return 0
	}
	alphas := make([]float64, len(res.PerLine))
	for i, tr := range res.PerLine {
		alphas[i] = float64(tr) / denom
	}
	if cfg.OffChip {
		return power.PadBankPower(m, power.DefaultPad(), alphas, cfg.LineCapF)
	}
	total := 0.0
	for _, a := range alphas {
		total += m.LinePower(a, cfg.LineCapF)
	}
	return total
}

// sampled truncates long streams for gate-level simulation speed; the
// activity statistics converge long before full length.
func sampled(s *trace.Stream, n int) *trace.Stream {
	if s.Len() <= n {
		return s
	}
	return s.Slice(0, n)
}
