package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanRecording: a parent/child pair round-trips through the flight
// recorder with labels, linkage and non-negative timing intact.
func TestSpanRecording(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 64})
	p := tr.Start("eval", StageEval).WithStream("gzip").WithCodec("t0")
	c := p.Child("chunk", StageEncode).WithChunk(3).WithShard(1)
	time.Sleep(time.Millisecond)
	c.EndErr(errors.New("boom"))
	p.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Sorted by start: parent first.
	par, ch := spans[0], spans[1]
	if par.Name != "eval" || par.Stage != StageEval || par.Stream != "gzip" {
		t.Errorf("parent = %+v", par)
	}
	if ch.Parent != par.ID {
		t.Errorf("child parent = %d, want %d", ch.Parent, par.ID)
	}
	if ch.Codec != "t0" || ch.Stream != "gzip" {
		t.Errorf("child did not inherit labels: %+v", ch)
	}
	if ch.Chunk != 3 || ch.Shard != 1 {
		t.Errorf("child labels = chunk %d shard %d", ch.Chunk, ch.Shard)
	}
	if ch.Err != "boom" {
		t.Errorf("child err = %q", ch.Err)
	}
	if ch.Dur < time.Millisecond.Nanoseconds() {
		t.Errorf("child dur = %dns, want >= 1ms", ch.Dur)
	}
	if par.Shard != -1 || par.Chunk != -1 {
		t.Errorf("unset dimensions should be -1: %+v", par)
	}
}

// TestSpanRingWrap: the recorder keeps only the most recent spans once
// a ring wraps, and never loses the newest.
func TestSpanRingWrap(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 4})
	const total = 100
	for i := 0; i < total; i++ {
		tr.Start("s", StageEncode).WithChunk(i).End()
	}
	spans := tr.Spans()
	cap := 4 * len(tr.shards)
	if len(spans) > cap {
		t.Fatalf("recorder returned %d spans, ring capacity %d", len(spans), cap)
	}
	last := spans[len(spans)-1]
	if last.Chunk != total-1 {
		t.Errorf("newest span lost: last chunk = %d, want %d", last.Chunk, total-1)
	}
}

// TestSpanSampling: Sample=4 keeps roughly a quarter and drops whole
// subtrees with their parents.
func TestSpanSampling(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 1024, Sample: 4})
	kept := 0
	for i := 0; i < 400; i++ {
		h := tr.Start("s", StageEncode)
		if h.Recording() {
			kept++
			if c := h.Child("c", StageEncode); !c.Recording() {
				t.Fatal("child of a sampled-in parent was dropped")
			} else {
				c.End()
			}
		} else if c := h.Child("c", StageEncode); c.Recording() {
			t.Fatal("child of a sampled-out parent was recorded")
		}
		h.End()
	}
	if kept == 0 || kept > 200 {
		t.Errorf("sample=4 kept %d of 400 roots", kept)
	}
}

// TestDisabledTracerInert: the nil tracer and the disabled package API
// hand out inert handles.
func TestDisabledTracerInert(t *testing.T) {
	DisableTracing()
	h := StartSpan("x", StageRead).WithCodec("t0").WithChunk(1)
	if h.Recording() {
		t.Fatal("disabled StartSpan returned a recording handle")
	}
	h.Child("y", StageEncode).End()
	h.End()
	if Spans() != nil {
		t.Error("disabled Spans() non-nil")
	}
	var nilT *Tracer
	nilT.Start("x", StageRead).End()
	if nilT.Spans() != nil {
		t.Error("nil tracer Spans() non-nil")
	}
}

// TestDisabledSpanZeroAlloc is the satellite contract: with tracing
// off, a full start/label/end sequence performs zero heap allocations.
func TestDisabledSpanZeroAlloc(t *testing.T) {
	DisableTracing()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := StartSpan("codec.chunk", StageEncode).WithCodec("t0").WithStream("gzip").WithChunk(7)
		c := sp.Child("inner", StageEncode)
		c.End()
		sp.EndErr(nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates: %v allocs/op, want 0", allocs)
	}
}

// TestEnableTracingInstallsFreshRecorder: Enable/Disable round trips,
// and each Enable starts from an empty recorder.
func TestEnableTracingInstallsFreshRecorder(t *testing.T) {
	defer DisableTracing()
	tr := EnableTracing(TracerConfig{RingSize: 16})
	if !TracingEnabled() || CurrentTracer() != tr {
		t.Fatal("EnableTracing did not install the tracer")
	}
	StartSpan("a", StageRead).End()
	if got := len(Spans()); got != 1 {
		t.Fatalf("recorded %d spans, want 1", got)
	}
	EnableTracing(TracerConfig{RingSize: 16})
	if got := len(Spans()); got != 0 {
		t.Errorf("re-enable kept %d old spans", got)
	}
}

// TestSpansConcurrent hammers the recorder from many goroutines while a
// reader snapshots — the race detector validates the locking story.
func TestSpansConcurrent(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 64})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				sp := tr.Start("s", StageEncode).WithShard(w).WithChunk(i)
				sp.End()
			}
		}(w)
	}
	go func() { wg.Wait(); close(stop) }()
	for {
		select {
		case <-stop:
			if n := len(tr.Spans()); n == 0 {
				t.Error("no spans after concurrent recording")
			}
			return
		default:
			tr.Spans()
		}
	}
}

// TestWriteTraceEvents: the export is valid trace-event JSON with one
// complete event per span, metadata lanes, and microsecond timestamps.
func TestWriteTraceEvents(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 64})
	p := tr.Start("eval", StageEval).WithStream("gzip")
	p.Child("shard", StageEncode).WithCodec("t0").WithShard(0).End()
	p.Child("shard", StageEncode).WithCodec("t0").WithShard(1).End()
	p.End()

	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	var complete, meta int
	tids := map[float64]bool{}
	for _, ev := range f.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
			if ev["name"] == "" || ev["ts"] == nil {
				t.Errorf("incomplete X event: %v", ev)
			}
			tids[ev["tid"].(float64)] = true
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %v", ev["ph"])
		}
	}
	if complete != 3 {
		t.Errorf("complete events = %d, want 3", complete)
	}
	// Distinct (stage,codec,shard) combos: eval lane + two shard lanes.
	if len(tids) != 3 {
		t.Errorf("lanes = %d, want 3", len(tids))
	}
	if meta < 4 { // process_name + 3 thread_name
		t.Errorf("metadata events = %d, want >= 4", meta)
	}
}

// TestAggregateSpansQuantiles pins the attribution math on known
// durations.
func TestAggregateSpansQuantiles(t *testing.T) {
	spans := make([]Span, 0, 100)
	for i := 1; i <= 100; i++ {
		spans = append(spans, Span{Stage: StageEncode, Codec: "t0", Dur: int64(i)})
	}
	spans = append(spans, Span{Stage: StageRead, Dur: 10_000})
	stats := AggregateSpans(spans)
	if len(stats) != 2 {
		t.Fatalf("groups = %d, want 2", len(stats))
	}
	if stats[0].Stage != StageRead {
		t.Errorf("not sorted by total: %+v", stats)
	}
	enc := stats[1]
	if enc.Count != 100 || enc.MaxNs != 100 {
		t.Errorf("encode group = %+v", enc)
	}
	if enc.P50Ns < 49 || enc.P50Ns > 51 {
		t.Errorf("p50 = %d, want ~50", enc.P50Ns)
	}
	if enc.P95Ns < 94 || enc.P95Ns > 96 {
		t.Errorf("p95 = %d, want ~95", enc.P95Ns)
	}
}

// TestWriteSpanTable: the rendered view names the stages and calls out
// the slowest shard and chunk.
func TestWriteSpanTable(t *testing.T) {
	spans := []Span{
		{Stage: StageEncode, Codec: "t0", Name: "codec.shard", Shard: 2, Chunk: -1, Dur: 5000},
		{Stage: StageEncode, Codec: "t0", Name: "codec.chunk", Shard: -1, Chunk: 9, Dur: 800},
		{Stage: StageRead, Name: "trace.next", Shard: -1, Chunk: 4, Dur: 300},
	}
	var buf bytes.Buffer
	if err := WriteSpanTable(&buf, spans); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"encode", "read", "slowest shard: t0 shard 2", "slowest chunk: chunk 9"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := WriteSpanTable(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no spans") {
		t.Errorf("empty table = %q", buf.String())
	}
}

// TestHistogramTopBucketClamp is the overflow satellite: huge
// observations (far beyond any ~2s span duration) clamp into the top
// bucket and snapshot with a positive upper edge instead of wrapping
// negative.
func TestHistogramTopBucketClamp(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxInt64)
	h.Observe(3) // a small value, so the snapshot has a second bucket
	s := h.snapshot()
	if s.Count != 2 || s.Max != math.MaxInt64 {
		t.Fatalf("snapshot = %+v", s)
	}
	top := s.Buckets[len(s.Buckets)-1]
	if top.Lo != 1<<62 || top.Hi != math.MaxInt64 {
		t.Errorf("top bucket = [%d,%d), want [1<<62, MaxInt64]", top.Lo, top.Hi)
	}
	if top.Hi <= top.Lo {
		t.Errorf("top bucket edge wrapped: hi %d <= lo %d", top.Hi, top.Lo)
	}
	if got := bucketOf(math.MaxInt64); got != histBuckets-1 {
		t.Errorf("bucketOf(MaxInt64) = %d, want %d", got, histBuckets-1)
	}
	if got := bucketOf(-1); got != 0 {
		t.Errorf("bucketOf(-1) = %d, want 0", got)
	}
}

// promLine matches legal exposition sample lines.
var promLine = regexp.MustCompile(`^(# (TYPE|HELP) )?[a-zA-Z_:][a-zA-Z0-9_:]*(_bucket\{le="[^"]+"\})?( (counter|gauge|histogram))?( -?\d+)?$`)

// TestWritePrometheus: counters, gauges and histograms all render as
// legal text exposition with cumulative buckets.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry("test-prom")
	r.Counter("a.count").Add(5)
	r.Gauge("b.depth").Set(-2)
	h := r.Histogram("c.ns")
	h.Observe(1)
	h.Observe(3)
	h.Observe(3)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE busenc_test_prom_a_count counter",
		"busenc_test_prom_a_count 5",
		"# TYPE busenc_test_prom_b_depth gauge",
		"busenc_test_prom_b_depth -2",
		"# TYPE busenc_test_prom_c_ns histogram",
		`busenc_test_prom_c_ns_bucket{le="2"} 1`,
		`busenc_test_prom_c_ns_bucket{le="4"} 3`,
		`busenc_test_prom_c_ns_bucket{le="+Inf"} 3`,
		"busenc_test_prom_c_ns_sum 7",
		"busenc_test_prom_c_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("illegal exposition line %q", line)
		}
	}
}

// BenchmarkDisabledSpan measures the disabled-tracer hot path — one
// atomic load, a branch, zero allocations — next to the disabled
// counter benchmark it mirrors.
func BenchmarkDisabledSpan(b *testing.B) {
	DisableTracing()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := StartSpan("bench.disabled", StageEncode).WithChunk(i)
		sp.End()
	}
}

// BenchmarkEnabledSpan measures the live record cost (slot claim +
// copy into the ring).
func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTracer(TracerConfig{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("bench.enabled", StageEncode).WithChunk(i)
		sp.End()
	}
}
