package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanRecording: a parent/child pair round-trips through the flight
// recorder with labels, linkage and non-negative timing intact.
func TestSpanRecording(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 64})
	p := tr.Start("eval", StageEval).WithStream("gzip").WithCodec("t0")
	c := p.Child("chunk", StageEncode).WithChunk(3).WithShard(1)
	time.Sleep(time.Millisecond)
	c.EndErr(errors.New("boom"))
	p.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Sorted by start: parent first.
	par, ch := spans[0], spans[1]
	if par.Name != "eval" || par.Stage != StageEval || par.Stream != "gzip" {
		t.Errorf("parent = %+v", par)
	}
	if ch.Parent != par.ID {
		t.Errorf("child parent = %d, want %d", ch.Parent, par.ID)
	}
	if ch.Codec != "t0" || ch.Stream != "gzip" {
		t.Errorf("child did not inherit labels: %+v", ch)
	}
	if ch.Chunk != 3 || ch.Shard != 1 {
		t.Errorf("child labels = chunk %d shard %d", ch.Chunk, ch.Shard)
	}
	if ch.Err != "boom" {
		t.Errorf("child err = %q", ch.Err)
	}
	if ch.Dur < time.Millisecond.Nanoseconds() {
		t.Errorf("child dur = %dns, want >= 1ms", ch.Dur)
	}
	if par.Shard != -1 || par.Chunk != -1 {
		t.Errorf("unset dimensions should be -1: %+v", par)
	}
}

// TestSpanRingWrap: the recorder keeps only the most recent spans once
// a ring wraps, and never loses the newest.
func TestSpanRingWrap(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 4})
	const total = 100
	for i := 0; i < total; i++ {
		tr.Start("s", StageEncode).WithChunk(i).End()
	}
	spans := tr.Spans()
	cap := 4 * len(tr.shards)
	if len(spans) > cap {
		t.Fatalf("recorder returned %d spans, ring capacity %d", len(spans), cap)
	}
	last := spans[len(spans)-1]
	if last.Chunk != total-1 {
		t.Errorf("newest span lost: last chunk = %d, want %d", last.Chunk, total-1)
	}
}

// TestSpanSampling: Sample=4 keeps roughly a quarter and drops whole
// subtrees with their parents.
func TestSpanSampling(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 1024, Sample: 4})
	kept := 0
	for i := 0; i < 400; i++ {
		h := tr.Start("s", StageEncode)
		if h.Recording() {
			kept++
			if c := h.Child("c", StageEncode); !c.Recording() {
				t.Fatal("child of a sampled-in parent was dropped")
			} else {
				c.End()
			}
		} else if c := h.Child("c", StageEncode); c.Recording() {
			t.Fatal("child of a sampled-out parent was recorded")
		}
		h.End()
	}
	if kept == 0 || kept > 200 {
		t.Errorf("sample=4 kept %d of 400 roots", kept)
	}
}

// TestDisabledTracerInert: the nil tracer and the disabled package API
// hand out inert handles.
func TestDisabledTracerInert(t *testing.T) {
	DisableTracing()
	h := StartSpan("x", StageRead).WithCodec("t0").WithChunk(1)
	if h.Recording() {
		t.Fatal("disabled StartSpan returned a recording handle")
	}
	h.Child("y", StageEncode).End()
	h.End()
	if Spans() != nil {
		t.Error("disabled Spans() non-nil")
	}
	var nilT *Tracer
	nilT.Start("x", StageRead).End()
	if nilT.Spans() != nil {
		t.Error("nil tracer Spans() non-nil")
	}
}

// TestDisabledSpanZeroAlloc is the satellite contract: with tracing
// off, a full start/label/end sequence — including the cross-process
// context-propagation fields (StartSpanCtx with a populated context,
// Context() extraction, Child) — performs zero heap allocations and
// costs one atomic load plus a branch per Start.
func TestDisabledSpanZeroAlloc(t *testing.T) {
	DisableTracing()
	ctx := SpanContext{Trace: "deadbeef01020304", Parent: 42}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := StartSpan("codec.chunk", StageEncode).WithCodec("t0").WithStream("gzip").WithChunk(7)
		c := sp.Child("inner", StageEncode)
		c.End()
		sp.EndErr(nil)

		rsp := StartSpanCtx("dist.shard_price", StageEncode, ctx).WithShard(3)
		if rsp.Context() != (SpanContext{}) {
			t.Fatal("disabled handle leaked a non-zero context")
		}
		rc := rsp.Child("codec_price", StageEncode)
		rc.End()
		rsp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates: %v allocs/op, want 0", allocs)
	}
}

// TestSpanContextPropagation: StartCtx roots a span under an inherited
// trace/parent, Child carries the trace tag down, and Context() hands
// out the payload the next process should parent to.
func TestSpanContextPropagation(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 64})
	root := tr.StartCtx("dist.worker_conn", StageEval, SpanContext{Trace: "cafe0123", Parent: 99})
	child := root.Child("dist.shard_price", StageEncode).WithShard(2)
	ctx := child.Context()
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	r, c := spans[0], spans[1]
	if r.Trace != "cafe0123" || r.Parent != 99 {
		t.Errorf("root trace/parent = %q/%d, want cafe0123/99", r.Trace, r.Parent)
	}
	if c.Trace != "cafe0123" {
		t.Errorf("child did not inherit trace: %q", c.Trace)
	}
	if c.Parent != r.ID {
		t.Errorf("child parent = %d, want %d", c.Parent, r.ID)
	}
	if ctx.Trace != "cafe0123" || ctx.Parent != c.ID {
		t.Errorf("Context() = %+v, want trace cafe0123 parent %d", ctx, c.ID)
	}
	if (tr.Start("plain", StageRead)).Context().Trace != "" {
		t.Error("plain Start picked up a trace tag")
	}
}

// TestNewTraceID: IDs are 16 hex chars and distinct across mints.
func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("trace ID lengths = %d/%d, want 16", len(a), len(b))
	}
	if a == b {
		t.Fatalf("two mints collided: %q", a)
	}
	if _, err := json.Marshal(a); err != nil {
		t.Fatal(err)
	}
}

// TestEnableTracingInstallsFreshRecorder: Enable/Disable round trips,
// and each Enable starts from an empty recorder.
func TestEnableTracingInstallsFreshRecorder(t *testing.T) {
	defer DisableTracing()
	tr := EnableTracing(TracerConfig{RingSize: 16})
	if !TracingEnabled() || CurrentTracer() != tr {
		t.Fatal("EnableTracing did not install the tracer")
	}
	StartSpan("a", StageRead).End()
	if got := len(Spans()); got != 1 {
		t.Fatalf("recorded %d spans, want 1", got)
	}
	EnableTracing(TracerConfig{RingSize: 16})
	if got := len(Spans()); got != 0 {
		t.Errorf("re-enable kept %d old spans", got)
	}
}

// TestSpansConcurrent hammers the recorder from many goroutines while a
// reader snapshots — the race detector validates the locking story.
func TestSpansConcurrent(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 64})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				sp := tr.Start("s", StageEncode).WithShard(w).WithChunk(i)
				sp.End()
			}
		}(w)
	}
	go func() { wg.Wait(); close(stop) }()
	for {
		select {
		case <-stop:
			if n := len(tr.Spans()); n == 0 {
				t.Error("no spans after concurrent recording")
			}
			return
		default:
			tr.Spans()
		}
	}
}

// TestWriteTraceEvents: the export is valid trace-event JSON with one
// complete event per span, metadata lanes, and microsecond timestamps.
func TestWriteTraceEvents(t *testing.T) {
	tr := NewTracer(TracerConfig{RingSize: 64})
	p := tr.Start("eval", StageEval).WithStream("gzip")
	p.Child("shard", StageEncode).WithCodec("t0").WithShard(0).End()
	p.Child("shard", StageEncode).WithCodec("t0").WithShard(1).End()
	p.End()

	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	var complete, meta int
	tids := map[float64]bool{}
	for _, ev := range f.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
			if ev["name"] == "" || ev["ts"] == nil {
				t.Errorf("incomplete X event: %v", ev)
			}
			tids[ev["tid"].(float64)] = true
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %v", ev["ph"])
		}
	}
	if complete != 3 {
		t.Errorf("complete events = %d, want 3", complete)
	}
	// Distinct (stage,codec,shard) combos: eval lane + two shard lanes.
	if len(tids) != 3 {
		t.Errorf("lanes = %d, want 3", len(tids))
	}
	if meta < 4 { // process_name + 3 thread_name
		t.Errorf("metadata events = %d, want >= 4", meta)
	}
}

// TestWriteMergedTraceEvents: each process gets its own pid lane with
// host/os_pid/epoch metadata, and timestamps are rebased onto the
// shared wall clock so cross-process ordering is honest.
func TestWriteMergedTraceEvents(t *testing.T) {
	procs := []ProcessTrace{
		{
			Label: "coordinator", Host: "alpha", PID: 100, EpochUnixNs: 1_000_000,
			Spans: []Span{{ID: 1, Name: "dist.sweep", Stage: StageEval, Shard: -1, Chunk: -1, Start: 5_000, Dur: 90_000}},
		},
		{
			Label: "worker beta/200", Host: "beta", PID: 200, EpochUnixNs: 1_010_000,
			Spans: []Span{{ID: 7, Trace: "cafe0123", Parent: 1, Name: "dist.shard_price", Stage: StageEncode, Shard: 0, Chunk: -1, Start: 0, Dur: 40_000}},
		},
	}
	var buf bytes.Buffer
	if err := WriteMergedTraceEvents(&buf, procs); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("merged export is not valid JSON: %v\n%s", err, buf.String())
	}
	pids := map[float64]bool{}
	var coordTs, workTs float64 = -1, -1
	for _, ev := range f.TraceEvents {
		pids[ev["pid"].(float64)] = true
		if ev["ph"] == "M" && ev["name"] == "process_name" {
			args := ev["args"].(map[string]any)
			if args["host"] == nil || args["os_pid"] == nil || args["epoch_unix_ns"] == nil {
				t.Errorf("process_name metadata incomplete: %v", args)
			}
		}
		if ev["ph"] == "X" {
			switch ev["name"] {
			case "dist.sweep":
				coordTs = ev["ts"].(float64)
			case "dist.shard_price":
				workTs = ev["ts"].(float64)
				args := ev["args"].(map[string]any)
				if args["trace"] != "cafe0123" || args["parent"] != float64(1) {
					t.Errorf("worker span lost context args: %v", args)
				}
			}
		}
	}
	if len(pids) != 2 {
		t.Fatalf("pid lanes = %d, want 2", len(pids))
	}
	// Coordinator span starts at wall 1_005_000, worker at 1_010_000:
	// after rebasing onto the earliest span, ts are 0µs and 5µs.
	if coordTs != 0 || workTs != 5 {
		t.Errorf("rebased ts = coord %v, worker %v; want 0 and 5", coordTs, workTs)
	}
}

// TestWriteMergedTraceEventsDeterministic is the satellite contract:
// merging the same span sets twice yields byte-identical files.
func TestWriteMergedTraceEventsDeterministic(t *testing.T) {
	procs := []ProcessTrace{
		{Label: "coordinator", Host: "a", PID: 1, EpochUnixNs: 500, Spans: []Span{
			{ID: 1, Name: "dist.sweep", Stage: StageEval, Shard: -1, Chunk: -1, Start: 10, Dur: 400},
			{ID: 2, Parent: 1, Name: "dist.shard", Stage: StageEncode, Codec: "businv", Shard: 1, Chunk: -1, Start: 20, Dur: 100},
		}},
		{Label: "worker b/2", Host: "b", PID: 2, EpochUnixNs: 700, Spans: []Span{
			{ID: 3, Trace: "feed0456", Name: "dist.shard_price", Stage: StageEncode, Codec: "gray", Shard: 0, Chunk: 3, Start: 5, Dur: 50, Stream: "s", Err: "boom"},
		}},
	}
	var a, b bytes.Buffer
	if err := WriteMergedTraceEvents(&a, procs); err != nil {
		t.Fatal(err)
	}
	if err := WriteMergedTraceEvents(&b, procs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("merged output not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	if a.Len() == 0 {
		t.Fatal("empty merged output")
	}
	// Empty input still renders a loadable (if blank) file, twice the same.
	a.Reset()
	b.Reset()
	if err := WriteMergedTraceEvents(&a, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteMergedTraceEvents(&b, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("empty merged output not deterministic")
	}
}

// TestHistogramSnapshotQuantile pins the exported bucket-quantile
// estimate the serve SLO layer reports.
func TestHistogramSnapshotQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(3) // bucket [2,4)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000) // bucket [512,1024)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 4 {
		t.Errorf("p50 = %d, want bucket edge 4", got)
	}
	if got := s.Quantile(0.99); got != 1024 {
		t.Errorf("p99 = %d, want bucket edge 1024", got)
	}
	if got := s.Quantile(1); got != 1024 {
		t.Errorf("p100 = %d, want 1024", got)
	}
	var top Histogram
	top.Observe(math.MaxInt64)
	if got := top.Snapshot().Quantile(0.5); got != math.MaxInt64 {
		t.Errorf("top-bucket quantile = %d, want observed max", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
}

// TestAggregateSpansQuantiles pins the attribution math on known
// durations.
func TestAggregateSpansQuantiles(t *testing.T) {
	spans := make([]Span, 0, 100)
	for i := 1; i <= 100; i++ {
		spans = append(spans, Span{Stage: StageEncode, Codec: "t0", Dur: int64(i)})
	}
	spans = append(spans, Span{Stage: StageRead, Dur: 10_000})
	stats := AggregateSpans(spans)
	if len(stats) != 2 {
		t.Fatalf("groups = %d, want 2", len(stats))
	}
	if stats[0].Stage != StageRead {
		t.Errorf("not sorted by total: %+v", stats)
	}
	enc := stats[1]
	if enc.Count != 100 || enc.MaxNs != 100 {
		t.Errorf("encode group = %+v", enc)
	}
	if enc.P50Ns < 49 || enc.P50Ns > 51 {
		t.Errorf("p50 = %d, want ~50", enc.P50Ns)
	}
	if enc.P95Ns < 94 || enc.P95Ns > 96 {
		t.Errorf("p95 = %d, want ~95", enc.P95Ns)
	}
}

// TestWriteSpanTable: the rendered view names the stages and calls out
// the slowest shard and chunk.
func TestWriteSpanTable(t *testing.T) {
	spans := []Span{
		{Stage: StageEncode, Codec: "t0", Name: "codec.shard", Shard: 2, Chunk: -1, Dur: 5000},
		{Stage: StageEncode, Codec: "t0", Name: "codec.chunk", Shard: -1, Chunk: 9, Dur: 800},
		{Stage: StageRead, Name: "trace.next", Shard: -1, Chunk: 4, Dur: 300},
	}
	var buf bytes.Buffer
	if err := WriteSpanTable(&buf, spans); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"encode", "read", "slowest shard: t0 shard 2", "slowest chunk: chunk 9"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := WriteSpanTable(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no spans") {
		t.Errorf("empty table = %q", buf.String())
	}
}

// TestHistogramTopBucketClamp is the overflow satellite: huge
// observations (far beyond any ~2s span duration) clamp into the top
// bucket and snapshot with a positive upper edge instead of wrapping
// negative.
func TestHistogramTopBucketClamp(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxInt64)
	h.Observe(3) // a small value, so the snapshot has a second bucket
	s := h.snapshot()
	if s.Count != 2 || s.Max != math.MaxInt64 {
		t.Fatalf("snapshot = %+v", s)
	}
	top := s.Buckets[len(s.Buckets)-1]
	if top.Lo != 1<<62 || top.Hi != math.MaxInt64 {
		t.Errorf("top bucket = [%d,%d), want [1<<62, MaxInt64]", top.Lo, top.Hi)
	}
	if top.Hi <= top.Lo {
		t.Errorf("top bucket edge wrapped: hi %d <= lo %d", top.Hi, top.Lo)
	}
	if got := bucketOf(math.MaxInt64); got != histBuckets-1 {
		t.Errorf("bucketOf(MaxInt64) = %d, want %d", got, histBuckets-1)
	}
	if got := bucketOf(-1); got != 0 {
		t.Errorf("bucketOf(-1) = %d, want 0", got)
	}
}

// promLine matches legal exposition sample lines.
var promLine = regexp.MustCompile(`^(# (TYPE|HELP) )?[a-zA-Z_:][a-zA-Z0-9_:]*(_bucket\{le="[^"]+"\})?( (counter|gauge|histogram))?( -?\d+)?$`)

// TestWritePrometheus: counters, gauges and histograms all render as
// legal text exposition with cumulative buckets.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry("test-prom")
	r.Counter("a.count").Add(5)
	r.Gauge("b.depth").Set(-2)
	h := r.Histogram("c.ns")
	h.Observe(1)
	h.Observe(3)
	h.Observe(3)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE busenc_test_prom_a_count counter",
		"busenc_test_prom_a_count 5",
		"# TYPE busenc_test_prom_b_depth gauge",
		"busenc_test_prom_b_depth -2",
		"# TYPE busenc_test_prom_c_ns histogram",
		`busenc_test_prom_c_ns_bucket{le="2"} 1`,
		`busenc_test_prom_c_ns_bucket{le="4"} 3`,
		`busenc_test_prom_c_ns_bucket{le="+Inf"} 3`,
		"busenc_test_prom_c_ns_sum 7",
		"busenc_test_prom_c_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("illegal exposition line %q", line)
		}
	}
}

// BenchmarkDisabledSpan measures the disabled-tracer hot path — one
// atomic load, a branch, zero allocations — next to the disabled
// counter benchmark it mirrors.
func BenchmarkDisabledSpan(b *testing.B) {
	DisableTracing()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := StartSpan("bench.disabled", StageEncode).WithChunk(i)
		sp.End()
	}
}

// BenchmarkEnabledSpan measures the live record cost (slot claim +
// copy into the ring).
func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTracer(TracerConfig{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("bench.enabled", StageEncode).WithChunk(i)
		sp.End()
	}
}
