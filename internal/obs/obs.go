// Package obs is the repository's observability layer: lock-cheap
// counters, gauges and histograms grouped into named registries, with a
// snapshot/diff API for tests and tools. It exists because the
// evaluation engine's claims are quantitative — once the hot paths were
// made fast (batched kernels, streaming fan-out), silent behavioral
// drift became the main risk, and the counters that guard against it
// must not slow down the very paths they observe.
//
// Two kinds of registries coexist:
//
//   - Explicit registries (NewRegistry) are always live. They hold
//     metrics that are cheap relative to the events they count (e.g.
//     core's once-per-process MIPS simulation counters).
//   - The default registry is gated by Enable/Disable. The package-level
//     Counter/Gauge/Histogram accessors return nil handles while
//     disabled, and every handle method is a no-op on a nil receiver, so
//     an instrumented hot path costs one predictable branch per event
//     when observability is off.
//
// Instrumented packages bind their handle bundles through a Binding,
// which rebuilds the bundle when the enable generation changes — so
// enabling metrics at process start (cmd flag parsing) is picked up by
// code that runs afterwards without any registration-order coupling.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled gates the default registry's accessors; generation counts
// Enable/Disable transitions so Bindings know when to rebuild.
var (
	enabled    atomic.Bool
	generation atomic.Uint64
)

// Enable turns the default registry's accessors on. Call it before the
// instrumented subsystems run (cmd main does this right after flag
// parsing); code that fetched handles while disabled picks the change up
// through its Binding on the next event.
func Enable() {
	if !enabled.Swap(true) {
		generation.Add(1)
	}
}

// Disable turns the default registry's accessors back off. Metric values
// already recorded are retained (the registry is not cleared).
func Disable() {
	if enabled.Swap(false) {
		generation.Add(1)
	}
}

// Enabled reports whether the default registry's accessors are live.
func Enabled() bool { return enabled.Load() }

// Generation returns the current enable generation; it changes on every
// Enable/Disable transition.
func Generation() uint64 { return generation.Load() }

// Binding caches a bundle of metric handles and rebuilds it when the
// enable generation changes. Get is an atomic load plus a compare on the
// fast path, so per-chunk call sites can fetch their bundle every time
// instead of coupling to initialization order. Concurrent rebuilds are
// harmless: registries dedupe metrics by name, so racing builders
// receive the same underlying handles.
type Binding[T any] struct {
	build func() T
	cur   atomic.Pointer[boundValue[T]]
}

type boundValue[T any] struct {
	gen uint64
	v   T
}

// NewBinding returns a Binding that builds the bundle with build; build
// typically calls the package-level Counter/Gauge/Histogram accessors,
// which yield nil (no-op) handles while disabled.
func NewBinding[T any](build func() T) *Binding[T] {
	return &Binding[T]{build: build}
}

// Get returns the bundle for the current enable generation.
func (b *Binding[T]) Get() T {
	g := generation.Load()
	if c := b.cur.Load(); c != nil && c.gen == g {
		return c.v
	}
	c := &boundValue[T]{gen: g, v: b.build()}
	b.cur.Store(c)
	return c.v
}

// Counter is a monotonically increasing atomic counter. All methods are
// safe for concurrent use and are no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (pool occupancy, fan-out
// depth). All methods are no-ops on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. 2^(i-1) <= v <
// 2^i (bucket 0 counts v <= 0). Values whose bit length would exceed
// the table — a defensive impossibility for int64 inputs, but cheap to
// guard — clamp into the top bucket rather than indexing out of range,
// so arbitrarily large span durations are always recordable; the top
// cell's snapshot upper edge is MaxInt64.
const histBuckets = 64

// Histogram accumulates a distribution in power-of-two buckets with a
// running count, sum and max — one atomic add per field per Observe, no
// locks. All methods are no-ops on a nil receiver.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// metric is the union stored in a registry.
type metric struct {
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

func (m metric) kind() string {
	switch {
	case m.counter != nil:
		return "counter"
	case m.gauge != nil:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry is a named collection of metrics. Registration (the
// Counter/Gauge/Histogram methods) takes a mutex and dedupes by name;
// the returned handles update lock-free. Explicit registries are always
// live — gating applies only to the package-level accessors.
type Registry struct {
	name    string
	mu      sync.Mutex
	metrics map[string]metric
}

// global registry list, for SnapshotAll and the cmd-level dumps.
var (
	regsMu sync.Mutex
	regs   []*Registry
)

// NewRegistry creates a registry and adds it to the global list that
// SnapshotAll walks. Registry names should be unique; metrics within a
// registry are deduped by name.
func NewRegistry(name string) *Registry {
	r := &Registry{name: name, metrics: make(map[string]metric)}
	regsMu.Lock()
	regs = append(regs, r)
	regsMu.Unlock()
	return r
}

// Name returns the registry's name.
func (r *Registry) Name() string { return r.name }

// Counter returns the registry's counter with the given name, creating
// it on first use. It panics if name is already registered as a
// different metric kind.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.counter == nil {
			panic(fmt.Sprintf("obs: %s/%s registered as %s, requested as counter", r.name, name, m.kind()))
		}
		return m.counter
	}
	c := &Counter{}
	r.metrics[name] = metric{counter: c}
	return c
}

// Gauge returns the registry's gauge with the given name, creating it on
// first use; it panics on a kind mismatch.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.gauge == nil {
			panic(fmt.Sprintf("obs: %s/%s registered as %s, requested as gauge", r.name, name, m.kind()))
		}
		return m.gauge
	}
	g := &Gauge{}
	r.metrics[name] = metric{gauge: g}
	return g
}

// Histogram returns the registry's histogram with the given name,
// creating it on first use; it panics on a kind mismatch.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.hist == nil {
			panic(fmt.Sprintf("obs: %s/%s registered as %s, requested as histogram", r.name, name, m.kind()))
		}
		return m.hist
	}
	h := &Histogram{}
	r.metrics[name] = metric{hist: h}
	return h
}

// names returns the registered metric names, sorted, for stable output.
func (r *Registry) names() []string {
	out := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// defaultReg backs the gated package-level accessors. It always exists
// (values survive Disable/Enable cycles); only handle hand-out is gated.
var defaultReg = NewRegistry("default")

// Default returns the default registry — useful for snapshotting what
// the gated accessors recorded.
func Default() *Registry { return defaultReg }

// GetCounter returns the default registry's counter, or nil (a no-op
// handle) while the package is disabled.
func GetCounter(name string) *Counter {
	if !enabled.Load() {
		return nil
	}
	return defaultReg.Counter(name)
}

// GetGauge returns the default registry's gauge, or nil while disabled.
func GetGauge(name string) *Gauge {
	if !enabled.Load() {
		return nil
	}
	return defaultReg.Gauge(name)
}

// GetHistogram returns the default registry's histogram, or nil while
// disabled.
func GetHistogram(name string) *Histogram {
	if !enabled.Load() {
		return nil
	}
	return defaultReg.Histogram(name)
}

// Registries returns the current registry list in creation order.
func Registries() []*Registry {
	regsMu.Lock()
	defer regsMu.Unlock()
	return append([]*Registry(nil), regs...)
}
