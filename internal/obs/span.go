package obs

import (
	"crypto/rand"
	"encoding/hex"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span tracing with a flight recorder. Where the metrics layer (obs.go)
// answers "how much", spans answer "where": every read → encode →
// merge → reduce hop of the evaluation pipeline is individually timed
// and written into a fixed-size sharded ring buffer — the flight
// recorder — whose most recent contents can be snapshotted at any time
// and exported as a Chrome trace-event timeline (traceevent.go), a
// per-stage latency attribution table (spanstats.go), or raw JSON
// (cmd/busencd /spans).
//
// The gating discipline mirrors the metric registry: tracing is off by
// default, StartSpan costs one atomic pointer load plus a branch while
// disabled, and every SpanHandle method is a no-op on the zero handle,
// so instrumented hot paths allocate nothing and measure nothing until
// EnableTracing installs a Tracer. Recording is lock-light: spans are
// spread over GOMAXPROCS ring shards, slots are claimed with an atomic
// cursor, and the only lock a writer touches is its shard's mutex, held
// for one struct copy and effectively uncontended thanks to the
// sharding (it exists so Spans() can take a consistent, race-free cut).

// Canonical pipeline stages. Spans carry free-form stage strings, but
// the instrumented call sites stick to this taxonomy so exports group
// predictably (see DESIGN.md section 7).
const (
	// StageRead is trace ingestion: chunk parsing (text/binary fill +
	// parse), materialization, and the fan-out producer's broadcast loop.
	StageRead = "read"
	// StageEncode is kernel work: per-chunk batch encodes, per-shard
	// pricing, and fan-out worker consumption.
	StageEncode = "encode"
	// StageMerge is the deterministic combination of per-shard buses.
	StageMerge = "merge"
	// StageReduce is result assembly after workers finish.
	StageReduce = "reduce"
	// StageEval is a whole evaluation (the root span of a pipeline run).
	StageEval = "eval"
	// StageBench marks benchmark-suite phases (cmd/paper -benchjson).
	StageBench = "bench"
	// StageNet is network transport work: peer dialing, digest-based
	// trace shipping, and anything else on the wire between a dist
	// coordinator and its busencd peers.
	StageNet = "net"
)

// Span is one timed hop of the pipeline. Shard and Chunk are -1 when
// the dimension does not apply. Start is nanoseconds since the owning
// tracer's epoch (a monotonic clock), Dur is the span's wall time.
// Trace, when non-empty, ties the span into a cross-process trace tree:
// it is inherited from the root's SpanContext (StartCtx) down through
// Child, and Parent may then name a span recorded by another process.
type Span struct {
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Trace  string `json:"trace,omitempty"`
	Name   string `json:"name"`
	Stage  string `json:"stage"`
	Codec  string `json:"codec,omitempty"`
	Stream string `json:"stream,omitempty"`
	Shard  int    `json:"shard"`
	Chunk  int    `json:"chunk"`
	Start  int64  `json:"start_ns"`
	Dur    int64  `json:"dur_ns"`
	Err    string `json:"err,omitempty"`
}

// TracerConfig sizes a Tracer.
type TracerConfig struct {
	// RingSize is the per-shard slot count, rounded up to a power of
	// two; <= 0 selects DefaultRingSize. The recorder keeps the most
	// recent RingSize × shards spans, where shards is GOMAXPROCS
	// rounded up to a power of two.
	RingSize int
	// Sample records one of every Sample root Start calls (<= 1 records
	// all). The draw happens once per tree: children inherit their
	// root's fate (dropped with an unsampled parent, always recorded
	// under a sampled one), so recorded trees stay complete.
	Sample int
}

// DefaultRingSize is the per-shard flight-recorder capacity: 2048 slots
// × ~112 B/span ≈ 224 KiB per shard, a few MiB per process at high core
// counts — enough to hold a full Table-4-sized evaluation's spans.
const DefaultRingSize = 2048

// ringShard is one flight-recorder ring. cursor counts slots ever
// claimed; slot i lives at slots[i&mask]. A writer claims the next slot
// with the atomic cursor and copies its span in under the shard mutex —
// held only for the struct copy, and effectively uncontended because
// spans spread across GOMAXPROCS shards; Spans() takes the same mutex
// for a consistent cut. The cursor stays atomic so the snapshot side
// can read progress without tearing.
type ringShard struct {
	mu     sync.Mutex
	cursor atomic.Uint64
	slots  []Span
	_      [64]byte // keep neighboring shards' cursors off one cache line
}

// Tracer produces spans and records them into its flight recorder.
// All methods are safe for concurrent use; a nil *Tracer is inert.
type Tracer struct {
	shards []ringShard
	mask   uint64 // len(shards) - 1
	smask  uint64 // per-shard slot mask
	sample uint64
	seq    atomic.Uint64
	epoch  time.Time
}

// NewTracer builds a standalone tracer. Most callers want the gated
// package-level EnableTracing/StartSpan instead.
func NewTracer(cfg TracerConfig) *Tracer {
	ring := cfg.RingSize
	if ring <= 0 {
		ring = DefaultRingSize
	}
	ring = 1 << uint(bits.Len(uint(ring-1)))
	nshards := 1 << uint(bits.Len(uint(runtime.GOMAXPROCS(0)-1)))
	if nshards < 1 {
		nshards = 1
	}
	t := &Tracer{
		shards: make([]ringShard, nshards),
		mask:   uint64(nshards - 1),
		smask:  uint64(ring - 1),
		sample: uint64(cfg.Sample),
		epoch:  time.Now(),
	}
	for i := range t.shards {
		t.shards[i].slots = make([]Span, ring)
	}
	return t
}

// Epoch returns the wall-clock instant span Start offsets are relative
// to.
func (t *Tracer) Epoch() time.Time { return t.epoch }

func (t *Tracer) now() int64 { return time.Since(t.epoch).Nanoseconds() }

// SpanHandle is an in-flight span. It is a plain value — copying it
// (into a goroutine, through a channel) is cheap and safe — and the
// zero handle is inert, which is how the disabled path stays free.
type SpanHandle struct {
	t    *Tracer
	span Span
}

// SpanContext is the cross-process span propagation payload: the
// sweep-wide trace ID plus the ID of the span the next root should
// parent to. It is a plain value (two words) so carrying it through
// wire frames and disabled call sites allocates nothing; the zero
// context means "no inherited trace".
type SpanContext struct {
	Trace  string `json:"trace,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
}

// Start begins a root span. On a nil tracer, or when the span loses the
// sampling draw, it returns the inert zero handle.
func (t *Tracer) Start(name, stage string) SpanHandle {
	return t.StartCtx(name, stage, SpanContext{})
}

// StartCtx begins a root span under an inherited cross-process context:
// the span carries ctx.Trace and parents to ctx.Parent, a span ID that
// may belong to another process's recorder. The zero context degrades
// to a plain Start.
func (t *Tracer) StartCtx(name, stage string, ctx SpanContext) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	id := t.seq.Add(1)
	if t.sample > 1 && id%t.sample != 0 {
		return SpanHandle{}
	}
	return SpanHandle{t: t, span: Span{
		ID:     id,
		Parent: ctx.Parent,
		Trace:  ctx.Trace,
		Name:   name,
		Stage:  stage,
		Shard:  -1,
		Chunk:  -1,
		Start:  t.now(),
	}}
}

// Child begins a span parented to h, inheriting its codec, stream,
// shard and chunk labels (override with the With* setters). Children
// share their root's sampling fate rather than drawing again: a child
// of the zero handle is the zero handle, and a child of a recording
// handle always records, so sampled trees stay complete.
func (h SpanHandle) Child(name, stage string) SpanHandle {
	if h.t == nil {
		return SpanHandle{}
	}
	return SpanHandle{t: h.t, span: Span{
		ID:     h.t.seq.Add(1),
		Parent: h.span.ID,
		Trace:  h.span.Trace,
		Name:   name,
		Stage:  stage,
		Codec:  h.span.Codec,
		Stream: h.span.Stream,
		Shard:  h.span.Shard,
		Chunk:  h.span.Chunk,
		Start:  h.t.now(),
	}}
}

// Recording reports whether the handle will produce a span on End.
func (h SpanHandle) Recording() bool { return h.t != nil }

// Context returns the propagation payload that parents remote spans to
// h: its trace ID and its own span ID as the parent. The zero handle
// returns the zero context, so disabled paths ship nothing.
func (h SpanHandle) Context() SpanContext {
	if h.t == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: h.span.Trace, Parent: h.span.ID}
}

// WithCodec labels the span with a codec name.
func (h SpanHandle) WithCodec(codec string) SpanHandle {
	if h.t != nil {
		h.span.Codec = codec
	}
	return h
}

// WithStream labels the span with a stream name.
func (h SpanHandle) WithStream(stream string) SpanHandle {
	if h.t != nil {
		h.span.Stream = stream
	}
	return h
}

// WithShard labels the span with a shard index.
func (h SpanHandle) WithShard(shard int) SpanHandle {
	if h.t != nil {
		h.span.Shard = shard
	}
	return h
}

// WithChunk labels the span with a chunk index.
func (h SpanHandle) WithChunk(chunk int) SpanHandle {
	if h.t != nil {
		h.span.Chunk = chunk
	}
	return h
}

// End closes the span and commits it to the flight recorder.
func (h SpanHandle) End() {
	if h.t == nil {
		return
	}
	h.span.Dur = h.t.now() - h.span.Start
	h.t.record(h.span)
}

// EndErr closes the span, tagging it with err when non-nil.
func (h SpanHandle) EndErr(err error) {
	if h.t == nil {
		return
	}
	if err != nil {
		h.span.Err = err.Error()
	}
	h.span.Dur = h.t.now() - h.span.Start
	h.t.record(h.span)
}

func (t *Tracer) record(s Span) {
	sh := &t.shards[s.ID&t.mask]
	sh.mu.Lock()
	i := sh.cursor.Add(1) - 1
	sh.slots[i&t.smask] = s
	sh.mu.Unlock()
}

// Spans snapshots the flight recorder: the most recent spans across all
// shards, sorted by start time (ties by ID). The result is a copy —
// safe to hold while recording continues. Nil tracers return nil.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n := sh.cursor.Load()
		ring := uint64(len(sh.slots))
		if n > ring {
			// Wrapped: oldest surviving slot is at n&smask.
			start := n & t.smask
			out = append(out, sh.slots[start:]...)
			out = append(out, sh.slots[:start]...)
		} else {
			out = append(out, sh.slots[:n]...)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// curTracer gates the package-level span API, mirroring the metric
// registry's enabled flag: nil while tracing is off.
var curTracer atomic.Pointer[Tracer]

// EnableTracing installs a fresh tracer behind the package-level span
// API and returns it. Handles already in flight keep recording into the
// tracer they started on; new StartSpan calls use the new one.
func EnableTracing(cfg TracerConfig) *Tracer {
	t := NewTracer(cfg)
	curTracer.Store(t)
	return t
}

// DisableTracing turns the package-level span API back off. Spans
// already recorded are discarded with the tracer.
func DisableTracing() {
	curTracer.Store(nil)
}

// TracingEnabled reports whether a tracer is installed.
func TracingEnabled() bool { return curTracer.Load() != nil }

// CurrentTracer returns the installed tracer, or nil while disabled.
func CurrentTracer() *Tracer { return curTracer.Load() }

// StartSpan begins a root span on the installed tracer. While tracing
// is disabled this is one atomic load and a branch, returns the inert
// zero handle, and allocates nothing.
func StartSpan(name, stage string) SpanHandle {
	return curTracer.Load().Start(name, stage)
}

// StartSpanCtx begins a root span under an inherited cross-process
// context on the installed tracer. The disabled-path cost contract is
// identical to StartSpan: one atomic load, a branch, zero allocations.
func StartSpanCtx(name, stage string, ctx SpanContext) SpanHandle {
	return curTracer.Load().StartCtx(name, stage, ctx)
}

// NewTraceID mints a sweep-wide trace identifier: 8 random bytes, hex
// encoded. IDs only need to be unique among traces a recorder might
// hold at once, so 64 bits is plenty and keeps every span's tag small.
func NewTraceID() string {
	var b [8]byte
	rand.Read(b[:]) // crypto/rand.Read never fails on supported platforms
	return hex.EncodeToString(b[:])
}

// Spans snapshots the installed tracer's flight recorder (nil while
// tracing is disabled).
func Spans() []Span {
	return curTracer.Load().Spans()
}
