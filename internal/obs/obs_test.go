package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilHandlesAreNoOps: every handle method must be callable on nil —
// that is the whole disabled-path contract.
func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(100)
}

// TestGatedAccessors: package-level accessors hand out nil while
// disabled and live handles while enabled; values recorded while
// enabled survive a disable/enable cycle.
func TestGatedAccessors(t *testing.T) {
	Disable()
	defer Disable()
	if GetCounter("test.gated") != nil || GetGauge("test.gated_g") != nil || GetHistogram("test.gated_h") != nil {
		t.Fatal("disabled accessors returned live handles")
	}
	Enable()
	c := GetCounter("test.gated")
	if c == nil {
		t.Fatal("enabled accessor returned nil")
	}
	c.Add(7)
	Disable()
	Enable()
	if got := GetCounter("test.gated").Value(); got != 7 {
		t.Errorf("counter lost its value across a disable/enable cycle: %d", got)
	}
}

// TestBindingRebuildsOnGeneration: a bundle fetched while disabled must
// be replaced by live handles after Enable.
func TestBindingRebuildsOnGeneration(t *testing.T) {
	Disable()
	defer Disable()
	type bundle struct{ c *Counter }
	b := NewBinding(func() bundle { return bundle{c: GetCounter("test.binding")} })
	if b.Get().c != nil {
		t.Fatal("binding built live handles while disabled")
	}
	Enable()
	if b.Get().c == nil {
		t.Fatal("binding did not rebuild after Enable")
	}
	b.Get().c.Inc()
	if got := Default().Counter("test.binding").Value(); got != 1 {
		t.Errorf("bound counter not shared with registry: %d", got)
	}
}

// TestRegistryDedup: the same name returns the same handle; a kind
// mismatch panics.
func TestRegistryDedup(t *testing.T) {
	r := NewRegistry("test-dedup")
	if r.Counter("x") != r.Counter("x") {
		t.Error("counter not deduped by name")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("histogram not deduped by name")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("x")
}

// TestHistogramBuckets: observations land in the right power-of-two
// buckets and the count/sum/max bookkeeping holds.
func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 1000, -5} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 8 {
		t.Errorf("count = %d, want 8", s.Count)
	}
	if s.Sum != 1006 {
		t.Errorf("sum = %d, want 1006", s.Sum)
	}
	if s.Max != 1000 {
		t.Errorf("max = %d, want 1000", s.Max)
	}
	want := map[int64]int64{ // lo -> count
		0:   2, // 0 and -5
		1:   2, // 1, 1
		2:   2, // 2, 3
		4:   1, // 4
		512: 1, // 1000
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want lows %v", s.Buckets, want)
	}
	for _, b := range s.Buckets {
		if b.Count != want[b.Lo] {
			t.Errorf("bucket [%d,%d) = %d, want %d", b.Lo, b.Hi, b.Count, want[b.Lo])
		}
		if b.Lo != 0 && b.Hi != b.Lo*2 {
			t.Errorf("bucket bounds [%d,%d) not a power-of-two cell", b.Lo, b.Hi)
		}
	}
}

// TestSnapshotDiffUnderConcurrentWriters is the race-enabled contract
// of the tentpole: many goroutines hammer a registry while another
// takes snapshots and diffs them; every diff must be internally
// consistent (non-negative counters, histogram count equal to the sum
// of its buckets) and the final state must account for every write.
func TestSnapshotDiffUnderConcurrentWriters(t *testing.T) {
	r := NewRegistry("test-concurrent")
	c := r.Counter("ops")
	g := r.Gauge("inflight")
	h := r.Histogram("latency")

	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	wg.Add(writers)
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i % 4096))
				g.Add(-1)
			}
		}(w)
	}
	go func() { wg.Wait(); close(stop) }()

	// Snapshot/diff concurrently with the writers.
	var prev Snapshot
	done := false
	for !done {
		select {
		case <-stop:
			done = true
		default:
		}
		cur := r.Snapshot()
		d := cur.Diff(prev)
		if d.Counters["ops"] < 0 {
			t.Errorf("diff went backwards: %d", d.Counters["ops"])
		}
		hd := d.Histograms["latency"]
		var bucketSum int64
		for _, b := range hd.Buckets {
			bucketSum += b.Count
		}
		// Mid-flight snapshots may tear between the count and bucket
		// fields (each is individually atomic), but a diff must never go
		// backwards.
		if hd.Count < 0 || bucketSum < 0 {
			t.Errorf("histogram diff went backwards: count %d, bucket sum %d", hd.Count, bucketSum)
		}
		prev = cur
	}
	wg.Wait()

	final := r.Snapshot()
	if got := final.Counters["ops"]; got != writers*perWriter {
		t.Errorf("ops = %d, want %d", got, writers*perWriter)
	}
	if got := final.Gauges["inflight"]; got != 0 {
		t.Errorf("inflight = %d, want 0", got)
	}
	hs := final.Histograms["latency"]
	if hs.Count != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", hs.Count, writers*perWriter)
	}
	var bucketSum int64
	for _, b := range hs.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != hs.Count {
		t.Errorf("bucket sum %d != count %d at quiescence", bucketSum, hs.Count)
	}
}

// TestDiffSemantics: counters subtract, gauges stay instantaneous,
// metrics absent from prev pass through.
func TestDiffSemantics(t *testing.T) {
	r := NewRegistry("test-diff")
	c := r.Counter("n")
	g := r.Gauge("depth")
	c.Add(10)
	g.Set(4)
	first := r.Snapshot()
	c.Add(5)
	g.Set(2)
	d := r.Snapshot().Diff(first)
	if d.Counters["n"] != 5 {
		t.Errorf("counter diff = %d, want 5", d.Counters["n"])
	}
	if d.Gauges["depth"] != 2 {
		t.Errorf("gauge diff = %d, want instantaneous 2", d.Gauges["depth"])
	}
	d = r.Snapshot().Diff(Snapshot{})
	if d.Counters["n"] != 15 {
		t.Errorf("diff against empty snapshot = %d, want full value 15", d.Counters["n"])
	}
}

// TestRendering: the table and JSON forms include every metric.
func TestRendering(t *testing.T) {
	r := NewRegistry("test-render")
	r.Counter("reads").Add(3)
	r.Gauge("depth").Set(4)
	r.Histogram("ns").Observe(100)
	s := r.Snapshot()

	var buf bytes.Buffer
	if err := s.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"registry test-render", "reads", "depth", "ns", "count 1"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("table missing %q:\n%s", want, buf.String())
		}
	}

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["reads"] != 3 || back.Gauges["depth"] != 4 || back.Histograms["ns"].Count != 1 {
		t.Errorf("JSON round trip lost data: %+v", back)
	}
}

// TestSnapshotAll: non-empty registries appear, in creation order.
func TestSnapshotAll(t *testing.T) {
	a := NewRegistry("test-all-a")
	NewRegistry("test-all-empty")
	b := NewRegistry("test-all-b")
	a.Counter("x").Inc()
	b.Counter("y").Inc()
	names := map[string]bool{}
	order := []string{}
	for _, s := range SnapshotAll() {
		names[s.Registry] = true
		order = append(order, s.Registry)
	}
	if !names["test-all-a"] || !names["test-all-b"] {
		t.Errorf("registries missing from SnapshotAll: %v", order)
	}
	if names["test-all-empty"] {
		t.Error("empty registry included")
	}
}

// BenchmarkDisabledCounter measures the no-op cost of the disabled
// path: a Binding fetch plus a nil-receiver call. This is the per-event
// overhead an instrumented hot loop pays when observability is off.
func BenchmarkDisabledCounter(b *testing.B) {
	Disable()
	type bundle struct{ c *Counter }
	bind := NewBinding(func() bundle { return bundle{c: GetCounter("bench.disabled")} })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bind.Get().c.Inc()
	}
}

// BenchmarkEnabledHistogram measures the live Observe cost.
func BenchmarkEnabledHistogram(b *testing.B) {
	var h Histogram
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
