package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Prometheus text exposition for the metric registries. The format is
// the classic text/plain; version=0.0.4 exposition: one # TYPE line per
// metric family followed by its samples, so `cmd/busencd
// /metrics?format=prometheus` can be scraped directly. Metric names are
// busenc_<registry>_<metric> with every non-[a-zA-Z0-9_] byte mapped to
// '_'; histograms expose the cumulative _bucket{le=...}, _sum and
// _count triplet, with bucket boundaries at the log2 cell upper edges.

// promName builds a legal exposition metric name.
func promName(registry, metric string) string {
	return "busenc_" + sanitizeProm(registry) + "_" + sanitizeProm(metric)
}

func sanitizeProm(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				b[i] = '_'
			}
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// WritePrometheus writes every non-empty registry's snapshot in
// Prometheus text exposition format.
func WritePrometheus(w io.Writer) error {
	for _, s := range SnapshotAll() {
		if err := writePromSnapshot(w, s); err != nil {
			return err
		}
	}
	return nil
}

func writePromSnapshot(w io.Writer, s Snapshot) error {
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(s.Registry, name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(s.Registry, name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		if err := writePromHistogram(w, promName(s.Registry, name), s.Histograms[name]); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, pn string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	buckets := append([]BucketCount(nil), h.Buckets...)
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].Lo < buckets[j].Lo })
	var cum int64
	for _, b := range buckets {
		cum += b.Count
		if b.Hi == math.MaxInt64 {
			// The clamped top cell folds into +Inf below.
			continue
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b.Hi, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		pn, h.Count, pn, h.Sum, pn, h.Count)
	return err
}
