package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Chrome trace-event export. WriteTraceEvents renders a span snapshot
// in the Trace Event Format (the JSON-array-of-events schema consumed
// by chrome://tracing and Perfetto's legacy loader): each span becomes
// one complete event (ph "X") with microsecond timestamps, and each
// distinct (stage, codec, shard) combination becomes its own named
// thread lane so the timeline groups the way the pipeline is actually
// structured — read lanes, one encode lane per codec/shard, merge and
// reduce lanes.
//
// WriteMergedTraceEvents generalizes the export to several processes:
// each ProcessTrace becomes one pid lane, its spans rebased from the
// process-local tracer epoch onto a shared wall-clock timebase via
// EpochUnixNs (which the caller has already clock-offset-corrected for
// remote processes — see internal/dist's span harvest). The output is
// deterministic: same inputs, byte-identical file.

// traceEvent is one entry of the traceEvents array.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object flavor of the format, which lets us set
// the display unit.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// ProcessTrace is one process's lane in a merged timeline: a span
// snapshot plus the identity and timebase metadata offline tooling
// needs to align it without a live handshake. EpochUnixNs is the wall
// clock (unix nanoseconds) the spans' Start offsets are relative to —
// for a remote process, already shifted onto the coordinator's clock
// by its estimated offset.
type ProcessTrace struct {
	Label       string // pid-lane display name ("coordinator", "worker host/123", ...)
	Host        string
	PID         int   // OS pid (display metadata; the lane index is the trace-event pid)
	EpochUnixNs int64 // wall-clock instant Span.Start offsets are relative to
	Spans       []Span
}

// laneKey groups spans into timeline threads.
type laneKey struct {
	stage string
	codec string
	shard int
}

func (k laneKey) label() string {
	s := k.stage
	if k.codec != "" {
		s += " " + k.codec
	}
	if k.shard >= 0 {
		s += fmt.Sprintf(" shard %d", k.shard)
	}
	return s
}

// spanLanes assigns stable thread-lane numbers to one process's spans:
// sorted by (stage, codec, shard) so repeated exports of the same
// workload produce identical files.
func spanLanes(spans []Span) (map[laneKey]int, []laneKey) {
	lanes := make(map[laneKey]int)
	var order []laneKey
	for _, s := range spans {
		k := laneKey{stage: s.Stage, codec: s.Codec, shard: s.Shard}
		if _, ok := lanes[k]; !ok {
			lanes[k] = 0
			order = append(order, k)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.stage != b.stage {
			return a.stage < b.stage
		}
		if a.codec != b.codec {
			return a.codec < b.codec
		}
		return a.shard < b.shard
	})
	for i, k := range order {
		lanes[k] = i + 1
	}
	return lanes, order
}

// WriteTraceEvents writes a single-process span snapshot as a Chrome
// trace-event JSON document loadable in about://tracing and
// ui.perfetto.dev. The process metadata (host, pid, tracer epoch) is
// taken from this process and the installed tracer, so the exported
// file is alignable offline against other processes' exports.
func WriteTraceEvents(w io.Writer, spans []Span) error {
	host, _ := os.Hostname()
	var epoch int64
	if t := CurrentTracer(); t != nil {
		epoch = t.Epoch().UnixNano()
	}
	return WriteMergedTraceEvents(w, []ProcessTrace{{
		Label:       "busenc",
		Host:        host,
		PID:         os.Getpid(),
		EpochUnixNs: epoch,
		Spans:       spans,
	}})
}

// WriteMergedTraceEvents writes one timeline containing every process's
// spans: process i becomes trace-event pid i+1 (callers put the
// coordinator first), each with its own named thread lanes. Timestamps
// are rebased so the earliest span across all processes sits at ts 0;
// because every EpochUnixNs is on the same (coordinator) clock, spans
// from different processes land in true wall-clock order. The output
// depends only on the input value — merging the same span sets twice
// yields byte-identical files.
func WriteMergedTraceEvents(w io.Writer, procs []ProcessTrace) error {
	base := int64(math.MaxInt64)
	haveSpan := false
	for _, p := range procs {
		for _, s := range p.Spans {
			if t := p.EpochUnixNs + s.Start; t < base {
				base = t
				haveSpan = true
			}
		}
	}
	if !haveSpan {
		base = 0
	}
	var f traceFile
	f.DisplayTimeUnit = "ms"
	for pi, p := range procs {
		pid := pi + 1
		lanes, order := spanLanes(p.Spans)
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{
				"name":          p.Label,
				"host":          p.Host,
				"os_pid":        p.PID,
				"epoch_unix_ns": p.EpochUnixNs,
			},
		})
		for _, k := range order {
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: lanes[k],
				Args: map[string]any{"name": k.label()},
			})
		}
		for _, s := range p.Spans {
			args := map[string]any{"id": s.ID}
			if s.Parent != 0 {
				args["parent"] = s.Parent
			}
			if s.Trace != "" {
				args["trace"] = s.Trace
			}
			if s.Codec != "" {
				args["codec"] = s.Codec
			}
			if s.Stream != "" {
				args["stream"] = s.Stream
			}
			if s.Shard >= 0 {
				args["shard"] = s.Shard
			}
			if s.Chunk >= 0 {
				args["chunk"] = s.Chunk
			}
			if s.Err != "" {
				args["err"] = s.Err
			}
			f.TraceEvents = append(f.TraceEvents, traceEvent{
				Name: s.Name,
				Cat:  s.Stage,
				Ph:   "X",
				Ts:   float64(p.EpochUnixNs+s.Start-base) / 1e3,
				Dur:  float64(s.Dur) / 1e3,
				Pid:  pid,
				Tid:  lanes[laneKey{stage: s.Stage, codec: s.Codec, shard: s.Shard}],
				Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
