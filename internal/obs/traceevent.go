package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export. WriteTraceEvents renders a span snapshot
// in the Trace Event Format (the JSON-array-of-events schema consumed
// by chrome://tracing and Perfetto's legacy loader): each span becomes
// one complete event (ph "X") with microsecond timestamps, and each
// distinct (stage, codec, shard) combination becomes its own named
// thread lane so the timeline groups the way the pipeline is actually
// structured — read lanes, one encode lane per codec/shard, merge and
// reduce lanes.

// traceEvent is one entry of the traceEvents array.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object flavor of the format, which lets us set
// the display unit.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// laneKey groups spans into timeline threads.
type laneKey struct {
	stage string
	codec string
	shard int
}

func (k laneKey) label() string {
	s := k.stage
	if k.codec != "" {
		s += " " + k.codec
	}
	if k.shard >= 0 {
		s += fmt.Sprintf(" shard %d", k.shard)
	}
	return s
}

// WriteTraceEvents writes the spans as a Chrome trace-event JSON
// document loadable in about://tracing and ui.perfetto.dev.
func WriteTraceEvents(w io.Writer, spans []Span) error {
	lanes := make(map[laneKey]int)
	var order []laneKey
	for _, s := range spans {
		k := laneKey{stage: s.Stage, codec: s.Codec, shard: s.Shard}
		if _, ok := lanes[k]; !ok {
			lanes[k] = 0
			order = append(order, k)
		}
	}
	// Stable lane numbering: sort by stage, codec, shard so repeated
	// exports of the same workload produce identical files.
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.stage != b.stage {
			return a.stage < b.stage
		}
		if a.codec != b.codec {
			return a.codec < b.codec
		}
		return a.shard < b.shard
	})
	for i, k := range order {
		lanes[k] = i + 1
	}

	f := traceFile{DisplayTimeUnit: "ms", TraceEvents: make([]traceEvent, 0, len(spans)+len(order)+1)}
	f.TraceEvents = append(f.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "busenc"},
	})
	for _, k := range order {
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: lanes[k],
			Args: map[string]any{"name": k.label()},
		})
	}
	for _, s := range spans {
		args := map[string]any{"id": s.ID}
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		if s.Codec != "" {
			args["codec"] = s.Codec
		}
		if s.Stream != "" {
			args["stream"] = s.Stream
		}
		if s.Shard >= 0 {
			args["shard"] = s.Shard
		}
		if s.Chunk >= 0 {
			args["chunk"] = s.Chunk
		}
		if s.Err != "" {
			args["err"] = s.Err
		}
		f.TraceEvents = append(f.TraceEvents, traceEvent{
			Name: s.Name,
			Cat:  s.Stage,
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.Dur) / 1e3,
			Pid:  1,
			Tid:  lanes[laneKey{stage: s.Stage, codec: s.Codec, shard: s.Shard}],
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
