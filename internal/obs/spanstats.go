package obs

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Latency attribution over a span snapshot: group spans by (stage,
// codec), compute exact quantiles from the recorded durations, and call
// out the slowest shard and chunk. This is the `cmd/paper -metrics
// spans` view — the quick "where did the time go" answer that doesn't
// need a trace viewer.

// SpanStat is the aggregate of one (stage, codec) group.
type SpanStat struct {
	Stage   string `json:"stage"`
	Codec   string `json:"codec,omitempty"`
	Count   int    `json:"count"`
	TotalNs int64  `json:"total_ns"`
	P50Ns   int64  `json:"p50_ns"`
	P95Ns   int64  `json:"p95_ns"`
	MaxNs   int64  `json:"max_ns"`
}

// AggregateSpans groups spans by (stage, codec) and returns per-group
// duration statistics, sorted by total time descending (ties by stage
// then codec for determinism).
func AggregateSpans(spans []Span) []SpanStat {
	type group struct {
		durs  []int64
		total int64
	}
	groups := make(map[[2]string]*group)
	for _, s := range spans {
		k := [2]string{s.Stage, s.Codec}
		g := groups[k]
		if g == nil {
			g = &group{}
			groups[k] = g
		}
		g.durs = append(g.durs, s.Dur)
		g.total += s.Dur
	}
	out := make([]SpanStat, 0, len(groups))
	for k, g := range groups {
		sort.Slice(g.durs, func(i, j int) bool { return g.durs[i] < g.durs[j] })
		out = append(out, SpanStat{
			Stage:   k[0],
			Codec:   k[1],
			Count:   len(g.durs),
			TotalNs: g.total,
			P50Ns:   quantile(g.durs, 0.50),
			P95Ns:   quantile(g.durs, 0.95),
			MaxNs:   g.durs[len(g.durs)-1],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalNs != out[j].TotalNs {
			return out[i].TotalNs > out[j].TotalNs
		}
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Codec < out[j].Codec
	})
	return out
}

// quantile returns the q-quantile of a sorted non-empty slice using the
// nearest-rank method (q in [0,1]).
func quantile(sorted []int64, q float64) int64 {
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// SlowestSpan returns the longest span for which pick returns true.
func SlowestSpan(spans []Span, pick func(Span) bool) (Span, bool) {
	var best Span
	found := false
	for _, s := range spans {
		if pick(s) && (!found || s.Dur > best.Dur) {
			best, found = s, true
		}
	}
	return best, found
}

// WriteSpanTable renders the attribution view: one row per (stage,
// codec) with count, total and p50/p95/max latency, followed by
// slowest-shard and slowest-chunk call-outs.
func WriteSpanTable(w io.Writer, spans []Span) error {
	if len(spans) == 0 {
		_, err := fmt.Fprintln(w, "no spans recorded (is tracing enabled?)")
		return err
	}
	stats := AggregateSpans(spans)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "spans %d\n", len(spans))
	fmt.Fprintln(tw, "stage\tcodec\tcount\ttotal\tp50\tp95\tmax")
	for _, st := range stats {
		codec := st.Codec
		if codec == "" {
			codec = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%s\t%s\n",
			st.Stage, codec, st.Count,
			fmtNs(st.TotalNs), fmtNs(st.P50Ns), fmtNs(st.P95Ns), fmtNs(st.MaxNs))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if s, ok := SlowestSpan(spans, func(s Span) bool { return s.Shard >= 0 }); ok {
		fmt.Fprintf(w, "slowest shard: %s shard %d (%s, %s)\n", s.Codec, s.Shard, s.Name, fmtNs(s.Dur))
	}
	if s, ok := SlowestSpan(spans, func(s Span) bool { return s.Chunk >= 0 }); ok {
		fmt.Fprintf(w, "slowest chunk: chunk %d (%s, %s, %s)\n", s.Chunk, s.Name, s.Stage, fmtNs(s.Dur))
	}
	return nil
}

// fmtNs renders a nanosecond duration in the most readable unit.
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
