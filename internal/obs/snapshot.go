package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"
)

// Snapshot is a point-in-time copy of a registry's metric values. It is
// plain data: safe to hold, diff, marshal, and compare while the live
// metrics keep moving.
type Snapshot struct {
	Registry   string                       `json:"registry"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is the frozen state of one histogram. Buckets holds
// only the non-empty power-of-two buckets.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Max     int64         `json:"max"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty histogram bucket: Count observations v
// with Lo <= v < Hi (Lo == 0 collects everything below 1).
type BucketCount struct {
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// Mean returns the average observed value, or 0 when empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot copies the registry's current values. Metric updates are
// individually atomic but the snapshot as a whole is not a consistent
// cut across metrics — fine for observability, tests should quiesce.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Registry: r.name}
	for name, m := range r.metrics {
		switch {
		case m.counter != nil:
			if s.Counters == nil {
				s.Counters = make(map[string]int64)
			}
			s.Counters[name] = m.counter.Value()
		case m.gauge != nil:
			if s.Gauges == nil {
				s.Gauges = make(map[string]int64)
			}
			s.Gauges[name] = m.gauge.Value()
		case m.hist != nil:
			if s.Histograms == nil {
				s.Histograms = make(map[string]HistogramSnapshot)
			}
			s.Histograms[name] = m.hist.snapshot()
		}
	}
	return s
}

// Snapshot freezes the histogram's current state. It works on any
// *Histogram, including standalone zero-value histograms that were
// never attached to a registry (the serve SLO layer relies on this).
func (h *Histogram) Snapshot() HistogramSnapshot { return h.snapshot() }

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucketized
// counts, returning the upper edge of the bucket holding the q-th
// observation — a conservative (over-)estimate with power-of-two
// resolution. The top bucket reports the exact observed Max instead of
// its MaxInt64 edge. Empty snapshots return 0.
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range h.Buckets {
		seen += b.Count
		if seen >= rank {
			if b.Hi == math.MaxInt64 {
				return h.Max
			}
			return b.Hi
		}
	}
	return h.Max
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = int64(1) << (i - 1)
		}
		// The top cell collects every value bucketOf clamps into it; its
		// upper edge is MaxInt64, not 1<<64 (which would wrap negative).
		hi := int64(math.MaxInt64)
		if i < histBuckets-1 {
			hi = int64(1) << i
		}
		s.Buckets = append(s.Buckets, BucketCount{Lo: lo, Hi: hi, Count: c})
	}
	return s
}

// Diff returns s minus prev: counters and histogram counts/sums
// subtract, so the result describes only the interval between the two
// snapshots. Gauges are instantaneous and keep s's value; histogram Max
// likewise remains the since-start maximum. Metrics absent from prev
// pass through unchanged.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{Registry: s.Registry}
	if s.Counters != nil {
		out.Counters = make(map[string]int64, len(s.Counters))
		for name, v := range s.Counters {
			out.Counters[name] = v - prev.Counters[name]
		}
	}
	if s.Gauges != nil {
		out.Gauges = make(map[string]int64, len(s.Gauges))
		for name, v := range s.Gauges {
			out.Gauges[name] = v
		}
	}
	if s.Histograms != nil {
		out.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for name, h := range s.Histograms {
			out.Histograms[name] = h.diff(prev.Histograms[name])
		}
	}
	return out
}

func (h HistogramSnapshot) diff(prev HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Count: h.Count - prev.Count,
		Sum:   h.Sum - prev.Sum,
		Max:   h.Max,
	}
	prevBuckets := make(map[int64]int64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		prevBuckets[b.Lo] = b.Count
	}
	for _, b := range h.Buckets {
		if c := b.Count - prevBuckets[b.Lo]; c != 0 {
			out.Buckets = append(out.Buckets, BucketCount{Lo: b.Lo, Hi: b.Hi, Count: c})
		}
	}
	return out
}

// Empty reports whether the snapshot carries no metrics at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// WriteTable renders the snapshot as an aligned human-readable table.
func (s Snapshot) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "registry %s\n", s.Registry)
	fmt.Fprintln(tw, "kind\tname\tvalue")
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(tw, "counter\t%s\t%d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(tw, "gauge\t%s\t%d\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(tw, "histogram\t%s\tcount %d, mean %.0f, max %d\n", name, h.Count, h.Mean(), h.Max)
	}
	return tw.Flush()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SnapshotAll snapshots every registry that has recorded something,
// in registry-creation order.
func SnapshotAll() []Snapshot {
	var out []Snapshot
	for _, r := range Registries() {
		if s := r.Snapshot(); !s.Empty() {
			out = append(out, s)
		}
	}
	return out
}

// WriteAllTable renders every non-empty registry as tables.
func WriteAllTable(w io.Writer) error {
	snaps := SnapshotAll()
	if len(snaps) == 0 {
		_, err := fmt.Fprintln(w, "no metrics recorded")
		return err
	}
	for i, s := range snaps {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := s.WriteTable(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteAllJSON renders every non-empty registry as a JSON array of
// snapshots.
func WriteAllJSON(w io.Writer) error {
	snaps := SnapshotAll()
	if snaps == nil {
		snaps = []Snapshot{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snaps)
}

// PublishExpvar exposes the registry's live snapshot as an expvar
// variable with the given name (served at /debug/vars). It panics if the
// expvar name is already taken, mirroring expvar.Publish.
func (r *Registry) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
